package simany

// Interaction hot-path benchmark: a spawn+message-heavy workload that
// stresses exactly the per-interaction costs the kernel pays on top of the
// natively-executed task bodies — task creation and handoff (pooled worker
// goroutines), network.Send (striped counters, flat FIFO state) and the
// probe/spawn/join message storm of the task runtime. Task bodies compute
// almost nothing, so steps/sec here is dominated by the simulator's own
// allocation and synchronization overhead rather than by the simulated
// program.
//
// `go test -bench BenchmarkHotPath -benchmem` reports steps/sec, the
// simulation wall time and allocs per scheduling step; the committed
// BENCH_hotpath.json snapshot is regenerated with
//
//	go test -run '^$' -bench BenchmarkHotPath -benchmem -benchtime 3x

import (
	"runtime"
	"testing"
	"time"

	"simany/internal/core"
	"simany/internal/rt"
	"simany/internal/topology"
)

// hotPathDepth is the spawn-tree depth: 2^(depth+1)-1 conditional spawns,
// several thousand short-lived tasks on the 64-core mesh.
const hotPathDepth = 11

// runHotPath simulates the spawn tree once and returns the step count, the
// number of tasks actually shipped to other cores, and the wall time of
// the simulation proper.
func runHotPath(b *testing.B, shards, workers int) (steps, spawns int64, wall time.Duration) {
	b.Helper()
	k := core.New(core.Config{
		Topo:    topology.Mesh(64),
		Policy:  core.Spatial{T: core.DefaultT},
		Seed:    42,
		Shards:  shards,
		Workers: workers,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	var node func(depth int) func(*core.Env)
	var g *rt.Group
	node = func(depth int) func(*core.Env) {
		return func(e *core.Env) {
			e.ComputeCycles(30)
			if depth == 0 {
				return
			}
			r.SpawnOrRun(e, g, "n", 16, node(depth-1))
			r.SpawnOrRun(e, g, "n", 16, node(depth-1))
			e.ComputeCycles(5)
		}
	}
	start := time.Now()
	res, err := r.Run("hotpath", func(e *core.Env) {
		g = r.NewGroup()
		node(hotPathDepth)(e)
		r.Join(e, g)
	})
	if err != nil {
		b.Fatal(err)
	}
	wall = time.Since(start)
	if res.Steps < 1<<hotPathDepth {
		b.Fatalf("degenerate run: %d steps", res.Steps)
	}
	return res.Steps, r.Stats().Spawns, wall
}

func benchHotPath(b *testing.B, shards, workers int) {
	var steps, spawns int64
	var wall time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, sp, w := runHotPath(b, shards, workers)
		steps += s
		spawns += sp
		wall += w
	}
	b.ReportMetric(float64(steps)/wall.Seconds(), "steps/sec")
	b.ReportMetric(float64(spawns)/float64(b.N), "spawns/op")
	b.ReportMetric(float64(wall.Nanoseconds())/float64(b.N), "wall-ns/op")
}

// BenchmarkHotPath measures interaction-path throughput on the sequential
// engine and on the sharded engine (fixed 4 shards so the event semantics
// — and the allocation counts the CI guard compares — do not depend on the
// host's CPU count; workers adapt to the host).
func BenchmarkHotPath(b *testing.B) {
	b.Run("seq", func(b *testing.B) {
		benchHotPath(b, 1, 1)
	})
	b.Run("sharded", func(b *testing.B) {
		benchHotPath(b, 4, runtime.NumCPU())
	})
}
