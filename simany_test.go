package simany

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m := NewMachine(16)
	sim, err := NewSimulation(m)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	res, err := sim.Run("hello", func(e *Env) {
		g := sim.RT.NewGroup()
		for i := 0; i < 8; i++ {
			sim.RT.SpawnOrRun(e, g, "work", 0, func(e *Env) {
				e.ComputeCycles(1000)
				ran++
			})
		}
		sim.RT.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 8 {
		t.Errorf("ran = %d", ran)
	}
	if res.FinalVT < Cycles(1000) {
		t.Errorf("FinalVT = %v", res.FinalVT)
	}
}

func TestMachineVariants(t *testing.T) {
	m := NewMachine(16)
	m.Style = Polymorphic
	m.Mem = DistributedMem
	m.T = Cycles(50)
	sim, err := NewSimulation(m)
	if err != nil {
		t.Fatal(err)
	}
	if sim.K.NumCores() != 16 {
		t.Errorf("cores = %d", sim.K.NumCores())
	}
}

func TestBenchmarksExposed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 6 {
		t.Fatalf("benchmarks = %d", len(bs))
	}
	b, err := BenchmarkByName("octree")
	if err != nil {
		t.Fatal(err)
	}
	b.Generate(1, 0.1)
	if b.RunNative() == 0 {
		t.Error("suspicious zero checksum")
	}
}

func TestBenchmarkEndToEnd(t *testing.T) {
	b, err := BenchmarkByName("spmxv")
	if err != nil {
		t.Fatal(err)
	}
	b.Generate(5, 0.1)
	want := b.RunNative()
	sim, err := NewSimulation(NewMachine(8))
	if err != nil {
		t.Fatal(err)
	}
	root, finish := b.Program(sim.RT, BenchShared)
	if _, err := sim.Run("spmxv", root); err != nil {
		t.Fatal(err)
	}
	if finish() != want {
		t.Error("simulated result diverged")
	}
}

func TestTopologyRoundTripPublic(t *testing.T) {
	topo := Mesh(16)
	var buf bytes.Buffer
	if err := WriteTopology(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 16 {
		t.Errorf("N = %d", back.N())
	}
}

func TestFiguresList(t *testing.T) {
	ids := Figures()
	if len(ids) == 0 {
		t.Fatal("no figures")
	}
	joined := strings.Join(ids, ",")
	for _, want := range []string{"5", "8", "ablation", "errors"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing figure %q in %s", want, joined)
		}
	}
}

func TestHarnessPublic(t *testing.T) {
	h := NewHarness(ExperimentOptions{Quick: true, Scale: 0.1, Benchmarks: []string{"octree"}})
	tables, err := h.Figure("8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tables[0].Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "octree") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestCyclesHelper(t *testing.T) {
	if Cycles(0.5)*2 != Cycle {
		t.Error("Cycles(0.5) wrong")
	}
	if DefaultT != Cycles(100) {
		t.Error("DefaultT wrong")
	}
}
