package simany

// Scheduler benchmark: a scheduling-bound workload driven through the
// reference linear-scan scheduler and through the indexed runnable queue
// (docs/scheduler.md), at the paper's many-core scale (1024 cores) and at
// a small scale (64 cores) where the scan is cheap and the index must at
// least break even.
//
// The workload is one compute task per core with heterogeneous block costs
// under spatial synchronization (T=100cy): fast cores run ahead, hit the
// drift bound against their slower neighbors and stall, so almost every
// scheduling step is a stall/resume decision over the whole machine —
// exactly the per-pick work the runnable index replaces. Application
// benchmarks like quicksort spend most wall time inside task bodies and
// the memory model; this one isolates the scheduler.
//
// `go test -bench BenchmarkSchedulerSteps` reports steps/sec per variant;
// the committed BENCH_sched.json snapshot is regenerated with
//
//	go test -run '^$' -bench BenchmarkSchedulerSteps -benchtime 3x

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"simany/internal/core"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// schedBenchRounds is the number of annotation blocks each core executes.
const schedBenchRounds = 30

// runSchedWorkload simulates the stall-heavy workload once and returns the
// step count and the wall time of the simulation proper.
func runSchedWorkload(b *testing.B, cores, shards, workers int, mode core.SchedMode, wantSched string) (int64, time.Duration) {
	b.Helper()
	k := core.New(core.Config{
		Topo:    topology.Mesh(cores),
		Policy:  core.Spatial{T: core.DefaultT},
		Seed:    42,
		Shards:  shards,
		Workers: workers,
		Sched:   mode,
	})
	if got := k.Scheduler(); got != wantSched {
		b.Fatalf("scheduler = %q, want %q", got, wantSched)
	}
	for i := 0; i < cores; i++ {
		// Block costs straddle the drift bound: the spread keeps fast
		// cores perpetually stalling against their slower neighbors.
		cost := 40.0 + 15.0*float64(i%8)
		k.InjectTask(i, fmt.Sprintf("w%d", i), func(e *core.Env) {
			for r := 0; r < schedBenchRounds; r++ {
				e.ComputeCycles(cost)
			}
		}, nil, 0)
	}
	start := time.Now()
	res, err := k.Run()
	if err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	if res.FinalVT == vtime.Inf || res.Steps < int64(cores) {
		b.Fatalf("degenerate run: %d steps, final VT %v", res.Steps, res.FinalVT)
	}
	return res.Steps, wall
}

func benchSchedSteps(b *testing.B, cores, shards, workers int, mode core.SchedMode, wantSched string) {
	var steps int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		s, w := runSchedWorkload(b, cores, shards, workers, mode, wantSched)
		steps += s
		wall += w
	}
	b.ReportMetric(float64(steps)/wall.Seconds(), "steps/sec")
	b.ReportMetric(float64(wall.Nanoseconds())/float64(b.N), "wall-ns/op")
}

// BenchmarkSchedulerSteps compares scheduling throughput of the reference
// scan against the indexed runnable queue. The interesting cell is the
// 1024-core sequential one — there every pick under the scan walks 1024
// cores (re-evaluating the horizon of each stalled one) while the index
// answers with a heap peek; at 64 cores the scan is cheap and the index
// must merely not regress.
func BenchmarkSchedulerSteps(b *testing.B) {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 8 // single-CPU host: still exercise the per-shard engine
	}
	b.Run("1024/seq-scan", func(b *testing.B) {
		benchSchedSteps(b, 1024, 1, 1, core.SchedScan, "scan")
	})
	b.Run("1024/seq-index", func(b *testing.B) {
		benchSchedSteps(b, 1024, 1, 1, core.SchedAuto, "index")
	})
	b.Run("1024/sharded-index", func(b *testing.B) {
		benchSchedSteps(b, 1024, shards, runtime.NumCPU(), core.SchedAuto, "index")
	})
	b.Run("64/seq-scan", func(b *testing.B) {
		benchSchedSteps(b, 64, 1, 1, core.SchedScan, "scan")
	})
	b.Run("64/seq-index", func(b *testing.B) {
		benchSchedSteps(b, 64, 1, 1, core.SchedAuto, "index")
	})
}
