// Driftstudy: the accuracy/speed trade-off of spatial synchronization
// (§II.A, §VI "Simulation time/accuracy trade-off", Figs. 10-11).
//
// The maximum local drift T is the simulator's accuracy/speed toggle:
// smaller T means more frequent synchronizations and context switches,
// better accuracy, slower simulation. This example sorts the same arrays on
// a 64-core mesh for T ∈ {10, 50, 100, 500, 1000} cycles and reports the
// virtual-time deviation from the tightest run along with the wall-clock
// simulation speed.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"simany"
)

func main() {
	fmt.Println("T(cycles)  virtual-time(cy)  deviation  sim-wall  kernel-steps")
	var ref float64
	for _, T := range []float64{10, 50, 100, 500, 1000} {
		b, err := simany.BenchmarkByName("quicksort")
		if err != nil {
			log.Fatal(err)
		}
		b.Generate(7, 0.5)
		m := simany.NewMachine(64)
		m.T = simany.Cycles(T)
		sim, err := simany.NewSimulation(m)
		if err != nil {
			log.Fatal(err)
		}
		root, _ := b.Program(sim.RT, simany.BenchShared)
		start := time.Now()
		res, err := sim.Run("quicksort", root)
		if err != nil {
			log.Fatal(err)
		}
		vt := res.FinalVT.InCycles()
		if ref == 0 {
			ref = vt
		}
		fmt.Printf("%9.0f  %16.0f  %+8.2f%%  %8v  %12d\n",
			T, vt, 100*(vt-ref)/math.Abs(ref),
			time.Since(start).Round(time.Millisecond), res.Steps)
	}
	fmt.Println("\nRegular benchmarks like Quicksort barely change with T (Fig. 10),")
	fmt.Println("while the number of kernel synchronization steps — and so the wall")
	fmt.Println("time — drops as T grows (Fig. 11).")
}
