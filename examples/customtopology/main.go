// Customtopology: SiMany reads arbitrary interconnects from adjacency
// files (§III "Architecture Variability"). This example defines a small
// heterogeneous network in the textual format, parses it, and compares it
// against a plain mesh of the same size under an identical workload.
package main

import (
	"fmt"
	"log"
	"strings"

	"simany"
)

// A 16-core network: a fast 8-core ring (0.5-cycle links) bridged to a
// slow 8-core chain (4-cycle links) through one long link.
const customNet = `
# fast ring
cores 16
link 0 1 0.5
link 1 2 0.5
link 2 3 0.5
link 3 4 0.5
link 4 5 0.5
link 5 6 0.5
link 6 7 0.5
link 7 0 0.5
# bridge
link 7 8 8 32
# slow chain
link 8 9 4
link 9 10 4
link 10 11 4
link 11 12 4
link 12 13 4
link 13 14 4
link 14 15 4
`

func workload(sim *simany.Simulation) func(*simany.Env) {
	return func(e *simany.Env) {
		g := sim.RT.NewGroup()
		var split func(e *simany.Env, n int)
		split = func(e *simany.Env, n int) {
			for n > 1 {
				half := n / 2
				sim.RT.SpawnOrRun(e, g, "work", 32, func(ce *simany.Env) {
					split(ce, half)
				})
				n -= half
			}
			e.ComputeCycles(20_000)
		}
		split(e, 256)
		sim.RT.Join(e, g)
	}
}

func main() {
	topo, err := simany.ParseTopology(strings.NewReader(customNet))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom network: %d cores, diameter %d hops\n\n", topo.N(), topo.Diameter())

	custom := simany.NewMachine(16)
	custom.Topo = topo
	mesh := simany.NewMachine(16)

	fmt.Println("network        virtual-time(cy)")
	for _, cfg := range []struct {
		name string
		m    simany.Machine
	}{{"ring+chain", custom}, {"4x4 mesh", mesh}} {
		sim, err := simany.NewSimulation(cfg.m)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run("custom", workload(sim))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s  %14.0f\n", cfg.name, res.FinalVT.InCycles())
	}
	fmt.Println("\nWork only ever spreads to topological neighbors, so the slow chain")
	fmt.Println("behind the single bridge link receives work late: the heterogeneous")
	fmt.Println("network loses to the mesh despite equal core counts.")
}
