// Profiling: the two observability features a simulator user lives in —
// derived timing annotations and execution traces.
//
// The paper's §II.A lists four ways to obtain block timings: profile runs,
// a simple processor model, manual insertion, and computation during the
// execution. This example uses the last one (a host-time calibrator) for a
// coarse-grained code block, mixes it with statically annotated blocks,
// and then renders the per-core activity timeline recorded by the tracer.
package main

import (
	"fmt"
	"log"
	"os"

	"simany"
)

// hash64 is the "real" computation whose cost we let the calibrator derive
// instead of hand-counting instructions.
func hash64(v uint64, rounds int) uint64 {
	for i := 0; i < rounds; i++ {
		v ^= v >> 33
		v *= 0xff51afd7ed558ccd
		v ^= v >> 29
	}
	return v
}

func main() {
	cal := simany.NewCalibrator()
	fmt.Printf("calibration: %.3f simulated cycles per host nanosecond\n\n",
		cal.CyclesPerNanosecond)

	m := simany.NewMachine(8)
	sim, err := simany.NewSimulation(m)
	if err != nil {
		log.Fatal(err)
	}
	rec := simany.NewTraceRecorder(0)
	sim.K.SetTracer(rec)

	mix := simany.NewOpMix()
	var digest uint64
	res, err := sim.Run("profiled", func(e *simany.Env) {
		g := sim.RT.NewGroup()
		var split func(e *simany.Env, lo, hi int)
		split = func(e *simany.Env, lo, hi int) {
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				lo2, hi2 := mid, hi
				sim.RT.SpawnOrRun(e, g, "worker", 8, func(ce *simany.Env) {
					split(ce, lo2, hi2)
				})
				hi = mid
			}
			// Statically annotated part: an abstract operation mix
			// (1000 compares, 200 swaps).
			e.Compute(mix.Mix(1000, 200, 0, 0))
			// Profiled part: native execution timed on the host and
			// converted to virtual cycles.
			cal.ComputeProfiled(e, func() {
				digest ^= hash64(uint64(lo)+1, 200_000)
			})
		}
		split(e, 0, 12)
		sim.RT.Join(e, g)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("virtual execution time: %.0f cycles (digest %x)\n\n",
		res.FinalVT.InCycles(), digest)
	fmt.Println("per-core activity timeline:")
	if err := simany.TraceTimeline(os.Stdout, rec.Events(), sim.K.NumCores(), res.FinalVT, 64); err != nil {
		log.Fatal(err)
	}
	util := simany.TraceUtilization(rec.Events(), sim.K.NumCores(), res.FinalVT)
	var avg float64
	for _, u := range util {
		avg += u
	}
	fmt.Printf("\naverage core utilization: %.1f%%\n", 100*avg/float64(len(util)))
}
