// Archexplore: the paper's headline use case — quickly comparing high-level
// architecture organizations for a given workload (§VI "Architecture
// Exploration").
//
// It runs the Connected Components dwarf on 64-core machines organized as
// a uniform mesh, a polymorphic mesh (half the cores 2x slower, half 1.5x
// faster — same total compute power) and a 4-cluster mesh, under both
// shared and distributed memory, and prints the virtual execution times.
package main

import (
	"fmt"
	"log"
	"time"

	"simany"
)

func main() {
	b, err := simany.BenchmarkByName("conncomp")
	if err != nil {
		log.Fatal(err)
	}
	b.Generate(42, 0.5)
	fmt.Println("machine                         memory       virtual-time   sim-wall")
	for _, style := range []simany.Style{simany.Uniform, simany.Polymorphic, simany.Clustered4} {
		for _, memKind := range []simany.MemKind{simany.SharedMem, simany.DistributedMem} {
			m := simany.NewMachine(64)
			m.Style = style
			m.Mem = memKind
			sim, err := simany.NewSimulation(m)
			if err != nil {
				log.Fatal(err)
			}
			mode := simany.BenchShared
			if memKind == simany.DistributedMem {
				mode = simany.BenchDistributed
			}
			root, _ := b.Program(sim.RT, mode)
			start := time.Now()
			res, err := sim.Run("conncomp", root)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-30s  %-11s  %10.0f cy  %9v\n",
				"64-core "+style.String()+" mesh", memKind,
				res.FinalVT.InCycles(), time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Println("\nExpected shape (paper Figs. 8/9/12/13): distributed memory collapses")
	fmt.Println("for this data-contended benchmark; clustering helps it at high core")
	fmt.Println("counts; polymorphic machines lose a little to load imbalance.")
}
