// Quickstart: simulate a fork/join program on a 64-core mesh and inspect
// how virtual execution time reacts to the machine size.
package main

import (
	"fmt"
	"log"

	"simany"
)

// program runs 64 independent work items of ~50k cycles each. Work is
// fanned out by recursive halving: every split conditionally spawns one
// half to a neighboring core, which is how work propagates across the mesh
// in this programming model (tasks are only ever dispatched to neighbors,
// §IV).
func program(sim *simany.Simulation) func(*simany.Env) {
	return func(e *simany.Env) {
		g := sim.RT.NewGroup()
		var split func(e *simany.Env, lo, hi int)
		split = func(e *simany.Env, lo, hi int) {
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				lo2, hi2 := mid, hi
				sim.RT.SpawnOrRun(e, g, "split", 0, func(ce *simany.Env) {
					split(ce, lo2, hi2)
				})
				hi = mid
			}
			// One annotated compute block plus some memory traffic.
			e.ComputeCycles(50_000)
			e.Read(uint64(4096+e.CoreID()*256), 32, 8)
		}
		split(e, 0, 64)
		sim.RT.Join(e, g)
	}
}

func main() {
	fmt.Println("cores  virtual-time(cycles)  speedup")
	var base float64
	for _, cores := range []int{1, 4, 16, 64} {
		m := simany.NewMachine(cores) // shared-memory mesh, spatial sync T=100
		sim, err := simany.NewSimulation(m)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run("quickstart", program(sim))
		if err != nil {
			log.Fatal(err)
		}
		vt := res.FinalVT.InCycles()
		if base == 0 {
			base = vt
		}
		fmt.Printf("%5d  %20.0f  %7.2fx\n", cores, vt, base/vt)
	}
}
