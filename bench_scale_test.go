package simany

// Scale benchmark for hierarchical chiplet machines: the same spawn-tree
// workload on a 1024-core chiplet machine (8x8-core chiplets in a 4x4 chip
// mesh) run on the sequential engine and sharded one-shard-per-chip with
// chip-aligned partitions. `go test -bench BenchmarkScale -benchmem`
// reports steps/sec and allocs per scheduling step for both engines; the
// committed BENCH_scale.json snapshot is regenerated with
//
//	go test -run '^$' -bench BenchmarkScale -benchmem -benchtime 3x
//
// TestScale100kFootprint is the 100k-core smoke check: a 102400-core
// chiplet machine must construct, partition chip-aligned and run a sharded
// workload inside a fixed heap ceiling (the CI memory gate).

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"simany/internal/core"
	"simany/internal/rt"
	"simany/internal/topology"
)

// scaleTopology is the benchmark machine: 16 chiplets of 64 cores.
func scaleTopology() *topology.Topology {
	t, err := topology.ParseSpec("chiplet:8x8,4x4")
	if err != nil {
		panic(err)
	}
	return t
}

// scaleDepth sizes the spawn tree; 2^(depth+1)-1 conditional spawns spread
// across the 1024 cores.
const scaleDepth = 11

func runScaleTree(b *testing.B, topo *topology.Topology, shards, workers int) (steps int64, wall time.Duration) {
	b.Helper()
	k := core.New(core.Config{
		Topo:    topo,
		Policy:  core.Spatial{T: core.DefaultT},
		Seed:    42,
		Shards:  shards,
		Workers: workers,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	var node func(depth int) func(*core.Env)
	var g *rt.Group
	node = func(depth int) func(*core.Env) {
		return func(e *core.Env) {
			e.ComputeCycles(30)
			if depth == 0 {
				return
			}
			r.SpawnOrRun(e, g, "n", 16, node(depth-1))
			r.SpawnOrRun(e, g, "n", 16, node(depth-1))
			e.ComputeCycles(5)
		}
	}
	start := time.Now()
	res, err := r.Run("scaletree", func(e *core.Env) {
		g = r.NewGroup()
		node(scaleDepth)(e)
		r.Join(e, g)
	})
	if err != nil {
		b.Fatal(err)
	}
	wall = time.Since(start)
	if res.Steps < 1<<scaleDepth {
		b.Fatalf("degenerate run: %d steps", res.Steps)
	}
	return res.Steps, wall
}

func benchScale(b *testing.B, shards, workers int) {
	var steps int64
	var wall time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, w := runScaleTree(b, scaleTopology(), shards, workers)
		steps += s
		wall += w
	}
	b.ReportMetric(float64(steps)/wall.Seconds(), "steps/sec")
	b.ReportMetric(float64(wall.Nanoseconds())/float64(b.N), "wall-ns/op")
}

// BenchmarkScale measures simulation throughput on the 1024-core chiplet
// machine: the sequential engine against 16 shards (one per chip-mesh
// chiplet, fixed so event semantics and the CI alloc guard do not depend
// on the host CPU count; workers adapt to the host). Sharding wins even on
// one host CPU because each shard's scheduler scans only its own chiplet's
// cores — O(n/S) instead of O(n) per step.
func BenchmarkScale(b *testing.B) {
	b.Run("seq", func(b *testing.B) {
		benchScale(b, 1, 1)
	})
	b.Run("sharded", func(b *testing.B) {
		benchScale(b, 16, runtime.NumCPU())
	})
}

// scaleFootprintCeiling is the heap ceiling for the 100k-core smoke run.
// Measured ~115 MiB on linux/amd64; 1 GiB leaves headroom for GC timing
// and architecture differences while still catching any return of
// per-core map-heavy state (a few KB per core is ~0.5 GB at this scale).
const scaleFootprintCeiling = 1 << 30 // 1 GiB

// TestScale100kFootprint constructs the reference 102400-core machine
// (8x8-core chiplets, 4x4 chiplets per chip, 10x10 chips), verifies the
// shard partition is chip-aligned, runs a step-bounded sharded workload
// with every core busy and checks the live heap stays under the CI
// ceiling. The step bound deliberately stops the run while cores are still
// computing: a dense machine is the scale scenario, and ending mid-flight
// avoids simulating 102400 task completions in a smoke test.
func TestScale100kFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-core machine build in -short mode")
	}
	topo, err := topology.ParseSpec("chiplet:8x8,4x4,10x10")
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 102400 {
		t.Fatalf("N = %d, want 102400", topo.N())
	}
	h := topo.Hierarchy()
	const shards = 16
	part := topology.PartitionFor(topo, shards)
	cuts := topology.TierCuts(topo, part)
	if cuts[0] != 0 || cuts[1] != 0 {
		t.Fatalf("100k partition severs intra-chip links: tier cuts %v", cuts)
	}
	if h.NumUnits(1) != 100 {
		t.Fatalf("chip count = %d, want 100", h.NumUnits(1))
	}

	const maxSteps = 50000
	k := core.New(core.Config{
		Topo:     topo,
		Policy:   core.Spatial{T: core.DefaultT},
		Seed:     7,
		Shards:   shards,
		MaxSteps: maxSteps,
	})
	for c := 0; c < topo.N(); c++ {
		k.InjectTask(c, "w", func(e *core.Env) {
			for i := 0; i < 100000; i++ {
				e.ComputeCycles(100)
			}
		}, nil, 0)
	}
	_, err = k.Run()
	// The step bound firing is the expected outcome — it proves the
	// machine simulated maxSteps scheduling steps.
	if err == nil || !strings.Contains(err.Error(), "scheduling steps") {
		t.Fatalf("run ended with %v, want the %d-step bound to fire", err, maxSteps)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("100k-core machine: %.1f MiB live heap after %d steps (%d links)",
		float64(ms.HeapAlloc)/(1<<20), maxSteps, topo.NumLinks())
	if ms.HeapAlloc > scaleFootprintCeiling {
		t.Errorf("live heap %d bytes exceeds the %d-byte scale ceiling",
			ms.HeapAlloc, uint64(scaleFootprintCeiling))
	}
}

// scaleSparseBudget bounds the wall clock of the sparse 100k smoke run.
// With lazy effective times the run takes a few seconds on one CPU; the
// eager flood would recompute the ~102k-core idle region on every one of
// the ~10^5 scheduling steps and blow far past this, so the budget doubles
// as a regression gate on the per-completion cost.
const scaleSparseBudget = 90 * time.Second

// TestScale100kSparse is the sparse counterpart of the footprint smoke:
// the same 102400-core chiplet machine with only 256 busy cores, run TO
// COMPLETION. Dense machines amortize idle-region maintenance over busy
// work; a sparse machine is all idle region, which is exactly the regime
// the lazy effective-time scheme (docs/effective-time.md) exists for.
func TestScale100kSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-core machine build in -short mode")
	}
	topo, err := topology.ParseSpec("chiplet:8x8,4x4,10x10")
	if err != nil {
		t.Fatal(err)
	}
	const shards = 16
	k := core.New(core.Config{
		Topo:   topo,
		Policy: core.Spatial{T: core.DefaultT},
		Seed:   7,
		Shards: shards,
	})
	if got := k.EffScheme(); got != "lazy" {
		t.Fatalf("effective-time scheme = %q, want lazy (the point of the sparse smoke)", got)
	}
	// 256 tasks strided across the machine: every shard owns a sliver of
	// the busy frontier, the rest of its cores sit idle the whole run.
	const tasks = 256
	stride := topo.N() / tasks
	for i := 0; i < tasks; i++ {
		k.InjectTask(i*stride, "w", func(e *core.Env) {
			for j := 0; j < 200; j++ {
				e.ComputeCycles(100)
			}
		}, nil, 0)
	}
	start := time.Now()
	res, err := k.Run()
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sparse 100k run: %d steps in %v (%d busy of %d cores)",
		res.Steps, wall.Round(time.Millisecond), tasks, topo.N())
	// One scheduling step executes compute slices until the drift horizon
	// interrupts, so steps ≪ slices; the run completing at all (liveTasks
	// drained) plus a per-task floor keeps the check non-vacuous.
	if res.Steps < tasks {
		t.Errorf("steps = %d, want >= %d", res.Steps, tasks)
	}
	if wall > scaleSparseBudget {
		t.Errorf("sparse run took %v, budget %v — per-completion cost is scaling with the idle region again", wall, scaleSparseBudget)
	}
}
