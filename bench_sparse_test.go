package simany

// Sparse-idle benchmark: per-completion cost of effective-time maintenance
// on mostly-idle machines, lazy evaluation against the eager propagation
// flood (docs/effective-time.md). The same 64-task strided workload runs
// on machines from 1k to 100k cores: under eager evaluation every
// scheduling step re-floods the idle region, so steps/sec collapses with
// machine size even though the busy work is constant; under lazy
// evaluation the cost tracks the busy frontier and stays flat. The dense
// pair at 1k cores pins the other end: with every core busy there is no
// idle region, so the two schemes must cost about the same.
//
// The sequential engine is used throughout — it has no barriers, so every
// effective-time update happens at a step site and the comparison isolates
// exactly the per-completion cost the lazy scheme targets. The committed
// BENCH_sparse.json snapshot is regenerated with
//
//	go test -run '^$' -bench BenchmarkSparseIdle -benchmem -benchtime 2x .

import (
	"testing"
	"time"

	"simany/internal/core"
	"simany/internal/topology"
)

// sparseTopo builds the benchmark machines by chiplet spec so the 100k
// point matches the TestScale100kSparse machine exactly.
func sparseTopo(spec string) *topology.Topology {
	t, err := topology.ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// benchSparseIdle runs `tasks` strided compute tasks to completion and
// reports steps/sec over the Run call alone; machine construction happens
// with the timer stopped so the metric (and the alloc guard) measure the
// simulation, not topology building.
func benchSparseIdle(b *testing.B, spec string, tasks, slices int, mode core.EffMode) {
	b.ReportAllocs()
	var steps int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo := sparseTopo(spec)
		k := core.New(core.Config{
			Topo:   topo,
			Policy: core.Spatial{T: core.DefaultT},
			Seed:   42,
			Eff:    mode,
		})
		stride := topo.N() / tasks
		for t := 0; t < tasks; t++ {
			k.InjectTask(t*stride, "w", func(e *core.Env) {
				for s := 0; s < slices; s++ {
					e.ComputeCycles(100)
				}
			}, nil, 0)
		}
		b.StartTimer()
		start := time.Now()
		res, err := k.Run()
		wall += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/wall.Seconds(), "steps/sec")
}

// BenchmarkSparseIdle is the CI-guarded sparse/dense × lazy/eager matrix.
// Acceptance (BENCH_sparse.json): lazy steps/sec stays within a small
// factor across 1k→100k cores while eager falls off by orders of
// magnitude, with at least a 10x lazy advantage at 100k.
func BenchmarkSparseIdle(b *testing.B) {
	sizes := []struct {
		name string
		spec string
	}{
		{"1k", "chiplet:8x8,4x4"},         // 1024 cores
		{"10k", "chiplet:8x8,4x4,3x3"},    // 9216 cores
		{"100k", "chiplet:8x8,4x4,10x10"}, // 102400 cores
	}
	const tasks, slices = 64, 100
	for _, mode := range []struct {
		name string
		eff  core.EffMode
	}{{"lazy", core.EffLazy}, {"eager", core.EffEager}} {
		for _, sz := range sizes {
			b.Run(mode.name+"/"+sz.name, func(b *testing.B) {
				benchSparseIdle(b, sz.spec, tasks, slices, mode.eff)
			})
		}
	}
	// Dense control: all 1024 cores busy, no idle region to maintain.
	b.Run("dense-lazy/1k", func(b *testing.B) {
		benchSparseIdle(b, "chiplet:8x8,4x4", 1024, slices, core.EffLazy)
	})
	b.Run("dense-eager/1k", func(b *testing.B) {
		benchSparseIdle(b, "chiplet:8x8,4x4", 1024, slices, core.EffEager)
	})
}
