package simany

// Host-parallelism benchmark for the sharded execution engine: the same
// 256-core quicksort simulation run sequentially (one shard) and sharded
// across one partition per host CPU. `go test -bench BenchmarkShardedSpeedup`
// reports the wall-clock of both modes plus a speedup metric; the committed
// BENCH_shard.json snapshot is regenerated with
//
//	go test -run '^$' -bench BenchmarkShardedSpeedup -benchtime 5x

import (
	"runtime"
	"testing"
	"time"

	"simany/internal/bench"
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/topology"
)

// runShardedQuicksort simulates quicksort on a 256-core mesh with the given
// shard/worker split and returns the wall time of the simulation proper.
func runShardedQuicksort(b *testing.B, shards, workers int) time.Duration {
	b.Helper()
	qs, err := bench.ByName("quicksort")
	if err != nil {
		b.Fatal(err)
	}
	qs.Generate(42, 1)
	want := qs.RunNative()
	k := core.New(core.Config{
		Topo:    topology.Mesh(256),
		Policy:  core.Spatial{T: core.DefaultT},
		Mem:     mem.NewShared(),
		Seed:    42,
		Shards:  shards,
		Workers: workers,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	root, finish := qs.Program(r, bench.Shared)
	start := time.Now()
	if _, err := r.Run("quicksort", root); err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	if finish() != want {
		b.Fatal("simulated output diverged from native run")
	}
	return wall
}

// BenchmarkShardedSpeedup measures the wall-clock gain of the sharded
// engine over the sequential engine on a 256-core mesh. Sharding helps
// twice: each shard scans only its own cores when picking work (an O(n/S)
// scheduler instead of O(n)), and with several host CPUs the shards run on
// parallel worker threads.
func BenchmarkShardedSpeedup(b *testing.B) {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 8 // single-CPU host: still exercise the O(n/S) scheduler
	}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		seq += runShardedQuicksort(b, 1, 1)
		par += runShardedQuicksort(b, shards, runtime.NumCPU())
	}
	b.ReportMetric(float64(seq.Nanoseconds())/float64(b.N), "seq-ns/op")
	b.ReportMetric(float64(par.Nanoseconds())/float64(b.N), "par-ns/op")
	b.ReportMetric(float64(seq)/float64(par), "speedup")
}
