// Package simany is a discrete-event many-core simulator reproducing
// "A Very Fast Simulator for Exploring the Many-Core Future" (Certner, Li,
// Raman, Temam — IPDPS 2011).
//
// SiMany simulates machines with up to (and beyond) a thousand cores by
// raising the level of abstraction: sequential code runs natively between
// timing annotations, interactions (messages, memory traffic, task
// management) are simulated, and virtual clocks are kept approximately
// coherent with spatial synchronization — a purely local scheme where a
// core may run at most T cycles ahead of its topological neighbors.
//
// # Quick start
//
//	m := simany.NewMachine(64)                 // 8x8 mesh, shared memory
//	sim, err := simany.NewSimulation(m)
//	if err != nil { ... }
//	res, err := sim.Run("hello", func(e *simany.Env) {
//	    g := sim.RT.NewGroup()
//	    for i := 0; i < 32; i++ {
//	        sim.RT.SpawnOrRun(e, g, "work", 0, func(e *simany.Env) {
//	            e.ComputeCycles(1000)
//	        })
//	    }
//	    sim.RT.Join(e, g)
//	})
//	fmt.Println("virtual execution time:", res.FinalVT)
//
// The architecture grid of the paper (uniform/polymorphic/clustered meshes,
// shared or distributed memory, any synchronization policy) is selected
// through the Machine fields; the experiment harness that regenerates the
// paper's figures is exposed through NewHarness.
//
// Setting Machine.Shards > 1 runs the simulation on the sharded parallel
// engine: the topology is split into contiguous partitions executed on
// host worker threads (Machine.Workers) that synchronize at deterministic
// virtual-time barriers. Results are fully determined by the (seed,
// shards) pair — the worker count only changes wall-clock time. See
// docs/parallel.md.
package simany

import (
	"io"

	"simany/internal/annotate"
	"simany/internal/bench"
	"simany/internal/config"
	"simany/internal/core"
	"simany/internal/harness"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/stats"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/trace"
	"simany/internal/vtime"
)

// Core simulation types, re-exported from the engine.
type (
	// Env is the interface task code uses to interact with the simulator:
	// timing annotations, memory accesses, messaging and blocking.
	Env = core.Env
	// Task is one unit of parallel work.
	Task = core.Task
	// Result summarizes a completed simulation.
	Result = core.Result
	// Kernel is the discrete-event simulation kernel.
	Kernel = core.Kernel
	// Policy is a virtual-time synchronization scheme.
	Policy = core.Policy
	// Spatial is the paper's spatial synchronization policy.
	Spatial = core.Spatial

	// Runtime is the probe/spawn/join task runtime of §IV.
	Runtime = rt.Runtime
	// Group is a task group for coarse synchronization (join).
	Group = rt.Group
	// Lock is a shared-memory mutex with lock-holder stall exemption.
	Lock = rt.Lock
	// Link is a generalized pointer to a distributed-memory cell.
	Link = mem.Link

	// Machine describes a complete architecture (cores, style, memory,
	// synchronization).
	Machine = config.Machine
	// Style selects uniform/polymorphic/clustered organizations.
	Style = config.Style
	// MemKind selects the memory organization.
	MemKind = config.MemKind

	// Time is a virtual time or duration in millicycles.
	Time = vtime.Time
	// Counts is a per-instruction-class annotation block.
	Counts = timing.Counts
	// Topology is an interconnection network.
	Topology = topology.Topology

	// Benchmark is one of the paper's dwarf workloads.
	Benchmark = bench.Benchmark
	// BenchMode selects the benchmark's memory programming model.
	BenchMode = bench.Mode

	// Table is a rendered figure/table of the experiment harness.
	Table = stats.Table
)

// Architecture styles (§V "Architecture Exploration").
const (
	Uniform     = config.Uniform
	Polymorphic = config.Polymorphic
	Clustered4  = config.Clustered4
	Clustered8  = config.Clustered8
)

// Memory organizations (§V "Architecture Configuration").
const (
	SharedMem         = config.SharedMem
	SharedMemCoherent = config.SharedMemCoherent
	DistributedMem    = config.DistributedMem
)

// Benchmark program modes.
const (
	BenchShared      = bench.Shared
	BenchDistributed = bench.Distributed
)

// Cycle is one processor cycle as a Time value.
const Cycle = vtime.Cycle

// DefaultT is the paper's reference maximum local drift (100 cycles).
var DefaultT = core.DefaultT

// Cycles converts a (possibly fractional) cycle count to a Time.
func Cycles(c float64) Time { return vtime.Cycles(c) }

// NewMachine returns the paper's reference machine: a most-square 2D mesh
// of the given core count with shared memory and spatial synchronization at
// T = 100 cycles. Adjust the returned Machine's fields to explore the
// design space.
func NewMachine(cores int) Machine { return config.Default(cores) }

// Simulation couples a built kernel with its task runtime.
type Simulation struct {
	// K is the simulation kernel (cores, network, policy).
	K *Kernel
	// RT is the task runtime (probe/spawn/join, locks, cells).
	RT *Runtime
}

// NewSimulation builds the machine and its runtime.
func NewSimulation(m Machine) (*Simulation, error) {
	k, r, err := m.Build()
	if err != nil {
		return nil, err
	}
	return &Simulation{K: k, RT: r}, nil
}

// Run injects the root task and drives the simulation to quiescence.
func (s *Simulation) Run(name string, root func(*Env)) (Result, error) {
	return s.RT.Run(name, root)
}

// Benchmarks returns fresh instances of the six dwarf benchmarks of §V.
func Benchmarks() []Benchmark { return bench.All() }

// BenchmarkByName resolves one benchmark.
func BenchmarkByName(name string) (Benchmark, error) { return bench.ByName(name) }

// ParseTopology reads an adjacency-matrix topology description (§III:
// "network topology is specified in a configuration file as an adjacency
// matrix").
func ParseTopology(r io.Reader) (*Topology, error) { return topology.ParseAdjacency(r) }

// WriteTopology serializes a topology in the same format.
func WriteTopology(w io.Writer, t *Topology) error { return topology.WriteAdjacency(w, t) }

// Mesh builds the most-square 2D mesh over n cores with the paper's
// default link parameters.
func Mesh(n int) *Topology { return topology.Mesh(n) }

// ExperimentOptions configures the figure-regeneration harness.
type ExperimentOptions = harness.Options

// Harness regenerates the paper's figures and tables.
type Harness = harness.Harness

// NewHarness creates an experiment harness.
func NewHarness(opt ExperimentOptions) *Harness { return harness.New(opt) }

// Figures lists the regenerable experiment identifiers (figure numbers
// plus "errors" and "ablation").
func Figures() []string { return harness.AllFigures() }

// TraceEvent is one record of simulator activity (see Kernel.SetTracer).
type TraceEvent = core.TraceEvent

// TraceRecorder collects simulator trace events for post-run analysis.
type TraceRecorder = trace.Recorder

// NewTraceRecorder creates a recorder retaining up to limit events
// (0 = unlimited); install it with sim.K.SetTracer before Run.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// TraceTimeline renders an ASCII per-core activity chart from a recorded
// trace.
func TraceTimeline(w io.Writer, events []TraceEvent, numCores int, endVT Time, width int) error {
	return trace.Timeline(w, events, numCores, endVT, width)
}

// TraceUtilization computes per-core busy fractions from a recorded trace.
func TraceUtilization(events []TraceEvent, numCores int, endVT Time) []float64 {
	return trace.Utilization(events, numCores, endVT)
}

// LoadMachineFile reads a complete architecture description from a machine
// file (see internal/config's file format: cores, style, mem, policy, T,
// seed, speedaware, topology <adjacency file>).
func LoadMachineFile(path string) (Machine, error) { return config.LoadMachineFile(path) }

// ParseMachine parses a machine description from r; resolve loads
// referenced topology files (nil forbids references).
func ParseMachine(r io.Reader, resolve func(path string) (io.ReadCloser, error)) (Machine, error) {
	return config.ParseMachine(r, resolve)
}

// WriteMachine serializes a machine description.
func WriteMachine(w io.Writer, m Machine) error { return config.WriteMachine(w, m) }

// Calibrator converts host-native execution time into simulated cycles —
// the paper's "annotations computed during the execution" mode (§II.A).
type Calibrator = annotate.Calibrator

// NewCalibrator measures the host and returns a ready calibrator.
func NewCalibrator() *Calibrator { return annotate.NewCalibrator() }

// OpMix prices abstract operation mixes (compares, swaps, pointer chases,
// float ops) as instruction-class annotations.
type OpMix = annotate.Model

// NewOpMix returns the operation-mix decompositions used by the dwarf
// benchmarks.
func NewOpMix() *OpMix { return annotate.NewModel() }

// ValidatingTracer periodically checks kernel invariants during a run and
// panics on the first violation — a debugging aid for custom policies and
// memory systems (see Kernel.Validate).
type ValidatingTracer = core.ValidatingTracer
