package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "8", "-quick", "-scale", "0.1", "-bench", "octree"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPlot(t *testing.T) {
	if err := run([]string{"-fig", "9", "-quick", "-scale", "0.1", "-bench", "octree", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDriftTable(t *testing.T) {
	if err := run([]string{"-fig", "10", "-quick", "-scale", "0.1", "-bench", "octree"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run([]string{"-fig", "8", "-quick", "-bench", "nope"}); err == nil {
		t.Fatal("expected error")
	}
}
