// Command simany-sweep regenerates the paper's evaluation: every figure
// and table of §VI as plain-text series.
//
// Usage:
//
//	simany-sweep                  # everything (takes a while at 1024 cores)
//	simany-sweep -fig 8           # one figure
//	simany-sweep -quick           # truncated core grid for a fast pass
//	simany-sweep -bench quicksort # restrict the benchmark set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"simany/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simany-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simany-sweep", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "", "figure to regenerate ("+strings.Join(harness.AllFigures(), ", ")+"); empty = all")
		quick   = fs.Bool("quick", false, "truncate the core grid for a fast pass")
		seed    = fs.Int64("seed", 42, "random seed")
		scale   = fs.Float64("scale", 1, "dataset scale factor")
		benchs  = fs.String("bench", "", "comma-separated benchmark subset")
		plot    = fs.Bool("plot", false, "render ASCII log-log curves after speedup figures")
		verbose = fs.Bool("v", false, "log every run to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := harness.Options{Seed: *seed, Scale: *scale, Quick: *quick}
	if *benchs != "" {
		opt.Benchmarks = strings.Split(*benchs, ",")
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	h := harness.New(opt)
	if *fig == "" {
		return h.WriteAll(os.Stdout)
	}
	tables, err := h.Figure(*fig)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if *plot {
		for _, p := range h.LastPlots() {
			if err := p.Fprint(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}
