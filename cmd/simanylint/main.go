// Command simanylint runs SiMany's determinism and shard-safety analyzers
// (internal/lint) over the repository. It is built purely on the standard
// library's go/ast, go/parser and go/types — no external analysis
// framework — and is wired into CI as a required step.
//
// Usage:
//
//	simanylint [-json] [-rules rule1,rule2] [packages...]
//
// Packages default to ./... relative to the enclosing module root.
// Diagnostics print as file:line:col: rule: message; -json emits a
// machine-readable array instead. Suppress a finding with a trailing (or
// directly preceding) comment:
//
//	//lint:allow <rule>[,<rule>...] one-line justification
//
// Exit status: 0 when clean, 1 when unsuppressed diagnostics were found,
// 2 when loading or type-checking failed. See docs/lint.md for the rule
// catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"simany/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "simanylint: unknown rule %q (see -list)\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simanylint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simanylint: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simanylint: %v\n", err)
		os.Exit(2)
	}

	rep := lint.Run(prog, analyzers)
	diags := rep.Diagnostics()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "simanylint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 || rep.Suppressed() > 0 {
			fmt.Fprintf(os.Stderr, "simanylint: %d finding(s), %d suppressed, %d package(s)\n",
				len(diags), rep.Suppressed(), len(prog.Pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
