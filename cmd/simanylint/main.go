// Command simanylint runs SiMany's determinism and shard-safety analyzers
// (internal/lint) over the repository. It is built purely on the standard
// library's go/ast, go/parser and go/types — no external analysis
// framework — and is wired into CI as a required step.
//
// Usage:
//
//	simanylint [-json] [-graph] [-rules rule1,rule2] [packages...]
//
// Packages default to ./... relative to the enclosing module root.
// Diagnostics print as file:line:col: rule: message; -json emits a
// machine-readable object with "diagnostics" and "suppressed" arrays, the
// latter listing every //lint:allow-silenced finding with its
// justification so suppression creep is trackable in CI. -graph dumps the
// module call graph the interprocedural analyzers run on and exits.
// Suppress a finding with a trailing (or directly preceding) comment:
//
//	//lint:allow <rule>[,<rule>...] one-line justification
//
// Exit status: 0 when clean, 1 when unsuppressed diagnostics were found,
// 2 when loading or type-checking failed. See docs/lint.md for the rule
// catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"simany/internal/lint"
)

// report is the -json output shape.
type report struct {
	Diagnostics []lint.Diagnostic  `json:"diagnostics"`
	Suppressed  []lint.Suppression `json:"suppressed"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simanylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics and suppressions as JSON")
	graph := fs.Bool("graph", false, "dump the module call graph and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "simanylint: unknown rule %q (see -list)\n", r)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "simanylint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "simanylint: %v\n", err)
		return 2
	}
	prog, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simanylint: %v\n", err)
		return 2
	}

	if *graph {
		prog.CallGraph().Dump(stdout)
		return 0
	}

	rep := lint.Run(prog, analyzers)
	diags := rep.Diagnostics()

	if *jsonOut {
		out := report{Diagnostics: diags, Suppressed: rep.Suppressions()}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		if out.Suppressed == nil {
			out.Suppressed = []lint.Suppression{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "simanylint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 || rep.Suppressed() > 0 {
			fmt.Fprintf(stderr, "simanylint: %d finding(s), %d suppressed, %d package(s)\n",
				len(diags), rep.Suppressed(), len(prog.Pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
