package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUnknownRuleExits2 pins the driver contract CI depends on: a typo in
// -rules must fail loudly, not silently run nothing.
func TestUnknownRuleExits2(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-rules", "nosuchrule", "./internal/vtime"}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", got, errb.String())
	}
	if !strings.Contains(errb.String(), `unknown rule "nosuchrule"`) {
		t.Errorf("stderr %q does not name the unknown rule", errb.String())
	}
}

// TestListRules checks -list prints every registered analyzer and exits 0.
func TestListRules(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
	}
	for _, name := range []string{"nodeterminism", "entropyflow", "snapcover", "homeshard", "allowjustify"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks rule %s", name)
		}
	}
}

// TestJSONShape pins the machine-readable output: a top-level object with
// diagnostics and suppressed arrays, both present (never null) even when
// empty, so CI's suppression-budget step can count without guarding.
func TestJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks module packages from source")
	}
	var out, errb strings.Builder
	if got := run([]string{"-json", "./internal/vtime"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out.String()), &raw); err != nil {
		t.Fatalf("output is not a JSON object: %v\n%s", err, out.String())
	}
	for _, key := range []string{"diagnostics", "suppressed"} {
		v, ok := raw[key]
		if !ok {
			t.Fatalf("JSON output lacks %q key", key)
		}
		var arr []json.RawMessage
		if err := json.Unmarshal(v, &arr); err != nil {
			t.Errorf("%q is not an array (null?): %v", key, err)
		}
	}
}

// TestGraphDump checks -graph emits call-graph edges and exits 0.
func TestGraphDump(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks module packages from source")
	}
	var out, errb strings.Builder
	if got := run([]string{"-graph", "./internal/drift"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, errb.String())
	}
	if !strings.Contains(out.String(), " -> ") {
		t.Errorf("-graph output has no edges:\n%s", out.String())
	}
}
