// Command benchguard turns `go test -bench` output into a CI gate and a
// job summary. It reads benchmark output on stdin, extracts allocs/op and
// the simulator's custom steps/sec metric per sub-benchmark, and compares
// them against the baselines checked into a JSON file (BENCH_hotpath.json):
// allocs/op against the "alloc_guard" ceilings, steps/sec against the
// "throughput_guard" floors. It exits non-zero when any sub-benchmark
// exceeds its alloc ceiling or undershoots its throughput floor by more
// than the respective tolerance. A markdown table is appended to
// $GITHUB_STEP_SUMMARY when that variable is set (the GitHub Actions
// job-summary protocol), and always printed to stdout.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkHotPath -benchmem -benchtime 1x | \
//	    go run ./cmd/benchguard -baseline BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// baselineFile is the subset of BENCH_hotpath.json benchguard consumes.
type baselineFile struct {
	Benchmark  string `json:"benchmark"`
	AllocGuard struct {
		MaxAllocsPerOp map[string]float64 `json:"max_allocs_per_op"`
	} `json:"alloc_guard"`
	ThroughputGuard struct {
		MinStepsPerSec map[string]float64 `json:"min_steps_per_sec"`
	} `json:"throughput_guard"`
}

// guards bundles the baseline limits and their tolerances.
type guards struct {
	title    string             // summary heading (defaults to the parent benchmark name)
	ceilings map[string]float64 // allocs/op ceilings (fail above ceiling*(1+allocTol))
	floors   map[string]float64 // steps/sec floors (fail below floor*(1-stepTol))
	allocTol float64
	stepTol  float64
}

// measurement is one parsed sub-benchmark result.
type measurement struct {
	name        string // sub-benchmark name ("seq", "sharded")
	allocsPerOp float64
	stepsPerSec float64
	nsPerOp     float64
}

// parseBench extracts measurements for sub-benchmarks of the given parent
// benchmark from `go test -bench` output. Lines look like
//
//	BenchmarkHotPath/seq-4  3  9766662 ns/op  344304 steps/sec  18750 allocs/op
//
// where the "-4" GOMAXPROCS suffix is optional and value/unit pairs come in
// any order.
func parseBench(r io.Reader, parent string) ([]measurement, error) {
	var out []measurement
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], parent+"/") {
			continue
		}
		name := strings.TrimPrefix(fields[0], parent+"/")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		m := measurement{name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad value %q in line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "allocs/op":
				m.allocsPerOp = v
			case "steps/sec":
				m.stepsPerSec = v
			case "ns/op":
				m.nsPerOp = v
			}
		}
		out = append(out, m)
	}
	return out, sc.Err()
}

// check compares measurements against the alloc ceilings and throughput
// floors and renders the summary table. It returns the markdown and the
// list of failures.
func check(ms []measurement, g guards) (string, []string) {
	var b strings.Builder
	var failures []string
	title := g.title
	if title == "" {
		title = "Hot-path benchmark"
	}
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| bench | steps/sec | floor (-tolerance) | allocs/op | ceiling (+tolerance) | status |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	seen := make(map[string]bool)
	for _, m := range ms {
		seen[m.name] = true
		ok, guarded := true, false
		allocLimit, stepLimit := "—", "—"
		if ceiling, has := g.ceilings[m.name]; has {
			guarded = true
			max := ceiling * (1 + g.allocTol)
			allocLimit = fmt.Sprintf("%.0f (%.0f)", ceiling, max)
			if m.allocsPerOp > max {
				ok = false
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op exceeds ceiling %.0f by more than %.0f%%",
					m.name, m.allocsPerOp, ceiling, g.allocTol*100))
			}
		}
		if floor, has := g.floors[m.name]; has {
			guarded = true
			min := floor * (1 - g.stepTol)
			stepLimit = fmt.Sprintf("%.0f (%.0f)", floor, min)
			if m.stepsPerSec < min {
				ok = false
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f steps/sec is more than %.0f%% below floor %.0f",
					m.name, m.stepsPerSec, g.stepTol*100, floor))
			}
		}
		status := "✅"
		if !guarded {
			// Baseline-key drift: a sub-benchmark running in CI with no
			// ceiling or floor was previously reported as "—" and silently
			// passed, so adding a benchmark without adding its guard (or
			// renaming one side) left it unguarded forever. Fail loudly.
			status = "❌ unguarded"
			failures = append(failures, fmt.Sprintf(
				"%s: sub-benchmark has no alloc ceiling or throughput floor in the baseline", m.name))
		} else if !ok {
			status = "❌ regression"
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s | %.0f | %s | %s |\n",
			m.name, m.stepsPerSec, stepLimit, m.allocsPerOp, allocLimit, status)
	}
	for name := range g.ceilings {
		if !seen[name] {
			failures = append(failures, fmt.Sprintf("%s: guarded sub-benchmark missing from output", name))
		}
	}
	for name := range g.floors {
		if _, dup := g.ceilings[name]; !seen[name] && !dup {
			failures = append(failures, fmt.Sprintf("%s: guarded sub-benchmark missing from output", name))
		}
	}
	return b.String(), failures
}

func run(in io.Reader, baselinePath, parent string, allocTol, stepTol float64) (string, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return "", err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return "", fmt.Errorf("benchguard: %s: %w", baselinePath, err)
	}
	if parent == "" {
		parent = base.Benchmark
	}
	if len(base.AllocGuard.MaxAllocsPerOp) == 0 && len(base.ThroughputGuard.MinStepsPerSec) == 0 {
		return "", fmt.Errorf("benchguard: %s has no alloc_guard ceilings or throughput_guard floors", baselinePath)
	}
	ms, err := parseBench(in, parent)
	if err != nil {
		return "", err
	}
	if len(ms) == 0 {
		return "", fmt.Errorf("benchguard: no %s/* results on stdin", parent)
	}
	md, failures := check(ms, guards{
		title:    parent,
		ceilings: base.AllocGuard.MaxAllocsPerOp,
		floors:   base.ThroughputGuard.MinStepsPerSec,
		allocTol: allocTol,
		stepTol:  stepTol,
	})
	if len(failures) > 0 {
		return md, fmt.Errorf("benchguard: %s", strings.Join(failures, "; "))
	}
	return md, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_hotpath.json", "baseline JSON with alloc_guard ceilings and throughput_guard floors")
	parent := flag.String("bench", "", "parent benchmark name (default: \"benchmark\" field of the baseline)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional allocs/op overshoot")
	stepTol := flag.Float64("throughput-tolerance", 0.30, "allowed fractional steps/sec undershoot below the floor")
	flag.Parse()

	md, err := run(os.Stdin, *baseline, *parent, *tolerance, *stepTol)
	if md != "" {
		fmt.Print(md)
		if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
			if f, ferr := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); ferr == nil {
				f.WriteString(md)
				f.Close()
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
