package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: simany
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHotPath/seq         	       3	   9766662 ns/op	      2159 spawns/op	    344304 steps/sec	   7685068 wall-ns/op	 1416664 B/op	   18750 allocs/op
BenchmarkHotPath/sharded-4   	       3	  16906173 ns/op	      2929 spawns/op	    341135 steps/sec	  15005810 wall-ns/op	 1998101 B/op	   29317 allocs/op
PASS
ok  	simany	0.106s
`

func TestParseBench(t *testing.T) {
	ms, err := parseBench(strings.NewReader(sampleOutput), "BenchmarkHotPath")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("parsed %d measurements, want 2: %+v", len(ms), ms)
	}
	if ms[0].name != "seq" || ms[0].allocsPerOp != 18750 || ms[0].stepsPerSec != 344304 {
		t.Errorf("seq parsed as %+v", ms[0])
	}
	// The -4 GOMAXPROCS suffix must be stripped.
	if ms[1].name != "sharded" || ms[1].allocsPerOp != 29317 {
		t.Errorf("sharded parsed as %+v", ms[1])
	}
}

func TestCheckPassAndFail(t *testing.T) {
	ms, err := parseBench(strings.NewReader(sampleOutput), "BenchmarkHotPath")
	if err != nil {
		t.Fatal(err)
	}
	ceilings := map[string]float64{"seq": 18750, "sharded": 29317}

	md, failures := check(ms, guards{ceilings: ceilings, allocTol: 0.20})
	if len(failures) != 0 {
		t.Fatalf("at-ceiling run failed: %v", failures)
	}
	if !strings.Contains(md, "| seq |") || !strings.Contains(md, "✅") {
		t.Errorf("summary table malformed:\n%s", md)
	}

	// 20% tolerance: a ceiling set 25% below the measurement must fail.
	tight := map[string]float64{"seq": 15000, "sharded": 29317}
	_, failures = check(ms, guards{ceilings: tight, allocTol: 0.20})
	if len(failures) != 1 || !strings.Contains(failures[0], "seq") {
		t.Errorf("regression not flagged: %v", failures)
	}

	// A guarded sub-benchmark missing from the output is a failure too.
	_, failures = check(ms[:1], guards{ceilings: ceilings, allocTol: 0.20})
	if len(failures) != 1 || !strings.Contains(failures[0], "sharded") {
		t.Errorf("missing sub-benchmark not flagged: %v", failures)
	}
}

func TestRunAgainstBaselineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	baseline := `{
	  "benchmark": "BenchmarkHotPath",
	  "alloc_guard": {"max_allocs_per_op": {"seq": 18750, "sharded": 29317}}
	}`
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	md, err := run(strings.NewReader(sampleOutput), path, "", 0.20, 0.30)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !strings.Contains(md, "sharded") {
		t.Errorf("summary missing sharded row:\n%s", md)
	}
	if _, err := run(strings.NewReader("no benchmarks here\n"), path, "", 0.20, 0.30); err == nil {
		t.Error("empty input should fail")
	}
}

// TestRepoBaselineParses keeps the checked-in BENCH_hotpath.json loadable
// by the guard.
func TestRepoBaselineParses(t *testing.T) {
	if _, err := os.Stat("../../BENCH_hotpath.json"); err != nil {
		t.Skip("baseline not present")
	}
	_, err := run(strings.NewReader(sampleOutput), "../../BENCH_hotpath.json", "", 0.20, 0.30)
	if err != nil {
		t.Fatalf("checked-in baseline rejected: %v", err)
	}
}

func TestThroughputFloor(t *testing.T) {
	ms, err := parseBench(strings.NewReader(sampleOutput), "BenchmarkHotPath")
	if err != nil {
		t.Fatal(err)
	}
	// Floors at the measured values pass (zero undershoot).
	floors := map[string]float64{"seq": 344304, "sharded": 341135}
	md, failures := check(ms, guards{floors: floors, stepTol: 0.30})
	if len(failures) != 0 {
		t.Fatalf("at-floor run failed: %v", failures)
	}
	if !strings.Contains(md, "✅") {
		t.Errorf("summary table malformed:\n%s", md)
	}

	// seq measured 344304 steps/sec; a floor of 500000 with 30% tolerance
	// (minimum 350000) is a >30% regression and must fail.
	_, failures = check(ms[:1], guards{floors: map[string]float64{"seq": 500000}, stepTol: 0.30})
	if len(failures) != 1 || !strings.Contains(failures[0], "steps/sec") {
		t.Errorf("throughput regression not flagged: %v", failures)
	}

	// A floor-guarded sub-benchmark missing from the output fails, and is
	// reported once even when it also has an alloc ceiling.
	_, failures = check(ms[:1], guards{
		ceilings: map[string]float64{"sharded": 29317},
		floors:   floors, allocTol: 0.20, stepTol: 0.30,
	})
	if len(failures) != 1 || !strings.Contains(failures[0], "sharded") {
		t.Errorf("missing sub-benchmark not flagged exactly once: %v", failures)
	}
}

// TestUnguardedSubBenchmarkFails covers the other direction of baseline-key
// drift: a sub-benchmark present in the output but absent from every guard
// map must fail loudly, not silently pass with an em-dash status.
func TestUnguardedSubBenchmarkFails(t *testing.T) {
	ms, err := parseBench(strings.NewReader(sampleOutput), "BenchmarkHotPath")
	if err != nil {
		t.Fatal(err)
	}
	md, failures := check(ms, guards{
		ceilings: map[string]float64{"seq": 18750},
		allocTol: 0.20,
	})
	if len(failures) != 1 || !strings.Contains(failures[0], "sharded") {
		t.Fatalf("unguarded sub-benchmark not flagged: %v", failures)
	}
	if !strings.Contains(md, "unguarded") {
		t.Errorf("summary table does not mark the unguarded row:\n%s", md)
	}
}
