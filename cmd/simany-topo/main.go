// Command simany-topo generates, inspects and converts the adjacency-
// matrix topology files SiMany reads (§III: "Network topology is specified
// in a configuration file as an adjacency matrix").
//
// Usage:
//
//	simany-topo -gen mesh -cores 64 > mesh64.topo
//	simany-topo -gen clustered4 -cores 256 > c4.topo
//	simany-topo -info mesh64.topo
package main

import (
	"flag"
	"fmt"
	"os"

	"simany/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simany-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simany-topo", flag.ContinueOnError)
	var (
		gen   = fs.String("gen", "", "generate a topology: mesh, torus, ring, star, full, clustered4, clustered8")
		cores = fs.Int("cores", 64, "core count for -gen")
		info  = fs.String("info", "", "print statistics about a topology file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *gen != "":
		t, err := generate(*gen, *cores)
		if err != nil {
			return err
		}
		return topology.WriteAdjacency(os.Stdout, t)
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err := topology.ParseAdjacency(f)
		if err != nil {
			return err
		}
		describe(t)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("one of -gen or -info is required")
	}
}

func generate(kind string, n int) (*topology.Topology, error) {
	lat, bw := topology.DefaultLatency, topology.DefaultBandwidth
	switch kind {
	case "mesh":
		return topology.Mesh(n), nil
	case "torus":
		w, h := topology.MeshDims(n)
		return topology.Torus2D(w, h, lat, bw), nil
	case "ring":
		return topology.Ring(n, lat, bw), nil
	case "star":
		return topology.Star(n, lat, bw), nil
	case "full":
		return topology.FullyConnected(n, lat, bw), nil
	case "clustered4":
		return topology.Clustered(n, topology.DefaultClusteredParams(4)), nil
	case "clustered8":
		return topology.Clustered(n, topology.DefaultClusteredParams(8)), nil
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func describe(t *topology.Topology) {
	minDeg, maxDeg := t.N(), 0
	for c := 0; c < t.N(); c++ {
		d := t.Degree(c)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("cores      %d\n", t.N())
	fmt.Printf("links      %d (directed)\n", t.NumLinks())
	fmt.Printf("connected  %v\n", t.Connected())
	fmt.Printf("diameter   %d hops (global drift bound = diameter × T)\n", t.Diameter())
	fmt.Printf("degree     min %d, max %d\n", minDeg, maxDeg)
}
