// Command simany-topo generates, inspects and converts the adjacency-
// matrix topology files SiMany reads (§III: "Network topology is specified
// in a configuration file as an adjacency matrix").
//
// Usage:
//
//	simany-topo -gen mesh -cores 64 > mesh64.topo
//	simany-topo -gen clustered4 -cores 256 > c4.topo
//	simany-topo -gen chiplet:8x8,4x4,10x10 -describe
//	simany-topo -info mesh64.topo
//	simany-topo -gen chiplet:4x4,2x2 -cuts 4
package main

import (
	"flag"
	"fmt"
	"os"

	"simany/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simany-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simany-topo", flag.ContinueOnError)
	var (
		gen   = fs.String("gen", "", "generate a topology: mesh, torus, ring, star, full, clustered4, clustered8, or a spec like chiplet:8x8,4x4 (see docs/topology.md)")
		cores = fs.Int("cores", 64, "core count for the named -gen kinds")
		info  = fs.String("info", "", "print statistics about a topology file")
		desc  = fs.Bool("describe", false, "with -gen: print statistics instead of the adjacency file")
		cuts  = fs.Int("cuts", 0, "with -gen or -info: report partition cut sizes for this shard count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var t *topology.Topology
	switch {
	case *gen != "":
		var err error
		if t, err = generate(*gen, *cores); err != nil {
			return err
		}
		if !*desc && *cuts == 0 {
			return topology.WriteAdjacency(os.Stdout, t)
		}
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			return err
		}
		defer f.Close()
		if t, err = topology.ParseAdjacency(f); err != nil {
			return err
		}
		*desc = true
	default:
		fs.Usage()
		return fmt.Errorf("one of -gen or -info is required")
	}
	if *desc {
		describe(t)
	}
	if *cuts > 0 {
		reportCuts(t, *cuts)
	}
	return nil
}

func generate(kind string, n int) (*topology.Topology, error) {
	lat, bw := topology.DefaultLatency, topology.DefaultBandwidth
	switch kind {
	case "mesh":
		return topology.Mesh(n), nil
	case "torus":
		w, h := topology.MeshDims(n)
		return topology.Torus2D(w, h, lat, bw), nil
	case "ring":
		return topology.Ring(n, lat, bw), nil
	case "star":
		return topology.Star(n, lat, bw), nil
	case "full":
		return topology.FullyConnected(n, lat, bw), nil
	case "clustered4":
		return topology.Clustered(n, topology.DefaultClusteredParams(4)), nil
	case "clustered8":
		return topology.Clustered(n, topology.DefaultClusteredParams(8)), nil
	default:
		// Everything else goes through the spec grammar ("chiplet:...",
		// "mesh:16x8", "ring:64", ...).
		return topology.ParseSpec(kind)
	}
}

// exactDiameterLimit bounds the machine size for which describe computes
// the exact diameter: the all-pairs BFS is O(n·E) and becomes minutes-slow
// past a few thousand cores. Hierarchical topologies carry a precomputed
// analytic bound and are exempt.
const exactDiameterLimit = 4096

func describe(t *topology.Topology) {
	minDeg, maxDeg := t.N(), 0
	for c := 0; c < t.N(); c++ {
		d := t.Degree(c)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("cores      %d\n", t.N())
	fmt.Printf("links      %d (directed)\n", t.NumLinks())
	connected := t.Connected()
	fmt.Printf("connected  %v\n", connected)
	switch {
	case !connected:
		// Diameter's -1 sentinel means "no finite drift bound"; say so
		// instead of printing a bare -1 (the simulator refuses
		// disconnected topologies at construction).
		fmt.Printf("diameter   unbounded (disconnected network; the simulator rejects it)\n")
	case t.Hierarchy() != nil:
		fmt.Printf("diameter   ≤ %d hops (analytic bound; global drift bound = diameter × T)\n", t.Diameter())
	case t.N() > exactDiameterLimit:
		fmt.Printf("diameter   not computed (exact all-pairs BFS skipped beyond %d cores)\n", exactDiameterLimit)
	default:
		fmt.Printf("diameter   %d hops (global drift bound = diameter × T)\n", t.Diameter())
	}
	fmt.Printf("degree     min %d, max %d\n", minDeg, maxDeg)
	if h := t.Hierarchy(); h != nil {
		fmt.Printf("hierarchy  %s\n", h)
		for i, tr := range h.Tiers {
			fmt.Printf("  %-8s %dx%d  lat %v  bw %d B/cy  penalty %v  (%d units of %d cores)\n",
				topology.TierName(i), tr.W, tr.H, tr.Lat, tr.BW, tr.Penalty,
				h.NumUnits(i), h.CoresPerUnit(i))
		}
	}
}

// reportCuts compares the hierarchy-aligned partition against the flat
// contiguous partition for the given shard count.
func reportCuts(t *topology.Topology, k int) {
	aligned := topology.PartitionFor(t, k)
	flat := topology.Partition(t, k)
	fmt.Printf("partition  %d shards\n", k)
	fmt.Printf("  flat cut     %d edges\n", topology.CutEdges(t, flat))
	fmt.Printf("  aligned cut  %d edges\n", topology.CutEdges(t, aligned))
	if t.Hierarchy() != nil {
		cuts := topology.TierCuts(t, aligned)
		for i, c := range cuts {
			fmt.Printf("  aligned cut at %-8s %d\n", topology.TierName(i), c)
		}
	}
}
