package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"mesh", "torus", "ring", "star", "full", "clustered4", "clustered8"} {
		topo, err := generate(kind, 16)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if topo.N() != 16 || !topo.Connected() {
			t.Errorf("%s: malformed topology", kind)
		}
	}
	if _, err := generate("blob", 8); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestRunGenAndInfo(t *testing.T) {
	// -gen writes to stdout; redirect it to a file, then -info reads it.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.topo")
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	genErr := run([]string{"-gen", "clustered4", "-cores", "64"})
	os.Stdout = old
	f.Close()
	if genErr != nil {
		t.Fatal(genErr)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode should error")
	}
	if err := run([]string{"-gen", "nope"}); err == nil {
		t.Error("bad kind should error")
	}
	if err := run([]string{"-info", "/nonexistent.topo"}); err == nil {
		t.Error("missing file should error")
	}
}
