// Command simany runs one dwarf benchmark on one simulated many-core
// machine and reports virtual time, speedup-relevant statistics and
// simulation cost.
//
// Usage:
//
//	simany -bench quicksort -cores 64 -mem shared -style uniform -T 100
//
// Flags select the architecture grid of the paper (§V): core count, mesh
// style (uniform, polymorphic, clustered4, clustered8), memory organization
// (shared, shared+coherence, distributed), synchronization policy and the
// maximum local drift T.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"simany/internal/bench"
	"simany/internal/config"
	"simany/internal/core"
	"simany/internal/metrics"
	"simany/internal/rt"
	"simany/internal/trace"
	"simany/internal/vtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simany:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simany", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "quicksort", "benchmark: "+strings.Join(bench.Names(), ", "))
		cores     = fs.Int("cores", 64, "number of cores")
		topoSpec  = fs.String("topo", "", "topology spec overriding -cores/-style: chiplet:8x8,4x4[,...], mesh:WxH, torus:WxH, ring:N, star:N, full:N (docs/topology.md)")
		memKind   = fs.String("mem", "shared", "memory organization: shared, coherent, distributed")
		style     = fs.String("style", "uniform", "machine style: uniform, polymorphic, clustered4, clustered8")
		policy    = fs.String("policy", "spatial", "sync policy: spatial, cyclelevel, quantum:<cy>, slack:<cy>, laxp2p:<cy>, unbounded")
		tCycles   = fs.Float64("T", 100, "maximum local drift T in cycles (spatial sync)")
		seed      = fs.Int64("seed", 42, "random seed")
		shards    = fs.Int("shards", 1, "topology partitions for the parallel engine (1 = sequential)")
		workers   = fs.Int("workers", 0, "host threads driving the shards (0 = all CPUs, capped at -shards)")
		sched     = fs.String("sched", "auto", "scheduler implementation: auto (indexed when the policy allows), scan (reference linear scan), verify (both, panic on divergence)")
		eff       = fs.String("eff", "auto", "effective-time evaluation: auto (lazy when the policy allows), eager (reference propagation flood), lazy, verify (eager with lazy cross-check, panic on divergence)")
		scale     = fs.Float64("scale", 1, "dataset scale factor (≥1 approaches paper-sized inputs)")
		verbose   = fs.Bool("v", false, "print runtime statistics")
		traceFile = fs.String("trace", "", "write an event trace to this file (.json = Chrome/Perfetto trace_event format, otherwise text)")
		timeline  = fs.Bool("timeline", false, "print an ASCII per-core activity timeline")
		metricsF  = fs.String("metrics", "", "write the deterministic metrics snapshot to this file (\"-\" = stdout)")
		pprofF    = fs.String("pprof", "", "write a host CPU profile of the simulation to this file")
		machineF  = fs.String("machine", "", "load the architecture from a machine description file (overrides -cores/-style/-mem/-policy/-T)")
		ckptF     = fs.String("checkpoint", "", "pause at the -checkpoint-after position and write a checkpoint to this file")
		ckptAfter = fs.Int64("checkpoint-after", 0, "engine position (barriers for -shards > 1, steps otherwise) to checkpoint at; requires -checkpoint")
		resumeF   = fs.String("resume", "", "resume from a checkpoint file written by -checkpoint (same benchmark, seed, scale and machine flags required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckptF != "" && *ckptAfter <= 0 {
		return fmt.Errorf("-checkpoint requires -checkpoint-after N (N > 0)")
	}

	b, err := bench.ByName(*benchName)
	if err != nil {
		return err
	}
	var m config.Machine
	if *machineF != "" {
		var err error
		m, err = config.LoadMachineFile(*machineF)
		if err != nil {
			return err
		}
		if m.Seed == 0 {
			m.Seed = *seed
		}
		m.Shards, m.Workers, m.Sched, m.Eff = *shards, *workers, *sched, *eff
		mode := bench.Shared
		if m.Mem == config.DistributedMem {
			mode = bench.Distributed
		}
		return execute(b, m, mode, *seed, *scale, runOpts{
			verbose: *verbose, traceFile: *traceFile, timeline: *timeline,
			metricsFile: *metricsF, pprofFile: *pprofF,
			checkpointFile: *ckptF, checkpointAfter: *ckptAfter, resumeFile: *resumeF,
		})
	}
	m = config.Machine{Cores: *cores, TopoSpec: *topoSpec, T: vtime.Cycles(*tCycles), Policy: *policy, Seed: *seed,
		Shards: *shards, Workers: *workers, Sched: *sched, Eff: *eff}
	switch *style {
	case "uniform":
		m.Style = config.Uniform
	case "polymorphic":
		m.Style = config.Polymorphic
	case "clustered4":
		m.Style = config.Clustered4
	case "clustered8":
		m.Style = config.Clustered8
	default:
		return fmt.Errorf("unknown style %q", *style)
	}
	mode := bench.Shared
	switch *memKind {
	case "shared":
		m.Mem = config.SharedMem
	case "coherent", "shared+coherence":
		m.Mem = config.SharedMemCoherent
	case "distributed", "dist":
		m.Mem = config.DistributedMem
		mode = bench.Distributed
	default:
		return fmt.Errorf("unknown memory kind %q", *memKind)
	}

	return execute(b, m, mode, *seed, *scale, runOpts{
		verbose: *verbose, traceFile: *traceFile, timeline: *timeline,
		metricsFile: *metricsF, pprofFile: *pprofF,
		checkpointFile: *ckptF, checkpointAfter: *ckptAfter, resumeFile: *resumeF,
	})
}

// runOpts bundles the observability outputs of one run.
type runOpts struct {
	verbose     bool
	traceFile   string
	timeline    bool
	metricsFile string
	pprofFile   string

	// checkpointFile/checkpointAfter pause the run at an engine position
	// and write the kernel state; resumeFile restores a previous run
	// instead of starting from virtual time zero (docs/checkpoint.md).
	checkpointFile  string
	checkpointAfter int64
	resumeFile      string
}

// execute generates the workload, runs the simulation and reports.
func execute(b bench.Benchmark, m config.Machine, mode bench.Mode, seed int64, scale float64, opts runOpts) error {
	verbose, traceFile, timeline := opts.verbose, opts.traceFile, opts.timeline
	b.Generate(seed, scale)
	nativeStart := time.Now()
	want := b.RunNative()
	nativeWall := time.Since(nativeStart)

	if opts.metricsFile != "" {
		m.Metrics = metrics.New()
	}
	k, r, err := m.Build()
	if err != nil {
		return err
	}
	if n := k.ClampNotice(); n != "" {
		fmt.Fprintln(os.Stderr, n)
	}
	if n := k.DemotionNotice(); n != "" {
		fmt.Fprintln(os.Stderr, n)
	}
	var rec *trace.Recorder
	if traceFile != "" || timeline {
		rec = trace.NewRecorder(1_000_000)
		k.SetTracer(rec)
	}
	if opts.pprofFile != "" {
		f, err := os.Create(opts.pprofFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
	}
	if opts.resumeFile != "" {
		f, err := os.Open(opts.resumeFile)
		if err != nil {
			return err
		}
		ck, err := core.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := k.ArmResume(ck); err != nil {
			return err
		}
		fmt.Printf("resume           %s (position %d, %s mode)\n", opts.resumeFile, ck.Pos, ck.Mode)
	}
	if opts.checkpointFile != "" {
		k.PauseAfter(opts.checkpointAfter)
	}
	root, finish := b.Program(r, mode)
	simStart := time.Now()
	res, err := r.Run(b.Name(), root)
	if opts.pprofFile != "" {
		pprof.StopCPUProfile()
	}
	if errors.Is(err, core.ErrPaused) && opts.checkpointFile != "" {
		f, cerr := os.Create(opts.checkpointFile)
		if cerr != nil {
			return cerr
		}
		if cerr := k.Checkpoint(f); cerr != nil {
			f.Close()
			return cerr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Printf("checkpoint       position %d -> %s (resume with -resume %s and identical flags)\n",
			k.Position(), opts.checkpointFile, opts.checkpointFile)
		return nil
	}
	if err != nil {
		return err
	}
	simWall := time.Since(simStart)
	ok := finish() == want

	fmt.Printf("benchmark        %s (%s)\n", b.Name(), mode)
	if h := k.Topology().Hierarchy(); h != nil {
		fmt.Printf("machine          %d cores, %s, %s memory, policy %s\n",
			k.NumCores(), h, m.Mem, k.Policy().Name())
	} else {
		fmt.Printf("machine          %d cores, %s mesh, %s memory, policy %s\n",
			k.NumCores(), m.Style, m.Mem, k.Policy().Name())
	}
	fmt.Printf("virtual time     %.0f cycles\n", res.FinalVT.InCycles())
	fmt.Printf("correct output   %v\n", ok)
	fmt.Printf("simulation wall  %v (native %v, normalized %.1fx)\n",
		simWall.Round(time.Microsecond), nativeWall.Round(time.Microsecond),
		float64(simWall)/float64(nativeWall+1))
	if verbose {
		fmt.Printf("scheduler        %s\n", k.Scheduler())
		fmt.Printf("effective time   %s\n", k.EffScheme())
		fmt.Printf("kernel steps     %d\n", res.Steps)
		if secs := simWall.Seconds(); secs > 0 {
			fmt.Printf("throughput       %.0f steps/sec host\n", float64(res.Steps)/secs)
		}
		fmt.Printf("messages         %d (%d bytes, %d hops, %d handled out of order)\n",
			res.Messages, res.Bytes, res.Hops, res.OutOfOrder)
		fmt.Printf("policy stalls    %d\n", res.Stalls)
		fmt.Printf("instructions     %d annotated\n", res.Instructions)
		fmt.Printf("host parallelism %.1f cores runnable on average (max %d)\n",
			res.AvgRunnable, res.MaxRunnable)
		st := r.Stats()
		fmt.Printf("task runtime     %+v\n", st)
		if res.Shards > 1 {
			fmt.Printf("engine           %d shards, %d workers\n", res.Shards, k.Workers())
			for i, s := range res.PerShard {
				fmt.Printf("  shard %-3d      %4d cores, %9d steps (%.1f%% of total)\n",
					i, s.Cores, s.Steps, 100*s.Util)
			}
		}
		printBusiest(k, r)
	}
	if rec != nil {
		if rec.Truncated() {
			// A truncated trace is a valid prefix, but utilization and
			// message counts only describe the retained window.
			fmt.Fprintf(os.Stderr, "simany: trace truncated: %d events dropped beyond the %d-event limit; analyses cover the retained prefix only\n",
				rec.Dropped(), rec.Limit)
		}
		if timeline {
			fmt.Println()
			if err := trace.Timeline(os.Stdout, rec.Events(), k.NumCores(), res.FinalVT, 72); err != nil {
				return err
			}
			for _, a := range trace.Anomalies(rec.Events(), k.NumCores(), res.FinalVT) {
				fmt.Fprintln(os.Stderr, "simany: trace anomaly:", a)
			}
		}
		if traceFile != "" {
			f, err := os.Create(traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if strings.HasSuffix(traceFile, ".json") {
				err = trace.WriteChrome(f, rec.Events(), k.NumCores(), res.FinalVT)
			} else {
				err = rec.WriteText(f)
			}
			if err != nil {
				return err
			}
			fmt.Printf("trace            %d events -> %s\n", len(rec.Events()), traceFile)
		}
	}
	if opts.metricsFile != "" {
		out := os.Stdout
		if opts.metricsFile != "-" {
			f, err := os.Create(opts.metricsFile)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := m.Metrics.WriteText(out); err != nil {
			return err
		}
	}
	if !ok {
		return fmt.Errorf("simulated output diverged from native run")
	}
	return nil
}

func printBusiest(k *core.Kernel, r *rt.Runtime) {
	busiest, maxStarts := 0, int64(-1)
	for i := 0; i < k.NumCores(); i++ {
		if s := k.Core(i).Stats().TaskStarts; s > maxStarts {
			busiest, maxStarts = i, s
		}
	}
	fmt.Printf("busiest core     %d (%d task starts)\n", busiest, maxStarts)
}
