package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-bench", "octree", "-cores", "8", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseDistributed(t *testing.T) {
	err := run([]string{"-bench", "spmxv", "-cores", "8", "-mem", "distributed",
		"-scale", "0.1", "-v"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunStylesAndPolicies(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "octree", "-cores", "8", "-style", "polymorphic", "-scale", "0.1"},
		{"-bench", "octree", "-cores", "8", "-style", "clustered4", "-scale", "0.1"},
		{"-bench", "octree", "-cores", "4", "-policy", "quantum:50", "-scale", "0.1"},
		{"-bench", "octree", "-cores", "4", "-policy", "unbounded", "-scale", "0.1"},
		{"-bench", "octree", "-cores", "4", "-mem", "coherent", "-scale", "0.1"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "nope"},
		{"-bench", "octree", "-style", "weird"},
		{"-bench", "octree", "-mem", "weird"},
		{"-bench", "octree", "-cores", "4", "-policy", "wat"},
		{"-machine", "/nonexistent/machine.conf"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("no error for %v", args)
		}
	}
}

func TestRunTraceAndTimeline(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.txt")
	err := run([]string{"-bench", "octree", "-cores", "4", "-scale", "0.1",
		"-trace", tracePath, "-timeline"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "task-start") {
		t.Error("trace file missing events")
	}
}

func TestRunMachineFile(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.conf")
	if err := os.WriteFile(mPath, []byte("cores 8\nmem distributed\nT 50\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "octree", "-machine", mPath, "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedTraceMetricsChrome(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	err := run([]string{"-bench", "octree", "-cores", "8", "-scale", "0.1",
		"-shards", "2", "-workers", "2",
		"-trace", jsonPath, "-metrics", metricsPath})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Error(".json trace is not in Chrome trace_event format")
	}
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"net.msg.latency", "shard.barrier.count"} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("metrics output missing %q:\n%s", want, mdata)
		}
	}
}

func TestRunPprof(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "cpu.pprof")
	if err := run([]string{"-bench", "octree", "-cores", "4", "-scale", "0.1",
		"-pprof", p}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(p); err != nil || st.Size() == 0 {
		t.Errorf("profile not written: %v", err)
	}
}
