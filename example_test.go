package simany_test

import (
	"fmt"
	"strings"

	"simany"
)

// ExampleSimulation demonstrates the core flow: build a machine, run an
// annotated fork/join program, inspect the result.
func ExampleSimulation() {
	sim, err := simany.NewSimulation(simany.NewMachine(16))
	if err != nil {
		panic(err)
	}
	done := 0
	res, err := sim.Run("example", func(e *simany.Env) {
		g := sim.RT.NewGroup()
		var split func(e *simany.Env, n int)
		split = func(e *simany.Env, n int) {
			for n > 1 {
				half := n / 2
				sim.RT.SpawnOrRun(e, g, "w", 0, func(ce *simany.Env) { split(ce, half) })
				n -= half
			}
			e.ComputeCycles(10_000)
			done++
		}
		split(e, 16)
		sim.RT.Join(e, g)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks completed:", done)
	fmt.Println("parallel faster than serial:", res.FinalVT < simany.Cycles(16*10_000))
	// Output:
	// tasks completed: 16
	// parallel faster than serial: true
}

// ExampleParseTopology loads an arbitrary interconnect from the textual
// adjacency format and inspects its drift-bound-relevant properties.
func ExampleParseTopology() {
	src := `cores 4
link 0 1 0.5
link 1 2 1
link 2 3 4
`
	topo, err := simany.ParseTopology(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println("cores:", topo.N())
	fmt.Println("diameter:", topo.Diameter())
	fmt.Println("connected:", topo.Connected())
	// Output:
	// cores: 4
	// diameter: 3
	// connected: true
}

// ExampleBenchmarkByName runs a paper benchmark end to end and verifies
// the simulated output against the native computation.
func ExampleBenchmarkByName() {
	b, err := simany.BenchmarkByName("quicksort")
	if err != nil {
		panic(err)
	}
	b.Generate(42, 0.1)
	want := b.RunNative()
	sim, err := simany.NewSimulation(simany.NewMachine(8))
	if err != nil {
		panic(err)
	}
	root, finish := b.Program(sim.RT, simany.BenchShared)
	if _, err := sim.Run("quicksort", root); err != nil {
		panic(err)
	}
	fmt.Println("simulated result matches native:", finish() == want)
	// Output:
	// simulated result matches native: true
}

// ExampleParseMachine assembles a complete architecture from a machine
// description.
func ExampleParseMachine() {
	m, err := simany.ParseMachine(strings.NewReader(`
cores 64
style clustered4
mem distributed
T 50
`), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Cores, "cores,", m.Style.String()+",", m.Mem)
	// Output:
	// 64 cores, clustered4, distributed
}
