package simany

// Microbenchmarks of the simulator's own machinery: kernel scheduling
// throughput, network routing/contention cost, and the probe/spawn/join
// fast path. These are the quantities behind SiMany's headline claim of
// being orders of magnitude faster than flexible cycle-level approaches.

import (
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/rt"
	"simany/internal/topology"
)

// BenchmarkKernelSteps measures raw scheduling throughput: two cores
// leapfrogging under spatial synchronization with tiny blocks, i.e. one
// stall/resume pair per block.
func BenchmarkKernelSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
		k := core.New(core.Config{Topo: topo, Policy: core.Spatial{T: Cycles(10)}, Seed: 1})
		for c := 0; c < 2; c++ {
			k.InjectTask(c, "w", func(e *core.Env) {
				for j := 0; j < 1000; j++ {
					e.ComputeCycles(10)
				}
			}, nil, 0)
		}
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeBlocks measures the native-execution fast path: a single
// core running annotation blocks without any interaction (no yields at
// all — the core of the paper's speed argument).
func BenchmarkNativeBlocks(b *testing.B) {
	topo := topology.Mesh(1)
	k := core.New(core.Config{Topo: topo, Seed: 1})
	k.InjectTask(0, "w", func(e *core.Env) {
		for i := 0; i < b.N; i++ {
			e.ComputeCycles(5)
		}
	}, nil, 0)
	b.ResetTimer()
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNetworkSend measures routed message timing with contention on a
// 32x32 mesh (the 1024-core configuration).
func BenchmarkNetworkSend(b *testing.B) {
	m := network.New(topology.Mesh(1024), network.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := (i * 37) % 1024
		dst := (i*101 + 13) % 1024
		m.Send(network.Message{Src: src, Dst: dst, Size: 64, Stamp: Cycles(float64(i))})
	}
}

// BenchmarkSpawnJoin measures the full conditional-spawn round trip:
// probe, ack, task ship, start, completion, join notification.
func BenchmarkSpawnJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := core.New(core.Config{Topo: topology.Mesh(4), Mem: mem.NewShared(), Seed: 1})
		r := rt.New(k, nil, rt.DefaultOptions())
		if _, err := r.Run("root", func(e *core.Env) {
			g := r.NewGroup()
			for j := 0; j < 64; j++ {
				r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
					ce.ComputeCycles(100)
				})
			}
			r.Join(e, g)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedMemAccess measures the pessimistic-L1 + bank path.
func BenchmarkSharedMemAccess(b *testing.B) {
	k := core.New(core.Config{Topo: topology.Mesh(1), Mem: mem.NewShared(), Seed: 1})
	k.InjectTask(0, "w", func(e *core.Env) {
		for i := 0; i < b.N; i++ {
			e.EnterScope()
			e.Read(uint64(i%4096)*32, 16, 8)
			e.LeaveScope()
		}
	}, nil, 0)
	b.ResetTimer()
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCellTransfer measures the distributed-memory cell round trip
// (DATA_REQUEST / DATA_RESPONSE with L2 install/evict).
func BenchmarkCellTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := core.New(core.Config{Topo: topology.Mesh(4), Mem: mem.NewDistributed(), Seed: 1})
		r := rt.New(k, nil, rt.DefaultOptions())
		if _, err := r.Run("root", func(e *core.Env) {
			l := r.NewCell(e, 256, int(0))
			g := r.NewGroup()
			for j := 0; j < 16; j++ {
				r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
					r.Access(ce, l, func(d any) any { return d.(int) + 1 })
				})
			}
			r.Join(e, g)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale1024Cores measures a whole small program on the paper's
// largest machine, dominated by idle-shadow propagation and scheduling
// scans — the costs that grow with machine size.
func BenchmarkScale1024Cores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := core.New(core.Config{Topo: topology.Mesh(1024), Mem: mem.NewShared(), Seed: 1})
		r := rt.New(k, nil, rt.DefaultOptions())
		if _, err := r.Run("root", func(e *core.Env) {
			g := r.NewGroup()
			var split func(e *core.Env, n int)
			split = func(e *core.Env, n int) {
				for n > 1 {
					half := n / 2
					r.SpawnOrRun(e, g, "s", 0, func(ce *core.Env) { split(ce, half) })
					n -= half
				}
				e.ComputeCycles(5000)
			}
			split(e, 256)
			r.Join(e, g)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
