package simany

// One testing.B benchmark per figure/table of the paper's evaluation
// (§VI). Each iteration regenerates the figure's data on a truncated core
// grid with reduced datasets so `go test -bench=.` completes in minutes;
// the full paper grid (up to 1024 cores, paper-sized datasets) is produced
// by `go run ./cmd/simany-sweep` and recorded in EXPERIMENTS.md.
//
// Reported custom metrics summarize each figure's headline number so that
// regressions in *shape* (not just wall time) are visible in benchmark
// diffs.

import (
	"strconv"
	"testing"

	"simany/internal/harness"
	"simany/internal/stats"
)

// figHarness builds the truncated-grid harness used by the figure benches.
func figHarness(benchmarks ...string) *harness.Harness {
	return harness.New(harness.Options{
		Seed:       42,
		Scale:      0.25,
		Quick:      true,
		Benchmarks: benchmarks,
	})
}

// lastColMean extracts the mean of a table's final numeric column.
func lastColMean(t *stats.Table) float64 {
	var vals []float64
	for _, row := range t.Rows {
		if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return stats.Mean(vals)
}

func runFigure(b *testing.B, id string, benchmarks ...string) []*stats.Table {
	b.Helper()
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		h := figHarness(benchmarks...)
		var err error
		tables, err = h.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// BenchmarkFig05 regenerates the uniform-mesh validation: SiMany (VT) vs
// the cycle-level reference (CL) speedups on shared memory with coherence
// timing.
func BenchmarkFig05(b *testing.B) {
	tables := runFigure(b, harness.Fig5, "quicksort", "spmxv")
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkFig06 is the polymorphic-mesh validation.
func BenchmarkFig06(b *testing.B) {
	tables := runFigure(b, harness.Fig6, "quicksort", "spmxv")
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkFig07 regenerates the normalized simulation time figure and
// reports the fitted power-law exponent (the paper observes a square law
// with a small coefficient).
func BenchmarkFig07(b *testing.B) {
	tables := runFigure(b, harness.Fig7, "quicksort", "octree")
	b.ReportMetric(lastColMean(tables[0]), "powerlaw-k")
}

// BenchmarkFig08 regenerates the shared-memory speedup curves.
func BenchmarkFig08(b *testing.B) {
	tables := runFigure(b, harness.Fig8)
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkFig09 regenerates the distributed-memory speedup curves
// (data-contended benchmarks collapse).
func BenchmarkFig09(b *testing.B) {
	tables := runFigure(b, harness.Fig9)
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkFig10 regenerates the virtual-time-vs-T table (speedup
// variation for T ∈ {50,500,1000} against T=100).
func BenchmarkFig10(b *testing.B) {
	runFigure(b, harness.Fig10, "quicksort", "dijkstra")
}

// BenchmarkFig11 regenerates the simulation-time-vs-T table (larger T ⇒
// fewer synchronizations ⇒ faster simulation).
func BenchmarkFig11(b *testing.B) {
	runFigure(b, harness.Fig11, "quicksort", "dijkstra")
}

// BenchmarkFig12 regenerates the clustered-mesh distributed-memory
// speedups.
func BenchmarkFig12(b *testing.B) {
	tables := runFigure(b, harness.Fig12)
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkFig13 regenerates the polymorphic-mesh distributed-memory
// speedups.
func BenchmarkFig13(b *testing.B) {
	tables := runFigure(b, harness.Fig13)
	b.ReportMetric(lastColMean(tables[0]), "speedup@max")
}

// BenchmarkErrors regenerates the §VI geometric-mean error aggregates of
// SiMany against the cycle-level reference.
func BenchmarkErrors(b *testing.B) {
	runFigure(b, harness.FigErrors, "quicksort", "spmxv")
}

// BenchmarkAblationSync compares spatial synchronization against the
// related-work schemes (§VII): strict order, global quantum, bounded
// slack, LaxP2P, unbounded.
func BenchmarkAblationSync(b *testing.B) {
	runFigure(b, harness.FigAblation)
}

// BenchmarkFigParallel regenerates the §VIII preliminary study: how many
// cores are independently simulatable at once under spatial
// synchronization.
func BenchmarkFigParallel(b *testing.B) {
	runFigure(b, harness.FigParallel, "dijkstra", "octree")
}

// BenchmarkFigHetero regenerates the §VIII future-work extension:
// heterogeneity-aware dispatch on polymorphic distributed machines.
func BenchmarkFigHetero(b *testing.B) {
	runFigure(b, harness.FigHetero, "quicksort", "octree")
}
