module simany

go 1.22
