// Package vtime defines the virtual-time representation used throughout the
// simulator.
//
// SiMany expresses every cost in processor cycles, but some architecture
// parameters are sub-cycle (the clustered configurations of the paper use
// 0.5-cycle intra-cluster link latencies). Time is therefore carried as a
// fixed-point count of millicycles: exact for every parameter in the paper
// and with ~9.2e15 cycles of range, far beyond any simulated program.
package vtime

import (
	"fmt"
	"math"
)

// Time is a virtual time or duration, in millicycles.
type Time int64

// Cycle is one processor cycle expressed in Time units.
const Cycle Time = 1000

// Inf is a virtual time later than any reachable simulation time.
const Inf Time = math.MaxInt64

// Cycles converts a (possibly fractional) cycle count to a Time.
func Cycles(c float64) Time {
	return Time(math.Round(c * float64(Cycle)))
}

// CyclesInt converts a whole cycle count to a Time.
func CyclesInt(c int64) Time {
	return Time(c) * Cycle
}

// InCycles reports t as a float64 number of cycles.
func (t Time) InCycles() float64 {
	return float64(t) / float64(Cycle)
}

// WholeCycles reports t rounded to the nearest whole cycle.
func (t Time) WholeCycles() int64 {
	half := int64(Cycle) / 2
	v := int64(t)
	if v >= 0 {
		return (v + half) / int64(Cycle)
	}
	return (v - half) / int64(Cycle)
}

// Scale multiplies t by f, rounding to the nearest unit. It is used for
// polymorphic cores whose computation costs scale with the inverse of their
// speed factor.
func (t Time) Scale(f float64) Time {
	if t == Inf {
		return Inf
	}
	return Time(math.Round(float64(t) * f))
}

// String formats the time as a cycle count.
func (t Time) String() string {
	if t == Inf {
		return "+inf"
	}
	if t%Cycle == 0 {
		return fmt.Sprintf("%dcy", int64(t/Cycle))
	}
	return fmt.Sprintf("%.3fcy", t.InCycles())
}

// Ratio returns num/den as a dimensionless float. It is the sanctioned way
// to compare two virtual times (speedups, utilizations, relative errors)
// without stripping the millicycle unit at the call site: the unit cancels
// inside the division. den == 0 yields ±Inf/NaN per IEEE-754, matching a
// direct float division.
func Ratio(num, den Time) float64 {
	return float64(num) / float64(den)
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
