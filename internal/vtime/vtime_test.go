package vtime

import (
	"testing"
	"testing/quick"
)

func TestCyclesRoundTrip(t *testing.T) {
	cases := []float64{0, 0.5, 1, 4, 10, 100, 1000, 0.001}
	for _, c := range cases {
		got := Cycles(c).InCycles()
		if got != c {
			t.Errorf("Cycles(%v).InCycles() = %v", c, got)
		}
	}
}

func TestCyclesInt(t *testing.T) {
	if CyclesInt(7) != 7*Cycle {
		t.Fatalf("CyclesInt(7) = %v", CyclesInt(7))
	}
}

func TestWholeCycles(t *testing.T) {
	cases := []struct {
		in   Time
		want int64
	}{
		{0, 0},
		{Cycle, 1},
		{Cycle + Cycle/2, 2},     // 1.5 rounds to 2
		{Cycle + Cycle/2 - 1, 1}, // just below 1.5 rounds to 1
		{-Cycle, -1},
		{10 * Cycle, 10},
	}
	for _, c := range cases {
		if got := c.in.WholeCycles(); got != c.want {
			t.Errorf("WholeCycles(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestScale(t *testing.T) {
	if got := CyclesInt(10).Scale(2); got != CyclesInt(20) {
		t.Errorf("10cy*2 = %v", got)
	}
	if got := CyclesInt(3).Scale(1.0 / 1.5); got != CyclesInt(2) {
		t.Errorf("3cy/1.5 = %v", got)
	}
	if got := Inf.Scale(0.5); got != Inf {
		t.Errorf("Inf.Scale = %v, want Inf", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestString(t *testing.T) {
	if s := CyclesInt(42).String(); s != "42cy" {
		t.Errorf("String() = %q", s)
	}
	if s := Cycles(0.5).String(); s != "0.500cy" {
		t.Errorf("String() = %q", s)
	}
	if s := Inf.String(); s != "+inf" {
		t.Errorf("String() = %q", s)
	}
}

func TestMinMaxProperties(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mn, mx := Min(x, y), Max(x, y)
		return mn <= mx && (mn == x || mn == y) && (mx == x || mx == y) && mn+mx == x+y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWholeCyclesMonotone(t *testing.T) {
	f := func(a int32) bool {
		t1 := Time(a)
		return t1.WholeCycles() <= (t1 + Cycle).WholeCycles()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
