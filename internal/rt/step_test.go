package rt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/metrics"
	"simany/internal/snap"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/trace"
)

// stepEnv is a fully-observed kernel plus runtime with the test step
// programs registered — the fixture for decode-mode checkpoint tests.
type stepEnv struct {
	k   *core.Kernel
	r   *Runtime
	rec *trace.Recorder
	reg *metrics.Registry
}

func newStepEnv(shards, workers int, seed int64) *stepEnv {
	rec := trace.NewRecorder(0)
	reg := metrics.New()
	k := core.New(core.Config{
		Topo:    topology.Mesh(16),
		Policy:  core.Spatial{T: core.DefaultT},
		Mem:     mem.NewShared(),
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		Tracer:  rec,
		Metrics: reg,
	})
	r := New(k, nil, DefaultOptions())
	registerStepPrograms(r)
	return &stepEnv{k: k, r: r, rec: rec, reg: reg}
}

// registerStepPrograms installs a fork/join workload expressed entirely as
// step programs: the root spawns Regs[0] workers (falling back inline on
// denial), joins, then runs a tail charge; each worker does a read-heavy
// annotated block sized by its argument. Spawns, probe waits, inline
// fallbacks, joins and horizon stalls are all exercised.
func registerStepPrograms(r *Runtime) {
	r.RegisterProgram(&Program{
		Name: "work",
		Steps: []Step{
			func(e *core.Env, f *Frame) Action {
				n := f.Regs[0]
				return Done().
					Reads(uint64(0x1000+n*64), 24+n%5, 8).
					Exec(timing.Counts{timing.IntALU: 40 + n%7, timing.BranchCond: 12}).
					Writes(uint64(0x8000+n*64), 8, 8)
			},
		},
	})
	r.RegisterProgram(&Program{
		Name: "root",
		Steps: []Step{
			// 0: spawn loop — Regs[0] children left, Regs[1] = next child arg.
			func(e *core.Env, f *Frame) Action {
				if f.Regs[0] == 0 {
					return Goto(1)
				}
				f.Regs[0]--
				f.Regs[1]++
				return Spawn("work", 16, f.Regs[1]).Then(0).Cycles(3)
			},
			// 1: wait for every child.
			func(e *core.Env, f *Frame) Action { return Join() },
			// 2: sequential tail via an inline call, then finish.
			func(e *core.Env, f *Frame) Action { return Call("work", 99).Then(3) },
			func(e *core.Env, f *Frame) Action { return Done().Cycles(20) },
		},
	})
}

func (s *stepEnv) run(t *testing.T) core.Result {
	t.Helper()
	res, err := s.r.RunProgram("steproot", "root", 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func stepMetricsText(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestStepProgramRuns sanity-checks the interpreter itself: the workload
// completes, spreads over cores and reports spawn activity.
func TestStepProgramRuns(t *testing.T) {
	env := newStepEnv(4, 2, 11)
	res := env.run(t)
	if res.FinalVT <= 0 {
		t.Fatalf("no virtual time elapsed: %+v", res)
	}
	st := env.r.Stats()
	if st.Spawns == 0 || st.Probes == 0 {
		t.Errorf("fork/join never spawned remotely: %+v", st)
	}
}

// TestStepCheckpointDecodeMode is the tentpole's decode path end to end: a
// workload whose every task body is a step program checkpoints in decode
// mode, and a fresh kernel restores it WITHOUT re-running the prefix —
// RunProgram injects nothing on a decode-armed kernel — yet the spliced
// trace, metrics and result match an uninterrupted run exactly.
func TestStepCheckpointDecodeMode(t *testing.T) {
	const seed = 11
	for _, shards := range []int{1, 4} {
		// Uninterrupted reference.
		full := newStepEnv(shards, 2, seed)
		fullRes := full.run(t)
		fullEvents := full.rec.Events()
		fullMetrics := stepMetricsText(t, full.reg)
		finalPos := full.k.Position()
		if finalPos < 2 {
			t.Fatalf("shards=%d: run too short to interrupt (position %d)", shards, finalPos)
		}

		mid := finalPos / 2
		intr := newStepEnv(shards, 2, seed)
		intr.k.PauseAfter(mid)
		if _, err := intr.r.RunProgram("steproot", "root", 24, 0); !errors.Is(err, core.ErrPaused) {
			t.Fatalf("shards=%d: expected ErrPaused, got %v", shards, err)
		}
		var buf bytes.Buffer
		if err := intr.k.Checkpoint(&buf); err != nil {
			t.Fatalf("shards=%d: checkpoint: %v", shards, err)
		}
		prefixEvents := intr.rec.Events()

		ck, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if ck.Mode != snap.ModeDecode {
			t.Fatalf("shards=%d: all-step workload should checkpoint in decode mode, got %v", shards, ck.Mode)
		}

		res := newStepEnv(shards, 2, seed)
		if err := res.k.ArmResume(ck); err != nil {
			t.Fatalf("shards=%d: arming resume: %v", shards, err)
		}
		resRes, err := res.r.RunProgram("steproot", "root", 24, 0)
		if err != nil {
			t.Fatalf("shards=%d: resumed run: %v", shards, err)
		}
		if !reflect.DeepEqual(resRes, fullRes) {
			t.Errorf("shards=%d: resumed Result diverged:\n  got  %+v\n  want %+v", shards, resRes, fullRes)
		}
		if got := stepMetricsText(t, res.reg); got != fullMetrics {
			t.Errorf("shards=%d: resumed metrics diverged", shards)
		}
		resEvents := res.rec.Events()
		if len(prefixEvents)+len(resEvents) != len(fullEvents) {
			t.Fatalf("shards=%d: spliced trace has %d+%d events, full run %d",
				shards, len(prefixEvents), len(resEvents), len(fullEvents))
		}
		for i, ev := range fullEvents {
			var got core.TraceEvent
			if i < len(prefixEvents) {
				got = prefixEvents[i]
			} else {
				got = resEvents[i-len(prefixEvents)]
			}
			if got != ev {
				t.Fatalf("shards=%d: trace diverged at event %d:\n  got  %+v\n  want %+v", shards, i, got, ev)
			}
		}
	}
}

// TestStepCheckpointEveryBarrier hammers the park serialization: the
// decode round trip must hold at EVERY barrier position, whatever mix of
// stalled, probe-waiting, join-waiting and unstarted tasks that barrier
// happens to catch.
func TestStepCheckpointEveryBarrier(t *testing.T) {
	const seed = 23
	full := newStepEnv(4, 2, seed)
	fullRes := full.run(t)
	finalPos := full.k.Position()

	for pos := int64(1); pos < finalPos; pos++ {
		intr := newStepEnv(4, 2, seed)
		intr.k.PauseAfter(pos)
		if _, err := intr.r.RunProgram("steproot", "root", 24, 0); !errors.Is(err, core.ErrPaused) {
			t.Fatalf("pos %d: expected ErrPaused, got %v", pos, err)
		}
		var buf bytes.Buffer
		if err := intr.k.Checkpoint(&buf); err != nil {
			t.Fatalf("pos %d: checkpoint: %v", pos, err)
		}
		ck, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if ck.Mode != snap.ModeDecode {
			t.Fatalf("pos %d: expected decode mode, got %v", pos, ck.Mode)
		}
		res := newStepEnv(4, 2, seed)
		if err := res.k.ArmResume(ck); err != nil {
			t.Fatalf("pos %d: arming: %v", pos, err)
		}
		resRes, err := res.r.RunProgram("steproot", "root", 24, 0)
		if err != nil {
			t.Fatalf("pos %d: resumed run: %v", pos, err)
		}
		if !reflect.DeepEqual(resRes, fullRes) {
			t.Fatalf("pos %d: result diverged:\n  got  %+v\n  want %+v", pos, resRes, fullRes)
		}
	}
}

// TestStepDecodeRequiresPrograms: resuming a decode checkpoint on a
// runtime missing a program registration must fail cleanly, not misbehave.
func TestStepDecodeRequiresPrograms(t *testing.T) {
	intr := newStepEnv(4, 2, 11)
	intr.k.PauseAfter(2)
	if _, err := intr.r.RunProgram("steproot", "root", 24, 0); !errors.Is(err, core.ErrPaused) {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	var buf bytes.Buffer
	if err := intr.k.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh kernel whose runtime has no programs registered.
	k := core.New(core.Config{
		Topo: topology.Mesh(16), Policy: core.Spatial{T: core.DefaultT},
		Mem: mem.NewShared(), Seed: 11, Shards: 4, Workers: 2,
	})
	New(k, nil, DefaultOptions())
	if err := k.ArmResume(ck); err == nil {
		if _, err2 := k.Run(); err2 == nil {
			t.Fatal("decode resume without program registrations succeeded")
		}
	}
}
