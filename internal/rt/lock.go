package rt

import (
	"simany/internal/cache"
	"simany/internal/core"
	"simany/internal/vtime"
)

// Lock is a shared-memory mutex as used by the shared-memory benchmark
// versions (e.g. protecting graph-node tags in Connected Components). Lock
// acquisitions from different tasks may be simulated in any order — only
// per-task ordering matters for correctness (§II.B "Program execution
// correctness") — and a core running a task that holds a lock is exempt
// from spatial stalling so the deadlock scenario of Fig. 4 cannot occur.
//
// Under the sharded engine each lock is arbitrated at a home core derived
// from its address (like a directory entry homed by address hash): holder
// and waiter state are only mutated from the home core's shard or inside a
// barrier. A task on a foreign shard defers its acquire/release decision to
// the next barrier and blocks; grants wake it through the kernel's
// cross-shard unblock path. The holder may still read l.holder afterwards:
// while a task holds the lock no arbitration path writes it, and the grant
// write is ordered before the wake-up by the barrier.
type Lock struct {
	addr    uint64
	home    int    // arbitration core under sharded execution
	holder  uint64 // task ID, 0 when free
	waiters []*core.Task
}

// LockHandoffCost is the coherence-transfer delay charged when a lock moves
// between tasks (one shared-bank round trip).
//
//lint:allow snapshotsafe immutable configuration default, never written after init
var LockHandoffCost = vtime.CyclesInt(10)

// NewLock allocates a shared-memory lock.
func (r *Runtime) NewLock() *Lock {
	addr := r.alloc.Alloc(8)
	return &Lock{
		addr: addr,
		home: int(addr/cache.DefaultLineSize) % r.k.NumCores(),
	}
}

// AcquireLock takes the lock, blocking the task (and freeing its core)
// while another task holds it. The atomic read-modify-write on the lock
// word is charged through the memory system.
func (r *Runtime) AcquireLock(e *core.Env, l *Lock) {
	e.Write(l.addr, 1, 8)
	me := e.CoreID()
	t := e.Task()
	if !r.k.Sharded() || r.k.SameShard(me, l.home) {
		if l.holder == 0 {
			l.holder = t.ID
			e.AcquireLockExempt()
			return
		}
		l.waiters = append(l.waiters, t)
		e.Block()
		if l.holder != t.ID {
			panic("rt: lock grant mismatch")
		}
		e.AcquireLockExempt()
		return
	}
	// Foreign shard: even the free/held test must happen in home context.
	now := e.Now()
	r.k.Defer(me, now, func() {
		if l.holder == 0 {
			l.holder = t.ID
			r.k.Unblock(t, now) // runs at the barrier: safe for any shard
			return
		}
		l.waiters = append(l.waiters, t)
	})
	e.Block()
	if l.holder != t.ID {
		panic("rt: lock grant mismatch")
	}
	e.AcquireLockExempt()
}

// ReleaseLock releases the lock and hands it to the oldest waiter, if any.
func (r *Runtime) ReleaseLock(e *core.Env, l *Lock) {
	if l.holder != e.Task().ID {
		panic("rt: release of lock not held by task")
	}
	e.Write(l.addr, 1, 8)
	e.ReleaseLockExempt()
	me := e.CoreID()
	now := e.Now()
	r.runAt(me, l.home, now, func() { r.handoff(l, me, now) })
}

// handoff passes the lock to the oldest waiter; home-shard context only.
//
//simany:homeshard
func (r *Runtime) handoff(l *Lock, releaser int, now vtime.Time) {
	if len(l.waiters) == 0 {
		l.holder = 0
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = next.ID
	r.k.UnblockFrom(releaser, next, now+LockHandoffCost)
}

// TryAcquireLock takes the lock if it is free, without blocking. On a
// foreign shard the attempt costs a round trip to the next barrier: the
// task blocks until the home-context decision is applied.
func (r *Runtime) TryAcquireLock(e *core.Env, l *Lock) bool {
	e.Write(l.addr, 1, 8)
	me := e.CoreID()
	t := e.Task()
	if !r.k.Sharded() || r.k.SameShard(me, l.home) {
		if l.holder != 0 {
			return false
		}
		l.holder = t.ID
		e.AcquireLockExempt()
		return true
	}
	now := e.Now()
	var got bool // written at the barrier, read only after the wake-up
	r.k.Defer(me, now, func() {
		if l.holder == 0 {
			l.holder = t.ID
			got = true
		}
		r.k.Unblock(t, now)
	})
	e.Block()
	if got {
		e.AcquireLockExempt()
	}
	return got
}
