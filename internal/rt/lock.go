package rt

import (
	"simany/internal/core"
	"simany/internal/vtime"
)

// Lock is a shared-memory mutex as used by the shared-memory benchmark
// versions (e.g. protecting graph-node tags in Connected Components). Lock
// acquisitions from different tasks may be simulated in any order — only
// per-task ordering matters for correctness (§II.B "Program execution
// correctness") — and a core running a task that holds a lock is exempt
// from spatial stalling so the deadlock scenario of Fig. 4 cannot occur.
type Lock struct {
	addr    uint64
	holder  uint64 // task ID, 0 when free
	waiters []*core.Task
}

// LockHandoffCost is the coherence-transfer delay charged when a lock moves
// between tasks (one shared-bank round trip).
var LockHandoffCost = vtime.CyclesInt(10)

// NewLock allocates a shared-memory lock.
func (r *Runtime) NewLock() *Lock {
	return &Lock{addr: r.alloc.Alloc(8)}
}

// AcquireLock takes the lock, blocking the task (and freeing its core)
// while another task holds it. The atomic read-modify-write on the lock
// word is charged through the memory system.
func (r *Runtime) AcquireLock(e *core.Env, l *Lock) {
	e.Write(l.addr, 1, 8)
	if l.holder == 0 {
		l.holder = e.Task().ID
		e.AcquireLockExempt()
		return
	}
	l.waiters = append(l.waiters, e.Task())
	e.Block()
	if l.holder != e.Task().ID {
		panic("rt: lock grant mismatch")
	}
	e.AcquireLockExempt()
}

// ReleaseLock releases the lock and hands it to the oldest waiter, if any.
func (r *Runtime) ReleaseLock(e *core.Env, l *Lock) {
	if l.holder != e.Task().ID {
		panic("rt: release of lock not held by task")
	}
	e.Write(l.addr, 1, 8)
	e.ReleaseLockExempt()
	if len(l.waiters) == 0 {
		l.holder = 0
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = next.ID
	r.k.Unblock(next, e.Now()+LockHandoffCost)
}

// TryAcquireLock takes the lock if it is free, without blocking.
func (r *Runtime) TryAcquireLock(e *core.Env, l *Lock) bool {
	e.Write(l.addr, 1, 8)
	if l.holder != 0 {
		return false
	}
	l.holder = e.Task().ID
	e.AcquireLockExempt()
	return true
}
