package rt

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Distributed-memory shared data (§IV): cells referenced by links. Every
// access is exclusive — the runtime transfers the cell contents to the
// accessing core (whether the access is a read or a write, §VI "Simulation
// Speed") and keeps the cell locked for the access duration.

// cellWaiter is a deferred access request parked on a locked cell.
type cellWaiter struct {
	task *core.Task
	core int
}

// NewCell creates a shared cell of size bytes owned by the calling core and
// returns its link. The creation is charged as a local L2 installation.
func (r *Runtime) NewCell(e *core.Env, size int, data any) mem.Link {
	l := r.cells.New(e.CoreID(), size, data)
	c := r.cells.Get(l)
	e.Kernel().Core(e.CoreID()).L2().Install(c.Addr(), int64(size))
	e.ComputeCycles(2) // allocation bookkeeping
	return l
}

// CellData peeks at a cell's payload without simulated cost. It is intended
// for result verification after the simulation, not for simulated program
// logic.
func (r *Runtime) CellData(l mem.Link) any {
	return r.cells.Get(l).Data()
}

// Access performs an exclusive access to the cell behind l from the current
// task: it acquires the cell (moving its contents into this core's L2 if
// they are remote), runs f on the payload, stores f's non-nil result back,
// and releases the cell. While the cell is held the core is exempt from
// spatial stalling, as any lock holder (§II.B).
func (r *Runtime) Access(e *core.Env, l mem.Link, f func(data any) any) {
	cell := r.cells.Get(l)
	me := e.CoreID()
	taskID := e.Task().ID

	for {
		if cell.Owner() == me && !cell.Locked() {
			cell.Lock(taskID)
			break
		}
		if cell.Owner() == me {
			// Locked by another task (possibly on this very core): queue
			// and wait for the grant.
			cell.PushWaiter(&cellWaiter{task: e.Task(), core: me})
			e.Block()
			// The granter locked the cell for us and moved it here.
			if cell.Owner() == me && cell.LockHolder() == taskID {
				break
			}
			continue // ownership raced away; retry
		}
		// Remote: request the data from the current owner.
		r.stats.DataReqs++
		e.Send(cell.Owner(), KindDataRequest, r.opt.DataReqSize,
			&dataReq{link: l, requester: e.Task(), reqCore: me})
		e.Block()
		if cell.Owner() == me && cell.LockHolder() == taskID {
			break
		}
		// The grant raced away (or was re-queued); try again.
	}

	e.AcquireLockExempt()
	// The data now sit in the local L2; charge the access.
	words := int64((cell.Size() + 7) / 8)
	e.Read(cell.Addr(), words, 8)
	if out := f(cell.Data()); out != nil {
		cell.SetData(out)
		e.Write(cell.Addr(), words, 8)
	}
	// Unlock and grant atomically: ReleaseLockExempt may stall the core
	// (re-enabling spatial synchronization can yield), and another task
	// scheduled during that stall must not be able to barge past the
	// queued waiters.
	now := e.Now()
	cell.Unlock(taskID)
	r.grantNext(cell, me, now)
	e.ReleaseLockExempt()
}

// grantNext hands a just-unlocked cell to its oldest waiter, transferring
// ownership if the waiter sits on another core.
func (r *Runtime) grantNext(cell *mem.Cell, holderCore int, now vtime.Time) {
	w, ok := cell.PopWaiter()
	if !ok {
		return
	}
	cw := w.(*cellWaiter)
	cell.Lock(cw.task.ID)
	if cw.core == holderCore {
		// Same core: no transfer, wake directly with a small handoff.
		r.k.Unblock(cw.task, now+r.opt.DataHandleCost)
		return
	}
	r.transferCell(cell, holderCore, cw.core, cw.task, now)
}

// transferCell moves cell contents from one core to another and wakes the
// requesting task with a DATA_RESPONSE sized by the cell payload.
func (r *Runtime) transferCell(cell *mem.Cell, from, to int, task *core.Task, at vtime.Time) {
	r.k.Core(from).L2().Evict(cell.Addr(), int64(cell.Size()))
	cell.SetOwner(to)
	r.k.SendAt(from, to, KindDataResponse, cell.Size(),
		&dataReq{link: mem.Link{}, requester: task, reqCore: to},
		at+r.opt.DataHandleCost)
	// Install happens at the destination handler.
	r.k.Core(to).L2().Install(cell.Addr(), int64(cell.Size()))
}

// onDataRequest runs at the cell owner: grant immediately if the cell is
// free, defer if it is locked, forward if the cell has moved.
func (r *Runtime) onDataRequest(k *core.Kernel, msg network.Message) {
	req := msg.Payload.(*dataReq)
	cell := r.cells.Get(req.link)
	here := msg.Dst
	if cell.Owner() != here {
		// The cell moved: chase it.
		r.stats.DataChases++
		k.SendAt(here, cell.Owner(), KindDataRequest, msg.Size, req,
			msg.Arrival+r.opt.DataHandleCost)
		return
	}
	if cell.Locked() {
		cell.PushWaiter(&cellWaiter{task: req.requester, core: req.reqCore})
		return
	}
	cell.Lock(req.requester.ID)
	r.transferCell(cell, here, req.reqCore, req.requester, msg.Arrival)
}

// onDataResponse wakes the requester once the cell contents arrive.
func (r *Runtime) onDataResponse(k *core.Kernel, msg network.Message) {
	req := msg.Payload.(*dataReq)
	k.Unblock(req.requester, msg.Arrival)
}
