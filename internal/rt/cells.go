package rt

import (
	"sync/atomic"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Distributed-memory shared data (§IV): cells referenced by links. Every
// access is exclusive — the runtime transfers the cell contents to the
// accessing core (whether the access is a read or a write, §VI "Simulation
// Speed") and keeps the cell locked for the access duration.
//
// Two acquisition protocols share the cell state:
//
//   - Sequential engine: the original owner-chasing protocol. The accessor
//     reads the cell's owner directly and sends DATA_REQUEST to it; if the
//     cell moved, the request is forwarded (a "chase").
//   - Sharded engine: a home-based directory protocol. Each cell's
//     creating core is its immutable home; all lock/ownership decisions are
//     made in the home core's shard (or inside a barrier, which is
//     single-threaded), so concurrent accessors on other shards never read
//     or write arbitration state directly. Grants are final — no retry
//     loop — and ownership transfers split their cache effects across
//     contexts: the eviction happens where the decision is made (barrier or
//     owner's shard) and the installation happens in the destination core's
//     DATA_RESPONSE handler.

// cellWaiter is a deferred access request parked on a locked cell.
type cellWaiter struct {
	task *core.Task
	core int
}

// NewCell creates a shared cell of size bytes owned by the calling core and
// returns its link. The creation is charged as a local L2 installation.
func (r *Runtime) NewCell(e *core.Env, size int, data any) mem.Link {
	l := r.cells.New(e.CoreID(), size, data)
	c := r.cells.Get(l)
	e.Kernel().Core(e.CoreID()).L2().Install(c.Addr(), int64(size))
	e.ComputeCycles(2) // allocation bookkeeping
	return l
}

// CellData peeks at a cell's payload without simulated cost. It is intended
// for result verification after the simulation, not for simulated program
// logic.
func (r *Runtime) CellData(l mem.Link) any {
	return r.cells.Get(l).Data()
}

// Access performs an exclusive access to the cell behind l from the current
// task: it acquires the cell (moving its contents into this core's L2 if
// they are remote), runs f on the payload, stores f's non-nil result back,
// and releases the cell. While the cell is held the core is exempt from
// spatial stalling, as any lock holder (§II.B).
func (r *Runtime) Access(e *core.Env, l mem.Link, f func(data any) any) {
	cell := r.cells.Get(l)
	me := e.CoreID()
	taskID := e.Task().ID

	if r.k.Sharded() {
		r.acquireSharded(e, cell, l)
	} else {
		r.acquireSeq(e, cell, l)
	}

	e.AcquireLockExempt()
	// The data now sit in the local L2; charge the access.
	words := int64((cell.Size() + 7) / 8)
	e.Read(cell.Addr(), words, 8)
	if out := f(cell.Data()); out != nil {
		cell.SetData(out)
		e.Write(cell.Addr(), words, 8)
	}
	// Unlock and grant atomically: ReleaseLockExempt may stall the core
	// (re-enabling spatial synchronization can yield), and another task
	// scheduled during that stall must not be able to barge past the
	// queued waiters.
	now := e.Now()
	if r.k.Sharded() {
		r.runAt(me, cell.Home(), now, func() {
			cell.Unlock(taskID)
			r.grantNextSharded(cell, l, me, now)
		})
	} else {
		cell.Unlock(taskID)
		r.grantNext(cell, me, now)
	}
	e.ReleaseLockExempt()
}

// acquireSeq is the sequential engine's owner-chasing acquisition loop.
func (r *Runtime) acquireSeq(e *core.Env, cell *mem.Cell, l mem.Link) {
	me := e.CoreID()
	taskID := e.Task().ID
	for {
		if cell.Owner() == me && !cell.Locked() {
			cell.Lock(taskID)
			return
		}
		if cell.Owner() == me {
			// Locked by another task (possibly on this very core): queue
			// and wait for the grant.
			cell.PushWaiter(&cellWaiter{task: e.Task(), core: me})
			e.Block()
			// The granter locked the cell for us and moved it here.
			if cell.Owner() == me && cell.LockHolder() == taskID {
				return
			}
			continue // ownership raced away; retry
		}
		// Remote: request the data from the current owner.
		atomic.AddInt64(&r.stats.DataReqs, 1)
		e.Send(cell.Owner(), KindDataRequest, r.opt.DataReqSize,
			&dataReq{link: l, requester: e.Task(), reqCore: me})
		e.Block()
		if cell.Owner() == me && cell.LockHolder() == taskID {
			return
		}
		// The grant raced away (or was re-queued); try again.
	}
}

// acquireSharded acquires the cell through its home shard. Grants are
// final: once the task wakes, it owns the locked cell.
func (r *Runtime) acquireSharded(e *core.Env, cell *mem.Cell, l mem.Link) {
	me := e.CoreID()
	t := e.Task()
	now := e.Now()
	if r.k.SameShard(me, cell.Home()) {
		// Home context: arbitration state is directly accessible.
		if cell.Locked() {
			cell.PushWaiter(&cellWaiter{task: t, core: me})
			e.Block()
		} else if cell.Owner() == me {
			cell.Lock(t.ID)
		} else {
			// Claim now; move the data at the barrier — the current
			// owner's L2 may belong to another shard.
			cell.Lock(t.ID)
			atomic.AddInt64(&r.stats.DataReqs, 1)
			from := cell.Owner()
			r.k.Defer(me, now, func() {
				r.transferSharded(cell, l, from, me, t, now)
			})
			e.Block()
		}
	} else {
		atomic.AddInt64(&r.stats.DataReqs, 1)
		r.k.Defer(me, now, func() { r.arbitrateSharded(cell, l, t, me, now) })
		e.Block()
	}
	if cell.Owner() != me || cell.LockHolder() != t.ID {
		panic("rt: cell grant mismatch")
	}
}

// arbitrateSharded decides a foreign-shard access request; in-barrier only.
//
//simany:homeshard
func (r *Runtime) arbitrateSharded(cell *mem.Cell, l mem.Link, t *core.Task, reqCore int, now vtime.Time) {
	if cell.Locked() {
		cell.PushWaiter(&cellWaiter{task: t, core: reqCore})
		return
	}
	cell.Lock(t.ID)
	if cell.Owner() == reqCore {
		// Data already resident from an earlier access: charge only the
		// directory round trip.
		r.k.Unblock(t, now+r.opt.DataHandleCost)
		return
	}
	r.transferSharded(cell, l, cell.Owner(), reqCore, t, now)
}

// grantNextSharded hands a just-unlocked cell to its oldest waiter;
// home-shard context only.
//
//simany:homeshard
func (r *Runtime) grantNextSharded(cell *mem.Cell, l mem.Link, holderCore int, now vtime.Time) {
	w, ok := cell.PopWaiter()
	if !ok {
		return
	}
	cw := w.(*cellWaiter)
	cell.Lock(cw.task.ID)
	if cw.core == holderCore {
		r.k.UnblockFrom(holderCore, cw.task, now+r.opt.DataHandleCost)
		return
	}
	r.transferSharded(cell, l, holderCore, cw.core, cw.task, now)
}

// transferSharded moves cell contents between cores for the sharded
// protocol. It must run either in-barrier or in the owning core's shard:
// the eviction touches from's L2, while the destination install (and the
// requester wake-up) happen in to's DATA_RESPONSE handler. The request leg
// the sequential protocol would send is approximated by the uncontended
// network distance; the response leg is priced by the send itself.
//
//simany:homeshard
func (r *Runtime) transferSharded(cell *mem.Cell, l mem.Link, from, to int, task *core.Task, at vtime.Time) {
	r.k.Core(from).L2().Evict(cell.Addr(), int64(cell.Size()))
	cell.SetOwner(to)
	reqLeg := r.k.Network().MinLatency(to, from, r.opt.DataReqSize)
	r.k.SendAt(from, to, KindDataResponse, cell.Size(),
		&dataReq{link: l, requester: task, reqCore: to},
		at+reqLeg+r.opt.DataHandleCost)
}

// grantNext hands a just-unlocked cell to its oldest waiter, transferring
// ownership if the waiter sits on another core (sequential engine).
func (r *Runtime) grantNext(cell *mem.Cell, holderCore int, now vtime.Time) {
	w, ok := cell.PopWaiter()
	if !ok {
		return
	}
	cw := w.(*cellWaiter)
	cell.Lock(cw.task.ID)
	if cw.core == holderCore {
		// Same core: no transfer, wake directly with a small handoff.
		r.k.Unblock(cw.task, now+r.opt.DataHandleCost)
		return
	}
	r.transferCell(cell, holderCore, cw.core, cw.task, now)
}

// transferCell moves cell contents from one core to another and wakes the
// requesting task with a DATA_RESPONSE sized by the cell payload
// (sequential engine: install happens inline, the response carries no
// link).
func (r *Runtime) transferCell(cell *mem.Cell, from, to int, task *core.Task, at vtime.Time) {
	r.k.Core(from).L2().Evict(cell.Addr(), int64(cell.Size()))
	cell.SetOwner(to)
	r.k.SendAt(from, to, KindDataResponse, cell.Size(),
		&dataReq{link: mem.Link{}, requester: task, reqCore: to},
		at+r.opt.DataHandleCost)
	r.k.Core(to).L2().Install(cell.Addr(), int64(cell.Size()))
}

// onDataRequest runs at the cell owner (sequential engine only — the
// sharded protocol arbitrates at the home shard instead of messaging the
// owner): grant immediately if the cell is free, defer if it is locked,
// forward if the cell has moved.
func (r *Runtime) onDataRequest(k *core.Kernel, msg network.Message) {
	req := msg.Payload.(*dataReq)
	cell := r.cells.Get(req.link)
	here := msg.Dst
	if cell.Owner() != here {
		// The cell moved: chase it.
		atomic.AddInt64(&r.stats.DataChases, 1)
		k.SendAt(here, cell.Owner(), KindDataRequest, msg.Size, req,
			msg.Arrival+r.opt.DataHandleCost)
		return
	}
	if cell.Locked() {
		cell.PushWaiter(&cellWaiter{task: req.requester, core: req.reqCore})
		return
	}
	cell.Lock(req.requester.ID)
	r.transferCell(cell, here, req.reqCore, req.requester, msg.Arrival)
}

// onDataResponse wakes the requester once the cell contents arrive. For
// sharded transfers (link set) it also installs the payload into the
// receiving core's L2 — the handler runs in that core's shard context, so
// the cache mutation is local.
func (r *Runtime) onDataResponse(k *core.Kernel, msg network.Message) {
	req := msg.Payload.(*dataReq)
	if !req.link.Nil() {
		cell := r.cells.Get(req.link)
		k.Core(msg.Dst).L2().Install(cell.Addr(), int64(cell.Size()))
	}
	k.Unblock(req.requester, msg.Arrival)
}
