package rt

import (
	"fmt"
	"sync/atomic"

	"simany/internal/core"
	"simany/internal/timing"
)

// Step programs are the runtime's explicit resumption-step representation
// of task bodies: instead of an opaque Go closure, a task body is a named
// Program — a list of Step functions driven by a small interpreter over a
// serializable frame stack (program name, step index, integer registers).
// Every point where such a task can park (a policy-horizon stall inside a
// charge, the probe wait of a conditional spawn, a group join) is a known
// stage of the interpreter, so a parked task is fully described by the
// (task ID, continuation point) pair the checkpoint format stores: the
// frame stack plus the in-flight Action and its stage. That is what makes
// pure-decode checkpoint restore possible; closure bodies fall back to
// verified replay.
//
// Step functions receive the Env only as context (Now, CoreID) and the
// current Frame's registers to compute on; all simulator interaction —
// timing charges, memory traffic, spawning, joining — must be expressed
// through the returned Action. A Step that calls a parking Env method
// (Compute, Read, Block, ...) directly would park the task at a point the
// codec cannot describe.

// Frame is one activation record of the step interpreter.
type Frame struct {
	prog *Program
	pc   int
	// Regs are the frame's integer registers: the only mutable state a
	// Step may carry between steps (they serialize with the task).
	Regs []int64
}

// Program names the frame's program.
func (f *Frame) Program() string { return f.prog.Name }

// PC returns the index of the executing step.
func (f *Frame) PC() int { return f.pc }

// Step is one instruction of a Program. It may mutate f.Regs and must
// route every simulator effect through the returned Action.
type Step func(e *core.Env, f *Frame) Action

// Program is a registered task body: an immutable list of steps addressed
// by index. Programs are configuration, not state — a checkpoint stores
// only program names, and resume requires the same registrations.
type Program struct {
	Name  string
	Steps []Step
}

// RegisterProgram makes p spawnable and checkpoint-resolvable. Programs
// must be registered before Run (and identically before a resume).
func (r *Runtime) RegisterProgram(p *Program) {
	if p.Name == "" || len(p.Steps) == 0 {
		panic("rt: step program needs a name and at least one step")
	}
	if _, dup := r.programs[p.Name]; dup {
		panic("rt: step program " + p.Name + " registered twice")
	}
	r.programs[p.Name] = p
}

func (r *Runtime) program(name string) *Program {
	p, ok := r.programs[name]
	if !ok {
		panic(fmt.Sprintf("rt: step program %q not registered", name))
	}
	return p
}

// stepOp is the control part of an Action.
type stepOp uint8

const (
	opNext  stepOp = iota // continue at the continuation PC
	opHalt                // frame done (pop, or task end for the root frame)
	opCall                // run a program inline in a pushed frame
	opSpawn               // conditional spawn (probe/spawn, inline on denial)
	opJoin                // join the task's group
)

// Action is a Step's returned effect: optional charges (applied in read,
// compute, write order) followed by one control operation. The zero Action
// is "fall through to the next step".
type Action struct {
	op     stepOp
	abs    bool // target is an absolute PC (otherwise continuation = pc+1)
	target int

	proc     string  // callee / child program (Call, Spawn)
	regs     []int64 // child registers
	argBytes int     // extra TASK_SPAWN payload bytes (Spawn)

	counts              timing.Counts
	cycles              float64
	readBase, writeBase uint64
	readN, writeN       int64
	readElem, writeElem int
}

// Next continues at the following step.
func Next() Action { return Action{op: opNext} }

// Goto continues at step pc.
func Goto(pc int) Action { return Action{op: opNext, abs: true, target: pc} }

// Done ends the current frame: a called/inlined frame returns to its
// caller, the root frame ends the task.
func Done() Action { return Action{op: opHalt} }

// Call runs program proc to completion in a pushed frame (its own scope
// for the pessimistic L1, like any task body), then continues.
func Call(proc string, regs ...int64) Action {
	return Action{op: opCall, proc: proc, regs: regs}
}

// Spawn conditionally spawns program proc as a new task of the caller's
// group (the probe/spawn protocol of §IV); on denial the program runs
// inline in a pushed frame. argBytes sizes the TASK_SPAWN payload beyond
// the base task descriptor.
func Spawn(proc string, argBytes int, regs ...int64) Action {
	return Action{op: opSpawn, proc: proc, argBytes: argBytes, regs: regs}
}

// Join waits for every task in the caller's group to finish, then
// continues.
func Join() Action { return Action{op: opJoin} }

// Then sets an absolute continuation PC (default: the following step).
func (a Action) Then(pc int) Action { a.abs, a.target = true, pc; return a }

// Exec charges an annotated instruction block before the control op.
func (a Action) Exec(c timing.Counts) Action { a.counts = c; return a }

// Cycles charges a raw cycle count before the control op.
func (a Action) Cycles(n float64) Action { a.cycles = n; return a }

// Reads charges n data reads of elem bytes from base before the compute
// charge.
func (a Action) Reads(base uint64, n int64, elem int) Action {
	a.readBase, a.readN, a.readElem = base, n, elem
	return a
}

// Writes charges n data writes of elem bytes to base after the compute
// charge.
func (a Action) Writes(base uint64, n int64, elem int) Action {
	a.writeBase, a.writeN, a.writeElem = base, n, elem
	return a
}

// nextPC resolves the continuation PC committed before the action runs.
func (a Action) nextPC(pc int) int {
	if a.op == opHalt {
		return -1
	}
	if a.abs {
		return a.target
	}
	return pc + 1
}

// Interpreter stages of an in-flight Action. The invariant that makes
// parked tasks serializable: the stage (and the frame PC) always name the
// NEXT sub-operation before the current, possibly-parking one starts, so
// a task serialized while parked resumes by re-entering the park point and
// then continuing the stage machine.
const (
	stRead      uint8 = iota // apply the read charge
	stCompute                // apply the compute charge
	stWrite                  // apply the write charge
	stCtl                    // run the control op
	stProbeWait              // spawn: probe sent, consume the reply
	stInline                 // spawn denied / no candidate: push child frame
	stJoined                 // join returned
)

// parkKind tells a restored task how to re-enter its park point.
type parkKind uint8

const (
	parkNone    parkKind = iota // fresh task: run from the first step
	parkStalled                 // parked in the horizon stall loop
	parkBlocked                 // parked in (or woken from) a Block
)

// stepState is a step task's complete mutable body state — everything
// beyond the kernel's generic task fields that the codec serializes.
type stepState struct {
	stack   []*Frame
	pend    Action // in-flight action (valid while pending)
	stage   uint8
	pending bool
	entered bool // the body's own L1 scope is open
	member  bool // task is a group member (decrements active at the end)

	// reentry is transient decode-time state, never serialized: how the
	// restored body re-enters its park point on first execution.
	//
	//simany:derived decode-time re-entry marker, consumed on the body's first step
	reentry parkKind
}

// stepBody wraps a stepState as a kernel task body.
func (r *Runtime) stepBody(st *stepState) func(*core.Env) {
	return func(e *core.Env) { r.runSteps(e, st) }
}

// RunProgram injects program proc (with the given root registers) as the
// root task under a fresh group and drives the simulation to completion.
// It is the step-program counterpart of Run. When the kernel has a
// decode-mode resume armed, the whole task tree — including the root — is
// part of the restored state, so nothing is injected.
func (r *Runtime) RunProgram(taskName, proc string, regs ...int64) (core.Result, error) {
	if r.k.ResumeModeDecode() {
		return r.k.Run()
	}
	p := r.program(proc)
	g := r.newStepGroup(r.opt.RootCore)
	st := &stepState{stack: []*Frame{{prog: p, Regs: append([]int64(nil), regs...)}}}
	t := r.k.NewTask(r.opt.RootCore, taskName, r.stepBody(st), &taskMeta{group: g, step: st}).ReleaseOnDone()
	r.k.PlaceTask(t, r.opt.RootCore, 0, nil)
	return r.k.Run()
}

// newStepGroup creates a group in the checkpoint registry: step-program
// groups get deterministic non-zero ids so serialized tasks can name them.
func (r *Runtime) newStepGroup(home int) *Group {
	gid := r.nextGid
	r.nextGid++
	g := &Group{r: r, home: home, gid: gid}
	r.sgroups[gid] = g
	return g
}

// runSteps is the interpreter: the body of every step task.
func (r *Runtime) runSteps(e *core.Env, st *stepState) {
	switch st.reentry {
	case parkStalled:
		// The original parked inside the horizon stall loop of a charge:
		// the charge is fully applied (advance moves the clock before
		// stalling), so re-entering the loop reproduces the park exactly.
		st.reentry = parkNone
		e.EnforceHorizon()
	case parkBlocked:
		// The original parked in a Block; the engine resume that woke this
		// body IS the wake the original waited for. Continue directly.
		st.reentry = parkNone
	}
	if !st.entered {
		st.entered = true
		e.EnterScope()
	}
	for {
		if st.pending {
			r.applyPend(e, st)
			continue
		}
		if len(st.stack) == 0 {
			break
		}
		f := st.stack[len(st.stack)-1]
		if f.pc < 0 {
			st.stack = st.stack[:len(st.stack)-1]
			if len(st.stack) > 0 {
				// Pushed (call/inline) frames run in their own scope.
				e.LeaveScope()
			}
			continue
		}
		if f.pc >= len(f.prog.Steps) {
			panic(fmt.Sprintf("rt: program %q ran off the end (pc %d)", f.prog.Name, f.pc))
		}
		act := f.prog.Steps[f.pc](e, f)
		// Commit the continuation point before applying: a park inside the
		// action serializes as (frame at continuation, action stage).
		f.pc = act.nextPC(f.pc)
		st.pend = act
		st.stage = stRead
		st.pending = true
	}
	e.LeaveScope()
	if st.member {
		if g := metaOf(e.Task()).group; g != nil {
			g.taskEnded(e)
		}
	}
}

// applyPend drives the in-flight action's stage machine to completion.
// Every case advances st.stage before invoking anything that can park.
func (r *Runtime) applyPend(e *core.Env, st *stepState) {
	for st.pending {
		switch st.stage {
		case stRead:
			st.stage = stCompute
			if st.pend.readN > 0 {
				e.Read(st.pend.readBase, st.pend.readN, st.pend.readElem)
			}
		case stCompute:
			st.stage = stWrite
			if st.pend.cycles > 0 {
				e.ComputeCycles(st.pend.cycles)
			} else if st.pend.counts != (timing.Counts{}) {
				e.Compute(st.pend.counts)
			}
		case stWrite:
			st.stage = stCtl
			if st.pend.writeN > 0 {
				e.Write(st.pend.writeBase, st.pend.writeN, st.pend.writeElem)
			}
		case stCtl:
			r.applyControl(e, st)
		case stProbeWait:
			r.finishSpawn(e, st)
		case stInline:
			st.pending = false
			r.pushFrame(e, st, st.pend.proc, st.pend.regs)
		case stJoined:
			st.pending = false
		default:
			panic("rt: corrupt step stage")
		}
	}
}

// applyControl runs the action's control operation.
func (r *Runtime) applyControl(e *core.Env, st *stepState) {
	switch st.pend.op {
	case opNext, opHalt:
		st.pending = false
	case opCall:
		st.pending = false
		r.pushFrame(e, st, st.pend.proc, st.pend.regs)
	case opJoin:
		g := metaOf(e.Task()).group
		if g == nil {
			panic("rt: Join step in a task with no group")
		}
		st.stage = stJoined
		r.Join(e, g)
	case opSpawn:
		r.beginSpawn(e, st)
	default:
		panic("rt: unknown step op")
	}
}

// pushFrame opens a scope and activates program proc with its own
// registers (copied: the frame owns them).
func (r *Runtime) pushFrame(e *core.Env, st *stepState, proc string, regs []int64) {
	p := r.program(proc)
	e.EnterScope()
	st.stack = append(st.stack, &Frame{prog: p, Regs: append([]int64(nil), regs...)})
}

// beginSpawn mirrors SpawnOrRun up to the park point: candidate check,
// probe send, block. The two possible parks (the proxy-check charge and
// the probe wait) resume at stInline and stProbeWait respectively.
func (r *Runtime) beginSpawn(e *core.Env, st *stepState) {
	me := e.CoreID()
	cand := r.pickCandidate(me)
	if cand < 0 {
		atomic.AddInt64(&r.stats.LocalRuns, 1)
		st.stage = stInline
		e.ComputeCycles(2) // proxy check only: cheap, no traffic
		return
	}
	atomic.AddInt64(&r.stats.Probes, 1)
	st.stage = stProbeWait
	e.Send(cand, KindProbe, r.opt.ProbeSize, &probeMsg{requester: e.Task(), reqCore: me})
	e.Block()
}

// finishSpawn mirrors SpawnOrRun after the probe wait: consume the reply,
// either ship a fresh step task (same group as the parent) or fall back to
// an inline frame.
func (r *Runtime) finishSpawn(e *core.Env, st *stepState) {
	me := e.CoreID()
	meta := metaOf(e.Task())
	rep := meta.probe
	meta.probe = nil
	if rep == nil {
		panic("rt: probe reply lost")
	}
	fromIdx := r.nbIndex(me, rep.from)
	r.occ[me][fromIdx] = rep.queueLen
	if !rep.ok {
		atomic.AddInt64(&r.stats.Denied, 1)
		atomic.AddInt64(&r.stats.LocalRuns, 1)
		st.stage = stInline
		return
	}
	g := meta.group
	birth := e.Now()
	if g != nil {
		g.addFrom(me, birth, 1)
	}
	childState := &stepState{
		stack:  []*Frame{{prog: r.program(st.pend.proc), Regs: append([]int64(nil), st.pend.regs...)}},
		member: true,
	}
	child := r.k.NewTask(me, st.pend.proc, r.stepBody(childState),
		&taskMeta{group: g, step: childState}).ReleaseOnDone()
	r.k.RegisterBirth(r.k.Core(me), child, birth)
	r.occ[me][fromIdx] = rep.queueLen + 1
	e.Send(rep.from, KindTaskSpawn, r.opt.SpawnBaseSize+st.pend.argBytes,
		&spawnMsg{task: child, birthOwner: r.k.Core(me)})
	atomic.AddInt64(&r.stats.Spawns, 1)
	st.pending = false
}
