package rt

import (
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// TestLockWaiterHandoff forces real blocking on a shared-memory lock: the
// holder computes long enough that contenders must park, exercising the
// waiter queue and the release handoff stamps.
func TestLockWaiterHandoff(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(4), Mem: mem.NewShared(), Seed: 5})
	r := New(k, nil, DefaultOptions())
	lk := r.NewLock()
	var acquires []vtime.Time
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 4; i++ {
			r.SpawnOrRun(e, g, "locker", 0, func(ce *core.Env) {
				r.AcquireLock(ce, lk)
				acquires = append(acquires, ce.Now())
				ce.ComputeCycles(2000) // long critical section forces waiters
				r.ReleaseLock(ce, lk)
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(acquires) != 4 {
		t.Fatalf("acquires = %d", len(acquires))
	}
	// Every handed-off acquisition happens at least a critical section
	// after the previous one (the handoff stamp is causal).
	for i := 1; i < len(acquires); i++ {
		if acquires[i] < acquires[i-1]+vtime.CyclesInt(2000) {
			t.Errorf("acquire %d at %v, previous at %v: handoff not causal",
				i, acquires[i], acquires[i-1])
		}
	}
	if r.Stats().JoinWaits == 0 {
		t.Error("join should have waited")
	}
}

// TestTaskMigration drives the progressive-migration path: reservations
// are artificially consumed so TASK_SPAWN lands on a full queue and must
// be forwarded to a less-loaded neighbor (§IV).
func TestTaskMigration(t *testing.T) {
	topo := topology.Mesh2D(3, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := core.New(core.Config{Topo: topo, Mem: mem.NewShared(), Seed: 5})
	opt := DefaultOptions()
	opt.QueueCap = 1
	r := New(k, nil, opt)
	// Fill core 1's queue directly, then ship one more task to it without
	// a reservation; the spawn handler must forward it.
	victim := k.NewTask(1, "victim", r.wrap(nil, func(e *core.Env) {
		e.ComputeCycles(10)
	}), &taskMeta{})
	k.PlaceTask(victim, 1, 0, nil)
	stuffed := k.NewTask(1, "stuffed", r.wrap(nil, func(e *core.Env) {
		e.ComputeCycles(10_000)
	}), &taskMeta{})
	k.PlaceTask(stuffed, 1, 0, nil)

	migrated := k.NewTask(0, "migrated", r.wrap(nil, func(e *core.Env) {
		e.ComputeCycles(10)
	}), &taskMeta{})
	k.SendAt(0, 1, KindTaskSpawn, 64, &spawnMsg{task: migrated}, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Migrations == 0 {
		t.Error("expected a migration")
	}
	if migrated.State() != core.TaskDone {
		t.Error("migrated task did not finish")
	}
	if migrated.Core().ID == 1 {
		t.Error("task was not actually moved")
	}
}

// TestMigrationHopBound verifies the MaxMigrations backstop: when every
// core is saturated the task is eventually placed anyway instead of
// bouncing forever.
func TestMigrationHopBound(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := core.New(core.Config{Topo: topo, Mem: mem.NewShared(), Seed: 5})
	opt := DefaultOptions()
	opt.QueueCap = 1
	opt.MaxMigrations = 2
	r := New(k, nil, opt)
	for c := 0; c < 2; c++ {
		for j := 0; j < 2; j++ {
			tk := k.NewTask(c, "filler", r.wrap(nil, func(e *core.Env) {
				e.ComputeCycles(100)
			}), &taskMeta{})
			k.PlaceTask(tk, c, 0, nil)
		}
	}
	extra := k.NewTask(0, "extra", r.wrap(nil, func(e *core.Env) {
		e.ComputeCycles(10)
	}), &taskMeta{})
	k.SendAt(0, 1, KindTaskSpawn, 64, &spawnMsg{task: extra}, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if extra.State() != core.TaskDone {
		t.Error("bounced task never ran")
	}
	if got := r.Stats().Migrations; got > int64(opt.MaxMigrations) {
		t.Errorf("migrations = %d, bound %d", got, opt.MaxMigrations)
	}
}

// TestCellRemoteWaiterGrant exercises grantNext's cross-core transfer: a
// remote request arrives while the cell is locked, is parked as a waiter,
// and must be granted with a DATA_RESPONSE at unlock time.
func TestCellRemoteWaiterGrant(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(4), Mem: mem.NewDistributed(), Seed: 5})
	r := New(k, nil, DefaultOptions())
	var order []int
	_, err := r.Run("root", func(e *core.Env) {
		l := r.NewCell(e, 64, int(0))
		g := r.NewGroup()
		// Several remote contenders with long holds guarantee that later
		// requests find the cell locked.
		for i := 0; i < 6; i++ {
			i := i
			r.SpawnOrRun(e, g, "contender", 0, func(ce *core.Env) {
				r.Access(ce, l, func(d any) any {
					order = append(order, i)
					ce.ComputeCycles(3000)
					return d.(int) + 1
				})
			})
		}
		r.Join(e, g)
		r.Access(e, l, func(d any) any {
			if d.(int) != 6 {
				t.Errorf("cell counter = %d, want 6", d.(int))
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("accesses = %d", len(order))
	}
	if r.Stats().DataReqs == 0 {
		t.Error("no remote data requests")
	}
}

// TestCellLocalWaiter covers the same-core waiter path: two tasks on one
// core contend for a local cell.
func TestCellLocalWaiter(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(1), Mem: mem.NewDistributed(), Seed: 5})
	r := New(k, nil, DefaultOptions())
	var link mem.Link
	_, err := r.Run("root", func(e *core.Env) {
		link = r.NewCell(e, 32, int(0))
		// Two additional tasks on the same core; the runtime must
		// serialize their accesses through the local waiter queue.
		t1 := k.NewTask(0, "t1", r.wrap(nil, func(ce *core.Env) {
			r.Access(ce, link, func(d any) any { return d.(int) + 1 })
		}), &taskMeta{})
		k.PlaceTask(t1, 0, e.Now(), nil)
		t2 := k.NewTask(0, "t2", r.wrap(nil, func(ce *core.Env) {
			r.Access(ce, link, func(d any) any { return d.(int) + 10 })
		}), &taskMeta{})
		k.PlaceTask(t2, 0, e.Now(), nil)
		r.Access(e, link, func(d any) any { return d.(int) + 100 })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CellData(link).(int); got != 111 {
		t.Errorf("cell = %d, want 111", got)
	}
}

// TestRuntimeAccessors covers the trivial getters.
func TestRuntimeAccessors(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(2), Mem: mem.NewShared(), Seed: 1})
	r := New(k, nil, DefaultOptions())
	if r.Kernel() != k {
		t.Error("Kernel accessor")
	}
	if r.Alloc() == nil {
		t.Error("Alloc accessor")
	}
	g := r.NewGroup()
	if g.Active() != 0 {
		t.Error("fresh group active count")
	}
}
