package rt

import (
	"sync/atomic"

	"simany/internal/core"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Group provides the coarse synchronization of §IV: tasks are spawned into
// a group; each terminating task decrements the group's active counter; a
// task calling Join waits until the counter reaches zero, woken by a
// JOINER_REQUEST from the last finishing task.
//
// Under the sharded engine every group has a fixed arbitration core
// (home): its counter and joiner state are only touched from the home
// core's shard or inside a barrier, so members terminating on any shard
// stay race-free. Counter increments are enqueued before the corresponding
// TASK_SPAWN with an earlier-or-equal stamp, so a member's decrement can
// never be applied ahead of its increment.
type Group struct {
	r       *Runtime //simany:derived backpointer, rewired when the group registry is decoded
	home    int      // arbitration core; all state below is home-shard-owned
	gid     uint64   // checkpoint registry id; 0 for unregistered (closure) groups
	active  int
	joiner  *core.Task
	waiting bool
	lastEnd vtime.Time // latest member termination stamp seen
}

// NewGroup creates an empty task group, arbitrated at the runtime's root
// core.
func (r *Runtime) NewGroup() *Group {
	return &Group{r: r, home: r.opt.RootCore}
}

// Active returns the number of unfinished tasks in the group. Under
// sharded execution it is only meaningful from the group's home shard
// (benchmarks read it from the joining task after Join returns).
func (g *Group) Active() int { return g.active }

// addFrom increments the counter on behalf of core me at the given stamp.
// The home-shard fast path is checked inline (rather than through runAt) so
// the deferral closure is only materialized when the call actually crosses
// shards — group traffic is on the spawn hot path.
func (g *Group) addFrom(me int, stamp vtime.Time, n int) {
	if !g.r.k.Sharded() || g.r.k.SameShard(me, g.home) {
		g.active += n
		return
	}
	g.r.k.Defer(me, stamp, func() { g.active += n })
}

// taskEnded runs in the terminating task's context (on its core).
func (g *Group) taskEnded(e *core.Env) {
	me := e.CoreID()
	now := e.Now()
	if !g.r.k.Sharded() || g.r.k.SameShard(me, g.home) {
		//lint:allow homeshard the branch above is runAt's home-context guard, inlined to keep the closure off the same-shard hot path
		g.ended(me, now)
		return
	}
	g.r.k.Defer(me, now, func() { g.ended(me, now) })
}

// ended applies one member termination; home-shard context only.
//
//simany:homeshard
func (g *Group) ended(coreID int, now vtime.Time) {
	g.active--
	if g.active < 0 {
		panic("rt: group counter underflow")
	}
	if now > g.lastEnd {
		g.lastEnd = now
	}
	if g.active == 0 && g.waiting {
		// Notify the joiner from this core (the paper's JOINER_REQUEST
		// from the task that decremented the counter last). The waiting
		// state is consumed here, in home context, so the (possibly
		// foreign-shard) joiner never has to write group state.
		j := g.joiner
		g.waiting = false
		g.joiner = nil
		g.r.k.SendAt(coreID, j.Core().ID, KindJoinerRequest, g.r.opt.JoinerSize, j, now)
	}
}

// Join waits for every task in the group to finish. If all tasks already
// terminated, the caller's clock is advanced to the latest termination
// stamp (the notification it would have waited for); otherwise the task
// blocks, freeing its core, and resumes on the JOINER_REQUEST with the
// usual context-switch cost.
func (r *Runtime) Join(e *core.Env, g *Group) {
	e.ComputeCycles(1) // counter check
	me := e.CoreID()
	if !r.k.Sharded() || r.k.SameShard(me, g.home) {
		if g.active == 0 {
			if g.lastEnd > e.Now() {
				e.ComputeTime(g.lastEnd - e.Now())
			}
			return
		}
		if g.waiting {
			panic("rt: a group supports a single joiner")
		}
		g.joiner = e.Task()
		g.waiting = true
		atomic.AddInt64(&r.stats.JoinWaits, 1)
		e.Block()
		g.waiting = false
		g.joiner = nil
		return
	}
	// Foreign-shard joiner: the counter check must happen in home context.
	t := e.Task()
	now := e.Now()
	atomic.AddInt64(&r.stats.JoinWaits, 1)
	r.k.Defer(me, now, func() {
		if g.active == 0 {
			at := now
			if g.lastEnd > at {
				at = g.lastEnd
			}
			r.k.Unblock(t, at) // applied at the barrier: safe for any shard
			return
		}
		if g.waiting {
			panic("rt: a group supports a single joiner")
		}
		g.joiner = t
		g.waiting = true
	})
	e.Block()
}

// onJoinerRequest wakes the joining task.
func (r *Runtime) onJoinerRequest(k *core.Kernel, msg network.Message) {
	k.Unblock(msg.Payload.(*core.Task), msg.Arrival)
}
