package rt

import (
	"simany/internal/core"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Group provides the coarse synchronization of §IV: tasks are spawned into
// a group; each terminating task decrements the group's active counter; a
// task calling Join waits until the counter reaches zero, woken by a
// JOINER_REQUEST from the last finishing task.
type Group struct {
	r       *Runtime
	active  int
	joiner  *core.Task
	waiting bool
	lastEnd vtime.Time // latest member termination stamp seen
}

// NewGroup creates an empty task group.
func (r *Runtime) NewGroup() *Group {
	return &Group{r: r}
}

// Active returns the number of unfinished tasks in the group.
func (g *Group) Active() int { return g.active }

func (g *Group) add(n int) { g.active += n }

// taskEnded runs in the terminating task's context (on its core).
func (g *Group) taskEnded(e *core.Env) {
	g.active--
	if g.active < 0 {
		panic("rt: group counter underflow")
	}
	now := e.Now()
	if now > g.lastEnd {
		g.lastEnd = now
	}
	if g.active == 0 && g.waiting {
		// Notify the joiner from this core (the paper's JOINER_REQUEST
		// from the task that decremented the counter last).
		e.Send(g.joiner.Core().ID, KindJoinerRequest, g.r.opt.JoinerSize, g.joiner)
	}
}

// Join waits for every task in the group to finish. If all tasks already
// terminated, the caller's clock is advanced to the latest termination
// stamp (the notification it would have waited for); otherwise the task
// blocks, freeing its core, and resumes on the JOINER_REQUEST with the
// usual context-switch cost.
func (r *Runtime) Join(e *core.Env, g *Group) {
	e.ComputeCycles(1) // counter check
	if g.active == 0 {
		if g.lastEnd > e.Now() {
			e.ComputeTime(g.lastEnd - e.Now())
		}
		return
	}
	if g.waiting {
		panic("rt: a group supports a single joiner")
	}
	g.joiner = e.Task()
	g.waiting = true
	r.stats.JoinWaits++
	e.Block()
	g.waiting = false
	g.joiner = nil
}

// onJoinerRequest wakes the joining task.
func (r *Runtime) onJoinerRequest(k *core.Kernel, msg network.Message) {
	k.Unblock(msg.Payload.(*core.Task), msg.Arrival)
}
