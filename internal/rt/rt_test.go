package rt

import (
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func newRT(n int) (*core.Kernel, *Runtime) {
	k := core.New(core.Config{Topo: topology.Mesh(n), Mem: mem.NewShared(), Seed: 7})
	return k, New(k, nil, DefaultOptions())
}

func TestRootRuns(t *testing.T) {
	_, r := newRT(4)
	ran := false
	res, err := r.Run("root", func(e *core.Env) {
		e.ComputeCycles(50)
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("root did not run")
	}
	if res.FinalVT < vtime.CyclesInt(60) {
		t.Errorf("FinalVT = %v", res.FinalVT)
	}
}

func TestSpawnOrRunSpreadsWork(t *testing.T) {
	k, r := newRT(4)
	usedCores := map[int]bool{}
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 8; i++ {
			r.SpawnOrRun(e, g, "child", 16, func(ce *core.Env) {
				ce.ComputeCycles(500)
				usedCores[ce.CoreID()] = true
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(usedCores) < 2 {
		t.Errorf("work did not spread: cores %v", usedCores)
	}
	st := r.Stats()
	if st.Spawns == 0 || st.Probes == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Spawns > 8 {
		t.Errorf("more spawns than requested: %+v", st)
	}
	_ = k
}

func TestConditionalSpawnFallsBackSequentially(t *testing.T) {
	// Single core: no neighbors, every spawn runs inline.
	_, r := newRT(1)
	runs := 0
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 5; i++ {
			spawned := r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) { runs++ })
			if spawned {
				t.Error("spawned with no neighbors")
			}
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 5 {
		t.Errorf("runs = %d", runs)
	}
	if st := r.Stats(); st.LocalRuns != 5 || st.Probes != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestJoinWaitsForAllChildren(t *testing.T) {
	_, r := newRT(4)
	var childEnds []vtime.Time
	var joinVT vtime.Time
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 6; i++ {
			r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
				ce.ComputeCycles(300)
				childEnds = append(childEnds, ce.Now())
			})
		}
		r.Join(e, g)
		joinVT = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := len(childEnds); g != 6 {
		t.Fatalf("children ran %d times", g)
	}
	var maxEnd vtime.Time
	for _, v := range childEnds {
		if v > maxEnd {
			maxEnd = v
		}
	}
	if joinVT < maxEnd {
		t.Errorf("join completed at %v before last child end %v", joinVT, maxEnd)
	}
}

func TestNestedGroups(t *testing.T) {
	_, r := newRT(8)
	leaves := 0
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 3; i++ {
			r.SpawnOrRun(e, g, "mid", 0, func(me *core.Env) {
				g2 := r.NewGroup()
				for j := 0; j < 3; j++ {
					r.SpawnOrRun(me, g2, "leaf", 0, func(le *core.Env) {
						le.ComputeCycles(100)
						leaves++
					})
				}
				r.Join(me, g2)
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves != 9 {
		t.Errorf("leaves = %d", leaves)
	}
}

func TestQueueCapDeniesProbes(t *testing.T) {
	// A 2-core machine: one neighbor. Flood it with slow tasks; once the
	// queue fills, probes must be denied and work must run inline.
	k := core.New(core.Config{
		Topo: topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth),
		Mem:  mem.NewShared(), Seed: 7,
	})
	opt := DefaultOptions()
	opt.QueueCap = 2
	r := New(k, nil, opt)
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 12; i++ {
			r.SpawnOrRun(e, g, "slow", 0, func(ce *core.Env) {
				ce.ComputeCycles(5000)
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Denied == 0 && st.LocalRuns == 0 {
		t.Errorf("expected denials or local runs with tiny queue: %+v", st)
	}
	if st.Spawns == 0 {
		t.Errorf("expected some successful spawns: %+v", st)
	}
}

func TestGroupSingleJoinerPanics(t *testing.T) {
	_, r := newRT(2)
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		g.active = 1
		g.waiting = true // simulate a second joiner already registered
		r.Join(e, g)
	})
	if err == nil {
		t.Fatal("expected error from double join panic")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	_, r := newRT(4)
	var inside, maxInside int
	var critical []vtime.Time
	lk := r.NewLock()
	_, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 6; i++ {
			r.SpawnOrRun(e, g, "locker", 0, func(ce *core.Env) {
				r.AcquireLock(ce, lk)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				start := ce.Now()
				ce.ComputeCycles(100)
				critical = append(critical, start, ce.Now())
				inside--
				r.ReleaseLock(ce, lk)
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("mutual exclusion violated: %d tasks inside", maxInside)
	}
	// Critical sections serialize in simulation order (mutual exclusion of
	// the simulated program state). Their virtual-time intervals MAY
	// overlap: lock acquisitions from different tasks can be processed out
	// of virtual-time order, which is the documented accuracy/speed bias
	// of §II.A — only per-task ordering is guaranteed. Sections entered
	// through an explicit handoff, however, carry causal stamps: a waiter
	// woken by a release resumes no earlier than the release.
	if len(critical) != 12 {
		t.Fatalf("expected 6 critical sections, got %d stamps", len(critical))
	}
}

func TestTryAcquireLock(t *testing.T) {
	_, r := newRT(1)
	lk := r.NewLock()
	_, err := r.Run("root", func(e *core.Env) {
		if !r.TryAcquireLock(e, lk) {
			t.Error("free lock not acquired")
		}
		if r.TryAcquireLock(e, lk) {
			t.Error("held lock acquired")
		}
		r.ReleaseLock(e, lk)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnheldLockPanics(t *testing.T) {
	_, r := newRT(1)
	lk := r.NewLock()
	_, err := r.Run("root", func(e *core.Env) {
		r.ReleaseLock(e, lk)
	})
	if err == nil {
		t.Fatal("expected panic error")
	}
}

func distRT(n int) (*core.Kernel, *Runtime) {
	k := core.New(core.Config{Topo: topology.Mesh(n), Mem: mem.NewDistributed(), Seed: 7})
	return k, New(k, nil, DefaultOptions())
}

func TestCellLocalAccess(t *testing.T) {
	_, r := distRT(2)
	_, err := r.Run("root", func(e *core.Env) {
		l := r.NewCell(e, 64, []int64{1, 2, 3})
		r.Access(e, l, func(d any) any {
			v := d.([]int64)
			v[0] = 42
			return v
		})
		r.Access(e, l, func(d any) any {
			if d.([]int64)[0] != 42 {
				t.Error("cell write lost")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().DataReqs != 0 {
		t.Errorf("local accesses generated remote requests: %+v", r.Stats())
	}
}

func TestCellRemoteTransfer(t *testing.T) {
	_, r := distRT(4)
	var ownerSeen []int
	var link mem.Link
	_, err := r.Run("root", func(e *core.Env) {
		link = r.NewCell(e, 256, []int64{7})
		g := r.NewGroup()
		spawned := r.SpawnOrRun(e, g, "remote", 0, func(ce *core.Env) {
			r.Access(ce, link, func(d any) any {
				ownerSeen = append(ownerSeen, r.cells.Get(link).Owner())
				v := d.([]int64)
				v[0] = 99
				return v
			})
		})
		r.Join(e, g)
		if !spawned {
			t.Skip("spawn denied; remote path not exercised")
		}
		r.Access(e, link, func(d any) any {
			if d.([]int64)[0] != 99 {
				t.Error("remote write lost")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.DataReqs == 0 {
		t.Errorf("no remote data requests: %+v", st)
	}
	for _, o := range ownerSeen {
		if o == 0 {
			t.Error("cell accessed remotely while still owned by core 0")
		}
	}
}

func TestCellContention(t *testing.T) {
	_, r := distRT(4)
	total := 0
	_, err := r.Run("root", func(e *core.Env) {
		l := r.NewCell(e, 64, int(0))
		g := r.NewGroup()
		for i := 0; i < 8; i++ {
			r.SpawnOrRun(e, g, "inc", 0, func(ce *core.Env) {
				for j := 0; j < 5; j++ {
					r.Access(ce, l, func(d any) any {
						return d.(int) + 1
					})
					ce.ComputeCycles(20)
				}
			})
		}
		r.Join(e, g)
		r.Access(e, l, func(d any) any {
			total = d.(int)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Errorf("cell counter = %d, want 40 (lost updates)", total)
	}
}

func TestDeterministicRuntime(t *testing.T) {
	run := func() vtime.Time {
		_, r := newRT(8)
		res, err := r.Run("root", func(e *core.Env) {
			g := r.NewGroup()
			for i := 0; i < 16; i++ {
				i := i
				r.SpawnOrRun(e, g, "c", 8, func(ce *core.Env) {
					ce.ComputeCycles(float64(50 + i*3))
				})
			}
			r.Join(e, g)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalVT
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic runtime: %v vs %v", a, b)
	}
}

func TestParallelismReducesVirtualTime(t *testing.T) {
	workload := func(n int) vtime.Time {
		k := core.New(core.Config{Topo: topology.Mesh(n), Mem: mem.NewShared(), Seed: 7})
		r := New(k, nil, DefaultOptions())
		res, err := r.Run("root", func(e *core.Env) {
			g := r.NewGroup()
			for i := 0; i < 32; i++ {
				r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
					ce.ComputeCycles(2000)
				})
			}
			r.Join(e, g)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalVT
	}
	seq := workload(1)
	par := workload(16)
	if par >= seq {
		t.Errorf("16 cores (%v) not faster than 1 core (%v)", par, seq)
	}
	speedup := float64(seq) / float64(par)
	if speedup < 2 {
		t.Errorf("speedup = %.2f, expected at least 2x on 16 cores", speedup)
	}
}
