// Package rt is the task-based run-time system of §IV: a conditional-
// spawning programming model in the spirit of Capsule/TBB layered on the
// simulation kernel.
//
// Programs express parallelism through probe/spawn: a task that wants to
// fork calls SpawnOrRun, which checks the occupancy proxies the runtime
// maintains for the core's neighbors; only if some proxy suggests a free
// task-queue slot is a PROBE message sent. The probed neighbor accepts
// (PROBE_ACK, reserving the slot) or denies (PROBE_NACK); on success the
// task is shipped with TASK_SPAWN and the receiving core broadcasts its new
// queue state to its own neighbors. On denial the code runs sequentially in
// the calling task. Tasks migrate progressively: work is only ever
// dispatched to direct neighbors, and overloaded cores forward queued
// spawns onward.
//
// Coarse synchronization uses task groups: each task termination decrements
// its group's active counter; a task calling Join waits (its context saved,
// freeing the core) for a JOINER_REQUEST notification from the last
// finishing task.
//
// For distributed-memory architectures the runtime manages shared data as
// cells referenced by links: DATA_REQUEST/DATA_RESPONSE messages move cell
// contents into the requesting core's L2, and the cell stays locked for the
// duration of the access (§IV "Semantics and Messages").
package rt

import (
	"sync/atomic"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Message kinds owned by the runtime.
const (
	KindProbe network.Kind = 100 + iota
	KindProbeAck
	KindProbeNack
	KindTaskSpawn
	KindJoinerRequest
	KindOccUpdate
	KindDataRequest
	KindDataResponse
)

// Options tunes the runtime.
type Options struct {
	// QueueCap is the per-core task-queue capacity probed by PROBE.
	QueueCap int
	// ProbeHandleCost is the virtual time a core's queue controller takes
	// to answer a probe.
	ProbeHandleCost vtime.Time
	// DataHandleCost is the handling time of a data request at the owner.
	DataHandleCost vtime.Time
	// MaxMigrations bounds progressive task migration hops.
	MaxMigrations int
	// SpeedAware enables the heterogeneity-aware dispatch policy the
	// paper's conclusion calls for (§VIII: results on polymorphic
	// machines "could be improved substantially with specific scheduling
	// policies that take into account the computing power disparity among
	// cores"): candidates are ranked by expected queue drain time
	// (occupancy ÷ core speed) instead of raw occupancy, so fast cores
	// receive proportionally more work.
	SpeedAware bool
	// Message sizes in bytes.
	ProbeSize, AckSize, SpawnBaseSize, JoinerSize, OccSize, DataReqSize int
	// RootCore is where Run injects the root task.
	RootCore int
}

// DefaultOptions returns paper-style runtime parameters.
func DefaultOptions() Options {
	return Options{
		QueueCap:        4,
		ProbeHandleCost: vtime.CyclesInt(5),
		DataHandleCost:  vtime.CyclesInt(5),
		MaxMigrations:   4,
		ProbeSize:       16,
		AckSize:         8,
		SpawnBaseSize:   64,
		JoinerSize:      16,
		OccSize:         8,
		DataReqSize:     24,
	}
}

// Stats aggregates runtime counters. The fields are updated atomically:
// they are commutative sums shared by all shard workers, so their final
// values stay deterministic.
type Stats struct {
	Spawns     int64 // tasks shipped to another core
	Probes     int64 // PROBE messages sent
	Denied     int64 // probes answered with NACK
	LocalRuns  int64 // conditional spawns executed sequentially
	Migrations int64 // TASK_SPAWN forwards due to overload
	DataReqs   int64 // remote cell requests
	DataChases int64 // requests forwarded to a moved cell
	JoinWaits  int64 // joins that had to block
}

// Runtime is one simulation's task runtime instance.
type Runtime struct {
	k *core.Kernel //simany:derived backpointer to the kernel the runtime is attached to
	//simany:derived immutable Options configuration, reinstated by New
	opt   Options
	alloc *mem.Allocator
	cells *mem.CellStore

	// occ[c][j] = believed queue length of the j-th neighbor of core c
	// (flat and neighbor-indexed — degrees are tiny, so nbIndex's linear
	// scan beats a map lookup and the probe hot path stays allocation-free).
	occ [][]int
	//simany:derived cached topology adjacency, rebuilt by New from the kernel topology
	nbs          [][]int // neighbor lists, indexed like occ
	reservations []int   // outstanding accepted probes per core
	rr           []int   // round-robin candidate cursor per core

	// Step-program machinery (step.go, snapshot.go): the registered
	// program table (configuration), the checkpoint group registry with
	// its deterministic id source, and the decode-time group re-binding
	// work list.
	//simany:derived registered program table (configuration), repopulated by RegisterProgram
	programs map[string]*Program
	sgroups  map[uint64]*Group
	nextGid  uint64
	//simany:derived decode-time work list, drained by DecodeSafe before execution resumes
	binds []groupBind

	stats Stats
}

// taskMeta is the runtime's per-task state, carried in core.Task.Meta.
type taskMeta struct {
	group *Group
	probe *probeReply
	step  *stepState // non-nil for step-program bodies (step.go)
}

func metaOf(t *core.Task) *taskMeta {
	m, ok := t.Meta.(*taskMeta)
	if !ok {
		panic("rt: task not managed by this runtime")
	}
	return m
}

type probeMsg struct {
	requester *core.Task
	reqCore   int
}

type probeReply struct {
	ok       bool
	queueLen int
	from     int
	//simany:derived re-linked to the decoded task by DecodeSafe's bind pass
	requester *core.Task
}

type spawnMsg struct {
	task       *core.Task
	birthOwner *core.Core
	hops       int
}

type dataReq struct {
	link      mem.Link
	requester *core.Task
	reqCore   int
}

// New creates a runtime bound to kernel k and registers its message
// handlers. alloc provides simulated addresses for cells.
func New(k *core.Kernel, alloc *mem.Allocator, opt Options) *Runtime {
	if opt.QueueCap <= 0 {
		opt = DefaultOptions()
	}
	if alloc == nil {
		alloc = mem.NewAllocator()
	}
	n := k.NumCores()
	r := &Runtime{
		k:            k,
		opt:          opt,
		alloc:        alloc,
		cells:        mem.NewCellStore(alloc),
		occ:          make([][]int, n),
		nbs:          make([][]int, n),
		reservations: make([]int, n),
		rr:           make([]int, n),
		programs:     make(map[string]*Program),
		sgroups:      make(map[uint64]*Group),
		nextGid:      1,
	}
	// The per-core occupancy proxies are views into one flat backing array
	// (one int per directed link) rather than n separate slices — at 100k
	// cores the per-core make() calls dominate Runtime construction.
	occFlat := make([]int, k.Topology().NumLinks())
	off := 0
	for i := 0; i < n; i++ {
		r.nbs[i] = k.Topology().Neighbors(i)
		deg := len(r.nbs[i])
		r.occ[i] = occFlat[off : off+deg : off+deg]
		off += deg
	}
	if k.Sharded() {
		// Deterministic cell ids/addresses for concurrent creators.
		r.cells.EnableArenas()
	}
	k.Handle(KindProbe, r.onProbe)
	k.Handle(KindProbeAck, r.onProbeReply)
	k.Handle(KindProbeNack, r.onProbeReply)
	k.Handle(KindTaskSpawn, r.onTaskSpawn)
	k.Handle(KindJoinerRequest, r.onJoinerRequest)
	k.Handle(KindOccUpdate, r.onOccUpdate)
	k.Handle(KindDataRequest, r.onDataRequest)
	k.Handle(KindDataResponse, r.onDataResponse)
	k.SetTaskStartHook(func(c *core.Core, t *core.Task) {
		r.broadcastOcc(c.ID, c.QueueLength(), c.VT())
	})
	k.SetTaskCodec(taskCodec{r})
	k.RegisterSnapshot("rt", r)
	return r
}

// Kernel returns the underlying kernel.
func (r *Runtime) Kernel() *core.Kernel { return r.k }

// runAt executes fn in the arbitration context of core home: immediately
// when the calling core shares home's shard (or on the sequential engine),
// deferred to the next barrier otherwise. It is the building block of the
// runtime's home-based ownership protocols (groups, locks, cells): shared
// object state is only ever mutated from its home shard or inside a
// barrier, both of which are single-threaded with respect to that state.
//
//simany:arbiter
func (r *Runtime) runAt(me, home int, stamp vtime.Time, fn func()) {
	if !r.k.Sharded() || r.k.SameShard(me, home) {
		fn()
		return
	}
	r.k.Defer(me, stamp, fn)
}

// Alloc returns the shared address allocator.
func (r *Runtime) Alloc() *mem.Allocator { return r.alloc }

// Stats returns a copy of the runtime counters.
func (r *Runtime) Stats() Stats {
	return Stats{
		Spawns:     atomic.LoadInt64(&r.stats.Spawns),
		Probes:     atomic.LoadInt64(&r.stats.Probes),
		Denied:     atomic.LoadInt64(&r.stats.Denied),
		LocalRuns:  atomic.LoadInt64(&r.stats.LocalRuns),
		Migrations: atomic.LoadInt64(&r.stats.Migrations),
		DataReqs:   atomic.LoadInt64(&r.stats.DataReqs),
		DataChases: atomic.LoadInt64(&r.stats.DataChases),
		JoinWaits:  atomic.LoadInt64(&r.stats.JoinWaits),
	}
}

// wrap decorates a task body with the runtime prologue/epilogue: a function
// scope for the pessimistic L1 and the group bookkeeping at termination.
func (r *Runtime) wrap(g *Group, fn func(*core.Env)) func(*core.Env) {
	return func(e *core.Env) {
		e.EnterScope()
		fn(e)
		e.LeaveScope()
		if g != nil {
			g.taskEnded(e)
		}
	}
}

// Run injects the root task and drives the simulation to completion. When
// the kernel has a decode-mode resume armed, the restored state already
// contains the whole task tree, so root is not injected (it must still be
// the same program — the configuration fingerprint enforces the rest).
func (r *Runtime) Run(name string, root func(*core.Env)) (core.Result, error) {
	if r.k.ResumeModeDecode() {
		return r.k.Run()
	}
	t := r.k.NewTask(r.opt.RootCore, name, r.wrap(nil, root), &taskMeta{}).ReleaseOnDone()
	r.k.PlaceTask(t, r.opt.RootCore, 0, nil)
	return r.k.Run()
}

// ---------------------------------------------------------------------------
// Conditional spawning

// pickCandidate chooses a neighbor believed to have a free queue slot,
// rotating among candidates for load spreading. Returns -1 if every proxy
// says full. With SpeedAware, occupancies are weighted by the inverse core
// speed so faster cores look emptier (§VIII extension).
func (r *Runtime) pickCandidate(me int) int {
	nbs := r.nbs[me]
	if len(nbs) == 0 {
		return -1
	}
	start := r.rr[me]
	r.rr[me]++
	best := -1
	bestScore := float64(r.opt.QueueCap)
	for i := 0; i < len(nbs); i++ {
		j := (start + i) % len(nbs)
		nb := nbs[j]
		occ := r.occ[me][j]
		if occ >= r.opt.QueueCap {
			continue
		}
		score := float64(occ)
		if r.opt.SpeedAware {
			// Expected drain time of the neighbor's queue: a 1.5x core
			// with 3 queued tasks beats a 0.5x core with 1.
			score = (float64(occ) + 1) / r.k.Core(nb).Speed
		}
		if best < 0 || score < bestScore {
			best, bestScore = nb, score
		}
	}
	return best
}

// SpawnOrRun is the conditional-spawn primitive (§IV): it tries to ship fn
// as a new task of group g to a neighboring core and, if the probe fails or
// no neighbor looks free, executes fn sequentially in the current task. It
// reports whether a task was spawned. argBytes sizes the TASK_SPAWN payload
// beyond the runtime's base task descriptor.
func (r *Runtime) SpawnOrRun(e *core.Env, g *Group, name string, argBytes int, fn func(*core.Env)) bool {
	me := e.CoreID()
	cand := r.pickCandidate(me)
	if cand < 0 {
		// Proxy check only: cheap, no traffic.
		e.ComputeCycles(2)
		atomic.AddInt64(&r.stats.LocalRuns, 1)
		r.runInline(e, fn)
		return false
	}
	atomic.AddInt64(&r.stats.Probes, 1)
	meta := metaOf(e.Task())
	e.Send(cand, KindProbe, r.opt.ProbeSize, &probeMsg{requester: e.Task(), reqCore: me})
	e.Block()
	rep := meta.probe
	meta.probe = nil
	if rep == nil {
		panic("rt: probe reply lost")
	}
	fromIdx := r.nbIndex(me, rep.from)
	r.occ[me][fromIdx] = rep.queueLen
	if !rep.ok {
		atomic.AddInt64(&r.stats.Denied, 1)
		atomic.AddInt64(&r.stats.LocalRuns, 1)
		r.runInline(e, fn)
		return false
	}
	birth := e.Now()
	// The counter increment is enqueued before the TASK_SPAWN below with an
	// earlier-or-equal stamp, so the home shard always applies it before the
	// child can be placed (let alone terminate).
	g.addFrom(me, birth, 1)
	child := r.k.NewTask(me, name, r.wrap(g, fn), &taskMeta{group: g}).ReleaseOnDone()
	r.k.RegisterBirth(r.k.Core(me), child, birth)
	r.occ[me][fromIdx] = rep.queueLen + 1
	e.Send(cand, KindTaskSpawn, r.opt.SpawnBaseSize+argBytes,
		&spawnMsg{task: child, birthOwner: r.k.Core(me)})
	atomic.AddInt64(&r.stats.Spawns, 1)
	return true
}

// runInline executes a would-be task body sequentially within the caller.
func (r *Runtime) runInline(e *core.Env, fn func(*core.Env)) {
	e.EnterScope()
	fn(e)
	e.LeaveScope()
}

// onProbe answers a slot reservation request. The probed core's hardware
// queue controller replies without involving the tasks running there
// (Capsule-style hardware-assisted task management, §IV).
func (r *Runtime) onProbe(k *core.Kernel, msg network.Message) {
	pm := msg.Payload.(*probeMsg)
	c := k.Core(msg.Dst)
	qlen := c.QueueLength() + r.reservations[msg.Dst]
	kind := KindProbeNack
	ok := qlen < r.opt.QueueCap
	if ok {
		r.reservations[msg.Dst]++
		kind = KindProbeAck
	}
	k.SendAt(msg.Dst, pm.reqCore, kind, r.opt.AckSize,
		&probeReply{ok: ok, queueLen: qlen, from: msg.Dst, requester: pm.requester},
		msg.Arrival+r.opt.ProbeHandleCost)
}

// onProbeReply delivers the probe outcome to the requesting task.
func (r *Runtime) onProbeReply(k *core.Kernel, msg network.Message) {
	rep := msg.Payload.(*probeReply)
	metaOf(rep.requester).probe = rep
	k.Unblock(rep.requester, msg.Arrival)
}

// onTaskSpawn receives a shipped task. An overloaded core forwards the task
// to its least-loaded neighbor ("tasks can progressively migrate to other
// cores if the local ones are overloaded", §IV), bounded by MaxMigrations.
func (r *Runtime) onTaskSpawn(k *core.Kernel, msg network.Message) {
	sm := msg.Payload.(*spawnMsg)
	dst := msg.Dst
	c := k.Core(dst)
	if r.reservations[dst] > 0 {
		r.reservations[dst]--
	}
	if c.QueueLength() >= r.opt.QueueCap && sm.hops < r.opt.MaxMigrations {
		// Migrate onward to the neighbor believed least loaded.
		best, bestOcc := -1, int(^uint(0)>>1)
		for j, nb := range r.nbs[dst] {
			if nb == msg.Src {
				continue
			}
			if occ := r.occ[dst][j]; occ < bestOcc {
				best, bestOcc = nb, occ
			}
		}
		if best >= 0 {
			sm.hops++
			atomic.AddInt64(&r.stats.Migrations, 1)
			k.SendAt(dst, best, KindTaskSpawn, msg.Size, sm,
				msg.Arrival+r.opt.ProbeHandleCost)
			return
		}
	}
	k.PlaceTask(sm.task, dst, msg.Arrival, sm.birthOwner)
	r.broadcastOcc(dst, c.QueueLength(), msg.Arrival)
}

// broadcastOcc sends the core's new queue occupancy to its neighbors.
func (r *Runtime) broadcastOcc(coreID, qlen int, at vtime.Time) {
	for _, nb := range r.nbs[coreID] {
		r.k.SendAt(coreID, nb, KindOccUpdate, r.opt.OccSize, qlen, at)
	}
}

// nbIndex returns the position of nb in c's neighbor list. Occupancy
// traffic only ever flows between topology neighbors, so a miss is a bug.
func (r *Runtime) nbIndex(c, nb int) int {
	for j, id := range r.nbs[c] {
		if id == nb {
			return j
		}
	}
	panic("rt: occupancy update from non-neighbor")
}

// onOccUpdate refreshes the receiving core's proxy of the sender's queue.
func (r *Runtime) onOccUpdate(k *core.Kernel, msg network.Message) {
	r.occ[msg.Dst][r.nbIndex(msg.Dst, msg.Src)] = msg.Payload.(int)
}
