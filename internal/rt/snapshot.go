package rt

import (
	"fmt"
	"sort"
	"sync/atomic"

	"simany/internal/core"
	"simany/internal/snap"
)

// The runtime participates in kernel checkpoints in two roles:
//
//   - as the task codec: it serializes each task's runtime Meta (group
//     membership, a stashed probe reply) and, for step-program bodies, the
//     complete resumption state — frame stack plus in-flight action. Tasks
//     with closure bodies are encoded as opaque, which forces the
//     checkpoint into verified-replay mode.
//   - as the "rt" section: occupancy proxies, probe reservations,
//     round-robin cursors, the runtime counters, the step-group registry
//     and the allocator/cell-store cursors — every piece of runtime state
//     not reachable through a task.

// Task record tags (first Uvarint of a task's codec descriptor).
const (
	tagForeign = 0 // task not managed by this runtime (tests)
	tagClosure = 1 // runtime task with an opaque closure body
	tagStep    = 2 // step-program task: fully decodable
)

// taskCodec implements core.TaskCodec for the runtime.
type taskCodec struct {
	r *Runtime //simany:derived codec handle; the runtime snapshots itself separately
}

// EncodeTask implements core.TaskCodec.
func (tc taskCodec) EncodeTask(enc *snap.Encoder, t *core.Task) bool {
	m, ok := t.Meta.(*taskMeta)
	if !ok {
		enc.Uvarint(tagForeign)
		return false
	}
	if m.step == nil {
		enc.Uvarint(tagClosure)
		encodeMeta(enc, m)
		return false
	}
	enc.Uvarint(tagStep)
	encodeMeta(enc, m)
	encodeStepState(enc, m.step)
	return true
}

// DecodeTask implements core.TaskCodec. Only step records yield an entry;
// the kernel rejects nil entries, so a decode-mode file can never smuggle
// in an opaque body.
func (tc taskCodec) DecodeTask(dec *snap.Decoder, t *core.Task) (func(*core.Env), error) {
	tag, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagForeign:
		return nil, nil
	case tagClosure:
		m := &taskMeta{}
		if _, err := decodeMeta(dec, m, t); err != nil {
			return nil, err
		}
		return nil, nil
	case tagStep:
		m := &taskMeta{}
		gid, err := decodeMeta(dec, m, t)
		if err != nil {
			return nil, err
		}
		st, err := decodeStepState(dec, tc.r)
		if err != nil {
			return nil, err
		}
		if t.Started() {
			if t.State() == core.TaskRunning {
				st.reentry = parkStalled
			} else {
				st.reentry = parkBlocked
			}
		}
		m.step = st
		t.Meta = m
		if gid != 0 {
			tc.r.binds = append(tc.r.binds, groupBind{m: m, gid: gid})
		}
		return tc.r.stepBody(st), nil
	default:
		return nil, fmt.Errorf("rt: unknown task record tag %d", tag)
	}
}

// groupBind defers a decoded task's group pointer until the "rt" section
// (which rebuilds the group registry) has been restored.
type groupBind struct {
	m   *taskMeta
	gid uint64
}

// encodeMeta appends the runtime Meta: the group id (0 for unregistered
// groups, which only exist in closure programs) and any stashed probe
// reply (a wake delivered before the task resumed).
func encodeMeta(enc *snap.Encoder, m *taskMeta) {
	var gid uint64
	if m.group != nil {
		gid = m.group.gid
	}
	enc.Uvarint(gid)
	enc.Bool(m.probe != nil)
	if m.probe != nil {
		enc.Bool(m.probe.ok)
		enc.Varint(int64(m.probe.queueLen))
		enc.Uvarint(uint64(m.probe.from))
	}
}

func decodeMeta(dec *snap.Decoder, m *taskMeta, t *core.Task) (uint64, error) {
	gid, err := dec.Uvarint()
	if err != nil {
		return 0, err
	}
	hasProbe, err := dec.Bool()
	if err != nil {
		return 0, err
	}
	if hasProbe {
		rep := &probeReply{requester: t}
		if rep.ok, err = dec.Bool(); err != nil {
			return 0, err
		}
		ql, err := dec.Varint()
		if err != nil {
			return 0, err
		}
		rep.queueLen = int(ql)
		from, err := dec.Uvarint()
		if err != nil {
			return 0, err
		}
		rep.from = int(from)
		m.probe = rep
	}
	return gid, nil
}

// encodeStepState appends the full resumption state of a step body.
func encodeStepState(enc *snap.Encoder, st *stepState) {
	enc.Bool(st.entered)
	enc.Bool(st.member)
	enc.Uvarint(uint64(len(st.stack)))
	for _, f := range st.stack {
		enc.String(f.prog.Name)
		enc.Varint(int64(f.pc))
		enc.Uvarint(uint64(len(f.Regs)))
		for _, v := range f.Regs {
			enc.Varint(v)
		}
	}
	enc.Bool(st.pending)
	if st.pending {
		enc.Uvarint(uint64(st.stage))
		encodeAction(enc, st.pend)
	}
}

func decodeStepState(dec *snap.Decoder, r *Runtime) (*stepState, error) {
	st := &stepState{}
	var err error
	if st.entered, err = dec.Bool(); err != nil {
		return nil, err
	}
	if st.member, err = dec.Bool(); err != nil {
		return nil, err
	}
	depth, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < depth; i++ {
		name, err := dec.String()
		if err != nil {
			return nil, err
		}
		p, ok := r.programs[name]
		if !ok {
			return nil, fmt.Errorf("rt: checkpoint references unregistered step program %q", name)
		}
		pc, err := dec.Varint()
		if err != nil {
			return nil, err
		}
		nregs, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		regs := make([]int64, nregs)
		for j := range regs {
			if regs[j], err = dec.Varint(); err != nil {
				return nil, err
			}
		}
		st.stack = append(st.stack, &Frame{prog: p, pc: int(pc), Regs: regs})
	}
	if st.pending, err = dec.Bool(); err != nil {
		return nil, err
	}
	if st.pending {
		stage, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		if stage > uint64(stJoined) {
			return nil, fmt.Errorf("rt: corrupt step stage %d", stage)
		}
		st.stage = uint8(stage)
		if st.pend, err = decodeAction(dec); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func encodeAction(enc *snap.Encoder, a Action) {
	enc.Uvarint(uint64(a.op))
	enc.Bool(a.abs)
	enc.Varint(int64(a.target))
	enc.String(a.proc)
	enc.Uvarint(uint64(len(a.regs)))
	for _, v := range a.regs {
		enc.Varint(v)
	}
	enc.Varint(int64(a.argBytes))
	for _, c := range a.counts {
		enc.Varint(c)
	}
	enc.Float64(a.cycles)
	enc.Uvarint(a.readBase)
	enc.Varint(a.readN)
	enc.Varint(int64(a.readElem))
	enc.Uvarint(a.writeBase)
	enc.Varint(a.writeN)
	enc.Varint(int64(a.writeElem))
}

func decodeAction(dec *snap.Decoder) (Action, error) {
	var a Action
	op, err := dec.Uvarint()
	if err != nil {
		return a, err
	}
	if op > uint64(opJoin) {
		return a, fmt.Errorf("rt: unknown step op %d", op)
	}
	a.op = stepOp(op)
	if a.abs, err = dec.Bool(); err != nil {
		return a, err
	}
	tgt, err := dec.Varint()
	if err != nil {
		return a, err
	}
	a.target = int(tgt)
	if a.proc, err = dec.String(); err != nil {
		return a, err
	}
	nregs, err := dec.Uvarint()
	if err != nil {
		return a, err
	}
	if nregs > 0 {
		a.regs = make([]int64, nregs)
		for i := range a.regs {
			if a.regs[i], err = dec.Varint(); err != nil {
				return a, err
			}
		}
	}
	ab, err := dec.Varint()
	if err != nil {
		return a, err
	}
	a.argBytes = int(ab)
	for i := range a.counts {
		if a.counts[i], err = dec.Varint(); err != nil {
			return a, err
		}
	}
	if a.cycles, err = dec.Float64(); err != nil {
		return a, err
	}
	if a.readBase, err = dec.Uvarint(); err != nil {
		return a, err
	}
	if a.readN, err = dec.Varint(); err != nil {
		return a, err
	}
	re, err := dec.Varint()
	if err != nil {
		return a, err
	}
	a.readElem = int(re)
	if a.writeBase, err = dec.Uvarint(); err != nil {
		return a, err
	}
	if a.writeN, err = dec.Varint(); err != nil {
		return a, err
	}
	we, err := dec.Varint()
	if err != nil {
		return a, err
	}
	a.writeElem = int(we)
	return a, nil
}

// ---------------------------------------------------------------------------
// The "rt" checkpoint section

// Snapshot implements snap.Snapshottable: the runtime state not reachable
// through any task. Runs at a pause point — no workers executing — so
// plain reads are safe; the counters still go through atomic loads to
// mirror how they are written.
func (r *Runtime) Snapshot(enc *snap.Encoder) {
	enc.Uvarint(uint64(len(r.occ)))
	for _, row := range r.occ {
		enc.Uvarint(uint64(len(row)))
		for _, v := range row {
			enc.Varint(int64(v))
		}
	}
	for _, v := range r.reservations {
		enc.Varint(int64(v))
	}
	for _, v := range r.rr {
		enc.Varint(int64(v))
	}
	for _, p := range r.statFields() {
		enc.Varint(atomic.LoadInt64(p))
	}
	enc.Uvarint(r.nextGid)
	gids := make([]uint64, 0, len(r.sgroups))
	for gid := range r.sgroups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	enc.Uvarint(uint64(len(gids)))
	for _, gid := range gids {
		g := r.sgroups[gid]
		enc.Uvarint(gid)
		enc.Uvarint(uint64(g.home))
		enc.Varint(int64(g.active))
		enc.Bool(g.waiting)
		enc.Time(g.lastEnd)
		var joiner uint64
		if g.joiner != nil {
			joiner = g.joiner.ID
		}
		enc.Uvarint(joiner)
	}
	r.alloc.Snapshot(enc)
	r.cells.Snapshot(enc)
}

// Restore implements snap.Snapshottable for decode-mode resume. It runs
// after the shard sections, so every checkpointed task already exists and
// group joiners / task metas can be re-linked.
func (r *Runtime) Restore(dec *snap.Decoder) error {
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(r.occ)) {
		return fmt.Errorf("rt: core count mismatch: checkpoint %d, live %d", n, len(r.occ))
	}
	for i, row := range r.occ {
		nr, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if nr != uint64(len(row)) {
			return fmt.Errorf("rt: core %d neighbor count mismatch: checkpoint %d, live %d", i, nr, len(row))
		}
		for j := range row {
			v, err := dec.Varint()
			if err != nil {
				return err
			}
			row[j] = int(v)
		}
	}
	for i := range r.reservations {
		v, err := dec.Varint()
		if err != nil {
			return err
		}
		r.reservations[i] = int(v)
	}
	for i := range r.rr {
		v, err := dec.Varint()
		if err != nil {
			return err
		}
		r.rr[i] = int(v)
	}
	for _, p := range r.statFields() {
		v, err := dec.Varint()
		if err != nil {
			return err
		}
		atomic.StoreInt64(p, v)
	}
	if r.nextGid, err = dec.Uvarint(); err != nil {
		return err
	}
	ngroups, err := dec.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < ngroups; i++ {
		gid, err := dec.Uvarint()
		if err != nil {
			return err
		}
		home, err := dec.Uvarint()
		if err != nil {
			return err
		}
		g := &Group{r: r, home: int(home), gid: gid}
		active, err := dec.Varint()
		if err != nil {
			return err
		}
		g.active = int(active)
		if g.waiting, err = dec.Bool(); err != nil {
			return err
		}
		if g.lastEnd, err = dec.Time(); err != nil {
			return err
		}
		joiner, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if joiner != 0 {
			t := r.k.TaskByID(joiner)
			if t == nil {
				return fmt.Errorf("rt: group %d joiner task %d not found in restored state", gid, joiner)
			}
			g.joiner = t
		}
		r.sgroups[gid] = g
	}
	if err := r.alloc.Restore(dec); err != nil {
		return err
	}
	if err := r.cells.Restore(dec); err != nil {
		return err
	}
	for _, b := range r.binds {
		g, ok := r.sgroups[b.gid]
		if !ok {
			return fmt.Errorf("rt: task references unknown group %d", b.gid)
		}
		b.m.group = g
	}
	r.binds = nil
	return nil
}

// DecodeSafe implements core.DecodeVetoer: live cells carry Go payloads no
// codec can serialize, so their presence forces verified-replay mode.
func (r *Runtime) DecodeSafe() bool {
	return r.cells.Len() == 0
}

// statFields lists the runtime counters in canonical order.
func (r *Runtime) statFields() []*int64 {
	s := &r.stats
	return []*int64{&s.Spawns, &s.Probes, &s.Denied, &s.LocalRuns,
		&s.Migrations, &s.DataReqs, &s.DataChases, &s.JoinWaits}
}

var _ core.TaskCodec = taskCodec{}
var _ snap.Snapshottable = (*Runtime)(nil)
var _ core.DecodeVetoer = (*Runtime)(nil)
