package rt

// Randomized stress testing of the whole runtime stack: seeded random
// fork/join programs mixing compute, shared-memory locks and distributed
// cells are executed under every synchronization policy. Correctness is
// schedule-independent (§II.B), so every policy must complete the program
// and produce the same final counter values; runs with the same seed must
// be bit-identical in virtual time.

import (
	"math/rand"
	"testing"

	"simany/internal/core"
	"simany/internal/drift"
	"simany/internal/mem"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// stressProgram describes a randomly generated fork/join workload.
type stressProgram struct {
	seed     int64
	maxDepth int
	fanout   int
	counters int
	useCells bool
}

// run executes the program on an 8-core mesh under the given policy and
// returns the final counter values and the virtual execution time.
func (p stressProgram) run(t *testing.T, pol core.Policy) ([]int64, vtime.Time) {
	t.Helper()
	var ms core.MemSystem
	if p.useCells {
		ms = mem.NewDistributed()
	} else {
		ms = mem.NewShared()
	}
	k := core.New(core.Config{Topo: topology.Mesh(8), Policy: pol, Mem: ms, Seed: p.seed})
	// Check kernel invariants continuously while stressing.
	k.SetTracer(&core.ValidatingTracer{K: k, Interval: 64})
	r := New(k, nil, DefaultOptions())

	counters := make([]int64, p.counters)
	locks := make([]*Lock, p.counters)
	cells := make([]mem.Link, p.counters)

	// The program structure is derived from a dedicated rng so it is
	// identical across policies (the kernel's own rng differs per run).
	var build func(rng *rand.Rand, depth int) func(*core.Env)
	build = func(rng *rand.Rand, depth int) func(*core.Env) {
		type action struct {
			kind int
			arg  int
			sub  func(*core.Env)
		}
		var acts []action
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				acts = append(acts, action{kind: 0, arg: 10 + rng.Intn(200)})
			case 1:
				acts = append(acts, action{kind: 1, arg: rng.Intn(p.counters)})
			case 2:
				if depth < p.maxDepth {
					acts = append(acts, action{kind: 2, sub: build(rng, depth+1)})
				}
			case 3:
				acts = append(acts, action{kind: 3, arg: rng.Intn(64)})
			}
		}
		return func(e *core.Env) {
			g := r.NewGroup()
			for _, a := range acts {
				switch a.kind {
				case 0:
					e.ComputeCycles(float64(a.arg))
				case 1:
					if p.useCells {
						r.Access(e, cells[a.arg], func(d any) any { return d.(int64) + 1 })
					} else {
						r.AcquireLock(e, locks[a.arg])
						counters[a.arg]++
						e.Write(uint64(0x1000+a.arg*64), 1, 8)
						r.ReleaseLock(e, locks[a.arg])
					}
				case 2:
					sub := a.sub
					r.SpawnOrRun(e, g, "sub", 16, sub)
				case 3:
					e.EnterScope()
					e.Read(uint64(0x8000+a.arg*32), 8, 8)
					e.LeaveScope()
				}
			}
			r.Join(e, g)
		}
	}

	rng := rand.New(rand.NewSource(p.seed))
	body := build(rng, 0)
	res, err := r.Run("stress", func(e *core.Env) {
		for i := range counters {
			locks[i] = r.NewLock()
			if p.useCells {
				cells[i] = r.NewCell(e, 8, int64(0))
			}
		}
		g := r.NewGroup()
		for i := 0; i < p.fanout; i++ {
			r.SpawnOrRun(e, g, "top", 16, body)
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatalf("policy %s: %v", pol.Name(), err)
	}
	out := make([]int64, p.counters)
	if p.useCells {
		for i := range out {
			out[i] = r.CellData(cells[i]).(int64)
		}
	} else {
		copy(out, counters)
	}
	return out, res.FinalVT
}

func stressPolicies() []core.Policy {
	return []core.Policy{
		core.Spatial{T: core.DefaultT},
		core.Spatial{T: vtime.CyclesInt(10)},
		drift.GlobalQuantum{Q: vtime.CyclesInt(100)},
		drift.BoundedSlack{W: vtime.CyclesInt(100)},
		drift.LaxP2P{Slack: vtime.CyclesInt(100)},
		drift.Unbounded{},
		drift.Lockstep{},
	}
}

// TestStressAllPoliciesAgree: every synchronization scheme completes every
// random program with identical program output (timing may differ).
func TestStressAllPoliciesAgree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, useCells := range []bool{false, true} {
			p := stressProgram{seed: seed, maxDepth: 3, fanout: 6, counters: 4, useCells: useCells}
			var ref []int64
			for i, pol := range stressPolicies() {
				out, _ := p.run(t, pol)
				if i == 0 {
					ref = out
					continue
				}
				for j := range ref {
					if out[j] != ref[j] {
						t.Fatalf("seed %d cells=%v: policy %s counters %v != reference %v",
							seed, useCells, pol.Name(), out, ref)
					}
				}
			}
		}
	}
}

// TestStressDeterministic: identical seeds yield identical virtual times.
func TestStressDeterministic(t *testing.T) {
	p := stressProgram{seed: 11, maxDepth: 3, fanout: 8, counters: 3}
	_, a := p.run(t, core.Spatial{T: core.DefaultT})
	_, b := p.run(t, core.Spatial{T: core.DefaultT})
	if a != b {
		t.Fatalf("nondeterministic stress run: %v vs %v", a, b)
	}
}

// TestStressCountersConserved: the total increment count is fixed by the
// program structure, so the counter sum must be identical across policies
// AND across memory models for the same seed.
func TestStressCountersConserved(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		pShared := stressProgram{seed: seed, maxDepth: 2, fanout: 5, counters: 3}
		pCells := pShared
		pCells.useCells = true
		sharedOut, _ := pShared.run(t, core.Spatial{T: core.DefaultT})
		cellsOut, _ := pCells.run(t, core.Spatial{T: core.DefaultT})
		var sumA, sumB int64
		for i := range sharedOut {
			sumA += sharedOut[i]
			sumB += cellsOut[i]
		}
		if sumA != sumB {
			t.Fatalf("seed %d: lock counters %v vs cell counters %v", seed, sharedOut, cellsOut)
		}
	}
}
