package stats

import (
	"strings"
	"testing"
)

func examplePlot() *Plot {
	p := &Plot{
		Title:  "speedups",
		XLabel: "cores",
		YLabel: "speedup",
		LogX:   true,
		LogY:   true,
	}
	var a, b Series
	a.Name = "dijkstra"
	b.Name = "quicksort"
	for _, n := range []float64{1, 8, 64, 256, 1024} {
		a.Add(n, n*0.9+0.1)
		b.Add(n, 1+4*(1-1/n))
	}
	p.Series = []Series{a, b}
	return p
}

func TestPlotRenders(t *testing.T) {
	var sb strings.Builder
	if err := examplePlot().Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== speedups ==", "*", "o", "dijkstra", "quicksort", "x: cores"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The super-linear curve must end up higher (earlier row) than the
	// saturating one on the right side: find the rightmost '*' and 'o'.
	lines := strings.Split(out, "\n")
	starRow, oRow := -1, -1
	for r, line := range lines {
		if strings.Contains(line, "*") && starRow == -1 && strings.Contains(line, "|") {
			starRow = r
		}
		if strings.Contains(line, "o") && oRow == -1 && strings.Contains(line, "|") {
			oRow = r
		}
	}
	if starRow == -1 || oRow == -1 {
		t.Fatal("marks not found")
	}
	if starRow >= oRow {
		t.Errorf("super-linear curve (row %d) not above saturating curve (row %d)", starRow, oRow)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty", LogX: true}
	var sb strings.Builder
	if err := p.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no plottable data") {
		t.Error("empty plot should say so")
	}
	// Series with non-positive values under log axes are dropped.
	p.Series = []Series{{Name: "bad", X: []float64{-1, 0}, Y: []float64{1, 2}}}
	sb.Reset()
	if err := p.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no plottable data") {
		t.Error("all-invalid series should leave no data")
	}
}

func TestPlotLinearAxes(t *testing.T) {
	p := &Plot{Title: "linear", Width: 20, Height: 5}
	var s Series
	s.Name = "line"
	s.Add(0, 0)
	s.Add(10, 10)
	p.Series = []Series{s}
	var sb strings.Builder
	if err := p.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	// 1 title + 5 rows + axis + labels + legend.
	if len(lines) < 8 {
		t.Errorf("unexpected layout:\n%s", sb.String())
	}
}

func TestPlotFlatSeries(t *testing.T) {
	// Constant series must not divide by zero.
	p := &Plot{Title: "flat"}
	var s Series
	s.Name = "c"
	s.Add(1, 5)
	s.Add(2, 5)
	p.Series = []Series{s}
	var sb strings.Builder
	if err := p.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestPlotCollisionMark(t *testing.T) {
	p := &Plot{Width: 10, Height: 3}
	var a, b Series
	a.Name = "a"
	b.Name = "b"
	a.Add(1, 1)
	a.Add(2, 2)
	b.Add(1, 1)
	b.Add(2, 1.5)
	p.Series = []Series{a, b}
	var sb strings.Builder
	if err := p.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "?") {
		t.Error("expected collision mark for overlapping points")
	}
}
