package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders curves as an ASCII chart. The paper's speedup figures use
// logarithmic axes on both sides; LogX/LogY reproduce that so saturation
// knees and collapses appear exactly where they do in print.
type Plot struct {
	Title      string
	XLabel     string
	YLabel     string
	LogX, LogY bool
	Width      int // plot area columns (default 60)
	Height     int // plot area rows (default 16)
	Series     []Series
}

// seriesMarks are the per-curve glyphs, recycled if there are more curves.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (p *Plot) dims() (w, h int) {
	w, h = p.Width, p.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	return w, h
}

// bounds returns the data ranges, in (possibly log-mapped) plot space.
func (p *Plot) bounds() (x0, x1, y0, y1 float64, ok bool) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			x, y, valid := p.mapPoint(s.X[i], s.Y[i])
			if !valid {
				continue
			}
			x0, x1 = math.Min(x0, x), math.Max(x1, x)
			y0, y1 = math.Min(y0, y), math.Max(y1, y)
			ok = true
		}
	}
	if x1 == x0 {
		x1 = x0 + 1
	}
	if y1 == y0 {
		y1 = y0 + 1
	}
	return x0, x1, y0, y1, ok
}

// mapPoint applies the log mappings; points invalid under a log axis are
// dropped.
func (p *Plot) mapPoint(x, y float64) (mx, my float64, ok bool) {
	mx, my = x, y
	if p.LogX {
		if x <= 0 {
			return 0, 0, false
		}
		mx = math.Log10(x)
	}
	if p.LogY {
		if y <= 0 {
			return 0, 0, false
		}
		my = math.Log10(y)
	}
	if math.IsNaN(mx) || math.IsNaN(my) || math.IsInf(mx, 0) || math.IsInf(my, 0) {
		return 0, 0, false
	}
	return mx, my, true
}

// Fprint renders the plot.
func (p *Plot) Fprint(w io.Writer) error {
	width, height := p.dims()
	x0, x1, y0, y1, ok := p.bounds()
	if !ok {
		_, err := fmt.Fprintf(w, "== %s == (no plottable data)\n", p.Title)
		return err
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			mx, my, valid := p.mapPoint(s.X[i], s.Y[i])
			if !valid {
				continue
			}
			col := int((mx - x0) / (x1 - x0) * float64(width-1))
			row := height - 1 - int((my-y0)/(y1-y0)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				if grid[row][col] == ' ' {
					grid[row][col] = mark
				} else if grid[row][col] != mark {
					grid[row][col] = '?' // collision of different series
				}
			}
		}
	}
	if p.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", p.Title); err != nil {
			return err
		}
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	topLabel := FmtRatio(axisVal(y1, p.LogY))
	botLabel := FmtRatio(axisVal(y0, p.LogY))
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(FmtRatio(axisVal(x1, p.LogX))),
		FmtRatio(axisVal(x0, p.LogX)), FmtRatio(axisVal(x1, p.LogX))); err != nil {
		return err
	}
	if p.XLabel != "" || p.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), p.XLabel, p.YLabel); err != nil {
			return err
		}
	}
	for si, s := range p.Series {
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", labelW),
			seriesMarks[si%len(seriesMarks)], s.Name); err != nil {
			return err
		}
	}
	return nil
}
