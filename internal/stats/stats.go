// Package stats provides the small statistical toolkit the evaluation
// needs: speedups, geometric means (the paper's error aggregation),
// relative errors, log-log power-law regression (Fig. 7's "square law"
// observation) and plain-text table/series rendering for the figure
// harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"simany/internal/vtime"
)

// Speedup returns base/v as a float ratio (how much faster v is than
// base).
func Speedup(base, v vtime.Time) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return vtime.Ratio(base, v)
}

// GeoMean returns the geometric mean of xs (NaN for empty input, as there
// is no meaningful value).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// RelErr returns |a-ref|/ref.
func RelErr(a, ref float64) float64 {
	if ref == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-ref) / math.Abs(ref)
}

// FitPowerLaw fits y ≈ c·x^k by least squares in log-log space and returns
// (c, k). Points with non-positive coordinates are skipped. It returns
// (NaN, NaN) with fewer than two usable points.
func FitPowerLaw(xs, ys []float64) (c, k float64) {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	k = (fn*sxy - sx*sy) / den
	c = math.Exp((sy - k*sx) / fn)
	return c, k
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a plain-text table with a title, matching one paper figure or
// table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// FmtRatio formats a speedup/ratio with adaptive precision.
func FmtRatio(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 0):
		return "inf"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// FmtPct formats a signed relative variation as a percentage.
func FmtPct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}
