package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"simany/internal/vtime"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(vtime.CyclesInt(100), vtime.CyclesInt(25)); got != 4 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(vtime.CyclesInt(10), 0), 1) {
		t.Error("zero denominator should give +Inf")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty GeoMean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("negative input should be NaN")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := float64(a)+1, float64(b)+1
		g := GeoMean([]float64{x, y})
		return g >= math.Min(x, y)-1e-9 && g <= math.Max(x, y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if RelErr(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("x/0 should be Inf")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3 x^2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	c, k := FitPowerLaw(xs, ys)
	if math.Abs(c-3) > 1e-9 || math.Abs(k-2) > 1e-9 {
		t.Errorf("fit = %v * x^%v", c, k)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if c, k := FitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(c) || !math.IsNaN(k) {
		t.Error("single point should be NaN")
	}
	if c, k := FitPowerLaw([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(c) || !math.IsNaN(k) {
		t.Error("vertical line should be NaN")
	}
	// Non-positive points skipped.
	c, k := FitPowerLaw([]float64{-1, 1, 2, 4}, []float64{5, 2, 4, 8})
	if math.Abs(k-1) > 1e-9 || math.Abs(c-2) > 1e-9 {
		t.Errorf("fit with skips = %v * x^%v", c, k)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty Mean should be NaN")
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Errorf("series = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Fig. X",
		Headers: []string{"bench", "cores", "speedup"},
	}
	tb.AddRow("quicksort", "64", "5.72")
	tb.AddRow("cc", "1024", "1.01")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Fig. X ==", "bench", "quicksort", "5.72", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestFmtHelpers(t *testing.T) {
	if FmtRatio(123.4) != "123" {
		t.Errorf("FmtRatio(123.4) = %s", FmtRatio(123.4))
	}
	if FmtRatio(12.34) != "12.3" {
		t.Errorf("FmtRatio(12.34) = %s", FmtRatio(12.34))
	}
	if FmtRatio(1.234) != "1.23" {
		t.Errorf("FmtRatio(1.234) = %s", FmtRatio(1.234))
	}
	if FmtRatio(math.NaN()) != "n/a" || FmtRatio(math.Inf(1)) != "inf" {
		t.Error("special values")
	}
	if FmtPct(-0.188) != "-18.8%" {
		t.Errorf("FmtPct = %s", FmtPct(-0.188))
	}
	if FmtPct(0.321) != "+32.1%" {
		t.Errorf("FmtPct = %s", FmtPct(0.321))
	}
}
