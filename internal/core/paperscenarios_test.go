package core

// Executable versions of the paper's worked examples: the virtual-time
// figures of §II are reproduced as concrete kernel scenarios, so the
// mechanisms can be checked against the published numbers.

import (
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// TestFig1SpatialWakeups reproduces Fig. 1: a chain of three cores with
// T=20; the lagging left core gradually wakes the two stalled cores at its
// right as its virtual-time updates propagate.
func TestFig1SpatialWakeups(t *testing.T) {
	T := vtime.CyclesInt(20)
	topo := topology.Mesh2D(3, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: T}, TaskStartCost: vtime.Time(1), Seed: 1})
	type rec struct {
		core int
		vt   vtime.Time
	}
	var log []rec
	work := func(c int, blocks int, cost float64) func(*Env) {
		return func(e *Env) {
			for i := 0; i < blocks; i++ {
				e.ComputeCycles(cost)
				log = append(log, rec{c, e.Now()})
			}
		}
	}
	// The left core is slow (many small blocks), the middle and right ones
	// fast (they immediately run to their drift bound and stall).
	k.InjectTask(0, "left", work(0, 40, 5), nil, 0)
	k.InjectTask(1, "mid", work(1, 40, 5), nil, 0)
	k.InjectTask(2, "right", work(2, 40, 5), nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Check the Fig. 1 property: the middle core never leads core 0 by
	// more than T (+ one 5cy block of overshoot), and the right core never
	// leads the middle one by more than the same bound.
	last := map[int]vtime.Time{}
	bound := T + vtime.CyclesInt(6)
	for _, r := range log {
		last[r.core] = r.vt
		if l0, ok := last[0]; ok {
			if l1 := last[1]; l1 > l0+bound {
				t.Fatalf("mid core led by %v (> T)", l1-l0)
			}
		}
		if l1, ok := last[1]; ok {
			if l2 := last[2]; l2 > l1+bound {
				t.Fatalf("right core led by %v (> T)", l2-l1)
			}
		}
	}
}

// TestFig2NonConnectedSets reproduces Fig. 2: two active groups separated
// by idle cores. Without shadow virtual times their drift would be
// unbounded; with them, the global diameter×T bound holds through the idle
// middle.
func TestFig2NonConnectedSets(t *testing.T) {
	T := vtime.CyclesInt(20)
	topo := topology.Mesh2D(7, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: 1})
	type rec struct {
		core int
		vt   vtime.Time
	}
	var log []rec
	worker := func(c int) func(*Env) {
		return func(e *Env) {
			for i := 0; i < 80; i++ {
				e.ComputeCycles(10)
				log = append(log, rec{c, e.Now()})
			}
		}
	}
	// Left set {0,1}, right set {5,6}; cores 2..4 idle throughout.
	for _, c := range []int{0, 1, 5, 6} {
		k.InjectTask(c, "w", worker(c), nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	diam := vtime.Time(topo.Diameter())
	limit := diam*T + vtime.CyclesInt(12)
	last := map[int]vtime.Time{}
	for _, r := range log {
		last[r.core] = r.vt
		if len(last) == 4 {
			lo, hi := vtime.Inf, vtime.Time(0)
			for _, v := range last {
				lo, hi = vtime.Min(lo, v), vtime.Max(hi, v)
			}
			if hi-lo > limit {
				t.Fatalf("non-connected sets drifted %v (> diam*T = %v)", hi-lo, diam*T)
			}
		}
	}
}

// TestFig3SpawnBirthDrift reproduces Fig. 3: a core spawns a task at
// virtual time 20 into an otherwise idle network; without birth tracking
// it could run to 90+ before the child exists. The birth entry caps the
// spawner's horizon at birth+T until the task arrives.
func TestFig3SpawnBirthDrift(t *testing.T) {
	T := vtime.CyclesInt(20)
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: 1})
	var horizonDuring, horizonAfter vtime.Time
	k.InjectTask(0, "spawner", func(e *Env) {
		e.ComputeCycles(10) // reach vt = 20 (10 start + 10 compute)
		birth := e.Now()
		child := k.NewTask(0, "child", func(*Env) {}, nil)
		k.RegisterBirth(k.Core(0), child, birth)
		horizonDuring = k.Policy().Horizon(k.Core(0))
		if horizonDuring != birth+T {
			t.Errorf("horizon with spawn in flight = %v, want birth+T = %v", horizonDuring, birth+T)
		}
		k.PlaceTask(child, 1, birth+vtime.CyclesInt(3), k.Core(0))
		horizonAfter = k.Policy().Horizon(k.Core(0))
		if horizonAfter <= horizonDuring {
			t.Errorf("arrival did not relax the horizon: %v -> %v", horizonDuring, horizonAfter)
		}
		e.ComputeCycles(70) // would breach 90 with the Fig. 3 problem
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFig4LockDeadlockAvoided reproduces Fig. 4: a core acquires a lock at
// vt 35 and would stall at 45 (T=20, neighbor at 20); the neighbor then
// requests the lock at 22 and blocks. Without the lock-holder exemption
// the holder could never reach its release point.
func TestFig4LockDeadlockAvoided(t *testing.T) {
	T := vtime.CyclesInt(20)
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: 1})

	const kindLockReq network.Kind = 900
	const kindLockAck network.Kind = 901
	var holder, waiter *Task
	lockFree := false
	var pendingReq *network.Message
	k.Handle(kindLockReq, func(k *Kernel, msg network.Message) {
		if lockFree {
			k.SendAt(msg.Dst, msg.Src, kindLockAck, 8, msg.Payload, msg.Arrival)
			return
		}
		m := msg
		pendingReq = &m // deferred until release
	})
	k.Handle(kindLockAck, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})

	var releaseVT, ackVT vtime.Time
	holder = k.InjectTask(1, "holder", func(e *Env) {
		e.ComputeCycles(25) // acquire around vt 35
		e.AcquireLockExempt()
		// Long critical section: with T=20 and the neighbor at ~20 this
		// would stall without the exemption.
		e.ComputeCycles(200)
		releaseVT = e.Now()
		lockFree = true
		e.ReleaseLockExempt()
		if pendingReq != nil {
			k.SendAt(1, pendingReq.Src, kindLockAck, 8, pendingReq.Payload, releaseVT)
		}
	}, nil, 0)
	waiter = k.InjectTask(0, "waiter", func(e *Env) {
		e.ComputeCycles(12) // request around vt 22
		e.Send(1, kindLockReq, 8, e.Task())
		ackVT = e.Block()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if releaseVT < vtime.CyclesInt(235) {
		t.Errorf("holder released at %v; exemption failed", releaseVT)
	}
	if ackVT < releaseVT {
		t.Errorf("waiter acquired at %v, before release at %v", ackVT, releaseVT)
	}
	_ = holder
	_ = waiter
}
