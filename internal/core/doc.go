// Package core implements the paper's primary contribution: the SiMany
// discrete-event simulation kernel with spatial synchronization.
//
// # Execution model
//
// Each simulated task runs as a goroutine (the Go analogue of SiMany's
// non-preemptive userland threads); a per-core scheduler multiplexes the
// tasks resident on a core over the core's single virtual clock. The kernel
// runs exactly one task goroutine at a time and exchanges control with it
// over unbuffered channels, so the whole simulation is single-threaded in
// effect and deterministic for a fixed seed, as in the paper ("SiMany only
// requires a single core to run", §VII).
//
// When the kernel resumes a task it hands it a horizon: the virtual time at
// which its core would have to stall under the active synchronization
// policy. Until the horizon is crossed, Compute annotations are pure local
// arithmetic — this reproduces SiMany's key speed property that "cores can
// be simulated without interruption during longer phases than in schemes
// where they have to check their progress against a unique global window"
// (§I).
//
// # Virtual timing
//
// Message arrival times are computed analytically at send time by the
// network model (latency, bandwidth, chunking and per-link contention);
// handlers for architectural messages run immediately and operate purely on
// the embedded virtual timestamps. This eager delivery preserves the
// paper's out-of-order processing semantics — two messages from different
// senders can carry timestamps in the opposite order of their processing —
// while making the in-flight-task drift problem of §II.A structurally
// impossible; birth-time tracking is nevertheless implemented (a spawned
// task counts as a neighbor of its spawning core until it arrives at its
// final destination), which is the bound the paper enforces.
//
// # Spatial synchronization
//
// A core may not advance more than T beyond the minimum of its topological
// neighbors' effective virtual times. Idle cores advertise a shadow time
// (min of their neighbors' effective times plus T) and propagate changes
// like real time updates, which keeps non-connected sets of active cores
// synchronized through idle regions (§II.A, Fig. 2). A core holding a lock
// is exempted from stalling until it releases it, which prevents the
// deadlock of §II.B (Fig. 4).
package core
