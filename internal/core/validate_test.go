package core

import (
	"strings"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func TestValidateFreshKernel(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(16), Seed: 1})
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAfterRun(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(8), Seed: 1})
	for c := 0; c < 8; c++ {
		k.InjectTask(c, "w", func(e *Env) {
			for i := 0; i < 20; i++ {
				e.ComputeCycles(15)
			}
		}, nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	// Eager mode: the proxy-mirror invariant only holds when proxies are
	// maintained (lazy evaluation leaves them stale between barriers).
	k := New(Config{Topo: topology.Mesh(4), Seed: 1, Eff: EffEager})
	// Corrupt a neighbor proxy directly.
	k.cores[0].nbEff[0] = vtime.CyclesInt(12345)
	err := k.Validate()
	if err == nil || !strings.Contains(err.Error(), "proxy") {
		t.Fatalf("corruption not detected: %v", err)
	}
	// Repair and corrupt the busy counter instead.
	k.cores[0].nbEff[0] = k.cores[k.cores[0].neighbors[0]].eff
	k.domains[0].busy = 3
	err = k.Validate()
	if err == nil || !strings.Contains(err.Error(), "busy-core") {
		t.Fatalf("counter corruption not detected: %v", err)
	}
	k.domains[0].busy = 0
	// Corrupt the birth cache.
	k.cores[1].births = map[uint64]vtime.Time{7: vtime.CyclesInt(5)}
	// birthCache still Inf and not dirty -> mismatch.
	err = k.Validate()
	if err == nil || !strings.Contains(err.Error(), "birth") {
		t.Fatalf("birth corruption not detected: %v", err)
	}
}

func TestValidateDetectsLazyCorruption(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(4), Seed: 1})
	if !k.effLazy {
		t.Fatalf("expected lazy effective times by default, got %s", k.EffScheme())
	}
	d := k.domains[0]
	// An idle core smuggled onto the busy-frontier list.
	c := k.cores[0]
	c.busyPos = 0
	d.busyList = append(d.busyList, c)
	err := k.Validate()
	if err == nil || !strings.Contains(err.Error(), "busy list") {
		t.Fatalf("busy-list corruption not detected: %v", err)
	}
	d.busyList = d.busyList[:0]
	c.busyPos = -1
	// A fresh memo that disagrees with the eager fixpoint (all-idle
	// machine: every idle core's fixpoint value is Inf).
	c.eff = vtime.CyclesInt(777)
	c.effStamp = d.effEpoch
	err = k.Validate()
	if err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("memo corruption not detected: %v", err)
	}
}

// TestValidatingTracerContinuous runs a messaging-heavy workload with the
// validator checking every event: any drift between the incremental state
// and the invariants panics and fails the run.
func TestValidatingTracerContinuous(t *testing.T) {
	topo := topology.Mesh(8)
	k := New(Config{Topo: topo, Policy: Spatial{T: vtime.CyclesInt(30)}, Seed: 2})
	k.SetTracer(&ValidatingTracer{K: k, Interval: 1})
	received := make([]int, 8)
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
		received[msg.Dst]++
	})
	k.Handle(kindPing, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	// Even cores compute and ping their right neighbor; one blocked task
	// on core 7 is woken at the end by core 6.
	var sleeper *Task
	sleeper = k.InjectTask(7, "sleeper", func(e *Env) {
		e.Block()
		e.ComputeCycles(10)
	}, nil, 0)
	for c := 0; c < 7; c++ {
		c := c
		k.InjectTask(c, "w", func(e *Env) {
			for i := 0; i < 10; i++ {
				e.ComputeCycles(20)
				if c%2 == 0 {
					e.Send(c+1, kindOneWay, 8, nil)
				}
			}
			if c == 6 {
				e.Send(7, kindPing, 8, sleeper)
			}
		}, nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if received[1] != 10 || received[3] != 10 || received[5] != 10 {
		t.Errorf("pings lost: %v", received)
	}
}
