package core

import (
	"reflect"
	"strings"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// TestBarrierValidationCleanRun: a messaging sharded run with barrier
// validation armed must complete without tripping either invariant, and
// produce the same Result as an unvalidated run.
func TestBarrierValidationCleanRun(t *testing.T) {
	T := vtime.CyclesInt(40)
	block := vtime.CyclesInt(15)
	run := func(validate bool) Result {
		k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: T},
			Seed: 11, Shards: 4, Workers: 2})
		if !k.Sharded() {
			t.Fatal("expected sharded kernel")
		}
		if validate {
			k.EnableBarrierValidation(2*block + T)
		}
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 25; i++ {
					e.ComputeCycles(15)
					e.Send((c+7)%16, kindOneWay, 16, nil)
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatalf("validate=%v: %v", validate, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("validate=%v: post-run Validate: %v", validate, err)
		}
		return res
	}
	if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
		t.Errorf("validation perturbed the run:\n  got  %+v\n  want %+v", got, want)
	}
}

// TestBarrierCheckFIFO: the stamp monotonicity and arrival>=stamp checks
// fire on synthesized violations and stay quiet on legal sequences.
func TestBarrierCheckFIFO(t *testing.T) {
	bc := &barrierCheck{fifoLast: make(map[[2]int32]vtime.Time)}
	legal := []network.Message{
		{Src: 0, Dst: 1, Stamp: 10, Arrival: 15},
		{Src: 0, Dst: 1, Stamp: 10, Arrival: 12}, // equal stamp: still FIFO
		{Src: 1, Dst: 0, Stamp: 5, Arrival: 9},   // other direction: independent channel
		{Src: 0, Dst: 1, Stamp: 20, Arrival: 20}, // zero-latency arrival is legal
	}
	for _, m := range legal {
		bc.recordMsg(m)
	}
	if bc.err != nil {
		t.Fatalf("legal sequence flagged: %v", bc.err)
	}
	bc.recordMsg(network.Message{Src: 0, Dst: 1, Stamp: 19, Arrival: 30})
	if bc.err == nil || !strings.Contains(bc.err.Error(), "FIFO") {
		t.Errorf("stamp regression not caught: %v", bc.err)
	}

	bc2 := &barrierCheck{fifoLast: make(map[[2]int32]vtime.Time)}
	bc2.recordMsg(network.Message{Src: 2, Dst: 3, Stamp: 50, Arrival: 40})
	if bc2.err == nil || !strings.Contains(bc2.err.Error(), "before its emission stamp") {
		t.Errorf("arrival-before-stamp not caught: %v", bc2.err)
	}
	// First error sticks: later legal traffic must not clear it.
	bc2.recordMsg(network.Message{Src: 2, Dst: 3, Stamp: 60, Arrival: 70})
	if bc2.err == nil {
		t.Error("recorded error was cleared by later traffic")
	}
}

// TestDriftBoundValue: Diameter × T sequentially, + quantum sharded, Inf
// without a spatial guarantee.
func TestDriftBoundValue(t *testing.T) {
	T := vtime.CyclesInt(40)
	topo := topology.Mesh(16) // diameter 6
	seq := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: 1})
	want := vtime.Time(topo.Diameter()) * T
	if got := seq.DriftBound(); got != want {
		t.Errorf("sequential DriftBound = %v, want %v", got, want)
	}
	sh := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: T}, Seed: 1, Shards: 4})
	if !sh.Sharded() {
		t.Fatal("expected sharded kernel")
	}
	if got := sh.DriftBound(); got != want+8*T {
		t.Errorf("sharded DriftBound = %v, want %v", got, want+8*T)
	}
	global := New(Config{Topo: topology.Mesh(4), Policy: unboundedPolicy{}, Seed: 1})
	if got := global.DriftBound(); got != vtime.Inf {
		t.Errorf("non-spatial DriftBound = %v, want Inf", got)
	}
}

// unboundedPolicy has no spatial drift guarantee.
type unboundedPolicy struct{}

func (unboundedPolicy) Name() string              { return "unbounded-test" }
func (unboundedPolicy) Horizon(*Core) vtime.Time  { return vtime.Inf }
func (unboundedPolicy) IdleTime(*Core) vtime.Time { return vtime.Inf }

// TestCheckDriftBoundTrips: a hand-built clock spread beyond the bound is
// reported; within the bound (or with all but one core idle) it is not.
func TestCheckDriftBoundTrips(t *testing.T) {
	T := vtime.CyclesInt(10)
	k := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: T}, Seed: 1})
	bound := k.DriftBound() // diameter 2 -> 20cy
	for _, c := range k.cores {
		c.idle = false
		c.vt = 0
	}
	k.cores[3].vt = bound + 1
	if err := k.CheckDriftBound(0); err == nil {
		t.Error("spread beyond bound not reported")
	}
	if err := k.CheckDriftBound(vtime.CyclesInt(1)); err != nil {
		t.Errorf("spread within bound+slack reported: %v", err)
	}
	// Idle cores are excluded from the spread.
	for i := 0; i < 3; i++ {
		k.cores[i].idle = true
	}
	if err := k.CheckDriftBound(0); err != nil {
		t.Errorf("single busy core reported: %v", err)
	}
}

// TestSetTracerDemotionNotice: installing a tracer no longer demotes the
// sharded engine (per-shard buffers merge at barriers), while
// construction-time demotion by an unsafe component is still explicit.
func TestSetTracerDemotionNotice(t *testing.T) {
	sh := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT}, Seed: 1, Shards: 4})
	if !sh.Sharded() {
		t.Fatal("expected sharded kernel")
	}
	if sh.DemotionNotice() != "" {
		t.Errorf("premature notice: %q", sh.DemotionNotice())
	}
	if sh.SetTracer(countingTracer{}) {
		t.Error("SetTracer demoted the sharded kernel")
	}
	if !sh.Sharded() {
		t.Error("kernel lost sharding after tracer install")
	}
	if n := sh.DemotionNotice(); n != "" {
		t.Errorf("tracer install produced notice %q", n)
	}

	// A tracer in the construction config keeps the kernel sharded too.
	traced := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
		Seed: 1, Shards: 4, Tracer: countingTracer{}})
	if !traced.Sharded() {
		t.Fatal("tracer-equipped kernel came up demoted")
	}

	seq := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: DefaultT}, Seed: 1})
	if seq.SetTracer(countingTracer{}) {
		t.Error("SetTracer on a sequential kernel reported demotion")
	}
	if seq.DemotionNotice() != "" {
		t.Errorf("sequential kernel has notice %q", seq.DemotionNotice())
	}

	// Construction-time demotion by an unsafe component remains explicit:
	// a policy without shard-local decisions forces the sequential engine.
	dem := New(Config{Topo: topology.Mesh(16), Policy: unboundedPolicy{},
		Seed: 1, Shards: 4})
	if dem.Sharded() {
		t.Fatal("non-shard-local policy came up sharded")
	}
	if n := dem.DemotionNotice(); !strings.Contains(n, "policy") {
		t.Errorf("notice %q does not name the policy", n)
	}
}

// TestDemotedRunMatchesSequential: a sharded configuration demoted at
// construction (here: by a policy without shard-local decisions) must
// produce exactly the Result a natively sequential kernel does.
func TestDemotedRunMatchesSequential(t *testing.T) {
	build := func(shards int) *Kernel {
		k := New(Config{Topo: topology.Mesh(16), Policy: unboundedPolicy{},
			Seed: 23, Shards: shards})
		if k.Sharded() {
			t.Fatal("non-shard-local policy came up sharded")
		}
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 20; i++ {
					e.ComputeCycles(12)
					e.Send((c+5)%16, kindOneWay, 16, nil)
				}
			}, nil, 0)
		}
		return k
	}
	demoted := build(4)
	if demoted.DemotionNotice() == "" {
		t.Fatal("expected demotion")
	}
	plain := build(1)
	got, err := demoted.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("demoted result diverged:\n  got  %+v\n  want %+v", got, want)
	}
}

// countingTracer is a trivial Tracer for demotion tests.
type countingTracer struct{}

func (countingTracer) Trace(TraceEvent) {}
