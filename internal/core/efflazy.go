package core

import (
	"fmt"

	"simany/internal/vtime"
)

// Lazy idle-region effective time.
//
// The eager implementation (domain.updateEff, engine.go) pushes every
// effective-time change through the surrounding idle region until a
// fixpoint: a task completion on a 100k-core machine with a handful of
// busy cores floods O(idle region) state. The machinery in this file
// inverts the direction: idle cores' effective times are *pulled* on
// demand from the busy frontier, so a completion touches O(1) state and
// the cost is paid only by the (few) cores whose horizon actually reads a
// shadow time.
//
// Representation. There is no materialized region structure: an idle
// region is implicit — the connected set of idle cores reachable from a
// queried core without crossing a busy core or the domain boundary. Its
// effective times are fully determined by the region's *frontier
// anchors*: the maintained effective times of local busy cores and the
// frozen cross-shard proxies held by the region's cores. For the spatial
// policy (IdleTime = min(neighbor eff) + T) the unique fixpoint of the
// eager relaxation assigns an idle core c
//
//	eff(c) = min over anchors a of  anchor(a) + T·(hops(c,a) + 1)
//
// where hops counts idle cores on a shortest path from c to a that stays
// inside the domain's idle cores. domain.lazyFix computes exactly that by
// a ring-layered BFS from the queried core, with an aggressive cutoff: a
// lower bound on every anchor (domain.effFloor) prunes rings that cannot
// improve the best value found so far. Sparse machines terminate after
// one or two rings around the nearest busy core.
//
// Memoization. Computed values are cached in Core.eff (the same slot the
// eager path maintains) and stamped with the domain's invalidation epoch
// (Core.effStamp vs domain.effEpoch). The epoch advances whenever any
// anchor of the domain changes — a busy core's maintained eff moved, a
// core flipped busy/idle, or a barrier refreshed the frozen proxies — so
// a stale memo is never served. Epoch bumps are O(1); nothing is flooded.
//
// Determinism. The lazy values equal the eager fixpoint exactly (the BFS
// computes the same shortest-path minimum the relaxation converges to),
// so scheduling decisions, traces and results are byte-identical for a
// fixed (seed, shards). EffVerify machine-checks this claim during a run,
// and Kernel.Validate recomputes the eager fixpoint and compares every
// fresh memo against it.
//
// Scheduling. The indexed scheduler splits the stalled cores by what
// their horizons read. A stalled core with no idle same-domain neighbor
// depends only on busy neighbors' maintained times (every change posts a
// schedUpdate from lazyEffSite's O(degree) neighbor pass) and frozen
// cross-shard proxies, so it keeps an exact cached key in the runq —
// bit-for-bit the eager behavior, at the eager cost. Only the stalled
// cores adjacent to an idle region — whose horizons read shadow times
// that post no callbacks — move to a secondary per-domain heap ordered
// by (vt, ID) (stallq); every pick evaluates those on demand, with two
// memo layers (the per-epoch horizon memo and the sticky per-shape-epoch
// runnable bit) keeping repeated evaluations O(1).
// See docs/effective-time.md for the full design and cost model.

// EffMode selects how idle-region effective times are evaluated.
type EffMode int

const (
	// EffAuto (the default) evaluates idle regions lazily whenever the
	// policy supports it (IdleRelayPolicy) and eagerly otherwise. The
	// choice never affects results — only how fast the host reaches them.
	EffAuto EffMode = iota
	// EffEager forces the reference eager propagation (the per-completion
	// BFS flood): the baseline for benchmarks and differential debugging.
	EffEager
	// EffLazy forces lazy evaluation; kernels whose policy does not
	// support idle relaying fall back to eager propagation.
	EffLazy
	// EffVerify runs the eager propagation as the source of truth and
	// cross-checks every lazily computed value against it, panicking on
	// the first divergence — the differential oracle used by the
	// equivalence test suite, mirroring SchedVerify.
	EffVerify
)

// String names the mode.
func (m EffMode) String() string {
	switch m {
	case EffEager:
		return "eager"
	case EffLazy:
		return "lazy"
	case EffVerify:
		return "verify"
	default:
		return "auto"
	}
}

// IdleRelayPolicy is implemented by policies whose IdleTime is exactly
// the spatial relay rule "min over neighbor effective times, plus a
// constant delta" (Inf when no neighbor advertises a finite time). Only
// for such policies can an idle region's interior times be reconstructed
// from its busy frontier by shortest-path arithmetic; policies that do
// not implement the interface (or return ok=false) keep the eager
// propagation. Of the bundled policies only the paper's Spatial
// qualifies — the drift-comparison schemes all advertise Inf from idle
// cores and never enter the relay machinery at all.
type IdleRelayPolicy interface {
	// IdleRelay returns the per-hop relay increment (Spatial.T) and
	// whether lazy evaluation is admissible.
	IdleRelay() (delta vtime.Time, ok bool)
}

// setupEff resolves Config.Eff against the policy's capabilities.
func (k *Kernel) setupEff(mode EffMode) {
	delta, ok := vtime.Time(0), false
	if p, isRelay := k.policy.(IdleRelayPolicy); isRelay {
		delta, ok = p.IdleRelay()
	}
	switch mode {
	case EffEager:
		ok = false
	case EffVerify:
		k.effVerify = ok
		ok = false // eager stays authoritative; lazy runs as a shadow check
	}
	k.effLazy = ok
	k.relayDelta = delta
	if k.effLazy || k.effVerify {
		k.buildLandmarks()
	}
}

// effLandmarks is the number of landmark cores whose BFS hop-distance
// tables back the triangle-inequality anchor bounds in lazyFix. Corners
// of a mesh (which farthest-point sampling finds) make the bound exact
// for Manhattan geometry; four cover the hierarchical chiplet fabrics
// well. Purely a pruning aid — never affects results.
const effLandmarks = 4

// buildLandmarks precomputes hop distances from deterministically chosen
// landmark cores (farthest-point sampling from core 0, ties to the lowest
// ID) to every core. |dist_l(a) − dist_l(b)| lower-bounds the hop
// distance between a and b for any landmark l, and hop distance in turn
// lower-bounds the idle-restricted path length the relay rule telescopes
// over — which is what lets the lazy BFS stop as soon as the best anchor
// found beats every other anchor's provable minimum contribution.
// O(landmarks · (cores + links)) once at construction; the tables are
// derived state, rebuilt (not decoded) on restore.
func (k *Kernel) buildLandmarks() {
	n := len(k.cores)
	if n == 0 {
		return
	}
	k.lmDist = make([][]int32, 0, effLandmarks)
	queue := make([]int32, 0, n)
	next := 0
	for len(k.lmDist) < effLandmarks {
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[next] = 0
		queue = append(queue[:0], int32(next))
		for head := 0; head < len(queue); head++ {
			c := k.cores[queue[head]]
			for _, nbID := range c.neighbors {
				if dist[nbID] < 0 {
					dist[nbID] = dist[c.ID] + 1
					queue = append(queue, int32(nbID))
				}
			}
		}
		k.lmDist = append(k.lmDist, dist)
		// Farthest reached core (lowest ID on ties) seeds the next
		// landmark; on a mesh this walks the corners.
		far, farDist := 0, int32(0)
		for i, dv := range dist {
			if dv > farDist {
				far, farDist = i, dv
			}
		}
		next = far
	}
}

// satScale multiplies a non-negative per-hop delta by a hop count,
// saturating at Inf.
func satScale(delta vtime.Time, hops int) vtime.Time {
	if delta > 0 && vtime.Time(hops) > vtime.Inf/delta {
		return vtime.Inf
	}
	return delta * vtime.Time(hops)
}

// EffScheme names the active effective-time evaluation: "lazy", "eager"
// or "eager+verify".
func (k *Kernel) EffScheme() string {
	switch {
	case k.effVerify:
		return "eager+verify"
	case k.effLazy:
		return "lazy"
	default:
		return "eager"
	}
}

// satAdd adds a non-negative cost to a virtual time, saturating at Inf
// (vtime.Inf is MaxInt64, so plain addition would wrap).
func satAdd(t, cost vtime.Time) vtime.Time {
	if t >= vtime.Inf-cost {
		return vtime.Inf
	}
	return t + cost
}

// effInvalidate advances the domain's invalidation epoch, discarding
// every idle-core memo at O(1) cost. Called whenever an anchor changed:
// a busy core's maintained eff moved, a core flipped busy/idle, or the
// frozen proxies were refreshed at a barrier.
func (d *domain) effInvalidate() {
	d.effEpoch++
}

// busyAdd registers c as a frontier anchor (it just turned busy).
func (d *domain) busyAdd(c *Core) {
	if c.busyPos >= 0 {
		return
	}
	c.busyPos = len(d.busyList)
	d.busyList = append(d.busyList, c)
}

// busyRemove unregisters c from the anchor list (it just turned idle).
// If c's maintained eff defined the anchor floor, the floor is recomputed
// exactly — a floor that is too low only slows the BFS cutoff, but this
// keeps it tight on the workloads that matter (one task retiring after
// another on the same few cores).
func (d *domain) busyRemove(c *Core) {
	if c.busyPos < 0 {
		return
	}
	last := len(d.busyList) - 1
	moved := d.busyList[last]
	d.busyList[c.busyPos] = moved
	moved.busyPos = c.busyPos
	d.busyList[last] = nil
	d.busyList = d.busyList[:last]
	c.busyPos = -1
	if c.eff <= d.effFloor {
		d.recomputeFloor()
	}
}

// recomputeFloor recomputes the exact anchor lower bound: the minimum
// maintained eff over the domain's busy cores and the frozen-proxy floor
// captured at the last barrier.
func (d *domain) recomputeFloor() {
	m := d.frozenFloor
	for _, b := range d.busyList {
		if b.eff < m {
			m = b.eff
		}
	}
	d.effFloor = m
	d.floorAge = 0
}

// lazyEffSite is the lazy counterpart of the updateEff call sites in
// domain.step: instead of flooding, it maintains the frontier anchors —
// c's own advertised time, the busy list and the anchor floor —
// invalidates the memos when an anchor actually changed, and notifies
// the stalled same-domain neighbors whose horizons read c directly.
// O(degree), never O(region): the neighbor pass is exactly the cheap,
// non-flooding prefix of the eager updateEff, and it is what lets
// stalled cores with no idle neighbor keep exact runq keys (schedUpdate)
// instead of being re-evaluated at every pick.
func (d *domain) lazyEffSite(c *Core) {
	k := d.k
	if !c.idle {
		flipped := c.busyPos < 0
		if flipped {
			// Idle → busy: the core joins the frontier. Paths through it
			// are cut, so memos computed against the old region shape are
			// stale even when the advertised value happens to be unchanged
			// (the old value may itself have been a stale memo) — and
			// region horizons may move either way, so the shape epoch
			// drops every sticky runnable bit too.
			d.busyAdd(c)
			d.effInvalidate()
			d.shapeEpoch++
		}
		changed := c.eff != c.vt
		if changed {
			old := c.eff
			c.eff = c.vt
			d.effInvalidate()
			if old <= d.effFloor && c.eff > d.effFloor {
				// The floor-defining anchor moved up: the (now
				// conservative) floor stays valid, but age it so it is
				// re-tightened periodically instead of decaying forever.
				d.floorAge++
				if d.floorAge >= 16 && d.floorAge >= len(d.busyList) {
					d.recomputeFloor()
				}
			}
		}
		// Outside the change branch so a re-busy core whose advertised
		// value survived its idle spell still anchors the floor.
		if c.eff < d.effFloor {
			d.effFloor = c.eff
			d.floorAge = 0
		}
		if flipped || changed {
			for _, nbID := range c.neighbors {
				nb := k.cores[nbID]
				if nb.dom != d {
					continue
				}
				if flipped {
					nb.idleNb--
				}
				if nb.current != nil {
					d.schedUpdate(nb)
				}
			}
		}
		return
	}
	// Busy → idle: the core stops being an anchor; its slot in the memo
	// space is stale until the next lazy read recomputes it. Stalled
	// neighbors gain an idle neighbor and are re-routed to the stall heap.
	if c.busyPos >= 0 {
		d.busyRemove(c)
		c.effStamp = 0
		d.effInvalidate()
		d.shapeEpoch++
		for _, nbID := range c.neighbors {
			nb := k.cores[nbID]
			if nb.dom != d {
				continue
			}
			nb.idleNb++
			if nb.current != nil {
				d.schedUpdate(nb)
			}
		}
	}
}

// effSite dispatches the two effective-time maintenance sites in
// domain.step to the active evaluation scheme: the eager flood, the O(1)
// lazy bookkeeping, or — under EffVerify — the flood plus the shadow
// bookkeeping the differential checks need (busy list and anchor floor;
// the flood itself owns Core.eff).
func (d *domain) effSite(c *Core) {
	if d.k.effLazy {
		d.lazyEffSite(c)
		return
	}
	d.updateEff(c)
	if d.k.effVerify {
		if !c.idle {
			if c.busyPos < 0 {
				d.busyAdd(c)
			}
			if c.eff < d.effFloor {
				d.effFloor = c.eff
				d.floorAge = 0
			}
		} else if c.busyPos >= 0 {
			d.busyRemove(c)
		}
	}
}

// lazyEff returns c's effective time under lazy evaluation: the core's
// maintained value while busy, the memoized (or freshly computed)
// region fixpoint while idle. Matches the eager fixpoint exactly,
// including the busy==0 convention: with no local anchor, idle-only
// relay chains have no fixpoint and everyone advertises Inf.
func (d *domain) lazyEff(c *Core) vtime.Time {
	if !c.idle {
		return c.eff
	}
	if d.busy == 0 {
		return vtime.Inf
	}
	if c.effStamp == d.effEpoch {
		return c.eff
	}
	e := d.lazyFix(c)
	if !d.k.effVerify {
		// In verify mode the eager flood owns Core.eff; the lazy shadow
		// computation must not overwrite it.
		c.eff = e
		c.effStamp = d.effEpoch
	}
	return e
}

// lazyFix computes the region fixpoint value for idle core c: a
// ring-layered BFS over the local idle cores around c, minimizing
// anchor + delta·(hops+1) over all frontier anchors (local busy cores
// and finite frozen cross-shard proxies). The ring index equals the hop
// count, so once best ≤ floor + delta·(ring+1) no farther anchor can
// improve the result and the search stops.
func (d *domain) lazyFix(c *Core) vtime.Time {
	k := d.k
	delta := k.relayDelta
	d.effGen++
	gen := d.effGen
	// The scratch ring buffer is domain-owned and reused across calls;
	// a cursor per ring keeps layers contiguous.
	q := d.effScratch[:0]
	q = append(q, c.ID)
	c.effSeen = gen
	best := vtime.Inf
	ringStart, ringEnd := 0, 1
	for depth := 0; ringStart < ringEnd; depth++ {
		cost := satScale(delta, depth+1)
		if satAdd(d.effFloor, cost) >= best {
			break
		}
		if best < vtime.Inf && !d.anchorCanImprove(c, depth, best) {
			break
		}
		for i := ringStart; i < ringEnd; i++ {
			cc := k.cores[q[i]]
			for j, nbID := range cc.neighbors {
				nb := k.cores[nbID]
				if nb.dom != d {
					// Cross-shard frontier: the frozen proxy cc holds for
					// nb is an anchor at this depth.
					if p := cc.nbEff[j]; p != vtime.Inf {
						if v := satAdd(p, cost); v < best {
							best = v
						}
					}
					continue
				}
				if !nb.idle {
					// Local busy frontier: anchor at the maintained eff
					// (the value as of the core's last step boundary, the
					// same one the eager flood reads — not the live clock).
					if v := satAdd(nb.eff, cost); v < best {
						best = v
					}
					continue
				}
				if nb.effSeen != gen {
					nb.effSeen = gen
					q = append(q, nbID)
				}
			}
		}
		ringStart, ringEnd = ringEnd, len(q)
	}
	d.effScratch = q[:0]
	return best
}

// anchorCanImprove reports whether any frontier anchor could still beat
// best when the BFS is about to scan ring `depth`. Every anchor not yet
// credited sits at least depth+1 relay hops out — and at least its
// landmark distance bound (|dist_l(c) − dist_l(a)|, a hop-count lower
// bound by the triangle inequality, and idle-restricted paths are never
// shorter than unrestricted ones) — so its contribution is at least
// a.eff + max(bound, depth+1)·delta. Frozen cross-shard proxies are
// bounded by the barrier-exact frozenFloor at depth+1 hops. The
// per-anchor terms of anchors already credited to best understate their
// real contribution, which only makes the answer conservatively true —
// the cutoff can never prune a better anchor, so lazyFix stays exact.
//
// The aggregate floor cutoff in lazyFix already handled the cheap case;
// this O(frontier) scan is what keeps the BFS radius independent of how
// far the *globally* slowest anchor has drifted: a distant lagging task
// prunes here by distance even though it drags effFloor far below best.
func (d *domain) anchorCanImprove(c *Core, depth int, best vtime.Time) bool {
	delta := d.k.relayDelta
	cost := satScale(delta, depth+1)
	if satAdd(d.frozenFloor, cost) < best {
		return true
	}
	lm := d.k.lmDist
	ci := c.ID
	for _, a := range d.busyList {
		hops := depth + 1
		for _, dist := range lm {
			dc, da := dist[ci], dist[a.ID]
			if dc < 0 || da < 0 {
				continue // disconnected from this landmark: no bound
			}
			diff := int(dc - da)
			if diff < 0 {
				diff = -diff
			}
			if diff > hops {
				hops = diff
			}
		}
		if satAdd(a.eff, satScale(delta, hops)) < best {
			return true
		}
	}
	return false
}

// lazyMinNeighborEff is the lazy counterpart of Core.minNeighborEff: the
// minimum over c's neighbors of their effective times, pulling idle local
// neighbors through the region fixpoint and reading frozen proxies for
// foreign ones. It is the value the eager proxies would hold at fixpoint.
func (d *domain) lazyMinNeighborEff(c *Core) vtime.Time {
	k := d.k
	m := vtime.Inf
	for j, nbID := range c.neighbors {
		nb := k.cores[nbID]
		var e vtime.Time
		if nb.dom != d {
			e = c.nbEff[j] // frozen between barriers, same as eager
		} else if !nb.idle {
			e = nb.eff
		} else {
			e = d.lazyEff(nb)
		}
		if e < m {
			m = e
		}
	}
	return m
}

// verifyEff cross-checks the lazy computation against the eager state
// (EffVerify): for stalled core c, the lazily reconstructed neighborhood
// minimum must equal the one the authoritative eager proxies hold.
// Divergence is a kernel bug, never a workload error.
func (d *domain) verifyEff(c *Core) {
	if d.inProp || d.k.inRefresh {
		// Mid-flood the eager state is not yet at fixpoint; the lazy
		// reconstruction is only comparable at settled points.
		return
	}
	lazy := d.lazyMinNeighborEff(c)
	eager := c.minNeighborEff()
	if lazy != eager {
		panic(fmt.Sprintf(
			"core: effective-time divergence at core %d (domain %d): lazy neighborhood min %v, eager %v",
			c.ID, d.id, lazy, eager))
	}
}

// stallq is a domain's secondary scheduling heap under lazy evaluation:
// the stalled cores with at least one idle same-domain neighbor
// (current != nil && idleNb > 0), ordered by (vt, ID). Their runnable
// keys — when runnable at all — equal their clocks, but runnability
// itself depends on lazily evaluated horizons, so membership here means
// "idle-adjacent stalled", not "runnable"; pickCore evaluates the
// horizons of the members with vt ≤ limit on demand. Clocks are frozen
// while stalled, so the heap never needs re-keying between insert and
// remove.
type stallq struct {
	heap []*Core
}

func stallLess(a, b *Core) bool {
	if a.vt != b.vt {
		return a.vt < b.vt
	}
	return a.ID < b.ID
}

func (q *stallq) swap(i, j int) {
	h := q.heap
	h[i], h[j] = h[j], h[i]
	h[i].stallPos = i
	h[j].stallPos = j
}

func (q *stallq) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !stallLess(q.heap[i], q.heap[p]) {
			return
		}
		q.swap(i, p)
		i = p
	}
}

func (q *stallq) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && stallLess(q.heap[l], q.heap[s]) {
			s = l
		}
		if r < n && stallLess(q.heap[r], q.heap[s]) {
			s = r
		}
		if s == i {
			return
		}
		q.swap(i, s)
		i = s
	}
}

func (q *stallq) insert(c *Core) {
	c.stallPos = len(q.heap)
	q.heap = append(q.heap, c)
	q.up(c.stallPos)
}

func (q *stallq) remove(c *Core) {
	i := c.stallPos
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	c.stallPos = -1
	if i != last {
		q.down(i)
		q.up(i)
	}
}

// update maintains c's membership: stalled cores in, everyone else out.
// A stalled core whose clock moved (resume + re-stall within one step)
// is repositioned by remove/insert at the post-step update.
func (q *stallq) update(c *Core) {
	stalled := c.current != nil
	switch {
	case stalled && c.stallPos < 0:
		q.insert(c)
	case !stalled && c.stallPos >= 0:
		q.remove(c)
	case stalled:
		q.down(c.stallPos)
		q.up(c.stallPos)
	}
}

// stallBest finds the best runnable stalled core with vt ≤ limit — the
// minimal (vt, ID) member whose lazily evaluated horizon has reached its
// clock — plus the count of runnable stalled cores within the limit (the
// §VIII sample share the runq cannot see). The walk visits only the heap
// subtrees whose root clock qualifies. A member found runnable records a
// sticky bit valid for the current shape epoch: anchor values are
// monotone between busy/idle flips, so its horizon can only keep rising
// above its frozen clock — the expensive region evaluation runs once,
// not once per pick (any input that could lower the horizon — the
// core's own clock, births, locks, a flip anywhere in the domain —
// clears the bit via schedUpdate or the epoch).
func (d *domain) stallBest(limit vtime.Time) (best *Core, count int) {
	q := d.sq
	if q == nil || len(q.heap) == 0 {
		return nil, 0
	}
	var walk func(i int)
	walk = func(i int) {
		if i >= len(q.heap) {
			return
		}
		c := q.heap[i]
		if c.vt > limit {
			return
		}
		if c != d.stepping {
			runnable := c.rnStamp == d.shapeEpoch
			if !runnable && c.vt <= d.stallHorizon(c) {
				runnable = true
				c.rnStamp = d.shapeEpoch
			}
			if runnable {
				count++
				if best == nil || stallLess(c, best) {
					best = c
				}
			}
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return best, count
}

// stallHorizon serves a stalled core's policy horizon through a memo
// valid for the current effective-time epoch. The horizon's inputs are
// the neighbor effective times (epoch-stable by definition) and the
// non-eff runnability inputs — clock, births, locks — whose every
// mutation site posts schedUpdate (the invalidation catalogue in
// docs/scheduler.md), which clears the memo. Without this, a dense
// machine re-derives hundreds of identical horizons per pick.
func (d *domain) stallHorizon(c *Core) vtime.Time {
	if c.hzStamp == d.effEpoch {
		return c.hzKey
	}
	h := d.k.policy.Horizon(c)
	c.hzKey = h
	c.hzStamp = d.effEpoch
	return h
}

// pickLazy is pickCore's indexed decision under lazy evaluation: the
// best of the runq head (non-stalled runnables, exact cached keys) and
// the best runnable stalled core, with the scan's (key, ID) preference,
// plus the combined §VIII runnable count.
func (d *domain) pickLazy(limit vtime.Time) (best *Core, key vtime.Time, count int) {
	rqBest, rqCount := d.rq.pick(limit)
	sBest, sCount := d.stallBest(limit)
	count = rqCount + sCount
	switch {
	case rqBest == nil:
		best = sBest
	case sBest == nil:
		best = rqBest
	default:
		// A stalled core's runnable key is its clock.
		if sBest.vt < rqBest.schedKey || (sBest.vt == rqBest.schedKey && sBest.ID < rqBest.ID) {
			best = sBest
		} else {
			best = rqBest
		}
	}
	if best == nil {
		return nil, 0, count
	}
	if best == sBest && best != rqBest {
		return best, best.vt, count
	}
	return best, best.schedKey, count
}

// resetLazyIdle rebuilds the lazy bookkeeping for the all-idle machine
// (the busy == 0 branch of refreshEff, reached at barriers and on
// restore): no anchors, infinite floors, every memo discarded.
func (d *domain) resetLazyIdle() {
	clear(d.busyList)
	d.busyList = d.busyList[:0]
	d.effFloor = vtime.Inf
	d.frozenFloor = vtime.Inf
	d.floorAge = 0
	d.effInvalidate()
	d.shapeEpoch++
	for _, c := range d.cores {
		c.busyPos = -1
	}
}

// rebuildLazyFromRefresh rebuilds the domain's lazy bookkeeping after the
// barrier-time global relaxation (refreshEff) has left every Core.eff at
// the global fixpoint: the busy list and exact floors are recomputed, and
// — in pure lazy mode — every idle core's memo is seeded from its
// already-correct eff (the global fixpoint restricted to a domain equals
// the domain-local fixpoint anchored at the freshly frozen proxies).
// EffVerify deliberately skips the memo seeding so its differential reads
// keep exercising the BFS instead of comparing the eager state to itself.
func (d *domain) rebuildLazyFromRefresh() {
	k := d.k
	clear(d.busyList)
	d.busyList = d.busyList[:0]
	d.effInvalidate()
	// Refreshed frozen proxies can move horizons either way: drop the
	// sticky runnable bits along with the value memos.
	d.shapeEpoch++
	frozen := vtime.Inf
	for _, c := range d.cores {
		if c.idle {
			c.busyPos = -1
			if !k.effVerify {
				c.effStamp = d.effEpoch
			}
		} else {
			c.busyPos = len(d.busyList)
			d.busyList = append(d.busyList, c)
		}
		for j, nbID := range c.neighbors {
			if k.cores[nbID].dom != d && c.nbEff[j] < frozen {
				frozen = c.nbEff[j]
			}
		}
	}
	d.frozenFloor = frozen
	d.recomputeFloor()
}

// rebuildStallq reseats the domain's idle-adjacent stalled cores in the
// secondary heap (lazy mode only); the counterpart of runq.rebuild for
// the stalled set. Stalled cores with no idle same-domain neighbor stay
// in the runq: every input of their horizons posts an invalidation
// (lazyEffSite's neighbor pass, the barrier rebuild, schedUpdate), so
// their cached keys are exact, same as under eager propagation.
func (d *domain) rebuildStallq() {
	q := d.sq
	q.heap = q.heap[:0]
	for _, c := range d.cores {
		c.stallPos = -1
	}
	for _, c := range d.cores {
		if c.current != nil && c.idleNb > 0 {
			c.stallPos = len(q.heap)
			q.heap = append(q.heap, c)
		}
	}
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// rebuildIdleNb recounts every owned core's idle same-domain neighbors —
// the predicate routing stalled cores between the runq and the stall
// heap. Maintained incrementally by lazyEffSite's flip branches while
// running; recomputed here before the scheduling structures are rebuilt
// (engine start, restore).
func (d *domain) rebuildIdleNb() {
	k := d.k
	for _, c := range d.cores {
		n := int32(0)
		for _, nbID := range c.neighbors {
			nb := k.cores[nbID]
			if nb.dom == d && nb.idle {
				n++
			}
		}
		c.idleNb = n
	}
}

// indexedHead returns the minimal runnable (key, core) the indexed
// structures can see under an infinite limit — the per-domain input to
// the sharded round setup. Under lazy evaluation this folds the stalled
// heap in; otherwise it is the plain runq head.
func (d *domain) indexedHead() (*Core, vtime.Time) {
	if d.k.effLazy {
		c, key, _ := d.pickLazy(vtime.Inf)
		if c == nil {
			return nil, vtime.Inf
		}
		return c, key
	}
	head := d.rq.peek()
	if head == nil {
		return nil, vtime.Inf
	}
	return head, head.schedKey
}
