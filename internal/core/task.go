package core

import (
	"fmt"
	"runtime/debug"

	"simany/internal/network"
	"simany/internal/timing"
	"simany/internal/vtime"
)

// TaskState describes the lifecycle of a task.
type TaskState int

const (
	// TaskReady is a task queued on a core but not yet started.
	TaskReady TaskState = iota
	// TaskRunning is the task currently holding (or stalled on) its core.
	TaskRunning
	// TaskBlocked is a task parked in Block, waiting for Unblock.
	TaskBlocked
	// TaskDone is a finished task.
	TaskDone
)

// Task is one unit of parallel work. Tasks are created by the task runtime
// (or directly for tests), placed on a core, and executed as a goroutine
// multiplexed on the core's virtual clock.
type Task struct {
	// ID is a kernel-unique identifier.
	ID uint64
	// Name labels the task for traces and deadlock reports.
	Name string
	// Meta is reserved for the task runtime layered above the kernel.
	Meta any

	fn   func(*Env)
	core *Core
	//simany:derived implied by which queue holds the task; decodeTask re-derives it from queue membership
	state   TaskState
	arrival vtime.Time // stamp at which the task may start
	resume  vtime.Time // wake stamp set by Unblock
	//simany:derived only meaningful for TaskDone tasks, which never appear in a checkpoint
	endVT vtime.Time

	started     bool
	pendingWake bool // Unblock arrived before the task reached Block
	release     bool // recycle the struct into the task pool at Done

	// cont is the resume channel of the worker goroutine currently running
	// the task body — assigned when the task first starts (domain.startTask)
	// and shared with the worker for its whole pooled lifetime.
	cont   chan struct{}
	worker *taskWorker //simany:derived parked goroutine identity, respawned by restoreParked
	env    Env         //simany:derived rebuilt by decodeTask/startTask from the owning kernel and core
}

// ReleaseOnDone marks the task's struct for recycling into the kernel's
// task pool the moment it finishes: the first NewTask on the shard where it
// ended may reuse the allocation under a fresh identity. Callers must not
// retain the *Task (or read State/EndVT) after completion. The task runtime
// opts in for every task it creates — it never hands task handles out —
// while tasks created directly (tests, InjectTask entry points) stay
// un-recycled by default so held handles remain valid. Returns t for
// chaining.
func (t *Task) ReleaseOnDone() *Task {
	t.release = true
	return t
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// Started reports whether the task's body has begun executing. A task
// codec uses it together with State to tell how a checkpointed task was
// parked: TaskRunning = stalled in place, started-but-not-running =
// parked in (or woken from) a Block, unstarted = fresh.
func (t *Task) Started() bool { return t.started }

// Core returns the core the task is placed on.
func (t *Task) Core() *Core { return t.core }

// EndVT returns the virtual time at which the task finished (valid once
// Done).
func (t *Task) EndVT() vtime.Time { return t.endVT }

type yieldKind int

const (
	yieldStalled yieldKind = iota
	yieldBlocked
	yieldDone
)

type yieldInfo struct {
	kind yieldKind
	task *Task
}

// Env is the interface a task's code uses to interact with the simulator:
// timing annotations, memory accesses and messaging. Exactly one Env is
// active at any instant.
type Env struct {
	k *Kernel
	t *Task
	c *Core

	horizon vtime.Time // current policy horizon for the core
}

// Kernel returns the owning kernel.
func (e *Env) Kernel() *Kernel { return e.k }

// CoreID returns the index of the core the task runs on.
func (e *Env) CoreID() int { return e.c.ID }

// Task returns the running task.
func (e *Env) Task() *Task { return e.t }

// Now returns the core's current virtual time.
func (e *Env) Now() vtime.Time { return e.c.vt }

// advance adds a computing duration to the core's clock, scaled by core
// speed, then enforces the policy horizon.
func (e *Env) advance(cost vtime.Time) {
	if cost < 0 {
		panic("core: negative compute cost")
	}
	if e.c.Speed != 1.0 {
		cost = cost.Scale(1.0 / e.c.Speed)
	}
	e.c.vt += cost
	e.c.stats.ComputeTime += cost
	e.checkHorizon()
}

// checkHorizon yields as stalled while the core sits beyond its policy
// horizon.
func (e *Env) checkHorizon() {
	for e.c.vt > e.horizon {
		e.c.stats.Stalls++
		e.yield(yieldStalled)
	}
}

// EnforceHorizon re-enters the stall loop explicitly. Restored task bodies
// (rt's step interpreter) call it when resuming from a serialized
// stalled-at-horizon point, so a restored task parks with exactly the
// original's stall accounting.
func (e *Env) EnforceHorizon() { e.checkHorizon() }

// Compute executes an annotated instruction block: the per-class costs
// plus probabilistic branch misprediction penalties (§II.A "Timing
// annotations").
func (e *Env) Compute(counts timing.Counts) {
	e.c.stats.Blocks++
	e.c.stats.Instructions += counts.Total()
	e.advance(e.c.timer.Time(counts))
}

// ComputeCycles advances the clock by a raw cycle count (coarse manual
// annotation).
func (e *Env) ComputeCycles(cycles float64) {
	if cycles < 0 {
		panic("core: negative compute cost")
	}
	e.c.stats.Blocks++
	e.advance(vtime.Cycles(cycles))
}

// ComputeTime advances the clock by a raw duration.
func (e *Env) ComputeTime(d vtime.Time) {
	e.c.stats.Blocks++
	e.advance(d)
}

// EnterScope opens a function scope for the pessimistic L1 model.
func (e *Env) EnterScope() { e.c.l1.Enter() }

// LeaveScope closes a function scope, discarding L1 contents (§V).
func (e *Env) LeaveScope() { e.c.l1.Leave() }

// Read performs n data reads of elem bytes starting at base through the
// configured memory system.
func (e *Env) Read(base uint64, n int64, elem int) {
	e.access(base, n, elem, false)
}

// Write performs n data writes of elem bytes starting at base.
func (e *Env) Write(base uint64, n int64, elem int) {
	e.access(base, n, elem, true)
}

func (e *Env) access(base uint64, n int64, elem int, write bool) {
	if n <= 0 {
		return
	}
	d := e.k.mem.Access(e.c, base, n, elem, write, e.c.vt)
	if d < 0 {
		panic("core: memory system returned negative delay")
	}
	e.c.vt += d
	e.c.stats.MemTime += d
	e.checkHorizon()
}

// Send emits an architectural message from this core at the current
// virtual time. The destination's registered handler runs immediately
// (timing is carried by the embedded stamps). It returns the routed
// message with its arrival time.
func (e *Env) Send(dst int, kind network.Kind, size int, payload any) network.Message {
	return e.k.send(network.Message{
		Src:     e.c.ID,
		Dst:     dst,
		Kind:    kind,
		Size:    size,
		Payload: payload,
		Stamp:   e.c.vt,
	})
}

// Block parks the task until a handler calls Kernel.Unblock for it; the
// core is free to run other resident tasks meanwhile. It returns the wake
// stamp passed to Unblock; the core clock has already been advanced to at
// least that stamp (plus the context-switch cost if another task ran in
// between).
func (e *Env) Block() vtime.Time {
	if e.t.pendingWake {
		// The wake-up message was handled while this task was still
		// running (handlers run synchronously at send time): the reply is
		// already there, so the task just waits in place until its
		// arrival stamp without freeing the core.
		e.t.pendingWake = false
		e.c.vt = vtime.Max(e.c.vt, e.t.resume)
		e.checkHorizon()
		return e.t.resume
	}
	e.yield(yieldBlocked)
	return e.t.resume
}

// Yield relinquishes the core so the kernel can re-evaluate scheduling; the
// task remains runnable. It is primarily useful in tests and in spin-style
// waiting loops.
func (e *Env) Yield() {
	e.c.stats.Stalls++
	e.yield(yieldStalled)
}

// AcquireLockExempt marks the core as holding one more lock. While a core
// holds locks it is exempt from spatial stalling so it can always reach the
// release point (§II.B "Locks and critical sections").
func (e *Env) AcquireLockExempt() {
	e.c.lockDepth++
	e.horizon = e.k.horizonFor(e.c)
}

// ReleaseLockExempt undoes AcquireLockExempt.
func (e *Env) ReleaseLockExempt() {
	if e.c.lockDepth == 0 {
		panic("core: lock depth underflow")
	}
	e.c.lockDepth--
	e.horizon = e.k.horizonFor(e.c)
	e.checkHorizon()
}

// yield transfers control back to the kernel and waits to be resumed
// (except for yieldDone, which ends the goroutine).
func (e *Env) yield(kind yieldKind) {
	e.c.dom.yieldCh <- yieldInfo{kind: kind, task: e.t}
	if kind == yieldDone {
		return
	}
	<-e.t.cont
	e.horizon = e.k.horizonFor(e.c)
}

// run executes one task body to completion (ending with a yieldDone
// handoff to the kernel, even on panic).
func (t *Task) run() {
	defer func() {
		if r := recover(); r != nil {
			// Surface task panics to the kernel rather than killing the
			// process silently from a background goroutine.
			t.env.k.setPanic(fmt.Errorf("task %q (id %d) panicked: %v\n%s",
				t.Name, t.ID, r, debug.Stack()))
			t.env.c.dom.yieldCh <- yieldInfo{kind: yieldDone, task: t}
		}
	}()
	t.fn(&t.env)
	t.env.yield(yieldDone)
}

// taskWorker is a pooled goroutine that runs successive task bodies: the
// replacement for the goroutine-per-task model, where spawn-heavy workloads
// paid a goroutine spawn plus channel allocation per task. A worker is
// either executing (or parked inside) exactly one task's body, or parked on
// its resume channel in a domain's free pool awaiting the next assignment.
type taskWorker struct {
	// cont is the kernel -> worker resume channel; while the worker runs a
	// task the task's cont field aliases it, so mid-task resumes and pool
	// reassignment share one channel (recycled with the worker).
	cont chan struct{}
	// task is the current assignment. Written only by the kernel before
	// signalling cont (the channel handoff orders the write against the
	// worker's read); nil tells a woken worker to exit.
	task *Task
}

func (w *taskWorker) loop() {
	for {
		w.task.run()
		<-w.cont
		if w.task == nil {
			return
		}
	}
}
