package core

import (
	"sort"

	"simany/internal/vtime"
)

// TraceKind classifies simulator trace events.
type TraceKind uint8

const (
	// TraceTaskStart: a fresh task begins executing on a core.
	TraceTaskStart TraceKind = iota
	// TraceTaskResume: a blocked task's continuation resumes (context
	// switch).
	TraceTaskResume
	// TraceTaskStall: a task yields because its core hit the policy
	// horizon.
	TraceTaskStall
	// TraceTaskBlock: a task parks waiting for a message.
	TraceTaskBlock
	// TraceTaskEnd: a task finishes.
	TraceTaskEnd
	// TraceSend: an architectural message is emitted.
	TraceSend
	// TraceHandle: a message handler runs at its destination.
	TraceHandle
	// TraceUnblock: a blocked task is made runnable.
	TraceUnblock
)

//lint:allow snapshotsafe immutable lookup table, written nowhere
var traceKindNames = [...]string{
	"task-start", "task-resume", "task-stall", "task-block", "task-end",
	"send", "handle", "unblock",
}

// String names the kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one record of simulator activity. VT is the core's virtual
// time at the event; Seq is the order in which the tracer observed the
// event. On the sequential engine that is the simulation order; on the
// sharded engine events are buffered per shard and delivered at each
// virtual-time barrier in merged (VT, Core, per-shard order) order, with
// Seq renumbered globally over the merged stream. Either way Seq is
// strictly increasing and dense, and for a fixed (seed, shards)
// configuration the full stream is bitwise identical at every worker
// count.
type TraceEvent struct {
	Seq    uint64
	Kind   TraceKind
	VT     vtime.Time
	Core   int
	TaskID uint64
	Task   string
	// Aux carries a kind-specific value: destination core for TraceSend,
	// source core for TraceHandle, wake stamp for TraceUnblock.
	Aux int64
}

// Tracer receives simulator trace events. Implementations must be cheap:
// the kernel calls them on the hot path when tracing is enabled.
type Tracer interface {
	Trace(TraceEvent)
}

// emit records a trace event if tracing is enabled.
//
// On the sequential engine the event goes straight to the tracer with a
// global sequence number. On the sharded engine it is appended, lock-free,
// to the buffer of the shard owning the event's core: every emit site runs
// either on the worker currently driving that shard (lifecycle events and
// intra-shard deliveries never cross the partition) or inside the
// single-threaded barrier, so no two host threads ever touch one buffer
// concurrently. Buffers are merged and handed to the tracer at the next
// barrier (flushTrace).
func (k *Kernel) emit(kind TraceKind, vt vtime.Time, core int, t *Task, aux int64) {
	if k.tracer == nil {
		return
	}
	ev := TraceEvent{Kind: kind, VT: vt, Core: core, Aux: aux}
	if t != nil {
		ev.TaskID = t.ID
		ev.Task = t.Name
	}
	if k.sharded {
		d := k.cores[core].dom
		d.traceSeq++
		ev.Seq = d.traceSeq
		d.traceBuf = append(d.traceBuf, ev)
		return
	}
	k.traceSeq++
	ev.Seq = k.traceSeq
	k.tracer.Trace(ev)
}

// flushTrace merges the per-shard trace buffers accumulated since the
// previous barrier and delivers them to the tracer in deterministic
// (VT, Core, per-shard Seq) order, renumbering Seq globally. Each shard's
// buffer content is fixed by the round semantics (never by host
// scheduling), and the sort key is a total order — Core determines the
// producing shard and the per-shard Seq is unique within it — so the
// delivered stream is bitwise identical at every worker count. The tracer
// callback runs single-threaded, between rounds, which is also what makes
// ValidatingTracer safe on the sharded engine.
//
// Within one barrier epoch events are VT-sorted; across epochs VT can
// step back by at most the round quantum (a later round may revisit
// earlier virtual time on other cores), which is the same bounded
// out-of-order window the engine's drift bound allows.
//
//simany:barrier
func (k *Kernel) flushTrace() {
	if k.tracer == nil || !k.sharded {
		return
	}
	n := 0
	for _, d := range k.domains {
		n += len(d.traceBuf)
	}
	if n == 0 {
		return
	}
	merged := k.traceMerge[:0]
	for _, d := range k.domains {
		merged = append(merged, d.traceBuf...)
		// Unpin task-name strings held by the reused per-shard buffer.
		clear(d.traceBuf)
		d.traceBuf = d.traceBuf[:0]
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.Seq < b.Seq
	})
	for i := range merged {
		k.traceSeq++
		merged[i].Seq = k.traceSeq
		k.tracer.Trace(merged[i])
	}
	clear(merged)
	k.traceMerge = merged[:0]
}

// SetTracer installs (or removes, with nil) the event tracer. Tracing no
// longer costs the parallel engine anything but the buffer appends: on a
// sharded kernel events are collected per shard and merged
// deterministically at each virtual-time barrier, so SetTracer never
// demotes and always returns false. The boolean return is kept so older
// callers that surfaced DemotionNotice on demotion keep compiling; only
// construction-time component checks (policy, memory system) demote now.
// Install the tracer before Run to capture the full stream.
func (k *Kernel) SetTracer(t Tracer) (demoted bool) {
	k.tracer = t
	return false
}

// DemotionNotice returns a human-readable explanation when a requested
// sharded configuration was demoted to the sequential engine by an
// unsafe component at construction, and "" when the kernel runs as
// configured. Results are identical either way — demotion costs parallel
// speedup, never correctness — which is why the engines may substitute
// for each other silently at the result level.
func (k *Kernel) DemotionNotice() string {
	if k.demotion == "" {
		return ""
	}
	return "core: sharded execution demoted to sequential: " + k.demotion
}

// ClampNotice returns a warning when the requested shard count exceeded
// the core count and was clamped (Config.Shards > N means some shards
// would own no cores), and "" when the configuration was used as given.
// The effective count is what Result.Shards and the partition reflect.
func (k *Kernel) ClampNotice() string { return k.clamp }
