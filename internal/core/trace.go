package core

import "simany/internal/vtime"

// TraceKind classifies simulator trace events.
type TraceKind uint8

const (
	// TraceTaskStart: a fresh task begins executing on a core.
	TraceTaskStart TraceKind = iota
	// TraceTaskResume: a blocked task's continuation resumes (context
	// switch).
	TraceTaskResume
	// TraceTaskStall: a task yields because its core hit the policy
	// horizon.
	TraceTaskStall
	// TraceTaskBlock: a task parks waiting for a message.
	TraceTaskBlock
	// TraceTaskEnd: a task finishes.
	TraceTaskEnd
	// TraceSend: an architectural message is emitted.
	TraceSend
	// TraceHandle: a message handler runs at its destination.
	TraceHandle
	// TraceUnblock: a blocked task is made runnable.
	TraceUnblock
)

var traceKindNames = [...]string{
	"task-start", "task-resume", "task-stall", "task-block", "task-end",
	"send", "handle", "unblock",
}

// String names the kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one record of simulator activity. VT is the core's virtual
// time at the event; Seq is the wall-clock (simulation) order.
type TraceEvent struct {
	Seq    uint64
	Kind   TraceKind
	VT     vtime.Time
	Core   int
	TaskID uint64
	Task   string
	// Aux carries a kind-specific value: destination core for TraceSend,
	// source core for TraceHandle, wake stamp for TraceUnblock.
	Aux int64
}

// Tracer receives simulator trace events. Implementations must be cheap:
// the kernel calls them on the hot path when tracing is enabled.
type Tracer interface {
	Trace(TraceEvent)
}

// emit records a trace event if tracing is enabled.
func (k *Kernel) emit(kind TraceKind, vt vtime.Time, core int, t *Task, aux int64) {
	if k.tracer == nil {
		return
	}
	k.traceSeq++
	ev := TraceEvent{Seq: k.traceSeq, Kind: kind, VT: vt, Core: core, Aux: aux}
	if t != nil {
		ev.TaskID = t.ID
		ev.Task = t.Name
	}
	k.tracer.Trace(ev)
}

// SetTracer installs (or removes, with nil) the event tracer. Tracers
// require a global event order, so installing one on a sharded kernel
// demotes it to the sequential engine (the same gate Config.Tracer applies
// at construction); this must happen before any task is placed. The
// return value reports whether this call demoted the kernel — callers
// that asked for shards should surface DemotionNotice to the user instead
// of silently running sequentially.
func (k *Kernel) SetTracer(t Tracer) (demoted bool) {
	k.tracer = t
	if t != nil && k.sharded {
		if k.liveTasks() > 0 {
			panic("core: SetTracer on a sharded kernel with tasks already placed")
		}
		k.setupEngine(Config{Shards: 1, ShardQuantum: k.quantum})
		k.demotion = "a tracer installed via SetTracer requires a global event order"
		return true
	}
	return false
}

// DemotionNotice returns a human-readable explanation when a requested
// sharded configuration was demoted to the sequential engine (by an
// unsafe component at construction, or by SetTracer), and "" when the
// kernel runs as configured. Results are identical either way — demotion
// costs parallel speedup, never correctness — which is why the engines
// may substitute for each other silently at the result level.
func (k *Kernel) DemotionNotice() string {
	if k.demotion == "" {
		return ""
	}
	return "core: sharded execution demoted to sequential: " + k.demotion
}
