package core

import (
	"fmt"

	"simany/internal/vtime"
)

// runSeq is the sequential engine: one scheduling loop over a single
// domain containing every core. This is the original SiMany kernel loop —
// Shards=1 (the default) reproduces it bit-for-bit.
func (k *Kernel) runSeq() (Result, error) {
	d := k.domains[0]
	for {
		if err := k.takePanic(); err != nil {
			return Result{}, err
		}
		if k.maxSteps > 0 && k.steps.Load() >= k.maxSteps {
			return Result{}, fmt.Errorf("core: exceeded %d scheduling steps", k.maxSteps)
		}
		if k.stopAfter > 0 && k.steps.Load() >= k.stopAfter {
			// Between steps the sequential engine is trivially quiescent
			// (handlers run synchronously inside steps); this is its
			// checkpoint-legal point.
			k.paused = true
			return k.result(), ErrPaused
		}
		c := d.pickCore(vtime.Inf)
		if c == nil {
			if d.live == 0 {
				return k.result(), nil
			}
			return Result{}, k.deadlockError()
		}
		d.step(c)
	}
}
