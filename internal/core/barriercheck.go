package core

import (
	"fmt"

	"simany/internal/network"
	"simany/internal/vtime"
)

// Barrier validation hooks the two paper-level guarantees directly into
// the barrier, which is single-threaded by construction. (Historically it
// was the only way to check a sharded run — installing a Tracer used to
// demote the kernel to sequential execution. Tracers are shard-safe now,
// delivered at barriers from per-shard buffers, but these checks remain
// the cheapest always-on validation because they never materialize an
// event stream.) The invariants:
//
//   - per-(src,dst) FIFO: messages merged at barriers must carry
//     non-decreasing emission stamps for each ordered core pair, and every
//     arrival must be at or after its stamp (§II.B — FIFO channels are
//     what lets handlers tolerate bounded out-of-order arrival without
//     rollback);
//   - the global drift bound: after each barrier the clocks of all busy
//     cores must lie within Diameter × T (+ the round quantum under
//     sharding) plus a caller-supplied slack for workload block
//     granularity (§II.A).
//
// A violation surfaces both from Kernel.Run (the run aborts with the
// error) and from Kernel.Validate.

// barrierCheck is the armed validator state. It is only ever touched from
// barrier context or before Run, so it needs no locking.
type barrierCheck struct {
	slack    vtime.Time
	fifoLast map[[2]int32]vtime.Time // (src,dst) -> last merged stamp
	err      error
}

// EnableBarrierValidation arms continuous invariant checking at every
// shard barrier. slack is added to the theoretical drift bound to absorb
// workload block granularity: a core overshoots its horizon by at most one
// uninterruptible compute block, so 2×block + T matches the repo's
// invariant tests. Call before Run; enabling mid-run would see a partial
// FIFO history.
func (k *Kernel) EnableBarrierValidation(slack vtime.Time) {
	k.bcheck = &barrierCheck{
		slack:    slack,
		fifoLast: make(map[[2]int32]vtime.Time),
	}
}

// recordMsg checks one barrier-merged message against the FIFO stamp
// invariant. Only top-level merged items are recorded: messages a handler
// emits while the barrier drains are same-shard deliveries whose ordering
// is the sequential engine's, not the merge's.
func (bc *barrierCheck) recordMsg(msg network.Message) {
	if bc.err != nil {
		return
	}
	if msg.Arrival < msg.Stamp {
		bc.err = fmt.Errorf("core: barrier message %d->%d arrives at %v before its emission stamp %v",
			msg.Src, msg.Dst, msg.Arrival, msg.Stamp)
		return
	}
	key := [2]int32{int32(msg.Src), int32(msg.Dst)}
	if last, ok := bc.fifoLast[key]; ok && msg.Stamp < last {
		bc.err = fmt.Errorf("core: FIFO violation %d->%d: barrier merged stamp %v after already applying stamp %v",
			msg.Src, msg.Dst, msg.Stamp, last)
		return
	}
	bc.fifoLast[key] = msg.Stamp
}

// barrierInvariants is the per-barrier check the sharded run loop executes
// after refreshEff: any FIFO violation recorded while draining, then the
// global drift bound over the refreshed clocks.
func (k *Kernel) barrierInvariants() error {
	if err := k.bcheck.err; err != nil {
		return err
	}
	return k.CheckDriftBound(k.bcheck.slack)
}

// DriftBound returns the policy-guaranteed maximum clock spread between
// busy cores: Diameter × T for the spatial policy (§II.A), plus the round
// quantum under sharded execution (cross-shard proxies freeze for one
// round, letting a core overrun by at most the quantum). It returns
// vtime.Inf when the policy provides no spatial guarantee or the topology
// is disconnected.
func (k *Kernel) DriftBound() vtime.Time {
	sp, ok := k.policy.(Spatial)
	if !ok {
		return vtime.Inf
	}
	if k.diam == -2 {
		k.diam = k.topo.Diameter()
	}
	if k.diam < 0 {
		return vtime.Inf
	}
	bound := vtime.Time(k.diam) * sp.T
	if k.sharded {
		bound += k.quantum
	}
	return bound
}

// CheckDriftBound verifies that the spread between the fastest and slowest
// busy cores' clocks stays within DriftBound() + slack. Idle cores are
// excluded: a core with nothing to run keeps a stale clock and rejoins at
// its wake-up time. With fewer than two busy cores, or no finite bound,
// the check passes trivially.
func (k *Kernel) CheckDriftBound(slack vtime.Time) error {
	bound := k.DriftBound()
	if bound == vtime.Inf {
		return nil
	}
	lo, hi := vtime.Inf, vtime.Time(0)
	busy := 0
	for _, c := range k.cores {
		if c.idle {
			continue
		}
		busy++
		lo, hi = vtime.Min(lo, c.vt), vtime.Max(hi, c.vt)
	}
	if busy < 2 {
		return nil
	}
	if hi-lo > bound+slack {
		return fmt.Errorf("core: drift bound violated: busy-core spread %v exceeds %v (bound %v + slack %v)",
			hi-lo, bound+slack, bound, slack)
	}
	return nil
}
