package core

import (
	"simany/internal/cache"
	"simany/internal/rng"
	"simany/internal/timing"
	"simany/internal/vtime"
)

// Core is the simulation state of one simulated processor core.
type Core struct {
	// ID is the core index in the topology.
	ID int
	// Speed is the computing-power factor of the core (1.0 for base cores;
	// the paper's polymorphic architectures use 0.5 and 1.5). Computation
	// costs are divided by Speed.
	//
	//simany:derived immutable configuration, reinstated by New from Config
	Speed float64

	k *Kernel //simany:derived backpointer, rewired by New before restore
	//simany:derived backpointer, rewired when domains are rebuilt
	dom *domain // execution shard owning this core

	// rng is the core's private random stream (seed ^ coreID splitmix):
	// draws by simulated code stay deterministic regardless of how shards
	// are scheduled on host threads. It is a serializable rng.Rand so its
	// exact stream position survives a checkpoint/restore round trip.
	// Embedded by value — one machine word — so 100k cores do not pay
	// 100k separate heap objects for their streams.
	rng rng.Rand

	vt   vtime.Time // current virtual time (meaningful while busy)
	idle bool
	//simany:derived effective-time cache, recomputed by refreshEff after decode
	eff vtime.Time // advertised effective time (vt when busy, shadow when idle)

	// Lazy effective-time state (efflazy.go): the memo epoch stamp that
	// validates eff for an idle core, the BFS visited generation, and the
	// core's positions in its domain's busy anchor list and stalled heap.
	effStamp uint64     //simany:derived memo validity stamp vs domain.effEpoch, 0 = stale
	effSeen  uint64     //simany:derived lazyFix visited marker vs domain.effGen, transient per BFS
	busyPos  int        //simany:derived index in domain.busyList (-1 = idle), rebuilt after decode
	stallPos int        //simany:derived index in domain.sq (-1 = not stalled), rebuilt after decode
	hzKey    vtime.Time //simany:derived stalled-horizon memo served by stallBest, guarded by hzStamp
	hzStamp  uint64     //simany:derived horizon-memo stamp vs domain.effEpoch, cleared by schedUpdate
	idleNb   int32      //simany:derived count of idle same-domain neighbors, rebuilt by schedRebuild after decode
	rnStamp  uint64     //simany:derived sticky stalled-runnable stamp vs domain.shapeEpoch, cleared by schedUpdate

	//simany:derived immutable topology adjacency, rebuilt by New
	neighbors []int // topological neighbors (sorted)
	//simany:derived neighbor effective-time proxies, refreshed from eff at the restore barrier
	nbEff []vtime.Time

	// Resident tasks. conts and ready are only mutated through the
	// push/pop helpers below, which maintain the cached queue minima.
	current *Task   // task that yielded as stalled, resumed first
	conts   []*Task // unblocked continuations (run before fresh tasks)
	ready   []*Task // fresh tasks in arrival order

	// Cached queue minima: the minimum arrival stamp over ready and the
	// minimum resume stamp over conts, maintained incrementally (same
	// lazy-recompute discipline as the birth cache) so the scheduler's
	// runnable-key computation and NextEventTime never rescan the queues.
	readyMin      vtime.Time //simany:derived lazy cache over ready, marked dirty on restore and rescanned on demand
	readyMinDirty bool       //simany:derived set true by restore so the first read rescans
	contsMin      vtime.Time //simany:derived lazy cache over conts, marked dirty on restore and rescanned on demand
	contsMinDirty bool       //simany:derived set true by restore so the first read rescans

	// Indexed-scheduler state (sched.go), owned by the core's domain:
	// position in the domain's runnable heap (-1 = not enqueued) and the
	// cached runnable key it is ordered by while enqueued.
	schedPos int        //simany:derived heap index, rebuilt by schedRebuild after decode
	schedKey vtime.Time //simany:derived cached runnable key, rebuilt by schedRebuild after decode

	lockDepth int // >0: lock-holder exemption from spatial stalls

	// lastHandled is the latest handled arrival stamp at this core, used
	// for the out-of-order delivery statistic. It lives on the core (the
	// per-shard root) rather than the kernel so it is plain per-shard
	// state: sendNow always runs in the destination shard's context.
	lastHandled vtime.Time

	births     map[uint64]vtime.Time // birth stamps of spawned, not-yet-started tasks
	birthCache vtime.Time            //simany:derived lazy min over births, recomputed on first read after restore
	birthDirty bool                  //simany:derived set true by restore so the first read rescans

	// taskSeq numbers the tasks this core has spawned. Task IDs are
	// allocated per spawning core (NewTask), so they are deterministic
	// under sharded execution: each counter is only touched by the worker
	// driving the core's shard, never by a racing interleaving.
	taskSeq uint64

	// Timing machinery.
	timer *timing.BlockTimer
	l1    *cache.Scoped
	l2    *cache.L2

	stats CoreStats
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	Blocks        int64 // annotation blocks executed
	Instructions  int64
	Stalls        int64 // spatial/policy stalls
	TaskStarts    int64
	Switches      int64 // context switches to resumed continuations
	MsgsSent      int64
	ComputeTime   vtime.Time // virtual time spent computing
	MemTime       vtime.Time // virtual time spent in memory accesses
	StallWaitTime vtime.Time // not simulated time; count of stall events only
}

// VT returns the core's current virtual time.
func (c *Core) VT() vtime.Time { return c.vt }

// Kernel returns the owning kernel.
func (c *Core) Kernel() *Kernel { return c.k }

// Eff returns the effective time the core advertises to its neighbors.
// Under lazy evaluation an idle core's value is computed on demand from
// its region's busy frontier (and memoized); busy cores always read the
// value maintained at their last step boundary, identical to the eager
// scheme.
func (c *Core) Eff() vtime.Time {
	if c.k.effLazy && c.idle {
		return c.dom.lazyEff(c)
	}
	return c.eff
}

// Idle reports whether the core has no runnable or stalled resident task.
func (c *Core) Idle() bool { return c.idle }

// LockDepth returns the number of locks currently held by tasks on this
// core.
func (c *Core) LockDepth() int { return c.lockDepth }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() CoreStats { return c.stats }

// Rand returns the core's private deterministic random source. Simulated
// code (runtime policies, benchmark task bodies) must draw from here
// rather than Kernel.Rand so results do not depend on the interleaving of
// shard workers.
func (c *Core) Rand() *rng.Rand { return &c.rng }

// Neighbors returns the core's topological neighbors.
func (c *Core) Neighbors() []int { return c.neighbors }

// L1 returns the core's pessimistic scoped L1 model.
func (c *Core) L1() *cache.Scoped { return c.l1 }

// L2 returns the core's L2 model (used by the distributed-memory runtime).
func (c *Core) L2() *cache.L2 { return c.l2 }

// minNeighborEff returns the minimum advertised effective time among the
// core's neighbors, Inf if it has none. Eagerly maintained kernels read
// the neighbor proxies directly; under lazy evaluation the proxies are
// not maintained between barriers, so idle local neighbors are pulled
// through the region fixpoint instead (frozen cross-shard proxies are
// read as-is, exactly like the eager scheme between barriers).
func (c *Core) minNeighborEff() vtime.Time {
	if c.k.effLazy {
		return c.dom.lazyMinNeighborEff(c)
	}
	m := vtime.Inf
	for _, t := range c.nbEff {
		if t < m {
			m = t
		}
	}
	return m
}

// minBirth returns the minimum outstanding birth stamp, Inf if none.
func (c *Core) minBirth() vtime.Time {
	if !c.birthDirty {
		return c.birthCache
	}
	m := vtime.Inf
	for _, t := range c.births {
		if t < m {
			m = t
		}
	}
	c.birthCache = m
	c.birthDirty = false
	return m
}

// addBirth records the birth stamp of a task spawned by this core that has
// not started executing yet (§II.A "Time drift of dynamically created
// tasks").
func (c *Core) addBirth(id uint64, stamp vtime.Time) {
	if c.births == nil {
		c.births = make(map[uint64]vtime.Time)
	}
	c.births[id] = stamp
	c.birthDirty = true
}

// removeBirth discards a birth stamp once the spawned task has started.
func (c *Core) removeBirth(id uint64) {
	if _, ok := c.births[id]; ok {
		delete(c.births, id)
		c.birthDirty = true
	}
}

// minReadyArrival returns the minimum arrival stamp over the core's fresh
// task queue, Inf when it is empty.
func (c *Core) minReadyArrival() vtime.Time {
	if c.readyMinDirty {
		m := vtime.Inf
		for _, t := range c.ready {
			if t.arrival < m {
				m = t.arrival
			}
		}
		c.readyMin = m
		c.readyMinDirty = false
	}
	return c.readyMin
}

// minContResume returns the minimum resume stamp over the core's
// continuation queue, Inf when it is empty.
func (c *Core) minContResume() vtime.Time {
	if c.contsMinDirty {
		m := vtime.Inf
		for _, t := range c.conts {
			if t.resume < m {
				m = t.resume
			}
		}
		c.contsMin = m
		c.contsMinDirty = false
	}
	return c.contsMin
}

// pushReady appends a fresh task; the cached minimum absorbs the new
// arrival directly unless it is already pending a recompute.
func (c *Core) pushReady(t *Task) {
	c.ready = append(c.ready, t)
	if !c.readyMinDirty && t.arrival < c.readyMin {
		c.readyMin = t.arrival
	}
}

// popReady removes and returns the head of the fresh task queue. Removing
// the task that carried the cached minimum schedules a lazy recompute;
// draining the queue resets the cache exactly.
func (c *Core) popReady() *Task {
	t := c.ready[0]
	c.ready = c.ready[1:]
	if len(c.ready) == 0 {
		c.readyMin = vtime.Inf
		c.readyMinDirty = false
	} else if !c.readyMinDirty && t.arrival == c.readyMin {
		c.readyMinDirty = true
	}
	return t
}

// pushCont appends an unblocked continuation (see pushReady).
func (c *Core) pushCont(t *Task) {
	c.conts = append(c.conts, t)
	if !c.contsMinDirty && t.resume < c.contsMin {
		c.contsMin = t.resume
	}
}

// popCont removes and returns the head continuation (see popReady).
func (c *Core) popCont() *Task {
	t := c.conts[0]
	c.conts = c.conts[1:]
	if len(c.conts) == 0 {
		c.contsMin = vtime.Inf
		c.contsMinDirty = false
	} else if !c.contsMinDirty && t.resume == c.contsMin {
		c.contsMinDirty = true
	}
	return t
}

// hasRunnableWork reports whether the core has anything to execute.
func (c *Core) hasRunnableWork() bool {
	return c.current != nil || len(c.conts) > 0 || len(c.ready) > 0
}

// residentTasks counts tasks attached to the core in any state, used for
// occupancy probes by the task runtime.
func (c *Core) residentTasks() int {
	n := len(c.conts) + len(c.ready)
	if c.current != nil {
		n++
	}
	return n
}

// QueueLength returns the number of fresh tasks waiting in the core's task
// queue (the quantity bounded by the runtime's queue capacity).
func (c *Core) QueueLength() int { return len(c.ready) }

// NextEventTime returns the earliest virtual time at which the core could
// execute something: its clock while busy, the earliest pending task stamp
// while it only has queued work, and Inf when it is fully idle. Global
// synchronization schemes use it as the core's position in virtual time.
func (c *Core) NextEventTime() vtime.Time {
	if !c.idle {
		return c.vt
	}
	m := c.minContResume()
	if r := c.minReadyArrival(); r < m {
		m = r
	}
	if m == vtime.Inf {
		return m
	}
	return vtime.Max(c.vt, m)
}
