package core

import (
	"runtime"
	"testing"
	"time"

	"simany/internal/network"
	"simany/internal/topology"
)

const (
	kindChurnSpawn network.Kind = 97
	kindChurnDone  network.Kind = 98
)

// churnKernel builds a 16-core mesh kernel whose workload continuously
// creates short-lived tasks through a spawn handler: each root loops,
// shipping a spawn request to a neighbor whose handler places a pooled
// (ReleaseOnDone) child there, then blocks until the child's completion
// message wakes it — so task creation and retirement interleave at steady
// state, exactly the pattern the pools are built for. This exercises the
// whole pooled lifecycle — worker reuse, task-struct recycling and the
// network hot path — on both engines.
func churnKernel(shards, workers, rounds int) *Kernel {
	k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
		Seed: 3, Shards: shards, Workers: workers})
	childFn := func(e *Env) {
		e.ComputeCycles(15)
		parent := e.Task().Meta.(*Task)
		e.Send(parent.Core().ID, kindChurnDone, 8, parent)
	}
	k.Handle(kindChurnDone, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	k.Handle(kindChurnSpawn, func(k *Kernel, msg network.Message) {
		t := k.NewTask(msg.Dst, "child", childFn, msg.Payload).ReleaseOnDone()
		k.PlaceTask(t, msg.Dst, msg.Arrival, nil)
	})
	for c := 0; c < 16; c++ {
		c := c
		k.InjectTask(c, "root", func(e *Env) {
			for i := 0; i < rounds; i++ {
				e.ComputeCycles(float64(5 + c%4))
				e.Send((c+1)%16, kindChurnSpawn, 32, e.Task())
				e.Block()
			}
		}, nil, 0)
	}
	return k
}

// TestTaskPoolRecyclesStructs: ReleaseOnDone tasks must actually flow back
// through the domain pools — churning far more tasks than stay live at once
// must not grow the task-struct population linearly.
func TestTaskPoolRecyclesStructs(t *testing.T) {
	for _, shards := range []int{1, 4} {
		k := churnKernel(shards, 1, 50)
		if _, err := k.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		pooled := 0
		for _, d := range k.domains {
			pooled += len(d.freeTasks)
			if len(d.freeWorkers) != 0 {
				t.Errorf("shards=%d: %d workers left pooled after Run", shards, len(d.freeWorkers))
			}
		}
		if pooled == 0 {
			t.Errorf("shards=%d: no task structs recycled by a churn workload", shards)
		}
		// 16 roots × 50 spawn rounds ran 800 children; the pool must hold
		// far fewer structs than tasks that existed.
		if pooled > 200 {
			t.Errorf("shards=%d: pool holds %d structs — recycling is not reusing them", shards, pooled)
		}
	}
}

// TestTaskHandleSafeWithoutRelease: tasks that did not opt into recycling
// keep a stable, readable handle after completion even while pooled tasks
// churn around them (the regression pooling must never introduce).
func TestTaskHandleSafeWithoutRelease(t *testing.T) {
	k := churnKernel(4, 1, 30)
	done := k.InjectTask(2, "witness", func(e *Env) {
		e.ComputeCycles(100)
	}, "meta-payload", 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done.State() != TaskDone {
		t.Errorf("witness state = %v, want done", done.State())
	}
	if done.EndVT() <= 0 {
		t.Errorf("witness EndVT = %v, want > 0", done.EndVT())
	}
	if done.Name != "witness" || done.Meta != "meta-payload" {
		t.Errorf("witness identity mutated: %q %v", done.Name, done.Meta)
	}
}

// TestWorkerPoolShutdown: a completed Run must not leave parked worker
// goroutines behind.
func TestWorkerPoolShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		k := churnKernel(4, 2, 20)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Exited goroutines are reaped asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 || time.Now().After(deadline) {
			if g > before+2 {
				t.Errorf("goroutines grew %d -> %d: pooled workers leaked", before, g)
			}
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// allocsPerStep runs the churn workload and reports host heap allocations
// per scheduling step.
func allocsPerStep(t *testing.T, shards, workers int) float64 {
	t.Helper()
	k := churnKernel(shards, workers, 60)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.Steps == 0 {
		t.Fatal("no steps")
	}
	return float64(after.Mallocs-before.Mallocs) / float64(res.Steps)
}

// TestStepAllocBudget pins the allocation budget of the kernel step loop on
// both engines so the pooled hot path cannot silently rot: the workload's
// own spawn-handler allocations (one pooled task miss at warm-up, handler
// closures) plus engine bookkeeping must stay within a small constant per
// step. This workload measures ~1.1 allocs/step on both engines with
// pooling (several times that without); the budget leaves ~2.5x headroom
// for noise while still catching a regression to per-task allocation.
func TestStepAllocBudget(t *testing.T) {
	const budget = 3.0
	for _, tc := range []struct {
		name            string
		shards, workers int
	}{
		{"seq", 1, 1},
		{"sharded", 4, 2},
	} {
		if got := allocsPerStep(t, tc.shards, tc.workers); got > budget {
			t.Errorf("%s: %.2f allocs/step, budget %.1f", tc.name, got, budget)
		}
	}
}

// TestMessageSeqAcrossWorkers: Message.Seq must be a function of
// (seed, shards) only — never of how many host threads drive the shards.
// Handlers record the seq of every delivered message on its destination
// (destination-owned state, race-free), and the per-destination streams
// must be identical at every worker count.
func TestMessageSeqAcrossWorkers(t *testing.T) {
	run := func(workers int) [][]uint64 {
		seqs := make([][]uint64, 16)
		k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
			Seed: 11, Shards: 4, Workers: workers})
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
			seqs[msg.Dst] = append(seqs[msg.Dst], msg.Seq())
		})
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 25; i++ {
					e.ComputeCycles(float64(10 + c%3))
					e.Send((c+7)%16, kindOneWay, 16, nil)
					e.Send((c+3)%16, kindOneWay, 8, nil)
				}
			}, nil, 0)
		}
		if _, err := k.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return seqs
	}
	base := run(1)
	total := 0
	for _, s := range base {
		total += len(s)
	}
	if total == 0 {
		t.Fatal("no messages delivered")
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		for dst := range base {
			if len(got[dst]) != len(base[dst]) {
				t.Fatalf("workers=%d dst=%d: %d seqs vs %d", w, dst, len(got[dst]), len(base[dst]))
			}
			for i := range base[dst] {
				if got[dst][i] != base[dst][i] {
					t.Fatalf("workers=%d dst=%d msg %d: seq %d != %d — Seq depends on worker interleaving",
						w, dst, i, got[dst][i], base[dst][i])
				}
			}
		}
	}
	// A per-(src) stream must also stay strictly increasing per source at
	// each destination pair — spot-check global uniqueness.
	seen := make(map[uint64]bool)
	for _, s := range base {
		for _, v := range s {
			if seen[v] {
				t.Fatalf("seq %d assigned to two messages", v)
			}
			seen[v] = true
		}
	}
}
