package core

import (
	"reflect"
	"testing"

	"simany/internal/metrics"
	"simany/internal/network"
	"simany/internal/topology"
)

// meteredShardedRun executes the trace_merge_test messaging workload with a
// metrics registry attached and returns its snapshot.
func meteredShardedRun(t *testing.T, workers int) metrics.Snapshot {
	t.Helper()
	reg := metrics.New()
	k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
		Seed: 7, Shards: 4, Workers: workers, Metrics: reg})
	if !k.Sharded() {
		t.Fatal("expected sharded kernel")
	}
	if k.Metrics() != reg {
		t.Fatal("Metrics() does not return the attached registry")
	}
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
	for c := 0; c < 16; c++ {
		c := c
		k.InjectTask(c, "w", func(e *Env) {
			for i := 0; i < 25; i++ {
				e.ComputeCycles(float64(10 + c%3))
				e.Send((c+7)%16, kindOneWay, 16, nil)
			}
		}, nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return reg.Snapshot()
}

// TestKernelMetricsDeterministicAcrossWorkers: the full snapshot —
// including per-shard breakdowns — must be bitwise identical at every
// worker count.
func TestKernelMetricsDeterministicAcrossWorkers(t *testing.T) {
	base := meteredShardedRun(t, 1)
	for _, w := range []int{2, 4} {
		if got := meteredShardedRun(t, w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: snapshot diverged:\n  got  %+v\n  want %+v", w, got, base)
		}
	}
}

// TestKernelMetricsPopulated: the standard instruments actually record.
func TestKernelMetricsPopulated(t *testing.T) {
	snap := meteredShardedRun(t, 2)
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	hists := map[string]int64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	if counters["shard.barrier.count"] == 0 {
		t.Error("no barriers counted on a sharded run")
	}
	if hists["net.msg.latency"] == 0 {
		t.Error("no message latencies observed")
	}
	if hists["shard.round.steps"] == 0 {
		t.Error("no round step counts observed")
	}
	if hists["net.link.wait"] == 0 {
		t.Error("no link contention observed (workload sends 400 messages over shared links)")
	}
	if _, ok := hists["drift.spread"]; !ok {
		t.Error("drift.spread histogram missing")
	}
}

// TestMetricsNilByDefault: without Config.Metrics the kernel records
// nothing and Metrics() is nil.
func TestMetricsNilByDefault(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: DefaultT}, Seed: 1})
	if k.Metrics() != nil {
		t.Error("unconfigured kernel has a registry")
	}
}

// TestMetricsOnSequentialEngine: the registry works on the sequential
// engine too (single stripe, message latency still recorded).
func TestMetricsOnSequentialEngine(t *testing.T) {
	reg := metrics.New()
	k := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: DefaultT},
		Seed: 3, Metrics: reg})
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
	k.InjectTask(0, "w", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.ComputeCycles(5)
			e.Send(3, kindOneWay, 16, nil)
		}
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "net.msg.latency" && h.Count == 0 {
			t.Error("sequential engine recorded no message latencies")
		}
	}
}
