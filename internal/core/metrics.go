package core

import (
	"simany/internal/metrics"
	"simany/internal/network"
	"simany/internal/vtime"
)

// kernelMetrics holds the kernel's standard instruments in an attached
// metrics registry (Config.Metrics). Every instrument follows the
// registry's stripe discipline — shard workers write only their own
// stripe during rounds, the single-threaded barrier may write any — so
// recording is lock-free and the merged snapshot is bitwise identical at
// every worker count (docs/observability.md lists the catalogue).
// The instrument pointers below alias series owned by reg, whose
// SnapshotState serializes every counter and histogram; each pointer is
// re-resolved from the registry by name when metrics are re-attached.
type kernelMetrics struct {
	reg *metrics.Registry

	// linkWait is the distribution of virtual time messages spent waiting
	// for a busy link (the network's per-link next-free contention model).
	linkWait *metrics.Histogram //simany:derived alias into reg, re-resolved by name on attach
	// msgLatency is the end-to-end message latency distribution
	// (arrival − emission stamp, including contention and FIFO clamping).
	msgLatency *metrics.Histogram //simany:derived alias into reg, re-resolved by name on attach
	// barriers counts shard rounds (= barrier merges) executed.
	barriers *metrics.Counter //simany:derived alias into reg, re-resolved by name on attach
	// barrierStall accumulates, per shard, the virtual time of each round
	// quantum the shard could not fill with local work — the deterministic
	// analogue of "time spent waiting at the barrier".
	barrierStall *metrics.Counter //simany:derived alias into reg, re-resolved by name on attach
	// roundSteps is the distribution of scheduling steps a shard took per
	// round (shape of the load balance).
	roundSteps *metrics.Histogram //simany:derived alias into reg, re-resolved by name on attach
	// driftSpread samples, at every barrier, the clock spread between the
	// fastest and slowest busy cores — the measured counterpart of
	// DriftBound.
	driftSpread *metrics.Histogram //simany:derived alias into reg, re-resolved by name on attach
}

// newKernelMetrics widens the registry to the shard count and creates the
// kernel's instruments. Runs at construction time, single-threaded.
func newKernelMetrics(reg *metrics.Registry, shards int) *kernelMetrics {
	reg.SetShards(shards)
	tb := metrics.DefaultTimeBounds()
	return &kernelMetrics{
		reg:          reg,
		linkWait:     reg.Histogram("net.link.wait", metrics.UnitTime, tb),
		msgLatency:   reg.Histogram("net.msg.latency", metrics.UnitTime, tb),
		barriers:     reg.Counter("shard.barrier.count", metrics.UnitCount),
		barrierStall: reg.Counter("shard.barrier.stall", metrics.UnitTime),
		roundSteps:   reg.Histogram("shard.round.steps", metrics.UnitCount, metrics.DefaultCountBounds()),
		driftSpread:  reg.Histogram("drift.spread", metrics.UnitTime, tb),
	}
}

// Metrics returns the attached registry (nil when none was configured).
func (k *Kernel) Metrics() *metrics.Registry {
	if k.met == nil {
		return nil
	}
	return k.met.reg
}

// netObserver forwards the network model's contention observations into
// the registry, striped by the shard owning the waiting link's node. That
// node is on the message's route: during a round the whole route belongs
// to the executing shard (cross-shard routes are deferred to the barrier),
// so the stripe is always the writing thread's own.
type netObserver struct{ k *Kernel }

var _ network.Observer = netObserver{}

// LinkWait implements network.Observer.
func (o netObserver) LinkWait(node, nbIdx int, wait vtime.Time) {
	o.k.met.linkWait.ObserveTime(o.k.part[node], wait)
}

// recordBarrier captures the per-round instruments after a sharded round
// finished and before the next one starts. minKey/limit are the round's
// window; the call is single-threaded (barrier context).
//
//simany:barrier
func (k *Kernel) recordBarrier(minKey, limit vtime.Time) {
	m := k.met
	m.barriers.Inc(0)
	lo, hi := vtime.Inf, vtime.Time(0)
	busyTotal := 0
	for _, d := range k.domains {
		m.roundSteps.Observe(d.id, int64(d.roundSteps))
		if limit == vtime.Inf {
			continue
		}
		span := limit - minKey
		// How far into the round window the shard's busy cores got; a
		// shard with no local work "stalls" for the whole quantum.
		dhi := minKey
		for _, c := range d.cores {
			if !c.idle {
				busyTotal++
				if c.vt > dhi {
					dhi = c.vt
				}
				lo, hi = vtime.Min(lo, c.vt), vtime.Max(hi, c.vt)
			}
		}
		unused := limit - dhi
		if unused < 0 {
			unused = 0
		}
		if unused > span {
			unused = span
		}
		m.barrierStall.AddTime(d.id, unused)
	}
	if busyTotal >= 2 {
		m.driftSpread.ObserveTime(0, hi-lo)
	}
}
