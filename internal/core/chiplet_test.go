package core

import (
	"reflect"
	"strings"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func chiplet16() *topology.Topology {
	return topology.Chiplet([]topology.Tier{
		{W: 2, H: 2, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(2)},
	})
}

// TestShardClampNotice: requesting more shards than cores used to clamp
// silently; the kernel now surfaces the effective count.
func TestShardClampNotice(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(8), Policy: Spatial{T: DefaultT},
		Seed: 1, Shards: 99})
	if k.NumShards() != 8 {
		t.Fatalf("effective shards = %d, want 8", k.NumShards())
	}
	notice := k.ClampNotice()
	if !strings.Contains(notice, "99") || !strings.Contains(notice, "clamped to 8") {
		t.Errorf("clamp notice %q does not name both counts", notice)
	}
	// An in-range request stays silent.
	quiet := New(Config{Topo: topology.Mesh(8), Policy: Spatial{T: DefaultT},
		Seed: 1, Shards: 4})
	if quiet.ClampNotice() != "" {
		t.Errorf("unexpected clamp notice %q", quiet.ClampNotice())
	}
}

// TestClampedShardsEquivalent: Shards=99 on 8 cores is the same machine as
// Shards=8 — identical results and identical checkpoint fingerprint.
func TestClampedShardsEquivalent(t *testing.T) {
	run := func(shards int) (Result, uint64) {
		k := New(Config{Topo: topology.Mesh(8), Policy: Spatial{T: DefaultT},
			Seed: 5, Shards: shards})
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
		for c := 0; c < 8; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 10; i++ {
					e.ComputeCycles(20)
					e.Send((c+3)%8, kindOneWay, 16, nil)
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, k.fprint
	}
	resA, fpA := run(8)
	resB, fpB := run(99)
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("clamped run diverged:\n  shards=8  %+v\n  shards=99 %+v", resA, resB)
	}
	if fpA != fpB {
		t.Errorf("fingerprint differs between shards=8 (%x) and clamped shards=99 (%x)", fpA, fpB)
	}
}

// TestChipletShardsAlignWithChiplets: on a hierarchical topology the engine
// partitions shard boundaries along chiplet boundaries.
func TestChipletShardsAlignWithChiplets(t *testing.T) {
	topo := chiplet16()
	k := New(Config{Topo: topo, Policy: Spatial{T: DefaultT}, Seed: 1, Shards: 4})
	h := topo.Hierarchy()
	for c := 0; c < topo.N(); c++ {
		u := h.UnitOf(c, 0)
		if k.part[c] != u {
			t.Fatalf("core %d (chiplet %d) assigned to shard %d", c, u, k.part[c])
		}
	}
}

// TestChipletDeterministicAcrossWorkers: on a chiplet machine the sharded
// result depends only on (seed, shards) — never on the host thread count.
func TestChipletDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		k := New(Config{Topo: chiplet16(), Policy: Spatial{T: DefaultT},
			Seed: 11, Shards: 4, Workers: workers})
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 25; i++ {
					var counts [8]int64
					counts[7] = 10
					e.Compute(counts)
					// (c+7)%16 is in a different chiplet for every c, so
					// every message crosses a gateway and a shard boundary.
					e.Send((c+7)%16, kindOneWay, 16, nil)
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: result diverged:\n  got  %+v\n  want %+v", w, got, base)
		}
	}
}

// TestChipletFingerprintCoversHierarchy: tier parameters change the
// fingerprint (checkpoints must not restore across machine shapes); the
// same configuration always agrees with itself.
func TestChipletFingerprintCoversHierarchy(t *testing.T) {
	fp := func(tiers []topology.Tier) uint64 {
		k := New(Config{Topo: topology.Chiplet(tiers), Policy: Spatial{T: DefaultT}, Seed: 1})
		return k.fprint
	}
	base := []topology.Tier{
		{W: 2, H: 2, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(2)},
	}
	same := fp(base)
	if fp(base) != same {
		t.Error("fingerprint not deterministic")
	}
	diffPen := []topology.Tier{
		{W: 2, H: 2, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(3)},
	}
	if fp(diffPen) == same {
		t.Error("fingerprint ignores tier penalty")
	}
}

// TestDisconnectedTopologyRejected: a disconnected network must be refused
// at construction time (the spatial drift bound Diameter×T is meaningless
// when the diameter is unbounded).
func TestDisconnectedTopologyRejected(t *testing.T) {
	disc := topology.New(4, "disc")
	disc.AddLink(0, 1, vtime.CyclesInt(1), 128)
	disc.AddLink(2, 3, vtime.CyclesInt(1), 128)
	if disc.Diameter() != -1 {
		t.Fatalf("Diameter = %d, want -1 sentinel", disc.Diameter())
	}
	defer func() {
		if recover() == nil {
			t.Error("core.New accepted a disconnected topology")
		}
	}()
	New(Config{Topo: disc, Policy: Spatial{T: DefaultT}, Seed: 1})
}
