package core

import (
	"reflect"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// sliceTracer retains every delivered event, in order.
type sliceTracer struct {
	events []TraceEvent
}

func (s *sliceTracer) Trace(ev TraceEvent) { s.events = append(s.events, ev) }

// tracedShardedRun executes a messaging workload on a 16-core mesh split
// into 4 shards, with a tracer installed (tr may be nil), and returns the
// Result.
func tracedShardedRun(t *testing.T, workers int, tr Tracer) Result {
	t.Helper()
	k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
		Seed: 7, Shards: 4, Workers: workers})
	if !k.Sharded() {
		t.Fatal("expected sharded kernel")
	}
	if tr != nil {
		k.SetTracer(tr)
	}
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
	for c := 0; c < 16; c++ {
		c := c
		k.InjectTask(c, "w", func(e *Env) {
			for i := 0; i < 25; i++ {
				e.ComputeCycles(float64(10 + c%3))
				e.Send((c+7)%16, kindOneWay, 16, nil)
			}
		}, nil, 0)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// TestShardedTraceStreamAcrossWorkers: the merged trace stream of a
// sharded run must be bitwise identical no matter how many host threads
// drive the shards, and installing the tracer must not perturb the Result.
func TestShardedTraceStreamAcrossWorkers(t *testing.T) {
	base := &sliceTracer{}
	baseRes := tracedShardedRun(t, 1, base)
	if len(base.events) == 0 {
		t.Fatal("no events traced")
	}
	untraced := tracedShardedRun(t, 1, nil)
	if !reflect.DeepEqual(baseRes, untraced) {
		t.Errorf("tracing perturbed the result:\n  traced   %+v\n  untraced %+v", baseRes, untraced)
	}
	for _, w := range []int{2, 4} {
		tr := &sliceTracer{}
		res := tracedShardedRun(t, w, tr)
		if !reflect.DeepEqual(res, baseRes) {
			t.Errorf("workers=%d: result diverged", w)
		}
		if !reflect.DeepEqual(tr.events, base.events) {
			t.Fatalf("workers=%d: trace stream diverged (%d events vs %d)",
				w, len(tr.events), len(base.events))
		}
	}
}

// TestShardedTraceStreamWellFormed checks the merged stream's structural
// invariants: Seq dense from 1, lifecycle balance, send/handle pairing,
// and per-core virtual-time monotonicity of lifecycle events (a core's own
// clock never runs backwards, and the merge must preserve that order;
// handle/unblock events carry stamps that may run ahead of the clock, so
// they are excluded).
func TestShardedTraceStreamWellFormed(t *testing.T) {
	tr := &sliceTracer{}
	tracedShardedRun(t, 2, tr)
	kinds := map[TraceKind]int{}
	lastVT := map[int]vtime.Time{}
	for i, ev := range tr.events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d: not dense from 1", i, ev.Seq)
		}
		kinds[ev.Kind]++
		switch ev.Kind {
		case TraceTaskStart, TraceTaskResume, TraceTaskStall, TraceTaskBlock, TraceTaskEnd:
			if last, ok := lastVT[ev.Core]; ok && ev.VT < last {
				t.Fatalf("core %d: event %d at %v after %v — per-core order broken",
					ev.Core, i, ev.VT, last)
			}
			lastVT[ev.Core] = ev.VT
		}
	}
	if kinds[TraceTaskStart] != kinds[TraceTaskEnd] {
		t.Errorf("unbalanced lifecycle: %d starts, %d ends",
			kinds[TraceTaskStart], kinds[TraceTaskEnd])
	}
	if kinds[TraceSend] != kinds[TraceHandle] {
		t.Errorf("unbalanced traffic: %d sends, %d handles",
			kinds[TraceSend], kinds[TraceHandle])
	}
	if kinds[TraceSend] == 0 {
		t.Error("no message traffic traced")
	}
}

// TestShardedTraceRace hammers the per-shard trace buffers from parallel
// rounds across several worker counts; run under -race it proves the
// lock-free appends never touch one buffer from two threads. (CI runs this
// file with the race detector enabled.)
func TestShardedTraceRace(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		for iter := 0; iter < 3; iter++ {
			tr := &sliceTracer{}
			tracedShardedRun(t, w, tr)
			if len(tr.events) == 0 {
				t.Fatalf("workers=%d iter=%d: no events", w, iter)
			}
		}
	}
}

// TestValidatingTracerOnShardedEngine: Validate runs at barrier-delivered
// trace events must pass on a healthy sharded run (tracer callbacks fire
// single-threaded, after refreshEff).
func TestValidatingTracerOnShardedEngine(t *testing.T) {
	k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
		Seed: 7, Shards: 4, Workers: 2})
	if !k.Sharded() {
		t.Fatal("expected sharded kernel")
	}
	k.SetTracer(&ValidatingTracer{K: k, Interval: 16})
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
	for c := 0; c < 16; c++ {
		c := c
		k.InjectTask(c, "w", func(e *Env) {
			for i := 0; i < 10; i++ {
				e.ComputeCycles(12)
				e.Send((c+5)%16, kindOneWay, 16, nil)
			}
		}, nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
