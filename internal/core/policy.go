package core

import "simany/internal/vtime"

// Policy is a virtual-time synchronization scheme. The kernel consults it
// to decide how far a core may advance before yielding control (Horizon)
// and what effective time an idle core advertises to its neighbors
// (IdleTime).
//
// The spatial synchronization of the paper is implemented by Spatial;
// package drift provides the related-work alternatives (global quantum,
// bounded slack, LaxP2P, unbounded) behind the same interface.
type Policy interface {
	// Name identifies the policy in results and traces.
	Name() string
	// Horizon returns the largest virtual time core c may reach before it
	// must yield back to the kernel. Crossing the horizon mid-block is
	// allowed (annotation blocks are atomic); the core then stalls until
	// the horizon moves past its clock.
	Horizon(c *Core) vtime.Time
	// IdleTime returns the effective virtual time an idle core advertises.
	// Policies without a shadow-time concept return vtime.Inf so idle
	// cores never constrain anyone.
	IdleTime(c *Core) vtime.Time
}

// ShardLocalPolicy is implemented by policies whose Horizon and IdleTime
// depend only on the core itself and its neighbor proxies — never on
// global machine state. Only such policies can drive the sharded parallel
// engine: a policy that does not implement the interface (or returns
// false) forces the sequential engine regardless of Config.Shards.
type ShardLocalPolicy interface {
	ShardLocal() bool
}

// Spatial is the paper's spatial synchronization: a core may drift at most
// T ahead of the slowest of its topological neighbors (and of the birth
// stamps of tasks it has spawned that have not started yet). Idle cores
// maintain a shadow time of min(neighbors)+T.
type Spatial struct {
	// T is the maximum local drift (100 cycles in the paper's reference
	// configuration).
	T vtime.Time
}

// Name implements Policy.
func (s Spatial) Name() string { return "spatial" }

// ShardLocal implements ShardLocalPolicy: spatial decisions consult only
// neighbor proxies and local birth stamps.
func (s Spatial) ShardLocal() bool { return true }

// HorizonCacheable implements CacheableHorizonPolicy: the spatial horizon
// is a pure function of the core's neighbor proxies, birth stamps and
// lock depth — exactly the inputs the indexed scheduler invalidates on —
// so it may be cached between those events.
func (s Spatial) HorizonCacheable() bool { return true }

// IdleRelay implements IdleRelayPolicy: the spatial IdleTime is exactly
// the relay rule "min neighbor effective time plus T", so idle-region
// interiors can be reconstructed lazily from the busy frontier
// (efflazy.go). A non-positive T would defeat the BFS distance cutoff,
// so it keeps the eager propagation.
func (s Spatial) IdleRelay() (vtime.Time, bool) { return s.T, s.T > 0 }

// Horizon implements Policy.
func (s Spatial) Horizon(c *Core) vtime.Time {
	if c.lockDepth > 0 {
		// Lock-holder exemption (§II.B): run until the lock is released.
		return vtime.Inf
	}
	m := c.minNeighborEff()
	if b := c.minBirth(); b < m {
		m = b
	}
	if m == vtime.Inf {
		return vtime.Inf
	}
	return m + s.T
}

// IdleTime implements Policy.
func (s Spatial) IdleTime(c *Core) vtime.Time {
	m := c.minNeighborEff()
	if m == vtime.Inf {
		return vtime.Inf
	}
	return m + s.T
}
