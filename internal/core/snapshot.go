package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"simany/internal/snap"
	"simany/internal/timing"
	"simany/internal/vtime"
)

// ErrPaused is returned by Run when the engine reaches the position armed
// with PauseAfter: the kernel sits at a quiescent, checkpointable point
// (a completed barrier on the sharded engine, between steps on the
// sequential one) and Run may be called again to continue.
var ErrPaused = errors.New("core: paused at checkpoint position")

// TaskCodec serializes task bodies and runtime metadata. The kernel owns
// the generic task fields (ID, name, stamps, flags); everything above —
// the body's resumption-step descriptor and the runtime's Meta payload —
// belongs to the layer that created the task, which registers a codec via
// SetTaskCodec. The task runtime in internal/rt is the canonical
// implementation.
type TaskCodec interface {
	// EncodeTask appends t's body/meta descriptor. It must be
	// deterministic (equal task state, equal bytes) and reports whether
	// the task can be restored by pure decode — false for closure bodies,
	// which only verified replay can reconstruct.
	EncodeTask(enc *snap.Encoder, t *Task) bool
	// DecodeTask consumes the descriptor written by EncodeTask, restores
	// t.Meta, and returns the body's resumption entry point. The kernel
	// re-parks started tasks on a fresh goroutine running the entry.
	DecodeTask(dec *snap.Decoder, t *Task) (func(*Env), error)
}

// SetTaskCodec registers the task body codec. At most one layer owns it.
func (k *Kernel) SetTaskCodec(c TaskCodec) {
	if k.taskCodec != nil {
		panic("core: task codec already registered")
	}
	k.taskCodec = c
}

// StatelessMem is implemented by memory systems with no mutable state of
// their own (all timing state lives in the per-core caches the kernel
// already snapshots). Systems that do not implement it force checkpoint
// files into replay mode.
type StatelessMem interface {
	MemStateless() bool
}

// DecodeVetoer lets a registered external snapshot veto pure-decode
// restore (e.g. the task runtime when live cells hold payloads without
// codecs). Vetoed checkpoints fall back to verified replay.
type DecodeVetoer interface {
	DecodeSafe() bool
}

// namedSnap is one externally registered snapshot section.
type namedSnap struct {
	name string
	s    snap.Snapshottable
}

// RegisterSnapshot attaches an external component's state to the kernel's
// checkpoint under the given section name. Registration order (setup
// time, single-threaded) fixes the section order in the file.
func (k *Kernel) RegisterSnapshot(name string, s snap.Snapshottable) {
	for _, es := range k.extSnaps {
		if es.name == name {
			panic("core: duplicate snapshot section " + name)
		}
	}
	k.extSnaps = append(k.extSnaps, namedSnap{name: name, s: s})
}

// Checkpoint writes the kernel's complete simulation state to w in the
// versioned container format of docs/checkpoint.md. It is only legal at a
// pause point (Run returned ErrPaused after PauseAfter): that is the one
// state where outboxes are drained, proxies refreshed and every parked
// task is expressible as a (task, continuation point) pair.
func (k *Kernel) Checkpoint(w io.Writer) error {
	if !k.paused {
		return errors.New("core: Checkpoint is only legal at a virtual-time barrier (run with PauseAfter and checkpoint after ErrPaused)")
	}
	ck := k.buildContainer()
	_, err := ck.WriteTo(w)
	return err
}

// buildContainer assembles the checkpoint container from the current
// state.
func (k *Kernel) buildContainer() *snap.Container {
	ck := &snap.Container{
		Fingerprint: k.fprint,
		Pos:         k.Position(),
		Mode:        snap.ModeDecode,
	}
	if k.sharded {
		ck.Engine = snap.EngineSharded
	}
	if !k.payload(ck) {
		ck.Mode = snap.ModeReplay
	}
	k.obsSections(ck)
	return ck
}

// payload appends every simulation-state section (everything the
// replay-verified restore byte-compares) and reports whether the state is
// decode-restorable.
func (k *Kernel) payload(ck *snap.Container) bool {
	decodeOK := true
	if m, ok := k.mem.(StatelessMem); !ok || !m.MemStateless() {
		decodeOK = false
	}

	enc := snap.NewEncoder()
	enc.Varint(k.steps.Load())
	enc.Varint(k.barriers)
	ck.Add("kernel", enc.Bytes())

	for _, d := range k.domains {
		enc := snap.NewEncoder()
		if !d.snapshot(enc) {
			decodeOK = false
		}
		ck.Add(fmt.Sprintf("shard.%d", d.id), enc.Bytes())
	}

	for _, es := range k.extSnaps {
		enc := snap.NewEncoder()
		es.s.Snapshot(enc)
		ck.Add(es.name, enc.Bytes())
		if v, ok := es.s.(DecodeVetoer); ok && !v.DecodeSafe() {
			decodeOK = false
		}
	}

	enc = snap.NewEncoder()
	k.net.Snapshot(enc)
	ck.Add("network", enc.Bytes())
	return decodeOK
}

// obsSections appends the observability sections: trace sequence counters
// and the metrics registry. They are restored verbatim rather than
// replay-verified (replay runs with observability detached), so their
// names carry the "obs." prefix that excludes them from byte comparison.
func (k *Kernel) obsSections(ck *snap.Container) {
	enc := snap.NewEncoder()
	enc.Uvarint(k.traceSeq)
	for _, d := range k.domains {
		enc.Uvarint(d.traceSeq)
	}
	ck.Add("obs.trace", enc.Bytes())
	if k.met != nil {
		enc := snap.NewEncoder()
		k.met.reg.SnapshotState(enc)
		ck.Add("obs.metrics", enc.Bytes())
	}
}

// snapshot appends one domain's state: the per-shard root of the
// Snapshottable hierarchy. Reports decode-restorability (false as soon as
// one resident task or predictor is opaque).
func (d *domain) snapshot(enc *snap.Encoder) bool {
	decodeOK := true
	enc.Varint(d.live)
	enc.Time(d.maxTime)
	enc.Varint(d.stepsTotal)
	enc.Varint(d.oooMsgs)
	enc.Varint(d.handled)
	enc.Varint(d.runnableSum)
	enc.Varint(d.runnableSamples)
	enc.Varint(int64(d.runnableMax))
	for _, c := range d.cores {
		if !c.snapshot(enc) {
			decodeOK = false
		}
	}
	// Blocked registry, sorted by task ID for canonical bytes.
	ids := make([]uint64, 0, len(d.blocked))
	for id := range d.blocked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		t := d.blocked[id]
		enc.Uvarint(uint64(t.core.ID))
		if !d.k.encodeTask(enc, t) {
			decodeOK = false
		}
	}
	return decodeOK
}

// snapshot appends one core's state. Derivable state — eff, nbEff, the
// sched heap position, the lazy queue-minimum caches, and the whole lazy
// effective-time apparatus (memo stamps, busy-frontier list, stall heap,
// pruning floors; efflazy.go) — is deliberately excluded: restore rebuilds
// it (refreshEff, schedRebuild, lazy recompute) and Kernel.Validate
// re-verifies it. That also keeps checkpoints byte-identical across Eff
// modes, which is what lets a run restored under a different mode produce
// the same results.
func (c *Core) snapshot(enc *snap.Encoder) bool {
	decodeOK := true
	enc.Time(c.vt)
	enc.Bool(c.idle)
	enc.Varint(int64(c.lockDepth))
	enc.Uvarint(c.taskSeq)
	enc.Time(c.lastHandled)
	enc.Uvarint(c.rng.State())
	switch p := c.timer.Predictor.(type) {
	case *timing.ProbabilisticPredictor:
		enc.Uvarint(1)
		enc.Uvarint(p.RngState())
	case nil:
		enc.Uvarint(2)
	default:
		enc.Uvarint(0) // opaque predictor: replay reconstructs it
		decodeOK = false
	}
	st := &c.stats
	enc.Varint(st.Blocks)
	enc.Varint(st.Instructions)
	enc.Varint(st.Stalls)
	enc.Varint(st.TaskStarts)
	enc.Varint(st.Switches)
	enc.Varint(st.MsgsSent)
	enc.Time(st.ComputeTime)
	enc.Time(st.MemTime)
	enc.Time(st.StallWaitTime)
	ids := make([]uint64, 0, len(c.births))
	for id := range c.births {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(id)
		enc.Time(c.births[id])
	}
	c.l1.Snapshot(enc)
	c.l2.Snapshot(enc)
	enc.Bool(c.current != nil)
	if c.current != nil {
		if !c.k.encodeTask(enc, c.current) {
			decodeOK = false
		}
	}
	enc.Uvarint(uint64(len(c.conts)))
	for _, t := range c.conts {
		if !c.k.encodeTask(enc, t) {
			decodeOK = false
		}
	}
	enc.Uvarint(uint64(len(c.ready)))
	for _, t := range c.ready {
		if !c.k.encodeTask(enc, t) {
			decodeOK = false
		}
	}
	return decodeOK
}

// encodeTask appends one task record: generic fields plus the codec's
// body/meta descriptor. Reports decode-restorability.
func (k *Kernel) encodeTask(enc *snap.Encoder, t *Task) bool {
	enc.Uvarint(t.ID)
	enc.String(t.Name)
	enc.Time(t.arrival)
	enc.Time(t.resume)
	enc.Bool(t.started)
	enc.Bool(t.pendingWake)
	enc.Bool(t.release)
	if k.taskCodec != nil {
		return k.taskCodec.EncodeTask(enc, t)
	}
	enc.Uvarint(0) // no codec: opaque body
	return false
}

// decodeTask reads one task record for core c in lifecycle state state and
// re-attaches it: unstarted tasks get the entry as their body, started
// ones a fresh goroutine parked exactly where the original yielded.
func (k *Kernel) decodeTask(dec *snap.Decoder, c *Core, state TaskState) (*Task, error) {
	t := &Task{core: c, state: state}
	var err error
	if t.ID, err = dec.Uvarint(); err != nil {
		return nil, err
	}
	if t.Name, err = dec.String(); err != nil {
		return nil, err
	}
	if t.arrival, err = dec.Time(); err != nil {
		return nil, err
	}
	if t.resume, err = dec.Time(); err != nil {
		return nil, err
	}
	if t.started, err = dec.Bool(); err != nil {
		return nil, err
	}
	if t.pendingWake, err = dec.Bool(); err != nil {
		return nil, err
	}
	if t.release, err = dec.Bool(); err != nil {
		return nil, err
	}
	t.env = Env{k: k, t: t, c: c}
	if k.taskCodec == nil {
		return nil, errors.New("core: decoding a checkpointed task requires a registered task codec")
	}
	entry, err := k.taskCodec.DecodeTask(dec, t)
	if err != nil {
		return nil, fmt.Errorf("task %d %q: %w", t.ID, t.Name, err)
	}
	if entry == nil {
		return nil, fmt.Errorf("task %d %q: opaque body in a decode-mode checkpoint", t.ID, t.Name)
	}
	t.fn = entry
	if t.started {
		k.restoreParked(t)
	}
	return t, nil
}

// restoreParked gives a restored mid-execution task a fresh worker
// goroutine parked exactly like the original's: blocked on the resume
// channel, refreshing the horizon on wake, then continuing the body's
// entry and finally joining the domain's worker pool like any other
// worker.
func (k *Kernel) restoreParked(t *Task) {
	w := &taskWorker{cont: make(chan struct{}), task: t}
	t.worker = w
	t.cont = w.cont
	go func() {
		<-w.cont
		t.env.horizon = k.horizonFor(t.env.c)
		t.run()
		for {
			<-w.cont
			if w.task == nil {
				return
			}
			w.task.run()
		}
	}()
}

// TaskByID finds a live task by ID, scanning every core's queues and
// every domain's blocked registry. It is a restore-time helper (layers
// re-link task references after decoding), not a hot path.
func (k *Kernel) TaskByID(id uint64) *Task {
	for _, c := range k.cores {
		if c.current != nil && c.current.ID == id {
			return c.current
		}
		for _, t := range c.conts {
			if t.ID == id {
				return t
			}
		}
		for _, t := range c.ready {
			if t.ID == id {
				return t
			}
		}
	}
	for _, d := range k.domains {
		if t, ok := d.blocked[id]; ok {
			return t
		}
	}
	return nil
}

// ReadCheckpoint parses and validates a checkpoint file.
func ReadCheckpoint(r io.Reader) (*snap.Container, error) {
	return snap.ReadContainer(r)
}

// ArmResume validates ck against this kernel's configuration and arms it:
// the next Run restores the checkpointed state (pure decode or verified
// replay, per ck.Mode) before continuing to quiescence. The kernel must
// be freshly constructed and, for replay-mode checkpoints, have the same
// program injected as the original run.
func (k *Kernel) ArmResume(ck *snap.Container) error {
	if ck.Fingerprint != k.fprint {
		return fmt.Errorf("core: checkpoint fingerprint %#x does not match this configuration (%#x): same (seed, shards, topology, policy) required", ck.Fingerprint, k.fprint)
	}
	wantEngine := snap.EngineSequential
	if k.sharded {
		wantEngine = snap.EngineSharded
	}
	if ck.Engine != wantEngine {
		return fmt.Errorf("core: checkpoint engine kind %d does not match this kernel (%d)", ck.Engine, wantEngine)
	}
	if ck.Pos < 1 {
		return fmt.Errorf("core: checkpoint position %d is not a barrier", ck.Pos)
	}
	k.resume = ck
	return nil
}

// Resume reads a checkpoint and builds a kernel armed to restore it on
// its next Run. The configuration must reproduce the checkpointed one
// (enforced via the embedded fingerprint). For replay-mode checkpoints
// the caller must also rebuild and inject the original program (the
// benchmark drivers do: Program is required to be re-callable) before
// running.
func Resume(r io.Reader, cfg Config) (*Kernel, error) {
	ck, err := ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	k := New(cfg)
	if err := k.ArmResume(ck); err != nil {
		return nil, err
	}
	return k, nil
}

// ResumeModeDecode reports whether the kernel has a decode-mode resume
// armed — in which case the program must NOT be re-injected: the root
// task (and everything it spawned) is part of the restored state.
func (k *Kernel) ResumeModeDecode() bool {
	return k.resume != nil && k.resume.Mode == snap.ModeDecode
}

// applyResume consumes an armed checkpoint: decode-mode files restore
// state directly; replay-mode files re-execute the injected program to
// the recorded position with observability detached, byte-verify the
// reconstructed state against the file, then splice the recorded
// observability state back in.
func (k *Kernel) applyResume(ck *snap.Container) error {
	if k.steps.Load() != 0 || k.barriers != 0 {
		return errors.New("core: resume requires a freshly constructed kernel")
	}
	if ck.Mode == snap.ModeDecode {
		return k.restoreDecode(ck)
	}
	return k.restoreReplay(ck)
}

// restoreReplay re-derives the checkpointed state by deterministic
// replay. The engine's core guarantee — results depend only on (seed,
// shards, config), never on workers or host scheduling — makes the
// re-execution reproduce the original prefix exactly; pausing at the
// recorded position and byte-comparing every simulation-state section
// against the file turns that argument into a checked invariant.
func (k *Kernel) restoreReplay(ck *snap.Container) error {
	savedTracer, savedMet := k.tracer, k.met
	k.tracer, k.met = nil, nil
	if savedMet != nil {
		k.net.SetObserver(nil)
	}
	k.stopAfter = ck.Pos
	_, err := k.runEngine()
	k.stopAfter = 0
	if err == nil {
		return fmt.Errorf("core: program finished before checkpoint position %d; was the original program re-injected?", ck.Pos)
	}
	if !errors.Is(err, ErrPaused) {
		return fmt.Errorf("core: replaying to checkpoint position: %w", err)
	}
	// Verify the replayed state against the file, section by section.
	replayed := &snap.Container{}
	k.payload(replayed)
	for _, name := range ck.SectionOrder {
		if len(name) >= 4 && name[:4] == "obs." {
			continue
		}
		want, got := ck.Sections[name], replayed.Sections[name]
		if got == nil {
			return fmt.Errorf("core: replay verification failed: section %q missing from replayed state (layer not re-registered?)", name)
		}
		if string(want) != string(got) {
			return fmt.Errorf("core: replay verification failed: section %q diverged (%d vs %d bytes) — the run is not deterministic under this configuration", name, len(want), len(got))
		}
	}
	// Splice the recorded observability state back in and re-attach.
	k.tracer, k.met = savedTracer, savedMet
	if savedMet != nil {
		k.net.SetObserver(netObserver{k})
	}
	if err := k.restoreObs(ck); err != nil {
		return err
	}
	k.paused = false
	return nil
}

// restoreDecode restores every section directly into the freshly built
// kernel, rebuilds the derivable structures and re-verifies invariants.
func (k *Kernel) restoreDecode(ck *snap.Container) error {
	if k.liveTasks() != 0 {
		return errors.New("core: decode-mode resume requires no injected tasks (the checkpoint contains the whole task tree)")
	}
	b, err := ck.Section("kernel")
	if err != nil {
		return err
	}
	dec := snap.NewDecoder(b)
	steps, err := dec.Varint()
	if err != nil {
		return err
	}
	k.steps.Store(steps)
	if k.barriers, err = dec.Varint(); err != nil {
		return err
	}
	for _, d := range k.domains {
		b, err := ck.Section(fmt.Sprintf("shard.%d", d.id))
		if err != nil {
			return err
		}
		if err := d.restore(snap.NewDecoder(b)); err != nil {
			return fmt.Errorf("core: restoring shard %d: %w", d.id, err)
		}
	}
	for _, es := range k.extSnaps {
		b, err := ck.Section(es.name)
		if err != nil {
			return err
		}
		if err := es.s.Restore(snap.NewDecoder(b)); err != nil {
			return fmt.Errorf("core: restoring section %q: %w", es.name, err)
		}
	}
	if b, err = ck.Section("network"); err != nil {
		return err
	}
	if err := k.net.Restore(snap.NewDecoder(b)); err != nil {
		return fmt.Errorf("core: restoring network: %w", err)
	}
	if err := k.restoreObs(ck); err != nil {
		return err
	}
	// Rebuild derivable state, then re-verify everything the file did not
	// carry: effective times, scheduler index, queue caches, counters.
	k.refreshEff()
	k.schedRebuild()
	if err := k.Validate(); err != nil {
		return fmt.Errorf("core: restored state failed validation: %w", err)
	}
	k.paused = false
	return nil
}

// restore reads one domain section (the inverse of domain.snapshot).
func (d *domain) restore(dec *snap.Decoder) error {
	var err error
	if d.live, err = dec.Varint(); err != nil {
		return err
	}
	if d.maxTime, err = dec.Time(); err != nil {
		return err
	}
	var rmax int64
	for _, f := range []*int64{&d.stepsTotal, &d.oooMsgs, &d.handled, &d.runnableSum, &d.runnableSamples, &rmax} {
		if *f, err = dec.Varint(); err != nil {
			return err
		}
	}
	d.runnableMax = int(rmax)
	d.busy = 0
	for _, c := range d.cores {
		if err := c.restore(dec); err != nil {
			return fmt.Errorf("core %d: %w", c.ID, err)
		}
		if !c.idle {
			d.busy++
		}
	}
	nblocked, err := dec.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nblocked; i++ {
		coreID, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if coreID >= uint64(len(d.k.cores)) || d.k.cores[coreID].dom != d {
			return fmt.Errorf("blocked task on foreign core %d", coreID)
		}
		t, err := d.k.decodeTask(dec, d.k.cores[coreID], TaskBlocked)
		if err != nil {
			return err
		}
		d.blocked[t.ID] = t
	}
	return nil
}

// restore reads one core record (the inverse of Core.snapshot).
func (c *Core) restore(dec *snap.Decoder) error {
	var err error
	if c.vt, err = dec.Time(); err != nil {
		return err
	}
	if c.idle, err = dec.Bool(); err != nil {
		return err
	}
	var v int64
	if v, err = dec.Varint(); err != nil {
		return err
	}
	c.lockDepth = int(v)
	if c.taskSeq, err = dec.Uvarint(); err != nil {
		return err
	}
	if c.lastHandled, err = dec.Time(); err != nil {
		return err
	}
	rs, err := dec.Uvarint()
	if err != nil {
		return err
	}
	c.rng.SetState(rs)
	ptag, err := dec.Uvarint()
	if err != nil {
		return err
	}
	switch ptag {
	case 1:
		pst, err := dec.Uvarint()
		if err != nil {
			return err
		}
		p, ok := c.timer.Predictor.(*timing.ProbabilisticPredictor)
		if !ok {
			return errors.New("checkpoint has a probabilistic predictor, kernel does not")
		}
		p.SetRngState(pst)
	case 2:
		if c.timer.Predictor != nil {
			return errors.New("checkpoint has no predictor, kernel does")
		}
	default:
		return errors.New("opaque predictor in a decode-mode checkpoint")
	}
	st := &c.stats
	for _, f := range []*int64{&st.Blocks, &st.Instructions, &st.Stalls, &st.TaskStarts, &st.Switches, &st.MsgsSent} {
		if *f, err = dec.Varint(); err != nil {
			return err
		}
	}
	for _, f := range []*vtime.Time{&st.ComputeTime, &st.MemTime, &st.StallWaitTime} {
		if *f, err = dec.Time(); err != nil {
			return err
		}
	}
	nb, err := dec.Uvarint()
	if err != nil {
		return err
	}
	c.births = nil
	for i := uint64(0); i < nb; i++ {
		id, err := dec.Uvarint()
		if err != nil {
			return err
		}
		stamp, err := dec.Time()
		if err != nil {
			return err
		}
		c.addBirth(id, stamp)
	}
	c.birthDirty = true
	if err := c.l1.Restore(dec); err != nil {
		return err
	}
	if err := c.l2.Restore(dec); err != nil {
		return err
	}
	hasCur, err := dec.Bool()
	if err != nil {
		return err
	}
	if hasCur {
		if c.current, err = c.k.decodeTask(dec, c, TaskRunning); err != nil {
			return err
		}
	}
	nc, err := dec.Uvarint()
	if err != nil {
		return err
	}
	c.conts = nil
	for i := uint64(0); i < nc; i++ {
		t, err := c.k.decodeTask(dec, c, TaskReady)
		if err != nil {
			return err
		}
		c.conts = append(c.conts, t)
	}
	c.contsMinDirty = len(c.conts) > 0
	if len(c.conts) == 0 {
		c.contsMin = vtime.Inf
	}
	nr, err := dec.Uvarint()
	if err != nil {
		return err
	}
	c.ready = nil
	for i := uint64(0); i < nr; i++ {
		t, err := c.k.decodeTask(dec, c, TaskReady)
		if err != nil {
			return err
		}
		c.ready = append(c.ready, t)
	}
	c.readyMinDirty = len(c.ready) > 0
	if len(c.ready) == 0 {
		c.readyMin = vtime.Inf
	}
	return nil
}

// restoreObs splices the recorded observability state — global and
// per-shard trace sequence counters, the metrics registry's striped
// instrument state — into the kernel, so the resumed run's trace stream
// and metrics snapshots continue exactly where the original's stopped.
func (k *Kernel) restoreObs(ck *snap.Container) error {
	b, err := ck.Section("obs.trace")
	if err != nil {
		return err
	}
	dec := snap.NewDecoder(b)
	if k.traceSeq, err = dec.Uvarint(); err != nil {
		return err
	}
	for _, d := range k.domains {
		if d.traceSeq, err = dec.Uvarint(); err != nil {
			return err
		}
	}
	if k.met != nil {
		b, ok := ck.Sections["obs.metrics"]
		if !ok {
			return errors.New("core: kernel has a metrics registry but the checkpoint carries none")
		}
		if err := k.met.reg.RestoreState(snap.NewDecoder(b)); err != nil {
			return fmt.Errorf("core: restoring metrics: %w", err)
		}
	}
	return nil
}
