package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// Scheduler-equivalence property suite (docs/scheduler.md): a seeded
// random workload of spawns, request/reply blocking, wake-ups, lock
// sections and spatial stalls is run once on the reference scan and once
// on the indexed runnable queue, and the exact per-domain (core, key)
// pick sequences must match. The same workloads also run under
// SchedVerify, which replays the scan after every indexed decision inside
// the kernel itself. CI runs this file under the race detector.

const (
	kindEquivEcho network.Kind = 240 + iota
	kindEquivWake
	kindEquivSpawn
)

type equivSpawn struct {
	task  *Task
	birth *Core
}

// pickRec is one observed scheduling decision.
type pickRec struct {
	Core int
	Key  vtime.Time
}

// equivWorkload injects a randomized task soup derived from seed. Every
// decision inside task bodies draws from RNGs seeded by (seed, core/task),
// never from host state, so two kernels with equal (seed, shards) run the
// same program regardless of scheduler implementation.
func equivWorkload(k *Kernel, seed int64, tasks int) {
	n := k.NumCores()
	k.Handle(kindEquivEcho, func(k *Kernel, msg network.Message) {
		// Reply after a small handling cost; the requester blocks on it.
		req := msg.Payload.(*Task)
		k.SendAt(msg.Dst, req.core.ID, kindEquivWake, 8, req,
			msg.Arrival+vtime.CyclesInt(3))
	})
	k.Handle(kindEquivWake, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	k.Handle(kindEquivSpawn, func(k *Kernel, msg network.Message) {
		sp := msg.Payload.(equivSpawn)
		k.PlaceTask(sp.task, msg.Dst, msg.Arrival, sp.birth)
	})

	var body func(depth int, taskSeed int64) func(*Env)
	body = func(depth int, taskSeed int64) func(*Env) {
		return func(e *Env) {
			rng := rand.New(rand.NewSource(taskSeed))
			rounds := 2 + rng.Intn(4)
			for i := 0; i < rounds; i++ {
				e.ComputeCycles(float64(1 + rng.Intn(220)))
				switch rng.Intn(5) {
				case 0: // request/reply block (may hit the pendingWake path)
					dst := rng.Intn(n)
					e.Send(dst, kindEquivEcho, 16, e.Task())
					e.Block()
				case 1: // lock-holder exemption window
					e.AcquireLockExempt()
					e.ComputeCycles(float64(1 + rng.Intn(150)))
					e.ReleaseLockExempt()
				case 2: // spawn a child elsewhere, with a birth entry
					if depth < 2 {
						me := e.CoreID()
						child := k.NewTask(me, fmt.Sprintf("c%d", taskSeed),
							body(depth+1, taskSeed*31+int64(i)+7), nil)
						k.RegisterBirth(k.Core(me), child, e.Now())
						e.Send(rng.Intn(n), kindEquivSpawn, 24,
							equivSpawn{task: child, birth: k.Core(me)})
					}
				case 3: // cooperative yield (re-enters the scheduler)
					e.Yield()
				default: // plain compute burst
					e.ComputeCycles(float64(1 + rng.Intn(60)))
				}
			}
		}
	}

	root := rand.New(rand.NewSource(seed))
	for i := 0; i < tasks; i++ {
		core := root.Intn(n)
		at := vtime.CyclesInt(int64(root.Intn(400)))
		k.InjectTask(core, fmt.Sprintf("t%d", i), body(0, seed*97+int64(i)), nil, at)
	}
}

// runEquiv executes the workload under the given scheduler mode and
// returns the per-domain pick sequences and the Result. Pick order is
// only deterministic within a domain (workers interleave domains), so
// sequences are recorded and compared per shard.
func runEquiv(t *testing.T, topo *topology.Topology, shards, workers int, seed int64, mode SchedMode) ([][]pickRec, Result, string) {
	t.Helper()
	k := New(Config{
		Topo:    topo,
		Policy:  Spatial{T: DefaultT},
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		Sched:   mode,
	})
	picks := make([][]pickRec, k.NumShards())
	k.onPick = func(c *Core, key vtime.Time) {
		d := c.dom.id
		picks[d] = append(picks[d], pickRec{Core: c.ID, Key: key})
	}
	equivWorkload(k, seed, 3*k.NumCores()/2)
	res, err := k.Run()
	if err != nil {
		t.Fatalf("mode %v shards=%d: %v", mode, shards, err)
	}
	return picks, res, k.Scheduler()
}

func TestSchedulerEquivalenceRandom(t *testing.T) {
	topos := []struct {
		name string
		topo func() *topology.Topology
	}{
		{"mesh25", func() *topology.Topology { return topology.Mesh(25) }},
		{"clustered24", func() *topology.Topology {
			return topology.Clustered(24, topology.DefaultClusteredParams(4))
		}},
	}
	engines := []struct {
		name            string
		shards, workers int
	}{
		{"seq", 1, 1},
		{"sharded4x3", 4, 3},
	}
	for _, tc := range topos {
		for _, eng := range engines {
			for _, seed := range []int64{1, 7, 23} {
				name := fmt.Sprintf("%s/%s/seed%d", tc.name, eng.name, seed)
				t.Run(name, func(t *testing.T) {
					scanPicks, scanRes, scanName := runEquiv(t, tc.topo(), eng.shards, eng.workers, seed, SchedScan)
					if scanName != "scan" {
						t.Fatalf("baseline scheduler = %q, want scan", scanName)
					}
					total := 0
					for _, p := range scanPicks {
						total += len(p)
					}
					// A degenerate workload would make the comparison vacuous;
					// every task needs at least one scheduling decision.
					if min := 3 * 24 / 2; total < min {
						t.Fatalf("only %d scheduling decisions recorded, want >= %d", total, min)
					}
					idxPicks, idxRes, idxName := runEquiv(t, tc.topo(), eng.shards, eng.workers, seed, SchedAuto)
					if idxName != "index" {
						t.Fatalf("scheduler = %q, want index (spatial horizons are cacheable)", idxName)
					}
					if !reflect.DeepEqual(idxRes, scanRes) {
						t.Errorf("Result diverged:\n  index %+v\n  scan  %+v", idxRes, scanRes)
					}
					for d := range scanPicks {
						if len(idxPicks[d]) != len(scanPicks[d]) {
							t.Fatalf("domain %d: %d indexed picks, %d scan picks",
								d, len(idxPicks[d]), len(scanPicks[d]))
						}
						for i := range scanPicks[d] {
							if idxPicks[d][i] != scanPicks[d][i] {
								t.Fatalf("domain %d pick %d: index chose %+v, scan chose %+v",
									d, i, idxPicks[d][i], scanPicks[d][i])
							}
						}
					}
					// Belt and braces: the same run under SchedVerify has the
					// kernel itself replay the scan after every indexed
					// decision (and at every shard round setup) and panic on
					// the first divergence.
					_, verifyRes, verifyName := runEquiv(t, tc.topo(), eng.shards, eng.workers, seed, SchedVerify)
					if verifyName != "index+verify" {
						t.Fatalf("scheduler = %q, want index+verify", verifyName)
					}
					if !reflect.DeepEqual(verifyRes, scanRes) {
						t.Errorf("verify-mode Result diverged:\n  verify %+v\n  scan   %+v", verifyRes, scanRes)
					}
				})
			}
		}
	}
}

// TestSchedulerEquivalenceValidated reruns one seed per engine with a
// ValidatingTracer, so every trace event additionally checks the queue
// minima caches and the structural invariants of the runnable index
// (Kernel.Validate) during a live randomized run.
func TestSchedulerEquivalenceValidated(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			k := New(Config{
				Topo:    topology.Mesh(16),
				Policy:  Spatial{T: DefaultT},
				Seed:    5,
				Shards:  shards,
				Workers: 2,
				Sched:   SchedVerify,
			})
			k.SetTracer(&ValidatingTracer{K: k, Interval: 1})
			equivWorkload(k, 5, 24)
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
