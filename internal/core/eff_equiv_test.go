package core

import (
	"fmt"
	"reflect"
	"testing"

	"simany/internal/topology"
	"simany/internal/vtime"
)

// Effective-time equivalence property suite (docs/effective-time.md):
// lazy idle-region evaluation must be invisible in the results. The same
// randomized workloads as the scheduler suite run once with the eager
// propagation flood and once with lazy evaluation, and the exact
// per-domain (core, key) pick sequences — which consume effective times
// through every stalled core's horizon — must match, along with the
// Results. The workloads also run under EffVerify, where the kernel keeps
// the flood authoritative and cross-checks every lazily reconstructed
// neighborhood minimum inside runnable() itself. CI runs this file under
// the race detector.
//
// Both dense soups (more tasks than cores, constant region churn) and
// sparse ones (a handful of tasks on a big machine, the regime the lazy
// scheme exists for) are covered: sparse workloads exercise region
// split/merge around a small busy frontier, dense ones exercise wake/sleep
// flips and memo invalidation under load. The sharded engines additionally
// exercise frozen cross-shard proxies as BFS anchors and the barrier-time
// memo reseeding.

// runEffEquiv executes the shared randomized workload under the given
// effective-time mode and returns the per-domain pick sequences, the
// Result, and the kernel's resolved evaluation scheme.
func runEffEquiv(t *testing.T, topo *topology.Topology, shards, workers, tasks int, seed int64, mode EffMode) ([][]pickRec, Result, string) {
	t.Helper()
	k := New(Config{
		Topo:    topo,
		Policy:  Spatial{T: DefaultT},
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		Eff:     mode,
	})
	picks := make([][]pickRec, k.NumShards())
	k.onPick = func(c *Core, key vtime.Time) {
		d := c.dom.id
		picks[d] = append(picks[d], pickRec{Core: c.ID, Key: key})
	}
	equivWorkload(k, seed, tasks)
	res, err := k.Run()
	if err != nil {
		t.Fatalf("eff mode %v shards=%d: %v", mode, shards, err)
	}
	return picks, res, k.EffScheme()
}

func chipletEquivTopo() *topology.Topology {
	topo, err := topology.ParseSpec("chiplet:3x3,2x2")
	if err != nil {
		panic(err)
	}
	return topo
}

func TestEffEquivalenceRandom(t *testing.T) {
	topos := []struct {
		name string
		topo func() *topology.Topology
	}{
		{"mesh25", func() *topology.Topology { return topology.Mesh(25) }},
		{"chiplet36", chipletEquivTopo},
	}
	engines := []struct {
		name            string
		shards, workers int
	}{
		{"seq", 1, 1},
		{"sharded4x3", 4, 3},
	}
	loads := []struct {
		name  string
		tasks func(cores int) int
	}{
		// Dense: every region transition under constant churn. Sparse: a
		// tiny busy frontier in a mostly idle machine, where a pick stalls
		// far more often than it completes — the lazy scheme's home turf.
		{"dense", func(cores int) int { return 3 * cores / 2 }},
		{"sparse", func(cores int) int { return 3 }},
	}
	for _, tc := range topos {
		for _, eng := range engines {
			for _, load := range loads {
				for _, seed := range []int64{2, 11} {
					name := fmt.Sprintf("%s/%s/%s/seed%d", tc.name, eng.name, load.name, seed)
					t.Run(name, func(t *testing.T) {
						topo := tc.topo()
						tasks := load.tasks(topo.N())
						eagerPicks, eagerRes, eagerScheme := runEffEquiv(t, topo, eng.shards, eng.workers, tasks, seed, EffEager)
						if eagerScheme != "eager" {
							t.Fatalf("baseline scheme = %q, want eager", eagerScheme)
						}
						total := 0
						for _, p := range eagerPicks {
							total += len(p)
						}
						if total < tasks {
							t.Fatalf("only %d scheduling decisions recorded, want >= %d", total, tasks)
						}
						lazyPicks, lazyRes, lazyScheme := runEffEquiv(t, tc.topo(), eng.shards, eng.workers, tasks, seed, EffAuto)
						if lazyScheme != "lazy" {
							t.Fatalf("scheme = %q, want lazy (spatial relay is uniform)", lazyScheme)
						}
						if !reflect.DeepEqual(lazyRes, eagerRes) {
							t.Errorf("Result diverged:\n  lazy  %+v\n  eager %+v", lazyRes, eagerRes)
						}
						for d := range eagerPicks {
							if len(lazyPicks[d]) != len(eagerPicks[d]) {
								t.Fatalf("domain %d: %d lazy picks, %d eager picks",
									d, len(lazyPicks[d]), len(eagerPicks[d]))
							}
							for i := range eagerPicks[d] {
								if lazyPicks[d][i] != eagerPicks[d][i] {
									t.Fatalf("domain %d pick %d: lazy chose %+v, eager chose %+v",
										d, i, lazyPicks[d][i], eagerPicks[d][i])
								}
							}
						}
						// Belt and braces: EffVerify replays the lazy
						// reconstruction against the authoritative flood at
						// every stalled-horizon evaluation and panics on the
						// first divergent neighborhood minimum.
						_, verifyRes, verifyScheme := runEffEquiv(t, tc.topo(), eng.shards, eng.workers, tasks, seed, EffVerify)
						if verifyScheme != "eager+verify" {
							t.Fatalf("scheme = %q, want eager+verify", verifyScheme)
						}
						if !reflect.DeepEqual(verifyRes, eagerRes) {
							t.Errorf("verify-mode Result diverged:\n  verify %+v\n  eager  %+v", verifyRes, eagerRes)
						}
					})
				}
			}
		}
	}
}

// TestEffEquivalenceScanSched pins the mode matrix's off-diagonal: lazy
// evaluation with the reference scan scheduler (no runq, no stall heap —
// scanRunnable pulls horizons through the mode-aware neighborhood
// minimum) must match the eager scan run pick for pick.
func TestEffEquivalenceScanSched(t *testing.T) {
	run := func(mode EffMode) ([][]pickRec, Result, string) {
		k := New(Config{
			Topo:   topology.Mesh(16),
			Policy: Spatial{T: DefaultT},
			Seed:   3,
			Sched:  SchedScan,
			Eff:    mode,
		})
		picks := make([][]pickRec, k.NumShards())
		k.onPick = func(c *Core, key vtime.Time) {
			picks[c.dom.id] = append(picks[c.dom.id], pickRec{Core: c.ID, Key: key})
		}
		equivWorkload(k, 3, 24)
		res, err := k.Run()
		if err != nil {
			t.Fatalf("eff mode %v: %v", mode, err)
		}
		return picks, res, k.EffScheme()
	}
	eagerPicks, eagerRes, _ := run(EffEager)
	lazyPicks, lazyRes, scheme := run(EffLazy)
	if scheme != "lazy" {
		t.Fatalf("scheme = %q, want lazy", scheme)
	}
	if !reflect.DeepEqual(lazyRes, eagerRes) {
		t.Errorf("Result diverged:\n  lazy  %+v\n  eager %+v", lazyRes, eagerRes)
	}
	if !reflect.DeepEqual(lazyPicks, eagerPicks) {
		t.Fatalf("pick sequences diverged under the scan scheduler")
	}
}

// TestEffEquivalenceValidated reruns one seed per engine with a
// ValidatingTracer under lazy evaluation, so every trace event checks the
// busy-frontier partition, the pruning floors, and every fresh memo
// against an independently recomputed eager fixpoint (Kernel.Validate)
// during a live randomized run.
func TestEffEquivalenceValidated(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			k := New(Config{
				Topo:    topology.Mesh(16),
				Policy:  Spatial{T: DefaultT},
				Seed:    9,
				Shards:  shards,
				Workers: 2,
				Eff:     EffLazy,
			})
			if k.EffScheme() != "lazy" {
				t.Fatalf("scheme = %q, want lazy", k.EffScheme())
			}
			k.SetTracer(&ValidatingTracer{K: k, Interval: 1})
			equivWorkload(k, 9, 24)
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
