package core

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"simany/internal/vtime"
)

// The sharded engine runs the partitioned machine in rounds:
//
//  1. Round setup (single-threaded): find the globally minimal runnable
//     virtual-time key and set the round limit = minKey + quantum.
//  2. Round (parallel): every domain drives its own pickCore/step loop,
//     scheduling only cores whose key does not exceed the limit. All
//     horizons are capped at the limit, so no core outruns the frozen
//     cross-shard proxies by more than the quantum. Cross-shard messages
//     and state mutations are appended to the executing shard's outbox.
//  3. Barrier (single-threaded): outboxes are merged, sorted by
//     (stamp, src, idx) and applied — messages are routed and handled,
//     deferred operations run. This order depends only on virtual time and
//     topology, never on host scheduling, which is what makes the engine
//     deterministic for a fixed shard count.
//  4. Effective-time refresh (single-threaded): idle shadow times are
//     recomputed globally so the next round starts from consistent
//     proxies.
//
// Progress: the domain owning the minimal key always schedules at least
// one step per round, and every step advances bounded virtual state, so
// rounds terminate and the simulation advances.

// shardStepBudget bounds the scheduling steps one domain may take per
// round, per owned core. It is a deterministic backstop against
// pathological rounds; the quantum is the primary round bound.
const shardStepBudget = 64

// runShard drives the sharded parallel engine. Trace buffers are flushed
// (merged and handed to the tracer) at every barrier and on every exit
// path, so a Recorder sees the complete stream even when the run aborts.
func (k *Kernel) runShard() (Result, error) {
	for {
		if err := k.takePanic(); err != nil {
			k.flushTrace()
			return Result{}, err
		}
		if k.maxSteps > 0 && k.steps.Load() >= k.maxSteps {
			k.flushTrace()
			return Result{}, fmt.Errorf("core: exceeded %d scheduling steps", k.maxSteps)
		}
		minKey := k.minRunnableKey()
		if minKey == vtime.Inf {
			if k.liveTasks() == 0 {
				return k.result(), nil
			}
			return Result{}, k.deadlockError()
		}
		limit := vtime.Inf
		if minKey < vtime.Inf-k.quantum {
			limit = minKey + k.quantum
		}
		k.runRound(limit)
		k.drainBarrier()
		k.refreshEff()
		if k.met != nil {
			k.recordBarrier(minKey, limit)
		}
		k.flushTrace()
		if k.bcheck != nil {
			if err := k.barrierInvariants(); err != nil {
				return Result{}, err
			}
		}
		k.barriers++
		if k.stopAfter > 0 && k.barriers >= k.stopAfter {
			// The barrier sequence above has fully quiesced the machine:
			// outboxes drained, proxies refreshed, traces flushed. This is
			// the one point where a checkpoint is legal.
			k.paused = true
			return k.result(), ErrPaused
		}
	}
}

// minRunnableKey returns the globally minimal runnable virtual-time key —
// the anchor of the next round's window. With the indexed scheduler this
// is a peek over the per-domain heap heads, O(shards) instead of a full
// machine scan; barriers run the queues' invalidation hooks (drained
// items, effective-time refresh) before this is called, so every head is
// settled. SchedVerify cross-checks each head against the domain's
// reference scan.
func (k *Kernel) minRunnableKey() vtime.Time {
	minKey := vtime.Inf
	for _, d := range k.domains {
		if d.rq == nil {
			if _, key, n := d.scanRunnable(vtime.Inf); n > 0 && key < minKey {
				minKey = key
			}
			continue
		}
		head, hKey := d.indexedHead()
		if k.schedVerify {
			sBest, sKey, _ := d.scanRunnable(vtime.Inf)
			switch {
			case (head == nil) != (sBest == nil):
				panic(fmt.Sprintf("core: scheduler divergence in domain %d round setup: index head %v, scan head %v", d.id, head, sBest))
			case head != nil && (head != sBest || hKey != sKey):
				panic(fmt.Sprintf("core: scheduler divergence in domain %d round setup: index head core %d key %v, scan head core %d key %v",
					d.id, head.ID, hKey, sBest.ID, sKey))
			}
		}
		if head != nil && hKey < minKey {
			minKey = hKey
		}
	}
	return minKey
}

// runRound executes one bounded scheduling round on every domain,
// fanning the domains out over the worker pool.
func (k *Kernel) runRound(limit vtime.Time) {
	for _, d := range k.domains {
		d.limit = limit
		d.roundSteps = 0
	}
	if k.workers <= 1 {
		for _, d := range k.domains {
			d.runLocal(limit)
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(k.workers)
		for w := 0; w < k.workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(k.domains) {
						return
					}
					k.domains[i].runLocal(limit)
				}
			}()
		}
		wg.Wait()
	}
	for _, d := range k.domains {
		d.limit = vtime.Inf
	}
}

// runLocal is one domain's share of a round: schedule local cores with
// keys inside the round limit until none remain (or the step budget runs
// out). Identical to the sequential loop, restricted to owned cores.
func (d *domain) runLocal(limit vtime.Time) {
	budget := shardStepBudget * len(d.cores)
	for d.roundSteps < budget {
		c := d.pickCore(limit)
		if c == nil {
			return
		}
		d.roundSteps++
		d.step(c)
		// Stop early once the global step cap is exceeded; the round loop
		// turns this into the MaxSteps error. (Successful runs never reach
		// the cap, so this early exit cannot perturb their results.)
		if d.k.maxSteps > 0 && d.k.steps.Load() >= d.k.maxSteps {
			return
		}
	}
}

// drainBarrier merges all shard outboxes and applies the deferred items in
// deterministic (stamp, src, idx) order. Handlers run synchronously here
// — any messages or operations they trigger apply immediately, exactly as
// on the sequential engine.
//
//simany:barrier
func (k *Kernel) drainBarrier() {
	// The merge buffer is kernel scratch, reused across rounds so steady
	// state allocates nothing.
	items := k.barrierItems[:0]
	for _, d := range k.domains {
		items = append(items, d.outbox...)
		// The outbox backing array is per-round scratch too: drop its
		// payload/closure references so only the merge buffer pins them.
		clear(d.outbox)
		d.outbox = d.outbox[:0]
	}
	if len(items) == 0 {
		k.barrierItems = items
		return
	}
	// (stamp, src, idx) is a total order: src fixes the producing outbox
	// and idx is the unique append position within it.
	slices.SortFunc(items, func(a, b deferredItem) int {
		if c := cmp.Compare(a.stamp, b.stamp); c != 0 {
			return c
		}
		if c := cmp.Compare(a.src, b.src); c != 0 {
			return c
		}
		return cmp.Compare(a.idx, b.idx)
	})
	k.inBarrier = true
	for i := range items {
		if items[i].isMsg {
			// sendNow routes the message (computing Arrival) and handles
			// it; validation sees the routed form.
			routed := k.sendNow(items[i].msg)
			if k.bcheck != nil {
				k.bcheck.recordMsg(routed)
			}
		} else {
			items[i].op()
		}
	}
	k.inBarrier = false
	// Drop payload and closure references before the next round so the
	// reused backing array does not pin handled items for the GC.
	clear(items)
	k.barrierItems = items[:0]
}

// refreshEff rebuilds every core's advertised effective time and all
// neighbor proxies from global state: busy cores anchor at their clocks,
// idle cores relax downward from Inf through the policy's shadow-time rule
// until the (unique) fixpoint. Running it single-threaded at each barrier
// restores the cross-shard proxies that stayed frozen during the round.
//
// Lazy evaluation (efflazy.go) runs the same global relaxation — the
// frozen proxies a round reads must hold the barrier fixpoint either way
// — but inlines the relay rule instead of calling the policy (whose
// IdleTime routes through the lazy reads, meaningless mid-relaxation) and
// afterwards rebuilds the per-domain lazy bookkeeping, seeding every idle
// memo from the freshly computed fixpoint.
func (k *Kernel) refreshEff() {
	k.inRefresh = true
	defer func() { k.inRefresh = false }()
	busy := 0
	for _, d := range k.domains {
		busy += d.busy
	}
	if busy == 0 {
		for _, c := range k.cores {
			c.eff = vtime.Inf
			for j := range c.nbEff {
				c.nbEff[j] = vtime.Inf
			}
		}
		for _, d := range k.domains {
			d.allIdleInf = true
			if k.effLazy || k.effVerify {
				d.resetLazyIdle()
			}
		}
		return
	}
	for _, c := range k.cores {
		if c.idle {
			c.eff = vtime.Inf
		} else {
			c.eff = c.vt
		}
	}
	for _, d := range k.domains {
		d.allIdleInf = false
	}
	for _, c := range k.cores {
		changed := false
		for j, nbID := range c.neighbors {
			if e := k.cores[nbID].eff; c.nbEff[j] != e {
				c.nbEff[j] = e
				changed = true
			}
		}
		if changed && c.current != nil {
			// Unfrozen cross-shard proxies move the stalled core's
			// horizon; re-evaluate its queue entry (the only runnability
			// input not already settled by step/queue hooks).
			c.dom.schedUpdate(c)
		}
	}
	// Downward-only relaxation: order-independent, so any worklist order
	// yields the same fixpoint. The worklist is kernel scratch reused
	// across barriers, drained through a cursor so the backing array
	// survives intact for the next round.
	queue := k.effQueue[:0]
	for _, c := range k.cores {
		if c.idle {
			queue = append(queue, c.ID)
		}
	}
	for head := 0; head < len(queue); head++ {
		c := k.cores[queue[head]]
		var e vtime.Time
		if k.effLazy {
			// The inlined relay rule over the raw proxies (the lazy-mode
			// gate guarantees IdleTime is exactly this computation).
			m := vtime.Inf
			for _, t := range c.nbEff {
				if t < m {
					m = t
				}
			}
			e = satAdd(m, k.relayDelta)
		} else {
			e = k.policy.IdleTime(c)
		}
		if e >= c.eff {
			continue
		}
		c.eff = e
		for _, nbID := range c.neighbors {
			nb := k.cores[nbID]
			for j, nid := range nb.neighbors {
				if nid == c.ID {
					nb.nbEff[j] = e
					break
				}
			}
			if nb.current != nil {
				nb.dom.schedUpdate(nb)
			}
			if nb.idle {
				queue = append(queue, nbID)
			}
		}
	}
	k.effQueue = queue[:0]
	if k.effLazy || k.effVerify {
		for _, d := range k.domains {
			d.rebuildLazyFromRefresh()
		}
	}
}
