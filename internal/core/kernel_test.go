package core

import (
	"strings"
	"testing"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func kernelOn(t *topology.Topology, pol Policy) *Kernel {
	return New(Config{Topo: t, Policy: pol, Seed: 1})
}

func TestSingleTaskRuns(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	done := false
	k.InjectTask(0, "root", func(e *Env) {
		e.ComputeCycles(100)
		done = true
	}, nil, 0)
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("task body did not run")
	}
	// 10-cycle task start + 100 cycles of compute.
	if res.FinalVT != vtime.CyclesInt(110) {
		t.Errorf("FinalVT = %v, want 110cy", res.FinalVT)
	}
}

func TestTaskStartCostAndArrival(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	var startVT vtime.Time
	k.InjectTask(0, "late", func(e *Env) {
		startVT = e.Now()
	}, nil, vtime.CyclesInt(500))
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if startVT != vtime.CyclesInt(510) {
		t.Errorf("task started at %v, want 510cy (arrival+start cost)", startVT)
	}
}

func TestSequentialTasksOnOneCore(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.InjectTask(0, name, func(e *Env) {
			e.ComputeCycles(10)
			order = append(order, name)
		}, nil, 0)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Errorf("execution order = %v", order)
	}
	// 3 × (10 start + 10 compute).
	if res.FinalVT != vtime.CyclesInt(60) {
		t.Errorf("FinalVT = %v, want 60cy", res.FinalVT)
	}
}

func TestPolymorphicSpeedScalesCompute(t *testing.T) {
	topo := topology.Mesh(2)
	k := New(Config{Topo: topo, Speeds: []float64{0.5, 1.5}, Seed: 1})
	var vt0, vt1 vtime.Time
	k.InjectTask(0, "slow", func(e *Env) {
		base := e.Now()
		e.ComputeCycles(300)
		vt0 = e.Now() - base
	}, nil, 0)
	k.InjectTask(1, "fast", func(e *Env) {
		base := e.Now()
		e.ComputeCycles(300)
		vt1 = e.Now() - base
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if vt0 != vtime.CyclesInt(600) {
		t.Errorf("0.5x core took %v, want 600cy", vt0)
	}
	if vt1 != vtime.CyclesInt(200) {
		t.Errorf("1.5x core took %v, want 200cy", vt1)
	}
}

// record is a shared execution-order log used by drift tests; entries are
// appended in wall-clock (simulation) order.
type record struct {
	core int
	vt   vtime.Time
}

func runDriftWorkload(t *testing.T, topo *topology.Topology, pol Policy, taskCores []int, blocks int, blockCycles float64) []record {
	t.Helper()
	k := kernelOn(topo, pol)
	var log []record
	for _, cid := range taskCores {
		cid := cid
		k.InjectTask(cid, "worker", func(e *Env) {
			for i := 0; i < blocks; i++ {
				e.ComputeCycles(blockCycles)
				log = append(log, record{core: cid, vt: e.Now()})
			}
		}, nil, 0)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

// maxPrefixDrift replays the execution log and returns the maximum drift
// between the last-seen virtual times of the observed cores, measured only
// once every core has produced at least one entry.
func maxPrefixDrift(log []record, cores []int) vtime.Time {
	last := make(map[int]vtime.Time)
	var maxDrift vtime.Time
	for _, r := range log {
		last[r.core] = r.vt
		if len(last) < len(cores) {
			continue
		}
		lo, hi := vtime.Inf, vtime.Time(0)
		for _, c := range cores {
			v := last[c]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if d := hi - lo; d > maxDrift {
			maxDrift = d
		}
	}
	return maxDrift
}

func TestSpatialBoundsNeighborDrift(t *testing.T) {
	T := vtime.CyclesInt(100)
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	log := runDriftWorkload(t, topo, Spatial{T: T}, []int{0, 1}, 40, 30)
	// Neighbors may drift by T, plus one 30cy block of overshoot and the
	// transient from the idle-shadow bootstrap (one extra T).
	limit := 2*T + vtime.CyclesInt(40)
	if d := maxPrefixDrift(log, []int{0, 1}); d > limit {
		t.Errorf("neighbor drift reached %v, limit %v", d, limit)
	}
	// Sanity: execution interleaved (both cores appear early in the log).
	seen := map[int]bool{}
	for i, r := range log {
		seen[r.core] = true
		if len(seen) == 2 {
			if i > 10 {
				t.Errorf("interleaving started only at log entry %d", i)
			}
			break
		}
	}
}

func TestShadowBoundsRemoteDrift(t *testing.T) {
	// Fig. 2 scenario: two active cores at the ends of a path of idle
	// cores. Shadow virtual times must keep the global drift under
	// diameter × T.
	T := vtime.CyclesInt(100)
	topo := topology.Mesh2D(5, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	log := runDriftWorkload(t, topo, Spatial{T: T}, []int{0, 4}, 100, 10)
	diam := vtime.Time(topo.Diameter())
	limit := diam*T + vtime.CyclesInt(20)
	if d := maxPrefixDrift(log, []int{0, 4}); d > limit {
		t.Errorf("remote drift reached %v, limit diam*T=%v", d, limit)
	}
}

func TestSmallerTMeansTighterDrift(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	logTight := runDriftWorkload(t, topo, Spatial{T: vtime.CyclesInt(20)}, []int{0, 1}, 50, 10)
	logLoose := runDriftWorkload(t, topo, Spatial{T: vtime.CyclesInt(2000)}, []int{0, 1}, 50, 10)
	dTight := maxPrefixDrift(logTight, []int{0, 1})
	dLoose := maxPrefixDrift(logLoose, []int{0, 1})
	if dTight >= dLoose {
		t.Errorf("T=20 drift %v not tighter than T=2000 drift %v", dTight, dLoose)
	}
}

func TestLockExemptionAllowsOverrun(t *testing.T) {
	// A core holding a lock must be able to run past the drift bound so it
	// can reach the release point (§II.B).
	T := vtime.CyclesInt(50)
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: T})
	var lockedSpan vtime.Time
	k.InjectTask(0, "locker", func(e *Env) {
		e.AcquireLockExempt()
		start := e.Now()
		e.ComputeCycles(5000) // way past any drift bound
		lockedSpan = e.Now() - start
		e.ReleaseLockExempt()
	}, nil, 0)
	k.InjectTask(1, "slow", func(e *Env) {
		for i := 0; i < 100; i++ {
			e.ComputeCycles(1)
		}
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if lockedSpan != vtime.CyclesInt(5000) {
		t.Errorf("locked section spanned %v, want uninterrupted 5000cy", lockedSpan)
	}
}

func TestLockDepthUnderflowPanics(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	k.InjectTask(0, "bad", func(e *Env) {
		e.ReleaseLockExempt()
	}, nil, 0)
	if _, err := k.Run(); err == nil {
		t.Fatal("expected error from lock underflow panic")
	}
}

const (
	kindPing network.Kind = iota + 1
	kindPong
	kindOneWay
)

func TestRequestReply(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: DefaultT})
	// Ping handler: replies after a 10-cycle handling delay.
	k.Handle(kindPing, func(k *Kernel, msg network.Message) {
		req := msg.Payload.(*Task)
		k.SendAt(msg.Dst, msg.Src, kindPong, 8, req, msg.Arrival+vtime.CyclesInt(10))
	})
	k.Handle(kindPong, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	var sendVT, wakeVT vtime.Time
	k.InjectTask(0, "client", func(e *Env) {
		e.ComputeCycles(100)
		sendVT = e.Now()
		e.Send(1, kindPing, 8, e.Task())
		wakeVT = e.Block()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Round trip: 2 × one-hop latency + 10 cycles of handling; the wake
	// stamp must be after send plus that.
	minRT := 2*k.Network().MinLatency(0, 1, 8) + vtime.CyclesInt(10)
	if wakeVT < sendVT+minRT {
		t.Errorf("wake at %v, want >= %v", wakeVT, sendVT+minRT)
	}
}

func TestBlockedTaskFreesCore(t *testing.T) {
	// While one task is blocked, another task on the same core runs; the
	// blocked task resumes with the 15-cycle context-switch cost.
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	var order []string
	var resumeVT vtime.Time
	k2 := kernelOn(topo, Spatial{T: DefaultT})
	k2.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	var blocker *Task
	blocker = k2.InjectTask(0, "blocker", func(e *Env) {
		order = append(order, "blocker-pre")
		e.Block()
		resumeVT = e.Now()
		order = append(order, "blocker-post")
	}, nil, 0)
	k2.InjectTask(0, "filler", func(e *Env) {
		e.ComputeCycles(200)
		order = append(order, "filler")
	}, nil, 0)
	k2.InjectTask(1, "waker", func(e *Env) {
		e.ComputeCycles(500)
		e.Send(0, kindOneWay, 8, blocker)
	}, nil, 0)
	if _, err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"blocker-pre", "filler", "blocker-post"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("order = %v, want %v", order, want)
	}
	// Resume stamp: at least the waker's 510cy send + transit + switch.
	if resumeVT < vtime.CyclesInt(510)+k2.CtxSwitchCost() {
		t.Errorf("blocker resumed at %v", resumeVT)
	}
}

func TestPendingWakeFastPath(t *testing.T) {
	// A reply handled synchronously before the requester blocks must be
	// consumed by Block without a deadlock.
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: DefaultT})
	k.Handle(kindPing, func(k *Kernel, msg network.Message) {
		// Immediate unblock: requester is still running.
		k.Unblock(msg.Payload.(*Task), msg.Arrival+vtime.CyclesInt(3))
	})
	var wake, send vtime.Time
	k.InjectTask(0, "client", func(e *Env) {
		send = e.Now()
		e.Send(1, kindPing, 8, e.Task())
		wake = e.Block()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake <= send {
		t.Errorf("wake %v not after send %v", wake, send)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	k.InjectTask(0, "stuck", func(e *Env) {
		e.Block() // nobody will ever unblock
	}, nil, 0)
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock report misses task name: %v", err)
	}
}

func TestTaskPanicSurfaces(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	k.InjectTask(0, "bomber", func(e *Env) {
		panic("boom")
	}, nil, 0)
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() vtime.Time {
		topo := topology.Mesh(4)
		k := kernelOn(topo, Spatial{T: DefaultT})
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
			k.Unblock(msg.Payload.(*Task), msg.Arrival)
		})
		for c := 0; c < 4; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 20; i++ {
					e.ComputeCycles(float64(7 + c))
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalVT
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

type fixedMem struct{ d vtime.Time }

func (m fixedMem) Access(c *Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time {
	return m.d * vtime.Time(n)
}

func TestMemSystemCharged(t *testing.T) {
	topo := topology.Mesh(1)
	k := New(Config{Topo: topo, Mem: fixedMem{d: vtime.CyclesInt(10)}, Seed: 1})
	var span vtime.Time
	k.InjectTask(0, "reader", func(e *Env) {
		s := e.Now()
		e.Read(0, 5, 8)
		e.Write(100, 3, 8)
		span = e.Now() - s
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if span != vtime.CyclesInt(80) {
		t.Errorf("memory span = %v, want 80cy", span)
	}
	if k.Core(0).Stats().MemTime != vtime.CyclesInt(80) {
		t.Errorf("MemTime stat = %v", k.Core(0).Stats().MemTime)
	}
}

func TestStatsCounters(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: vtime.CyclesInt(10)})
	k.InjectTask(0, "a", func(e *Env) {
		for i := 0; i < 30; i++ {
			e.ComputeCycles(20)
		}
	}, nil, 0)
	k.InjectTask(1, "b", func(e *Env) {
		for i := 0; i < 30; i++ {
			e.ComputeCycles(20)
		}
	}, nil, 0)
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == 0 {
		t.Error("expected stalls with tiny T")
	}
	if got := k.Core(0).Stats().TaskStarts; got != 1 {
		t.Errorf("task starts = %d", got)
	}
	if res.Steps <= 2 {
		t.Errorf("steps = %d, expected interleaving", res.Steps)
	}
}

func TestHugeTRunsWithoutInterleaving(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: vtime.CyclesInt(1_000_000)})
	k.InjectTask(0, "a", func(e *Env) {
		for i := 0; i < 50; i++ {
			e.ComputeCycles(10)
		}
	}, nil, 0)
	k.InjectTask(1, "b", func(e *Env) {
		for i := 0; i < 50; i++ {
			e.ComputeCycles(10)
		}
	}, nil, 0)
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Errorf("stalls = %d with huge T", res.Stalls)
	}
	// Each task runs to completion in a single scheduling step.
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2", res.Steps)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: vtime.CyclesInt(1)}, MaxSteps: 10, Seed: 1})
	k.InjectTask(0, "a", func(e *Env) {
		for i := 0; i < 1000; i++ {
			e.ComputeCycles(5)
		}
	}, nil, 0)
	k.InjectTask(1, "b", func(e *Env) {
		for i := 0; i < 1000; i++ {
			e.ComputeCycles(5)
		}
	}, nil, 0)
	if _, err := k.Run(); err == nil {
		t.Fatal("expected MaxSteps error")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	k := kernelOn(topology.Mesh(1), Spatial{T: DefaultT})
	k.Handle(kindPing, func(*Kernel, network.Message) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate handler")
		}
	}()
	k.Handle(kindPing, func(*Kernel, network.Message) {})
}

func TestBirthTracking(t *testing.T) {
	// A spawned task counts as a pseudo-neighbor of its spawning core
	// between the spawn and its arrival at the final destination (§II.A
	// Fig. 3): RegisterBirth must tighten the horizon immediately, and
	// PlaceTask with the birth owner must relax it again.
	T := vtime.CyclesInt(100)
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: T})
	var childStart vtime.Time
	k.InjectTask(0, "parent", func(e *Env) {
		e.ComputeCycles(50)
		spawnVT := e.Now()
		child := k.NewTask(0, "child", func(ce *Env) {
			childStart = ce.Now()
			ce.ComputeCycles(10)
		}, nil)
		k.RegisterBirth(k.Core(0), child, spawnVT)
		// While the spawn is in flight, the parent's drift is bounded by
		// the child's birth stamp.
		if h := k.Policy().Horizon(k.Core(0)); h != spawnVT+T {
			t.Errorf("horizon with in-flight birth = %v, want %v", h, spawnVT+T)
		}
		k.PlaceTask(child, 1, spawnVT+vtime.CyclesInt(5), k.Core(0))
		// Arrival at the destination discards the birth date.
		if h := k.Policy().Horizon(k.Core(0)); h <= spawnVT+T {
			t.Errorf("horizon after arrival = %v, still birth-bound", h)
		}
		e.ComputeCycles(500) // must not stall on the discarded birth
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart == 0 {
		t.Fatal("child did not run")
	}
}

func TestResultNetworkTotals(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := kernelOn(topo, Spatial{T: DefaultT})
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
	k.InjectTask(0, "sender", func(e *Env) {
		for i := 0; i < 5; i++ {
			e.Send(1, kindOneWay, 64, nil)
		}
	}, nil, 0)
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5 || res.Bytes != 320 {
		t.Errorf("network totals = %d msgs %d bytes", res.Messages, res.Bytes)
	}
	if res.Handled != 5 {
		t.Errorf("handled = %d", res.Handled)
	}
}
