package core

import (
	"fmt"

	"simany/internal/vtime"
)

// The indexed scheduler.
//
// The reference kernel picks the next core by scanning every core of the
// domain on every scheduling step (scanRunnable): O(cores) per step, the
// dominant cost at the 1024-core scale the paper targets. The structures
// in this file replace that scan with an indexed runnable queue — a binary
// min-heap keyed by (virtual-time key, core ID) — so picking becomes an
// O(1) peek and repositioning a core after a step an O(log n) sift.
//
// The heap is maintained incrementally: every site that can change a
// core's runnability or its key posts an update to the owning domain's
// queue (domain.schedUpdate). The full list of invalidation sites, and the
// argument for why they are exhaustive, is in docs/scheduler.md; in short,
// a core's runnable key depends on
//
//   - its task queues (conts/ready) — mutated by PlaceTask, Unblock and
//     the queue pops in domain.step;
//   - its clock, idle flag and current task — mutated only inside
//     domain.step (the post-step update covers them);
//   - for a core stalled mid-task, the policy horizon — which for a
//     cacheable-horizon policy (CacheableHorizonPolicy) is a pure function
//     of the core's neighbor proxies (updateEff / refreshEff), its birth
//     stamps (RegisterBirth / clearBirth) and its lock depth (mutated only
//     by the core's own running task).
//
// Policies whose horizons read global machine state or have side effects
// (the drift-comparison schemes draw referee RNGs and record probe
// histograms per evaluation) cannot be indexed without changing observable
// behavior; kernels running them keep the reference scan. Either way the
// pick order is bit-for-bit identical: the heap orders by the exact
// (key, core ID) pair the scan minimizes, and SchedVerify machine-checks
// the equivalence at every decision.

// SchedMode selects the kernel's scheduling implementation.
type SchedMode int

const (
	// SchedAuto (the default) uses the indexed runnable queue whenever the
	// policy's horizon is cacheable (CacheableHorizonPolicy) and the
	// reference linear scan otherwise. The choice never affects results —
	// only how fast the host reaches them.
	SchedAuto SchedMode = iota
	// SchedScan forces the reference linear scan. Useful as the baseline
	// in scheduler benchmarks and for differential debugging.
	SchedScan
	// SchedVerify runs the indexed queue and the reference scan side by
	// side and panics on the first divergence in picked core, key or
	// runnable count — the differential oracle used by the equivalence
	// test suite. Falls back to the plain scan when the policy's horizon
	// is not cacheable (there is no index to verify).
	SchedVerify
)

// String names the mode.
func (m SchedMode) String() string {
	switch m {
	case SchedScan:
		return "scan"
	case SchedVerify:
		return "verify"
	default:
		return "auto"
	}
}

// CacheableHorizonPolicy is implemented by policies whose Horizon is a
// pure function of the kernel-tracked inputs the indexed scheduler
// invalidates on — the core's neighbor effective-time proxies, its
// outstanding birth stamps and its lock depth — with no side effects (no
// RNG draws, no metric probes) and no reads of other global machine
// state. Only such horizons may be re-evaluated on invalidation instead
// of at every scheduling decision; a policy that does not implement the
// interface (or returns false) keeps the reference scan, which evaluates
// Horizon for every stalled core at every pick exactly as the original
// kernel did.
type CacheableHorizonPolicy interface {
	HorizonCacheable() bool
}

// runq is a domain's indexed runnable queue: a binary min-heap over the
// domain's cores ordered by (schedKey, core ID), mirroring exactly the
// (key, ID) minimization of the reference scan. A core is in the heap if
// and only if the last schedUpdate found it runnable; its position is
// kept in Core.schedPos so membership tests and repositioning are O(1)
// and O(log n).
type runq struct {
	d    *domain
	heap []*Core
}

func newRunq(d *domain) *runq {
	return &runq{d: d, heap: make([]*Core, 0, len(d.cores))}
}

// less is the scheduling order: virtual-time key first, core ID as the
// deterministic tie-break — identical to the reference scan's preference.
func schedLess(a, b *Core) bool {
	if a.schedKey != b.schedKey {
		return a.schedKey < b.schedKey
	}
	return a.ID < b.ID
}

func (q *runq) swap(i, j int) {
	h := q.heap
	h[i], h[j] = h[j], h[i]
	h[i].schedPos = i
	h[j].schedPos = j
}

func (q *runq) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !schedLess(q.heap[i], q.heap[p]) {
			return
		}
		q.swap(i, p)
		i = p
	}
}

func (q *runq) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && schedLess(q.heap[l], q.heap[s]) {
			s = l
		}
		if r < n && schedLess(q.heap[r], q.heap[s]) {
			s = r
		}
		if s == i {
			return
		}
		q.swap(i, s)
		i = s
	}
}

func (q *runq) insert(c *Core) {
	c.schedPos = len(q.heap)
	q.heap = append(q.heap, c)
	q.up(c.schedPos)
}

func (q *runq) remove(c *Core) {
	i := c.schedPos
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	c.schedPos = -1
	if i != last {
		q.down(i)
		q.up(i)
	}
}

// peek returns the runnable core with the minimal (key, ID), nil when the
// queue is empty.
func (q *runq) peek() *Core {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// update re-evaluates c's runnability and repositions it: insert when it
// became runnable, remove when it stopped being runnable, sift when its
// key moved. Calling it redundantly is cheap and harmless, so invalidation
// sites do not need to prove the value actually changed.
func (q *runq) update(c *Core) {
	key, ok := q.d.runnable(c)
	if !ok {
		if c.schedPos >= 0 {
			q.remove(c)
		}
		return
	}
	if c.schedPos < 0 {
		c.schedKey = key
		q.insert(c)
		return
	}
	if key == c.schedKey {
		return
	}
	c.schedKey = key
	q.down(c.schedPos)
	q.up(c.schedPos)
}

// rebuild recomputes the queue from scratch — membership, keys and heap
// order — in O(cores). Run() calls it once per engine start; everything
// after that is incremental. Under lazy effective-time evaluation the
// idle-adjacent stalled cores belong to the secondary heap (rebuilt
// separately) and are excluded here.
func (q *runq) rebuild() {
	lazy := q.d.k.effLazy
	q.heap = q.heap[:0]
	for _, c := range q.d.cores {
		c.schedPos = -1
	}
	for _, c := range q.d.cores {
		if lazy && c.current != nil && c.idleNb > 0 {
			continue
		}
		if key, ok := q.d.runnable(c); ok {
			c.schedKey = key
			c.schedPos = len(q.heap)
			q.heap = append(q.heap, c)
		}
	}
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// countAtMost counts the queued cores with key ≤ limit — the §VIII
// runnable-cores sample the reference scan tallied on every pick. The
// whole queue qualifies when limit is Inf (the sequential engine); under
// a shard round limit the count is collected by walking only the heap
// subtrees whose root qualifies (a node's descendants all carry keys ≥
// its own), so the cost is proportional to the sample value itself, never
// to the machine size.
func (q *runq) countAtMost(limit vtime.Time) int {
	if limit == vtime.Inf {
		return len(q.heap)
	}
	n := 0
	var walk func(i int)
	walk = func(i int) {
		if i >= len(q.heap) || q.heap[i].schedKey > limit {
			return
		}
		n++
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return n
}

// pick returns the scan-equivalent scheduling decision: the minimal-key
// core within limit and the number of runnable cores within limit (0, nil
// when none qualifies).
func (q *runq) pick(limit vtime.Time) (*Core, int) {
	best := q.peek()
	if best == nil || best.schedKey > limit {
		return nil, 0
	}
	return best, q.countAtMost(limit)
}

// schedUpdate posts an incremental runnability update for c to its
// domain's index. It is a no-op on domains running the reference scan.
// Calls for a core that is mid-step observe a transient state; the
// post-step update in domain.step settles it before the queue is next
// read (the domain only consults the queue between steps).
//
// Under lazy effective-time evaluation a stalled core with an idle
// same-domain neighbor is routed to the secondary (vt, ID) heap instead:
// its horizon reads lazily evaluated shadow times that post no
// invalidation callbacks, so no cached key could be kept honest —
// pickCore evaluates it on demand (efflazy.go). Stalled cores without
// idle neighbors keep exact runq keys: their horizons read only busy
// neighbors' maintained times (lazyEffSite notifies on every change) and
// frozen cross-shard proxies (refreshed under a full rebuild).
func (d *domain) schedUpdate(c *Core) {
	if d.rq == nil {
		return
	}
	if d.k.effLazy {
		// Every non-eff horizon input (clock, births, locks) funnels its
		// mutations through here, so dropping the horizon and sticky
		// runnable memos on each update is exactly the invalidation their
		// contracts need.
		c.hzStamp = 0
		c.rnStamp = 0
		if c.current != nil && c.idleNb > 0 {
			// The mid-step core stays out of the stall heap (its clock is
			// moving); the post-step update re-seats it.
			if c != d.stepping {
				d.sq.update(c)
			}
			if c.schedPos >= 0 {
				d.rq.remove(c)
			}
			return
		}
		if c.stallPos >= 0 {
			d.sq.remove(c)
		}
	}
	d.rq.update(c)
}

// verifyPick cross-checks one indexed decision against the reference scan
// (SchedVerify). Divergence is a kernel bug, never a workload error, so it
// panics with both answers. The picked key is passed explicitly because a
// stalled core's cached schedKey is not maintained under lazy evaluation.
func (d *domain) verifyPick(limit vtime.Time, best *Core, key vtime.Time, n int) {
	sBest, sKey, sn := d.scanRunnable(limit)
	ok := best == sBest && n == sn
	if ok && best != nil && key != sKey {
		ok = false
	}
	if ok {
		return
	}
	name := func(c *Core) string {
		if c == nil {
			return "none"
		}
		return fmt.Sprintf("core %d (key %v)", c.ID, key)
	}
	sName := "none"
	if sBest != nil {
		sName = fmt.Sprintf("core %d (key %v)", sBest.ID, sKey)
	}
	panic(fmt.Sprintf(
		"core: scheduler divergence in domain %d (limit %v): index picked %s of %d runnable, scan picked %s of %d runnable",
		d.id, limit, name(best), n, sName, sn))
}

// checkRunq verifies the structural invariants of the index — position
// back-pointers, heap order, and membership/key agreement with the
// reference runnable computation. The core currently mid-step (if any) is
// exempt from the membership check: its entry is refreshed when the step
// completes, before the queue is consulted again. Used by Kernel.Validate.
func (d *domain) checkRunq() error {
	q := d.rq
	if q == nil {
		return nil
	}
	for i, c := range q.heap {
		if c.schedPos != i {
			return fmt.Errorf("domain %d: core %d heap position %d, recorded %d", d.id, c.ID, i, c.schedPos)
		}
		if i > 0 && schedLess(c, q.heap[(i-1)/2]) {
			return fmt.Errorf("domain %d: heap order violated at index %d (core %d)", d.id, i, c.ID)
		}
	}
	// Tests may graft a runq onto a scan-mode kernel; the stall heap only
	// exists when the engine itself runs the indexed scheduler lazily.
	lazy := d.k.effLazy && d.sq != nil
	if lazy {
		for i, c := range d.sq.heap {
			if c.stallPos != i {
				return fmt.Errorf("domain %d: core %d stall-heap position %d, recorded %d", d.id, c.ID, i, c.stallPos)
			}
			if c == d.stepping {
				// The mid-step core's clock is in flux, so step removes it
				// from this heap until the post-step update.
				return fmt.Errorf("domain %d: mid-step core %d still in the stall heap", d.id, c.ID)
			}
			if i > 0 && stallLess(c, d.sq.heap[(i-1)/2]) {
				return fmt.Errorf("domain %d: stall-heap order violated at index %d (core %d)", d.id, i, c.ID)
			}
		}
	}
	for _, c := range d.cores {
		if c == d.stepping {
			continue
		}
		if lazy && c.current != nil && c.idleNb > 0 {
			// Idle-adjacent stalled cores live in the secondary heap; their
			// runnability is evaluated on demand, never cached in the runq.
			if c.schedPos >= 0 {
				return fmt.Errorf("domain %d: stalled core %d still in the runq (key %v)", d.id, c.ID, c.schedKey)
			}
			if c.stallPos < 0 {
				return fmt.Errorf("domain %d: stalled core %d missing from the stall heap", d.id, c.ID)
			}
			continue
		}
		if lazy && c.stallPos >= 0 {
			return fmt.Errorf("domain %d: core %d in the stall heap but not idle-adjacent stalled", d.id, c.ID)
		}
		key, ok := d.runnable(c)
		switch {
		case ok && c.schedPos < 0:
			return fmt.Errorf("domain %d: core %d runnable (key %v) but not indexed", d.id, c.ID, key)
		case !ok && c.schedPos >= 0:
			return fmt.Errorf("domain %d: core %d indexed (key %v) but not runnable", d.id, c.ID, c.schedKey)
		case ok && key != c.schedKey:
			return fmt.Errorf("domain %d: core %d indexed with key %v, runnable key %v", d.id, c.ID, c.schedKey, key)
		}
	}
	return nil
}
