package core

import (
	"testing"

	"simany/internal/topology"
	"simany/internal/vtime"
)

// scanOnlyPolicy is a policy that does not implement
// CacheableHorizonPolicy, so kernels running it must keep the reference
// scan regardless of the requested scheduler mode.
type scanOnlyPolicy struct{}

func (scanOnlyPolicy) Name() string              { return "scan-only" }
func (scanOnlyPolicy) Horizon(*Core) vtime.Time  { return vtime.Inf }
func (scanOnlyPolicy) IdleTime(*Core) vtime.Time { return vtime.Inf }

func schedTestKernel(t *testing.T, mode SchedMode) *Kernel {
	t.Helper()
	return New(Config{Topo: topology.Mesh(9), Policy: Spatial{T: DefaultT},
		Seed: 1, Sched: mode})
}

// readyAt attaches a fresh task with the given arrival stamp to core c.
func readyAt(k *Kernel, c *Core, at vtime.Time) *Task {
	t := k.NewTask(c.ID, "q", nil, nil)
	t.arrival = at
	c.pushReady(t)
	return t
}

func mustCheck(t *testing.T, d *domain) {
	t.Helper()
	if err := d.checkRunq(); err != nil {
		t.Fatal(err)
	}
}

func TestRunqInsertRemoveUpdate(t *testing.T) {
	k := schedTestKernel(t, SchedScan) // manual queue, no engine interference
	d := k.domains[0]
	q := newRunq(d)
	d.rq = q

	c1, c3, c5 := k.Core(1), k.Core(3), k.Core(5)

	readyAt(k, c3, vtime.CyclesInt(50))
	q.update(c3)
	if got := q.peek(); got != c3 || got.schedKey != vtime.CyclesInt(50) {
		t.Fatalf("peek = %v, want core 3 at 50", got)
	}
	mustCheck(t, d)

	// Equal keys break ties by core ID, exactly like the scan.
	readyAt(k, c1, vtime.CyclesInt(50))
	q.update(c1)
	if got := q.peek(); got != c1 {
		t.Fatalf("peek = core %d, want core 1 (ID tie-break)", got.ID)
	}
	mustCheck(t, d)

	readyAt(k, c5, vtime.CyclesInt(20))
	q.update(c5)
	if got := q.peek(); got != c5 {
		t.Fatalf("peek = core %d, want core 5 (earliest key)", got.ID)
	}
	mustCheck(t, d)

	// Redundant update with an unchanged key is a no-op.
	q.update(c5)
	mustCheck(t, d)

	// A new earlier arrival moves the key and repositions the core.
	readyAt(k, c1, vtime.CyclesInt(5))
	q.update(c1)
	if got := q.peek(); got != c1 || got.schedKey != vtime.CyclesInt(5) {
		t.Fatalf("peek = core %d key %v, want core 1 at 5", got.ID, got.schedKey)
	}
	mustCheck(t, d)

	// Draining a core's queue removes it from the index.
	for len(c1.ready) > 0 {
		c1.popReady()
	}
	q.update(c1)
	if c1.schedPos != -1 {
		t.Fatalf("core 1 still indexed at %d after draining", c1.schedPos)
	}
	if got := q.peek(); got != c5 {
		t.Fatalf("peek = core %d, want core 5", got.ID)
	}
	mustCheck(t, d)

	// rebuild from scratch reproduces the same head.
	q.rebuild()
	if got := q.peek(); got != c5 {
		t.Fatalf("peek after rebuild = core %d, want core 5", got.ID)
	}
	mustCheck(t, d)
}

func TestRunqCountAtMostAndPick(t *testing.T) {
	k := schedTestKernel(t, SchedScan)
	d := k.domains[0]
	q := newRunq(d)
	d.rq = q

	stamps := []int64{70, 20, 50, 20, 90}
	for i, s := range stamps {
		c := k.Core(i)
		readyAt(k, c, vtime.CyclesInt(s))
		q.update(c)
	}
	mustCheck(t, d)

	for _, tc := range []struct {
		limit int64
		want  int
	}{
		{10, 0}, {20, 2}, {50, 3}, {70, 4}, {90, 5},
	} {
		if got := q.countAtMost(vtime.CyclesInt(tc.limit)); got != tc.want {
			t.Errorf("countAtMost(%d) = %d, want %d", tc.limit, got, tc.want)
		}
	}
	if got := q.countAtMost(vtime.Inf); got != len(stamps) {
		t.Errorf("countAtMost(Inf) = %d, want %d", got, len(stamps))
	}

	if best, n := q.pick(vtime.CyclesInt(10)); best != nil || n != 0 {
		t.Errorf("pick(10) = %v, %d, want none", best, n)
	}
	best, n := q.pick(vtime.CyclesInt(60))
	if best == nil || best.ID != 1 || n != 3 {
		t.Errorf("pick(60) = %v, %d, want core 1 of 3", best, n)
	}
	// Both cores at stamp 20 qualify; the lower ID wins.
	if best, _ := q.pick(vtime.Inf); best.ID != 1 {
		t.Errorf("pick(Inf) = core %d, want core 1", best.ID)
	}
}

// TestReadyMinCacheReordering pins the incremental min-arrival cache
// against a recomputation from the raw queue across a pop sequence that
// reorders arrivals: the FIFO pop order (70, 10, 40) disagrees with the
// stamp order, so the cache must survive both popping a non-minimal head
// and popping the task that carried the minimum.
func TestReadyMinCacheReordering(t *testing.T) {
	k := schedTestKernel(t, SchedScan)
	c := k.Core(0)

	recompute := func() vtime.Time {
		m := vtime.Inf
		for _, t := range c.ready {
			if t.arrival < m {
				m = t.arrival
			}
		}
		return m
	}
	check := func(stage string) {
		t.Helper()
		if got, want := c.minReadyArrival(), recompute(); got != want {
			t.Fatalf("%s: cached ready-min %v, recomputed %v", stage, got, want)
		}
	}

	check("empty")
	readyAt(k, c, vtime.CyclesInt(70))
	check("push 70")
	readyAt(k, c, vtime.CyclesInt(10))
	check("push 10")
	readyAt(k, c, vtime.CyclesInt(40))
	check("push 40")

	// Pop the head (arrival 70): the minimum (10) is untouched.
	if got := c.popReady(); got.arrival != vtime.CyclesInt(70) {
		t.Fatalf("popped arrival %v, want 70", got.arrival)
	}
	check("pop 70")
	// Pop the task carrying the cached minimum: forces the lazy recompute.
	if got := c.popReady(); got.arrival != vtime.CyclesInt(10) {
		t.Fatalf("popped arrival %v, want 10", got.arrival)
	}
	check("pop 10")
	// Pushing below the new minimum while the cache is clean absorbs it.
	readyAt(k, c, vtime.CyclesInt(15))
	check("push 15")
	c.popReady()
	check("pop 40")
	c.popReady()
	check("drained")
	if got := c.minReadyArrival(); got != vtime.Inf {
		t.Fatalf("drained queue ready-min %v, want Inf", got)
	}
}

// TestContsMinCacheReordering is the continuation-queue twin of the
// ready-queue test above.
func TestContsMinCacheReordering(t *testing.T) {
	k := schedTestKernel(t, SchedScan)
	c := k.Core(0)

	push := func(at int64) {
		tk := k.NewTask(c.ID, "c", nil, nil)
		tk.resume = vtime.CyclesInt(at)
		c.pushCont(tk)
	}
	recompute := func() vtime.Time {
		m := vtime.Inf
		for _, t := range c.conts {
			if t.resume < m {
				m = t.resume
			}
		}
		return m
	}
	check := func(stage string) {
		t.Helper()
		if got, want := c.minContResume(), recompute(); got != want {
			t.Fatalf("%s: cached conts-min %v, recomputed %v", stage, got, want)
		}
	}

	push(30)
	check("push 30")
	push(5)
	check("push 5")
	push(20)
	check("push 20")
	c.popCont() // 30: min survives
	check("pop 30")
	c.popCont() // 5: carried the min, recompute yields 20
	check("pop 5")
	c.popCont()
	check("drained")
	if got := c.minContResume(); got != vtime.Inf {
		t.Fatalf("drained queue conts-min %v, want Inf", got)
	}
}

func TestSchedulerModeSelection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Policy
		mode   SchedMode
		want   string
	}{
		{"spatial auto", Spatial{T: DefaultT}, SchedAuto, "index"},
		{"spatial scan", Spatial{T: DefaultT}, SchedScan, "scan"},
		{"spatial verify", Spatial{T: DefaultT}, SchedVerify, "index+verify"},
		{"non-cacheable auto", scanOnlyPolicy{}, SchedAuto, "scan"},
		{"non-cacheable verify", scanOnlyPolicy{}, SchedVerify, "scan"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := New(Config{Topo: topology.Mesh(4), Policy: tc.policy,
				Seed: 1, Sched: tc.mode})
			if got := k.Scheduler(); got != tc.want {
				t.Errorf("Scheduler() = %q, want %q", got, tc.want)
			}
			indexed := tc.want != "scan"
			if (k.domains[0].rq != nil) != indexed {
				t.Errorf("domain index presence = %v, want %v",
					k.domains[0].rq != nil, indexed)
			}
		})
	}
}

func TestSchedModeString(t *testing.T) {
	for mode, want := range map[SchedMode]string{
		SchedAuto: "auto", SchedScan: "scan", SchedVerify: "verify",
	} {
		if got := mode.String(); got != want {
			t.Errorf("SchedMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}
