package core

import (
	"simany/internal/network"
	"simany/internal/vtime"
)

// The kernel executes on one of two engines:
//
//   - the sequential engine (seq.go): one scheduling loop over all cores,
//     exactly the original SiMany kernel;
//   - the sharded engine (shard.go): the topology is partitioned into
//     contiguous shards (topology.Partition), each driven by its own local
//     pickCore/step loop, with cross-shard traffic exchanged through
//     per-shard mailboxes drained at deterministic round barriers.
//
// Both engines schedule through the same per-domain machinery below: a
// domain is one schedulable partition of the machine (the whole machine for
// the sequential engine) owning its cores' queues, its yield channel and
// its share of the bookkeeping.

// domain is one execution shard: the unit of host-side scheduling.
type domain struct {
	k     *Kernel
	id    int
	cores []*Core // owned cores, ascending ID

	yieldCh chan yieldInfo
	blocked map[uint64]*Task
	live    int64 // live tasks resident in this domain
	maxTime vtime.Time
	busy    int //simany:derived non-idle core count, recounted from idle flags after decode

	// limit caps every horizon handed to tasks of this domain while a shard
	// round is in progress (Inf on the sequential engine and between
	// rounds): cross-shard effective-time proxies are frozen during a
	// round, so local progress must not outrun the round quantum.
	//
	//simany:derived transient round state; checkpoints happen at barriers where limit is reset
	limit vtime.Time

	// rq is the indexed runnable queue (sched.go); nil when the domain
	// schedules through the reference scan (non-cacheable policy horizon,
	// or Config.Sched = SchedScan). stepping is the core currently inside
	// step, whose index entry is transient until the step completes.
	rq       *runq //simany:derived runnable heap, rebuilt by schedRebuild after decode
	stepping *Core //simany:derived transient mid-step marker, nil at every barrier

	// Host-parallelism potential sampling (§VIII).
	runnableSum     int64
	runnableSamples int64
	runnableMax     int

	propQueue []int //simany:derived reusable scratch for shadow-time propagation, empty between uses
	inProp    bool  //simany:derived transient mid-flood marker for the EffVerify gate, false between floods

	// Lazy effective-time state (efflazy.go): the busy frontier anchors,
	// the memo-invalidation epoch, the exact/conservative anchor floors
	// and the stalled-core scheduling heap active under lazy evaluation.
	busyList []*Core //simany:derived frontier anchor list, rebuilt from idle flags at barriers/after decode
	sq       *stallq //simany:derived stalled-core heap, rebuilt by schedRebuild after decode
	effEpoch uint64  //simany:derived memo invalidation epoch, bumping it after decode discards all memos
	// shapeEpoch advances only when the anchor *set* changes (a busy/idle
	// flip, a barrier refresh) — never on pure value moves, which are
	// monotone. A stalled core's sticky runnable bit (Core.rnStamp) is
	// valid per shape epoch: within one, horizons can only rise, so a core
	// once observed runnable stays runnable until its own inputs change.
	shapeEpoch uint64 //simany:derived sticky-runnable invalidation epoch, bumped after decode like effEpoch
	effGen     uint64 //simany:derived lazyFix BFS visited generation, transient per query
	//simany:derived anchor lower bound for the BFS cutoff, recomputed at barriers/after decode
	effFloor vtime.Time
	//simany:derived lower bound over frozen cross-shard proxies, recomputed at barriers/after decode
	frozenFloor vtime.Time
	floorAge    int   //simany:derived staleness counter for the conservative floor, reset on recompute
	effScratch  []int //simany:derived reusable BFS ring buffer, empty between uses
	// allIdleInf records that every owned core (and its local mirrors)
	// already advertises Inf, so the eager busy==0 broadcast can return
	// without rescanning the domain.
	allIdleInf bool //simany:derived recomputed by refreshEff; true after decode of an all-idle machine

	// Sharded-engine state: cross-shard traffic deferred to the next
	// barrier, and the step count of the current round.
	outbox     []deferredItem //simany:derived drained at every barrier, so empty at each checkpoint
	roundSteps int            //simany:derived transient per-round counter, reset when a round starts
	stepsTotal int64

	// Message-delivery statistics, owned by this domain: sendNow always
	// runs either on the worker driving the destination's shard or inside
	// the single-threaded barrier, so plain counters suffice and the state
	// stays reachable from the per-shard root for checkpointing.
	oooMsgs int64
	handled int64

	// Goroutine/struct pools for the task lifecycle hot path. Both are
	// owned-state in the shard-safety sense: pushed in step's yieldDone
	// branch and popped in startTask/NewTask, which all run in the owning
	// domain's execution context (or the single-threaded barrier). Worker
	// and Task pointer identity never feeds a scheduling decision, so
	// recycling cannot perturb determinism.
	freeWorkers []*taskWorker //simany:derived goroutine pool; parked workers are respawned by restoreParked
	freeTasks   []*Task       //simany:derived allocation pool; recycled identities never reach scheduling

	// Per-shard trace buffer: events emitted while this domain executes
	// (or, inside a barrier, events whose core this domain owns) are
	// appended here lock-free and merged deterministically by
	// Kernel.flushTrace at the next barrier. traceSeq is the per-shard
	// emission order, the merge's tie-break within (VT, Core).
	//simany:derived flushed by Kernel.flushTrace at every barrier, so empty at each checkpoint
	traceBuf []TraceEvent
	traceSeq uint64
}

// deferredItem is one unit of cross-shard traffic: either an architectural
// message to route and handle at the barrier, or an internal operation
// (state mutation on another shard's data). Items are drained in the
// deterministic order (stamp, src, idx) — virtual time first, source core
// for ties, then program order within one source shard.
type deferredItem struct {
	stamp vtime.Time
	src   int32
	idx   int32 // append position within the producing outbox
	isMsg bool
	msg   network.Message
	op    func()
}

func (d *domain) enqueueMsg(msg network.Message) {
	d.outbox = append(d.outbox, deferredItem{
		stamp: msg.Stamp, src: int32(msg.Src),
		idx: int32(len(d.outbox)), isMsg: true, msg: msg,
	})
}

func (d *domain) enqueueOp(src int, stamp vtime.Time, fn func()) {
	d.outbox = append(d.outbox, deferredItem{
		stamp: stamp, src: int32(src),
		idx: int32(len(d.outbox)), op: fn,
	})
}

// runnable reports whether core c can be scheduled now, and the virtual
// time key used to prioritize it.
func (d *domain) runnable(c *Core) (vtime.Time, bool) {
	k := d.k
	if c.current != nil {
		if k.effVerify {
			// The differential oracle: every settled look at a stalled
			// core's horizon cross-checks the lazy reconstruction of its
			// neighborhood against the authoritative eager proxies.
			d.verifyEff(c)
		}
		// Stalled mid-task: runnable when the horizon has moved past the
		// core's clock.
		if c.vt <= k.policy.Horizon(c) {
			return c.vt, true
		}
		return 0, false
	}
	if len(c.conts) == 0 && len(c.ready) == 0 {
		return 0, false
	}
	// Picking a task may move the clock forward (to the task's stamp);
	// starting is always allowed — the first block boundary enforces the
	// drift.
	key := c.vt
	if c.idle {
		key = c.minReadyArrival()
		if len(c.conts) > 0 && c.conts[0].resume < key {
			// The next task to run would be the head continuation, not the
			// earliest one — the queue is FIFO — but any queued stamp is a
			// valid wake-up key and the head is the cheapest O(1) choice,
			// matching the reference kernel.
			key = c.conts[0].resume
		}
	}
	return key, true
}

// scanRunnable is the reference scheduling decision: a linear scan over
// the domain's cores for the runnable core with the lowest virtual-time
// key not exceeding limit (ties broken by core ID), plus the count of
// runnable cores within the limit. It is the semantic definition the
// indexed queue must reproduce — kernels without an index schedule through
// it directly, and SchedVerify replays it after every indexed pick.
func (d *domain) scanRunnable(limit vtime.Time) (best *Core, bestKey vtime.Time, count int) {
	bestKey = vtime.Inf
	for _, c := range d.cores {
		key, ok := d.runnable(c)
		if !ok || key > limit {
			continue
		}
		count++
		if best == nil || key < bestKey {
			best = c
			bestKey = key
		}
	}
	return best, bestKey, count
}

// pickCore selects the runnable core with the lowest virtual-time key not
// exceeding limit (deterministic; ties broken by core ID): an O(1) peek
// at the indexed runnable queue when the domain has one, the reference
// scan otherwise. It also samples how many cores were simultaneously
// runnable — the quantity behind the paper's §VIII observation that
// spatial synchronization leaves enough independently simulatable cores
// to keep a multi-core host busy.
func (d *domain) pickCore(limit vtime.Time) *Core {
	var best *Core
	var key vtime.Time
	var runnable int
	switch {
	case d.rq == nil:
		best, key, runnable = d.scanRunnable(limit)
	case d.k.effLazy:
		// Lazy evaluation: stalled cores live in the secondary heap and
		// their horizons are evaluated on demand (efflazy.go).
		best, key, runnable = d.pickLazy(limit)
		if d.k.schedVerify {
			d.verifyPick(limit, best, key, runnable)
		}
	default:
		best, runnable = d.rq.pick(limit)
		if best != nil {
			key = best.schedKey
		}
		if d.k.schedVerify {
			d.verifyPick(limit, best, key, runnable)
		}
	}
	if best != nil {
		d.runnableSamples++
		d.runnableSum += int64(runnable)
		if runnable > d.runnableMax {
			d.runnableMax = runnable
		}
		if d.k.onPick != nil {
			d.k.onPick(best, key)
		}
	}
	return best
}

// step schedules one task segment on core c.
func (d *domain) step(c *Core) {
	k := d.k
	k.steps.Add(1)
	d.stepsTotal++
	// While the step runs, c's clock, queues and current task are in
	// flux; its index entry is settled by the schedUpdate at the end,
	// before the domain consults the queue again. The runq tolerates the
	// transient (it orders by the cached schedKey), but the stall heap
	// orders by the live clock, so c leaves it for the duration: mid-step
	// sifts of other cores must never compare against a moving key.
	d.stepping = c
	if d.sq != nil && c.stallPos >= 0 {
		d.sq.remove(c)
	}
	t := c.current
	switch {
	case t != nil:
		// Resume the stalled task in place.
	case len(c.conts) > 0:
		t = c.popCont()
		// Context switch to a joining task resuming execution (§V).
		c.vt = vtime.Max(c.vt, t.resume) + k.ctxSwitchCost
		c.stats.Switches++
		t.state = TaskRunning
		c.current = t
		k.emit(TraceTaskResume, c.vt, c.ID, t, 0)
	default:
		t = c.popReady()
		// Starting a task costs 10 cycles in addition to the transit time
		// of the spawn message (§V).
		c.vt = vtime.Max(c.vt, t.arrival) + k.taskStartCost
		c.stats.TaskStarts++
		t.state = TaskRunning
		c.current = t
		k.emit(TraceTaskStart, c.vt, c.ID, t, 0)
		if k.onTaskStart != nil {
			k.onTaskStart(c, t)
		}
	}
	if c.idle {
		c.idle = false
		d.busy++
	}
	d.effSite(c)

	// Hand control to the task's worker goroutine until it yields.
	t.env.horizon = k.horizonFor(c)
	if !t.started {
		t.started = true
		d.startTask(t)
	} else {
		t.cont <- struct{}{}
	}
	y := <-d.yieldCh

	switch y.kind {
	case yieldDone:
		t.state = TaskDone
		t.endVT = c.vt
		c.current = nil
		d.live--
		if c.vt > d.maxTime {
			d.maxTime = c.vt
		}
		k.emit(TraceTaskEnd, c.vt, c.ID, t, 0)
		d.releaseWorker(t)
	case yieldBlocked:
		t.state = TaskBlocked
		d.blocked[t.ID] = t
		c.current = nil
		k.emit(TraceTaskBlock, c.vt, c.ID, t, 0)
	case yieldStalled:
		// c.current stays set; the task resumes in place later.
		k.emit(TraceTaskStall, c.vt, c.ID, t, 0)
	}
	if c.current == nil && len(c.conts) == 0 && len(c.ready) == 0 {
		c.idle = true
		d.busy--
	}
	d.effSite(c)
	d.stepping = nil
	d.schedUpdate(c)
}

// startTask hands a fresh task its first execution slice: on a parked
// worker from the domain's free pool (LIFO, for cache warmth) when one is
// available, on a newly spawned worker otherwise.
func (d *domain) startTask(t *Task) {
	if n := len(d.freeWorkers); n > 0 {
		w := d.freeWorkers[n-1]
		d.freeWorkers[n-1] = nil
		d.freeWorkers = d.freeWorkers[:n-1]
		w.task = t
		t.worker = w
		t.cont = w.cont
		// The worker is parked in (or en route to) <-w.cont; the unbuffered
		// send both wakes it and orders the w.task write above.
		w.cont <- struct{}{}
		return
	}
	w := &taskWorker{cont: make(chan struct{}), task: t}
	t.worker = w
	t.cont = w.cont
	go w.loop()
}

// releaseWorker returns a finished task's worker to the pool and, if the
// task opted in via ReleaseOnDone, recycles its struct too. References held
// by the retired struct (body closure, Meta payload) are dropped so the
// pool never pins user data. Runs in the yieldDone branch of step — the
// owning domain's execution context.
func (d *domain) releaseWorker(t *Task) {
	d.freeWorkers = append(d.freeWorkers, t.worker)
	if t.release {
		*t = Task{}
		d.freeTasks = append(d.freeTasks, t)
	}
}

// updateEff recomputes c's advertised effective time and propagates shadow
// updates through idle neighbors until a fixpoint, as idle cores relay
// virtual-time updates in the paper (§II.A "Non-connected sets of active
// cores"). Propagation never crosses the domain boundary: proxies held for
// cores of other shards stay frozen between barriers (the sharded engine
// refreshes them globally at each barrier), which is exactly the bounded
// staleness the round quantum accounts for.
func (d *domain) updateEff(c *Core) {
	k := d.k
	if d.busy == 0 {
		// No anchor: idle-only shadow chains have no fixpoint (each relay
		// adds T), so everyone advertises Inf until a core wakes up. No
		// runnable-index invalidation is needed here: with every owned
		// core idle there are no stalled cores, and an idle core's
		// runnable key never depends on effective times.
		if d.allIdleInf {
			// The broadcast already ran (or the machine never woke this
			// domain): every owned core and its local mirrors advertise
			// Inf, so rescanning them would be a pure no-op. This keeps
			// repeated all-idle calls O(1) instead of O(owned cores).
			return
		}
		d.allIdleInf = true
		for _, cc := range d.cores {
			if cc.eff != vtime.Inf {
				cc.eff = vtime.Inf
				for _, nbID := range cc.neighbors {
					nb := k.cores[nbID]
					if nb.dom != d {
						continue
					}
					for j, nid := range nb.neighbors {
						if nid == cc.ID {
							nb.nbEff[j] = vtime.Inf
							break
						}
					}
				}
			}
		}
		return
	}
	d.allIdleInf = false
	d.inProp = true
	// The worklist is domain scratch drained through a cursor, so the
	// backing array is reused across calls instead of creeping forward.
	d.propQueue = append(d.propQueue[:0], c.ID)
	for head := 0; head < len(d.propQueue); head++ {
		cc := k.cores[d.propQueue[head]]
		var eff vtime.Time
		if cc.idle {
			eff = k.policy.IdleTime(cc)
		} else {
			eff = cc.vt
		}
		if eff == cc.eff {
			continue
		}
		cc.eff = eff
		for _, nbID := range cc.neighbors {
			nb := k.cores[nbID]
			if nb.dom != d {
				continue
			}
			// Update the proxy this neighbor keeps for cc.
			for j, nid := range nb.neighbors {
				if nid == cc.ID {
					if nb.nbEff[j] != eff {
						nb.nbEff[j] = eff
						if nb.current != nil {
							// A moved proxy moves the stalled neighbor's
							// horizon, which is the one runnability input
							// not covered by queue or step updates.
							d.schedUpdate(nb)
						}
						if nb.idle {
							d.propQueue = append(d.propQueue, nbID)
						}
					}
					break
				}
			}
		}
	}
	d.inProp = false
}
