package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"simany/internal/cache"
	"simany/internal/metrics"
	"simany/internal/network"
	"simany/internal/rng"
	"simany/internal/snap"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// MemSystem is the memory hierarchy consulted by Env.Read/Env.Write.
// Implementations live in internal/mem (SiMany's abstract models) and
// internal/cyclelevel (the detailed reference models).
type MemSystem interface {
	// Access performs n accesses of elem bytes at base by core c at
	// virtual time now and returns the virtual delay to charge the core.
	Access(c *Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time
}

// NullMem charges nothing for memory accesses; useful for pure-compute
// tests.
type NullMem struct{}

// Access implements MemSystem.
func (NullMem) Access(*Core, uint64, int64, int, bool, vtime.Time) vtime.Time { return 0 }

// ShardSafe implements ShardSafeMem: NullMem is stateless.
func (NullMem) ShardSafe() bool { return true }

// MemStateless implements StatelessMem: NullMem carries no mutable state,
// so decode-mode checkpoints need nothing from it.
func (NullMem) MemStateless() bool { return true }

// ShardSafeMem is implemented by memory systems whose Access method only
// mutates state owned by the accessing core (its L1/L2), making them safe
// to drive from concurrent shard workers. Memory systems that do not
// implement it (or return false) force the kernel onto the sequential
// engine regardless of Config.Shards.
type ShardSafeMem interface {
	ShardSafe() bool
}

// Handler processes an architectural message arriving at msg.Dst. Handlers
// run synchronously at send time, operate on virtual timestamps only and
// must not block.
type Handler func(k *Kernel, msg network.Message)

// Config assembles a simulated machine.
type Config struct {
	// Topo is the interconnection network. Required.
	Topo *topology.Topology
	// NetParams tunes the network model.
	NetParams network.Params
	// Policy is the synchronization scheme. Defaults to Spatial{T: 100
	// cycles}, the paper's reference configuration.
	Policy Policy
	// CostModel prices instruction classes; defaults to timing.PPC405.
	CostModel *timing.CostModel
	// Predict builds the per-core branch predictor; defaults to the
	// paper's 90% probabilistic predictor.
	Predict func(coreID int, seed int64) timing.Predictor
	// Mem is the memory system; defaults to NullMem.
	Mem MemSystem
	// Speeds gives per-core computing-power factors (nil = homogeneous
	// 1.0).
	Speeds []float64
	// TaskStartCost is the overhead of starting a task on a core (10
	// cycles in §V), in addition to the spawn-message transit time.
	TaskStartCost vtime.Time
	// CtxSwitchCost is the cost of switching to a joining task resuming
	// execution (15 cycles in §V).
	CtxSwitchCost vtime.Time
	// Seed makes the run reproducible.
	Seed int64
	// MaxSteps aborts runaway simulations (0 = no limit).
	MaxSteps int64
	// Tracer, when set, receives simulator trace events (see TraceEvent).
	// Tracing is shard-safe: on the sharded engine events are buffered per
	// shard and merged deterministically at each virtual-time barrier, so a
	// tracer never forces the sequential engine.
	Tracer Tracer
	// Metrics, when set, attaches a registry of deterministic simulator
	// instruments (per-link contention waits, message latency, barrier
	// stall time, drift spread; see docs/observability.md). The kernel
	// widens the registry to one stripe per shard, so updates from
	// concurrent shard workers stay lock-free and the merged snapshot is
	// identical at every worker count.
	Metrics *metrics.Registry

	// Shards partitions the topology into contiguous regions, each driven
	// by its own local scheduling loop with cross-shard traffic exchanged
	// at deterministic barriers. Shards defines the event semantics: for a
	// fixed seed and shard count the Result is identical regardless of
	// Workers or host scheduling. Shards=1 (the default, also used when 0)
	// reproduces the original sequential kernel bit-for-bit. Values above
	// the core count are clamped. Sharding silently falls back to the
	// sequential engine when the policy or the memory system is not
	// shard-safe (tracers and metrics are shard-safe; see Tracer).
	Shards int
	// Workers is the number of host threads driving the shards
	// (0 = runtime.NumCPU(), capped at Shards). Workers only adds host
	// parallelism; it never changes the Result.
	Workers int
	// ShardQuantum bounds how far cores may be scheduled past the global
	// minimum virtual time within one shard round (0 = 8×T for the
	// spatial policy, 8×DefaultT otherwise). Smaller quanta tighten the
	// cross-shard drift at the price of more barriers.
	ShardQuantum vtime.Time

	// Sched selects the scheduling implementation (see SchedMode): the
	// default SchedAuto indexes the runnable cores in a per-domain
	// min-heap whenever the policy's horizon is cacheable
	// (CacheableHorizonPolicy), SchedScan forces the reference linear
	// scan, and SchedVerify runs both side by side and panics on any
	// divergence. The choice never affects results — pick order, traces
	// and statistics are bit-for-bit identical either way (docs/scheduler.md).
	Sched SchedMode

	// Eff selects how idle-region effective times are evaluated (see
	// EffMode): the default EffAuto computes idle shadow times lazily
	// from the busy frontier whenever the policy supports it
	// (IdleRelayPolicy), EffEager forces the reference per-completion
	// propagation flood, and EffVerify runs the flood and cross-checks
	// every lazy computation against it. Like Sched, the choice never
	// affects results and is excluded from the checkpoint fingerprint
	// (docs/effective-time.md).
	Eff EffMode
}

// DefaultT is the paper's reference maximum local drift (100 cycles).
//
//lint:allow snapshotsafe immutable configuration default, read only at kernel construction
var DefaultT = vtime.CyclesInt(100)

// Kernel is the discrete-event simulator.
type Kernel struct {
	cores []*Core //simany:derived serialized through their owning domains, reattached on decode
	//simany:derived immutable topology, reconstructed by New from Config
	topo *topology.Topology
	net  *network.Model
	//simany:derived scheduling policy is stateless configuration, reinstated by New
	policy Policy
	mem    MemSystem
	//simany:derived registered handler table (configuration), repopulated before Run
	handlers map[network.Kind]Handler
	//simany:derived setup-time stream only: simulation draws come from per-core rng.Rand state
	rng *rand.Rand

	taskStartCost vtime.Time //simany:derived immutable cost configuration from Config
	ctxSwitchCost vtime.Time //simany:derived immutable cost configuration from Config

	// Execution engine state: the machine is split into one or more
	// domains (shards). The sequential engine uses a single domain; the
	// sharded engine runs the domains on worker goroutines between
	// deterministic barriers (see shard.go).
	domains []*domain
	//simany:derived partition map, recomputed by setupEngine from (topology, shards)
	part    []int // core ID -> domain index
	sharded bool
	workers int        //simany:derived engine configuration, reinstated by New
	quantum vtime.Time //simany:derived engine configuration, reinstated by New
	//simany:derived transient: checkpoints only happen outside barriers
	inBarrier bool
	//simany:derived locality table, recomputed by setupEngine (nil if not precomputed)
	pairLocal []bool // n×n: route stays inside one shard

	// Scheduler selection (sched.go): schedIndexed arms the per-domain
	// runnable queues, schedVerify additionally replays the reference
	// scan after every indexed decision. onPick, when set, observes every
	// scheduling decision (test hook; called from the worker driving the
	// picked core's domain).
	schedIndexed bool //simany:derived scheduler-mode configuration, reinstated by New
	schedVerify  bool //simany:derived scheduler-mode configuration, reinstated by New
	onPick       func(c *Core, key vtime.Time)

	// Effective-time evaluation (efflazy.go): effLazy arms the lazy
	// idle-region machinery, effVerify runs the eager flood as the source
	// of truth and cross-checks every lazy computation against it, and
	// relayDelta caches the policy's per-hop relay increment. inRefresh
	// gates the verify hook while the barrier relaxation is mid-flight.
	effLazy    bool       //simany:derived eff-mode configuration, reinstated by New
	effVerify  bool       //simany:derived eff-mode configuration, reinstated by New
	relayDelta vtime.Time //simany:derived policy-derived configuration, reinstated by New
	inRefresh  bool       //simany:derived transient: checkpoints only happen outside refreshEff
	lmDist     [][]int32  //simany:derived landmark hop-distance tables, rebuilt by setupEff from the topology

	// Barrier scratch buffers, reused across rounds: the merged deferred
	// items drained at each barrier and the worklist of the global
	// effective-time relaxation.
	barrierItems []deferredItem //simany:derived barrier scratch, empty between rounds
	effQueue     []int          //simany:derived relaxation scratch, empty between rounds

	steps atomic.Int64
	//simany:derived step budget from Config, reinstated by New
	maxSteps int64

	panicMu sync.Mutex
	//simany:derived a panicked kernel refuses Checkpoint; always nil when one is taken
	taskPanic error

	// Checkpoint machinery (snapshot.go). barriers counts completed
	// sharded rounds; the engine position is barriers on the sharded
	// engine and the step count on the sequential one. stopAfter, when
	// non-zero, pauses the engine (Run returns ErrPaused) once the
	// position reaches it; paused records that the kernel sits at such a
	// quiescent point, the only state where Checkpoint is legal. resume
	// holds a parsed checkpoint armed by ArmResume, consumed by the next
	// Run. fprint is the configuration fingerprint embedded in
	// checkpoint files.
	barriers  int64
	stopAfter int64
	paused    bool
	resume    *snap.Container
	fprint    uint64
	// taskCodec serializes task bodies/meta for the layer that owns them
	// (SetTaskCodec); extSnaps are externally registered checkpoint
	// sections (RegisterSnapshot), written in registration order.
	taskCodec TaskCodec
	extSnaps  []namedSnap

	// bcheck, when non-nil, arms continuous barrier validation (see
	// barriercheck.go). diam caches Topology.Diameter (-2 = not computed).
	bcheck *barrierCheck //simany:derived validation harness, re-armed by EnableBarrierValidation
	diam   int           //simany:derived cached Topology.Diameter, lazily recomputed (-2 = unset)

	// demotion records why a requested sharded configuration fell back to
	// the sequential engine ("" = no demotion); see DemotionNotice.
	//simany:derived recomputed by setupEngine from the same Config
	demotion string
	// clamp records that the requested shard count exceeded the core
	// count and was reduced ("" = no clamp); see ClampNotice. Before this
	// existed the clamp was silent, and the reported shard count could
	// disagree with what the user asked for with no explanation.
	//simany:derived recomputed by setupEngine from the same Config
	clamp string

	// onTaskStart, when set, runs right after a fresh task is popped from
	// a core's queue (the task runtime broadcasts queue occupancy here).
	onTaskStart func(c *Core, t *Task)

	tracer   Tracer
	traceSeq uint64
	// traceMerge is the scratch slice flushTrace reuses to merge the
	// per-shard trace buffers at each barrier.
	//
	//simany:derived merge scratch, contents dead between flushTrace calls
	traceMerge []TraceEvent

	// met, when non-nil, holds the kernel's standard instruments in the
	// attached metrics registry (see metrics.go).
	met *kernelMetrics
}

// splitmix64 is the SplitMix64 finalizer, used to decorrelate per-core
// random streams derived from a single user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fingerprint hashes the configuration fields that define the simulation's
// event semantics. A checkpoint is only resumable into a kernel with the
// same fingerprint; Workers and Sched are deliberately excluded because
// they never affect results.
func fingerprint(cfg Config) uint64 {
	h := splitmix64(uint64(cfg.Seed))
	mix := func(v uint64) { h = splitmix64(h ^ v) }
	mix(uint64(cfg.Topo.N()))
	// Mix the *effective* shard count, clamped exactly as setupEngine
	// clamps it: Shards=200 on a 64-core machine and Shards=64 produce
	// identical partitions and must produce interchangeable checkpoints —
	// previously the raw value was mixed and the fingerprints disagreed.
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Topo.N() {
		shards = cfg.Topo.N()
	}
	mix(uint64(shards))
	// The topology's shape and link parameters define routes and message
	// timing; the name covers the shape for the bundled flat constructors,
	// and hierarchical topologies additionally mix every tier's mesh
	// dimensions, link parameters and boundary penalty.
	for _, b := range []byte(cfg.Topo.Name()) {
		mix(uint64(b))
	}
	if hier := cfg.Topo.Hierarchy(); hier != nil {
		for _, tr := range hier.Tiers {
			mix(uint64(tr.W))
			mix(uint64(tr.H))
			//lint:allow rawvtime fingerprint hashing of tier link-latency configuration
			mix(uint64(tr.Lat))
			mix(uint64(tr.BW))
			//lint:allow rawvtime fingerprint hashing of tier boundary-penalty configuration
			mix(uint64(tr.Penalty))
		}
	}
	mix(uint64(cfg.MaxSteps))
	//lint:allow rawvtime fingerprint hashing: the millicycle values are mixed into a hash, never used as times
	mix(uint64(cfg.TaskStartCost))
	//lint:allow rawvtime fingerprint hashing of a configured cost constant
	mix(uint64(cfg.CtxSwitchCost))
	//lint:allow rawvtime fingerprint hashing of a configured quantum constant
	mix(uint64(cfg.ShardQuantum))
	for _, b := range []byte(cfg.Policy.Name()) {
		mix(uint64(b))
	}
	if sp, ok := cfg.Policy.(Spatial); ok {
		//lint:allow rawvtime fingerprint hashing of the policy's drift bound constant
		mix(uint64(sp.T))
	}
	for _, s := range cfg.Speeds {
		mix(uint64(int64(s * 1e6)))
	}
	return h
}

// New builds a kernel from a configuration.
func New(cfg Config) *Kernel {
	if cfg.Topo == nil {
		panic("core: Config.Topo is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = Spatial{T: DefaultT}
	}
	if cfg.CostModel == nil {
		cfg.CostModel = timing.PPC405()
	}
	if cfg.Predict == nil {
		rate := cfg.CostModel.PredictRate
		cfg.Predict = func(coreID int, seed int64) timing.Predictor {
			return timing.NewProbabilisticPredictor(rate, seed+int64(coreID))
		}
	}
	if cfg.Mem == nil {
		cfg.Mem = NullMem{}
	}
	if cfg.NetParams.ChunkSize == 0 {
		cfg.NetParams = network.DefaultParams()
	}
	if cfg.TaskStartCost == 0 {
		cfg.TaskStartCost = vtime.CyclesInt(10)
	}
	if cfg.CtxSwitchCost == 0 {
		cfg.CtxSwitchCost = vtime.CyclesInt(15)
	}
	n := cfg.Topo.N()
	k := &Kernel{
		topo:          cfg.Topo,
		net:           network.New(cfg.Topo, cfg.NetParams),
		policy:        cfg.Policy,
		mem:           cfg.Mem,
		handlers:      make(map[network.Kind]Handler),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		taskStartCost: cfg.TaskStartCost,
		ctxSwitchCost: cfg.CtxSwitchCost,
		maxSteps:      cfg.MaxSteps,
		tracer:        cfg.Tracer,
		diam:          -2,
	}
	k.fprint = fingerprint(cfg)
	// Per-core state is carved out of flat backing arrays — the Core
	// structs themselves, their timing machinery, and the neighbor
	// effective-time proxies — so a 100k-core machine costs a handful of
	// large allocations instead of ~6 heap objects per core.
	k.cores = make([]*Core, n)
	backing := make([]Core, n)
	timers := make([]timing.BlockTimer, n)
	l1s := make([]cache.Scoped, n)
	l2s := make([]cache.L2, n)
	nbEffFlat := make([]vtime.Time, cfg.Topo.NumLinks())
	for i := range nbEffFlat {
		nbEffFlat[i] = vtime.Inf
	}
	off := 0
	for i := 0; i < n; i++ {
		speed := 1.0
		if cfg.Speeds != nil {
			if len(cfg.Speeds) != n {
				panic("core: Speeds length must match core count")
			}
			speed = cfg.Speeds[i]
			if speed <= 0 {
				panic("core: non-positive core speed")
			}
		}
		timers[i] = *timing.NewBlockTimer(cfg.CostModel, cfg.Predict(i, cfg.Seed))
		l1s[i] = *cache.NewScoped(cache.DefaultLineSize)
		l2s[i] = *cache.NewL2(cache.DefaultLineSize)
		c := &backing[i]
		*c = Core{
			ID:         i,
			Speed:      speed,
			k:          k,
			idle:       true,
			eff:        vtime.Inf,
			neighbors:  cfg.Topo.Neighbors(i),
			timer:      &timers[i],
			l1:         &l1s[i],
			l2:         &l2s[i],
			birthCache: vtime.Inf,
			readyMin:   vtime.Inf,
			contsMin:   vtime.Inf,
			schedPos:   -1,
			busyPos:    -1,
			stallPos:   -1,
			rng:        *rng.New(splitmix64(uint64(cfg.Seed) ^ uint64(i))),
		}
		deg := len(c.neighbors)
		c.nbEff = nbEffFlat[off : off+deg : off+deg]
		off += deg
		k.cores[i] = c
	}
	k.setupEngine(cfg)
	return k
}

// setupEngine resolves the Shards/Workers knobs, checks shard safety, and
// builds the execution domains.
func (k *Kernel) setupEngine(cfg Config) {
	n := len(k.cores)
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
		k.clamp = fmt.Sprintf("core: requested %d shards clamped to %d (one shard per core maximum)", cfg.Shards, n)
	}
	if shards > 1 {
		if reason := k.shardUnsafeReason(cfg); reason != "" {
			shards = 1
			k.demotion = reason
		}
	}
	k.sharded = shards > 1

	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > shards {
		workers = shards
	}
	k.workers = workers

	k.quantum = cfg.ShardQuantum
	if k.quantum <= 0 {
		t := DefaultT
		if sp, ok := k.policy.(Spatial); ok && sp.T > 0 {
			t = sp.T
		}
		k.quantum = 8 * t
	}

	k.part = topology.PartitionFor(k.topo, shards)
	k.net.SetStripes(shards, k.part)
	k.domains = make([]*domain, shards)
	for s := 0; s < shards; s++ {
		k.domains[s] = &domain{
			k:       k,
			id:      s,
			yieldCh: make(chan yieldInfo),
			blocked: make(map[uint64]*Task),
			limit:   vtime.Inf,
			// Lazy effective-time bookkeeping starts at the all-idle
			// machine: no anchors, infinite floors, epoch 1 so the zero
			// memo stamps are stale (efflazy.go).
			effEpoch:    1,
			shapeEpoch:  1,
			effFloor:    vtime.Inf,
			frozenFloor: vtime.Inf,
			allIdleInf:  true,
		}
	}
	for i, c := range k.cores {
		d := k.domains[k.part[i]]
		c.dom = d
		d.cores = append(d.cores, c)
	}
	k.setupEff(cfg.Eff)
	k.setupScheduler(cfg.Sched)
	if k.effLazy {
		// Valid idle-neighbor counts from the start: Validate may run on a
		// kernel that has never entered an engine loop.
		for _, d := range k.domains {
			d.rebuildIdleNb()
		}
	}
	if k.sharded {
		k.buildPairLocal()
	}
	if cfg.Metrics != nil {
		k.met = newKernelMetrics(cfg.Metrics, shards)
		k.net.SetObserver(netObserver{k})
	}
}

// setupScheduler resolves Config.Sched against the policy's capabilities
// and arms the per-domain runnable queues. Indexing requires a cacheable
// horizon (CacheableHorizonPolicy): the reference scan re-evaluates
// Horizon for every stalled core at every decision, so a horizon that
// reads global machine state or has side effects (RNG draws, metric
// probes) can only be reproduced by keeping the scan.
func (k *Kernel) setupScheduler(mode SchedMode) {
	cacheable := false
	if p, ok := k.policy.(CacheableHorizonPolicy); ok && p.HorizonCacheable() {
		cacheable = true
	}
	k.schedIndexed = cacheable && mode != SchedScan
	k.schedVerify = cacheable && mode == SchedVerify
	if !k.schedIndexed {
		return
	}
	for _, d := range k.domains {
		d.rq = newRunq(d)
		if k.effLazy {
			// Lazy effective times leave stalled cores' horizons without
			// invalidation callbacks; they are indexed in a secondary
			// (vt, ID) heap and evaluated on demand (efflazy.go).
			d.sq = &stallq{}
		}
	}
}

// schedRebuild recomputes every domain's runnable queue from scratch.
// Run() calls it once before entering an engine loop; all maintenance
// after that is incremental.
func (k *Kernel) schedRebuild() {
	for _, d := range k.domains {
		if k.effLazy {
			// The idle-neighbor counts route stalled cores between the
			// two heaps, so they must be exact before either rebuild.
			d.rebuildIdleNb()
		}
		if d.rq != nil {
			d.rq.rebuild()
			if k.effLazy {
				d.rebuildStallq()
			}
		}
	}
}

// Scheduler names the active scheduling implementation: "index",
// "index+verify" or "scan".
func (k *Kernel) Scheduler() string {
	switch {
	case k.schedVerify:
		return "index+verify"
	case k.schedIndexed:
		return "index"
	default:
		return "scan"
	}
}

// shardUnsafeReason reports why the configuration cannot run sharded, or
// "" when every component tolerates sharded execution: the policy must
// make purely local decisions and the memory system must only mutate
// core-owned state. Tracers are shard-safe (per-shard buffers merged at
// barriers) and never gate the engine.
func (k *Kernel) shardUnsafeReason(cfg Config) string {
	p, ok := k.policy.(ShardLocalPolicy)
	if !ok || !p.ShardLocal() {
		return fmt.Sprintf("policy %q does not make shard-local decisions", k.policy.Name())
	}
	m, ok := k.mem.(ShardSafeMem)
	if !ok || !m.ShardSafe() {
		return "the memory system is not shard-safe"
	}
	return ""
}

// buildPairLocal precomputes, for every (src,dst) pair, whether the
// network route stays inside a single shard, so intra-shard messages can
// be delivered synchronously without touching another shard's link state.
func (k *Kernel) buildPairLocal() {
	n := len(k.cores)
	if n > 4096 {
		return // fall back to per-send route walks
	}
	k.pairLocal = make([]bool, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			k.pairLocal[src*n+dst] = k.net.RouteWithin(src, dst, k.part)
		}
	}
}

// localDelivery reports whether a message can be routed and handled
// synchronously by the shard that owns both endpoints.
func (k *Kernel) localDelivery(src, dst int) bool {
	if k.pairLocal != nil {
		return k.pairLocal[src*len(k.cores)+dst]
	}
	return k.net.RouteWithin(src, dst, k.part)
}

// Core returns core i.
func (k *Kernel) Core(i int) *Core { return k.cores[i] }

// NumCores returns the machine size.
func (k *Kernel) NumCores() int { return len(k.cores) }

// Topology returns the interconnect topology.
func (k *Kernel) Topology() *topology.Topology { return k.topo }

// Network returns the interconnect model.
func (k *Kernel) Network() *network.Model { return k.net }

// Policy returns the active synchronization policy.
func (k *Kernel) Policy() Policy { return k.policy }

// Rand returns the kernel's deterministic random source. It is safe for
// pre-run setup only; simulated code must draw from Core.Rand so results
// stay independent of host scheduling.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// CtxSwitchCost returns the configured context-switch overhead.
func (k *Kernel) CtxSwitchCost() vtime.Time { return k.ctxSwitchCost }

// Sharded reports whether the kernel runs on the sharded parallel engine.
func (k *Kernel) Sharded() bool { return k.sharded }

// NumShards returns the number of execution domains (1 on the sequential
// engine).
func (k *Kernel) NumShards() int { return len(k.domains) }

// Workers returns the number of host threads driving the shards.
func (k *Kernel) Workers() int { return k.workers }

// ShardOf returns the shard owning core i.
func (k *Kernel) ShardOf(i int) int { return k.part[i] }

// SameShard reports whether cores a and b belong to the same shard (always
// true on the sequential engine).
func (k *Kernel) SameShard(a, b int) bool { return k.part[a] == k.part[b] }

// Handle registers the handler for a message kind. Registering twice for
// the same kind panics: message kinds are owned by exactly one layer.
func (k *Kernel) Handle(kind network.Kind, h Handler) {
	if _, dup := k.handlers[kind]; dup {
		panic(fmt.Sprintf("core: duplicate handler for message kind %d", kind))
	}
	k.handlers[kind] = h
}

// send routes a message toward its destination. On the sequential engine —
// and for sharded execution whenever source, destination and the full
// route share one shard — the destination handler runs synchronously and
// the returned message carries its arrival time. A cross-shard message is
// deferred to the next barrier instead, where it is routed and handled in
// deterministic (stamp, source) order; its return value then reports no
// arrival time (the stamps embedded in handler replies carry the timing).
func (k *Kernel) send(msg network.Message) network.Message {
	if k.sharded && !k.inBarrier && !k.localDelivery(msg.Src, msg.Dst) {
		k.domains[k.part[msg.Src]].enqueueMsg(msg)
		return msg
	}
	return k.sendNow(msg)
}

// sendNow routes a message and immediately runs the destination handler.
// It always executes in the context of the shard owning the full route
// (intra-shard deliveries run on that shard's worker, cross-shard ones
// inside the single-threaded barrier), so the per-destination arrival
// bookkeeping and the per-shard handled counters need no atomics.
func (k *Kernel) sendNow(msg network.Message) network.Message {
	msg = k.net.Send(msg)
	k.cores[msg.Src].stats.MsgsSent++
	h, ok := k.handlers[msg.Kind]
	if !ok {
		panic(fmt.Sprintf("core: no handler for message kind %d", msg.Kind))
	}
	dst := k.cores[msg.Dst]
	dst.dom.handled++
	if msg.Arrival < dst.lastHandled {
		dst.dom.oooMsgs++
	} else {
		dst.lastHandled = msg.Arrival
	}
	if k.tracer != nil {
		k.emit(TraceSend, msg.Stamp, msg.Src, nil, int64(msg.Dst))
		k.emit(TraceHandle, msg.Arrival, msg.Dst, nil, int64(msg.Src))
	}
	if k.met != nil {
		// Striped by the source's shard: intra-shard deliveries run on the
		// worker driving that shard, cross-shard ones in the barrier.
		k.met.msgLatency.ObserveTime(k.part[msg.Src], msg.Arrival-msg.Stamp)
	}
	h(k, msg)
	return msg
}

// SendAt emits a message on behalf of core src at an explicit stamp; used
// by handlers to reply (stamp = arrival + handling cost).
func (k *Kernel) SendAt(src, dst int, kind network.Kind, size int, payload any, stamp vtime.Time) network.Message {
	return k.send(network.Message{
		Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload, Stamp: stamp,
	})
}

// Defer schedules fn to run at the next shard barrier, in deterministic
// (stamp, src) order relative to all other deferred work. src must be a
// core of the shard executing the calling code — the shard whose outbox
// receives the item. On the sequential engine (and inside a barrier) fn
// runs immediately. Layers above the kernel use Defer to mutate state
// owned by another shard without racing its worker.
//
//simany:arbiter
func (k *Kernel) Defer(src int, stamp vtime.Time, fn func()) {
	if !k.sharded || k.inBarrier {
		fn()
		return
	}
	k.domains[k.part[src]].enqueueOp(src, stamp, fn)
}

// NewTask allocates a task executing fn on behalf of spawner (the core in
// whose shard context the caller runs — for setup-time creation, the core
// the task will be placed on). The task is not yet placed; use PlaceTask
// (or InjectTask for simulation entry points).
//
// IDs encode (per-spawner sequence, spawner): unique across cores, and —
// because each per-core counter is only advanced from its own shard's
// execution context — deterministic at every worker count, so task IDs in
// trace streams are stable. Their numeric order is still not meaningful
// under sharded execution.
//
// The struct comes from the spawner's domain pool when a ReleaseOnDone
// task has retired there (fully reset under the new identity); pool reuse
// never influences scheduling, so recycled and fresh tasks behave
// identically.
func (k *Kernel) NewTask(spawner int, name string, fn func(*Env), meta any) *Task {
	c := k.cores[spawner]
	c.taskSeq++
	id := c.taskSeq*uint64(len(k.cores)) + uint64(spawner) + 1
	d := c.dom
	if n := len(d.freeTasks); n > 0 {
		t := d.freeTasks[n-1]
		d.freeTasks[n-1] = nil
		d.freeTasks = d.freeTasks[:n-1]
		t.ID, t.Name, t.Meta, t.fn = id, name, meta, fn
		return t
	}
	return &Task{ID: id, Name: name, Meta: meta, fn: fn}
}

// PlaceTask queues task t on core as a fresh ready task that may start at
// stamp arrival. birthOwner, if non-nil, is the spawning core whose birth
// entry (registered with RegisterBirth) is discarded now that the task has
// arrived at its final destination (§II.A: the run-time system informs the
// parent's core that it can discard the corresponding birth date). The
// birth therefore constrains the parent only across the probe/spawn/
// migration window; removing it any later can produce stall cycles between
// mutually-spawning cores. PlaceTask must run in the context of the shard
// owning coreID (handlers naturally do: they run where the message lands).
func (k *Kernel) PlaceTask(t *Task, coreID int, arrival vtime.Time, birthOwner *Core) {
	c := k.cores[coreID]
	t.core = c
	t.arrival = arrival
	t.state = TaskReady
	t.env = Env{k: k, t: t, c: c}
	c.pushReady(t)
	c.dom.live++
	c.dom.schedUpdate(c)
	if birthOwner != nil {
		if k.sharded && !k.inBarrier && k.part[birthOwner.ID] != k.part[coreID] {
			id := t.ID
			k.Defer(coreID, arrival, func() { k.clearBirth(birthOwner, id) })
		} else {
			k.clearBirth(birthOwner, t.ID)
		}
	}
}

// clearBirth discards a birth entry and re-widens the horizon of whatever
// runs on the spawning core.
func (k *Kernel) clearBirth(c *Core, taskID uint64) {
	c.removeBirth(taskID)
	if c.current != nil {
		c.current.env.horizon = k.horizonFor(c)
		// A widened horizon can make a stalled spawner runnable again.
		c.dom.schedUpdate(c)
	}
}

// horizonFor evaluates the policy horizon for c, capped by the shard round
// limit while a round is in progress (frozen cross-shard proxies are only
// trustworthy up to the round quantum).
func (k *Kernel) horizonFor(c *Core) vtime.Time {
	h := k.policy.Horizon(c)
	if c.dom != nil && h > c.dom.limit {
		h = c.dom.limit
	}
	return h
}

// SetTaskStartHook registers a callback invoked whenever a fresh task is
// popped from a core's queue and starts executing. The task runtime uses it
// to broadcast the core's new queue occupancy to its neighbors (§IV).
func (k *Kernel) SetTaskStartHook(f func(c *Core, t *Task)) { k.onTaskStart = f }

// RegisterBirth records, on spawning core c, the birth stamp of a task
// that has been (or is about to be) placed elsewhere, and immediately
// tightens the horizon of the task currently running on c so the spatial
// drift bound of §II.A (Fig. 3) takes effect mid-block-sequence. The entry
// is discarded automatically when the spawned task starts (PlaceTask's
// birthOwner).
func (k *Kernel) RegisterBirth(c *Core, spawned *Task, stamp vtime.Time) {
	c.addBirth(spawned.ID, stamp)
	if c.current != nil {
		c.current.env.horizon = k.horizonFor(c)
		// A tightened horizon can park a stalled core (defensive: births
		// are normally registered by the core's own running task, whose
		// post-step update settles the entry anyway).
		c.dom.schedUpdate(c)
	}
}

// InjectTask creates and places a root task (simulation entry point).
func (k *Kernel) InjectTask(coreID int, name string, fn func(*Env), meta any, at vtime.Time) *Task {
	t := k.NewTask(coreID, name, fn, meta)
	k.PlaceTask(t, coreID, at, nil)
	return t
}

// Unblock marks a blocked task runnable again from virtual time at. It is
// called by message handlers (e.g. when a reply or join notification
// arrives). Under sharded execution it must run in the context of the
// shard owning the task's core (or inside a barrier); cross-shard wakes go
// through UnblockFrom.
func (k *Kernel) Unblock(t *Task, at vtime.Time) {
	//lint:allow rawvtime TraceEvent.Aux is a kind-discriminated raw int64 payload; TraceUnblock defines it as millicycles
	k.emit(TraceUnblock, at, t.core.ID, t, int64(at))
	switch t.state {
	case TaskBlocked:
		delete(t.core.dom.blocked, t.ID)
		t.state = TaskReady
		t.resume = at
		t.core.pushCont(t)
		t.core.dom.schedUpdate(t.core)
	case TaskRunning:
		// The wake-up raced ahead of the Block call (handlers run
		// synchronously); record it so Block returns immediately.
		if t.pendingWake {
			panic(fmt.Sprintf("core: double Unblock of running task %q", t.Name))
		}
		t.pendingWake = true
		t.resume = at
	default:
		panic(fmt.Sprintf("core: Unblock of task %q in state %d", t.Name, t.state))
	}
}

// UnblockFrom wakes t from virtual time at on behalf of code executing in
// core src's shard. Same-shard (and barrier) wakes apply immediately;
// cross-shard wakes are deferred to the next barrier so only the owning
// shard ever mutates the task's core.
func (k *Kernel) UnblockFrom(src int, t *Task, at vtime.Time) {
	if !k.sharded || k.inBarrier || k.part[src] == k.part[t.core.ID] {
		k.Unblock(t, at)
		return
	}
	k.Defer(src, at, func() { k.Unblock(t, at) })
}

// setPanic records the first task panic (workers may race to report).
func (k *Kernel) setPanic(err error) {
	k.panicMu.Lock()
	if k.taskPanic == nil {
		k.taskPanic = err
	}
	k.panicMu.Unlock()
}

func (k *Kernel) takePanic() error {
	k.panicMu.Lock()
	defer k.panicMu.Unlock()
	return k.taskPanic
}

// ShardStat describes one shard's share of a completed run.
type ShardStat struct {
	// Cores is the number of simulated cores in the shard.
	Cores int
	// Steps is the number of scheduling steps the shard executed.
	Steps int64
	// Util is the shard's share of all scheduling steps — balanced shards
	// approach 1/NumShards each.
	Util float64
}

// Result summarizes a completed simulation.
type Result struct {
	// FinalVT is the program's virtual execution time: the latest task
	// completion time.
	FinalVT vtime.Time
	// Steps is the number of kernel scheduling steps.
	Steps int64
	// Messages, Hops, Bytes are network totals.
	Messages, Hops, Bytes int64
	// OutOfOrder is the number of handler invocations whose arrival stamp
	// preceded an already-handled arrival at the same destination.
	OutOfOrder int64
	// Handled is the total number of handled messages.
	Handled int64
	// Stalls is the total number of policy stalls across cores.
	Stalls int64
	// Instructions is the total annotated instruction count.
	Instructions int64
	// AvgRunnable and MaxRunnable sample how many cores were runnable per
	// scheduling decision: the number of cores a parallel host could
	// simulate concurrently under the active synchronization scheme
	// (§VIII "preliminary study").
	AvgRunnable float64
	MaxRunnable int
	// Shards is the number of execution domains the run used (1 on the
	// sequential engine); PerShard breaks the scheduling work down per
	// shard.
	Shards   int
	PerShard []ShardStat
}

// Run drives the simulation to quiescence: every injected task (and every
// task transitively created) has finished. It returns an error on deadlock
// or when a task panicked.
//
// When a checkpoint has been armed with ArmResume, Run first restores the
// checkpointed state (by direct decode or by verified replay, see
// snapshot.go) and then continues to quiescence. When a pause position has
// been set with PauseAfter, Run returns ErrPaused at the corresponding
// quiescent point instead; the kernel may then be checkpointed and Run
// called again to continue.
func (k *Kernel) Run() (Result, error) {
	if k.resume != nil {
		ck := k.resume
		k.resume = nil
		if err := k.applyResume(ck); err != nil {
			return Result{}, err
		}
	}
	return k.runEngine()
}

// runEngine drives the active engine loop once (no resume handling).
func (k *Kernel) runEngine() (Result, error) {
	k.paused = false
	defer k.stopWorkers()
	k.schedRebuild()
	if k.sharded {
		return k.runShard()
	}
	return k.runSeq()
}

// PauseAfter arms a pause position: the engine returns ErrPaused from Run
// once pos is reached, leaving the kernel at a quiescent, checkpointable
// point. The position counts completed barriers on the sharded engine and
// completed scheduling steps on the sequential one (see Position). Zero
// disarms.
func (k *Kernel) PauseAfter(pos int64) { k.stopAfter = pos }

// Position returns the engine position: completed barriers (sharded) or
// completed scheduling steps (sequential). Checkpoint files record it so a
// resumed replay pauses at exactly the same point.
func (k *Kernel) Position() int64 {
	if k.sharded {
		return k.barriers
	}
	return k.steps.Load()
}

// Paused reports whether the kernel sits at a pause point (Run returned
// ErrPaused and nothing ran since).
func (k *Kernel) Paused() bool { return k.paused }

// stopWorkers retires the parked worker goroutines pooled on each domain so
// a completed run leaves nothing behind. Workers still attached to blocked
// tasks (deadlock and panic paths) stay parked exactly like the per-task
// goroutines they replaced. Runs single-threaded, after the engine loop has
// exited.
func (k *Kernel) stopWorkers() {
	for _, d := range k.domains {
		for i, w := range d.freeWorkers {
			w.task = nil
			w.cont <- struct{}{}
			d.freeWorkers[i] = nil
		}
		d.freeWorkers = d.freeWorkers[:0]
	}
}

func (k *Kernel) liveTasks() int64 {
	var n int64
	for _, d := range k.domains {
		n += d.live
	}
	return n
}

func (k *Kernel) result() Result {
	msgs, hops, bytes := k.net.Stats()
	r := Result{
		FinalVT:  k.MaxTime(),
		Steps:    k.steps.Load(),
		Messages: msgs,
		Hops:     hops,
		Bytes:    bytes,
		Shards:   len(k.domains),
	}
	for _, d := range k.domains {
		r.OutOfOrder += d.oooMsgs
		r.Handled += d.handled
	}
	for _, c := range k.cores {
		r.Stalls += c.stats.Stalls
		r.Instructions += c.stats.Instructions
	}
	var rSum, rSamples int64
	for _, d := range k.domains {
		rSum += d.runnableSum
		rSamples += d.runnableSamples
		if d.runnableMax > r.MaxRunnable {
			r.MaxRunnable = d.runnableMax
		}
	}
	if rSamples > 0 {
		r.AvgRunnable = float64(rSum) / float64(rSamples)
	}
	r.PerShard = make([]ShardStat, len(k.domains))
	for i, d := range k.domains {
		r.PerShard[i] = ShardStat{Cores: len(d.cores), Steps: d.stepsTotal}
		if r.Steps > 0 {
			r.PerShard[i].Util = float64(d.stepsTotal) / float64(r.Steps)
		}
	}
	return r
}

// deadlockError reports the blocked tasks preventing progress, aggregated
// per shard so multi-shard deadlocks name every blocking core and task.
func (k *Kernel) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "core: deadlock with %d live tasks", k.liveTasks())
	total := 0
	for _, d := range k.domains {
		total += len(d.blocked)
	}
	if total == 0 {
		b.WriteString("; blocked: none (stall cycle)")
	}
	for _, d := range k.domains {
		if len(k.domains) > 1 {
			fmt.Fprintf(&b, "\n shard %d (%d blocked):", d.id, len(d.blocked))
		} else {
			b.WriteString("; blocked:")
		}
		// Deterministic report order.
		ids := make([]uint64, 0, len(d.blocked))
		for id := range d.blocked {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for n, id := range ids {
			if n == 8 {
				fmt.Fprintf(&b, " (+%d more)", len(ids)-8)
				break
			}
			t := d.blocked[id]
			fmt.Fprintf(&b, " %q@core%d", t.Name, t.core.ID)
		}
	}
	for _, c := range k.cores {
		if c.idle && len(c.ready) == 0 && len(c.conts) == 0 {
			continue
		}
		cur := "-"
		if c.current != nil {
			cur = c.current.Name
		}
		fmt.Fprintf(&b, "\n  core%d shard%d vt=%v eff=%v horizon=%v cur=%s ready=%d conts=%d locks=%d minBirth=%v",
			c.ID, k.part[c.ID], c.vt, c.Eff(), k.policy.Horizon(c), cur, len(c.ready), len(c.conts), c.lockDepth, c.minBirth())
	}
	return fmt.Errorf("%s", b.String())
}

// BusyMinVT returns the minimum virtual time among busy cores, Inf when all
// cores are idle. Used by the global synchronization policies in package
// drift.
func (k *Kernel) BusyMinVT() vtime.Time {
	m := vtime.Inf
	for _, c := range k.cores {
		if !c.idle && c.vt < m {
			m = c.vt
		}
	}
	return m
}

// MaxTime returns the latest task completion time seen so far.
func (k *Kernel) MaxTime() vtime.Time {
	var m vtime.Time
	for _, d := range k.domains {
		if d.maxTime > m {
			m = d.maxTime
		}
	}
	return m
}

// GlobalMinTime returns the minimum NextEventTime over all cores: the
// earliest point in virtual time where anything can still happen. Global
// synchronization schemes (package drift) treat it as "the current global
// time".
func (k *Kernel) GlobalMinTime() vtime.Time {
	m := vtime.Inf
	for _, c := range k.cores {
		if t := c.NextEventTime(); t < m {
			m = t
		}
	}
	return m
}
