package core

import (
	"fmt"
	"math/rand"
	"strings"

	"simany/internal/cache"
	"simany/internal/network"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// MemSystem is the memory hierarchy consulted by Env.Read/Env.Write.
// Implementations live in internal/mem (SiMany's abstract models) and
// internal/cyclelevel (the detailed reference models).
type MemSystem interface {
	// Access performs n accesses of elem bytes at base by core c at
	// virtual time now and returns the virtual delay to charge the core.
	Access(c *Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time
}

// NullMem charges nothing for memory accesses; useful for pure-compute
// tests.
type NullMem struct{}

// Access implements MemSystem.
func (NullMem) Access(*Core, uint64, int64, int, bool, vtime.Time) vtime.Time { return 0 }

// Handler processes an architectural message arriving at msg.Dst. Handlers
// run synchronously at send time, operate on virtual timestamps only and
// must not block.
type Handler func(k *Kernel, msg network.Message)

// Config assembles a simulated machine.
type Config struct {
	// Topo is the interconnection network. Required.
	Topo *topology.Topology
	// NetParams tunes the network model.
	NetParams network.Params
	// Policy is the synchronization scheme. Defaults to Spatial{T: 100
	// cycles}, the paper's reference configuration.
	Policy Policy
	// CostModel prices instruction classes; defaults to timing.PPC405.
	CostModel *timing.CostModel
	// Predict builds the per-core branch predictor; defaults to the
	// paper's 90% probabilistic predictor.
	Predict func(coreID int, seed int64) timing.Predictor
	// Mem is the memory system; defaults to NullMem.
	Mem MemSystem
	// Speeds gives per-core computing-power factors (nil = homogeneous
	// 1.0).
	Speeds []float64
	// TaskStartCost is the overhead of starting a task on a core (10
	// cycles in §V), in addition to the spawn-message transit time.
	TaskStartCost vtime.Time
	// CtxSwitchCost is the cost of switching to a joining task resuming
	// execution (15 cycles in §V).
	CtxSwitchCost vtime.Time
	// Seed makes the run reproducible.
	Seed int64
	// MaxSteps aborts runaway simulations (0 = no limit).
	MaxSteps int64
	// Tracer, when set, receives simulator trace events (see TraceEvent).
	Tracer Tracer
}

// DefaultT is the paper's reference maximum local drift (100 cycles).
var DefaultT = vtime.CyclesInt(100)

// Kernel is the discrete-event simulator.
type Kernel struct {
	cores    []*Core
	topo     *topology.Topology
	net      *network.Model
	policy   Policy
	mem      MemSystem
	handlers map[network.Kind]Handler
	rng      *rand.Rand

	taskStartCost vtime.Time
	ctxSwitchCost vtime.Time

	yieldCh   chan yieldInfo
	nextTask  uint64
	liveTasks int64
	blocked   map[uint64]*Task

	maxTime   vtime.Time
	steps     int64
	maxSteps  int64
	busyCores int
	taskPanic error

	// Host-parallelism potential sampling (§VIII): how many cores were
	// runnable — i.e. independently simulatable within their local time
	// window — at each scheduling decision.
	runnableSum     int64
	runnableSamples int64
	runnableMax     int

	// out-of-order statistics: arrivals handled per destination.
	lastHandled []vtime.Time
	oooMsgs     int64
	handled     int64

	// onTaskStart, when set, runs right after a fresh task is popped from
	// a core's queue (the task runtime broadcasts queue occupancy here).
	onTaskStart func(c *Core, t *Task)

	tracer   Tracer
	traceSeq uint64

	propQueue []int // scratch for shadow-time propagation
}

// New builds a kernel from a configuration.
func New(cfg Config) *Kernel {
	if cfg.Topo == nil {
		panic("core: Config.Topo is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = Spatial{T: DefaultT}
	}
	if cfg.CostModel == nil {
		cfg.CostModel = timing.PPC405()
	}
	if cfg.Predict == nil {
		rate := cfg.CostModel.PredictRate
		cfg.Predict = func(coreID int, seed int64) timing.Predictor {
			return timing.NewProbabilisticPredictor(rate, seed+int64(coreID))
		}
	}
	if cfg.Mem == nil {
		cfg.Mem = NullMem{}
	}
	if cfg.NetParams.ChunkSize == 0 {
		cfg.NetParams = network.DefaultParams()
	}
	if cfg.TaskStartCost == 0 {
		cfg.TaskStartCost = vtime.CyclesInt(10)
	}
	if cfg.CtxSwitchCost == 0 {
		cfg.CtxSwitchCost = vtime.CyclesInt(15)
	}
	n := cfg.Topo.N()
	k := &Kernel{
		topo:          cfg.Topo,
		net:           network.New(cfg.Topo, cfg.NetParams),
		policy:        cfg.Policy,
		mem:           cfg.Mem,
		handlers:      make(map[network.Kind]Handler),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		taskStartCost: cfg.TaskStartCost,
		ctxSwitchCost: cfg.CtxSwitchCost,
		yieldCh:       make(chan yieldInfo),
		blocked:       make(map[uint64]*Task),
		maxSteps:      cfg.MaxSteps,
		lastHandled:   make([]vtime.Time, n),
		tracer:        cfg.Tracer,
	}
	k.cores = make([]*Core, n)
	for i := 0; i < n; i++ {
		speed := 1.0
		if cfg.Speeds != nil {
			if len(cfg.Speeds) != n {
				panic("core: Speeds length must match core count")
			}
			speed = cfg.Speeds[i]
			if speed <= 0 {
				panic("core: non-positive core speed")
			}
		}
		c := &Core{
			ID:         i,
			Speed:      speed,
			k:          k,
			idle:       true,
			eff:        vtime.Inf,
			neighbors:  cfg.Topo.Neighbors(i),
			timer:      timing.NewBlockTimer(cfg.CostModel, cfg.Predict(i, cfg.Seed)),
			l1:         cache.NewScoped(cache.DefaultLineSize),
			l2:         cache.NewL2(cache.DefaultLineSize),
			birthCache: vtime.Inf,
		}
		c.nbEff = make([]vtime.Time, len(c.neighbors))
		for j := range c.nbEff {
			c.nbEff[j] = vtime.Inf
		}
		k.cores[i] = c
	}
	return k
}

// Core returns core i.
func (k *Kernel) Core(i int) *Core { return k.cores[i] }

// NumCores returns the machine size.
func (k *Kernel) NumCores() int { return len(k.cores) }

// Topology returns the interconnect topology.
func (k *Kernel) Topology() *topology.Topology { return k.topo }

// Network returns the interconnect model.
func (k *Kernel) Network() *network.Model { return k.net }

// Policy returns the active synchronization policy.
func (k *Kernel) Policy() Policy { return k.policy }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// CtxSwitchCost returns the configured context-switch overhead.
func (k *Kernel) CtxSwitchCost() vtime.Time { return k.ctxSwitchCost }

// Handle registers the handler for a message kind. Registering twice for
// the same kind panics: message kinds are owned by exactly one layer.
func (k *Kernel) Handle(kind network.Kind, h Handler) {
	if _, dup := k.handlers[kind]; dup {
		panic(fmt.Sprintf("core: duplicate handler for message kind %d", kind))
	}
	k.handlers[kind] = h
}

// send routes a message and immediately runs the destination handler.
func (k *Kernel) send(msg network.Message) network.Message {
	msg = k.net.Send(msg)
	k.cores[msg.Src].stats.MsgsSent++
	h, ok := k.handlers[msg.Kind]
	if !ok {
		panic(fmt.Sprintf("core: no handler for message kind %d", msg.Kind))
	}
	k.handled++
	if msg.Arrival < k.lastHandled[msg.Dst] {
		k.oooMsgs++
	} else {
		k.lastHandled[msg.Dst] = msg.Arrival
	}
	if k.tracer != nil {
		k.emit(TraceSend, msg.Stamp, msg.Src, nil, int64(msg.Dst))
		k.emit(TraceHandle, msg.Arrival, msg.Dst, nil, int64(msg.Src))
	}
	h(k, msg)
	return msg
}

// SendAt emits a message on behalf of core src at an explicit stamp; used
// by handlers to reply (stamp = arrival + handling cost).
func (k *Kernel) SendAt(src, dst int, kind network.Kind, size int, payload any, stamp vtime.Time) network.Message {
	return k.send(network.Message{
		Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload, Stamp: stamp,
	})
}

// NewTask allocates a task executing fn. The task is not yet placed; use
// PlaceTask (or InjectTask for simulation entry points).
func (k *Kernel) NewTask(name string, fn func(*Env), meta any) *Task {
	k.nextTask++
	return &Task{
		ID:   k.nextTask,
		Name: name,
		Meta: meta,
		fn:   fn,
		cont: make(chan struct{}),
	}
}

// PlaceTask queues task t on core as a fresh ready task that may start at
// stamp arrival. birthOwner, if non-nil, is the spawning core whose birth
// entry (registered with RegisterBirth) is discarded now that the task has
// arrived at its final destination (§II.A: the run-time system informs the
// parent's core that it can discard the corresponding birth date). The
// birth therefore constrains the parent only across the probe/spawn/
// migration window; removing it any later can produce stall cycles between
// mutually-spawning cores.
func (k *Kernel) PlaceTask(t *Task, coreID int, arrival vtime.Time, birthOwner *Core) {
	c := k.cores[coreID]
	t.core = c
	t.arrival = arrival
	t.state = TaskReady
	t.env = &Env{k: k, t: t, c: c}
	c.ready = append(c.ready, t)
	k.liveTasks++
	if birthOwner != nil {
		birthOwner.removeBirth(t.ID)
		if birthOwner.current != nil && birthOwner.current.env != nil {
			birthOwner.current.env.horizon = k.policy.Horizon(birthOwner)
		}
	}
}

// SetTaskStartHook registers a callback invoked whenever a fresh task is
// popped from a core's queue and starts executing. The task runtime uses it
// to broadcast the core's new queue occupancy to its neighbors (§IV).
func (k *Kernel) SetTaskStartHook(f func(c *Core, t *Task)) { k.onTaskStart = f }

// RegisterBirth records, on spawning core c, the birth stamp of a task
// that has been (or is about to be) placed elsewhere, and immediately
// tightens the horizon of the task currently running on c so the spatial
// drift bound of §II.A (Fig. 3) takes effect mid-block-sequence. The entry
// is discarded automatically when the spawned task starts (PlaceTask's
// birthOwner).
func (k *Kernel) RegisterBirth(c *Core, spawned *Task, stamp vtime.Time) {
	c.addBirth(spawned.ID, stamp)
	if c.current != nil && c.current.env != nil {
		c.current.env.horizon = k.policy.Horizon(c)
	}
}

// InjectTask creates and places a root task (simulation entry point).
func (k *Kernel) InjectTask(coreID int, name string, fn func(*Env), meta any, at vtime.Time) *Task {
	t := k.NewTask(name, fn, meta)
	k.PlaceTask(t, coreID, at, nil)
	return t
}

// Unblock marks a blocked task runnable again from virtual time at. It is
// called by message handlers (e.g. when a reply or join notification
// arrives).
func (k *Kernel) Unblock(t *Task, at vtime.Time) {
	k.emit(TraceUnblock, at, t.core.ID, t, int64(at))
	switch t.state {
	case TaskBlocked:
		delete(k.blocked, t.ID)
		t.state = TaskReady
		t.resume = at
		t.core.conts = append(t.core.conts, t)
	case TaskRunning:
		// The wake-up raced ahead of the Block call (handlers run
		// synchronously); record it so Block returns immediately.
		if t.pendingWake {
			panic(fmt.Sprintf("core: double Unblock of running task %q", t.Name))
		}
		t.pendingWake = true
		t.resume = at
	default:
		panic(fmt.Sprintf("core: Unblock of task %q in state %d", t.Name, t.state))
	}
}

// Result summarizes a completed simulation.
type Result struct {
	// FinalVT is the program's virtual execution time: the latest task
	// completion time.
	FinalVT vtime.Time
	// Steps is the number of kernel scheduling steps.
	Steps int64
	// Messages, Hops, Bytes are network totals.
	Messages, Hops, Bytes int64
	// OutOfOrder is the number of handler invocations whose arrival stamp
	// preceded an already-handled arrival at the same destination.
	OutOfOrder int64
	// Handled is the total number of handled messages.
	Handled int64
	// Stalls is the total number of policy stalls across cores.
	Stalls int64
	// Instructions is the total annotated instruction count.
	Instructions int64
	// AvgRunnable and MaxRunnable sample how many cores were runnable per
	// scheduling decision: the number of cores a parallel host could
	// simulate concurrently under the active synchronization scheme
	// (§VIII "preliminary study").
	AvgRunnable float64
	MaxRunnable int
}

// Run drives the simulation to quiescence: every injected task (and every
// task transitively created) has finished. It returns an error on deadlock
// or when a task panicked.
func (k *Kernel) Run() (Result, error) {
	for {
		if k.taskPanic != nil {
			return Result{}, k.taskPanic
		}
		if k.maxSteps > 0 && k.steps >= k.maxSteps {
			return Result{}, fmt.Errorf("core: exceeded %d scheduling steps", k.maxSteps)
		}
		c := k.pickCore()
		if c == nil {
			if k.liveTasks == 0 {
				return k.result(), nil
			}
			return Result{}, k.deadlockError()
		}
		k.step(c)
	}
}

func (k *Kernel) result() Result {
	msgs, hops, bytes := k.net.Stats()
	r := Result{
		FinalVT:    k.maxTime,
		Steps:      k.steps,
		Messages:   msgs,
		Hops:       hops,
		Bytes:      bytes,
		OutOfOrder: k.oooMsgs,
		Handled:    k.handled,
	}
	for _, c := range k.cores {
		r.Stalls += c.stats.Stalls
		r.Instructions += c.stats.Instructions
	}
	if k.runnableSamples > 0 {
		r.AvgRunnable = float64(k.runnableSum) / float64(k.runnableSamples)
	}
	r.MaxRunnable = k.runnableMax
	return r
}

// runnable reports whether core c can be scheduled now, and the virtual
// time key used to prioritize it.
func (k *Kernel) runnable(c *Core) (vtime.Time, bool) {
	if c.current != nil {
		// Stalled mid-task: runnable when the horizon has moved past the
		// core's clock.
		if c.vt <= k.policy.Horizon(c) {
			return c.vt, true
		}
		return 0, false
	}
	if len(c.conts) == 0 && len(c.ready) == 0 {
		return 0, false
	}
	// Picking a task may move the clock forward (to the task's stamp);
	// starting is always allowed — the first block boundary enforces the
	// drift.
	key := c.vt
	if c.idle {
		key = vtime.Inf
		if len(c.conts) > 0 {
			key = c.conts[0].resume
		}
		for _, t := range c.ready {
			if t.arrival < key {
				key = t.arrival
			}
		}
	}
	return key, true
}

// pickCore selects the runnable core with the lowest virtual-time key
// (deterministic; ties broken by core ID). It also samples how many cores
// were simultaneously runnable — the quantity behind the paper's §VIII
// observation that spatial synchronization leaves enough independently
// simulatable cores to keep a multi-core host busy.
func (k *Kernel) pickCore() *Core {
	var best *Core
	bestKey := vtime.Inf
	runnable := 0
	for _, c := range k.cores {
		key, ok := k.runnable(c)
		if !ok {
			continue
		}
		runnable++
		if best == nil || key < bestKey {
			best = c
			bestKey = key
		}
	}
	if best != nil {
		k.runnableSamples++
		k.runnableSum += int64(runnable)
		if runnable > k.runnableMax {
			k.runnableMax = runnable
		}
	}
	return best
}

// step schedules one task segment on core c.
func (k *Kernel) step(c *Core) {
	k.steps++
	t := c.current
	switch {
	case t != nil:
		// Resume the stalled task in place.
	case len(c.conts) > 0:
		t = c.conts[0]
		c.conts = c.conts[1:]
		// Context switch to a joining task resuming execution (§V).
		c.vt = vtime.Max(c.vt, t.resume) + k.ctxSwitchCost
		c.stats.Switches++
		t.state = TaskRunning
		c.current = t
		k.emit(TraceTaskResume, c.vt, c.ID, t, 0)
	default:
		t = c.ready[0]
		c.ready = c.ready[1:]
		// Starting a task costs 10 cycles in addition to the transit time
		// of the spawn message (§V).
		c.vt = vtime.Max(c.vt, t.arrival) + k.taskStartCost
		c.stats.TaskStarts++
		t.state = TaskRunning
		c.current = t
		k.emit(TraceTaskStart, c.vt, c.ID, t, 0)
		if k.onTaskStart != nil {
			k.onTaskStart(c, t)
		}
	}
	if c.idle {
		c.idle = false
		k.busyCores++
	}
	k.updateEff(c)

	// Hand control to the task goroutine until it yields.
	t.env.horizon = k.policy.Horizon(c)
	if !t.started {
		t.started = true
		go t.main()
	} else {
		t.cont <- struct{}{}
	}
	y := <-k.yieldCh

	switch y.kind {
	case yieldDone:
		t.state = TaskDone
		t.endVT = c.vt
		c.current = nil
		k.liveTasks--
		if c.vt > k.maxTime {
			k.maxTime = c.vt
		}
		k.emit(TraceTaskEnd, c.vt, c.ID, t, 0)
	case yieldBlocked:
		t.state = TaskBlocked
		k.blocked[t.ID] = t
		c.current = nil
		k.emit(TraceTaskBlock, c.vt, c.ID, t, 0)
	case yieldStalled:
		// c.current stays set; the task resumes in place later.
		k.emit(TraceTaskStall, c.vt, c.ID, t, 0)
	}
	if c.current == nil && len(c.conts) == 0 && len(c.ready) == 0 {
		c.idle = true
		k.busyCores--
	}
	k.updateEff(c)
}

// updateEff recomputes c's advertised effective time and propagates shadow
// updates through idle neighbors until a fixpoint, as idle cores relay
// virtual-time updates in the paper (§II.A "Non-connected sets of active
// cores").
func (k *Kernel) updateEff(c *Core) {
	if k.busyCores == 0 {
		// No anchor: idle-only shadow chains have no fixpoint (each relay
		// adds T), so everyone advertises Inf until a core wakes up.
		for _, cc := range k.cores {
			if cc.eff != vtime.Inf {
				cc.eff = vtime.Inf
				for _, nbID := range cc.neighbors {
					nb := k.cores[nbID]
					for j, nid := range nb.neighbors {
						if nid == cc.ID {
							nb.nbEff[j] = vtime.Inf
							break
						}
					}
				}
			}
		}
		return
	}
	k.propQueue = k.propQueue[:0]
	k.propQueue = append(k.propQueue, c.ID)
	for len(k.propQueue) > 0 {
		id := k.propQueue[0]
		k.propQueue = k.propQueue[1:]
		cc := k.cores[id]
		var eff vtime.Time
		if cc.idle {
			eff = k.policy.IdleTime(cc)
		} else {
			eff = cc.vt
		}
		if eff == cc.eff {
			continue
		}
		cc.eff = eff
		for _, nbID := range cc.neighbors {
			nb := k.cores[nbID]
			// Update the proxy this neighbor keeps for cc.
			for j, nid := range nb.neighbors {
				if nid == cc.ID {
					if nb.nbEff[j] != eff {
						nb.nbEff[j] = eff
						if nb.idle {
							k.propQueue = append(k.propQueue, nbID)
						}
					}
					break
				}
			}
		}
	}
}

// deadlockError reports the blocked tasks preventing progress.
func (k *Kernel) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "core: deadlock with %d live tasks; blocked:", k.liveTasks)
	n := 0
	for _, t := range k.blocked {
		if n < 8 {
			fmt.Fprintf(&b, " %q@core%d", t.Name, t.core.ID)
		}
		n++
	}
	if n > 8 {
		fmt.Fprintf(&b, " (+%d more)", n-8)
	}
	if n == 0 {
		b.WriteString(" none (stall cycle)")
	}
	for _, c := range k.cores {
		if c.idle && len(c.ready) == 0 && len(c.conts) == 0 {
			continue
		}
		cur := "-"
		if c.current != nil {
			cur = c.current.Name
		}
		fmt.Fprintf(&b, "\n  core%d vt=%v eff=%v horizon=%v cur=%s ready=%d conts=%d locks=%d minBirth=%v",
			c.ID, c.vt, c.eff, k.policy.Horizon(c), cur, len(c.ready), len(c.conts), c.lockDepth, c.minBirth())
	}
	return fmt.Errorf("%s", b.String())
}

// BusyMinVT returns the minimum virtual time among busy cores, Inf when all
// cores are idle. Used by the global synchronization policies in package
// drift.
func (k *Kernel) BusyMinVT() vtime.Time {
	m := vtime.Inf
	for _, c := range k.cores {
		if !c.idle && c.vt < m {
			m = c.vt
		}
	}
	return m
}

// MaxTime returns the latest task completion time seen so far.
func (k *Kernel) MaxTime() vtime.Time { return k.maxTime }

// GlobalMinTime returns the minimum NextEventTime over all cores: the
// earliest point in virtual time where anything can still happen. Global
// synchronization schemes (package drift) treat it as "the current global
// time".
func (k *Kernel) GlobalMinTime() vtime.Time {
	m := vtime.Inf
	for _, c := range k.cores {
		if t := c.NextEventTime(); t < m {
			m = t
		}
	}
	return m
}
