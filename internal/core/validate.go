package core

import (
	"fmt"

	"simany/internal/vtime"
)

// Validate checks the kernel's internal invariants and returns the first
// violation found, or nil. It is intended for tests and for debugging
// custom policies or memory systems: install it behind a Tracer (see
// ValidatingTracer) to check consistency continuously during a run.
//
// Checked invariants:
//   - every neighbor-proxy entry mirrors the neighbor's advertised time
//     (eager mode only — lazy mode replaces this with the region checks
//     below);
//   - with lazy effective times active: the busy-frontier list partitions
//     each domain's cores against their idle flags, the pruning floor
//     lower-bounds every anchor (busy cores and frozen foreign proxies),
//     and every fresh idle memo equals an independently recomputed eager
//     fixpoint;
//   - a busy core never advertises a time ahead of its own clock;
//   - the cached minimum birth stamp matches the birth map;
//   - the cached queue minima (ready arrivals, continuation resumes)
//     match a recomputation from the queues;
//   - with the indexed scheduler active: heap positions, heap order and
//     queue membership/keys agree with the reference runnable computation
//     (the mid-step core excepted — its entry settles at step end);
//   - lock depths are non-negative;
//   - task states are consistent with the queue each task sits in;
//   - the busy-core counter matches the per-core idle flags;
//   - with EnableBarrierValidation armed: per-(src,dst) FIFO stamps at
//     barrier merges and the global drift bound (barriercheck.go).
func (k *Kernel) Validate() error {
	busy := 0
	for _, c := range k.cores {
		if !c.idle {
			busy++
			// Virtual-time updates propagate at yield points, so a busy
			// core's advertised time may lag its clock mid-step — but it
			// must never lead it.
			if c.eff > c.vt {
				return fmt.Errorf("core %d: busy but advertises future time %v (clock %v)", c.ID, c.eff, c.vt)
			}
		}
		if !k.effLazy {
			for j, nbID := range c.neighbors {
				nb := k.cores[nbID]
				// Cross-shard proxies are intentionally frozen between
				// barriers, so only same-shard mirrors are exact at all
				// times. Under lazy evaluation no proxy is maintained
				// between barriers at all (the lazy fixpoint check below
				// replaces this invariant).
				if nb.dom != c.dom {
					continue
				}
				if c.nbEff[j] != nb.eff {
					return fmt.Errorf("core %d: proxy for neighbor %d is %v, neighbor advertises %v",
						c.ID, nbID, c.nbEff[j], nb.eff)
				}
			}
		}
		if c.lockDepth < 0 {
			return fmt.Errorf("core %d: negative lock depth %d", c.ID, c.lockDepth)
		}
		min := vtime.Inf
		for _, b := range c.births {
			if b < min {
				min = b
			}
		}
		if got := c.minBirth(); got != min {
			return fmt.Errorf("core %d: birth cache %v, map minimum %v", c.ID, got, min)
		}
		rm := vtime.Inf
		for _, t := range c.ready {
			if t.arrival < rm {
				rm = t.arrival
			}
		}
		if got := c.minReadyArrival(); got != rm {
			return fmt.Errorf("core %d: ready-min cache %v, queue minimum %v", c.ID, got, rm)
		}
		cm := vtime.Inf
		for _, t := range c.conts {
			if t.resume < cm {
				cm = t.resume
			}
		}
		if got := c.minContResume(); got != cm {
			return fmt.Errorf("core %d: conts-min cache %v, queue minimum %v", c.ID, got, cm)
		}
		if c.current != nil && c.current.state != TaskRunning {
			return fmt.Errorf("core %d: current task %q in state %d", c.ID, c.current.Name, c.current.state)
		}
		for _, t := range c.conts {
			if t.state != TaskReady {
				return fmt.Errorf("core %d: continuation %q in state %d", c.ID, t.Name, t.state)
			}
		}
		for _, t := range c.ready {
			if t.state != TaskReady {
				return fmt.Errorf("core %d: queued task %q in state %d", c.ID, t.Name, t.state)
			}
		}
	}
	tracked := 0
	for _, d := range k.domains {
		tracked += d.busy
	}
	if busy != tracked {
		return fmt.Errorf("busy-core counter %d, actual %d", tracked, busy)
	}
	if k.effLazy {
		if err := k.checkLazyEff(); err != nil {
			return err
		}
	}
	for _, d := range k.domains {
		for id, t := range d.blocked {
			if t.state != TaskBlocked {
				return fmt.Errorf("blocked registry holds task %d in state %d", id, t.state)
			}
		}
	}
	for _, d := range k.domains {
		if err := d.checkRunq(); err != nil {
			return err
		}
	}
	// With barrier validation armed (EnableBarrierValidation), surface any
	// FIFO violation recorded at a barrier merge and re-check the global
	// drift bound with the caller's slack.
	if k.bcheck != nil {
		if err := k.bcheck.err; err != nil {
			return err
		}
		if err := k.CheckDriftBound(k.bcheck.slack); err != nil {
			return err
		}
	}
	return nil
}

// checkLazyEff verifies the lazy effective-time bookkeeping (efflazy.go):
// the busy-frontier list agrees with the idle flags, the pruning floors
// lower-bound every anchor, and every fresh memo matches an independently
// recomputed eager fixpoint over the domain (anchored at busy cores and
// frozen foreign proxies — exactly the inputs lazyFix reads).
func (k *Kernel) checkLazyEff() error {
	// coreID-indexed scratch for the reference fixpoint; doubles as the
	// membership check for busyList back-pointers.
	fix := make([]vtime.Time, len(k.cores))
	for _, d := range k.domains {
		if len(d.busyList) != d.busy {
			return fmt.Errorf("domain %d: busy list holds %d cores, counter says %d", d.id, len(d.busyList), d.busy)
		}
		for i, c := range d.busyList {
			if c.idle {
				return fmt.Errorf("domain %d: idle core %d on busy list", d.id, c.ID)
			}
			if c.busyPos != i {
				return fmt.Errorf("domain %d: core %d busy-list back-pointer %d, actual slot %d", d.id, c.ID, c.busyPos, i)
			}
			if c.eff < d.effFloor {
				return fmt.Errorf("domain %d: floor %v above busy core %d anchor %v", d.id, d.effFloor, c.ID, c.eff)
			}
		}
		if d.frozenFloor < d.effFloor {
			return fmt.Errorf("domain %d: floor %v above frozen-proxy floor %v", d.id, d.effFloor, d.frozenFloor)
		}
		for _, c := range d.cores {
			if c.idle && c.busyPos >= 0 {
				return fmt.Errorf("domain %d: idle core %d claims busy-list slot %d", d.id, c.ID, c.busyPos)
			}
			if !c.idle && c.busyPos < 0 {
				return fmt.Errorf("domain %d: busy core %d missing from busy list", d.id, c.ID)
			}
			idleNb := int32(0)
			for j, nbID := range c.neighbors {
				nb := k.cores[nbID]
				if nb.dom != d {
					if c.nbEff[j] < d.frozenFloor {
						return fmt.Errorf("domain %d: frozen-proxy floor %v above core %d's proxy %v for foreign neighbor %d",
							d.id, d.frozenFloor, c.ID, c.nbEff[j], nbID)
					}
				} else if nb.idle {
					idleNb++
				}
			}
			if c.idleNb != idleNb {
				return fmt.Errorf("domain %d: core %d idle-neighbor count %d, actual %d", d.id, c.ID, c.idleNb, idleNb)
			}
		}
		// Reference fixpoint: seed anchors, relax idle cores downward
		// through local idle paths only. Frozen foreign proxies enter as
		// leaf anchors via nbEff, never as relaxation targets — mirroring
		// what lazyFix is allowed to read.
		for _, c := range d.cores {
			if c.idle {
				fix[c.ID] = vtime.Inf
			} else {
				fix[c.ID] = c.eff
			}
		}
		for changed := true; changed; {
			changed = false
			for _, c := range d.cores {
				if !c.idle {
					continue
				}
				m := vtime.Inf
				for j, nbID := range c.neighbors {
					nb := k.cores[nbID]
					var e vtime.Time
					if nb.dom != d {
						e = c.nbEff[j]
					} else {
						e = fix[nbID]
					}
					if e < m {
						m = e
					}
				}
				if e := satAdd(m, k.relayDelta); e < fix[c.ID] {
					fix[c.ID] = e
					changed = true
				}
			}
		}
		for _, c := range d.cores {
			if !c.idle || c.effStamp != d.effEpoch {
				continue
			}
			// Fresh memos come from lazyFix (anchored at local busy cores
			// and frozen proxies) or from barrier seeding (the global
			// fixpoint, which path-decomposes to the same local relaxation).
			// Either way they must match the reference value.
			if c.eff != fix[c.ID] {
				return fmt.Errorf("domain %d: idle core %d memo %v, eager fixpoint %v", d.id, c.ID, c.eff, fix[c.ID])
			}
		}
	}
	return nil
}

// ValidatingTracer runs Kernel.Validate every Interval trace events and
// panics on the first violation, pinpointing the event that exposed it.
// Wrap another tracer to keep recording. It is safe on the sharded engine:
// tracer callbacks run single-threaded at each barrier, after the
// effective-time refresh, exactly when the same-shard invariants Validate
// checks are supposed to hold.
type ValidatingTracer struct {
	K        *Kernel
	Interval uint64
	Next     Tracer

	count uint64
}

// Trace implements Tracer.
func (v *ValidatingTracer) Trace(ev TraceEvent) {
	if v.Next != nil {
		v.Next.Trace(ev)
	}
	v.count++
	interval := v.Interval
	if interval == 0 {
		interval = 1
	}
	if v.count%interval == 0 {
		if err := v.K.Validate(); err != nil {
			panic(fmt.Sprintf("core: invariant violation at trace event %d (%s): %v",
				ev.Seq, ev.Kind, err))
		}
	}
}
