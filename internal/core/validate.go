package core

import (
	"fmt"

	"simany/internal/vtime"
)

// Validate checks the kernel's internal invariants and returns the first
// violation found, or nil. It is intended for tests and for debugging
// custom policies or memory systems: install it behind a Tracer (see
// ValidatingTracer) to check consistency continuously during a run.
//
// Checked invariants:
//   - every neighbor-proxy entry mirrors the neighbor's advertised time;
//   - a busy core never advertises a time ahead of its own clock;
//   - the cached minimum birth stamp matches the birth map;
//   - the cached queue minima (ready arrivals, continuation resumes)
//     match a recomputation from the queues;
//   - with the indexed scheduler active: heap positions, heap order and
//     queue membership/keys agree with the reference runnable computation
//     (the mid-step core excepted — its entry settles at step end);
//   - lock depths are non-negative;
//   - task states are consistent with the queue each task sits in;
//   - the busy-core counter matches the per-core idle flags;
//   - with EnableBarrierValidation armed: per-(src,dst) FIFO stamps at
//     barrier merges and the global drift bound (barriercheck.go).
func (k *Kernel) Validate() error {
	busy := 0
	for _, c := range k.cores {
		if !c.idle {
			busy++
			// Virtual-time updates propagate at yield points, so a busy
			// core's advertised time may lag its clock mid-step — but it
			// must never lead it.
			if c.eff > c.vt {
				return fmt.Errorf("core %d: busy but advertises future time %v (clock %v)", c.ID, c.eff, c.vt)
			}
		}
		for j, nbID := range c.neighbors {
			nb := k.cores[nbID]
			// Cross-shard proxies are intentionally frozen between
			// barriers, so only same-shard mirrors are exact at all times.
			if nb.dom != c.dom {
				continue
			}
			if c.nbEff[j] != nb.eff {
				return fmt.Errorf("core %d: proxy for neighbor %d is %v, neighbor advertises %v",
					c.ID, nbID, c.nbEff[j], nb.eff)
			}
		}
		if c.lockDepth < 0 {
			return fmt.Errorf("core %d: negative lock depth %d", c.ID, c.lockDepth)
		}
		min := vtime.Inf
		for _, b := range c.births {
			if b < min {
				min = b
			}
		}
		if got := c.minBirth(); got != min {
			return fmt.Errorf("core %d: birth cache %v, map minimum %v", c.ID, got, min)
		}
		rm := vtime.Inf
		for _, t := range c.ready {
			if t.arrival < rm {
				rm = t.arrival
			}
		}
		if got := c.minReadyArrival(); got != rm {
			return fmt.Errorf("core %d: ready-min cache %v, queue minimum %v", c.ID, got, rm)
		}
		cm := vtime.Inf
		for _, t := range c.conts {
			if t.resume < cm {
				cm = t.resume
			}
		}
		if got := c.minContResume(); got != cm {
			return fmt.Errorf("core %d: conts-min cache %v, queue minimum %v", c.ID, got, cm)
		}
		if c.current != nil && c.current.state != TaskRunning {
			return fmt.Errorf("core %d: current task %q in state %d", c.ID, c.current.Name, c.current.state)
		}
		for _, t := range c.conts {
			if t.state != TaskReady {
				return fmt.Errorf("core %d: continuation %q in state %d", c.ID, t.Name, t.state)
			}
		}
		for _, t := range c.ready {
			if t.state != TaskReady {
				return fmt.Errorf("core %d: queued task %q in state %d", c.ID, t.Name, t.state)
			}
		}
	}
	tracked := 0
	for _, d := range k.domains {
		tracked += d.busy
	}
	if busy != tracked {
		return fmt.Errorf("busy-core counter %d, actual %d", tracked, busy)
	}
	for _, d := range k.domains {
		for id, t := range d.blocked {
			if t.state != TaskBlocked {
				return fmt.Errorf("blocked registry holds task %d in state %d", id, t.state)
			}
		}
	}
	for _, d := range k.domains {
		if err := d.checkRunq(); err != nil {
			return err
		}
	}
	// With barrier validation armed (EnableBarrierValidation), surface any
	// FIFO violation recorded at a barrier merge and re-check the global
	// drift bound with the caller's slack.
	if k.bcheck != nil {
		if err := k.bcheck.err; err != nil {
			return err
		}
		if err := k.CheckDriftBound(k.bcheck.slack); err != nil {
			return err
		}
	}
	return nil
}

// ValidatingTracer runs Kernel.Validate every Interval trace events and
// panics on the first violation, pinpointing the event that exposed it.
// Wrap another tracer to keep recording. It is safe on the sharded engine:
// tracer callbacks run single-threaded at each barrier, after the
// effective-time refresh, exactly when the same-shard invariants Validate
// checks are supposed to hold.
type ValidatingTracer struct {
	K        *Kernel
	Interval uint64
	Next     Tracer

	count uint64
}

// Trace implements Tracer.
func (v *ValidatingTracer) Trace(ev TraceEvent) {
	if v.Next != nil {
		v.Next.Trace(ev)
	}
	v.count++
	interval := v.Interval
	if interval == 0 {
		interval = 1
	}
	if v.count%interval == 0 {
		if err := v.K.Validate(); err != nil {
			panic(fmt.Sprintf("core: invariant violation at trace event %d (%s): %v",
				ev.Seq, ev.Kind, err))
		}
	}
}
