package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// TestAccessors covers the public state getters against a live kernel.
func TestAccessors(t *testing.T) {
	topo := topology.Mesh(4)
	k := New(Config{Topo: topo, Seed: 1})
	if k.NumCores() != 4 || k.Topology() != topo {
		t.Error("kernel accessors")
	}
	if k.Rand() == nil || k.Network() == nil {
		t.Error("nil accessors")
	}
	c := k.Core(2)
	if c.Kernel() != k || c.ID != 2 {
		t.Error("core accessors")
	}
	if !c.Idle() || c.LockDepth() != 0 || c.QueueLength() != 0 {
		t.Error("fresh core state")
	}
	if len(c.Neighbors()) != topo.Degree(2) {
		t.Error("neighbors")
	}
	if c.L1() == nil || c.L2() == nil {
		t.Error("cache accessors")
	}
	if c.NextEventTime() != vtime.Inf {
		t.Error("idle core next event should be Inf")
	}
	if k.GlobalMinTime() != vtime.Inf {
		t.Error("empty kernel global min should be Inf")
	}
	if k.BusyMinVT() != vtime.Inf {
		t.Error("no busy core yet")
	}
	if k.MaxTime() != 0 {
		t.Error("fresh max time")
	}
	k.InjectTask(2, "w", func(e *Env) {
		if e.Kernel() != k || e.CoreID() != 2 || e.Task() == nil {
			t.Error("env accessors")
		}
		if c.Idle() || c.Eff() != c.VT() {
			t.Error("busy core must advertise its own clock")
		}
		e.ComputeCycles(10)
	}, nil, vtime.CyclesInt(5))
	if got := c.NextEventTime(); got != vtime.CyclesInt(5) {
		t.Errorf("pending next event = %v", got)
	}
	if got := k.GlobalMinTime(); got != vtime.CyclesInt(5) {
		t.Errorf("global min = %v", got)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.MaxTime() == 0 {
		t.Error("max time not updated")
	}
}

// TestDriftBoundRandomTopologies checks the paper's global guarantee on
// random connected networks: at every observation point the spread between
// any two active cores' clocks stays within diameter × T plus one block.
func TestDriftBoundRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		n := 3 + rng.Intn(10)
		topo := topology.New(n, "rand")
		for v := 1; v < n; v++ {
			topo.AddLink(v, rng.Intn(v), topology.DefaultLatency, topology.DefaultBandwidth)
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				topo.AddLink(a, b, topology.DefaultLatency, topology.DefaultBandwidth)
			}
		}
		T := vtime.CyclesInt(40)
		block := vtime.CyclesInt(15)
		k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: int64(iter)})
		type rec struct {
			core int
			vt   vtime.Time
		}
		var log []rec
		for c := 0; c < n; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 60; i++ {
					e.ComputeCycles(15)
					log = append(log, rec{c, e.Now()})
				}
			}, nil, 0)
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		limit := vtime.Time(topo.Diameter())*T + 2*block + T
		last := make(map[int]vtime.Time)
		for _, r := range log {
			last[r.core] = r.vt
			if len(last) < n {
				continue
			}
			lo, hi := vtime.Inf, vtime.Time(0)
			for _, v := range last {
				lo, hi = vtime.Min(lo, v), vtime.Max(hi, v)
			}
			if hi-lo > limit {
				t.Fatalf("iter %d: drift %v exceeds bound %v (diam %d)",
					iter, hi-lo, limit, topo.Diameter())
			}
		}
	}
}

// TestParallelDriftBound checks the spatial guarantee under the sharded
// engine: with cross-shard proxies frozen during a round, a core may
// additionally overrun by at most the round quantum, so the global spread
// stays within the sequential bound plus the quantum.
func TestParallelDriftBound(t *testing.T) {
	T := vtime.CyclesInt(40)
	block := vtime.CyclesInt(15)
	quantum := 8 * T // kernel default for Spatial{T}
	for _, workers := range []int{1, 2, 8} {
		topo := topology.Mesh(16)
		k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: 7, Shards: 4, Workers: workers})
		if !k.Sharded() || k.NumShards() != 4 {
			t.Fatalf("workers=%d: expected 4 shards, got sharded=%v shards=%d",
				workers, k.Sharded(), k.NumShards())
		}
		type rec struct {
			core int
			vt   vtime.Time
		}
		var mu sync.Mutex
		var log []rec
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 60; i++ {
					e.ComputeCycles(15)
					mu.Lock()
					log = append(log, rec{c, e.Now()})
					mu.Unlock()
				}
			}, nil, 0)
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		limit := vtime.Time(topo.Diameter())*T + 2*block + T + quantum
		// The concurrent log has no global order; check each core's final
		// clock against every other core's — the end-state spread obeys the
		// same bound.
		last := make(map[int]vtime.Time)
		for _, r := range log {
			if r.vt > last[r.core] {
				last[r.core] = r.vt
			}
		}
		lo, hi := vtime.Inf, vtime.Time(0)
		for _, v := range last {
			lo, hi = vtime.Min(lo, v), vtime.Max(hi, v)
		}
		if hi-lo > limit {
			t.Fatalf("workers=%d: final drift %v exceeds bound %v", workers, hi-lo, limit)
		}
	}
}

// TestShardedDeterministicAcrossWorkers: for a fixed seed and shard count,
// the Result must be byte-identical no matter how many host threads drive
// the shards.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		k := New(Config{Topo: topology.Mesh(16), Policy: Spatial{T: DefaultT},
			Seed: 11, Shards: 4, Workers: workers})
		k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {})
		for c := 0; c < 16; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 25; i++ {
					var counts [8]int64
					counts[7] = 10 // exercise the per-core predictor stream
					e.Compute(counts)
					// Message a distant core: crosses shard boundaries.
					e.Send((c+7)%16, kindOneWay, 16, nil)
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: result diverged:\n  got  %+v\n  want %+v", w, got, base)
		}
	}
}

// TestDeterministicAcrossSeedsProperty: the same seed yields the same
// final virtual time; different seeds are allowed to differ but must still
// complete.
func TestDeterministicAcrossSeedsProperty(t *testing.T) {
	run := func(seed int64) vtime.Time {
		k := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: DefaultT}, Seed: seed})
		for c := 0; c < 4; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 10; i++ {
					var counts [8]int64
					counts[7] = 20 // conditional branches: predictor uses seed
					e.Compute(counts)
					e.ComputeCycles(float64(5 + c))
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalVT
	}
	f := func(seed int16) bool {
		return run(int64(seed)) == run(int64(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestBlockedOnlyCoreActsIdle: a core whose tasks are all blocked
// advertises a shadow time so its neighbors are not stalled forever —
// the deadlock-freedom argument of §II.B requires it.
func TestBlockedOnlyCoreActsIdle(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: vtime.CyclesInt(50)}, Seed: 1})
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	var blocker *Task
	blocker = k.InjectTask(0, "blocker", func(e *Env) {
		e.Block() // parked until the worker finishes
	}, nil, 0)
	var workerEnd vtime.Time
	k.InjectTask(1, "worker", func(e *Env) {
		// Must be able to run far beyond core 0's frozen clock + T.
		e.ComputeCycles(100_000)
		workerEnd = e.Now()
		e.Send(0, kindOneWay, 8, blocker)
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if workerEnd < vtime.CyclesInt(100_000) {
		t.Errorf("worker stalled behind a blocked core: %v", workerEnd)
	}
}
