package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// TestAccessors covers the public state getters against a live kernel.
func TestAccessors(t *testing.T) {
	topo := topology.Mesh(4)
	k := New(Config{Topo: topo, Seed: 1})
	if k.NumCores() != 4 || k.Topology() != topo {
		t.Error("kernel accessors")
	}
	if k.Rand() == nil || k.Network() == nil {
		t.Error("nil accessors")
	}
	c := k.Core(2)
	if c.Kernel() != k || c.ID != 2 {
		t.Error("core accessors")
	}
	if !c.Idle() || c.LockDepth() != 0 || c.QueueLength() != 0 {
		t.Error("fresh core state")
	}
	if len(c.Neighbors()) != topo.Degree(2) {
		t.Error("neighbors")
	}
	if c.L1() == nil || c.L2() == nil {
		t.Error("cache accessors")
	}
	if c.NextEventTime() != vtime.Inf {
		t.Error("idle core next event should be Inf")
	}
	if k.GlobalMinTime() != vtime.Inf {
		t.Error("empty kernel global min should be Inf")
	}
	if k.BusyMinVT() != vtime.Inf {
		t.Error("no busy core yet")
	}
	if k.MaxTime() != 0 {
		t.Error("fresh max time")
	}
	k.InjectTask(2, "w", func(e *Env) {
		if e.Kernel() != k || e.CoreID() != 2 || e.Task() == nil {
			t.Error("env accessors")
		}
		if c.Idle() || c.Eff() != c.VT() {
			t.Error("busy core must advertise its own clock")
		}
		e.ComputeCycles(10)
	}, nil, vtime.CyclesInt(5))
	if got := c.NextEventTime(); got != vtime.CyclesInt(5) {
		t.Errorf("pending next event = %v", got)
	}
	if got := k.GlobalMinTime(); got != vtime.CyclesInt(5) {
		t.Errorf("global min = %v", got)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.MaxTime() == 0 {
		t.Error("max time not updated")
	}
}

// TestDriftBoundRandomTopologies checks the paper's global guarantee on
// random connected networks: at every observation point the spread between
// any two active cores' clocks stays within diameter × T plus one block.
func TestDriftBoundRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		n := 3 + rng.Intn(10)
		topo := topology.New(n, "rand")
		for v := 1; v < n; v++ {
			topo.AddLink(v, rng.Intn(v), topology.DefaultLatency, topology.DefaultBandwidth)
		}
		for e := 0; e < n/2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				topo.AddLink(a, b, topology.DefaultLatency, topology.DefaultBandwidth)
			}
		}
		T := vtime.CyclesInt(40)
		block := vtime.CyclesInt(15)
		k := New(Config{Topo: topo, Policy: Spatial{T: T}, Seed: int64(iter)})
		type rec struct {
			core int
			vt   vtime.Time
		}
		var log []rec
		for c := 0; c < n; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 60; i++ {
					e.ComputeCycles(15)
					log = append(log, rec{c, e.Now()})
				}
			}, nil, 0)
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		limit := vtime.Time(topo.Diameter())*T + 2*block + T
		last := make(map[int]vtime.Time)
		for _, r := range log {
			last[r.core] = r.vt
			if len(last) < n {
				continue
			}
			lo, hi := vtime.Inf, vtime.Time(0)
			for _, v := range last {
				lo, hi = vtime.Min(lo, v), vtime.Max(hi, v)
			}
			if hi-lo > limit {
				t.Fatalf("iter %d: drift %v exceeds bound %v (diam %d)",
					iter, hi-lo, limit, topo.Diameter())
			}
		}
	}
}

// TestDeterministicAcrossSeedsProperty: the same seed yields the same
// final virtual time; different seeds are allowed to differ but must still
// complete.
func TestDeterministicAcrossSeedsProperty(t *testing.T) {
	run := func(seed int64) vtime.Time {
		k := New(Config{Topo: topology.Mesh(4), Policy: Spatial{T: DefaultT}, Seed: seed})
		for c := 0; c < 4; c++ {
			c := c
			k.InjectTask(c, "w", func(e *Env) {
				for i := 0; i < 10; i++ {
					var counts [8]int64
					counts[7] = 20 // conditional branches: predictor uses seed
					e.Compute(counts)
					e.ComputeCycles(float64(5 + c))
				}
			}, nil, 0)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalVT
	}
	f := func(seed int16) bool {
		return run(int64(seed)) == run(int64(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestBlockedOnlyCoreActsIdle: a core whose tasks are all blocked
// advertises a shadow time so its neighbors are not stalled forever —
// the deadlock-freedom argument of §II.B requires it.
func TestBlockedOnlyCoreActsIdle(t *testing.T) {
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := New(Config{Topo: topo, Policy: Spatial{T: vtime.CyclesInt(50)}, Seed: 1})
	k.Handle(kindOneWay, func(k *Kernel, msg network.Message) {
		k.Unblock(msg.Payload.(*Task), msg.Arrival)
	})
	var blocker *Task
	blocker = k.InjectTask(0, "blocker", func(e *Env) {
		e.Block() // parked until the worker finishes
	}, nil, 0)
	var workerEnd vtime.Time
	k.InjectTask(1, "worker", func(e *Env) {
		// Must be able to run far beyond core 0's frozen clock + T.
		e.ComputeCycles(100_000)
		workerEnd = e.Now()
		e.Send(0, kindOneWay, 8, blocker)
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if workerEnd < vtime.CyclesInt(100_000) {
		t.Errorf("worker stalled behind a blocked core: %v", workerEnd)
	}
}
