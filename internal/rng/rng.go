// Package rng provides the simulator's serializable pseudo-random stream.
//
// Simulation state must survive a checkpoint/restore round trip
// (docs/checkpoint.md), and math/rand generators cannot export their
// internal state. Rand is a splitmix64 counter generator: the entire
// stream position is a single uint64, captured and restored exactly, and
// statistically strong enough for the simulator's uses (branch-mispredict
// sampling, drift referee picks). It is NOT cryptographically secure.
package rng

// Rand is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Equal seeds produce equal
// streams on every platform.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// golden is the splitmix64 increment (2^64 / phi), chosen so that even
// sequential seeds decorrelate after one mixing step.
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// State returns the generator's complete internal state.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state previously returned by State.
func (r *Rand) SetState(s uint64) { r.state = s }
