package topology

import (
	"fmt"
	"math"

	"simany/internal/vtime"
)

// DefaultLatency is the base link traversal latency used by the paper's
// distributed-memory configuration (1 cycle, §V).
var DefaultLatency = vtime.CyclesInt(1)

// DefaultBandwidth is the paper's link bandwidth (128 bytes per cycle, §V).
const DefaultBandwidth = 128

// MeshDims returns the width and height used for an n-core 2D mesh: the
// most square factorization of n (paper meshes are 8=4x2, 64=8x8,
// 256=16x16, 1024=32x32).
func MeshDims(n int) (w, h int) {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh size %d", n))
	}
	w = int(math.Sqrt(float64(n)))
	for ; w >= 1; w-- {
		if n%w == 0 {
			return n / w, w
		}
	}
	return n, 1
}

// Mesh2D builds a w×h 2D mesh with uniform link parameters.
func Mesh2D(w, h int, lat vtime.Time, bw int) *Topology {
	return fromEdges(w*h, fmt.Sprintf("mesh-%dx%d", w, h),
		meshEdges(nil, 0, w, h, 1, lat, bw))
}

// meshEdges appends the undirected edges of a w×h mesh whose node (x,y) is
// base + (y·w+x)·stride. stride > 1 lays a mesh over units of that many
// cores (the hierarchy tiers connect unit corners, hierarchy.go).
func meshEdges(edges []edge, base, w, h, stride int, lat vtime.Time, bw int) []edge {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := base + (y*w+x)*stride
			if x+1 < w {
				edges = append(edges, edge{c, c + stride, lat, bw})
			}
			if y+1 < h {
				edges = append(edges, edge{c, c + w*stride, lat, bw})
			}
		}
	}
	return edges
}

// Mesh builds the most-square 2D mesh with n cores and default link
// parameters.
func Mesh(n int) *Topology {
	w, h := MeshDims(n)
	return Mesh2D(w, h, DefaultLatency, DefaultBandwidth)
}

// Torus2D builds a w×h 2D torus (mesh with wrap-around links).
func Torus2D(w, h int, lat vtime.Time, bw int) *Topology {
	t := New(w*h, fmt.Sprintf("torus-%dx%d", w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := y*w + x
			if w > 1 {
				t.AddLink(c, y*w+(x+1)%w, lat, bw)
			}
			if h > 1 {
				t.AddLink(c, ((y+1)%h)*w+x, lat, bw)
			}
		}
	}
	return t
}

// Ring builds an n-core ring.
func Ring(n int, lat vtime.Time, bw int) *Topology {
	t := New(n, fmt.Sprintf("ring-%d", n))
	if n == 1 {
		return t
	}
	for c := 0; c < n; c++ {
		t.AddLink(c, (c+1)%n, lat, bw)
	}
	return t
}

// Star builds an n-core star centered on core 0.
func Star(n int, lat vtime.Time, bw int) *Topology {
	t := New(n, fmt.Sprintf("star-%d", n))
	for c := 1; c < n; c++ {
		t.AddLink(0, c, lat, bw)
	}
	return t
}

// FullyConnected builds a complete graph over n cores.
func FullyConnected(n int, lat vtime.Time, bw int) *Topology {
	t := New(n, fmt.Sprintf("full-%d", n))
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			t.AddLink(a, b, lat, bw)
		}
	}
	return t
}

// ClusteredParams carries the link parameters of a clustered mesh. The
// paper's configuration uses 0.5-cycle intra-cluster links and 4-cycle
// inter-cluster links (4× the base latency, §V).
type ClusteredParams struct {
	Clusters  int
	IntraLat  vtime.Time
	InterLat  vtime.Time
	Bandwidth int
}

// DefaultClusteredParams returns the paper's clustered configuration for
// the given cluster count.
func DefaultClusteredParams(clusters int) ClusteredParams {
	return ClusteredParams{
		Clusters:  clusters,
		IntraLat:  vtime.Cycles(0.5),
		InterLat:  vtime.CyclesInt(4),
		Bandwidth: DefaultBandwidth,
	}
}

// Clustered builds an n-core network split into p.Clusters equal 2D-mesh
// clusters. Clusters are arranged in their own most-square mesh; adjacent
// clusters are joined by a single inter-cluster link between their corner
// cores.
func Clustered(n int, p ClusteredParams) *Topology {
	k := p.Clusters
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("topology: %d cores do not split into %d clusters", n, k))
	}
	per := n / k
	w, h := MeshDims(per)
	var edges []edge
	// Intra-cluster meshes.
	for ci := 0; ci < k; ci++ {
		edges = meshEdges(edges, ci*per, w, h, 1, p.IntraLat, p.Bandwidth)
	}
	// Inter-cluster links: clusters form their own mesh, connected through
	// corner cores (core 0 of one cluster to core per-1 of the other).
	cw, chh := MeshDims(k)
	edges = cornerEdges(edges, 0, cw, chh, per, p.InterLat, p.Bandwidth, 0)
	return fromEdges(n, fmt.Sprintf("clustered-%d-of-%d", k, per), edges)
}

// cornerEdges appends the gateway links of a uw×uh mesh of per-core units
// starting at base: each unit's last core connects to the first core of its
// +x and +y neighbor units. pen is a boundary-crossing penalty added to the
// link latency (the hierarchy tiers' serialization cost; 0 for Clustered).
func cornerEdges(edges []edge, base, uw, uh, per int, lat vtime.Time, bw int, pen vtime.Time) []edge {
	for uy := 0; uy < uh; uy++ {
		for ux := 0; ux < uw; ux++ {
			ui := uy*uw + ux
			last := base + ui*per + per - 1
			if ux+1 < uw {
				edges = append(edges, edge{last, base + (ui+1)*per, lat + pen, bw})
			}
			if uy+1 < uh {
				edges = append(edges, edge{last, base + (ui+uw)*per, lat + pen, bw})
			}
		}
	}
	return edges
}
