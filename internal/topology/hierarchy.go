package topology

// Hierarchical (chiplet) topologies: cores are grouped into chiplets,
// chiplets into chips, chips into packages — each tier a 2D mesh of the
// units below it, with its own link latency, bandwidth and a
// boundary-serialization penalty for crossing the physical package
// boundary. This is the many-core-future machine shape the paper's
// experiments point at (and the one MuchiSim explores): cheap dense links
// inside a chiplet, progressively slower and narrower links between
// chiplets and between chips.
//
// Core numbering is hierarchical row-major: cores within a chiplet are
// consecutive, chiplets within a chip are consecutive, and so on. That
// makes unit membership a pure division (UnitOf) and lets the sharded
// engine's contiguous partitions align exactly with physical boundaries
// (PartitionFor in partition.go).
//
// Adjacent units at tier t ≥ 1 are joined corner-to-corner like the
// paper's clustered meshes: the lower unit's last core connects to the
// next unit's first core, with latency Lat+Penalty.

import (
	"fmt"
	"strconv"
	"strings"

	"simany/internal/vtime"
)

// Tier describes one level of a hierarchical topology: a W×H mesh of the
// next-lower units (tier 0 arranges individual cores into a chiplet).
type Tier struct {
	W, H int
	// Lat and BW are the parameters of this tier's links. For tier 0 they
	// apply to the chiplet-internal mesh; for higher tiers to the gateway
	// links between adjacent units.
	Lat vtime.Time
	BW  int
	// Penalty is the boundary-serialization cost added to Lat on every
	// gateway link of this tier (crossing a chiplet or chip edge means
	// SerDes and packaging delays on top of wire latency). Ignored for
	// tier 0.
	Penalty vtime.Time
}

// Hierarchy is the tier structure of a chiplet topology, innermost first.
type Hierarchy struct {
	Tiers []Tier
}

// tierNames label the tiers for display; deeper nesting falls back to
// "tier<i>".
var tierNames = []string{"chiplet", "chip", "package", "board"}

// TierName returns the display name of tier i ("chiplet", "chip", ...).
func TierName(i int) string {
	if i < len(tierNames) {
		return tierNames[i]
	}
	return fmt.Sprintf("tier%d", i)
}

// CoresPerUnit returns the number of cores in one unit of tier t: the
// product of the mesh sizes of tiers 0..t.
func (h *Hierarchy) CoresPerUnit(t int) int {
	per := 1
	for i := 0; i <= t; i++ {
		per *= h.Tiers[i].W * h.Tiers[i].H
	}
	return per
}

// NumUnits returns how many tier-t units the machine contains.
func (h *Hierarchy) NumUnits(t int) int {
	return h.CoresPerUnit(len(h.Tiers)-1) / h.CoresPerUnit(t)
}

// UnitOf returns the index of the tier-t unit containing core c.
func (h *Hierarchy) UnitOf(c, t int) int {
	return c / h.CoresPerUnit(t)
}

// EdgeTier returns the tier of the link between adjacent cores a and b: the
// lowest tier whose unit contains both endpoints (0 = chiplet-internal
// mesh link, 1 = chiplet-to-chiplet gateway, ...).
func (h *Hierarchy) EdgeTier(a, b int) int {
	for t := 0; t < len(h.Tiers); t++ {
		if h.UnitOf(a, t) == h.UnitOf(b, t) {
			return t
		}
	}
	return len(h.Tiers) - 1
}

// diameterBound returns an analytic upper bound on the hop diameter. Within
// one tier-0 unit the diameter is the mesh diameter D(0) = (W-1)+(H-1). One
// tier up, a worst-case path crosses up to M(t) = (Wt-1)+(Ht-1) gateways
// and traverses a full lower unit (≤ D(t-1) hops) between each:
//
//	D(t) ≤ D(t-1) + M(t)·(1 + D(t-1))
//
// An upper bound is all the spatial drift bound needs (drift ≤ diameter×T
// is monotone in the diameter), and it is O(tiers) to compute where the
// exact all-pairs BFS is O(n·E).
func (h *Hierarchy) diameterBound() int {
	d := (h.Tiers[0].W - 1) + (h.Tiers[0].H - 1)
	for t := 1; t < len(h.Tiers); t++ {
		m := (h.Tiers[t].W - 1) + (h.Tiers[t].H - 1)
		d = d + m*(1+d)
	}
	return d
}

// String renders the hierarchy as a spec-like summary, e.g.
// "8x8 chiplet × 4x4 chip × 10x10 package".
func (h *Hierarchy) String() string {
	var b strings.Builder
	for i, tr := range h.Tiers {
		if i > 0 {
			b.WriteString(" × ")
		}
		fmt.Fprintf(&b, "%dx%d %s", tr.W, tr.H, TierName(i))
	}
	return b.String()
}

// Chiplet builds a hierarchical topology from the given tiers (innermost
// first). Every tier must have W, H ≥ 1 and at least one tier is required;
// tiers with W·H == 1 are allowed (a "hierarchy" that degenerates at that
// level).
func Chiplet(tiers []Tier) *Topology {
	if len(tiers) == 0 {
		panic("topology: chiplet hierarchy needs at least one tier")
	}
	h := &Hierarchy{Tiers: make([]Tier, len(tiers))}
	copy(h.Tiers, tiers)
	n := 1
	for i, tr := range h.Tiers {
		if tr.W < 1 || tr.H < 1 {
			panic(fmt.Sprintf("topology: invalid %s mesh %dx%d", TierName(i), tr.W, tr.H))
		}
		if tr.BW <= 0 {
			panic(fmt.Sprintf("topology: non-positive bandwidth at %s tier", TierName(i)))
		}
		if tr.Lat < 0 || tr.Penalty < 0 {
			panic(fmt.Sprintf("topology: negative latency at %s tier", TierName(i)))
		}
		n *= tr.W * tr.H
	}

	var edges []edge
	// Tier 0: one mesh per chiplet.
	t0 := h.Tiers[0]
	per0 := t0.W * t0.H
	for u := 0; u < n/per0; u++ {
		edges = meshEdges(edges, u*per0, t0.W, t0.H, 1, t0.Lat, t0.BW)
	}
	// Higher tiers: corner-to-corner gateways between adjacent units, one
	// unit mesh per enclosing tier-(t+1) unit.
	for t := 1; t < len(h.Tiers); t++ {
		tr := h.Tiers[t]
		per := h.CoresPerUnit(t - 1)
		group := h.CoresPerUnit(t)
		for g := 0; g < n/group; g++ {
			edges = cornerEdges(edges, g*group, tr.W, tr.H, per, tr.Lat, tr.BW, tr.Penalty)
		}
	}

	name := make([]string, len(h.Tiers))
	for i, tr := range h.Tiers {
		name[i] = fmt.Sprintf("%dx%d", tr.W, tr.H)
	}
	top := fromEdges(n, "chiplet-"+strings.Join(name, "-"), edges)
	top.hier = h
	top.diamBound = h.diameterBound()
	return top
}

// Chiplet spec grammar, used by -topo, machine files and simany-topo -gen:
//
//	chiplet:WxH[@LAT[/BW][+PEN]],WxH[...],...
//
// Tiers are listed innermost first. LAT and PEN are cycles (floats allowed),
// BW is bytes per cycle. Omitted parameters default tier by tier: tier 0
// uses the paper's base links (1 cycle, 128 B/cy, no penalty); each higher
// tier defaults to 4× the previous tier's latency, half its bandwidth
// (min 1), and a boundary penalty of half its own latency.

// ParseChipletSpec parses the tier list of a chiplet spec (the part after
// "chiplet:") into a Hierarchy.
func ParseChipletSpec(spec string) (*Hierarchy, error) {
	parts := strings.Split(spec, ",")
	if spec == "" || len(parts) == 0 {
		return nil, fmt.Errorf("topology: empty chiplet spec")
	}
	tiers := make([]Tier, 0, len(parts))
	prevLat := DefaultLatency
	prevBW := DefaultBandwidth
	for i, p := range parts {
		tr := Tier{Lat: prevLat, BW: prevBW}
		if i > 0 {
			tr.Lat = 4 * prevLat
			tr.BW = prevBW / 2
			if tr.BW < 1 {
				tr.BW = 1
			}
			tr.Penalty = tr.Lat / 2
		}
		dims := p
		if at := strings.IndexByte(p, '@'); at >= 0 {
			dims = p[:at]
			if err := parseTierParams(p[at+1:], &tr); err != nil {
				return nil, fmt.Errorf("topology: chiplet spec %q: %v", p, err)
			}
		}
		w, h, err := parseDims(dims)
		if err != nil {
			return nil, fmt.Errorf("topology: chiplet spec %q: %v", p, err)
		}
		tr.W, tr.H = w, h
		tiers = append(tiers, tr)
		prevLat, prevBW = tr.Lat, tr.BW
	}
	return &Hierarchy{Tiers: tiers}, nil
}

// parseTierParams parses "LAT", "LAT/BW", "LAT+PEN" or "LAT/BW+PEN" into tr.
// An explicit latency resets the default penalty to half of it unless a
// penalty is also given.
func parseTierParams(s string, tr *Tier) error {
	if s == "" {
		return fmt.Errorf("empty tier parameters after '@'")
	}
	pen := ""
	if plus := strings.IndexByte(s, '+'); plus >= 0 {
		pen = s[plus+1:]
		s = s[:plus]
	}
	latS := s
	if sl := strings.IndexByte(s, '/'); sl >= 0 {
		latS = s[:sl]
		bw, err := strconv.Atoi(s[sl+1:])
		if err != nil || bw <= 0 {
			return fmt.Errorf("bad bandwidth %q", s[sl+1:])
		}
		tr.BW = bw
	}
	if latS != "" {
		f, err := strconv.ParseFloat(latS, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad latency %q", latS)
		}
		tr.Lat = vtime.Cycles(f)
		if tr.Penalty != 0 && pen == "" {
			tr.Penalty = tr.Lat / 2
		}
	}
	if pen != "" {
		f, err := strconv.ParseFloat(pen, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad penalty %q", pen)
		}
		tr.Penalty = vtime.Cycles(f)
	}
	return nil
}

func parseDims(s string) (w, h int, err error) {
	x := strings.IndexByte(s, 'x')
	if x < 0 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	w, err1 := strconv.Atoi(s[:x])
	h, err2 := strconv.Atoi(s[x+1:])
	if err1 != nil || err2 != nil || w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	return w, h, nil
}

// ParseSpec builds a topology from a textual spec: "mesh:WxH",
// "torus:WxH", "ring:N", "star:N", "full:N", "clustered:K:N" (K clusters of
// an N-core machine) or "chiplet:<tiers>" (see ParseChipletSpec). A bare
// integer builds the most-square mesh of that many cores.
func ParseSpec(spec string) (*Topology, error) {
	kind, rest := spec, ""
	if c := strings.IndexByte(spec, ':'); c >= 0 {
		kind, rest = spec[:c], spec[c+1:]
	}
	switch kind {
	case "chiplet":
		h, err := ParseChipletSpec(rest)
		if err != nil {
			return nil, err
		}
		return Chiplet(h.Tiers), nil
	case "mesh":
		if n, err := strconv.Atoi(rest); err == nil {
			return Mesh(n), nil
		}
		w, h, err := parseDims(rest)
		if err != nil {
			return nil, fmt.Errorf("topology: spec %q: %v", spec, err)
		}
		return Mesh2D(w, h, DefaultLatency, DefaultBandwidth), nil
	case "torus":
		w, h, err := parseDims(rest)
		if err != nil {
			return nil, fmt.Errorf("topology: spec %q: %v", spec, err)
		}
		return Torus2D(w, h, DefaultLatency, DefaultBandwidth), nil
	case "ring", "star", "full":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("topology: spec %q: bad core count %q", spec, rest)
		}
		switch kind {
		case "ring":
			return Ring(n, DefaultLatency, DefaultBandwidth), nil
		case "star":
			return Star(n, DefaultLatency, DefaultBandwidth), nil
		}
		return FullyConnected(n, DefaultLatency, DefaultBandwidth), nil
	case "clustered":
		kS, nS, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("topology: spec %q: want clustered:K:N", spec)
		}
		k, err1 := strconv.Atoi(kS)
		n, err2 := strconv.Atoi(nS)
		if err1 != nil || err2 != nil || k < 1 || n < 1 || n%k != 0 {
			return nil, fmt.Errorf("topology: spec %q: want clustered:K:N with K dividing N", spec)
		}
		return Clustered(n, DefaultClusteredParams(k)), nil
	default:
		if n, err := strconv.Atoi(spec); err == nil && n >= 1 {
			return Mesh(n), nil
		}
		return nil, fmt.Errorf("topology: unknown spec %q", spec)
	}
}
