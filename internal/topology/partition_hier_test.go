package topology

import "testing"

// partitionInvariants checks the properties every shard assignment must
// satisfy: full coverage, values in [0,k), balance within the unit the
// partitioner deals (one core flat, one chiplet aligned).
func partitionInvariants(t *testing.T, part []int, n, k, unit int) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("len(part) = %d, want %d", len(part), n)
	}
	eff := k
	if eff > n {
		eff = n
	}
	sizes := PartSizes(part, eff)
	min, max := n, 0
	for s, sz := range sizes {
		if sz == 0 {
			t.Errorf("shard %d is empty", s)
		}
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if max-min > unit {
		t.Errorf("imbalance %d-%d exceeds one unit (%d cores)", max, min, unit)
	}
	for i := 1; i < n; i++ {
		if part[i] < part[i-1] {
			t.Fatalf("assignment not contiguous at core %d: %d after %d", i, part[i], part[i-1])
		}
	}
}

func TestPartitionForAlignsWithChiplets(t *testing.T) {
	top := Chiplet([]Tier{
		{W: 2, H: 2, Lat: 1, BW: 128},
		{W: 4, H: 2, Lat: 4, BW: 64, Penalty: 2},
	})
	h := top.Hierarchy()
	part := PartitionFor(top, 4) // 8 chiplets of 4 cores → 2 chiplets/shard
	partitionInvariants(t, part, 32, 4, 4)
	// Every chiplet lands entirely in one shard.
	for c := 0; c < top.N(); c++ {
		u := h.UnitOf(c, 0)
		if part[c] != part[u*4] {
			t.Fatalf("core %d split off from its chiplet %d", c, u)
		}
	}
	// No cut edge is chiplet-internal.
	cuts := TierCuts(top, part)
	if cuts[0] != 0 {
		t.Errorf("aligned partition cuts %d chiplet-internal edges", cuts[0])
	}
	total := 0
	for _, c := range cuts {
		total += c
	}
	if total != CutEdges(top, part) {
		t.Errorf("TierCuts sum %d != CutEdges %d", total, CutEdges(top, part))
	}
}

// TestPartitionAlignedCutNoWorse is the property PartitionFor's doc comment
// promises: on chiplet machines, dealing whole chiplets never cuts more
// edges than the flat contiguous split.
func TestPartitionAlignedCutNoWorse(t *testing.T) {
	machines := [][]Tier{
		{{W: 2, H: 2, Lat: 1, BW: 1}, {W: 2, H: 2, Lat: 1, BW: 1}},
		{{W: 4, H: 4, Lat: 1, BW: 1}, {W: 3, H: 2, Lat: 1, BW: 1}},
		{{W: 3, H: 3, Lat: 1, BW: 1}, {W: 2, H: 2, Lat: 1, BW: 1}, {W: 2, H: 1, Lat: 1, BW: 1}},
	}
	for _, tiers := range machines {
		top := Chiplet(tiers)
		for k := 1; k <= top.N()+1; k++ {
			aligned := CutEdges(top, PartitionFor(top, k))
			flat := CutEdges(top, Partition(top, k))
			if aligned > flat {
				t.Errorf("%s k=%d: aligned cut %d > flat cut %d", top.Name(), k, aligned, flat)
			}
		}
	}
}

func TestPartitionForFallsBackWhenOverSharded(t *testing.T) {
	// 4 chiplets of 4 cores: k=7 exceeds the chiplet count, so units cannot
	// be dealt whole and PartitionFor must match the flat partition.
	top := chip2x2()
	part := PartitionFor(top, 7)
	flat := Partition(top, 7)
	for i := range part {
		if part[i] != flat[i] {
			t.Fatalf("over-sharded fallback diverges from flat at core %d", i)
		}
	}
	partitionInvariants(t, part, 16, 7, 1)
}

func TestPartitionEdgeCases(t *testing.T) {
	for _, mk := range []struct {
		name string
		top  *Topology
	}{
		{"mesh", Mesh(12)},
		{"chiplet", chip2x2()},
	} {
		top := mk.top
		n := top.N()

		// k > N clamps to one shard per core.
		part := PartitionFor(top, n+5)
		partitionInvariants(t, part, n, n, 1)
		if part[n-1] != n-1 {
			t.Errorf("%s: k>N clamp: last core in shard %d, want %d", mk.name, part[n-1], n-1)
		}

		// k = 0 and negative clamp to a single shard.
		for _, k := range []int{0, -3} {
			for i, p := range PartitionFor(top, k) {
				if p != 0 {
					t.Fatalf("%s: k=%d: core %d in shard %d", mk.name, k, i, p)
				}
			}
		}

		// N % k != 0 still balances to within one dealt unit.
		unit := 1
		if h := top.Hierarchy(); h != nil {
			unit = h.CoresPerUnit(0)
		}
		partitionInvariants(t, PartitionFor(top, 5), n, 5, unit)
	}

	// Single-core machine: every k collapses to the one valid assignment.
	one := Mesh(1)
	for _, k := range []int{1, 2, 100} {
		part := PartitionFor(one, k)
		if len(part) != 1 || part[0] != 0 {
			t.Errorf("single core, k=%d: part = %v", k, part)
		}
	}
	oneChip := Chiplet([]Tier{{W: 1, H: 1, Lat: 1, BW: 1}})
	if part := PartitionFor(oneChip, 3); len(part) != 1 || part[0] != 0 {
		t.Errorf("single-core chiplet: part = %v", part)
	}
}
