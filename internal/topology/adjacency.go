package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"simany/internal/vtime"
)

// The adjacency file format, as in SiMany's configuration files, gives the
// connections between cores as an adjacency matrix. Our textual form is:
//
//	# comment
//	cores N
//	link A B [latency_cycles [bandwidth_bytes_per_cycle]]
//	...
//
// or a raw 0/1 matrix after the "matrix" keyword, one row per line, using
// the default latency and bandwidth:
//
//	cores N
//	matrix
//	0 1 0 ...
//	...
//
// Both directions of a link are created from a single declaration.

// ParseAdjacency reads a topology description from r.
func ParseAdjacency(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var t *Topology
	lineNo := 0
	inMatrix := false
	matrixRow := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if inMatrix {
			if t == nil {
				return nil, fmt.Errorf("topology: line %d: matrix before cores", lineNo)
			}
			if len(fields) != t.N() {
				return nil, fmt.Errorf("topology: line %d: matrix row has %d entries, want %d", lineNo, len(fields), t.N())
			}
			for col, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("topology: line %d: bad matrix entry %q", lineNo, f)
				}
				if v != 0 && col > matrixRow {
					t.AddLink(matrixRow, col, DefaultLatency, DefaultBandwidth)
				}
			}
			matrixRow++
			if matrixRow == t.N() {
				inMatrix = false
			}
			continue
		}
		switch fields[0] {
		case "cores":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology: line %d: cores takes one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("topology: line %d: bad core count %q", lineNo, fields[1])
			}
			t = New(n, "file")
		case "matrix":
			if t == nil {
				return nil, fmt.Errorf("topology: line %d: matrix before cores", lineNo)
			}
			inMatrix = true
			matrixRow = 0
		case "link":
			if t == nil {
				return nil, fmt.Errorf("topology: line %d: link before cores", lineNo)
			}
			if len(fields) < 3 || len(fields) > 5 {
				return nil, fmt.Errorf("topology: line %d: link takes 2-4 arguments", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topology: line %d: bad link endpoints", lineNo)
			}
			lat := DefaultLatency
			bw := DefaultBandwidth
			if len(fields) >= 4 {
				f, err := strconv.ParseFloat(fields[3], 64)
				if err != nil || f < 0 {
					return nil, fmt.Errorf("topology: line %d: bad latency %q", lineNo, fields[3])
				}
				lat = vtime.Cycles(f)
			}
			if len(fields) == 5 {
				v, err := strconv.Atoi(fields[4])
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("topology: line %d: bad bandwidth %q", lineNo, fields[4])
				}
				bw = v
			}
			if a < 0 || a >= t.N() || b < 0 || b >= t.N() || a == b {
				return nil, fmt.Errorf("topology: line %d: invalid link %d-%d", lineNo, a, b)
			}
			t.AddLink(a, b, lat, bw)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("topology: no cores declaration found")
	}
	if inMatrix {
		return nil, fmt.Errorf("topology: truncated adjacency matrix")
	}
	return t, nil
}

// WriteAdjacency writes t in the link-list textual form readable by
// ParseAdjacency.
func WriteAdjacency(w io.Writer, t *Topology) error {
	if _, err := fmt.Fprintf(w, "# topology %s\ncores %d\n", t.Name(), t.N()); err != nil {
		return err
	}
	for _, l := range t.Links() {
		if l.From > l.To {
			continue // each symmetric pair written once
		}
		if _, err := fmt.Fprintf(w, "link %d %d %g %d\n", l.From, l.To, l.Latency.InCycles(), l.Bandwidth); err != nil {
			return err
		}
	}
	return nil
}
