package topology

// Partitioning for the sharded parallel execution engine (internal/core):
// the topology is split into k contiguous regions of near-equal size, one
// per host-side shard. Spatial synchronization makes core progress a purely
// local decision, so the fewer edges cross shard boundaries, the more
// simulation work proceeds without cross-shard coordination; the
// partitioner therefore grows connected regions and reports the cut size so
// callers can evaluate partition quality.

// Partition assigns every core to one of k shards and returns the
// assignment (len N, values in [0,k)). Shards are balanced to within one
// core and consist of consecutive core IDs. All constructors in this
// package lay cores out row-major, so consecutive ID ranges form connected
// strips on meshes, tori and rings with a near-minimal cut (a 16×16 mesh in
// 4 shards cuts 3 row boundaries = 48 of 480 edges). The assignment is
// deterministic and independent of host scheduling.
//
// k is clamped to [1, N].
func Partition(t *Topology, k int) []int {
	n := t.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	part := make([]int, n)
	if k == 1 {
		return part
	}
	// The first (n mod k) shards take one extra core.
	v := 0
	for s := 0; s < k; s++ {
		size := n / k
		if s < n%k {
			size++
		}
		for i := 0; i < size; i++ {
			part[v] = s
			v++
		}
	}
	return part
}

// PartitionFor returns the shard assignment the engine should use for t:
// for hierarchical (chiplet) topologies it aligns shard boundaries with
// physical unit boundaries, otherwise it falls back to the flat contiguous
// Partition. Like Partition, k is clamped to [1, N] and the assignment is
// deterministic and independent of host scheduling.
//
// Alignment picks the coarsest tier granularity that still yields at least
// k units, then deals whole units to shards contiguously (the first
// U mod k shards take one extra unit). A cut then only ever severs gateway
// links of that tier or above — the slow, narrow links — never a
// chiplet-internal mesh edge, so chip-aligned cuts are no larger than flat
// contiguous cuts (enforced by TestPartitionAlignedCutNoWorse). If k
// exceeds the chiplet count the unit granularity cannot satisfy k and the
// flat partition is used.
func PartitionFor(t *Topology, k int) []int {
	h := t.Hierarchy()
	n := t.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if h == nil || k == 1 {
		return Partition(t, k)
	}
	// Coarsest tier with at least k units. Tier len-1 is the whole
	// machine (1 unit), so start below it.
	per := 0
	for tier := len(h.Tiers) - 2; tier >= 0; tier-- {
		if h.NumUnits(tier) >= k {
			per = h.CoresPerUnit(tier)
			break
		}
	}
	if per == 0 {
		// More shards than chiplets: units cannot be dealt whole.
		return Partition(t, k)
	}
	units := n / per
	part := make([]int, n)
	v := 0
	for s := 0; s < k; s++ {
		u := units / k
		if s < units%k {
			u++
		}
		for i := 0; i < u*per; i++ {
			part[v] = s
			v++
		}
	}
	return part
}

// TierCuts classifies the cut edges of an assignment by hierarchy tier:
// element i counts cut edges whose tier is i (EdgeTier). For flat
// topologies it returns a single element equal to CutEdges.
func TierCuts(t *Topology, part []int) []int {
	h := t.Hierarchy()
	if h == nil {
		return []int{CutEdges(t, part)}
	}
	cuts := make([]int, len(h.Tiers))
	for v := 0; v < t.N(); v++ {
		for _, nb := range t.Neighbors(v) {
			if v < nb && part[v] != part[nb] {
				cuts[h.EdgeTier(v, nb)]++
			}
		}
	}
	return cuts
}

// CutEdges counts the undirected topology edges whose endpoints fall in
// different parts of the given assignment.
func CutEdges(t *Topology, part []int) int {
	cut := 0
	for v := 0; v < t.N(); v++ {
		for _, nb := range t.Neighbors(v) {
			if v < nb && part[v] != part[nb] {
				cut++
			}
		}
	}
	return cut
}

// PartSizes returns the number of cores in each part of the assignment.
func PartSizes(part []int, k int) []int {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}
