// Package topology describes interconnection networks between simulated
// cores.
//
// SiMany reads the network as an adjacency matrix from a configuration file
// and supports arbitrary organizations; the paper's experiments use uniform
// 2D meshes, clustered meshes (4 or 8 clusters with slower inter-cluster
// links) and the same meshes with polymorphic cores. Each link carries its
// own latency and bandwidth (§III "Architecture Variability").
package topology

import (
	"fmt"
	"sort"

	"simany/internal/vtime"
)

// Link describes one directed edge of the network. Links are created in
// symmetric pairs by all constructors, but the representation is directed so
// that contention is tracked per direction.
type Link struct {
	From, To  int
	Latency   vtime.Time // traversal latency
	Bandwidth int        // bytes per cycle
}

// Topology is an interconnection network: a set of cores (vertices) and
// directed links with individual latencies and bandwidths.
type Topology struct {
	n     int
	adj   [][]int         // neighbor lists, sorted
	links map[[2]int]Link // directed edges
	name  string
}

// New creates an empty topology with n cores and no links.
func New(n int, name string) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid core count %d", n))
	}
	return &Topology{
		n:     n,
		adj:   make([][]int, n),
		links: make(map[[2]int]Link),
		name:  name,
	}
}

// N returns the number of cores.
func (t *Topology) N() int { return t.n }

// Name returns the descriptive name of the topology.
func (t *Topology) Name() string { return t.name }

// AddLink adds a symmetric pair of directed links between a and b.
// Re-adding an existing link overwrites its parameters.
func (t *Topology) AddLink(a, b int, lat vtime.Time, bw int) {
	if a == b {
		panic(fmt.Sprintf("topology: self link at core %d", a))
	}
	t.checkCore(a)
	t.checkCore(b)
	if bw <= 0 {
		panic(fmt.Sprintf("topology: non-positive bandwidth on link %d-%d", a, b))
	}
	if lat < 0 {
		panic(fmt.Sprintf("topology: negative latency on link %d-%d", a, b))
	}
	_, existed := t.links[[2]int{a, b}]
	t.links[[2]int{a, b}] = Link{From: a, To: b, Latency: lat, Bandwidth: bw}
	t.links[[2]int{b, a}] = Link{From: b, To: a, Latency: lat, Bandwidth: bw}
	if !existed {
		t.adj[a] = insertSorted(t.adj[a], b)
		t.adj[b] = insertSorted(t.adj[b], a)
	}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (t *Topology) checkCore(c int) {
	if c < 0 || c >= t.n {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", c, t.n))
	}
}

// Neighbors returns the sorted neighbor list of core c. The returned slice
// must not be modified.
func (t *Topology) Neighbors(c int) []int {
	t.checkCore(c)
	return t.adj[c]
}

// Degree returns the number of neighbors of core c.
func (t *Topology) Degree(c int) int {
	t.checkCore(c)
	return len(t.adj[c])
}

// LinkBetween returns the directed link from a to b.
func (t *Topology) LinkBetween(a, b int) (Link, bool) {
	l, ok := t.links[[2]int{a, b}]
	return l, ok
}

// Links returns all directed links in a deterministic order.
func (t *Topology) Links() []Link {
	out := make([]Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Connected reports whether every core can reach every other core.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[c] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	return count == t.n
}

// Diameter returns the largest topological distance (in hops) between any
// two cores. The spatial synchronization drift between any two cores is
// bounded by Diameter() × T (§II.A). It returns -1 for a disconnected
// network.
func (t *Topology) Diameter() int {
	diam := 0
	dist := make([]int, t.n)
	for src := 0; src < t.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, nb := range t.adj[c] {
				if dist[nb] < 0 {
					dist[nb] = dist[c] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// HopDistance returns the hop count of the shortest path from a to b, or -1
// if unreachable.
func (t *Topology) HopDistance(a, b int) int {
	t.checkCore(a)
	t.checkCore(b)
	if a == b {
		return 0
	}
	dist := make([]int, t.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[c] {
			if dist[nb] < 0 {
				dist[nb] = dist[c] + 1
				if nb == b {
					return dist[nb]
				}
				queue = append(queue, nb)
			}
		}
	}
	return -1
}
