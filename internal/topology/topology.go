// Package topology describes interconnection networks between simulated
// cores.
//
// SiMany reads the network as an adjacency matrix from a configuration file
// and supports arbitrary organizations; the paper's experiments use uniform
// 2D meshes, clustered meshes (4 or 8 clusters with slower inter-cluster
// links) and the same meshes with polymorphic cores. Each link carries its
// own latency and bandwidth (§III "Architecture Variability").
//
// The adjacency is stored CSR-style: three aligned per-core slices (neighbor
// ID, link latency, link bandwidth), each a view into one flat shared
// backing array for bulk-built topologies. A 100k-core chiplet machine
// (hierarchy.go) therefore costs a few megabytes instead of the hundreds a
// per-edge map entry would — the map[[2]int]Link representation this
// replaces spent ~100 bytes per directed edge before payload.
package topology

import (
	"fmt"
	"sort"

	"simany/internal/vtime"
)

// Link describes one directed edge of the network. Links are created in
// symmetric pairs by all constructors, but the representation is directed so
// that contention is tracked per direction.
type Link struct {
	From, To  int
	Latency   vtime.Time // traversal latency
	Bandwidth int        // bytes per cycle
}

// Topology is an interconnection network: a set of cores (vertices) and
// directed links with individual latencies and bandwidths.
type Topology struct {
	n int
	// CSR adjacency: adj[c] lists the neighbors of core c in sorted order;
	// lat[c][i] and bw[c][i] carry the parameters of the directed link
	// c → adj[c][i]. For bulk-built topologies (fromEdges) the three
	// per-core slices are full-capacity views into one flat backing array
	// each, so AddLink's insert must reallocate rather than shift in place.
	adj    [][]int
	lat    [][]vtime.Time
	bw     [][]int
	nlinks int // directed link count (2× the undirected edge count)
	name   string

	hier *Hierarchy // non-nil for hierarchical (chiplet) topologies
	// diamBound, when > 0, is a precomputed upper bound on the diameter
	// that Diameter returns instead of running all-pairs BFS. Adding links
	// can only shrink distances, so the bound stays sound after AddLink.
	diamBound int
}

// New creates an empty topology with n cores and no links.
func New(n int, name string) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid core count %d", n))
	}
	return &Topology{
		n:    n,
		adj:  make([][]int, n),
		lat:  make([][]vtime.Time, n),
		bw:   make([][]int, n),
		name: name,
	}
}

// edge is one undirected edge handed to the bulk builder.
type edge struct {
	a, b int
	lat  vtime.Time
	bw   int
}

// fromEdges bulk-builds a topology from undirected edges: count degrees,
// carve per-core views out of three flat backing arrays, fill, and sort each
// core's segment. Unlike AddLink it panics on duplicate edges (constructors
// that rely on overwrite semantics, such as a 2-wide torus, must stay on the
// AddLink path). The per-core views are capacity-limited so a later AddLink
// cannot grow one view into its neighbor's backing.
func fromEdges(n int, name string, edges []edge) *Topology {
	t := New(n, name)
	deg := make([]int, n+1)
	for _, e := range edges {
		if e.a == e.b {
			panic(fmt.Sprintf("topology: self link at core %d", e.a))
		}
		t.checkCore(e.a)
		t.checkCore(e.b)
		if e.bw <= 0 {
			panic(fmt.Sprintf("topology: non-positive bandwidth on link %d-%d", e.a, e.b))
		}
		if e.lat < 0 {
			panic(fmt.Sprintf("topology: negative latency on link %d-%d", e.a, e.b))
		}
		deg[e.a+1]++
		deg[e.b+1]++
	}
	for c := 0; c < n; c++ {
		deg[c+1] += deg[c] // prefix sums: deg[c] = start offset of core c
	}
	m := 2 * len(edges)
	flatAdj := make([]int, m)
	flatLat := make([]vtime.Time, m)
	flatBW := make([]int, m)
	cursor := make([]int, n)
	copy(cursor, deg[:n])
	put := func(from, to int, lat vtime.Time, bw int) {
		i := cursor[from]
		cursor[from]++
		flatAdj[i] = to
		flatLat[i] = lat
		flatBW[i] = bw
	}
	for _, e := range edges {
		put(e.a, e.b, e.lat, e.bw)
		put(e.b, e.a, e.lat, e.bw)
	}
	for c := 0; c < n; c++ {
		lo, hi := deg[c], deg[c+1]
		t.adj[c] = flatAdj[lo:hi:hi]
		t.lat[c] = flatLat[lo:hi:hi]
		t.bw[c] = flatBW[lo:hi:hi]
		// Insertion sort of the three parallel arrays; node degrees are
		// tiny (≤ 6 for every bundled constructor) so this is cheap.
		a, l, b := t.adj[c], t.lat[c], t.bw[c]
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j-1] > a[j]; j-- {
				a[j-1], a[j] = a[j], a[j-1]
				l[j-1], l[j] = l[j], l[j-1]
				b[j-1], b[j] = b[j], b[j-1]
			}
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] == a[i] {
				panic(fmt.Sprintf("topology: duplicate link %d-%d", c, a[i]))
			}
		}
	}
	t.nlinks = m
	return t
}

// N returns the number of cores.
func (t *Topology) N() int { return t.n }

// Name returns the descriptive name of the topology.
func (t *Topology) Name() string { return t.name }

// Hierarchy returns the tier structure of a hierarchical (chiplet) topology,
// nil for flat topologies.
func (t *Topology) Hierarchy() *Hierarchy { return t.hier }

// AddLink adds a symmetric pair of directed links between a and b.
// Re-adding an existing link overwrites its parameters.
func (t *Topology) AddLink(a, b int, lat vtime.Time, bw int) {
	if a == b {
		panic(fmt.Sprintf("topology: self link at core %d", a))
	}
	t.checkCore(a)
	t.checkCore(b)
	if bw <= 0 {
		panic(fmt.Sprintf("topology: non-positive bandwidth on link %d-%d", a, b))
	}
	if lat < 0 {
		panic(fmt.Sprintf("topology: negative latency on link %d-%d", a, b))
	}
	if !t.insertLink(a, b, lat, bw) {
		t.nlinks += 2
	}
	t.insertLink(b, a, lat, bw)
}

// insertLink records the directed link from → to, keeping the three aligned
// per-core slices sorted by neighbor ID. It reports whether the link already
// existed (in which case only the parameters are updated). Inserts always
// reallocate: the slices may be capacity-limited views into a shared flat
// backing (fromEdges) that must not be shifted or grown in place.
func (t *Topology) insertLink(from, to int, lat vtime.Time, bw int) bool {
	a := t.adj[from]
	i := sort.SearchInts(a, to)
	if i < len(a) && a[i] == to {
		t.lat[from][i] = lat
		t.bw[from][i] = bw
		return true
	}
	t.adj[from] = insertAt(a, i, to)
	t.lat[from] = insertAt(t.lat[from], i, lat)
	t.bw[from] = insertAt(t.bw[from], i, bw)
	return false
}

// insertAt returns a fresh slice equal to s with v inserted at index i.
func insertAt[T any](s []T, i int, v T) []T {
	out := make([]T, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

func (t *Topology) checkCore(c int) {
	if c < 0 || c >= t.n {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", c, t.n))
	}
}

// Neighbors returns the sorted neighbor list of core c. The returned slice
// must not be modified.
func (t *Topology) Neighbors(c int) []int {
	t.checkCore(c)
	return t.adj[c]
}

// NeighborLatencies returns the latencies of core c's outgoing links,
// aligned with Neighbors(c). The returned slice must not be modified.
func (t *Topology) NeighborLatencies(c int) []vtime.Time {
	t.checkCore(c)
	return t.lat[c]
}

// NeighborBandwidths returns the bandwidths of core c's outgoing links,
// aligned with Neighbors(c). The returned slice must not be modified.
func (t *Topology) NeighborBandwidths(c int) []int {
	t.checkCore(c)
	return t.bw[c]
}

// Degree returns the number of neighbors of core c.
func (t *Topology) Degree(c int) int {
	t.checkCore(c)
	return len(t.adj[c])
}

// LinkBetween returns the directed link from a to b.
func (t *Topology) LinkBetween(a, b int) (Link, bool) {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		return Link{}, false
	}
	adj := t.adj[a]
	i := sort.SearchInts(adj, b)
	if i == len(adj) || adj[i] != b {
		return Link{}, false
	}
	return Link{From: a, To: b, Latency: t.lat[a][i], Bandwidth: t.bw[a][i]}, true
}

// Links returns all directed links in a deterministic order.
func (t *Topology) Links() []Link {
	out := make([]Link, 0, t.nlinks)
	for c := 0; c < t.n; c++ {
		for i, nb := range t.adj[c] {
			out = append(out, Link{From: c, To: nb, Latency: t.lat[c][i], Bandwidth: t.bw[c][i]})
		}
	}
	return out
}

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return t.nlinks }

// Connected reports whether every core can reach every other core.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[c] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	return count == t.n
}

// Diameter returns the largest topological distance (in hops) between any
// two cores. The spatial synchronization drift between any two cores is
// bounded by Diameter() × T (§II.A). It returns -1 for a disconnected
// network.
//
// For hierarchical topologies (Chiplet) it returns a precomputed analytic
// upper bound instead of the exact value: the all-pairs BFS is O(n·E) and a
// 100k-core machine would take minutes, while the drift bound only needs an
// upper bound to stay sound.
func (t *Topology) Diameter() int {
	if t.diamBound > 0 {
		return t.diamBound
	}
	diam := 0
	dist := make([]int, t.n)
	for src := 0; src < t.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, nb := range t.adj[c] {
				if dist[nb] < 0 {
					dist[nb] = dist[c] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// HopDistance returns the hop count of the shortest path from a to b, or -1
// if unreachable.
func (t *Topology) HopDistance(a, b int) int {
	t.checkCore(a)
	t.checkCore(b)
	if a == b {
		return 0
	}
	dist := make([]int, t.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[c] {
			if dist[nb] < 0 {
				dist[nb] = dist[c] + 1
				if nb == b {
					return dist[nb]
				}
				queue = append(queue, nb)
			}
		}
	}
	return -1
}
