package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simany/internal/vtime"
)

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {8, 4, 2}, {64, 8, 8}, {256, 16, 16},
		{1024, 32, 32}, {12, 4, 3}, {7, 7, 1},
	}
	for _, c := range cases {
		w, h := MeshDims(c.n)
		if w*h != c.n {
			t.Errorf("MeshDims(%d) = %dx%d, product %d", c.n, w, h, w*h)
		}
		if w != c.w || h != c.h {
			t.Errorf("MeshDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestMesh2DStructure(t *testing.T) {
	m := Mesh2D(4, 3, DefaultLatency, DefaultBandwidth)
	if m.N() != 12 {
		t.Fatalf("N = %d", m.N())
	}
	// Corner has degree 2, edge 3, interior 4.
	if d := m.Degree(0); d != 2 {
		t.Errorf("corner degree = %d", d)
	}
	if d := m.Degree(1); d != 3 {
		t.Errorf("edge degree = %d", d)
	}
	if d := m.Degree(5); d != 4 {
		t.Errorf("interior degree = %d", d)
	}
	if !m.Connected() {
		t.Error("mesh not connected")
	}
	// Diameter of a 4x3 mesh is (4-1)+(3-1) = 5.
	if d := m.Diameter(); d != 5 {
		t.Errorf("diameter = %d, want 5", d)
	}
	// Link count: horizontal 3*3=9, vertical 4*2=8, ×2 directions.
	if got := m.NumLinks(); got != 34 {
		t.Errorf("NumLinks = %d, want 34", got)
	}
}

func TestMeshSingleCore(t *testing.T) {
	m := Mesh(1)
	if m.N() != 1 || m.NumLinks() != 0 || !m.Connected() || m.Diameter() != 0 {
		t.Errorf("1-core mesh malformed: links=%d diam=%d", m.NumLinks(), m.Diameter())
	}
}

func TestTorusDiameter(t *testing.T) {
	// 4x4 torus diameter = 2+2 = 4.
	m := Torus2D(4, 4, DefaultLatency, DefaultBandwidth)
	if d := m.Diameter(); d != 4 {
		t.Errorf("torus diameter = %d, want 4", d)
	}
	for c := 0; c < m.N(); c++ {
		if m.Degree(c) != 4 {
			t.Errorf("torus core %d degree = %d", c, m.Degree(c))
		}
	}
}

func TestRingStarFull(t *testing.T) {
	r := Ring(8, DefaultLatency, DefaultBandwidth)
	if d := r.Diameter(); d != 4 {
		t.Errorf("ring-8 diameter = %d, want 4", d)
	}
	s := Star(9, DefaultLatency, DefaultBandwidth)
	if d := s.Diameter(); d != 2 {
		t.Errorf("star-9 diameter = %d, want 2", d)
	}
	if s.Degree(0) != 8 {
		t.Errorf("star hub degree = %d", s.Degree(0))
	}
	f := FullyConnected(5, DefaultLatency, DefaultBandwidth)
	if d := f.Diameter(); d != 1 {
		t.Errorf("full-5 diameter = %d, want 1", d)
	}
}

func TestRingTwoCores(t *testing.T) {
	r := Ring(2, DefaultLatency, DefaultBandwidth)
	if r.NumLinks() != 2 || r.Diameter() != 1 {
		t.Errorf("ring-2: links=%d diam=%d", r.NumLinks(), r.Diameter())
	}
}

func TestClustered(t *testing.T) {
	p := DefaultClusteredParams(4)
	m := Clustered(64, p)
	if m.N() != 64 {
		t.Fatalf("N = %d", m.N())
	}
	if !m.Connected() {
		t.Fatal("clustered topology disconnected")
	}
	// Intra-cluster link latency is 0.5 cycles.
	l, ok := m.LinkBetween(0, 1)
	if !ok {
		t.Fatal("missing intra-cluster link 0-1")
	}
	if l.Latency != vtime.Cycles(0.5) {
		t.Errorf("intra latency = %v", l.Latency)
	}
	// Inter-cluster link from corner core 15 to core 16 (cluster 1 base).
	il, ok := m.LinkBetween(15, 16)
	if !ok {
		t.Fatal("missing inter-cluster link 15-16")
	}
	if il.Latency != vtime.CyclesInt(4) {
		t.Errorf("inter latency = %v", il.Latency)
	}
}

func TestClusteredEightClusters(t *testing.T) {
	m := Clustered(1024, DefaultClusteredParams(8))
	if m.N() != 1024 || !m.Connected() {
		t.Fatalf("clustered-8 1024 malformed (connected=%v)", m.Connected())
	}
}

func TestClusteredBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-divisible cluster split")
		}
	}()
	Clustered(10, DefaultClusteredParams(4))
}

func TestAddLinkSymmetric(t *testing.T) {
	tp := New(4, "t")
	tp.AddLink(0, 2, vtime.CyclesInt(3), 64)
	a, ok1 := tp.LinkBetween(0, 2)
	b, ok2 := tp.LinkBetween(2, 0)
	if !ok1 || !ok2 {
		t.Fatal("link not symmetric")
	}
	if a.Latency != b.Latency || a.Bandwidth != b.Bandwidth {
		t.Error("asymmetric parameters")
	}
	if a.From != 0 || a.To != 2 || b.From != 2 || b.To != 0 {
		t.Error("wrong endpoints")
	}
}

func TestAddLinkOverwrite(t *testing.T) {
	tp := New(2, "t")
	tp.AddLink(0, 1, vtime.CyclesInt(1), 64)
	tp.AddLink(0, 1, vtime.CyclesInt(9), 32)
	if tp.NumLinks() != 2 {
		t.Errorf("NumLinks = %d after overwrite", tp.NumLinks())
	}
	l, _ := tp.LinkBetween(0, 1)
	if l.Latency != vtime.CyclesInt(9) || l.Bandwidth != 32 {
		t.Error("overwrite did not take")
	}
	if d := tp.Degree(0); d != 1 {
		t.Errorf("degree = %d after overwrite", d)
	}
}

func TestHopDistance(t *testing.T) {
	m := Mesh2D(4, 4, DefaultLatency, DefaultBandwidth)
	if d := m.HopDistance(0, 15); d != 6 {
		t.Errorf("HopDistance(0,15) = %d, want 6", d)
	}
	if d := m.HopDistance(5, 5); d != 0 {
		t.Errorf("HopDistance(5,5) = %d", d)
	}
	disc := New(3, "disc")
	disc.AddLink(0, 1, DefaultLatency, DefaultBandwidth)
	if d := disc.HopDistance(0, 2); d != -1 {
		t.Errorf("HopDistance disconnected = %d, want -1", d)
	}
	if disc.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if disc.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
}

func TestNeighborsSorted(t *testing.T) {
	tp := New(6, "t")
	tp.AddLink(3, 5, DefaultLatency, DefaultBandwidth)
	tp.AddLink(3, 1, DefaultLatency, DefaultBandwidth)
	tp.AddLink(3, 4, DefaultLatency, DefaultBandwidth)
	tp.AddLink(3, 0, DefaultLatency, DefaultBandwidth)
	nbs := tp.Neighbors(3)
	want := []int{0, 1, 4, 5}
	if len(nbs) != len(want) {
		t.Fatalf("neighbors = %v", nbs)
	}
	for i := range want {
		if nbs[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nbs, want)
		}
	}
}

// Property: for random connected graphs, hop distance satisfies the triangle
// inequality and symmetry, and diameter equals the max pairwise distance.
func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(14)
		tp := New(n, "rand")
		// Random spanning tree guarantees connectivity.
		for v := 1; v < n; v++ {
			tp.AddLink(v, rng.Intn(v), DefaultLatency, DefaultBandwidth)
		}
		extra := rng.Intn(n)
		for e := 0; e < extra; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				tp.AddLink(a, b, DefaultLatency, DefaultBandwidth)
			}
		}
		maxD := 0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				dab := tp.HopDistance(a, b)
				if dab != tp.HopDistance(b, a) {
					t.Fatalf("asymmetric distance %d-%d", a, b)
				}
				if dab > maxD {
					maxD = dab
				}
				for c := 0; c < n; c++ {
					if dac, dcb := tp.HopDistance(a, c), tp.HopDistance(c, b); dab > dac+dcb {
						t.Fatalf("triangle inequality violated %d-%d via %d", a, b, c)
					}
				}
			}
		}
		if d := tp.Diameter(); d != maxD {
			t.Fatalf("diameter = %d, max pairwise = %d", d, maxD)
		}
	}
}

func TestMeshDiameterProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		w, h := int(a%12)+1, int(b%12)+1
		m := Mesh2D(w, h, DefaultLatency, DefaultBandwidth)
		return m.Diameter() == (w-1)+(h-1) && m.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
