package topology

import "testing"

func TestPartitionBalanceAndCoverage(t *testing.T) {
	for _, tc := range []struct {
		topo *Topology
		k    int
	}{
		{Mesh(16), 4},
		{Mesh(256), 8},
		{Ring(10, DefaultLatency, DefaultBandwidth), 3},
		{Torus2D(8, 8, DefaultLatency, DefaultBandwidth), 5},
		{Mesh(7), 16}, // k > N clamps to N
	} {
		k := tc.k
		if k > tc.topo.N() {
			k = tc.topo.N()
		}
		part := Partition(tc.topo, tc.k)
		if len(part) != tc.topo.N() {
			t.Fatalf("%s k=%d: len=%d want %d", tc.topo.Name(), tc.k, len(part), tc.topo.N())
		}
		sizes := PartSizes(part, k)
		min, max := tc.topo.N(), 0
		for s, sz := range sizes {
			if sz == 0 {
				t.Errorf("%s k=%d: shard %d empty", tc.topo.Name(), tc.k, s)
			}
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		if max-min > 1 {
			t.Errorf("%s k=%d: imbalanced sizes %v", tc.topo.Name(), tc.k, sizes)
		}
		for v, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("%s k=%d: core %d assigned to %d", tc.topo.Name(), tc.k, v, p)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	m := Mesh(144)
	a := Partition(m, 6)
	b := Partition(m, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic assignment at core %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Each shard of a connected topology must itself be connected: contiguity is
// what keeps most neighbor effective-time updates shard-local.
func TestPartitionContiguous(t *testing.T) {
	topos := []*Topology{
		Mesh(64),
		Torus2D(8, 8, DefaultLatency, DefaultBandwidth),
		Ring(32, DefaultLatency, DefaultBandwidth),
	}
	for _, topo := range topos {
		for _, k := range []int{2, 4, 7} {
			part := Partition(topo, k)
			for s := 0; s < k; s++ {
				var members []int
				for v, p := range part {
					if p == s {
						members = append(members, v)
					}
				}
				if len(members) == 0 {
					continue
				}
				// BFS within the shard.
				seen := map[int]bool{members[0]: true}
				queue := []int{members[0]}
				for len(queue) > 0 {
					v := queue[0]
					queue = queue[1:]
					for _, nb := range topo.Neighbors(v) {
						if part[nb] == s && !seen[nb] {
							seen[nb] = true
							queue = append(queue, nb)
						}
					}
				}
				if len(seen) != len(members) {
					t.Errorf("%s k=%d: shard %d disconnected (%d of %d reachable)",
						topo.Name(), k, s, len(seen), len(members))
				}
			}
		}
	}
}

// On a row-major mesh, BFS strip growth should produce a cut far below the
// worst case (scattered assignment) and in the vicinity of horizontal strip
// cuts: for a 16x16 mesh in 4 shards, strips cut 3*16=48 edges.
func TestPartitionCutQualityMesh(t *testing.T) {
	m := Mesh(256)
	part := Partition(m, 4)
	cut := CutEdges(m, part)
	if cut > 96 { // 2x the ideal strip cut
		t.Errorf("mesh256 k=4: cut=%d, want <= 96", cut)
	}
	// Round-robin scatter for comparison: must be strictly worse.
	scatter := make([]int, m.N())
	for i := range scatter {
		scatter[i] = i % 4
	}
	if sc := CutEdges(m, scatter); cut >= sc {
		t.Errorf("partition cut %d not better than scatter cut %d", cut, sc)
	}
}
