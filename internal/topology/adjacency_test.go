package topology

import (
	"bytes"
	"strings"
	"testing"

	"simany/internal/vtime"
)

func TestParseAdjacencyLinks(t *testing.T) {
	src := `# small test net
cores 4
link 0 1
link 1 2 2.5
link 2 3 4 64
`
	tp, err := ParseAdjacency(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 4 {
		t.Fatalf("N = %d", tp.N())
	}
	l, ok := tp.LinkBetween(1, 2)
	if !ok || l.Latency != vtime.Cycles(2.5) {
		t.Errorf("link 1-2 = %+v ok=%v", l, ok)
	}
	l, ok = tp.LinkBetween(3, 2)
	if !ok || l.Latency != vtime.CyclesInt(4) || l.Bandwidth != 64 {
		t.Errorf("link 3-2 = %+v ok=%v", l, ok)
	}
	l, ok = tp.LinkBetween(0, 1)
	if !ok || l.Latency != DefaultLatency || l.Bandwidth != DefaultBandwidth {
		t.Errorf("link 0-1 defaults wrong: %+v", l)
	}
}

func TestParseAdjacencyMatrix(t *testing.T) {
	src := `cores 3
matrix
0 1 0
1 0 1
0 1 0
`
	tp, err := ParseAdjacency(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumLinks() != 4 {
		t.Errorf("NumLinks = %d, want 4", tp.NumLinks())
	}
	if _, ok := tp.LinkBetween(0, 2); ok {
		t.Error("unexpected link 0-2")
	}
	if tp.Diameter() != 2 {
		t.Errorf("diameter = %d", tp.Diameter())
	}
}

func TestParseAdjacencyErrors(t *testing.T) {
	bad := []string{
		"",
		"link 0 1",
		"cores 0",
		"cores -1",
		"cores two",
		"cores 2\nlink 0 0",
		"cores 2\nlink 0 5",
		"cores 2\nlink 0 1 -3",
		"cores 2\nlink 0 1 1 0",
		"cores 2\nlink 0",
		"cores 2\nfrobnicate",
		"cores 2\nmatrix\n0 1",
		"cores 2\nmatrix\n0 1 1\n1 0 1",
		"matrix",
	}
	for _, src := range bad {
		if _, err := ParseAdjacency(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	orig := Clustered(16, DefaultClusteredParams(4))
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.NumLinks() != orig.NumLinks() {
		t.Fatalf("round trip changed shape: %d/%d links vs %d/%d",
			back.N(), back.NumLinks(), orig.N(), orig.NumLinks())
	}
	for _, l := range orig.Links() {
		got, ok := back.LinkBetween(l.From, l.To)
		if !ok {
			t.Fatalf("missing link %d-%d", l.From, l.To)
		}
		if got.Latency != l.Latency || got.Bandwidth != l.Bandwidth {
			t.Fatalf("link %d-%d changed: %+v vs %+v", l.From, l.To, got, l)
		}
	}
}
