package topology

import (
	"strings"
	"testing"

	"simany/internal/vtime"
)

// chip2x2 is a 16-core machine: 2x2 chiplets arranged in a 2x2 chip mesh.
func chip2x2() *Topology {
	return Chiplet([]Tier{
		{W: 2, H: 2, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(2)},
	})
}

func TestChipletConstruction(t *testing.T) {
	top := chip2x2()
	if top.N() != 16 {
		t.Fatalf("N = %d, want 16", top.N())
	}
	if !top.Connected() {
		t.Fatal("chiplet machine disconnected")
	}
	h := top.Hierarchy()
	if h == nil {
		t.Fatal("Hierarchy() = nil")
	}
	if got := h.NumUnits(0); got != 4 {
		t.Errorf("NumUnits(0) = %d, want 4 chiplets", got)
	}
	if got := h.CoresPerUnit(0); got != 4 {
		t.Errorf("CoresPerUnit(0) = %d, want 4", got)
	}
	// Core numbering is hierarchical: cores 0-3 are chiplet 0, 4-7 chiplet 1.
	if h.UnitOf(5, 0) != 1 || h.UnitOf(3, 0) != 0 {
		t.Errorf("UnitOf misassigns: UnitOf(5,0)=%d UnitOf(3,0)=%d", h.UnitOf(5, 0), h.UnitOf(3, 0))
	}

	// Chiplet-internal mesh link: 1 cycle.
	l, ok := top.LinkBetween(0, 1)
	if !ok || l.Latency != vtime.CyclesInt(1) || l.Bandwidth != 128 {
		t.Errorf("intra-chiplet link = %+v ok=%v, want 1cy/128B", l, ok)
	}
	// Gateway link chiplet0→chiplet1: last core of unit 0 (core 3) to first
	// core of unit 1 (core 4), latency Lat+Penalty = 6.
	g, ok := top.LinkBetween(3, 4)
	if !ok || g.Latency != vtime.CyclesInt(6) || g.Bandwidth != 64 {
		t.Errorf("gateway link = %+v ok=%v, want 6cy/64B", g, ok)
	}
	// No direct link between interior cores of different chiplets.
	if _, ok := top.LinkBetween(0, 4); ok {
		t.Error("unexpected link between chiplet interiors")
	}
	if got := top.Name(); got != "chiplet-2x2-2x2" {
		t.Errorf("Name = %q", got)
	}
	if got := h.String(); got != "2x2 chiplet × 2x2 chip" {
		t.Errorf("String = %q", got)
	}
}

func TestChipletEdgeTiers(t *testing.T) {
	top := chip2x2()
	h := top.Hierarchy()
	// Count every undirected edge once, classified by tier.
	counts := make([]int, len(h.Tiers))
	for _, l := range top.Links() {
		if l.From < l.To {
			counts[h.EdgeTier(l.From, l.To)]++
		}
	}
	// 4 chiplets × 4 mesh edges (2x2 mesh) = 16 tier-0 edges; the 2x2 chip
	// mesh adds 4 gateway edges.
	if counts[0] != 16 || counts[1] != 4 {
		t.Errorf("edge tier counts = %v, want [16 4]", counts)
	}
	if got := h.EdgeTier(0, 1); got != 0 {
		t.Errorf("EdgeTier(0,1) = %d, want 0", got)
	}
	if got := h.EdgeTier(3, 4); got != 1 {
		t.Errorf("EdgeTier(3,4) = %d, want 1", got)
	}
}

// exactDiameter computes the true hop diameter by repeated BFS, bypassing
// the analytic bound that Diameter() returns for hierarchical topologies.
func exactDiameter(t *Topology) int {
	diam := 0
	for a := 0; a < t.N(); a++ {
		for b := a + 1; b < t.N(); b++ {
			d := t.HopDistance(a, b)
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

func TestChipletDiameterBoundSound(t *testing.T) {
	cases := [][]Tier{
		{{W: 2, H: 2, Lat: 1, BW: 1}},
		{{W: 3, H: 3, Lat: 1, BW: 1}, {W: 2, H: 2, Lat: 1, BW: 1}},
		{{W: 2, H: 2, Lat: 1, BW: 1}, {W: 2, H: 2, Lat: 1, BW: 1}, {W: 2, H: 2, Lat: 1, BW: 1}},
		{{W: 4, H: 1, Lat: 1, BW: 1}, {W: 1, H: 3, Lat: 1, BW: 1}},
		{{W: 1, H: 1, Lat: 1, BW: 1}, {W: 3, H: 2, Lat: 1, BW: 1}},
	}
	for _, tiers := range cases {
		top := Chiplet(tiers)
		bound := top.Diameter()
		exact := exactDiameter(top)
		if exact < 0 {
			t.Fatalf("%s: disconnected", top.Name())
		}
		if bound < exact {
			t.Errorf("%s: analytic bound %d < exact diameter %d (drift bound unsound)",
				top.Name(), bound, exact)
		}
	}
}

func TestParseChipletSpecDefaults(t *testing.T) {
	h, err := ParseChipletSpec("8x8,4x4,2x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tiers) != 3 {
		t.Fatalf("got %d tiers", len(h.Tiers))
	}
	t0, t1, t2 := h.Tiers[0], h.Tiers[1], h.Tiers[2]
	if t0.W != 8 || t0.H != 8 || t0.Lat != DefaultLatency || t0.BW != DefaultBandwidth || t0.Penalty != 0 {
		t.Errorf("tier 0 defaults wrong: %+v", t0)
	}
	// Each higher tier: 4x latency, half bandwidth, penalty = lat/2.
	if t1.Lat != 4*DefaultLatency || t1.BW != DefaultBandwidth/2 || t1.Penalty != 2*DefaultLatency {
		t.Errorf("tier 1 defaults wrong: %+v", t1)
	}
	if t2.Lat != 16*DefaultLatency || t2.BW != DefaultBandwidth/4 || t2.Penalty != 8*DefaultLatency {
		t.Errorf("tier 2 defaults wrong: %+v", t2)
	}
}

func TestParseChipletSpecExplicit(t *testing.T) {
	h, err := ParseChipletSpec("4x4@2/256,2x2@10/32+5,2x2@20+1")
	if err != nil {
		t.Fatal(err)
	}
	t0, t1, t2 := h.Tiers[0], h.Tiers[1], h.Tiers[2]
	if t0.Lat != vtime.Cycles(2) || t0.BW != 256 {
		t.Errorf("tier 0 = %+v", t0)
	}
	if t1.Lat != vtime.Cycles(10) || t1.BW != 32 || t1.Penalty != vtime.Cycles(5) {
		t.Errorf("tier 1 = %+v", t1)
	}
	if t2.Lat != vtime.Cycles(20) || t2.Penalty != vtime.Cycles(1) {
		t.Errorf("tier 2 = %+v", t2)
	}
	// Explicit latency without penalty resets the default penalty to lat/2.
	h, err = ParseChipletSpec("2x2,2x2@10")
	if err != nil {
		t.Fatal(err)
	}
	if h.Tiers[1].Penalty != vtime.Cycles(5) {
		t.Errorf("penalty after explicit latency = %v, want 5cy", h.Tiers[1].Penalty)
	}
}

func TestParseChipletSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "8x8,", "x4", "4x", "0x4", "4x-1", "axb",
		"4x4@", "4x4@-1", "4x4@1/0", "4x4@1/abc", "4x4@1+x", "4x4@1+-2",
	} {
		if _, err := ParseChipletSpec(spec); err == nil {
			t.Errorf("ParseChipletSpec(%q) accepted", spec)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"mesh:16", 16},
		{"mesh:8x2", 16},
		{"torus:4x4", 16},
		{"ring:10", 10},
		{"star:5", 5},
		{"full:6", 6},
		{"clustered:4:64", 64},
		{"chiplet:2x2,2x2", 16},
		{"64", 64},
	}
	for _, c := range cases {
		top, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if top.N() != c.n {
			t.Errorf("ParseSpec(%q).N() = %d, want %d", c.spec, top.N(), c.n)
		}
	}
	for _, spec := range []string{
		"", "mesh:", "mesh:axb", "torus:9", "ring:0", "clustered:3:64",
		"clustered:4", "hypercube:8", "-5", "chiplet:0x1",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestChipletValidation(t *testing.T) {
	cases := []struct {
		name  string
		tiers []Tier
	}{
		{"no tiers", nil},
		{"zero width", []Tier{{W: 0, H: 2, Lat: 1, BW: 1}}},
		{"zero bandwidth", []Tier{{W: 2, H: 2, Lat: 1, BW: 0}}},
		{"negative latency", []Tier{{W: 2, H: 2, Lat: -1, BW: 1}}},
		{"negative penalty", []Tier{{W: 2, H: 2, Lat: 1, BW: 1}, {W: 2, H: 1, Lat: 1, BW: 1, Penalty: -1}}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Chiplet did not panic", c.name)
				}
			}()
			Chiplet(c.tiers)
		}()
	}
}

func TestHierarchyTierName(t *testing.T) {
	want := []string{"chiplet", "chip", "package", "board", "tier4"}
	for i, w := range want {
		if got := TierName(i); got != w {
			t.Errorf("TierName(%d) = %q, want %q", i, got, w)
		}
	}
	if !strings.Contains(Chiplet([]Tier{{W: 2, H: 2, Lat: 1, BW: 1}}).Name(), "chiplet") {
		t.Error("single-tier name missing chiplet prefix")
	}
}
