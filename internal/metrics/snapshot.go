package metrics

import (
	"fmt"

	"simany/internal/snap"
)

// SnapshotState appends the striped accumulator's per-stripe values. The
// stripe breakdown (not just the sum) is serialized so a restored run
// keeps attributing subsequent updates to the right stripes.
func (s *Striped) SnapshotState(enc *snap.Encoder) {
	enc.Uvarint(uint64(len(s.vals)))
	for i := range s.vals {
		enc.Varint(s.vals[i].v)
	}
}

// RestoreState implements the inverse of SnapshotState. The stripe count
// must match: it is derived from the shard count, which the checkpoint
// fingerprint already pins.
func (s *Striped) RestoreState(dec *snap.Decoder) error {
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(s.vals)) {
		return fmt.Errorf("metrics: stripe count mismatch: checkpoint %d, live %d", n, len(s.vals))
	}
	for i := range s.vals {
		if s.vals[i].v, err = dec.Varint(); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotState appends every instrument's full striped state in sorted
// name order (canonical bytes). Single-threaded context only, like
// Snapshot.
func (r *Registry) SnapshotState(enc *snap.Encoder) {
	names := sortedKeys(r.counters)
	enc.Uvarint(uint64(len(names)))
	for _, name := range names {
		c := r.counters[name]
		enc.String(name)
		enc.Uvarint(uint64(len(c.vals)))
		for i := range c.vals {
			enc.Varint(c.vals[i].v)
		}
	}
	names = sortedKeys(r.hists)
	enc.Uvarint(uint64(len(names)))
	for _, name := range names {
		h := r.hists[name]
		enc.String(name)
		enc.Uvarint(uint64(len(h.vals)))
		for i := range h.vals {
			st := &h.vals[i]
			enc.Varint(st.count)
			enc.Varint(st.sum)
			enc.Varint(st.min)
			enc.Varint(st.max)
			enc.Uvarint(uint64(len(st.counts)))
			for _, n := range st.counts {
				enc.Varint(n)
			}
		}
	}
}

// RestoreState implements the inverse of SnapshotState into an
// already-built registry: every checkpointed instrument must exist with
// matching stripe and bucket shape (instrument creation is configuration,
// not state).
func (r *Registry) RestoreState(dec *snap.Decoder) error {
	nc, err := dec.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nc; i++ {
		name, err := dec.String()
		if err != nil {
			return err
		}
		c, ok := r.counters[name]
		if !ok {
			return fmt.Errorf("metrics: checkpoint has unknown counter %q", name)
		}
		ns, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if ns != uint64(len(c.vals)) {
			return fmt.Errorf("metrics: counter %q stripe count mismatch: checkpoint %d, live %d", name, ns, len(c.vals))
		}
		for j := range c.vals {
			if c.vals[j].v, err = dec.Varint(); err != nil {
				return err
			}
		}
	}
	nh, err := dec.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nh; i++ {
		name, err := dec.String()
		if err != nil {
			return err
		}
		h, ok := r.hists[name]
		if !ok {
			return fmt.Errorf("metrics: checkpoint has unknown histogram %q", name)
		}
		ns, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if ns != uint64(len(h.vals)) {
			return fmt.Errorf("metrics: histogram %q stripe count mismatch: checkpoint %d, live %d", name, ns, len(h.vals))
		}
		for j := range h.vals {
			st := &h.vals[j]
			if st.count, err = dec.Varint(); err != nil {
				return err
			}
			if st.sum, err = dec.Varint(); err != nil {
				return err
			}
			if st.min, err = dec.Varint(); err != nil {
				return err
			}
			if st.max, err = dec.Varint(); err != nil {
				return err
			}
			nb, err := dec.Uvarint()
			if err != nil {
				return err
			}
			if nb != uint64(len(st.counts)) {
				return fmt.Errorf("metrics: histogram %q bucket count mismatch: checkpoint %d, live %d", name, nb, len(st.counts))
			}
			for b := range st.counts {
				if st.counts[b], err = dec.Varint(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
