// Package metrics is a registry of deterministic simulator counters and
// histograms. Instruments are striped per execution shard: each shard
// worker writes only its own slot, so updates from concurrent shard rounds
// need no locks and no atomics, and every aggregate the registry exposes
// (sums, bucket counts, minima, maxima) is commutative — the merged
// snapshot is bitwise identical no matter how many host threads drove the
// shards or in which order stripes were filled.
//
// The contract mirrors the sharded engine's (DESIGN.md "Parallel
// execution"): within a round, shard s touches only stripe s; between
// rounds the single-threaded barrier may touch any stripe. Instrument
// creation (Registry.Counter / Registry.Histogram) is setup-time only —
// call it before the simulation runs, never from shard workers.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"

	"simany/internal/vtime"
)

// Unit describes how an instrument's values should be rendered.
type Unit int

const (
	// UnitCount is a plain event count.
	UnitCount Unit = iota
	// UnitTime marks values carried in vtime millicycles; snapshots render
	// them as cycle counts.
	UnitTime
)

// slot is one shard's private accumulator, padded so adjacent shards'
// hot counters do not share a cache line.
type slot struct {
	v int64
	_ [7]int64
}

// Counter is a monotonically growing sum, striped per shard.
type Counter struct {
	name string //simany:derived registry key, re-supplied by name on decode
	unit Unit   //simany:derived immutable instrument configuration
	vals []slot
}

// Name returns the instrument name.
func (c *Counter) Name() string { return c.name }

// Add accumulates n into the shard's stripe. Only the worker driving
// shard (or the single-threaded barrier) may call it.
func (c *Counter) Add(shard int, n int64) { c.vals[shard].v += n }

// Inc adds one.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// AddTime accumulates a virtual-time duration.
func (c *Counter) AddTime(shard int, d vtime.Time) {
	//lint:allow rawvtime striped accumulation preserves the millicycle unit; snapshots render it back through vtime
	c.Add(shard, int64(d))
}

// Value returns the sum over all stripes.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.vals {
		s += c.vals[i].v
	}
	return s
}

// PerShard returns a copy of the per-stripe values (the natural per-shard
// breakdown for instruments like barrier stall time).
func (c *Counter) PerShard() []int64 {
	out := make([]int64, len(c.vals))
	for i := range c.vals {
		out[i] = c.vals[i].v
	}
	return out
}

// Striped is a bare set of cache-line-padded per-stripe int64 accumulators
// for components that keep their own instruments outside a Registry (the
// network model's message/hop/byte totals). It follows the same write
// discipline as every registry instrument — stripe s is written only by
// the worker driving shard s, or by the single-threaded barrier — and the
// only aggregate it exposes is the commutative sum, so merged totals are
// identical at every worker count. Sum is single-threaded-context only
// (after the run, or at a barrier).
type Striped struct {
	vals []slot
}

// NewStriped returns an accumulator with n stripes (minimum 1).
func NewStriped(n int) *Striped {
	if n < 1 {
		n = 1
	}
	return &Striped{vals: make([]slot, n)}
}

// Widen grows the accumulator to at least n stripes, preserving existing
// stripe contents. Setup-time only.
func (s *Striped) Widen(n int) {
	for len(s.vals) < n {
		s.vals = append(s.vals, slot{})
	}
}

// Add accumulates d into the given stripe. Only the worker driving that
// stripe's shard (or the single-threaded barrier) may call it.
func (s *Striped) Add(stripe int, d int64) { s.vals[stripe].v += d }

// Sum returns the total over all stripes.
func (s *Striped) Sum() int64 {
	var t int64
	for i := range s.vals {
		t += s.vals[i].v
	}
	return t
}

// histStripe is one shard's private histogram state.
type histStripe struct {
	counts     []int64
	count, sum int64
	min, max   int64
	_          [4]int64 // keep adjacent stripes off one cache line
}

// Histogram is a fixed-bucket distribution, striped per shard. Bounds are
// inclusive upper bucket edges in ascending order; values above the last
// bound land in an implicit overflow bucket.
type Histogram struct {
	name   string  //simany:derived registry key, re-supplied by name on decode
	unit   Unit    //simany:derived immutable instrument configuration
	bounds []int64 //simany:derived immutable bucket edges fixed at construction
	vals   []histStripe
}

// Name returns the instrument name.
func (h *Histogram) Name() string { return h.name }

// Observe records v into the shard's stripe. Only the worker driving
// shard (or the single-threaded barrier) may call it.
func (h *Histogram) Observe(shard int, v int64) {
	s := &h.vals[shard]
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	s.counts[i]++
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// ObserveTime records a virtual-time duration.
func (h *Histogram) ObserveTime(shard int, d vtime.Time) {
	//lint:allow rawvtime bucket bounds are in the same millicycle unit; snapshots render values back through vtime
	h.Observe(shard, int64(d))
}

// DefaultTimeBounds returns the standard bucket edges for virtual-time
// duration histograms: a coarse exponential ladder from sub-cycle to a
// million cycles, in millicycles.
func DefaultTimeBounds() []int64 {
	cycles := []int64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 100_000, 1_000_000}
	out := make([]int64, len(cycles))
	for i, c := range cycles {
		//lint:allow rawvtime bucket edges are fixed millicycle constants derived once at setup
		out[i] = int64(vtime.CyclesInt(c))
	}
	return out
}

// DefaultCountBounds returns bucket edges for small-integer distributions
// (queue depths, steps per round).
func DefaultCountBounds() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
}

// Registry holds named instruments. Creation is setup-time only; updates
// follow the per-shard stripe discipline described in the package comment.
type Registry struct {
	shards   int //simany:derived stripe-count configuration fixed at construction
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// New creates an empty registry with a single stripe (the sequential
// engine). The kernel widens it via SetShards when it builds a sharded
// machine.
func New() *Registry {
	return &Registry{
		shards:   1,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// SetShards grows every instrument to at least n stripes. Existing stripe
// contents are preserved; SetShards never shrinks (extra stripes simply
// stay zero). The kernel calls it once, before the run.
func (r *Registry) SetShards(n int) {
	if n <= r.shards {
		return
	}
	r.shards = n
	// Widening each instrument is order-independent, but iterate in sorted
	// name order anyway so the package stays maporder-clean by inspection.
	for _, name := range sortedKeys(r.counters) {
		c := r.counters[name]
		for len(c.vals) < n {
			c.vals = append(c.vals, slot{})
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		for len(h.vals) < n {
			h.vals = append(h.vals, newHistStripe(len(h.bounds)))
		}
	}
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumShards returns the stripe count.
func (r *Registry) NumShards() int { return r.shards }

func newHistStripe(buckets int) histStripe {
	return histStripe{
		counts: make([]int64, buckets+1),
		min:    math.MaxInt64,
		max:    math.MinInt64,
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Setup-time only.
func (r *Registry) Counter(name string, unit Unit) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, unit: unit, vals: make([]slot, r.shards)}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket bounds on first use. Setup-time only.
func (r *Registry) Histogram(name string, unit Unit, bounds []int64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{name: name, unit: unit, bounds: b}
	for i := 0; i < r.shards; i++ {
		h.vals = append(h.vals, newHistStripe(len(b)))
	}
	r.hists[name] = h
	return h
}

// CounterSnap is one counter's merged state.
type CounterSnap struct {
	Name     string
	Unit     Unit
	Value    int64
	PerShard []int64
}

// Bucket is one merged histogram bucket; UpperBound == math.MaxInt64 marks
// the overflow bucket.
type Bucket struct {
	UpperBound int64
	Count      int64
}

// HistSnap is one histogram's merged state. Min/Max are only meaningful
// when Count > 0.
type HistSnap struct {
	Name     string
	Unit     Unit
	Count    int64
	Sum      int64
	Min, Max int64
	Buckets  []Bucket
}

// Snapshot is a deterministic point-in-time merge of every instrument,
// sorted by name.
type Snapshot struct {
	Counters   []CounterSnap
	Histograms []HistSnap
}

// Snapshot merges all stripes. Call it only from single-threaded context
// (after the run, or at a barrier): every merged quantity is commutative,
// so the result depends only on the observations, never on stripe order.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := r.counters[name]
		s.Counters = append(s.Counters, CounterSnap{
			Name: c.name, Unit: c.unit, Value: c.Value(), PerShard: c.PerShard(),
		})
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hs := HistSnap{Name: h.name, Unit: h.unit, Min: math.MaxInt64, Max: math.MinInt64}
		hs.Buckets = make([]Bucket, len(h.bounds)+1)
		for i, b := range h.bounds {
			hs.Buckets[i].UpperBound = b
		}
		hs.Buckets[len(h.bounds)].UpperBound = math.MaxInt64
		for i := range h.vals {
			st := &h.vals[i]
			hs.Count += st.count
			hs.Sum += st.sum
			if st.min < hs.Min {
				hs.Min = st.min
			}
			if st.max > hs.Max {
				hs.Max = st.max
			}
			for j, n := range st.counts {
				hs.Buckets[j].Count += n
			}
		}
		if hs.Count == 0 {
			hs.Min, hs.Max = 0, 0
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// WriteText snapshots the registry and dumps it as plain text. Call only
// from single-threaded context, like Snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// fmtVal renders a value in its unit.
func fmtVal(v int64, u Unit) string {
	if u == UnitTime {
		return vtime.Time(v).String()
	}
	return fmt.Sprintf("%d", v)
}

// WriteText dumps the snapshot as aligned plain text: one line per
// counter, then each histogram with its non-empty buckets.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-28s %14s", c.Name, fmtVal(c.Value, c.Unit)); err != nil {
			return err
		}
		if len(c.PerShard) > 1 {
			if _, err := fmt.Fprint(w, "  per-shard ["); err != nil {
				return err
			}
			for i, v := range c.PerShard {
				sep := " "
				if i == 0 {
					sep = ""
				}
				if _, err := fmt.Fprintf(w, "%s%s", sep, fmtVal(v, c.Unit)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(w, "]"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := "-"
		if h.Count > 0 {
			mean = fmtVal(h.Sum/h.Count, h.Unit)
		}
		if _, err := fmt.Fprintf(w, "%-28s count=%d min=%s mean=%s max=%s\n",
			h.Name, h.Count, fmtVal(h.Min, h.Unit), mean, fmtVal(h.Max, h.Unit)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			edge := "+inf"
			if b.UpperBound != math.MaxInt64 {
				edge = fmtVal(b.UpperBound, h.Unit)
			}
			if _, err := fmt.Fprintf(w, "  le %-12s %d\n", edge, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
