package metrics

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"simany/internal/vtime"
)

func TestCounterStripes(t *testing.T) {
	r := New()
	c := r.Counter("x", UnitCount)
	c.Add(0, 5)
	r.SetShards(4)
	c.Inc(3)
	c.Add(1, 2)
	if got := c.Value(); got != 8 {
		t.Errorf("Value = %d, want 8", got)
	}
	if got := c.PerShard(); !reflect.DeepEqual(got, []int64{5, 2, 0, 1}) {
		t.Errorf("PerShard = %v", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("x", UnitCount) != c {
		t.Error("Counter did not return the existing instrument")
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := New()
	r.SetShards(2)
	h := r.Histogram("h", UnitCount, []int64{10, 100})
	h.Observe(0, 5)    // bucket le 10
	h.Observe(1, 10)   // inclusive upper edge: le 10
	h.Observe(0, 50)   // le 100
	h.Observe(1, 1000) // overflow
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	hs := s.Histograms[0]
	if hs.Count != 4 || hs.Sum != 1065 || hs.Min != 5 || hs.Max != 1000 {
		t.Errorf("stats = %+v", hs)
	}
	counts := []int64{hs.Buckets[0].Count, hs.Buckets[1].Count, hs.Buckets[2].Count}
	if !reflect.DeepEqual(counts, []int64{2, 1, 1}) {
		t.Errorf("bucket counts = %v", counts)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := New()
	r.Histogram("empty", UnitCount, DefaultCountBounds())
	hs := r.Snapshot().Histograms[0]
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 {
		t.Errorf("empty snapshot = %+v", hs)
	}
}

// TestSnapshotStripeOrderIndependent: the merged snapshot must not depend
// on which stripe received which observation — the property that makes
// per-shard recording deterministic at every worker count.
func TestSnapshotStripeOrderIndependent(t *testing.T) {
	build := func(perm []int) Snapshot {
		r := New()
		r.SetShards(4)
		c := r.Counter("c", UnitTime)
		h := r.Histogram("h", UnitTime, DefaultTimeBounds())
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 200; i++ {
			shard := perm[i%4]
			d := vtime.Cycles(float64(rng.Intn(5000)))
			c.AddTime(shard, d)
			h.ObserveTime(shard, d)
		}
		return r.Snapshot()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 0, 1, 2})
	// Counter totals and histogram merges must agree; per-shard breakdowns
	// legitimately differ with the permutation.
	if a.Counters[0].Value != b.Counters[0].Value {
		t.Errorf("counter merge differs: %d vs %d", a.Counters[0].Value, b.Counters[0].Value)
	}
	if !reflect.DeepEqual(a.Histograms, b.Histograms) {
		t.Errorf("histogram merge differs:\n  %+v\n  %+v", a.Histograms, b.Histograms)
	}
}

func TestSetShardsGrowOnly(t *testing.T) {
	r := New()
	c := r.Counter("c", UnitCount)
	r.SetShards(4)
	r.SetShards(2) // must not shrink
	c.Add(3, 1)
	if r.NumShards() != 4 {
		t.Errorf("NumShards = %d, want 4", r.NumShards())
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	r.SetShards(2)
	r.Counter("net.msgs", UnitCount).Add(1, 42)
	r.Counter("stall.time", UnitTime).AddTime(0, vtime.CyclesInt(7))
	h := r.Histogram("lat", UnitTime, DefaultTimeBounds())
	h.ObserveTime(0, vtime.CyclesInt(3))
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"net.msgs", "42", "stall.time", "per-shard", "lat", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
