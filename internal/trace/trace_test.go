package trace

import (
	"bytes"
	"strings"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/rt"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// tracedRun executes a small fork/join program with tracing enabled.
func tracedRun(t *testing.T, limit int) (*Recorder, core.Result, *core.Kernel) {
	t.Helper()
	rec := NewRecorder(limit)
	k := core.New(core.Config{
		Topo:   topology.Mesh(4),
		Mem:    mem.NewShared(),
		Seed:   3,
		Tracer: rec,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	res, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 6; i++ {
			r.SpawnOrRun(e, g, "child", 0, func(ce *core.Env) {
				ce.ComputeCycles(500)
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res, k
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec, _, _ := tracedRun(t, 0)
	kinds := map[core.TraceKind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []core.TraceKind{
		core.TraceTaskStart, core.TraceTaskEnd, core.TraceSend, core.TraceHandle,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s events", want)
		}
	}
	// Starts and ends must balance (root + children all finished).
	if kinds[core.TraceTaskStart]+kinds[core.TraceTaskResume] < kinds[core.TraceTaskEnd] {
		t.Errorf("unbalanced lifecycle: %v", kinds)
	}
	// Sequence numbers strictly increase.
	var last uint64
	for _, ev := range rec.Events() {
		if ev.Seq <= last {
			t.Fatal("sequence numbers not increasing")
		}
		last = ev.Seq
	}
}

func TestRecorderLimit(t *testing.T) {
	rec, _, _ := tracedRun(t, 5)
	if len(rec.Events()) != 5 {
		t.Errorf("retained %d events, limit 5", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Error("expected drops")
	}
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped") {
		t.Error("drop notice missing")
	}
}

func TestWriteText(t *testing.T) {
	rec, _, _ := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"task-start", "task-end", "send", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text missing %q", want)
		}
	}
}

func TestUtilization(t *testing.T) {
	rec, res, k := tracedRun(t, 0)
	util := Utilization(rec.Events(), k.NumCores(), res.FinalVT)
	if len(util) != 4 {
		t.Fatalf("util = %v", util)
	}
	var total float64
	for _, u := range util {
		if u < 0 || u > 1 {
			t.Errorf("utilization out of range: %v", util)
		}
		total += u
	}
	if total == 0 {
		t.Error("nobody did any work")
	}
	// Core 0 hosted the root task: it must show activity.
	if util[0] == 0 {
		t.Error("root core shows no activity")
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	if got := Utilization(nil, 2, 0); got[0] != 0 || got[1] != 0 {
		t.Error("zero end time should give zero utilization")
	}
	// Synthetic: one span covering half the time on core 1.
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 1, VT: 0},
		{Seq: 2, Kind: core.TraceTaskEnd, Core: 1, VT: vtime.CyclesInt(50)},
	}
	util := Utilization(evs, 2, vtime.CyclesInt(100))
	if util[1] != 0.5 || util[0] != 0 {
		t.Errorf("util = %v", util)
	}
}

func TestStallKeepsSpanOpen(t *testing.T) {
	// start -> stall -> (resume implied) -> end must count the whole span.
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 0, VT: 0},
		{Seq: 2, Kind: core.TraceTaskStall, Core: 0, VT: vtime.CyclesInt(30)},
		{Seq: 3, Kind: core.TraceTaskEnd, Core: 0, VT: vtime.CyclesInt(100)},
	}
	util := Utilization(evs, 1, vtime.CyclesInt(100))
	if util[0] != 1.0 {
		t.Errorf("stall broke the busy span: %v", util)
	}
}

func TestTimeline(t *testing.T) {
	rec, res, k := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := Timeline(&buf, rec.Events(), k.NumCores(), res.FinalVT, 40); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "#") {
		t.Error("root core timeline empty")
	}
	if !strings.Contains(lines[0], "%") {
		t.Error("utilization column missing")
	}
	// Default width path.
	var buf2 bytes.Buffer
	if err := Timeline(&buf2, rec.Events(), 1, res.FinalVT, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMessageCounts(t *testing.T) {
	rec, _, _ := tracedRun(t, 0)
	counts := MessageCounts(rec.Events())
	if len(counts) == 0 {
		t.Fatal("no message pairs")
	}
	var total int64
	for pair, n := range counts {
		if pair[0] == pair[1] {
			continue // self messages allowed (joins on same core)
		}
		total += n
	}
	if total == 0 {
		t.Error("no cross-core traffic recorded")
	}
}

func TestOpenSpanClosedAtEnd(t *testing.T) {
	// Regression: a task still running when the stream ends used to drop
	// its final span entirely, under-reporting utilization.
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 0, VT: 0},
		{Seq: 2, Kind: core.TraceTaskEnd, Core: 0, VT: vtime.CyclesInt(20)},
		{Seq: 3, Kind: core.TraceTaskStart, Core: 1, VT: vtime.CyclesInt(50)},
		// Core 1's task never ends within the stream.
	}
	util := Utilization(evs, 2, vtime.CyclesInt(100))
	if util[0] != 0.2 {
		t.Errorf("closed span miscounted: %v", util)
	}
	if util[1] != 0.5 {
		t.Errorf("open span not closed at endVT: %v", util)
	}
	// A stall as the final event keeps the core busy to the end too.
	evs = []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 0, VT: 0},
		{Seq: 2, Kind: core.TraceTaskStall, Core: 0, VT: vtime.CyclesInt(40)},
	}
	util = Utilization(evs, 1, vtime.CyclesInt(100))
	if util[0] != 1.0 {
		t.Errorf("trailing stall lost the tail span: %v", util)
	}
}

func TestOutOfRangeCoreGuard(t *testing.T) {
	// Events attributed to cores outside [0, numCores) must not panic or
	// corrupt neighbors' accounting.
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: -1, VT: 0},
		{Seq: 2, Kind: core.TraceTaskEnd, Core: -1, VT: vtime.CyclesInt(10)},
		{Seq: 3, Kind: core.TraceTaskStart, Core: 7, VT: 0},
		{Seq: 4, Kind: core.TraceTaskEnd, Core: 7, VT: vtime.CyclesInt(10)},
		{Seq: 5, Kind: core.TraceTaskStart, Core: 0, VT: 0},
		{Seq: 6, Kind: core.TraceTaskEnd, Core: 0, VT: vtime.CyclesInt(50)},
	}
	end := vtime.CyclesInt(100)
	util := Utilization(evs, 2, end)
	if util[0] != 0.5 || util[1] != 0 {
		t.Errorf("out-of-range events perturbed utilization: %v", util)
	}
	var buf bytes.Buffer
	if err := Timeline(&buf, evs, 2, end, 20); err != nil {
		t.Fatal(err)
	}
	anoms := Anomalies(evs, 2, end)
	if len(anoms) != 2 {
		t.Fatalf("anomalies = %v", anoms)
	}
	for _, a := range anoms {
		if !strings.Contains(a, "out-of-range") {
			t.Errorf("unexpected anomaly: %q", a)
		}
	}
}

func TestOverUtilizationSurfaced(t *testing.T) {
	// Two overlapping spans on one core: busy time exceeds the duration.
	// The old code clamped this to 100%; it must now be visible.
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 0, VT: 0},
		{Seq: 2, Kind: core.TraceTaskEnd, Core: 0, VT: vtime.CyclesInt(80)},
		{Seq: 3, Kind: core.TraceTaskStart, Core: 0, VT: vtime.CyclesInt(20)},
		{Seq: 4, Kind: core.TraceTaskEnd, Core: 0, VT: vtime.CyclesInt(90)},
	}
	end := vtime.CyclesInt(100)
	util := Utilization(evs, 1, end)
	if util[0] <= 1 {
		t.Errorf("over-utilization clamped: %v", util)
	}
	anoms := Anomalies(evs, 1, end)
	if len(anoms) != 1 || !strings.Contains(anoms[0], "exceeds simulated duration") {
		t.Errorf("anomaly not surfaced: %v", anoms)
	}
	var buf bytes.Buffer
	if err := Timeline(&buf, evs, 1, end, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "!") {
		t.Error("timeline missing over-utilization marker")
	}
	// A clean trace reports nothing.
	if got := Anomalies(evs[:2], 1, end); len(got) != 0 {
		t.Errorf("false anomalies: %v", got)
	}
}

func TestMessageCountsSorted(t *testing.T) {
	rec, _, _ := tracedRun(t, 0)
	sorted := MessageCountsSorted(rec.Events())
	counts := MessageCounts(rec.Events())
	if len(sorted) != len(counts) {
		t.Fatalf("sorted has %d pairs, map has %d", len(sorted), len(counts))
	}
	for i, mc := range sorted {
		if counts[[2]int{mc.Src, mc.Dst}] != mc.Count {
			t.Errorf("count mismatch for (%d,%d)", mc.Src, mc.Dst)
		}
		if i > 0 {
			p := sorted[i-1]
			if p.Src > mc.Src || (p.Src == mc.Src && p.Dst >= mc.Dst) {
				t.Fatalf("not sorted: %v before %v", p, mc)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteMessageCounts(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != len(sorted) {
		t.Errorf("report lines = %d, pairs = %d", lines, len(sorted))
	}
}

func TestTruncated(t *testing.T) {
	full, _, _ := tracedRun(t, 0)
	if full.Truncated() {
		t.Error("unlimited recorder reports truncation")
	}
	lim, _, _ := tracedRun(t, 5)
	if !lim.Truncated() {
		t.Error("limited recorder with drops must report truncation")
	}
}

func TestTracerViaSetTracer(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(1), Seed: 1})
	rec := NewRecorder(0)
	k.SetTracer(rec)
	k.InjectTask(0, "w", func(e *core.Env) { e.ComputeCycles(10) }, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Error("SetTracer did not take effect")
	}
	k.SetTracer(nil) // must not panic on further activity
	_ = network.Message{}
}
