package trace

import (
	"encoding/json"
	"io"
	"sort"

	"simany/internal/core"
	"simany/internal/vtime"
)

// Chrome trace_event export: the recorded stream rendered as the JSON
// format chrome://tracing, Perfetto (ui.perfetto.dev) and speedscope all
// read. Each core becomes a thread (tid) of one "simany" process; task
// execution spans become "X" complete events and message send/handle
// points become thread-scoped instant events. Virtual time maps one
// simulated cycle to one microsecond, so the viewer's time axis reads
// directly in cycles.

// chromeEvent is one trace_event record. Field order fixes the JSON key
// order, so the output is byte-for-byte deterministic for a given stream.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the kind-specific detail shown in the viewer's
// selection panel.
type chromeArgs struct {
	TaskID uint64 `json:"taskId,omitempty"`
	Peer   *int   `json:"peer,omitempty"`
	Name   string `json:"name,omitempty"`
}

// usPerCycle converts virtual time to trace microseconds (1 cycle = 1 µs).
func usPerCycle(t vtime.Time) float64 {
	//lint:allow rawvtime exporting to trace_event µs: 1 cycle maps to 1 µs by construction
	return float64(t) / float64(vtime.Cycle)
}

// WriteChrome writes the event stream as Chrome trace_event JSON. Spans
// still open at the end of the stream are closed at endVT, mirroring
// busyIntervals, so a truncated or still-running trace remains viewable.
// Events attributed to out-of-range cores are exported as-is (they appear
// as extra thread rows); use Anomalies to detect them.
func WriteChrome(w io.Writer, events []core.TraceEvent, numCores int, endVT vtime.Time) error {
	type openSpan struct {
		from vtime.Time
		task string
		id   uint64
	}
	out := []chromeEvent{
		{Name: "process_name", Ph: "M", Args: &chromeArgs{Name: "simany"}},
	}
	span := func(c int, s openSpan, to vtime.Time) {
		if to <= s.from {
			return
		}
		name := s.task
		if name == "" {
			name = "task"
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   usPerCycle(s.from),
			Dur:  usPerCycle(to - s.from),
			Tid:  c,
			Args: &chromeArgs{TaskID: s.id},
		})
	}
	instant := func(ev core.TraceEvent) {
		peer := int(ev.Aux)
		out = append(out, chromeEvent{
			Name: ev.Kind.String(),
			Ph:   "i",
			Ts:   usPerCycle(ev.VT),
			Tid:  ev.Core,
			S:    "t",
			Args: &chromeArgs{TaskID: ev.TaskID, Peer: &peer},
		})
	}
	open := map[int]openSpan{}
	for _, ev := range events {
		switch ev.Kind {
		case core.TraceTaskStart, core.TraceTaskResume:
			if _, ok := open[ev.Core]; !ok {
				open[ev.Core] = openSpan{from: ev.VT, task: ev.Task, id: ev.TaskID}
			}
		case core.TraceTaskBlock, core.TraceTaskEnd, core.TraceTaskStall:
			if s, ok := open[ev.Core]; ok {
				span(ev.Core, s, ev.VT)
				delete(open, ev.Core)
				if ev.Kind == core.TraceTaskStall {
					// Same rule as busyIntervals: the task still owns the
					// core and resumes at the same VT.
					open[ev.Core] = openSpan{from: ev.VT, task: s.task, id: s.id}
				}
			}
		case core.TraceSend, core.TraceHandle:
			instant(ev)
		}
	}
	// Close the still-open spans at endVT, in sorted core order so the
	// output does not depend on map iteration.
	cores := make([]int, 0, len(open))
	for c := range open {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		span(c, open[c], endVT)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ms"})
}
