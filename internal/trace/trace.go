// Package trace records and analyzes simulator event traces: task
// lifecycles, stalls, message traffic. A Recorder plugs into the kernel
// through core.Config.Tracer; the analysis helpers turn the event stream
// into per-core utilization profiles and an ASCII activity timeline —
// the practical observability a downstream user of an architecture
// simulator needs to understand where virtual time goes.
package trace

import (
	"fmt"
	"io"
	"strings"

	"simany/internal/core"
	"simany/internal/vtime"
)

// Recorder collects trace events up to a limit (0 = unlimited). When the
// limit is reached further events are counted but dropped.
type Recorder struct {
	// Limit bounds the retained events (0 = unlimited).
	Limit int

	events  []core.TraceEvent
	dropped int64
}

// NewRecorder creates a Recorder with the given retention limit.
func NewRecorder(limit int) *Recorder {
	return &Recorder{Limit: limit}
}

var _ core.Tracer = (*Recorder)(nil)

// Trace implements core.Tracer.
func (r *Recorder) Trace(ev core.TraceEvent) {
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the retained events in simulation order.
func (r *Recorder) Events() []core.TraceEvent { return r.events }

// Dropped returns how many events exceeded the limit.
func (r *Recorder) Dropped() int64 { return r.dropped }

// WriteText dumps the trace as one line per event.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		var err error
		switch ev.Kind {
		case core.TraceSend:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s -> core%d\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Aux)
		case core.TraceHandle:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s <- core%d\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Aux)
		default:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s %s(%d)\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Task, ev.TaskID)
		}
		if err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d events dropped (limit %d)\n", r.dropped, r.Limit); err != nil {
			return err
		}
	}
	return nil
}

// busyInterval is a span of virtual time during which a core executed a
// task.
type busyInterval struct {
	core     int
	from, to vtime.Time
}

// busyIntervals reconstructs per-core execution spans from the event
// stream: a span opens at task-start/resume and closes at the next
// stall/block/end on the same core. Stall closes the span only virtually —
// the task resumes at the same VT — so consecutive spans merge naturally.
func busyIntervals(events []core.TraceEvent) []busyInterval {
	open := map[int]vtime.Time{} // core -> span start
	var out []busyInterval
	for _, ev := range events {
		switch ev.Kind {
		case core.TraceTaskStart, core.TraceTaskResume:
			if _, ok := open[ev.Core]; !ok {
				open[ev.Core] = ev.VT
			}
		case core.TraceTaskBlock, core.TraceTaskEnd, core.TraceTaskStall:
			if from, ok := open[ev.Core]; ok {
				if ev.VT > from {
					out = append(out, busyInterval{core: ev.Core, from: from, to: ev.VT})
				}
				delete(open, ev.Core)
				if ev.Kind == core.TraceTaskStall {
					// The task still owns the core; it resumes at the
					// same VT once the stall lifts.
					open[ev.Core] = ev.VT
				}
			}
		}
	}
	return out
}

// Utilization returns, per core, the fraction of the simulated duration
// [0, endVT] spent executing tasks.
func Utilization(events []core.TraceEvent, numCores int, endVT vtime.Time) []float64 {
	busy := make([]vtime.Time, numCores)
	for _, iv := range busyIntervals(events) {
		if iv.core < numCores {
			busy[iv.core] += iv.to - iv.from
		}
	}
	out := make([]float64, numCores)
	if endVT <= 0 {
		return out
	}
	for i, b := range busy {
		out[i] = vtime.Ratio(b, endVT)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// Timeline renders an ASCII activity chart: one row per core, width
// columns spanning [0, endVT], '#' where the core was executing.
func Timeline(w io.Writer, events []core.TraceEvent, numCores int, endVT vtime.Time, width int) error {
	if width <= 0 {
		width = 64
	}
	rows := make([][]byte, numCores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	if endVT > 0 {
		for _, iv := range busyIntervals(events) {
			if iv.core >= numCores {
				continue
			}
			//lint:allow rawvtime proportional column index: the millicycle unit cancels in from*width/end
			a := int(int64(iv.from) * int64(width) / int64(endVT))
			//lint:allow rawvtime proportional column index: the millicycle unit cancels in to*width/end
			b := int(int64(iv.to) * int64(width) / int64(endVT))
			if b >= width {
				b = width - 1
			}
			for x := a; x <= b; x++ {
				rows[iv.core][x] = '#'
			}
		}
	}
	util := Utilization(events, numCores, endVT)
	for i, row := range rows {
		if _, err := fmt.Fprintf(w, "core%-4d |%s| %5.1f%%\n", i, row, 100*util[i]); err != nil {
			return err
		}
	}
	return nil
}

// MessageCounts aggregates sends per (src, dst) pair, useful for spotting
// traffic hot spots.
func MessageCounts(events []core.TraceEvent) map[[2]int]int64 {
	out := make(map[[2]int]int64)
	for _, ev := range events {
		if ev.Kind == core.TraceSend {
			out[[2]int{ev.Core, int(ev.Aux)}]++
		}
	}
	return out
}
