// Package trace records and analyzes simulator event traces: task
// lifecycles, stalls, message traffic. A Recorder plugs into the kernel
// through core.Config.Tracer; the analysis helpers turn the event stream
// into per-core utilization profiles and an ASCII activity timeline —
// the practical observability a downstream user of an architecture
// simulator needs to understand where virtual time goes.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"simany/internal/core"
	"simany/internal/vtime"
)

// Recorder collects trace events up to a limit (0 = unlimited). When the
// limit is reached further events are counted but dropped.
//
// Truncation semantics: the retained prefix is a valid trace up to the
// virtual time of the last kept event, but it is a *prefix* — tasks still
// running at that point have no closing event, and the analysis helpers
// will treat their final spans as extending to endVT. Check Truncated (or
// Dropped) before trusting aggregate numbers from a limited recording.
type Recorder struct {
	// Limit bounds the retained events (0 = unlimited).
	Limit int

	events  []core.TraceEvent
	dropped int64
}

// NewRecorder creates a Recorder with the given retention limit.
func NewRecorder(limit int) *Recorder {
	return &Recorder{Limit: limit}
}

var _ core.Tracer = (*Recorder)(nil)

// Trace implements core.Tracer.
func (r *Recorder) Trace(ev core.TraceEvent) {
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the retained events in simulation order.
func (r *Recorder) Events() []core.TraceEvent { return r.events }

// Dropped returns how many events exceeded the limit.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Truncated reports whether the recording is incomplete: at least one
// event was dropped because the retention limit was reached. Analyses of a
// truncated trace only describe the retained prefix.
func (r *Recorder) Truncated() bool { return r.dropped > 0 }

// WriteText dumps the trace as one line per event.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		var err error
		switch ev.Kind {
		case core.TraceSend:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s -> core%d\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Aux)
		case core.TraceHandle:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s <- core%d\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Aux)
		default:
			_, err = fmt.Fprintf(w, "%8d %12s core%-4d %-11s %s(%d)\n",
				ev.Seq, ev.VT, ev.Core, ev.Kind, ev.Task, ev.TaskID)
		}
		if err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d events dropped (limit %d)\n", r.dropped, r.Limit); err != nil {
			return err
		}
	}
	return nil
}

// busyInterval is a span of virtual time during which a core executed a
// task.
type busyInterval struct {
	core     int
	from, to vtime.Time
}

// busyIntervals reconstructs per-core execution spans from the event
// stream: a span opens at task-start/resume and closes at the next
// stall/block/end on the same core. Stall closes the span only virtually —
// the task resumes at the same VT — so consecutive spans merge naturally.
//
// Spans still open when the stream ends — a task running at the end of the
// simulated window, or one whose closing event fell past a Recorder's
// retention limit — are closed at endVT instead of being dropped, so the
// busy time they represent is not silently lost. Pass the simulated end
// time (e.g. Result.VT); with endVT ≤ the last event's VT the open spans
// are clipped to whatever extends beyond their start.
func busyIntervals(events []core.TraceEvent, endVT vtime.Time) []busyInterval {
	open := map[int]vtime.Time{} // core -> span start
	var out []busyInterval
	for _, ev := range events {
		switch ev.Kind {
		case core.TraceTaskStart, core.TraceTaskResume:
			if _, ok := open[ev.Core]; !ok {
				open[ev.Core] = ev.VT
			}
		case core.TraceTaskBlock, core.TraceTaskEnd, core.TraceTaskStall:
			if from, ok := open[ev.Core]; ok {
				if ev.VT > from {
					out = append(out, busyInterval{core: ev.Core, from: from, to: ev.VT})
				}
				delete(open, ev.Core)
				if ev.Kind == core.TraceTaskStall {
					// The task still owns the core; it resumes at the
					// same VT once the stall lifts.
					open[ev.Core] = ev.VT
				}
			}
		}
	}
	// Close the remaining spans at endVT, in sorted core order so the
	// output does not depend on map iteration.
	cores := make([]int, 0, len(open))
	for c := range open {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		if from := open[c]; endVT > from {
			out = append(out, busyInterval{core: c, from: from, to: endVT})
		}
	}
	return out
}

// Utilization returns, per core, the fraction of the simulated duration
// [0, endVT] spent executing tasks. Spans attributed to core indices
// outside [0, numCores) are ignored here — use Anomalies to surface them.
//
// Values above 1.0 are returned as-is rather than clamped: a utilization
// over 100% means the reconstructed busy time exceeds the simulated
// duration, which indicates a malformed trace (overlapping spans,
// truncated stream, or a wrong endVT) and should be visible, not hidden.
func Utilization(events []core.TraceEvent, numCores int, endVT vtime.Time) []float64 {
	busy := make([]vtime.Time, numCores)
	for _, iv := range busyIntervals(events, endVT) {
		if iv.core < 0 || iv.core >= numCores {
			continue
		}
		busy[iv.core] += iv.to - iv.from
	}
	out := make([]float64, numCores)
	if endVT <= 0 {
		return out
	}
	for i, b := range busy {
		out[i] = vtime.Ratio(b, endVT)
	}
	return out
}

// Anomalies scans the event stream for accounting problems the aggregate
// helpers would otherwise hide: spans attributed to core indices outside
// [0, numCores) and per-core busy time exceeding the simulated duration
// (utilization > 100%). It returns one human-readable string per finding,
// in deterministic order (out-of-range cores first, both groups sorted by
// core index); an empty slice means the trace is consistent.
func Anomalies(events []core.TraceEvent, numCores int, endVT vtime.Time) []string {
	busy := map[int]vtime.Time{}
	for _, iv := range busyIntervals(events, endVT) {
		busy[iv.core] += iv.to - iv.from
	}
	cores := make([]int, 0, len(busy))
	for c := range busy {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	var out []string
	for _, c := range cores {
		if c < 0 || c >= numCores {
			out = append(out, fmt.Sprintf("busy time %v attributed to out-of-range core %d (machine has %d cores)",
				busy[c], c, numCores))
		}
	}
	if endVT > 0 {
		for _, c := range cores {
			if c < 0 || c >= numCores {
				continue
			}
			if b := busy[c]; b > endVT {
				out = append(out, fmt.Sprintf("core %d: busy time %v exceeds simulated duration %v (utilization %.1f%%)",
					c, b, endVT, 100*vtime.Ratio(b, endVT)))
			}
		}
	}
	return out
}

// Timeline renders an ASCII activity chart: one row per core, width
// columns spanning [0, endVT], '#' where the core was executing. A row
// whose utilization exceeds 100% is flagged with a trailing '!' — see
// Anomalies for the diagnosis.
func Timeline(w io.Writer, events []core.TraceEvent, numCores int, endVT vtime.Time, width int) error {
	if width <= 0 {
		width = 64
	}
	rows := make([][]byte, numCores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	if endVT > 0 {
		for _, iv := range busyIntervals(events, endVT) {
			if iv.core < 0 || iv.core >= numCores {
				continue
			}
			//lint:allow rawvtime proportional column index: the millicycle unit cancels in from*width/end
			a := int(int64(iv.from) * int64(width) / int64(endVT))
			//lint:allow rawvtime proportional column index: the millicycle unit cancels in to*width/end
			b := int(int64(iv.to) * int64(width) / int64(endVT))
			if b >= width {
				b = width - 1
			}
			for x := a; x <= b; x++ {
				rows[iv.core][x] = '#'
			}
		}
	}
	util := Utilization(events, numCores, endVT)
	for i, row := range rows {
		mark := ""
		if util[i] > 1 {
			mark = " !"
		}
		if _, err := fmt.Fprintf(w, "core%-4d |%s| %5.1f%%%s\n", i, row, 100*util[i], mark); err != nil {
			return err
		}
	}
	return nil
}

// MessageCounts aggregates sends per (src, dst) pair, useful for spotting
// traffic hot spots. The map form is convenient for lookups; use
// MessageCountsSorted when iterating or reporting, so the order does not
// depend on map iteration.
func MessageCounts(events []core.TraceEvent) map[[2]int]int64 {
	out := make(map[[2]int]int64)
	for _, ev := range events {
		if ev.Kind == core.TraceSend {
			out[[2]int{ev.Core, int(ev.Aux)}]++
		}
	}
	return out
}

// MessageCount is one (src, dst) traffic aggregate.
type MessageCount struct {
	Src, Dst int
	Count    int64
}

// MessageCountsSorted aggregates sends per (src, dst) pair and returns
// them sorted by (src, dst) — a deterministic form suitable for reports
// and golden tests.
func MessageCountsSorted(events []core.TraceEvent) []MessageCount {
	counts := MessageCounts(events)
	out := make([]MessageCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, MessageCount{Src: k[0], Dst: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// WriteMessageCounts writes the sorted (src, dst, count) traffic report,
// one line per pair.
func WriteMessageCounts(w io.Writer, events []core.TraceEvent) error {
	for _, mc := range MessageCountsSorted(events) {
		if _, err := fmt.Fprintf(w, "core%-4d -> core%-4d %8d\n", mc.Src, mc.Dst, mc.Count); err != nil {
			return err
		}
	}
	return nil
}
