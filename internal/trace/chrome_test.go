package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"simany/internal/core"
	"simany/internal/vtime"
)

// chromeDoc mirrors the exported JSON shape for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	rec, res, k := tracedRun(t, 0)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec.Events(), k.NumCores(), res.FinalVT); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Errorf("span %q has non-positive duration %v", ev.Name, ev.Dur)
			}
			if ev.Tid < 0 || ev.Tid >= k.NumCores() {
				t.Errorf("span on unexpected tid %d", ev.Tid)
			}
		case "i":
			instants++
		}
	}
	if spans == 0 {
		t.Error("no execution spans exported")
	}
	if instants == 0 {
		t.Error("no message instants exported")
	}
	if !strings.Contains(buf.String(), `"child"`) {
		t.Error("task names missing from export")
	}
}

func TestWriteChromeClosesOpenSpans(t *testing.T) {
	evs := []core.TraceEvent{
		{Seq: 1, Kind: core.TraceTaskStart, Core: 0, VT: 0, Task: "loop", TaskID: 7},
		// Never ends: must be closed at endVT.
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs, 1, vtime.CyclesInt(100)); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "loop" {
			found = true
			if ev.Ts != 0 || ev.Dur != 100 {
				t.Errorf("span [%v, +%v], want [0, +100] µs", ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Error("open span not exported")
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	rec, res, k := tracedRun(t, 0)
	var a, b bytes.Buffer
	if err := WriteChrome(&a, rec.Events(), k.NumCores(), res.FinalVT); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, rec.Events(), k.NumCores(), res.FinalVT); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("export is not byte-for-byte deterministic")
	}
}
