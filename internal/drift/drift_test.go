package drift

import (
	"testing"

	"simany/internal/core"
	"simany/internal/metrics"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// runPair runs two 40-block workers on a 2-core machine under the given
// policy and returns the result plus an execution-order drift measurement.
func runPair(t *testing.T, pol core.Policy, blockCycles float64) (core.Result, vtime.Time) {
	t.Helper()
	topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
	k := core.New(core.Config{Topo: topo, Policy: pol, Seed: 3})
	type rec struct {
		c  int
		vt vtime.Time
	}
	var log []rec
	for c := 0; c < 2; c++ {
		c := c
		k.InjectTask(c, "w", func(e *core.Env) {
			for i := 0; i < 40; i++ {
				e.ComputeCycles(blockCycles)
				log = append(log, rec{c, e.Now()})
			}
		}, nil, 0)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]vtime.Time{}
	var maxDrift vtime.Time
	for _, r := range log {
		last[r.c] = r.vt
		if len(last) == 2 {
			d := last[0] - last[1]
			if d < 0 {
				d = -d
			}
			if d > maxDrift {
				maxDrift = d
			}
		}
	}
	return res, maxDrift
}

func TestNames(t *testing.T) {
	cases := map[string]core.Policy{
		"quantum":       GlobalQuantum{Q: vtime.CyclesInt(100)},
		"bounded-slack": BoundedSlack{W: vtime.CyclesInt(100)},
		"lockstep":      Lockstep{},
		"unbounded":     Unbounded{},
		"laxp2p":        LaxP2P{Slack: vtime.CyclesInt(100)},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestQuantumBoundsDrift(t *testing.T) {
	_, drift := runPair(t, GlobalQuantum{Q: vtime.CyclesInt(50)}, 10)
	// Within a quantum window plus one block of overshoot.
	if drift > vtime.CyclesInt(70) {
		t.Errorf("quantum drift = %v", drift)
	}
}

func TestBoundedSlackBoundsDrift(t *testing.T) {
	_, drift := runPair(t, BoundedSlack{W: vtime.CyclesInt(30)}, 10)
	if drift > vtime.CyclesInt(50) {
		t.Errorf("bounded-slack drift = %v", drift)
	}
}

func TestLockstepExactOrder(t *testing.T) {
	res, drift := runPair(t, Lockstep{}, 10)
	// Lockstep: drift bounded by one block.
	if drift > vtime.CyclesInt(10) {
		t.Errorf("lockstep drift = %v", drift)
	}
	// And no out-of-order handling can occur (no messages here, but the
	// step count shows per-block interleaving).
	if res.Steps < 40 {
		t.Errorf("lockstep steps = %d, expected per-block interleaving", res.Steps)
	}
}

func TestUnboundedSerializes(t *testing.T) {
	res, _ := runPair(t, Unbounded{}, 10)
	// Without synchronization each task runs to completion in one step.
	if res.Steps != 2 {
		t.Errorf("unbounded steps = %d, want 2", res.Steps)
	}
	if res.Stalls != 0 {
		t.Errorf("unbounded stalls = %d", res.Stalls)
	}
}

func TestLaxP2PBoundsDriftLoosely(t *testing.T) {
	_, drift := runPair(t, LaxP2P{Slack: vtime.CyclesInt(40)}, 10)
	// With 2 cores the referee is always the other core, so the bound is
	// slack + one block.
	if drift > vtime.CyclesInt(60) {
		t.Errorf("laxp2p drift = %v", drift)
	}
}

func TestPolicyOrderingSpeedAccuracy(t *testing.T) {
	// Tighter schemes must schedule at least as many steps (more
	// synchronization) as looser ones: lockstep ≥ quantum ≥ unbounded.
	lock, _ := runPair(t, Lockstep{}, 10)
	quant, _ := runPair(t, GlobalQuantum{Q: vtime.CyclesInt(100)}, 10)
	unb, _ := runPair(t, Unbounded{}, 10)
	if !(lock.Steps >= quant.Steps && quant.Steps >= unb.Steps) {
		t.Errorf("steps ordering violated: lockstep=%d quantum=%d unbounded=%d",
			lock.Steps, quant.Steps, unb.Steps)
	}
}

func TestSingleCoreUnconstrained(t *testing.T) {
	for _, pol := range []core.Policy{
		GlobalQuantum{Q: vtime.CyclesInt(50)},
		BoundedSlack{W: vtime.CyclesInt(50)},
		Lockstep{},
		LaxP2P{Slack: vtime.CyclesInt(50)},
		Unbounded{},
	} {
		k := core.New(core.Config{Topo: topology.Mesh(1), Policy: pol, Seed: 1})
		k.InjectTask(0, "solo", func(e *core.Env) {
			for i := 0; i < 100; i++ {
				e.ComputeCycles(10)
			}
		}, nil, 0)
		res, err := k.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.FinalVT != vtime.CyclesInt(1010) {
			t.Errorf("%s: FinalVT = %v", pol.Name(), res.FinalVT)
		}
	}
}

func TestLockExemptionRespectedByGlobalSchemes(t *testing.T) {
	for _, pol := range []core.Policy{
		GlobalQuantum{Q: vtime.CyclesInt(20)},
		BoundedSlack{W: vtime.CyclesInt(20)},
		Lockstep{},
		LaxP2P{Slack: vtime.CyclesInt(20)},
	} {
		topo := topology.Mesh2D(2, 1, topology.DefaultLatency, topology.DefaultBandwidth)
		k := core.New(core.Config{Topo: topo, Policy: pol, Seed: 1})
		var span vtime.Time
		k.InjectTask(0, "locker", func(e *core.Env) {
			e.AcquireLockExempt()
			s := e.Now()
			e.ComputeCycles(1000)
			span = e.Now() - s
			e.ReleaseLockExempt()
		}, nil, 0)
		k.InjectTask(1, "other", func(e *core.Env) {
			for i := 0; i < 50; i++ {
				e.ComputeCycles(1)
			}
		}, nil, 0)
		if _, err := k.Run(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if span != vtime.CyclesInt(1000) {
			t.Errorf("%s: locked span = %v", pol.Name(), span)
		}
	}
}

// TestProbeRecordsDrift: with a Probe histogram attached, the schemes
// record the measured core lead at every horizon evaluation, and the
// maximum stays within the scheme's bound (plus one block of overshoot).
func TestProbeRecordsDrift(t *testing.T) {
	W := vtime.CyclesInt(30)
	block := vtime.CyclesInt(10)
	cases := []struct {
		name  string
		mk    func(*metrics.Histogram) core.Policy
		bound vtime.Time
	}{
		{"quantum", func(h *metrics.Histogram) core.Policy {
			return GlobalQuantum{Q: W, Probe: h}
		}, W + block},
		{"bounded-slack", func(h *metrics.Histogram) core.Policy {
			return BoundedSlack{W: W, Probe: h}
		}, W + block},
		{"laxp2p", func(h *metrics.Histogram) core.Policy {
			return LaxP2P{Slack: W, Probe: h}
		}, W + block},
	}
	for _, tc := range cases {
		reg := metrics.New()
		h := reg.Histogram("drift.probe", metrics.UnitTime, metrics.DefaultTimeBounds())
		runPair(t, tc.mk(h), 10)
		snap := reg.Snapshot()
		hs := snap.Histograms[0]
		if hs.Count == 0 {
			t.Errorf("%s: probe recorded nothing", tc.name)
			continue
		}
		if hs.Min < 0 {
			t.Errorf("%s: negative drift %d recorded (clamp failed)", tc.name, hs.Min)
		}
		if max := vtime.Time(hs.Max); max > tc.bound {
			t.Errorf("%s: probed drift %v exceeds bound %v", tc.name, max, tc.bound)
		}
	}
	// Nil probe: no panic, same results.
	runPair(t, BoundedSlack{W: W}, 10)
}
