// Package drift implements the related-work virtual-time synchronization
// schemes that SiMany's spatial synchronization is compared against (§VII):
//
//   - GlobalQuantum: WWT-style quantum-based global barriers.
//   - BoundedSlack: SlackSim's bounded slack — every core may run ahead of
//     the current global time by at most a fixed window.
//   - LaxP2P: Graphite's distributed scheme — a core periodically checks
//     its progress against a randomly chosen core and sleeps if it is more
//     than the slack ahead.
//   - Unbounded: SlackSim's unbound slack — no synchronization at all.
//   - Lockstep: a conservative strict-global-order scheduler; events are
//     processed exactly in virtual-time order. The cycle-level reference
//     simulator runs on top of it.
//
// All of them implement core.Policy, so any simulation can be re-run under
// a different scheme by switching one configuration field — this powers the
// ablation benchmarks.
package drift

import (
	"simany/internal/core"
	"simany/internal/metrics"
	"simany/internal/vtime"
)

// probe records how far ahead of a scheme's reference point (the global
// minimum, a referee's clock) the deciding core sits, clamped at zero —
// the measured drift the scheme's slack parameter bounds. The histograms
// feed the deterministic metrics registry (docs/observability.md,
// "drift-to-bound"). These global schemes run on the sequential engine
// (none of them is shard-local), so stripe 0 is always the caller's own.
func probe(h *metrics.Histogram, ahead vtime.Time) {
	if h == nil {
		return
	}
	if ahead < 0 {
		ahead = 0
	}
	h.ObserveTime(0, ahead)
}

// GlobalQuantum is a quantum-based global synchronization: virtual time is
// divided into windows of Q; no core may enter window w+1 before every busy
// core has finished window w.
type GlobalQuantum struct {
	Q vtime.Time
	// Probe, when non-nil, records the deciding core's lead over the
	// global minimum at every horizon evaluation (bounded by Q when the
	// scheme works as designed).
	Probe *metrics.Histogram
}

// Name implements core.Policy.
func (GlobalQuantum) Name() string { return "quantum" }

// Horizon implements core.Policy.
func (p GlobalQuantum) Horizon(c *core.Core) vtime.Time {
	if c.LockDepth() > 0 {
		return vtime.Inf
	}
	m := c.Kernel().GlobalMinTime()
	if m == vtime.Inf {
		return vtime.Inf
	}
	probe(p.Probe, c.VT()-m)
	// End of the window containing the globally slowest core.
	return (m/p.Q + 1) * p.Q
}

// IdleTime implements core.Policy; global schemes do not need idle shadow
// times because they never consult neighbors.
func (GlobalQuantum) IdleTime(*core.Core) vtime.Time { return vtime.Inf }

// BoundedSlack lets every core run ahead of the current global minimum
// virtual time by at most W (SlackSim's bounded slack scheme).
type BoundedSlack struct {
	W vtime.Time
	// Probe, when non-nil, records the deciding core's lead over the
	// global minimum at every horizon evaluation (bounded by W).
	Probe *metrics.Histogram
}

// Name implements core.Policy.
func (BoundedSlack) Name() string { return "bounded-slack" }

// Horizon implements core.Policy.
func (p BoundedSlack) Horizon(c *core.Core) vtime.Time {
	if c.LockDepth() > 0 {
		return vtime.Inf
	}
	m := c.Kernel().GlobalMinTime()
	if m == vtime.Inf {
		return vtime.Inf
	}
	probe(p.Probe, c.VT()-m)
	return m + p.W
}

// IdleTime implements core.Policy.
func (BoundedSlack) IdleTime(*core.Core) vtime.Time { return vtime.Inf }

// Lockstep is the conservative strict-order scheduler used by the
// cycle-level reference simulator: a core may only advance while it is the
// globally earliest busy core, so all interactions are processed in exact
// virtual-time order.
type Lockstep struct{}

// Name implements core.Policy.
func (Lockstep) Name() string { return "lockstep" }

// Horizon implements core.Policy.
func (Lockstep) Horizon(c *core.Core) vtime.Time {
	if c.LockDepth() > 0 {
		return vtime.Inf
	}
	k := c.Kernel()
	// Run until the earliest other core's next event; the kernel always
	// schedules the earliest runnable core, so ordering is exact at block
	// granularity.
	m := vtime.Inf
	for i := 0; i < k.NumCores(); i++ {
		o := k.Core(i)
		if o.ID != c.ID {
			if t := o.NextEventTime(); t < m {
				m = t
			}
		}
	}
	return m
}

// IdleTime implements core.Policy.
func (Lockstep) IdleTime(*core.Core) vtime.Time { return vtime.Inf }

// Unbounded never synchronizes: every core runs to completion
// independently (SlackSim's unbound slack).
type Unbounded struct{}

// Name implements core.Policy.
func (Unbounded) Name() string { return "unbounded" }

// Horizon implements core.Policy.
func (Unbounded) Horizon(*core.Core) vtime.Time { return vtime.Inf }

// IdleTime implements core.Policy.
func (Unbounded) IdleTime(*core.Core) vtime.Time { return vtime.Inf }

// ShardLocal implements core.ShardLocalPolicy: Unbounded consults no state
// at all, so it can drive the sharded engine.
func (Unbounded) ShardLocal() bool { return true }

// HorizonCacheable implements core.CacheableHorizonPolicy: a constant-Inf
// horizon is trivially pure, so Unbounded runs on the indexed scheduler.
//
// The other schemes in this package deliberately do NOT implement the
// interface: their horizons read global machine state (GlobalMinTime,
// every other core's NextEventTime) and have per-evaluation side effects
// (LaxP2P draws a referee from the core's RNG, the Probe histograms count
// evaluations), so the reference scan — which evaluates Horizon for every
// stalled core at every scheduling decision — is the only implementation
// that reproduces their published behavior.
func (Unbounded) HorizonCacheable() bool { return true }

// LaxP2P approximates Graphite's LaxP2P: each time a core is about to run,
// it checks its progress against a randomly chosen other core; if it is
// more than Slack ahead of that referee it goes to sleep until the referee
// catches up (here: its horizon becomes referee+Slack).
type LaxP2P struct {
	Slack vtime.Time
	// Probe, when non-nil, records the deciding core's lead over its
	// randomly drawn referee at every horizon evaluation (the quantity the
	// scheme compares against Slack).
	Probe *metrics.Histogram
}

// Name implements core.Policy.
func (LaxP2P) Name() string { return "laxp2p" }

// Horizon implements core.Policy.
func (p LaxP2P) Horizon(c *core.Core) vtime.Time {
	if c.LockDepth() > 0 {
		return vtime.Inf
	}
	k := c.Kernel()
	n := k.NumCores()
	if n == 1 {
		return vtime.Inf
	}
	// Pick a random referee other than c (deterministic via the core's own
	// seeded rng, so the pick sequence does not depend on how other cores'
	// horizon checks interleave).
	ref := c.Rand().Intn(n - 1)
	if ref >= c.ID {
		ref++
	}
	o := k.Core(ref)
	t := o.NextEventTime()
	if t == vtime.Inf {
		return vtime.Inf
	}
	probe(p.Probe, c.VT()-t)
	return t + p.Slack
}

// IdleTime implements core.Policy.
func (LaxP2P) IdleTime(*core.Core) vtime.Time { return vtime.Inf }
