package annotate

import (
	"testing"
	"time"

	"simany/internal/core"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func TestCalibratorRatioPositive(t *testing.T) {
	c := NewCalibrator()
	if c.CyclesPerNanosecond <= 0 {
		t.Fatalf("ratio = %v", c.CyclesPerNanosecond)
	}
	// A plausible host executes between 0.1 and 100 simulated cycles per
	// nanosecond with this reference loop.
	if c.CyclesPerNanosecond < 0.01 || c.CyclesPerNanosecond > 1000 {
		t.Errorf("implausible ratio %v", c.CyclesPerNanosecond)
	}
}

func TestCyclesConversion(t *testing.T) {
	c := &Calibrator{CyclesPerNanosecond: 2}
	if got := c.Cycles(100 * time.Nanosecond); got != 200 {
		t.Errorf("Cycles = %v", got)
	}
	if got := c.Cycles(0); got != 1 {
		t.Errorf("zero-duration block should cost 1 cycle, got %v", got)
	}
}

func TestComputeProfiledCharges(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(1), Seed: 1})
	cal := &Calibrator{CyclesPerNanosecond: 1}
	var before, after vtime.Time
	ran := false
	k.InjectTask(0, "p", func(e *core.Env) {
		before = e.Now()
		cal.ComputeProfiled(e, func() {
			ran = true
			sink += defaultSpin(10_000)
		})
		after = e.Now()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("profiled block did not run")
	}
	if after <= before {
		t.Error("profiled block charged nothing")
	}
}

func TestModelMix(t *testing.T) {
	m := NewModel()
	c := m.Mix(10, 5, 2, 3)
	if c[timing.IntALU] != 10*2+5*4+2*2 {
		t.Errorf("IntALU = %d", c[timing.IntALU])
	}
	if c[timing.BranchCond] != 10+2 {
		t.Errorf("BranchCond = %d", c[timing.BranchCond])
	}
	if c[timing.FPALU] != 3 {
		t.Errorf("FPALU = %d", c[timing.FPALU])
	}
	if zero := m.Mix(0, 0, 0, 0); zero.Total() != 0 {
		t.Error("empty mix not empty")
	}
}

func TestStatic(t *testing.T) {
	k := core.New(core.Config{Topo: topology.Mesh(1), Seed: 1})
	s := NewStatic(250)
	var span vtime.Time
	k.InjectTask(0, "s", func(e *core.Env) {
		before := e.Now()
		s.Apply(e)
		span = e.Now() - before
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if span != vtime.CyclesInt(250) {
		t.Errorf("span = %v", span)
	}
}

func TestStaticNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStatic(-1)
}
