// Package annotate derives timing annotations for instruction blocks, the
// ways §II.A enumerates: "either derived from profile runs, from a simple
// processor model or inserted manually. Finally, they can be computed
// during the execution, for example to attribute approximate timings to
// coarse program parts at once with very low overhead."
//
//   - Calibrator implements the computed-during-execution mode: it measures
//     the host-native wall time of a code block and converts it to virtual
//     cycles through a calibration ratio established against blocks of
//     known cost.
//   - Model implements the simple-processor-model mode: it prices abstract
//     operation mixes (so a benchmark can annotate "k compares, k/2 swaps"
//     instead of hand-counting instruction classes).
package annotate

import (
	"time"

	"simany/internal/core"
	"simany/internal/timing"
	"simany/internal/vtime"
)

// Calibrator converts host-native execution time of Go code into simulated
// cycles. The conversion ratio is set once (per host, per build) by timing
// a reference workload of known virtual cost; blocks measured later are
// charged proportionally. This is the paper's low-overhead coarse
// annotation mode: it trades per-instruction fidelity for the ability to
// annotate whole program parts at once.
type Calibrator struct {
	// CyclesPerNanosecond is the conversion ratio.
	CyclesPerNanosecond float64
}

// defaultSpin is the reference workload: a pure integer loop whose virtual
// cost under the PPC405 model is known exactly (2 IntALU + 1 BranchCond
// per iteration, 3 cycles).
func defaultSpin(iters int) int64 {
	var acc int64
	for i := 0; i < iters; i++ {
		acc += int64(i) ^ (acc >> 3)
	}
	return acc
}

// spinCyclesPerIter is the annotated virtual cost of one defaultSpin
// iteration under the PPC405 cost model.
const spinCyclesPerIter = 3

var sink int64

// NewCalibrator measures the host and returns a ready calibrator. The
// measurement takes a few milliseconds.
func NewCalibrator() *Calibrator {
	const iters = 2_000_000
	best := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		sink += defaultSpin(iters)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	ns := float64(best.Nanoseconds())
	if ns <= 0 {
		ns = 1
	}
	return &Calibrator{CyclesPerNanosecond: float64(iters) * spinCyclesPerIter / ns}
}

// Cycles converts a host duration to virtual cycles.
func (c *Calibrator) Cycles(d time.Duration) float64 {
	v := float64(d.Nanoseconds()) * c.CyclesPerNanosecond
	if v < 1 {
		v = 1 // any executed block costs at least a cycle
	}
	return v
}

// ComputeProfiled runs fn natively, measures its host duration and charges
// the equivalent virtual cycles to the task — the "computed during the
// execution" annotation mode.
func (c *Calibrator) ComputeProfiled(e *core.Env, fn func()) {
	start := time.Now()
	fn()
	e.ComputeCycles(c.Cycles(time.Since(start)))
}

// Model prices abstract operation mixes with a cost model, sparing
// benchmark code from hand-assembling timing.Counts.
type Model struct {
	// PerCompare etc. are the instruction-class decompositions of the
	// abstract operations.
	PerCompare, PerSwap, PerPointerChase, PerFloatOp timing.Counts
}

// NewModel returns the decompositions used by the dwarf benchmarks.
func NewModel() *Model {
	m := &Model{}
	m.PerCompare[timing.IntALU] = 2
	m.PerCompare[timing.BranchCond] = 1
	m.PerSwap[timing.IntALU] = 4
	m.PerPointerChase[timing.IntALU] = 2
	m.PerPointerChase[timing.BranchCond] = 1
	m.PerFloatOp[timing.FPALU] = 1
	return m
}

// Mix assembles an annotation for a block of abstract operations.
func (m *Model) Mix(compares, swaps, chases, floatOps int64) timing.Counts {
	var out timing.Counts
	add := func(c timing.Counts, n int64) {
		for i := range c {
			out[i] += c[i] * n
		}
	}
	add(m.PerCompare, compares)
	add(m.PerSwap, swaps)
	add(m.PerPointerChase, chases)
	add(m.PerFloatOp, floatOps)
	return out
}

// Static is the manual-annotation helper: a fixed cycle cost validated to
// be non-negative at construction instead of at every use.
type Static struct {
	cost vtime.Time
}

// NewStatic builds a static annotation of the given cycle cost.
func NewStatic(cycles float64) Static {
	if cycles < 0 {
		panic("annotate: negative static annotation")
	}
	return Static{cost: vtime.Cycles(cycles)}
}

// Apply charges the annotation to the running task.
func (s Static) Apply(e *core.Env) {
	e.ComputeTime(s.cost)
}
