package config

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simany/internal/vtime"
)

func TestParseMachineFull(t *testing.T) {
	src := `# test machine
cores 256
style clustered4
mem distributed
policy quantum:50
T 200
seed 9
speedaware on
`
	m, err := ParseMachine(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores != 256 || m.Style != Clustered4 || m.Mem != DistributedMem {
		t.Errorf("machine = %+v", m)
	}
	if m.Policy != "quantum:50" || m.T != vtime.CyclesInt(200) || m.Seed != 9 || !m.SpeedAwareRT {
		t.Errorf("machine = %+v", m)
	}
	if _, _, err := m.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMachineDefaults(t *testing.T) {
	m, err := ParseMachine(strings.NewReader("cores 8\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.T != vtime.CyclesInt(100) || m.Style != Uniform || m.Mem != SharedMem {
		t.Errorf("defaults wrong: %+v", m)
	}
}

func TestParseMachineErrors(t *testing.T) {
	bad := []string{
		"",                     // neither cores nor topology
		"cores zero\n",         // bad number
		"cores -1\n",           // non-positive
		"cores 4\nstyle wat\n", // unknown style
		"cores 4\nmem wat\n",   // unknown mem
		"cores 4\nT -5\n",      // bad T
		"cores 4\nseed x\n",    // bad seed
		"cores 4\nspeedaware maybe\n",
		"cores 4\nfrobnicate 7\n",    // unknown key
		"cores\n",                    // missing value
		"cores 4\ntopology t.topo\n", // references forbidden with nil resolver
	}
	for _, src := range bad {
		if _, err := ParseMachine(strings.NewReader(src), nil); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseMachineTopologyReference(t *testing.T) {
	topoSrc := "cores 3\nlink 0 1\nlink 1 2\n"
	resolve := func(path string) (io.ReadCloser, error) {
		if path != "net.topo" {
			t.Fatalf("unexpected ref %q", path)
		}
		return io.NopCloser(strings.NewReader(topoSrc)), nil
	}
	m, err := ParseMachine(strings.NewReader("topology net.topo\nmem shared\n"), resolve)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topo == nil || m.Topo.N() != 3 {
		t.Fatal("topology reference not loaded")
	}
	k, _, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.NumCores() != 3 {
		t.Errorf("cores = %d", k.NumCores())
	}
}

func TestLoadMachineFile(t *testing.T) {
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "ring.topo")
	if err := os.WriteFile(topoPath, []byte("cores 4\nlink 0 1\nlink 1 2\nlink 2 3\nlink 3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mPath := filepath.Join(dir, "machine.conf")
	if err := os.WriteFile(mPath, []byte("topology ring.topo\nmem coherent\nT 50 # tight\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMachineFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topo == nil || m.Topo.N() != 4 || m.Mem != SharedMemCoherent || m.T != vtime.CyclesInt(50) {
		t.Errorf("machine = %+v", m)
	}
	if _, err := LoadMachineFile(filepath.Join(dir, "missing.conf")); err == nil {
		t.Error("missing file must error")
	}
	// Broken topology reference.
	bad := filepath.Join(dir, "bad.conf")
	os.WriteFile(bad, []byte("topology nope.topo\n"), 0o644)
	if _, err := LoadMachineFile(bad); err == nil {
		t.Error("broken reference must error")
	}
}

func TestWriteMachineRoundTrip(t *testing.T) {
	orig := Machine{
		Cores: 64, Style: Polymorphic, Mem: DistributedMem,
		Policy: "laxp2p:80", T: vtime.CyclesInt(150), Seed: 3, SpeedAwareRT: true,
	}
	var buf bytes.Buffer
	if err := WriteMachine(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMachine(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cores != orig.Cores || back.Style != orig.Style || back.Mem != orig.Mem ||
		back.Policy != orig.Policy || back.T != orig.T || back.Seed != orig.Seed ||
		back.SpeedAwareRT != orig.SpeedAwareRT {
		t.Errorf("round trip changed machine: %+v vs %+v", back, orig)
	}
	// Zero-valued machine gets defaults on write.
	buf.Reset()
	if err := WriteMachine(&buf, Machine{Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy spatial") || !strings.Contains(buf.String(), "T 100") {
		t.Errorf("defaults not serialized:\n%s", buf.String())
	}
}
