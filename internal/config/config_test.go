package config

import (
	"testing"

	"simany/internal/core"
	"simany/internal/vtime"
)

func TestDefaultMachineBuilds(t *testing.T) {
	k, r, err := Default(8).Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.NumCores() != 8 {
		t.Errorf("cores = %d", k.NumCores())
	}
	if k.Policy().Name() != "spatial" {
		t.Errorf("policy = %s", k.Policy().Name())
	}
	if r == nil {
		t.Fatal("no runtime")
	}
}

func TestPolymorphicSpeeds(t *testing.T) {
	m := Default(8)
	m.Style = Polymorphic
	s := m.Speeds()
	if len(s) != 8 {
		t.Fatalf("speeds = %v", s)
	}
	var total float64
	for i, v := range s {
		if i%2 == 0 && v != 0.5 {
			t.Errorf("even core speed = %v", v)
		}
		if i%2 == 1 && v != 1.5 {
			t.Errorf("odd core speed = %v", v)
		}
		total += v
	}
	// Same cumulated computing power as uniform.
	if total != 8 {
		t.Errorf("total power = %v", total)
	}
}

func TestClusteredTopology(t *testing.T) {
	m := Default(64)
	m.Style = Clustered4
	topo := m.Topology()
	if topo.N() != 64 || !topo.Connected() {
		t.Error("bad clustered topology")
	}
	m.Style = Clustered8
	if m.Topology().N() != 64 {
		t.Error("bad clustered8 topology")
	}
}

func TestPolicyParsing(t *testing.T) {
	cases := map[string]string{
		"":           "spatial",
		"spatial":    "spatial",
		"cyclelevel": "cycle-level",
		"quantum:50": "quantum",
		"slack:200":  "bounded-slack",
		"laxp2p:100": "laxp2p",
		"unbounded":  "unbounded",
	}
	for in, want := range cases {
		m := Default(4)
		m.Policy = in
		k, _, err := m.Build()
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if k.Policy().Name() != want {
			t.Errorf("%q -> %s, want %s", in, k.Policy().Name(), want)
		}
	}
}

func TestPolicyErrors(t *testing.T) {
	for _, bad := range []string{"wat", "quantum:-5", "slack:x"} {
		m := Default(4)
		m.Policy = bad
		if _, _, err := m.Build(); err == nil {
			t.Errorf("no error for policy %q", bad)
		}
	}
	m := Default(0)
	if _, _, err := m.Build(); err == nil {
		t.Error("no error for zero cores")
	}
}

func TestStyleAndMemStrings(t *testing.T) {
	if Uniform.String() != "uniform" || Polymorphic.String() != "polymorphic" ||
		Clustered4.String() != "clustered4" || Clustered8.String() != "clustered8" {
		t.Error("style names")
	}
	if SharedMem.String() != "shared" || SharedMemCoherent.String() != "shared+coherence" ||
		DistributedMem.String() != "distributed" {
		t.Error("mem names")
	}
}

func TestMachinesRunATask(t *testing.T) {
	for _, mk := range []MemKind{SharedMem, SharedMemCoherent, DistributedMem} {
		for _, st := range []Style{Uniform, Polymorphic, Clustered4} {
			m := Default(16)
			m.Mem = mk
			m.Style = st
			m.Seed = 3
			k, r, err := m.Build()
			if err != nil {
				t.Fatal(err)
			}
			ran := 0
			res, err := r.Run("root", func(e *core.Env) {
				g := r.NewGroup()
				for i := 0; i < 8; i++ {
					r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
						ce.ComputeCycles(100)
						ce.Read(64, 8, 8)
						ran++
					})
				}
				r.Join(e, g)
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", st, mk, err)
			}
			if ran != 8 || res.FinalVT <= 0 {
				t.Errorf("%s/%s: ran=%d vt=%v", st, mk, ran, res.FinalVT)
			}
			_ = k
		}
	}
}

func TestCycleLevelMachine(t *testing.T) {
	m := Default(8)
	m.Policy = "cyclelevel"
	m.Seed = 9
	_, r, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("root", func(e *core.Env) {
		e.ComputeCycles(100)
		e.Read(0, 16, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalVT < vtime.CyclesInt(100) {
		t.Errorf("FinalVT = %v", res.FinalVT)
	}
}
