package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"simany/internal/topology"
	"simany/internal/vtime"
)

// Machine description files give the full architecture in one place, in
// the spirit of SiMany's configuration files (§III): organization, memory,
// synchronization and (optionally) an external adjacency-matrix topology.
//
//	# 256-core clustered machine
//	cores 256
//	style clustered4
//	mem distributed
//	policy spatial
//	T 100
//	seed 7
//	speedaware on
//	topology custom.topo     # optional, overrides cores/style
//	topo chiplet:8x8,4x4     # optional textual spec, overrides cores/style
//
// Unknown keys are rejected so typos fail loudly.

// ParseMachine reads a machine description. resolve loads referenced
// topology files (nil forbids references, for sandboxed parsing).
func ParseMachine(r io.Reader, resolve func(path string) (io.ReadCloser, error)) (Machine, error) {
	m := Machine{T: vtime.CyclesInt(100)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		val = strings.TrimSpace(val)
		if !ok || val == "" {
			return m, fmt.Errorf("config: line %d: %q needs a value", lineNo, key)
		}
		switch key {
		case "cores":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return m, fmt.Errorf("config: line %d: bad core count %q", lineNo, val)
			}
			m.Cores = n
		case "style":
			switch val {
			case "uniform":
				m.Style = Uniform
			case "polymorphic":
				m.Style = Polymorphic
			case "clustered4":
				m.Style = Clustered4
			case "clustered8":
				m.Style = Clustered8
			default:
				return m, fmt.Errorf("config: line %d: unknown style %q", lineNo, val)
			}
		case "mem":
			switch val {
			case "shared":
				m.Mem = SharedMem
			case "coherent", "shared+coherence":
				m.Mem = SharedMemCoherent
			case "distributed", "dist":
				m.Mem = DistributedMem
			default:
				return m, fmt.Errorf("config: line %d: unknown memory kind %q", lineNo, val)
			}
		case "policy":
			m.Policy = val
		case "T":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return m, fmt.Errorf("config: line %d: bad T %q", lineNo, val)
			}
			m.T = vtime.Cycles(f)
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return m, fmt.Errorf("config: line %d: bad seed %q", lineNo, val)
			}
			m.Seed = s
		case "speedaware":
			switch val {
			case "on", "true", "yes":
				m.SpeedAwareRT = true
			case "off", "false", "no":
				m.SpeedAwareRT = false
			default:
				return m, fmt.Errorf("config: line %d: bad speedaware %q", lineNo, val)
			}
		case "topology":
			if resolve == nil {
				return m, fmt.Errorf("config: line %d: topology references not allowed here", lineNo)
			}
			f, err := resolve(val)
			if err != nil {
				return m, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			topo, err := topology.ParseAdjacency(f)
			f.Close()
			if err != nil {
				return m, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			m.Topo = topo
		case "topo":
			// Validate the spec at parse time so a typo fails on this
			// line, not later inside Build. Chiplet specs are grammar-
			// checked without building the (possibly 100k-core) network.
			if tiers, ok := strings.CutPrefix(val, "chiplet:"); ok {
				if _, err := topology.ParseChipletSpec(tiers); err != nil {
					return m, fmt.Errorf("config: line %d: %w", lineNo, err)
				}
			} else if _, err := topology.ParseSpec(val); err != nil {
				return m, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			m.TopoSpec = val
		default:
			return m, fmt.Errorf("config: line %d: unknown key %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return m, err
	}
	if m.Cores == 0 && m.Topo == nil {
		return m, fmt.Errorf("config: machine file declares neither cores nor topology")
	}
	return m, nil
}

// LoadMachineFile parses a machine description from disk; topology
// references resolve relative to the file's directory.
func LoadMachineFile(path string) (Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return Machine{}, err
	}
	defer f.Close()
	dir := filepath.Dir(path)
	return ParseMachine(f, func(ref string) (io.ReadCloser, error) {
		if !filepath.IsAbs(ref) {
			ref = filepath.Join(dir, ref)
		}
		return os.Open(ref)
	})
}

// WriteMachine serializes m in the machine-file format (without topology
// references; explicit topologies are written separately).
func WriteMachine(w io.Writer, m Machine) error {
	t := m.T
	if t == 0 {
		t = vtime.CyclesInt(100)
	}
	_, err := fmt.Fprintf(w, "cores %d\nstyle %s\nmem %s\npolicy %s\nT %g\nseed %d\nspeedaware %v\n",
		m.Cores, m.Style, memKeyword(m.Mem), policyOrDefault(m.Policy), t.InCycles(), m.Seed, m.SpeedAwareRT)
	return err
}

func memKeyword(m MemKind) string {
	switch m {
	case SharedMemCoherent:
		return "coherent"
	case DistributedMem:
		return "distributed"
	default:
		return "shared"
	}
}

func policyOrDefault(p string) string {
	if p == "" {
		return "spatial"
	}
	return p
}
