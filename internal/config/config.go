// Package config assembles complete simulated machines from the paper's
// architecture presets (§V "Architecture Configuration" / "Architecture
// Exploration"): uniform, polymorphic and clustered 2D meshes, with
// shared-memory (optionally timing coherence effects) or distributed-memory
// organizations, under any synchronization policy.
package config

import (
	"fmt"
	"strconv"
	"strings"

	"simany/internal/core"
	"simany/internal/cyclelevel"
	"simany/internal/drift"
	"simany/internal/mem"
	"simany/internal/metrics"
	"simany/internal/network"
	"simany/internal/rt"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// Style selects the machine organization.
type Style int

const (
	// Uniform is a homogeneous 2D mesh.
	Uniform Style = iota
	// Polymorphic alternates cores of speed 1/2 and 3/2 — exactly the
	// same cumulated computing power as the uniform machine (§V).
	Polymorphic
	// Clustered4 splits the mesh into 4 clusters (0.5-cycle intra links,
	// 4-cycle inter links).
	Clustered4
	// Clustered8 splits into 8 clusters.
	Clustered8
)

// String names the style.
func (s Style) String() string {
	switch s {
	case Polymorphic:
		return "polymorphic"
	case Clustered4:
		return "clustered4"
	case Clustered8:
		return "clustered8"
	default:
		return "uniform"
	}
}

// MemKind selects the memory organization.
type MemKind int

const (
	// SharedMem is the optimistic shared-memory architecture: uniform
	// 10-cycle banks, coherence delays ignored (§V).
	SharedMem MemKind = iota
	// SharedMemCoherent is shared memory with coherence-effect timing
	// enabled (the validation configuration of Figs. 5-6).
	SharedMemCoherent
	// DistributedMem is the distributed-memory architecture without
	// hardware coherence; shared data managed by the runtime (§IV).
	DistributedMem
)

// String names the memory kind.
func (m MemKind) String() string {
	switch m {
	case SharedMemCoherent:
		return "shared+coherence"
	case DistributedMem:
		return "distributed"
	default:
		return "shared"
	}
}

// Machine is a complete architecture description.
type Machine struct {
	// Cores is the core count (8, 64, 256 or 1024 in the paper).
	Cores int
	// Style is the organization (uniform/polymorphic/clustered).
	Style Style
	// Topo, when non-nil, overrides Style/Cores with an arbitrary network
	// (e.g. parsed from an adjacency-matrix file, §III).
	Topo *topology.Topology
	// TopoSpec, when non-empty, builds the network from a textual spec
	// (topology.ParseSpec): "chiplet:8x8,4x4,10x10", "mesh:16x8",
	// "ring:64", ... It overrides Style/Cores like Topo; an explicit Topo
	// takes precedence.
	TopoSpec string
	// Mem is the memory organization.
	Mem MemKind
	// T is the maximum local drift for spatial synchronization (100
	// cycles by default).
	T vtime.Time
	// Policy overrides the synchronization scheme; empty = "spatial".
	// Recognized: spatial, cyclelevel, quantum:<cycles>, slack:<cycles>,
	// laxp2p:<cycles>, unbounded.
	Policy string
	// SpeedAwareRT enables the heterogeneity-aware task dispatch policy
	// (the paper's §VIII future-work extension; see rt.Options).
	SpeedAwareRT bool
	// Seed drives all pseudo-random simulator decisions.
	Seed int64
	// MaxSteps optionally bounds the simulation (0 = unbounded).
	MaxSteps int64
	// Shards splits the machine into contiguous topology partitions that
	// the kernel executes round-by-round. 0 or 1 keeps the sequential
	// engine. The shard count is part of the event semantics: results are
	// deterministic for a fixed (seed, shards) pair.
	Shards int
	// Workers is the number of host threads driving the shards (0 =
	// GOMAXPROCS, capped at Shards). It never affects results.
	Workers int
	// Sched selects the scheduling implementation (docs/scheduler.md):
	// "auto" or "" uses the indexed runnable queue when the policy's
	// horizon is cacheable, "scan" forces the reference linear scan, and
	// "verify" runs both side by side, panicking on divergence. The
	// choice never affects results — only host speed.
	Sched string
	// Eff selects the effective-time evaluation scheme
	// (docs/effective-time.md): "auto" or "" evaluates idle-region shadow
	// times lazily from the busy frontier when the policy supports it,
	// "eager" forces the reference per-completion propagation flood,
	// "lazy" requests lazy evaluation explicitly, and "verify" runs eager
	// authoritatively with a lazy cross-check, panicking on divergence.
	// Like Sched, the choice never affects results — only host speed.
	Eff string
	// Metrics, when non-nil, attaches a deterministic metrics registry:
	// the kernel records its standard instruments (message latency, link
	// contention, barrier stalls — see docs/observability.md) into it, and
	// the drift-comparison policies record their drift-to-bound probes.
	Metrics *metrics.Registry
}

// Default returns the paper's reference machine: a uniform shared-memory
// mesh with spatial synchronization at T=100.
func Default(cores int) Machine {
	return Machine{Cores: cores, T: core.DefaultT}
}

// Speeds returns the per-core speed factors for the style (nil for
// homogeneous).
func (m Machine) Speeds() []float64 {
	if m.Style != Polymorphic {
		return nil
	}
	s := make([]float64, m.Cores)
	for i := range s {
		// One core out of two is twice slower, the other faster by 3/2:
		// same cumulated computing power as the uniform machine (§V).
		if i%2 == 0 {
			s[i] = 0.5
		} else {
			s[i] = 1.5
		}
	}
	return s
}

// Topology builds the interconnect for the style (or returns the explicit
// override).
func (m Machine) Topology() *topology.Topology {
	if m.Topo != nil {
		return m.Topo
	}
	if m.TopoSpec != "" {
		t, err := topology.ParseSpec(m.TopoSpec)
		if err != nil {
			// Build validates the spec and returns the error; reaching
			// this panic means Topology was called around it.
			panic(err)
		}
		return t
	}
	switch m.Style {
	case Clustered4:
		return topology.Clustered(m.Cores, topology.DefaultClusteredParams(4))
	case Clustered8:
		return topology.Clustered(m.Cores, topology.DefaultClusteredParams(8))
	default:
		return topology.Mesh(m.Cores)
	}
}

// parseSched resolves the scheduler-mode string.
func (m Machine) parseSched() (core.SchedMode, error) {
	switch m.Sched {
	case "", "auto":
		return core.SchedAuto, nil
	case "scan":
		return core.SchedScan, nil
	case "verify":
		return core.SchedVerify, nil
	default:
		return 0, fmt.Errorf("config: unknown scheduler mode %q", m.Sched)
	}
}

// parseEff resolves the effective-time evaluation-scheme string.
func (m Machine) parseEff() (core.EffMode, error) {
	switch m.Eff {
	case "", "auto":
		return core.EffAuto, nil
	case "eager":
		return core.EffEager, nil
	case "lazy":
		return core.EffLazy, nil
	case "verify":
		return core.EffVerify, nil
	default:
		return 0, fmt.Errorf("config: unknown effective-time mode %q", m.Eff)
	}
}

// parsePolicy resolves the policy string.
func (m Machine) parsePolicy() (core.Policy, bool, error) {
	t := m.T
	if t == 0 {
		t = core.DefaultT
	}
	name, arg, hasArg := strings.Cut(m.Policy, ":")
	argCycles := func(def vtime.Time) (vtime.Time, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("config: bad policy argument %q", arg)
		}
		return vtime.Cycles(v), nil
	}
	// When a metrics registry is attached, the drift-comparison policies
	// record how close each horizon decision came to the scheme's bound.
	probe := func() *metrics.Histogram {
		if m.Metrics == nil {
			return nil
		}
		return m.Metrics.Histogram("drift.probe", metrics.UnitTime, metrics.DefaultTimeBounds())
	}
	switch name {
	case "", "spatial":
		return core.Spatial{T: t}, false, nil
	case "cyclelevel", "cycle-level", "lockstep":
		return cyclelevel.Lockstep{}, true, nil
	case "quantum":
		q, err := argCycles(t)
		if err != nil {
			return nil, false, err
		}
		return drift.GlobalQuantum{Q: q, Probe: probe()}, false, nil
	case "slack", "bounded-slack":
		w, err := argCycles(t)
		if err != nil {
			return nil, false, err
		}
		return drift.BoundedSlack{W: w, Probe: probe()}, false, nil
	case "laxp2p":
		s, err := argCycles(t)
		if err != nil {
			return nil, false, err
		}
		return drift.LaxP2P{Slack: s, Probe: probe()}, false, nil
	case "unbounded":
		return drift.Unbounded{}, false, nil
	default:
		return nil, false, fmt.Errorf("config: unknown policy %q", m.Policy)
	}
}

// Build constructs the kernel and its task runtime.
func (m Machine) Build() (*core.Kernel, *rt.Runtime, error) {
	if m.Topo == nil && m.TopoSpec != "" {
		t, err := topology.ParseSpec(m.TopoSpec)
		if err != nil {
			return nil, nil, err
		}
		m.Topo = t
	}
	if m.Topo != nil {
		m.Cores = m.Topo.N()
	}
	if m.Cores <= 0 {
		return nil, nil, fmt.Errorf("config: invalid core count %d", m.Cores)
	}
	if m.Topo != nil && m.Style == Polymorphic && m.Topo.N()%2 != 0 {
		return nil, nil, fmt.Errorf("config: polymorphic style needs an even core count")
	}
	pol, isCycleLevel, err := m.parsePolicy()
	if err != nil {
		return nil, nil, err
	}
	sched, err := m.parseSched()
	if err != nil {
		return nil, nil, err
	}
	eff, err := m.parseEff()
	if err != nil {
		return nil, nil, err
	}
	topo := m.Topology()
	netParams := network.DefaultParams()
	var ms core.MemSystem
	switch {
	case isCycleLevel:
		// The cycle-level reference always models the detailed memory
		// system with full coherence (and constant-speed L1s).
		ms = cyclelevel.NewMem(topo.N(), network.New(topo, netParams))
	case m.Mem == DistributedMem:
		ms = mem.NewDistributed()
	case m.Mem == SharedMemCoherent:
		ms = mem.NewShared().WithCoherence(network.New(topo, netParams))
	default:
		ms = mem.NewShared()
	}
	cfg := core.Config{
		Topo:      topo,
		NetParams: netParams,
		Policy:    pol,
		Mem:       ms,
		Speeds:    m.Speeds(),
		Seed:      m.Seed,
		MaxSteps:  m.MaxSteps,
		Shards:    m.Shards,
		Workers:   m.Workers,
		Sched:     sched,
		Eff:       eff,
		Metrics:   m.Metrics,
	}
	if isCycleLevel {
		clCfg := cyclelevel.NewConfig(topo, m.Speeds(), m.Seed)
		cfg.Predict = clCfg.Predict
		cfg.Mem = clCfg.Mem
	}
	k := core.New(cfg)
	rtOpt := rt.DefaultOptions()
	rtOpt.SpeedAware = m.SpeedAwareRT
	r := rt.New(k, nil, rtOpt)
	return k, r, nil
}
