// Package timing provides the instruction-block timing annotations that
// drive SiMany's virtual clock.
//
// The paper groups ISA instructions into classes sharing a single time
// value (unconditional branches, conditional branches, common integer
// arithmetic, integer multiply, simple floating-point arithmetic and
// floating-point multiply and divide, §V). Branch prediction is handled
// specially: statically predictable branches carry their effect in the
// annotation; others use a probabilistic predictor with a 90% success rate
// and a 5-cycle mispredict penalty on a 5-stage pipeline.
package timing

import (
	"math/rand"

	"simany/internal/rng"
	"simany/internal/vtime"
)

// Class enumerates instruction classes.
type Class int

const (
	// IntALU is common integer arithmetic/logic.
	IntALU Class = iota
	// IntMul is integer multiplication.
	IntMul
	// IntDiv is integer division.
	IntDiv
	// FPALU is simple floating-point arithmetic (add/sub/compare).
	FPALU
	// FPMul is floating-point multiplication.
	FPMul
	// FPDiv is floating-point division.
	FPDiv
	// BranchUncond is an unconditional branch (statically predicted).
	BranchUncond
	// BranchCond is a conditional branch (probabilistically predicted).
	BranchCond
	// NumClasses is the number of instruction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"int-alu", "int-mul", "int-div", "fp-alu", "fp-mul", "fp-div",
	"branch-uncond", "branch-cond",
}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "invalid-class"
	}
	return classNames[c]
}

// Counts is an aggregate instruction count for a code block, indexed by
// Class.
type Counts [NumClasses]int64

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Total returns the total instruction count.
func (c Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// CostModel maps instruction classes to per-instruction costs and carries
// the branch-prediction parameters of §V.
type CostModel struct {
	// Cost is the per-instruction cost for each class, excluding branch
	// misprediction penalties.
	Cost [NumClasses]vtime.Time
	// MispredictPenalty is the pipeline-flush cost of a mispredicted
	// branch (5 cycles for the 5-stage PowerPC 405 pipeline).
	MispredictPenalty vtime.Time
	// PredictRate is the success probability of the dynamic predictor for
	// conditional branches whose outcome is not statically known (0.90 in
	// the paper).
	PredictRate float64
}

// PPC405 returns the PowerPC-405-flavoured cost model of §V: a scalar
// 5-stage pipeline where common operations take a cycle and multiplies and
// divides are multi-cycle, with a 90% predictor and 5-cycle penalty.
func PPC405() *CostModel {
	m := &CostModel{
		MispredictPenalty: vtime.CyclesInt(5),
		PredictRate:       0.90,
	}
	m.Cost[IntALU] = vtime.CyclesInt(1)
	m.Cost[IntMul] = vtime.CyclesInt(4)
	m.Cost[IntDiv] = vtime.CyclesInt(35)
	m.Cost[FPALU] = vtime.CyclesInt(4) // software-assisted FP on a 405-class core
	m.Cost[FPMul] = vtime.CyclesInt(6)
	m.Cost[FPDiv] = vtime.CyclesInt(30)
	m.Cost[BranchUncond] = vtime.CyclesInt(1)
	m.Cost[BranchCond] = vtime.CyclesInt(1)
	return m
}

// BlockCost returns the statically-determined cost of an instruction block:
// the per-class costs, excluding dynamic branch misprediction effects
// (added separately by a Predictor).
func (m *CostModel) BlockCost(c Counts) vtime.Time {
	var t vtime.Time
	for cls, n := range c {
		t += m.Cost[cls] * vtime.Time(n)
	}
	return t
}

// Predictor models dynamic branch prediction outcomes for conditional
// branches. Implementations must be deterministic for a fixed seed / input
// sequence.
type Predictor interface {
	// Mispredicts returns how many of n conditional branches were
	// mispredicted.
	Mispredicts(n int64) int64
}

// ProbabilisticPredictor is SiMany's predictor: each conditional branch is
// mispredicted independently with probability 1-rate. For large n it uses
// the expected value to stay O(1); below the threshold it draws per-branch
// for realistic variance.
type ProbabilisticPredictor struct {
	Rate float64
	// rng is a serializable counter-based generator: its exact stream
	// position is a single uint64, so predictor state survives a
	// checkpoint/restore round trip.
	rng *rng.Rand
}

// NewProbabilisticPredictor creates a predictor with the given success rate
// and seed.
func NewProbabilisticPredictor(rate float64, seed int64) *ProbabilisticPredictor {
	return &ProbabilisticPredictor{Rate: rate, rng: rng.New(uint64(seed))}
}

// RngState exposes the predictor's random-stream position for
// checkpointing.
func (p *ProbabilisticPredictor) RngState() uint64 { return p.rng.State() }

// SetRngState restores a checkpointed random-stream position.
func (p *ProbabilisticPredictor) SetRngState(s uint64) { p.rng.SetState(s) }

// samplingThreshold bounds the per-branch sampling work; larger blocks use
// the expectation, which the law of large numbers makes indistinguishable.
const samplingThreshold = 64

// Mispredicts implements Predictor.
func (p *ProbabilisticPredictor) Mispredicts(n int64) int64 {
	if n <= 0 {
		return 0
	}
	missRate := 1 - p.Rate
	if n > samplingThreshold {
		return int64(float64(n)*missRate + 0.5)
	}
	var m int64
	for i := int64(0); i < n; i++ {
		if p.rng.Float64() < missRate {
			m++
		}
	}
	return m
}

// TwoBitPredictor is the deterministic 2-bit saturating-counter predictor
// used by the cycle-level reference simulator. Branch outcomes are derived
// from a per-call pseudo-random but deterministic taken pattern seeded by
// the caller, so that the reference and SiMany see the same workload but
// time it differently.
type TwoBitPredictor struct {
	state   uint8 // 0,1 = predict not taken; 2,3 = predict taken
	pattern *rand.Rand
	bias    float64 // probability a branch is actually taken
}

// NewTwoBitPredictor creates a 2-bit predictor whose branch streams are
// taken with probability bias.
func NewTwoBitPredictor(bias float64, seed int64) *TwoBitPredictor {
	return &TwoBitPredictor{state: 2, pattern: rand.New(rand.NewSource(seed)), bias: bias}
}

// Mispredicts implements Predictor by running n branches through the
// saturating counter.
func (p *TwoBitPredictor) Mispredicts(n int64) int64 {
	var m int64
	for i := int64(0); i < n; i++ {
		taken := p.pattern.Float64() < p.bias
		predictTaken := p.state >= 2
		if taken != predictTaken {
			m++
		}
		if taken {
			if p.state < 3 {
				p.state++
			}
		} else if p.state > 0 {
			p.state--
		}
	}
	return m
}

// BlockTimer combines a cost model and a predictor into the complete
// annotation evaluator used by a simulated core.
type BlockTimer struct {
	//simany:derived immutable cost tables, reinstated with the configuration
	Model     *CostModel
	Predictor Predictor
}

// NewBlockTimer builds a BlockTimer.
func NewBlockTimer(m *CostModel, p Predictor) *BlockTimer {
	return &BlockTimer{Model: m, Predictor: p}
}

// Time returns the virtual duration of an instruction block: static class
// costs plus dynamic misprediction penalties for the conditional branches.
func (bt *BlockTimer) Time(c Counts) vtime.Time {
	t := bt.Model.BlockCost(c)
	if n := c[BranchCond]; n > 0 && bt.Predictor != nil {
		t += bt.Model.MispredictPenalty * vtime.Time(bt.Predictor.Mispredicts(n))
	}
	return t
}
