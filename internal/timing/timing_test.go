package timing

import (
	"testing"
	"testing/quick"

	"simany/internal/vtime"
)

func TestClassString(t *testing.T) {
	if IntALU.String() != "int-alu" || FPDiv.String() != "fp-div" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "invalid-class" {
		t.Error("out-of-range class name")
	}
}

func TestCountsAddTotal(t *testing.T) {
	var a, b Counts
	a[IntALU] = 5
	a[FPMul] = 2
	b[IntALU] = 3
	b[BranchCond] = 1
	a.Add(b)
	if a[IntALU] != 8 || a[FPMul] != 2 || a[BranchCond] != 1 {
		t.Errorf("Add wrong: %v", a)
	}
	if a.Total() != 11 {
		t.Errorf("Total = %d", a.Total())
	}
}

func TestPPC405Costs(t *testing.T) {
	m := PPC405()
	if m.Cost[IntALU] != vtime.CyclesInt(1) {
		t.Error("int alu should be single cycle")
	}
	if m.Cost[IntMul] <= m.Cost[IntALU] {
		t.Error("multiply should cost more than add")
	}
	if m.Cost[IntDiv] <= m.Cost[IntMul] {
		t.Error("divide should cost more than multiply")
	}
	if m.Cost[FPDiv] <= m.Cost[FPALU] {
		t.Error("fp divide should cost more than fp add")
	}
	if m.MispredictPenalty != vtime.CyclesInt(5) {
		t.Errorf("mispredict penalty = %v, want 5cy (5-stage pipeline)", m.MispredictPenalty)
	}
	if m.PredictRate != 0.90 {
		t.Errorf("predict rate = %v", m.PredictRate)
	}
}

func TestBlockCost(t *testing.T) {
	m := PPC405()
	var c Counts
	c[IntALU] = 10
	c[IntMul] = 2
	want := 10*m.Cost[IntALU] + 2*m.Cost[IntMul]
	if got := m.BlockCost(c); got != want {
		t.Errorf("BlockCost = %v, want %v", got, want)
	}
}

func TestProbabilisticPredictorLargeN(t *testing.T) {
	p := NewProbabilisticPredictor(0.90, 1)
	// Large n uses the expectation: exactly 10%.
	if got := p.Mispredicts(10000); got != 1000 {
		t.Errorf("Mispredicts(10000) = %d, want 1000", got)
	}
	if got := p.Mispredicts(0); got != 0 {
		t.Errorf("Mispredicts(0) = %d", got)
	}
	if got := p.Mispredicts(-5); got != 0 {
		t.Errorf("Mispredicts(-5) = %d", got)
	}
}

func TestProbabilisticPredictorSmallN(t *testing.T) {
	// Small n samples; with a fixed seed the result is deterministic and
	// bounded by n.
	p1 := NewProbabilisticPredictor(0.90, 42)
	p2 := NewProbabilisticPredictor(0.90, 42)
	for i := 0; i < 20; i++ {
		a, b := p1.Mispredicts(10), p2.Mispredicts(10)
		if a != b {
			t.Fatal("same seed diverged")
		}
		if a < 0 || a > 10 {
			t.Fatalf("Mispredicts(10) = %d out of range", a)
		}
	}
}

func TestProbabilisticPredictorRateZeroOne(t *testing.T) {
	perfect := NewProbabilisticPredictor(1.0, 7)
	for i := int64(1); i < 50; i++ {
		if perfect.Mispredicts(i) != 0 {
			t.Fatal("perfect predictor mispredicted")
		}
	}
	never := NewProbabilisticPredictor(0.0, 7)
	if got := never.Mispredicts(30); got != 30 {
		t.Fatalf("0%% predictor: %d/30 mispredicts", got)
	}
}

func TestTwoBitPredictorDeterministic(t *testing.T) {
	a := NewTwoBitPredictor(0.7, 3)
	b := NewTwoBitPredictor(0.7, 3)
	for i := 0; i < 10; i++ {
		if a.Mispredicts(100) != b.Mispredicts(100) {
			t.Fatal("two-bit predictor not deterministic")
		}
	}
}

func TestTwoBitPredictorAdapts(t *testing.T) {
	// Strongly biased branch streams should be predicted well.
	p := NewTwoBitPredictor(0.99, 5)
	m := p.Mispredicts(10000)
	if float64(m)/10000 > 0.05 {
		t.Errorf("2-bit predictor miss rate %f on 99%%-taken stream", float64(m)/10000)
	}
}

func TestBlockTimerAddsPenalty(t *testing.T) {
	m := PPC405()
	bt := NewBlockTimer(m, NewProbabilisticPredictor(0.90, 1))
	var c Counts
	c[BranchCond] = 10000
	got := bt.Time(c)
	want := m.Cost[BranchCond]*10000 + m.MispredictPenalty*1000
	if got != want {
		t.Errorf("Time = %v, want %v", got, want)
	}
}

func TestBlockTimerNilPredictor(t *testing.T) {
	m := PPC405()
	bt := NewBlockTimer(m, nil)
	var c Counts
	c[BranchCond] = 100
	if got := bt.Time(c); got != m.Cost[BranchCond]*100 {
		t.Errorf("Time with nil predictor = %v", got)
	}
}

func TestMispredictsBounds(t *testing.T) {
	p := NewProbabilisticPredictor(0.90, 11)
	f := func(n uint16) bool {
		m := p.Mispredicts(int64(n))
		return m >= 0 && m <= int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockCostLinear(t *testing.T) {
	m := PPC405()
	f := func(a, b uint8) bool {
		var c1, c2, sum Counts
		c1[IntALU] = int64(a)
		c2[IntALU] = int64(b)
		sum[IntALU] = int64(a) + int64(b)
		return m.BlockCost(c1)+m.BlockCost(c2) == m.BlockCost(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
