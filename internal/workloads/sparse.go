package workloads

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// SparseMatrix is a sparse matrix in the row-oriented compressed format the
// paper describes as "alike to the Harwell-Boeing format" (§V): row
// pointers into parallel column-index and value arrays.
type SparseMatrix struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the number of stored coefficients.
func (m *SparseMatrix) NNZ() int64 { return int64(len(m.Vals)) }

// RandomSparse builds a Rows×Cols matrix with approximately nnzPerRow
// non-null coefficients per row, as the paper's randomly-generated group
// (10^6×10^6 with 50 or 100 nnz/row; the harness scales sizes down).
func RandomSparse(seed int64, rows, cols, nnzPerRow int) *SparseMatrix {
	rng := rand.New(rand.NewSource(seed))
	m := &SparseMatrix{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
	}
	for r := 0; r < rows; r++ {
		n := nnzPerRow/2 + rng.Intn(nnzPerRow+1) // average ≈ nnzPerRow
		cs := make(map[int32]struct{}, n)
		for len(cs) < n && len(cs) < cols {
			cs[int32(rng.Intn(cols))] = struct{}{}
		}
		sorted := make([]int32, 0, len(cs))
		for c := range cs {
			sorted = append(sorted, c)
		}
		// Insertion sort keeps the generator allocation-light and
		// deterministic.
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for _, c := range sorted {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, rng.Float64()*2-1)
		}
		m.RowPtr[r+1] = int64(len(m.Vals))
	}
	return m
}

// MultiplySeq computes y = m·x natively (reference output).
func (m *SparseMatrix) MultiplySeq(x []float64) []float64 {
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float64
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			acc += m.Vals[i] * x[m.ColIdx[i]]
		}
		y[r] = acc
	}
	return y
}

// WriteRowFormat serializes the matrix in the textual row-oriented format:
//
//	spmxv <rows> <cols> <nnz>
//	<rowptr...  (rows+1 entries)>
//	<colidx value> per nnz line
func (m *SparseMatrix) WriteRowFormat(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "spmxv %d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i, p := range m.RowPtr {
		if i > 0 {
			bw.WriteByte(' ')
		}
		fmt.Fprintf(bw, "%d", p)
	}
	bw.WriteByte('\n')
	for i := range m.Vals {
		fmt.Fprintf(bw, "%d %.17g\n", m.ColIdx[i], m.Vals[i])
	}
	return bw.Flush()
}

// ReadRowFormat parses the format written by WriteRowFormat, so matrices
// from external collections can be dropped in.
func ReadRowFormat(r io.Reader) (*SparseMatrix, error) {
	br := bufio.NewReader(r)
	var rows, cols int
	var nnz int64
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("workloads: reading header: %w", err)
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(header), "spmxv %d %d %d", &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("workloads: bad header %q: %w", strings.TrimSpace(header), err)
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("workloads: invalid dimensions %dx%d nnz %d", rows, cols, nnz)
	}
	m := &SparseMatrix{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, 0, rows+1),
		ColIdx: make([]int32, 0, nnz),
		Vals:   make([]float64, 0, nnz),
	}
	ptrLine, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("workloads: reading row pointers: %w", err)
	}
	for _, f := range strings.Fields(ptrLine) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: bad row pointer %q", f)
		}
		m.RowPtr = append(m.RowPtr, v)
	}
	if len(m.RowPtr) != rows+1 {
		return nil, fmt.Errorf("workloads: %d row pointers, want %d", len(m.RowPtr), rows+1)
	}
	if m.RowPtr[rows] != nnz {
		return nil, fmt.Errorf("workloads: last row pointer %d != nnz %d", m.RowPtr[rows], nnz)
	}
	for i := int64(0); i < nnz; i++ {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("workloads: truncated at coefficient %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workloads: bad coefficient line %q", strings.TrimSpace(line))
		}
		c, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil || c < 0 || int(c) >= cols {
			return nil, fmt.Errorf("workloads: bad coefficient %q", strings.TrimSpace(line))
		}
		m.ColIdx = append(m.ColIdx, int32(c))
		m.Vals = append(m.Vals, v)
	}
	return m, nil
}
