package workloads

import (
	"math"
	"math/rand"
)

// Body is a point mass for the Barnes-Hut benchmark.
type Body struct {
	X, Y, Z    float64
	Mass       float64
	FX, FY, FZ float64 // accumulated force (output)
}

// RandomBodies places n bodies uniformly in the unit cube with masses in
// (0, 1].
func RandomBodies(seed int64, n int) []Body {
	rng := rand.New(rand.NewSource(seed))
	bs := make([]Body, n)
	for i := range bs {
		bs[i] = Body{
			X:    rng.Float64(),
			Y:    rng.Float64(),
			Z:    rng.Float64(),
			Mass: rng.Float64()*0.9 + 0.1,
		}
	}
	return bs
}

// BHNode is one node of the Barnes-Hut space-partitioning tree: internal
// nodes hold the center of mass of their subtree (§V).
type BHNode struct {
	// CX, CY, CZ and Mass form the center of mass.
	CX, CY, CZ, Mass float64
	// Half is the half-width of this node's cube.
	Half float64
	// Children holds indices of the eight octants (-1 = empty).
	Children [8]int32
	// Body is the body index for leaves (-1 for internal nodes).
	Body int32
}

// BHTree is the hierarchical partition of a body set.
type BHTree struct {
	Nodes  []BHNode
	Bodies []Body
	// Theta is the opening criterion of the force traversal.
	Theta float64
}

// BuildBHTree constructs the tree over bodies (phase 1 of the benchmark,
// which the paper executes before the measured phase and broadcasts to all
// cores).
func BuildBHTree(bodies []Body, theta float64) *BHTree {
	t := &BHTree{Bodies: bodies, Theta: theta}
	if len(bodies) == 0 {
		return t
	}
	root := t.newNode(0.5, 0.5, 0.5, 0.5)
	for i := range bodies {
		t.insert(root, int32(i), 0)
	}
	t.computeMass(root)
	return t
}

func (t *BHTree) newNode(cx, cy, cz, half float64) int32 {
	t.Nodes = append(t.Nodes, BHNode{
		CX: cx, CY: cy, CZ: cz, Half: half, Body: -1,
		Children: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1},
	})
	return int32(len(t.Nodes) - 1)
}

const maxBHDepth = 64

func (t *BHTree) insert(n, body int32, depth int) {
	node := &t.Nodes[n]
	if node.Body < 0 && !t.hasChildren(n) {
		node.Body = body
		return
	}
	if depth >= maxBHDepth {
		// Coincident points: merge into this leaf (mass handled later by
		// computeMass walking the body it references).
		return
	}
	if node.Body >= 0 {
		old := node.Body
		node.Body = -1
		t.pushDown(n, old, depth)
		node = &t.Nodes[n] // pushDown may grow t.Nodes
	}
	t.pushDown(n, body, depth)
}

func (t *BHTree) hasChildren(n int32) bool {
	for _, c := range t.Nodes[n].Children {
		if c >= 0 {
			return true
		}
	}
	return false
}

func (t *BHTree) pushDown(n, body int32, depth int) {
	node := t.Nodes[n]
	b := t.Bodies[body]
	oct := 0
	cx, cy, cz := node.CX, node.CY, node.CZ
	h := node.Half / 2
	if b.X >= node.CX {
		oct |= 1
		cx += h
	} else {
		cx -= h
	}
	if b.Y >= node.CY {
		oct |= 2
		cy += h
	} else {
		cy -= h
	}
	if b.Z >= node.CZ {
		oct |= 4
		cz += h
	} else {
		cz -= h
	}
	child := t.Nodes[n].Children[oct]
	if child < 0 {
		child = t.newNode(cx, cy, cz, h)
		t.Nodes[n].Children[oct] = child
	}
	t.insert(child, body, depth+1)
}

func (t *BHTree) computeMass(n int32) (m, mx, my, mz float64) {
	node := &t.Nodes[n]
	if node.Body >= 0 {
		b := t.Bodies[node.Body]
		node.Mass = b.Mass
		node.CX, node.CY, node.CZ = b.X, b.Y, b.Z
		return b.Mass, b.X * b.Mass, b.Y * b.Mass, b.Z * b.Mass
	}
	var tm, tx, ty, tz float64
	for _, c := range node.Children {
		if c < 0 {
			continue
		}
		cm, cx, cy, cz := t.computeMass(c)
		tm += cm
		tx += cx
		ty += cy
		tz += cz
	}
	node.Mass = tm
	if tm > 0 {
		node.CX, node.CY, node.CZ = tx/tm, ty/tm, tz/tm
	}
	return tm, tx, ty, tz
}

// ForceOn computes the force on body i by traversing the tree with the
// opening criterion theta and returns the number of nodes visited (the
// benchmark's annotation weight).
func (t *BHTree) ForceOn(i int) (fx, fy, fz float64, visited int) {
	if len(t.Nodes) == 0 {
		return 0, 0, 0, 0
	}
	b := t.Bodies[i]
	var rec func(n int32)
	rec = func(n int32) {
		node := &t.Nodes[n]
		visited++
		if node.Mass == 0 {
			return
		}
		dx := node.CX - b.X
		dy := node.CY - b.Y
		dz := node.CZ - b.Z
		d2 := dx*dx + dy*dy + dz*dz
		if node.Body == int32(i) {
			return
		}
		d := math.Sqrt(d2) + 1e-9
		if node.Body >= 0 || (2*node.Half)/d < t.Theta {
			f := b.Mass * node.Mass / (d2 + 1e-9)
			fx += f * dx / d
			fy += f * dy / d
			fz += f * dz / d
			return
		}
		for _, c := range node.Children {
			if c >= 0 {
				rec(c)
			}
		}
	}
	rec(0)
	return fx, fy, fz, visited
}

// ForcesSeq computes forces on all bodies natively (reference output) and
// returns them with the total visited-node count.
func (t *BHTree) ForcesSeq() ([]Body, int64) {
	out := make([]Body, len(t.Bodies))
	copy(out, t.Bodies)
	var total int64
	for i := range out {
		fx, fy, fz, v := t.ForceOn(i)
		out[i].FX, out[i].FY, out[i].FZ = fx, fy, fz
		total += int64(v)
	}
	return out, total
}
