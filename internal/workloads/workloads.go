// Package workloads generates the seeded synthetic inputs for the dwarf
// benchmarks of §V: random arrays and lists (Quicksort), random graphs
// (Connected Components, Dijkstra), body sets and their Barnes-Hut
// partition trees, sparse matrices in a row-oriented Harwell-Boeing-like
// format (SpMxV), and random octrees (the tree-update scenario).
//
// Every generator is deterministic for a given seed; the paper's exact
// dataset sizes (e.g. 50 arrays of 100,000 elements) are reproduced by the
// experiment harness's scale flags.
package workloads

import (
	"math/rand"
	"sort"
)

// RandomArray returns n pseudo-random 64-bit values.
func RandomArray(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(1 << 40)
	}
	return a
}

// Graph is an undirected multigraph in adjacency-list form, with optional
// positive edge weights (parallel arrays with Adj).
type Graph struct {
	N       int
	Adj     [][]int32
	Weights [][]int32 // nil for unweighted graphs
}

// NumEdges returns the number of (undirected) edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// RandomGraph builds an undirected graph with n nodes and m random edges
// (self-loops excluded, parallel edges possible, as typical for random
// benchmark graphs).
func RandomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for e := 0; e < m; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		g.Adj[u] = append(g.Adj[u], int32(v))
		g.Adj[v] = append(g.Adj[v], int32(u))
	}
	return g
}

// RandomWeightedGraph builds an undirected weighted graph for the shortest
// paths benchmark: n nodes, about m edges, weights in [1, maxW].
func RandomWeightedGraph(seed int64, n, m, maxW int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Adj: make([][]int32, n), Weights: make([][]int32, n)}
	addEdge := func(u, v, w int) {
		g.Adj[u] = append(g.Adj[u], int32(v))
		g.Weights[u] = append(g.Weights[u], int32(w))
		g.Adj[v] = append(g.Adj[v], int32(u))
		g.Weights[v] = append(g.Weights[v], int32(w))
	}
	// Spanning chain keeps the source's component large enough to be
	// interesting.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i-1], perm[i], 1+rng.Intn(maxW))
	}
	for e := n - 1; e < m; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		addEdge(u, v, 1+rng.Intn(maxW))
	}
	return g
}

// ConnectedComponentsSeq computes component labels natively with union-find
// (the reference output for the CC benchmark): every node's label is the
// smallest node index in its component.
func ConnectedComponentsSeq(g *Graph) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj[u] {
			union(int32(u), v)
		}
	}
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = find(int32(i))
	}
	return labels
}

// DijkstraSeq computes shortest distances from src natively (reference
// output). Unreachable nodes get -1.
func DijkstraSeq(g *Graph, src int) []int64 {
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	type item struct {
		d int64
		u int32
	}
	// Simple binary heap.
	h := []item{{0, int32(src)}}
	push := func(it item) {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].d <= h[i].d {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() item {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && h[l].d < h[small].d {
				small = l
			}
			if r < len(h) && h[r].d < h[small].d {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
		return top
	}
	for len(h) > 0 {
		it := pop()
		if it.d > dist[it.u] {
			continue
		}
		for j, v := range g.Adj[it.u] {
			nd := it.d + int64(g.Weights[it.u][j])
			if nd < dist[v] {
				dist[v] = nd
				push(item{nd, v})
			}
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist
}

// SortedCopy returns a sorted copy of a (reference output for Quicksort).
func SortedCopy(a []int64) []int64 {
	out := make([]int64, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
