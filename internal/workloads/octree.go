package workloads

import "math/rand"

// OctreeNode is one node of the object octree used by the tree-update
// benchmark ("updates all objects within an Octree structure", §V — the
// gaming/graphics scenario).
type OctreeNode struct {
	Children [8]int32 // -1 = absent
	Objects  []int64  // object payloads stored at this node
}

// Octree is a randomly-shaped octree of bounded depth.
type Octree struct {
	Nodes []OctreeNode
	Depth int
}

// RandomOctree builds an octree of the given depth. Each child of an
// internal node exists with probability fill, and every node stores between
// 1 and maxObjs objects. The paper uses 50 random octrees of depth 6.
func RandomOctree(seed int64, depth int, fill float64, maxObjs int) *Octree {
	rng := rand.New(rand.NewSource(seed))
	t := &Octree{Depth: depth}
	var build func(level int) int32
	build = func(level int) int32 {
		idx := int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, OctreeNode{Children: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}})
		nObjs := 1 + rng.Intn(maxObjs)
		objs := make([]int64, nObjs)
		for i := range objs {
			objs[i] = rng.Int63n(1 << 30)
		}
		t.Nodes[idx].Objects = objs
		if level < depth {
			for c := 0; c < 8; c++ {
				if rng.Float64() < fill {
					child := build(level + 1)
					t.Nodes[idx].Children[c] = child
				}
			}
		}
		return idx
	}
	build(0)
	return t
}

// NumObjects counts all stored objects.
func (t *Octree) NumObjects() int64 {
	var n int64
	for i := range t.Nodes {
		n += int64(len(t.Nodes[i].Objects))
	}
	return n
}

// UpdateObject is the per-object update applied by the benchmark (a cheap
// deterministic mixing function standing in for a game-world tick).
func UpdateObject(v int64) int64 {
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	return v
}

// UpdateSeq applies UpdateObject to every object natively and returns a
// checksum (reference output).
func (t *Octree) UpdateSeq() int64 {
	var sum int64
	for i := range t.Nodes {
		for j, v := range t.Nodes[i].Objects {
			nv := UpdateObject(v)
			t.Nodes[i].Objects[j] = nv
			sum += nv
		}
	}
	return sum
}

// Checksum sums all objects without updating.
func (t *Octree) Checksum() int64 {
	var sum int64
	for i := range t.Nodes {
		for _, v := range t.Nodes[i].Objects {
			sum += v
		}
	}
	return sum
}
