package workloads

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRandomArrayDeterministic(t *testing.T) {
	a := RandomArray(5, 100)
	b := RandomArray(5, 100)
	c := RandomArray(6, 100)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different arrays")
	}
	if !diff {
		t.Error("different seeds produced identical arrays")
	}
}

func TestSortedCopy(t *testing.T) {
	a := RandomArray(1, 500)
	s := SortedCopy(a)
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Error("not sorted")
	}
	// Same multiset.
	var sumA, sumS int64
	for i := range a {
		sumA += a[i]
		sumS += s[i]
	}
	if sumA != sumS {
		t.Error("elements changed")
	}
}

func TestRandomGraphShape(t *testing.T) {
	g := RandomGraph(3, 100, 200)
	if g.N != 100 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 200 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	for u := range g.Adj {
		for _, v := range g.Adj[u] {
			if v == int32(u) {
				t.Fatal("self loop")
			}
			if v < 0 || int(v) >= g.N {
				t.Fatal("edge out of range")
			}
		}
	}
}

func TestConnectedComponentsSeq(t *testing.T) {
	// Two triangles + isolated vertex.
	g := &Graph{N: 7, Adj: make([][]int32, 7)}
	add := func(u, v int32) {
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
	}
	add(0, 1)
	add(1, 2)
	add(2, 0)
	add(3, 4)
	add(4, 5)
	add(5, 3)
	labels := ConnectedComponentsSeq(g)
	want := []int32{0, 0, 0, 3, 3, 3, 6}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestCCLabelsAreMinOfComponent(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGraph(seed, 40, 50)
		labels := ConnectedComponentsSeq(g)
		for u := 0; u < g.N; u++ {
			if labels[u] > int32(u) {
				return false // label must be ≤ any member index
			}
			if labels[labels[u]] != labels[u] {
				return false // representative labels itself
			}
			for _, v := range g.Adj[u] {
				if labels[u] != labels[v] {
					return false // neighbors share a component
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDijkstraSeq(t *testing.T) {
	g := &Graph{N: 4, Adj: make([][]int32, 4), Weights: make([][]int32, 4)}
	add := func(u, v int32, w int32) {
		g.Adj[u] = append(g.Adj[u], v)
		g.Weights[u] = append(g.Weights[u], w)
		g.Adj[v] = append(g.Adj[v], u)
		g.Weights[v] = append(g.Weights[v], w)
	}
	add(0, 1, 5)
	add(1, 2, 2)
	add(0, 2, 10)
	dist := DijkstraSeq(g, 0)
	want := []int64{0, 5, 7, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestDijkstraTriangleInequality(t *testing.T) {
	g := RandomWeightedGraph(9, 50, 120, 10)
	dist := DijkstraSeq(g, 0)
	for u := 0; u < g.N; u++ {
		if dist[u] < 0 {
			continue
		}
		for j, v := range g.Adj[u] {
			w := int64(g.Weights[u][j])
			if dist[v] >= 0 && dist[v] > dist[u]+w {
				t.Fatalf("relaxable edge %d->%d: %d > %d+%d", u, v, dist[v], dist[u], w)
			}
		}
	}
	// The spanning chain makes everything reachable.
	for u, d := range dist {
		if d < 0 {
			t.Fatalf("node %d unreachable despite spanning chain", u)
		}
	}
}

func TestRandomSparseShape(t *testing.T) {
	m := RandomSparse(4, 100, 100, 10)
	if m.Rows != 100 || m.Cols != 100 {
		t.Fatal("wrong dims")
	}
	if m.RowPtr[0] != 0 || m.RowPtr[100] != m.NNZ() {
		t.Error("row pointers inconsistent")
	}
	avg := float64(m.NNZ()) / 100
	if avg < 5 || avg > 16 {
		t.Errorf("avg nnz/row = %.1f, want ≈10", avg)
	}
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r] + 1; i < m.RowPtr[r+1]; i++ {
			if m.ColIdx[i] <= m.ColIdx[i-1] {
				t.Fatal("columns not strictly sorted within row")
			}
		}
	}
}

func TestMultiplySeqIdentityLike(t *testing.T) {
	// Diagonal matrix times x = elementwise product.
	m := &SparseMatrix{Rows: 3, Cols: 3, RowPtr: []int64{0, 1, 2, 3},
		ColIdx: []int32{0, 1, 2}, Vals: []float64{2, 3, 4}}
	y := m.MultiplySeq([]float64{1, 1, 1})
	if y[0] != 2 || y[1] != 3 || y[2] != 4 {
		t.Errorf("y = %v", y)
	}
}

func TestSparseRoundTrip(t *testing.T) {
	m := RandomSparse(8, 50, 60, 7)
	var buf bytes.Buffer
	if err := m.WriteRowFormat(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRowFormat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatal("shape changed")
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%13) * 0.25
	}
	y1 := m.MultiplySeq(x)
	y2 := back.MultiplySeq(x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("row %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestReadRowFormatErrors(t *testing.T) {
	bad := []string{
		"",
		"nope\n",
		"spmxv 0 3 0\n\n",
		"spmxv 2 2 1\n0 1\n0 1.0\n",   // rowptr count wrong
		"spmxv 2 2 1\n0 0 2\n0 1.0\n", // last ptr != nnz
		"spmxv 1 1 1\n0 1\nbroken\n",  // bad coefficient
		"spmxv 1 1 1\n0 1\n5 1.0\n",   // column out of range
		"spmxv 1 1 2\n0 2\n0 1.0\n",   // truncated
	}
	for _, s := range bad {
		if _, err := ReadRowFormat(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestBHTreeMassConservation(t *testing.T) {
	bodies := RandomBodies(2, 200)
	tree := BuildBHTree(bodies, 0.5)
	var total float64
	for _, b := range bodies {
		total += b.Mass
	}
	if math.Abs(tree.Nodes[0].Mass-total) > 1e-9 {
		t.Errorf("root mass %v != total %v", tree.Nodes[0].Mass, total)
	}
}

func TestBHForcesMatchDirectSummation(t *testing.T) {
	bodies := RandomBodies(3, 60)
	// theta=0 forces full traversal to the leaves: equals direct O(n²).
	tree := BuildBHTree(bodies, 1e-9)
	got, _ := tree.ForcesSeq()
	for i := range bodies {
		var fx, fy, fz float64
		for j := range bodies {
			if i == j {
				continue
			}
			dx := bodies[j].X - bodies[i].X
			dy := bodies[j].Y - bodies[i].Y
			dz := bodies[j].Z - bodies[i].Z
			d2 := dx*dx + dy*dy + dz*dz
			d := math.Sqrt(d2) + 1e-9
			f := bodies[i].Mass * bodies[j].Mass / (d2 + 1e-9)
			fx += f * dx / d
			fy += f * dy / d
			fz += f * dz / d
		}
		if math.Abs(got[i].FX-fx) > 1e-6 || math.Abs(got[i].FY-fy) > 1e-6 || math.Abs(got[i].FZ-fz) > 1e-6 {
			t.Fatalf("body %d force (%g,%g,%g) != direct (%g,%g,%g)",
				i, got[i].FX, got[i].FY, got[i].FZ, fx, fy, fz)
		}
	}
}

func TestBHThetaReducesWork(t *testing.T) {
	bodies := RandomBodies(4, 300)
	exact := BuildBHTree(bodies, 1e-9)
	approx := BuildBHTree(bodies, 0.8)
	_, vExact := exact.ForcesSeq()
	_, vApprox := approx.ForcesSeq()
	if vApprox >= vExact {
		t.Errorf("theta=0.8 visited %d nodes, exact visited %d", vApprox, vExact)
	}
}

func TestRandomOctree(t *testing.T) {
	tr := RandomOctree(7, 4, 0.5, 6)
	if len(tr.Nodes) == 0 {
		t.Fatal("empty octree")
	}
	if tr.NumObjects() < int64(len(tr.Nodes)) {
		t.Error("every node must hold at least one object")
	}
	// Children indices valid and acyclic by construction (indices grow).
	for i, n := range tr.Nodes {
		for _, c := range n.Children {
			if c == -1 {
				continue
			}
			if c <= int32(i) || int(c) >= len(tr.Nodes) {
				t.Fatal("bad child index")
			}
		}
	}
}

func TestOctreeUpdateSeq(t *testing.T) {
	a := RandomOctree(9, 3, 0.6, 4)
	b := RandomOctree(9, 3, 0.6, 4)
	pre := a.Checksum()
	sumA := a.UpdateSeq()
	sumB := b.UpdateSeq()
	if sumA != sumB {
		t.Error("update not deterministic")
	}
	if sumA == pre {
		t.Error("update changed nothing")
	}
	if a.Checksum() != sumA {
		t.Error("checksum inconsistent with update result")
	}
}

func TestUpdateObjectBijectiveish(t *testing.T) {
	f := func(v int64) bool {
		return UpdateObject(v) == UpdateObject(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if UpdateObject(1) == UpdateObject(2) {
		t.Error("suspicious collision")
	}
}
