package harness

import (
	"fmt"
	"io"

	"simany/internal/config"
	"simany/internal/core"
	"simany/internal/stats"
	"simany/internal/vtime"
)

// Figure identifiers accepted by Figure().
const (
	Fig5        = "5"
	Fig6        = "6"
	Fig7        = "7"
	Fig8        = "8"
	Fig9        = "9"
	Fig10       = "10"
	Fig11       = "11"
	Fig12       = "12"
	Fig13       = "13"
	FigErrors   = "errors"
	FigAblation = "ablation"
	// FigParallel reproduces the §VIII "preliminary study": how many cores
	// are independently simulatable at once under spatial synchronization.
	FigParallel = "parallel"
	// FigHetero evaluates the §VIII future-work extension: a
	// heterogeneity-aware dispatch policy on polymorphic machines.
	FigHetero = "hetero"
)

// AllFigures lists every regenerable experiment in paper order.
func AllFigures() []string {
	return []string{Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13,
		FigErrors, FigAblation, FigParallel, FigHetero}
}

// Figure regenerates one figure/table by id.
func (h *Harness) Figure(id string) ([]*stats.Table, error) {
	switch id {
	case Fig5:
		return h.validation(config.Uniform, "Fig. 5: Regular 2D Mesh Speedups Cycle-Level Comparison")
	case Fig6:
		return h.validation(config.Polymorphic, "Fig. 6: Polymorphic 2D Mesh Speedups Cycle-Level Comparison")
	case Fig7:
		return h.simulationTime()
	case Fig8:
		return h.speedups(config.Machine{Mem: config.SharedMem},
			"Fig. 8: Regular 2D Mesh Speedups (Shared-Memory)")
	case Fig9:
		return h.speedups(config.Machine{Mem: config.DistributedMem},
			"Fig. 9: Regular 2D Mesh Speedups (Distributed-Memory)")
	case Fig10, Fig11:
		return h.driftStudy()
	case Fig12:
		m := config.Machine{Mem: config.DistributedMem, Style: config.Clustered4}
		return h.speedups(m, "Fig. 12: Clustered 2D Mesh Speedups with 4 Clusters (Distributed-Memory)")
	case Fig13:
		m := config.Machine{Mem: config.DistributedMem, Style: config.Polymorphic}
		return h.speedups(m, "Fig. 13: Polymorphic 2D Mesh Speedups (Distributed-Memory)")
	case FigErrors:
		return h.errors()
	case FigAblation:
		return h.ablation()
	case FigParallel:
		return h.hostParallelism()
	case FigHetero:
		return h.heteroScheduling()
	default:
		return nil, fmt.Errorf("harness: unknown figure %q", id)
	}
}

// WriteAll regenerates every figure into w.
func (h *Harness) WriteAll(w io.Writer) error {
	for _, id := range AllFigures() {
		if id == Fig11 {
			continue // emitted together with Fig10
		}
		tables, err := h.Figure(id)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// speedupSeries runs one benchmark over the core grid on variants of the
// base machine and returns speedups relative to the single-core run.
func (h *Harness) speedupSeries(name string, base config.Machine, cores []int) (map[int]Outcome, error) {
	outs := make(map[int]Outcome, len(cores))
	for _, n := range cores {
		m := base
		m.Cores = n
		if n == 1 {
			// Single-core machines have no clusters or speed mix.
			m.Style = config.Uniform
		}
		o, err := h.Run(name, m)
		if err != nil {
			return nil, err
		}
		outs[n] = o
	}
	return outs, nil
}

// speedups builds a speedup table over the exploration core grid for all
// benchmarks (Figs. 8, 9, 12, 13) and records the corresponding log-log
// plot (retrievable through LastPlots, as in the paper's figures).
func (h *Harness) speedups(base config.Machine, title string) ([]*stats.Table, error) {
	cores := h.ExplorationCores()
	t := &stats.Table{Title: title, Headers: []string{"benchmark"}}
	for _, n := range cores {
		t.Headers = append(t.Headers, fmt.Sprintf("%d", n))
	}
	plot := &stats.Plot{Title: title, XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true}
	for _, name := range h.benchNames() {
		h.logf("%s: %s", title, name)
		outs, err := h.speedupSeries(name, base, cores)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		ser := stats.Series{Name: name}
		base1 := outs[cores[0]].VT
		for _, n := range cores {
			sp := stats.Speedup(base1, outs[n].VT)
			row = append(row, stats.FmtRatio(sp))
			ser.Add(float64(n), sp)
		}
		t.AddRow(row...)
		plot.Series = append(plot.Series, ser)
	}
	h.lastPlots = []*stats.Plot{plot}
	return []*stats.Table{t}, nil
}

// LastPlots returns the ASCII plots produced by the most recent Figure
// call (empty for table-only experiments).
func (h *Harness) LastPlots() []*stats.Plot { return h.lastPlots }

// validation compares SiMany (VT) against the cycle-level reference (CL)
// on shared-memory machines with coherence timing (Figs. 5 and 6).
func (h *Harness) validation(style config.Style, title string) ([]*stats.Table, error) {
	cores := h.ValidationCores()
	t := &stats.Table{Title: title, Headers: []string{"benchmark", "sim"}}
	for _, n := range cores {
		t.Headers = append(t.Headers, fmt.Sprintf("%d", n))
	}
	errT := &stats.Table{
		Title:   title + " — per-point relative error",
		Headers: append([]string{"benchmark"}, t.Headers[2:]...),
	}
	for _, name := range h.validationBenchNames() {
		h.logf("%s: %s", title, name)
		vtBase := config.Machine{Mem: config.SharedMemCoherent, Style: style}
		clBase := config.Machine{Mem: config.SharedMemCoherent, Style: style, Policy: "cyclelevel"}
		vtOuts, err := h.speedupSeries(name, vtBase, cores)
		if err != nil {
			return nil, err
		}
		clOuts, err := h.speedupSeries(name, clBase, cores)
		if err != nil {
			return nil, err
		}
		clRow := []string{name, "CL"}
		vtRow := []string{name, "VT"}
		errRow := []string{name}
		for _, n := range cores {
			cl := stats.Speedup(clOuts[cores[0]].VT, clOuts[n].VT)
			vt := stats.Speedup(vtOuts[cores[0]].VT, vtOuts[n].VT)
			clRow = append(clRow, stats.FmtRatio(cl))
			vtRow = append(vtRow, stats.FmtRatio(vt))
			if n > 1 {
				errRow = append(errRow, stats.FmtPct(stats.RelErr(vt, cl)))
			}
		}
		t.AddRow(clRow...)
		t.AddRow(vtRow...)
		errT.AddRow(errRow...)
	}
	return []*stats.Table{t, errT}, nil
}

// errors reproduces the §VI error aggregates: geometric-mean relative
// error of SiMany speedups vs the cycle-level reference per core count,
// for uniform and polymorphic meshes.
func (h *Harness) errors() ([]*stats.Table, error) {
	cores := h.ValidationCores()
	t := &stats.Table{Title: "§VI: Geometric-mean speedup error vs cycle-level reference",
		Headers: []string{"mesh"}}
	for _, n := range cores[1:] {
		t.Headers = append(t.Headers, fmt.Sprintf("%d", n))
	}
	for _, style := range []config.Style{config.Uniform, config.Polymorphic} {
		errs := make(map[int][]float64)
		for _, name := range h.validationBenchNames() {
			h.logf("errors(%s): %s", style, name)
			vtOuts, err := h.speedupSeries(name, config.Machine{Mem: config.SharedMemCoherent, Style: style}, cores)
			if err != nil {
				return nil, err
			}
			clOuts, err := h.speedupSeries(name, config.Machine{Mem: config.SharedMemCoherent, Style: style, Policy: "cyclelevel"}, cores)
			if err != nil {
				return nil, err
			}
			for _, n := range cores[1:] {
				cl := stats.Speedup(clOuts[cores[0]].VT, clOuts[n].VT)
				vt := stats.Speedup(vtOuts[cores[0]].VT, vtOuts[n].VT)
				// Geometric means need strictly positive values; floor the
				// per-point error at 0.1% as the paper reports percents.
				e := stats.RelErr(vt, cl)
				if e < 0.001 {
					e = 0.001
				}
				errs[n] = append(errs[n], e)
			}
		}
		row := []string{style.String()}
		for _, n := range cores[1:] {
			row = append(row, stats.FmtPct(stats.GeoMean(errs[n])))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

// simulationTime reproduces Fig. 7: wall-clock simulation time normalized
// to the native sequential execution, averaged over the shared- and
// distributed-memory configurations, with the power-law fit the paper
// mentions ("increases as a square law with a small coefficient").
func (h *Harness) simulationTime() ([]*stats.Table, error) {
	cores := h.ExplorationCores()
	t := &stats.Table{Title: "Fig. 7: Average Normalized Simulation Time (sim wall / native wall)",
		Headers: []string{"benchmark"}}
	for _, n := range cores {
		t.Headers = append(t.Headers, fmt.Sprintf("%d", n))
	}
	t.Headers = append(t.Headers, "power-law k")
	for _, name := range h.benchNames() {
		h.logf("Fig. 7: %s", name)
		native, err := h.NativeWall(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		var xs, ys []float64
		for _, n := range cores {
			var total float64
			var cnt int
			for _, mem := range []config.MemKind{config.SharedMem, config.DistributedMem} {
				o, err := h.Run(name, config.Machine{Cores: n, Mem: mem})
				if err != nil {
					return nil, err
				}
				total += float64(o.Wall) / float64(native)
				cnt++
			}
			norm := total / float64(cnt)
			row = append(row, stats.FmtRatio(norm))
			xs = append(xs, float64(n))
			ys = append(ys, norm)
		}
		_, k := stats.FitPowerLaw(xs, ys)
		row = append(row, fmt.Sprintf("%.2f", k))
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

// driftStudy reproduces the T accuracy/speed trade-off tables (Figs. 10
// and 11): virtual-time speedup variation and wall-clock simulation-time
// variation for T ∈ {50, 500, 1000} against the T=100 baseline, averaged
// over the high-core-count machines.
func (h *Harness) driftStudy() ([]*stats.Table, error) {
	cores := h.HighCores()
	ts := []vtime.Time{
		vtime.CyclesInt(50),
		vtime.CyclesInt(500),
		vtime.CyclesInt(1000),
	}
	speedT := &stats.Table{
		Title:   "Fig. 10: Average Virtual Time Speedup Variations with T (baseline T=100)",
		Headers: []string{"T", "benchmark", "variation"},
	}
	wallT := &stats.Table{
		Title:   "Fig. 11: Average Simulation Time Variations with T (baseline T=100)",
		Headers: []string{"T", "benchmark", "variation"},
	}
	for _, name := range h.benchNames() {
		h.logf("Figs. 10-11: %s", name)
		base := make(map[int]Outcome)
		for _, n := range cores {
			o, err := h.Run(name, config.Machine{Cores: n, Mem: config.SharedMem, T: core.DefaultT})
			if err != nil {
				return nil, err
			}
			base[n] = o
		}
		for _, T := range ts {
			var dSpeed, dWall []float64
			for _, n := range cores {
				o, err := h.Run(name, config.Machine{Cores: n, Mem: config.SharedMem, T: T})
				if err != nil {
					return nil, err
				}
				// Speedup variation == inverse virtual-time variation.
				dSpeed = append(dSpeed, vtime.Ratio(base[n].VT, o.VT)-1)
				dWall = append(dWall, float64(o.Wall)/float64(base[n].Wall)-1)
			}
			label := fmt.Sprintf("%d", T.WholeCycles())
			speedT.AddRow(label, name, stats.FmtPct(stats.Mean(dSpeed)))
			wallT.AddRow(label, name, stats.FmtPct(stats.Mean(dWall)))
		}
	}
	return []*stats.Table{speedT, wallT}, nil
}

// ablation compares the synchronization schemes of §VII on the same
// workloads: virtual-time deviation from the strictly-ordered reference
// (accuracy) and kernel scheduling steps (synchronization cost).
func (h *Harness) ablation() ([]*stats.Table, error) {
	n := 64
	if h.opt.Quick {
		n = 16
	}
	// The reference is a near-zero bounded slack, which orders events
	// strictly while keeping the machine model identical across rows (the
	// cycle-level preset would also change the memory system).
	policies := []struct{ label, policy string }{
		{"strict-order", "slack:0.001"},
		{"spatial T=100", "spatial"},
		{"quantum Q=100", "quantum:100"},
		{"slack W=100", "slack:100"},
		{"laxp2p S=100", "laxp2p:100"},
		{"unbounded", "unbounded"},
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("§VII ablation: synchronization schemes on %d cores (shared memory)", n),
		Headers: []string{"benchmark", "policy", "vt-vs-strict", "steps", "stalls", "out-of-order"},
	}
	for _, name := range []string{"quicksort", "dijkstra"} {
		var ref Outcome
		for i, pol := range policies {
			h.logf("ablation: %s under %s", name, pol.label)
			m := config.Machine{Cores: n, Mem: config.SharedMem, Policy: pol.policy}
			o, err := h.Run(name, m)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				ref = o
			}
			dev := stats.RelErr(o.VT.InCycles(), ref.VT.InCycles())
			t.AddRow(name, pol.label, stats.FmtPct(dev),
				fmt.Sprintf("%d", o.Result.Steps),
				fmt.Sprintf("%d", o.Result.Stalls),
				fmt.Sprintf("%d", o.Result.OutOfOrder))
		}
	}
	return []*stats.Table{t}, nil
}

// hostParallelism reproduces the paper's §VIII preliminary study: under
// spatial synchronization, how many cores are runnable — independently
// simulatable within their local time windows — at each scheduling
// decision. The paper concludes that from 64-core networks on there are
// enough to keep the cores of a multi-core host machine busy.
func (h *Harness) hostParallelism() ([]*stats.Table, error) {
	cores := h.HighCores()
	t := &stats.Table{
		Title:   "§VIII study: concurrently simulatable cores under spatial synchronization",
		Headers: []string{"benchmark", "cores", "avg runnable", "max runnable", "avg fraction"},
	}
	for _, name := range h.benchNames() {
		for _, n := range cores {
			h.logf("parallel: %s on %d cores", name, n)
			o, err := h.Run(name, config.Machine{Cores: n, Mem: config.SharedMem})
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", o.Result.AvgRunnable),
				fmt.Sprintf("%d", o.Result.MaxRunnable),
				fmt.Sprintf("%.1f%%", 100*o.Result.AvgRunnable/float64(n)))
		}
	}
	return []*stats.Table{t}, nil
}

// heteroScheduling evaluates the §VIII future-work extension on the
// paper's own problem case (Fig. 13: polymorphic machines lose ~19% on
// distributed memory because slow cores spawn tasks at a lower rate):
// speed-aware dispatch ranks neighbors by expected queue drain time.
func (h *Harness) heteroScheduling() ([]*stats.Table, error) {
	cores := h.HighCores()
	t := &stats.Table{
		Title:   "§VIII extension: heterogeneity-aware dispatch on polymorphic meshes (distributed memory)",
		Headers: []string{"benchmark", "cores", "default vt", "speed-aware vt", "improvement"},
	}
	for _, name := range h.benchNames() {
		for _, n := range cores {
			h.logf("hetero: %s on %d cores", name, n)
			base := config.Machine{Cores: n, Mem: config.DistributedMem, Style: config.Polymorphic}
			def, err := h.Run(name, base)
			if err != nil {
				return nil, err
			}
			base.SpeedAwareRT = true
			aware, err := h.Run(name, base)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", def.VT.InCycles()),
				fmt.Sprintf("%.0f", aware.VT.InCycles()),
				stats.FmtPct(vtime.Ratio(def.VT, aware.VT)-1))
		}
	}
	return []*stats.Table{t}, nil
}
