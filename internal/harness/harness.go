// Package harness drives the evaluation of §VI: it runs the dwarf
// benchmarks over the paper's architecture grid and regenerates every
// figure and table as plain-text series (who wins, by what factor, where
// the crossovers fall).
package harness

import (
	"fmt"
	"io"
	"time"

	"simany/internal/bench"
	"simany/internal/config"
	"simany/internal/core"
	"simany/internal/rt"
	"simany/internal/stats"
	"simany/internal/vtime"
)

// Options configures a harness run.
type Options struct {
	// Seed drives workload generation and simulator decisions.
	Seed int64
	// Scale multiplies dataset sizes (1 = laptop defaults; larger
	// approaches the paper's full sizes).
	Scale float64
	// Quick restricts the core grid for fast regression runs
	// (max 64 cores for exploration figures, 16 for validation).
	Quick bool
	// Benchmarks filters by name (nil = all six).
	Benchmarks []string
	// Shards, when > 1, runs every machine on the sharded parallel engine
	// with that many topology partitions (see core.Config.Shards).
	Shards int
	// Workers bounds the host threads driving the shards (0 = GOMAXPROCS).
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Harness executes experiment plans.
type Harness struct {
	opt       Options
	lastPlots []*stats.Plot
}

// New creates a harness with defaults filled in.
func New(opt Options) *Harness {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	return &Harness{opt: opt}
}

// ExplorationCores returns the paper's core grid for Figs. 7-13
// (1, 8, 64, 256, 1024), truncated in quick mode.
func (h *Harness) ExplorationCores() []int {
	if h.opt.Quick {
		return []int{1, 8, 64}
	}
	return []int{1, 8, 64, 256, 1024}
}

// ValidationCores returns the grid of Figs. 5-6 (1..64), truncated in
// quick mode.
func (h *Harness) ValidationCores() []int {
	if h.opt.Quick {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// HighCores returns the "part of interest" grid of the T study (Figs.
// 10-11: 64 to 1024 cores).
func (h *Harness) HighCores() []int {
	if h.opt.Quick {
		return []int{16, 64}
	}
	return []int{64, 256, 1024}
}

// benchNames returns the selected benchmark names.
func (h *Harness) benchNames() []string {
	if len(h.opt.Benchmarks) > 0 {
		return h.opt.Benchmarks
	}
	return bench.Names()
}

// validationBenchNames returns the four benchmarks of Figs. 5-6.
func (h *Harness) validationBenchNames() []string {
	all := []string{"barnes-hut", "conncomp", "quicksort", "spmxv"}
	if len(h.opt.Benchmarks) == 0 {
		return all
	}
	var out []string
	for _, n := range all {
		for _, f := range h.opt.Benchmarks {
			if n == f {
				out = append(out, n)
			}
		}
	}
	return out
}

func (h *Harness) logf(format string, args ...any) {
	if h.opt.Log != nil {
		fmt.Fprintf(h.opt.Log, format+"\n", args...)
	}
}

// Outcome is the result of one simulated benchmark run.
type Outcome struct {
	Bench   string
	Machine config.Machine
	VT      vtime.Time
	Wall    time.Duration
	Result  core.Result
	RTStats rt.Stats
	// OK reports that the simulated output matched the native run.
	OK bool
}

// mode maps the machine's memory kind to the benchmark program mode.
func mode(m config.Machine) bench.Mode {
	if m.Mem == config.DistributedMem {
		return bench.Distributed
	}
	return bench.Shared
}

// Run executes one benchmark on one machine and verifies its output
// against the native reference.
func (h *Harness) Run(name string, m config.Machine) (Outcome, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return Outcome{}, err
	}
	b.Generate(h.opt.Seed, h.opt.Scale)
	want := b.RunNative()
	if m.Seed == 0 {
		m.Seed = h.opt.Seed
	}
	if m.Shards == 0 {
		m.Shards = h.opt.Shards
		m.Workers = h.opt.Workers
	}
	k, r, err := m.Build()
	if err != nil {
		return Outcome{}, err
	}
	_ = k
	root, finish := b.Program(r, mode(m))
	start := time.Now()
	res, err := r.Run(name, root)
	if err != nil {
		return Outcome{}, fmt.Errorf("harness: %s on %d cores (%s/%s): %w",
			name, m.Cores, m.Style, m.Mem, err)
	}
	out := Outcome{
		Bench:   name,
		Machine: m,
		VT:      res.FinalVT,
		Wall:    time.Since(start),
		Result:  res,
		RTStats: r.Stats(),
		OK:      finish() == want,
	}
	if !out.OK {
		return out, fmt.Errorf("harness: %s on %d cores (%s/%s): simulated output diverged from native run",
			name, m.Cores, m.Style, m.Mem)
	}
	h.logf("  %-11s %5d cores %-12s %-17s vt=%-12v wall=%v",
		name, m.Cores, m.Style, m.Mem, out.VT, out.Wall.Round(time.Millisecond))
	return out, nil
}

// NativeWall measures the wall-clock duration of the native sequential run
// (the Fig. 7 normalization base), taking the best of three.
func (h *Harness) NativeWall(name string) (time.Duration, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return 0, err
	}
	b.Generate(h.opt.Seed, h.opt.Scale)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		b.RunNative()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	return best, nil
}
