package harness

import (
	"bytes"
	"strings"
	"testing"

	"simany/internal/config"
)

func quickHarness(benchmarks ...string) *Harness {
	return New(Options{Seed: 42, Scale: 0.1, Quick: true, Benchmarks: benchmarks})
}

func TestRunVerifiesChecksum(t *testing.T) {
	h := quickHarness()
	o, err := h.Run("quicksort", config.Default(8))
	if err != nil {
		t.Fatal(err)
	}
	if !o.OK || o.VT <= 0 || o.Wall <= 0 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	h := quickHarness()
	if _, err := h.Run("nope", config.Default(4)); err == nil {
		t.Error("expected error")
	}
}

func TestCoreGrids(t *testing.T) {
	q := New(Options{Quick: true})
	f := New(Options{})
	if got := q.ExplorationCores(); got[len(got)-1] != 64 {
		t.Errorf("quick exploration = %v", got)
	}
	if got := f.ExplorationCores(); got[len(got)-1] != 1024 || got[0] != 1 {
		t.Errorf("full exploration = %v", got)
	}
	if got := f.ValidationCores(); got[len(got)-1] != 64 {
		t.Errorf("full validation = %v", got)
	}
	if got := f.HighCores(); len(got) != 3 || got[0] != 64 {
		t.Errorf("high cores = %v", got)
	}
}

func TestNativeWall(t *testing.T) {
	h := quickHarness()
	d, err := h.NativeWall("spmxv")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("native wall = %v", d)
	}
	if _, err := h.NativeWall("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestFigureUnknown(t *testing.T) {
	h := quickHarness()
	if _, err := h.Figure("99"); err == nil {
		t.Error("expected error")
	}
}

func TestAllFiguresListed(t *testing.T) {
	ids := AllFigures()
	if len(ids) != 13 {
		t.Errorf("figures = %v", ids)
	}
}

func TestSpeedupFigureQuick(t *testing.T) {
	h := quickHarness("spmxv")
	tables, err := h.Figure(Fig8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	var buf bytes.Buffer
	if err := tables[0].Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "spmxv") || !strings.Contains(out, "Fig. 8") {
		t.Errorf("output:\n%s", out)
	}
	if len(tables[0].Rows) != 1 {
		t.Errorf("rows = %d", len(tables[0].Rows))
	}
}

func TestDistributedFigureQuick(t *testing.T) {
	h := quickHarness("octree")
	tables, err := h.Figure(Fig9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 1 {
		t.Errorf("rows = %d", len(tables[0].Rows))
	}
}

func TestValidationFigureQuick(t *testing.T) {
	h := quickHarness("quicksort")
	tables, err := h.Figure(Fig5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	// Two rows (CL + VT) for the one benchmark.
	if len(tables[0].Rows) != 2 {
		t.Errorf("speedup rows = %d", len(tables[0].Rows))
	}
	var buf bytes.Buffer
	tables[0].Fprint(&buf)
	if !strings.Contains(buf.String(), "CL") || !strings.Contains(buf.String(), "VT") {
		t.Errorf("missing CL/VT rows:\n%s", buf.String())
	}
}

func TestClusteredAndPolymorphicFiguresQuick(t *testing.T) {
	for _, id := range []string{Fig12, Fig13} {
		h := quickHarness("spmxv")
		if _, err := h.Figure(id); err != nil {
			t.Fatalf("fig %s: %v", id, err)
		}
	}
}

func TestDriftStudyQuick(t *testing.T) {
	h := quickHarness("octree")
	tables, err := h.Figure(Fig10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d (want Fig10 + Fig11)", len(tables))
	}
	// 3 T values × 1 benchmark.
	if len(tables[0].Rows) != 3 || len(tables[1].Rows) != 3 {
		t.Errorf("rows = %d/%d", len(tables[0].Rows), len(tables[1].Rows))
	}
}

func TestSimulationTimeFigureQuick(t *testing.T) {
	h := quickHarness("conncomp")
	tables, err := h.Figure(Fig7)
	if err != nil {
		t.Fatal(err)
	}
	row := tables[0].Rows[0]
	if row[0] != "conncomp" {
		t.Errorf("row = %v", row)
	}
	// Normalized time and power-law exponent present.
	if len(row) != len(tables[0].Headers) {
		t.Errorf("row width %d != header width %d", len(row), len(tables[0].Headers))
	}
}

func TestErrorsFigureQuick(t *testing.T) {
	h := quickHarness("quicksort")
	tables, err := h.Figure(FigErrors)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Errorf("rows = %d (uniform + polymorphic)", len(tables[0].Rows))
	}
}

func TestAblationQuick(t *testing.T) {
	h := quickHarness()
	tables, err := h.Figure(FigAblation)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 12 {
		t.Errorf("rows = %d (2 benchmarks × 6 policies)", len(tables[0].Rows))
	}
	// The strict-order reference rows must report zero deviation.
	for _, row := range tables[0].Rows {
		if row[1] == "strict-order" && row[2] != "+0.0%" {
			t.Errorf("reference deviation = %s", row[2])
		}
	}
}

func TestHostParallelismQuick(t *testing.T) {
	h := quickHarness("dijkstra")
	tables, err := h.Figure(FigParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
	// Dijkstra floods the machine with tasks: a meaningful fraction of
	// cores must be simulatable concurrently (§VIII).
	for _, row := range tables[0].Rows {
		if row[2] == "0.0" {
			t.Errorf("no concurrently runnable cores: %v", row)
		}
	}
}

func TestHeteroSchedulingQuick(t *testing.T) {
	h := quickHarness("quicksort")
	tables, err := h.Figure(FigHetero)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if len(row) != 5 {
			t.Errorf("row shape: %v", row)
		}
	}
}
