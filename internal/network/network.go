// Package network models the on-chip interconnect.
//
// Messages are timed analytically at send time by walking the
// shortest-latency route: each traversed link charges its latency plus the
// serialization time of the message (size split into chunks at the link's
// bandwidth), and contention is modeled per directed link with a
// next-free-time, as the paper highlights ("we do model contention on
// individual links", §VII). Each hop additionally pays a routing penalty.
//
// The network guarantees that a core receives all messages coming from
// another given core in the order that core sent them; only messages from
// different senders may be processed out of order (§II.B).
package network

import (
	"fmt"

	"simany/internal/metrics"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// Kind distinguishes message purposes; the simulator kernel and the task
// run-time system define the concrete values they exchange.
type Kind int

// Message is one architectural message in flight.
type Message struct {
	Src, Dst int
	Kind     Kind
	Size     int // payload bytes
	Payload  any

	// Stamp is the sender's virtual time when the message was emitted.
	Stamp vtime.Time
	// Arrival is the computed virtual arrival time at Dst.
	Arrival vtime.Time
	// Hops is the route length, recorded for statistics.
	Hops int

	// seq is the deterministic per-source emission index (see Seq).
	seq uint64
}

// Params tunes the fine-grain network behaviour (§III "Architecture
// Variability": message chunk size, chunk processing time, routing
// penalty).
type Params struct {
	// ChunkSize is the flit/packet payload unit in bytes.
	ChunkSize int
	// RouterDelay is the per-hop routing penalty.
	RouterDelay vtime.Time
	// MinSize is the minimum effective size of any message (header).
	MinSize int
}

// DefaultParams returns the parameters used by the paper-style
// configurations.
func DefaultParams() Params {
	return Params{
		ChunkSize:   32,
		RouterDelay: vtime.Cycles(0.5),
		MinSize:     8,
	}
}

// Model is the interconnect simulator.
type Model struct {
	topo   *topology.Topology //simany:derived immutable topology handed to New
	params Params             //simany:derived immutable model parameters from New

	// next[src][dst] holds the index (into the topology's neighbor list
	// of src) of the next hop toward dst, -1 at the destination itself.
	// It is the dense router used for flat topologies; hierarchical
	// (chiplet) topologies leave it nil and route through hier, whose
	// per-tier tables are shared by every unit of a tier — a 100k-core
	// machine cannot afford the O(n²) dense table (20 GB of int16).
	//
	//simany:derived routing table, recomputed by New from the topology
	next [][]int16
	//simany:derived hierarchical routing tables, recomputed by New from the topology
	hier *hierRouter

	// Per-node parallel arrays indexed like topology.Neighbors(node):
	// outgoing link latency and bandwidth (views into the topology's own
	// CSR arrays — configuration, never copied) and the contention
	// next-free time (mutable model state, one flat backing array).
	nbLat  [][]vtime.Time //simany:derived per-link latency views into the topology, rebuilt by New
	nbBW   [][]int        //simany:derived per-link bandwidth views into the topology, rebuilt by New
	nbFree [][]vtime.Time

	// lastArrival[src] is the FIFO clamp page table for source src:
	// fixed-size pages indexed by destination, the table allocated on
	// src's first send and each page on the first send into its
	// destination block, so warm-path sends never touch the allocator.
	// Paging matters at scale: a flat per-source array would cost
	// n × 8 bytes per active source (0.8 MB each at 100k cores), while a
	// source that only ever talks to its neighborhood touches a handful
	// of 4 KB pages. It is indexed by source so that under sharded
	// execution each page is only touched by the shard sending on behalf
	// of src (or by the single-threaded barrier).
	lastArrival [][][]vtime.Time

	// srcSeq[src] counts the messages emitted by src. Like lastArrival it
	// is only advanced from src's own execution context, so Message.Seq
	// values are deterministic at every worker count — unlike the global
	// atomic they replace, whose assignment order depended on how shard
	// workers interleaved.
	srcSeq []uint64

	// The statistics are striped per execution shard (internal/metrics
	// discipline): during a round, Send only runs on behalf of sources
	// owned by the executing shard, so each worker writes its own stripe
	// and no counter is ever contended. The totals are commutative sums —
	// identical at every worker count — and are read (Stats) only from
	// single-threaded context.
	//simany:derived stripe map, recomputed from the kernel partition on attach
	stripeOf  []int // node -> stripe; nil = everything on stripe 0
	messages  *metrics.Striped
	totalHops *metrics.Striped
	bytes     *metrics.Striped

	// obs, when non-nil, receives fine-grain timing observations from
	// Send. Install it before the simulation runs.
	//
	//simany:derived observability attachment installed before Run, never checkpoint state
	obs Observer
}

// Observer receives fine-grain timing observations from the model. Under
// sharded execution Send runs concurrently for routes owned by different
// shards, so implementations must tolerate concurrent calls for nodes of
// different shards; calls for any single node are never concurrent (a
// node's outgoing links belong to exactly one shard, and cross-shard
// routes are only walked by the single-threaded barrier).
type Observer interface {
	// LinkWait reports that a message waited wait > 0 for the directed
	// link out of node (neighbor index nbIdx) to become free before
	// occupying it — the per-link contention the model charges.
	LinkWait(node, nbIdx int, wait vtime.Time)
}

// New builds a network model over a topology. It panics if the topology is
// disconnected, since every core must be reachable.
func New(t *topology.Topology, p Params) *Model {
	if !t.Connected() {
		panic("network: topology is disconnected")
	}
	if p.ChunkSize <= 0 {
		p.ChunkSize = 32
	}
	n := t.N()
	m := &Model{
		topo:        t,
		params:      p,
		nbLat:       make([][]vtime.Time, n),
		nbBW:        make([][]int, n),
		nbFree:      make([][]vtime.Time, n),
		lastArrival: make([][][]vtime.Time, n),
		srcSeq:      make([]uint64, n),
		messages:    metrics.NewStriped(1),
		totalHops:   metrics.NewStriped(1),
		bytes:       metrics.NewStriped(1),
	}
	flatFree := make([]vtime.Time, t.NumLinks())
	off := 0
	for node := 0; node < n; node++ {
		m.nbLat[node] = t.NeighborLatencies(node)
		m.nbBW[node] = t.NeighborBandwidths(node)
		deg := t.Degree(node)
		m.nbFree[node] = flatFree[off : off+deg : off+deg]
		off += deg
	}
	if h := t.Hierarchy(); h != nil {
		m.hier = newHierRouter(h)
	} else {
		m.buildRoutes()
	}
	return m
}

// nextHop returns the index (into cur's neighbor list) of the next hop
// toward dst, -1 when cur == dst. Flat topologies read the dense table;
// hierarchical topologies compute the hop from the shared per-tier tables
// and locate the neighbor with a scan over cur's (tiny) adjacency.
func (m *Model) nextHop(cur, dst int) int {
	if m.next != nil {
		return int(m.next[cur][dst])
	}
	nc := m.hier.nextCore(cur, dst)
	if nc < 0 {
		return -1
	}
	for j, nb := range m.topo.Neighbors(cur) {
		if nb == nc {
			return j
		}
	}
	panic(fmt.Sprintf("network: hierarchical route %d -> %d proposes non-neighbor %d", cur, dst, nc))
}

// nbIndex returns the index of neighbor nb in node's neighbor list.
func (m *Model) nbIndex(node, nb int) int {
	nbs := m.topo.Neighbors(node)
	for j, v := range nbs {
		if v == nb {
			return j
		}
	}
	panic("network: not a neighbor")
}

// buildRoutes computes shortest-latency next-hop tables with a Dijkstra
// pass per destination (deterministic: ties broken toward the
// lowest-numbered neighbor).
func (m *Model) buildRoutes() {
	n := m.topo.N()
	m.next = make([][]int16, n)
	flat := make([]int16, n*n)
	for i := range flat {
		flat[i] = -1
	}
	for src := 0; src < n; src++ {
		m.next[src] = flat[src*n : (src+1)*n : (src+1)*n]
	}
	if m.uniformLatency() {
		// BFS fast path: with equal link latencies, hop count is the
		// shortest-latency metric, and the FIFO queue visits nodes in
		// non-decreasing distance with lowest-id parents winning ties.
		queue := make([]int32, 0, n)
		dist := make([]int32, n)
		for dst := 0; dst < n; dst++ {
			for i := range dist {
				dist[i] = -1
			}
			dist[dst] = 0
			queue = append(queue[:0], int32(dst))
			for len(queue) > 0 {
				node := int(queue[0])
				queue = queue[1:]
				for _, nb := range m.topo.Neighbors(node) {
					if dist[nb] < 0 {
						dist[nb] = dist[node] + 1
						m.next[nb][dst] = int16(m.nbIndex(nb, node))
						queue = append(queue, int32(nb))
					}
				}
			}
		}
		return
	}
	// Dijkstra per destination over the reversed (symmetric) graph.
	dist := make([]vtime.Time, n)
	nextNode := make([]int32, n) // node id of chosen next hop, for ties
	var pq nodeHeap
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = vtime.Inf
			nextNode[i] = -1
		}
		dist[dst] = 0
		pq = append(pq[:0], nodeItem{node: dst, d: 0})
		for len(pq) > 0 {
			it := pq.pop()
			if it.d > dist[it.node] {
				continue
			}
			for jIdx, nb := range m.topo.Neighbors(it.node) {
				// Symmetric links: latency nb->it.node equals
				// it.node->nb, read from it.node's arrays.
				w := m.nbLat[it.node][jIdx]
				// Edge weight must be positive so routes make progress;
				// zero-latency links count one millicycle for routing.
				if w <= 0 {
					w = 1
				}
				nd := it.d + w
				if nd < dist[nb] || (nd == dist[nb] && better(nextNode[nb], it.node)) {
					if nd < dist[nb] {
						dist[nb] = nd
						pq.push(nodeItem{node: nb, d: nd})
					}
					nextNode[nb] = int32(it.node)
					m.next[nb][dst] = int16(m.nbIndex(nb, it.node))
				}
			}
		}
	}
}

// uniformLatency reports whether every link has the same latency.
func (m *Model) uniformLatency() bool {
	var ref vtime.Time = -1
	for _, lats := range m.nbLat {
		for _, l := range lats {
			if ref < 0 {
				ref = l
			} else if l != ref {
				return false
			}
		}
	}
	return true
}

func better(current int32, candidate int) bool {
	return current < 0 || int32(candidate) < current
}

type nodeItem struct {
	node int
	d    vtime.Time
}

// nodeHeap is a minimal binary min-heap ordered by (d, node); hand-rolled
// to avoid the interface boxing of container/heap on this hot path.
type nodeHeap []nodeItem

func (h nodeHeap) less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].node < h[j].node
}

func (h *nodeHeap) push(it nodeItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *nodeHeap) pop() nodeItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old = old[:last]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(old) && old.less(l, small) {
			small = l
		}
		if r < len(old) && old.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// AppendRoute appends the full path from src to dst (inclusive of both
// ends) to path and returns the extended slice, reusing the caller's
// storage — pass a slice with spare capacity and no allocation happens.
func (m *Model) AppendRoute(path []int, src, dst int) []int {
	path = append(path, src)
	for cur := src; cur != dst; {
		j := m.nextHop(cur, dst)
		if j < 0 {
			panic(fmt.Sprintf("network: no route %d -> %d", src, dst))
		}
		cur = m.topo.Neighbors(cur)[j]
		path = append(path, cur)
	}
	return path
}

// Route returns the full path from src to dst (inclusive of both ends) as
// a fresh slice. Hot callers should use AppendRoute with a reused buffer.
func (m *Model) Route(src, dst int) []int {
	return m.AppendRoute(nil, src, dst)
}

// chunks returns the number of chunks a message of size bytes occupies.
// The size is first clamped up to the MinSize header floor; the occupancy
// is always at least one chunk, which only needs stating explicitly for
// configurations with no header floor (MinSize <= 0), since a positive
// clamped size already rounds up to one.
func (m *Model) chunks(size int) int64 {
	if size < m.params.MinSize {
		size = m.params.MinSize
	}
	if size <= 0 { // only reachable when MinSize <= 0
		return 1
	}
	return int64((size + m.params.ChunkSize - 1) / m.params.ChunkSize)
}

// Send computes the arrival time of a message emitted at msg.Stamp from
// msg.Src to msg.Dst, updating link contention state, and returns the
// message with Arrival, Hops and sequencing filled in. Sending to self
// arrives immediately. At steady state (every active source has sent at
// least once) Send performs no heap allocation.
func (m *Model) Send(msg Message) Message {
	m.srcSeq[msg.Src]++
	msg.seq = m.srcSeq[msg.Src]*uint64(len(m.srcSeq)) + uint64(msg.Src)
	stripe := 0
	if m.stripeOf != nil {
		stripe = m.stripeOf[msg.Src]
	}
	m.messages.Add(stripe, 1)
	m.bytes.Add(stripe, int64(msg.Size))
	if msg.Src == msg.Dst {
		msg.Arrival = msg.Stamp
		return msg
	}
	t := msg.Stamp
	// Serialization input is loop-invariant: every link transfers the same
	// chunk payload, only its bandwidth differs.
	chunkBytes := m.chunks(msg.Size) * int64(m.params.ChunkSize)
	cur := msg.Src
	for cur != msg.Dst {
		j := m.nextHop(cur, msg.Dst)
		lat := m.nbLat[cur][j]
		bw := m.nbBW[cur][j]
		// Serialization: chunk bytes / bandwidth, in cycles.
		ser := vtime.Time(0)
		if bw > 0 {
			//lint:allow rawvtime fixed-point serialization: Cycle is the millicycles-per-cycle scale constant, not a timestamp
			ser = vtime.Time(int64(vtime.Cycle) * chunkBytes / int64(bw))
		}
		// Contention: wait for the link to be free, then occupy it for the
		// serialization time.
		start := vtime.Max(t, m.nbFree[cur][j])
		if m.obs != nil && start > t {
			m.obs.LinkWait(cur, int(j), start-t)
		}
		m.nbFree[cur][j] = start + ser
		t = start + ser + lat + m.params.RouterDelay
		cur = m.topo.Neighbors(cur)[j]
		msg.Hops++
	}
	m.totalHops.Add(stripe, int64(msg.Hops))
	// FIFO guarantee per (src,dst): arrivals never reorder. The clamp page
	// table is allocated on the source's first send, each destination page
	// on first use, and both are owned by the source's shard.
	tab := m.lastArrival[msg.Src]
	if tab == nil {
		tab = make([][]vtime.Time, (len(m.lastArrival)+laPageSize-1)/laPageSize)
		m.lastArrival[msg.Src] = tab
	}
	page := tab[msg.Dst/laPageSize]
	if page == nil {
		page = make([]vtime.Time, laPageSize)
		tab[msg.Dst/laPageSize] = page
	}
	slot := &page[msg.Dst%laPageSize]
	if t < *slot {
		t = *slot
	}
	*slot = t
	msg.Arrival = t
	return msg
}

// laPageSize is the FIFO clamp page granularity in destinations (4 KB
// pages). It is part of the checkpoint encoding (snapshot.go).
const laPageSize = 512

// Seq returns the deterministic emission index of msg (valid after Send):
// the per-source message count encoded with the source ID, so values are
// unique across the machine, strictly increasing per source, and — because
// each source's counter is only advanced from its own shard's execution
// context — independent of how shard workers interleave on the host.
// Numeric order across different sources is not meaningful.
func (msg Message) Seq() uint64 { return msg.seq }

// SetStripes partitions the statistics counters into one stripe per
// execution shard, with stripeOf mapping each node to the shard owning it
// (nil keeps everything on stripe 0). The kernel calls it once at
// construction; existing counts are preserved.
func (m *Model) SetStripes(n int, stripeOf []int) {
	if stripeOf != nil && len(stripeOf) != m.topo.N() {
		panic("network: stripe map length must match node count")
	}
	m.messages.Widen(n)
	m.totalHops.Widen(n)
	m.bytes.Widen(n)
	m.stripeOf = stripeOf
}

// SetObserver installs (or removes, with nil) the timing observer. Call
// before the simulation starts; the field is read on every Send.
func (m *Model) SetObserver(o Observer) { m.obs = o }

// Stats reports cumulative message count, hop count and payload bytes by
// summing the per-shard stripes. Call from a single-threaded context (the
// barrier, or after Run returns) — stripes are not synchronized.
func (m *Model) Stats() (messages, hops, bytes int64) {
	return m.messages.Sum(), m.totalHops.Sum(), m.bytes.Sum()
}

// RouteWithin reports whether the route from src to dst stays entirely
// inside one part of the given node assignment (as produced by
// topology.Partition). The sharded kernel uses it to decide which messages
// can be routed synchronously without touching link state owned by another
// shard.
func (m *Model) RouteWithin(src, dst int, part []int) bool {
	p := part[src]
	if part[dst] != p {
		return false
	}
	for cur := src; cur != dst; {
		j := m.nextHop(cur, dst)
		if j < 0 {
			panic(fmt.Sprintf("network: no route %d -> %d", src, dst))
		}
		cur = m.topo.Neighbors(cur)[j]
		if part[cur] != p {
			return false
		}
	}
	return true
}

// Topology returns the underlying topology.
func (m *Model) Topology() *topology.Topology { return m.topo }

// Params returns the network parameters.
func (m *Model) Params() Params { return m.params }

// OneHopLatency returns the pure latency of the direct link between two
// neighbors, without contention. It panics if a and b are not neighbors.
func (m *Model) OneHopLatency(a, b int) vtime.Time {
	for j, nb := range m.topo.Neighbors(a) {
		if nb == b {
			return m.nbLat[a][j]
		}
	}
	panic(fmt.Sprintf("network: %d and %d are not neighbors", a, b))
}

// MinLatency returns the uncontended end-to-end latency from src to dst for
// a message of the given size.
func (m *Model) MinLatency(src, dst, size int) vtime.Time {
	if src == dst {
		return 0
	}
	nChunks := m.chunks(size)
	var t vtime.Time
	cur := src
	for cur != dst {
		j := m.nextHop(cur, dst)
		bw := m.nbBW[cur][j]
		ser := vtime.Time(0)
		if bw > 0 {
			bytes := nChunks * int64(m.params.ChunkSize)
			//lint:allow rawvtime fixed-point serialization: Cycle is the millicycles-per-cycle scale constant, not a timestamp
			ser = vtime.Time(int64(vtime.Cycle) * bytes / int64(bw))
		}
		t += ser + m.nbLat[cur][j] + m.params.RouterDelay
		cur = m.topo.Neighbors(cur)[j]
	}
	return t
}
