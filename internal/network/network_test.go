package network

import (
	"math/rand"
	"testing"

	"simany/internal/topology"
	"simany/internal/vtime"
)

func mesh4x4() *Model {
	return New(topology.Mesh2D(4, 4, vtime.CyclesInt(1), 128), DefaultParams())
}

func TestRouteShortest(t *testing.T) {
	m := mesh4x4()
	// 0 -> 15 must take 6 hops on a 4x4 mesh.
	r := m.Route(0, 15)
	if len(r) != 7 {
		t.Fatalf("route length = %d hops, want 6: %v", len(r)-1, r)
	}
	if r[0] != 0 || r[len(r)-1] != 15 {
		t.Fatalf("route endpoints wrong: %v", r)
	}
	for i := 1; i < len(r); i++ {
		if _, ok := m.Topology().LinkBetween(r[i-1], r[i]); !ok {
			t.Fatalf("route uses non-link %d-%d", r[i-1], r[i])
		}
	}
	if r2 := m.Route(5, 5); len(r2) != 1 {
		t.Fatalf("self route = %v", r2)
	}
}

func TestRouteDeterministic(t *testing.T) {
	a, b := mesh4x4(), mesh4x4()
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			ra, rb := a.Route(src, dst), b.Route(src, dst)
			if len(ra) != len(rb) {
				t.Fatalf("nondeterministic route %d->%d", src, dst)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("nondeterministic route %d->%d: %v vs %v", src, dst, ra, rb)
				}
			}
		}
	}
}

func TestSendSelf(t *testing.T) {
	m := mesh4x4()
	msg := m.Send(Message{Src: 3, Dst: 3, Size: 64, Stamp: vtime.CyclesInt(100)})
	if msg.Arrival != vtime.CyclesInt(100) || msg.Hops != 0 {
		t.Errorf("self send arrival = %v hops = %d", msg.Arrival, msg.Hops)
	}
}

func TestSendLatency(t *testing.T) {
	m := mesh4x4()
	// One hop, 8-byte message -> 1 chunk of 32 bytes at 128 B/cy = 0.25cy
	// serialization + 1cy latency + 0.5cy router = 1.75cy.
	msg := m.Send(Message{Src: 0, Dst: 1, Size: 8, Stamp: 0})
	want := vtime.Cycles(1.75)
	if msg.Arrival != want {
		t.Errorf("arrival = %v, want %v", msg.Arrival, want)
	}
	if msg.Hops != 1 {
		t.Errorf("hops = %d", msg.Hops)
	}
	// MinLatency must agree on an idle network.
	if got := m.MinLatency(0, 1, 8); got != want {
		t.Errorf("MinLatency = %v, want %v", got, want)
	}
}

func TestSendMultiHopAdds(t *testing.T) {
	m := mesh4x4()
	one := m.MinLatency(0, 1, 8)
	six := m.MinLatency(0, 15, 8)
	if six != 6*one {
		t.Errorf("6-hop latency %v != 6 × %v", six, one)
	}
	if m.MinLatency(7, 7, 100) != 0 {
		t.Error("self min latency should be 0")
	}
}

func TestContentionSerializes(t *testing.T) {
	m := mesh4x4()
	// Two large messages on the same link at the same time: the second
	// must wait for the first's serialization slot.
	a := m.Send(Message{Src: 0, Dst: 1, Size: 128, Stamp: 0})
	b := m.Send(Message{Src: 0, Dst: 1, Size: 128, Stamp: 0})
	if b.Arrival <= a.Arrival {
		t.Errorf("contention not modeled: %v then %v", a.Arrival, b.Arrival)
	}
	// 128 bytes = 4 chunks = 128 bytes at 128 B/cy = 1cy serialization.
	if got, want := b.Arrival-a.Arrival, vtime.CyclesInt(1); got != want {
		t.Errorf("serialization gap = %v, want %v", got, want)
	}
}

func TestContentionIndependentLinks(t *testing.T) {
	m := mesh4x4()
	a := m.Send(Message{Src: 0, Dst: 1, Size: 128, Stamp: 0})
	// Different link (4->5): no interaction.
	b := m.Send(Message{Src: 4, Dst: 5, Size: 128, Stamp: 0})
	if a.Arrival != b.Arrival {
		t.Errorf("independent links interfered: %v vs %v", a.Arrival, b.Arrival)
	}
}

func TestFIFOPerPair(t *testing.T) {
	m := mesh4x4()
	// Force a later-stamped message to be sent first; an earlier-stamped
	// one sent afterwards must not arrive before it (per-pair FIFO).
	first := m.Send(Message{Src: 0, Dst: 15, Size: 1024, Stamp: vtime.CyclesInt(50)})
	second := m.Send(Message{Src: 0, Dst: 15, Size: 8, Stamp: vtime.CyclesInt(0)})
	if second.Arrival < first.Arrival {
		t.Errorf("FIFO violated: %v before %v", second.Arrival, first.Arrival)
	}
}

func TestSeqMonotonic(t *testing.T) {
	m := mesh4x4()
	var last uint64
	for i := 0; i < 10; i++ {
		msg := m.Send(Message{Src: 0, Dst: 1, Size: 8})
		if msg.Seq() <= last {
			t.Fatal("sequence numbers not strictly increasing")
		}
		last = msg.Seq()
	}
}

func TestStats(t *testing.T) {
	m := mesh4x4()
	m.Send(Message{Src: 0, Dst: 15, Size: 100, Stamp: 0})
	m.Send(Message{Src: 1, Dst: 2, Size: 50, Stamp: 0})
	msgs, hops, bytes := m.Stats()
	if msgs != 2 || bytes != 150 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
	if hops != 6+1 {
		t.Errorf("hops = %d, want 7", hops)
	}
}

func TestOneHopLatency(t *testing.T) {
	m := mesh4x4()
	if m.OneHopLatency(0, 1) != vtime.CyclesInt(1) {
		t.Error("wrong one-hop latency")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-neighbors")
		}
	}()
	m.OneHopLatency(0, 15)
}

func TestDisconnectedPanics(t *testing.T) {
	tp := topology.New(3, "disc")
	tp.AddLink(0, 1, vtime.CyclesInt(1), 128)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for disconnected topology")
		}
	}()
	New(tp, DefaultParams())
}

func TestClusteredRoutesPreferCheapLinks(t *testing.T) {
	// In a clustered topology, intra-cluster routes should use the
	// 0.5-cycle links only.
	tp := topology.Clustered(16, topology.DefaultClusteredParams(4))
	m := New(tp, DefaultParams())
	r := m.Route(0, 3) // both in cluster 0 (cores 0..3)
	for i := 1; i < len(r); i++ {
		l, _ := tp.LinkBetween(r[i-1], r[i])
		if l.Latency != vtime.Cycles(0.5) {
			t.Fatalf("intra-cluster route used %v link", l.Latency)
		}
	}
	// Cross-cluster route must include exactly the needed inter links.
	r = m.Route(0, 5) // cluster 0 to cluster 1
	inter := 0
	for i := 1; i < len(r); i++ {
		l, _ := tp.LinkBetween(r[i-1], r[i])
		if l.Latency == vtime.CyclesInt(4) {
			inter++
		}
	}
	if inter != 1 {
		t.Errorf("cross-cluster route crossed %d inter links, want 1", inter)
	}
}

// Property: arrival ≥ stamp + uncontended minimum, for random traffic, and
// per-pair arrivals are monotone in emission order.
func TestArrivalProperties(t *testing.T) {
	m := mesh4x4()
	rng := rand.New(rand.NewSource(4))
	last := make(map[[2]int]vtime.Time)
	for i := 0; i < 500; i++ {
		src, dst := rng.Intn(16), rng.Intn(16)
		stamp := vtime.Time(rng.Int63n(int64(vtime.CyclesInt(1000))))
		size := rng.Intn(512)
		msg := m.Send(Message{Src: src, Dst: dst, Size: size, Stamp: stamp})
		if msg.Arrival < stamp {
			t.Fatalf("arrival %v before stamp %v", msg.Arrival, stamp)
		}
		if src != dst {
			if min := m.MinLatency(src, dst, size); msg.Arrival < stamp+0*min {
				t.Fatalf("arrival too early")
			}
		}
		if src != dst {
			pair := [2]int{src, dst}
			if msg.Arrival < last[pair] {
				t.Fatalf("per-pair FIFO violated")
			}
			last[pair] = msg.Arrival
		}
	}
}

func TestHeavyTrafficMakesLatency(t *testing.T) {
	// A burst of same-link messages must produce strictly growing arrivals.
	m := mesh4x4()
	var prev vtime.Time = -1
	for i := 0; i < 32; i++ {
		msg := m.Send(Message{Src: 0, Dst: 1, Size: 128, Stamp: 0})
		if msg.Arrival <= prev {
			t.Fatalf("burst message %d arrival %v not increasing", i, msg.Arrival)
		}
		prev = msg.Arrival
	}
	// Uncontended latency for the same message is much smaller.
	if idle := m.MinLatency(0, 1, 128); prev <= idle*8 {
		t.Errorf("expected heavy queueing, got %v vs idle %v", prev, idle)
	}
}

// recordingObserver collects LinkWait observations for assertions.
type recordingObserver struct {
	waits []vtime.Time
	nodes []int
}

func (o *recordingObserver) LinkWait(node, nbIdx int, wait vtime.Time) {
	o.waits = append(o.waits, wait)
	o.nodes = append(o.nodes, node)
}

func TestObserverSeesLinkContention(t *testing.T) {
	m := mesh4x4()
	obs := &recordingObserver{}
	m.SetObserver(obs)
	// Two same-stamp messages over the same first link (0->1): the second
	// must wait for the first's serialization slot and the observer must
	// see exactly that wait on node 0.
	first := m.Send(Message{Src: 0, Dst: 1, Size: 256, Stamp: 0})
	if len(obs.waits) != 0 {
		t.Fatalf("idle send reported waits: %v", obs.waits)
	}
	second := m.Send(Message{Src: 0, Dst: 1, Size: 256, Stamp: 0})
	if len(obs.waits) != 1 {
		t.Fatalf("contended send reported %d waits, want 1", len(obs.waits))
	}
	if obs.nodes[0] != 0 {
		t.Errorf("wait attributed to node %d, want 0", obs.nodes[0])
	}
	if obs.waits[0] <= 0 {
		t.Errorf("non-positive wait %v reported", obs.waits[0])
	}
	if second.Arrival <= first.Arrival {
		t.Errorf("contended arrival %v not after %v", second.Arrival, first.Arrival)
	}
	// Removing the observer stops reporting without changing timing.
	m.SetObserver(nil)
	m.Send(Message{Src: 0, Dst: 1, Size: 256, Stamp: 0})
	if len(obs.waits) != 1 {
		t.Errorf("detached observer still called: %v", obs.waits)
	}
}

func TestSeqPerSourceStream(t *testing.T) {
	m := mesh4x4()
	// Interleave sends from several sources: each source's stream must stay
	// strictly increasing, and values must never collide across sources
	// (the encoding folds the source ID into the low digits).
	seen := make(map[uint64]bool)
	last := make(map[int]uint64)
	for round := 0; round < 8; round++ {
		for _, src := range []int{0, 5, 11} {
			msg := m.Send(Message{Src: src, Dst: (src + 1) % 16, Size: 8})
			if s := msg.Seq(); s <= last[src] {
				t.Fatalf("src %d: seq %d not increasing after %d", src, s, last[src])
			} else if seen[s] {
				t.Fatalf("seq %d assigned twice", s)
			} else {
				seen[s] = true
				last[src] = s
			}
		}
	}
}

func TestSendZeroAllocSteadyState(t *testing.T) {
	m := mesh4x4()
	// Warm the per-source FIFO pages: the first send from a source
	// allocates its clamp page, nothing after that may allocate.
	for src := 0; src < 16; src++ {
		m.Send(Message{Src: src, Dst: (src + 3) % 16, Size: 64})
	}
	stamp := vtime.CyclesInt(1000)
	allocs := testing.AllocsPerRun(200, func() {
		for src := 0; src < 16; src++ {
			m.Send(Message{Src: src, Dst: (src + 3) % 16, Size: 64, Stamp: stamp})
		}
		stamp += vtime.CyclesInt(100)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Send allocates %.1f times per 16 sends, want 0", allocs)
	}
}

func TestAppendRouteReusesStorage(t *testing.T) {
	m := mesh4x4()
	// AppendRoute must extend the given slice in place and agree with Route.
	buf := make([]int, 0, 16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			buf = m.AppendRoute(buf[:0], src, dst)
			want := m.Route(src, dst)
			if len(buf) != len(want) {
				t.Fatalf("%d->%d: AppendRoute %v != Route %v", src, dst, buf, want)
			}
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("%d->%d: AppendRoute %v != Route %v", src, dst, buf, want)
				}
			}
		}
	}
	// Prefix contents are preserved, not overwritten.
	pre := m.AppendRoute([]int{99}, 0, 2)
	if pre[0] != 99 || pre[1] != 0 || pre[len(pre)-1] != 2 {
		t.Fatalf("prefix not preserved: %v", pre)
	}
	// With enough capacity there is no allocation.
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.AppendRoute(buf[:0], 0, 15)
	})
	if allocs != 0 {
		t.Errorf("AppendRoute with capacity allocates %.1f times, want 0", allocs)
	}
}

func TestChunksBoundaries(t *testing.T) {
	mk := func(minSize, chunkSize int) *Model {
		p := DefaultParams()
		p.MinSize = minSize
		p.ChunkSize = chunkSize
		return New(topology.Mesh2D(4, 4, vtime.CyclesInt(1), 128), p)
	}
	cases := []struct {
		minSize, chunkSize, size int
		want                     int64
	}{
		// Header floor: sizes at or below MinSize clamp up to it.
		{8, 32, 0, 1},
		{8, 32, -5, 1},
		{8, 32, 8, 1},
		// Chunk boundaries: exact multiples don't round up an extra chunk.
		{8, 32, 32, 1},
		{8, 32, 33, 2},
		{8, 32, 64, 2},
		{8, 32, 65, 3},
		// No header floor: non-positive sizes still occupy one chunk.
		{0, 32, 0, 1},
		{0, 32, -1, 1},
		{-4, 32, -2, 1},
		// MinSize spanning several chunks.
		{100, 32, 1, 4},
		{100, 32, 200, 7},
	}
	for _, c := range cases {
		m := mk(c.minSize, c.chunkSize)
		if got := m.chunks(c.size); got != c.want {
			t.Errorf("chunks(size=%d) with MinSize=%d ChunkSize=%d = %d, want %d",
				c.size, c.minSize, c.chunkSize, got, c.want)
		}
	}
}
