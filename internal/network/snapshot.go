package network

import (
	"fmt"

	"simany/internal/snap"
	"simany/internal/vtime"
)

// Snapshot appends the model's mutable state: per-source emission
// counters, per-link contention next-free times, the lazily-paged FIFO
// clamp arrays (a nil flag per source table and per destination page, so
// the lazy allocation pattern — not just its contents — round-trips), and
// the striped statistics totals. Routing tables and link parameters are
// configuration, rebuilt by New.
func (m *Model) Snapshot(enc *snap.Encoder) {
	enc.Uvarint(uint64(len(m.srcSeq)))
	for _, s := range m.srcSeq {
		enc.Uvarint(s)
	}
	for _, free := range m.nbFree {
		enc.Uvarint(uint64(len(free)))
		for _, t := range free {
			enc.Time(t)
		}
	}
	for _, tab := range m.lastArrival {
		enc.Bool(tab != nil)
		if tab == nil {
			continue
		}
		for _, page := range tab {
			enc.Bool(page != nil)
			if page != nil {
				for _, t := range page {
					enc.Time(t)
				}
			}
		}
	}
	m.messages.SnapshotState(enc)
	m.totalHops.SnapshotState(enc)
	m.bytes.SnapshotState(enc)
}

// Restore implements the inverse of Snapshot into a freshly built model
// over the same topology.
func (m *Model) Restore(dec *snap.Decoder) error {
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(m.srcSeq)) {
		return fmt.Errorf("network: node count mismatch: checkpoint %d, live %d", n, len(m.srcSeq))
	}
	for i := range m.srcSeq {
		if m.srcSeq[i], err = dec.Uvarint(); err != nil {
			return err
		}
	}
	for node, free := range m.nbFree {
		nl, err := dec.Uvarint()
		if err != nil {
			return err
		}
		if nl != uint64(len(free)) {
			return fmt.Errorf("network: node %d link count mismatch: checkpoint %d, live %d", node, nl, len(free))
		}
		for j := range free {
			if free[j], err = dec.Time(); err != nil {
				return err
			}
		}
	}
	nPages := (len(m.lastArrival) + laPageSize - 1) / laPageSize
	for src := range m.lastArrival {
		present, err := dec.Bool()
		if err != nil {
			return err
		}
		if !present {
			m.lastArrival[src] = nil
			continue
		}
		tab := m.lastArrival[src]
		if tab == nil {
			tab = make([][]vtime.Time, nPages)
			m.lastArrival[src] = tab
		}
		for pi := range tab {
			present, err := dec.Bool()
			if err != nil {
				return err
			}
			if !present {
				tab[pi] = nil
				continue
			}
			page := tab[pi]
			if page == nil {
				page = make([]vtime.Time, laPageSize)
				tab[pi] = page
			}
			for d := range page {
				if page[d], err = dec.Time(); err != nil {
					return err
				}
			}
		}
	}
	if err := m.messages.RestoreState(dec); err != nil {
		return err
	}
	if err := m.totalHops.RestoreState(dec); err != nil {
		return err
	}
	return m.bytes.RestoreState(dec)
}
