package network

import (
	"testing"

	"simany/internal/topology"
	"simany/internal/vtime"
)

func chipletModel() *Model {
	top := topology.Chiplet([]topology.Tier{
		{W: 2, H: 2, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(2)},
		{W: 2, H: 1, Lat: vtime.CyclesInt(8), BW: 32, Penalty: vtime.CyclesInt(4)},
	})
	return New(top, DefaultParams())
}

// TestHierRouteValid walks every (src, dst) pair of a 3-tier 32-core
// chiplet machine and checks that the hierarchical router produces a real
// path: every step a topology link, terminating at dst, with a hop count
// bounded by the analytic diameter bound.
func TestHierRouteValid(t *testing.T) {
	m := chipletModel()
	top := m.Topology()
	n := top.N()
	bound := top.Diameter()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			r := m.Route(src, dst)
			if r[0] != src || r[len(r)-1] != dst {
				t.Fatalf("route %d->%d endpoints wrong: %v", src, dst, r)
			}
			if len(r)-1 > bound {
				t.Fatalf("route %d->%d takes %d hops, above diameter bound %d",
					src, dst, len(r)-1, bound)
			}
			for i := 1; i < len(r); i++ {
				if _, ok := top.LinkBetween(r[i-1], r[i]); !ok {
					t.Fatalf("route %d->%d uses non-link %d-%d: %v", src, dst, r[i-1], r[i], r)
				}
			}
		}
	}
}

// TestHierRouteLocalOptimal: within a single chiplet the hierarchical
// router must match the mesh shortest path (no detours through gateways).
func TestHierRouteLocalOptimal(t *testing.T) {
	m := chipletModel()
	top := m.Topology()
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			r := m.Route(src, dst)
			if want := top.HopDistance(src, dst); len(r)-1 != want {
				t.Errorf("intra-chiplet route %d->%d: %d hops, want %d", src, dst, len(r)-1, want)
			}
		}
	}
}

func TestHierRouteDeterministic(t *testing.T) {
	a, b := chipletModel(), chipletModel()
	n := a.Topology().N()
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 5 {
			ra, rb := a.Route(src, dst), b.Route(src, dst)
			if len(ra) != len(rb) {
				t.Fatalf("nondeterministic hier route %d->%d", src, dst)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("nondeterministic hier route %d->%d: %v vs %v", src, dst, ra, rb)
				}
			}
		}
	}
}

// TestHierSendCrossesTiers: a cross-package send pays at least the gateway
// latencies its path must traverse, and per-pair FIFO holds across the
// paged last-arrival clamp (dst indices far apart land on separate pages).
func TestHierSendCrossesTiers(t *testing.T) {
	m := chipletModel()
	// 0 is in chip 0 / package half 0; 31 is the far corner (package
	// gateway latency 8+4, chip gateways 4+2, chiplet links 1).
	msg := m.Send(Message{Src: 0, Dst: 31, Size: 8, Stamp: 0})
	if msg.Hops < 3 {
		t.Fatalf("cross-package send took %d hops", msg.Hops)
	}
	// Any path 0->31 crosses the single package gateway (12cy) at least
	// once, so arrival must exceed it.
	if msg.Arrival <= vtime.CyclesInt(12) {
		t.Errorf("cross-package arrival %v does not include gateway latency", msg.Arrival)
	}
	// FIFO: an earlier-stamped message sent later to the same pair must not
	// overtake.
	second := m.Send(Message{Src: 0, Dst: 31, Size: 8, Stamp: 0})
	if second.Arrival < msg.Arrival {
		t.Errorf("per-pair FIFO violated: %v before %v", second.Arrival, msg.Arrival)
	}
}

// TestPagedClampAcrossPages exercises the paged last-arrival table with
// destinations on distinct pages of a machine larger than one 512-entry
// page: pages allocate lazily per destination block, slots record each
// pair's own arrival, and same-offset slots on different pages never alias.
func TestPagedClampAcrossPages(t *testing.T) {
	top := topology.Chiplet([]topology.Tier{
		{W: 16, H: 16, Lat: vtime.CyclesInt(1), BW: 128},
		{W: 2, H: 2, Lat: vtime.CyclesInt(4), BW: 64, Penalty: vtime.CyclesInt(2)},
	})
	m := New(top, DefaultParams())
	if m.lastArrival[0] != nil {
		t.Fatal("clamp table allocated before first send")
	}
	// 1024 cores = 2 pages. Dst 100 and dst 612 share the in-page offset
	// (612 % 512 == 100), so a paging bug that reused one page for every
	// block would alias exactly these two slots.
	a := m.Send(Message{Src: 0, Dst: 100, Size: 64, Stamp: 0})
	b := m.Send(Message{Src: 0, Dst: 612, Size: 64, Stamp: 0})
	tab := m.lastArrival[0]
	if len(tab) != 2 || tab[0] == nil || tab[1] == nil {
		t.Fatalf("page table malformed: %d pages, nil0=%v nil1=%v",
			len(tab), tab[0] == nil, tab[1] == nil)
	}
	if m.lastArrival[1] != nil {
		t.Error("clamp table allocated for a source that never sent")
	}
	if tab[0][100] != a.Arrival {
		t.Errorf("page 0 slot = %v, want dst 100 arrival %v", tab[0][100], a.Arrival)
	}
	if tab[1][100] != b.Arrival {
		t.Errorf("page 1 slot = %v, want dst 612 arrival %v", tab[1][100], b.Arrival)
	}
	if tab[0][100] == tab[1][100] {
		t.Errorf("same-offset slots alias across pages (both %v)", tab[0][100])
	}
	// FIFO per pair across the paged table: an earlier-stamped message to
	// dst 612 must not overtake its predecessor.
	b2 := m.Send(Message{Src: 0, Dst: 612, Size: 8, Stamp: 0})
	if b2.Arrival < b.Arrival {
		t.Errorf("per-pair FIFO violated on page 1: %v before %v", b2.Arrival, b.Arrival)
	}
}
