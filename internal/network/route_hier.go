package network

// Hierarchical routing for chiplet topologies (topology.Chiplet). The
// dense next-hop table is O(n²) — 20 GB of int16 at 100k cores — but every
// unit of a tier is identical, so one next-step table per tier suffices:
// tier 0 routes within a chiplet's core mesh, tier t ≥ 1 routes between
// the tier-(t-1) units arranged in that tier's unit mesh. A route descends
// from the highest tier where source and destination differ: head for the
// exit corner of the current unit, take the gateway link, repeat.
//
// This is hierarchical (dimension-ordered at each tier) routing, the
// scheme real chiplet NoCs use — not the globally latency-optimal path a
// full Dijkstra would find, which may cut through a unit at an angle the
// corner gateways cannot express anyway. It is deterministic: the tables
// depend only on the hierarchy parameters.

import (
	"simany/internal/topology"
)

type hierRouter struct {
	per []int // per[t] = cores per tier-t unit
	// local[t] is the shared next-step table of tier t: for tier 0,
	// positions are core offsets within a chiplet; for t ≥ 1, positions
	// are tier-(t-1) unit offsets within a tier-t unit. local[t][a*k+b]
	// is the position adjacent to a on the shortest mesh path toward b
	// (k = positions per unit at that tier), -1 when a == b.
	local [][]int16
}

func newHierRouter(h *topology.Hierarchy) *hierRouter {
	r := &hierRouter{
		per:   make([]int, len(h.Tiers)),
		local: make([][]int16, len(h.Tiers)),
	}
	for t, tr := range h.Tiers {
		r.per[t] = h.CoresPerUnit(t)
		r.local[t] = meshNext(tr.W, tr.H)
	}
	return r
}

// meshNext builds the next-step table of a w×h mesh: tab[a*n+b] is the
// position adjacent to a on the BFS-shortest path toward b, with ties
// broken toward the lowest-numbered position (matching the dense router's
// tie-break), and -1 on the diagonal.
func meshNext(w, h int) []int16 {
	n := w * h
	tab := make([]int16, n*n)
	for i := range tab {
		tab[i] = -1
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	// nbs lists mesh neighbors of p in increasing position order.
	nbs := func(p int) [4]int {
		x, y := p%w, p/w
		out := [4]int{-1, -1, -1, -1}
		i := 0
		if y > 0 {
			out[i] = p - w
			i++
		}
		if x > 0 {
			out[i] = p - 1
			i++
		}
		if x+1 < w {
			out[i] = p + 1
			i++
		}
		if y+1 < h {
			out[i] = p + w
		}
		return out
	}
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			for _, nb := range nbs(node) {
				if nb >= 0 && dist[nb] < 0 {
					dist[nb] = dist[node] + 1
					tab[nb*n+dst] = int16(node)
					queue = append(queue, nb)
				}
			}
		}
	}
	return tab
}

// nextCore returns the global core ID of the next hop from cur toward dst,
// -1 when cur == dst. It descends the hierarchy: at the lowest tier whose
// unit contains both cores, either take the gateway link (when cur sits on
// the exit corner) or retarget to the exit corner and recurse downward.
func (r *hierRouter) nextCore(cur, dst int) int {
	for {
		if cur == dst {
			return -1
		}
		tier := 0
		for cur/r.per[tier] != dst/r.per[tier] {
			tier++
		}
		if tier == 0 {
			per := r.per[0]
			base := (cur / per) * per
			k := per
			return base + int(r.local[0][(cur-base)*k+(dst-base)])
		}
		per := r.per[tier-1]          // cores per lower unit
		group := r.per[tier]          // cores per this unit
		base := (cur / group) * group // first core of the enclosing unit
		ua := (cur - base) / per
		ub := (dst - base) / per
		k := group / per // lower units per unit at this tier
		un := int(r.local[tier][ua*k+ub])
		// Gateways join a unit's last core to the next unit's first core,
		// so the exit corner depends on the travel direction.
		if un > ua {
			exit := base + ua*per + per - 1
			if cur == exit {
				return base + un*per
			}
			dst = exit
		} else {
			exit := base + ua*per
			if cur == exit {
				return base + un*per + per - 1
			}
			dst = exit
		}
	}
}
