// Package cache implements the memory-side timing models of the simulator.
//
// SiMany deliberately keeps cache models simple: the private L1 model is
// pessimistic — "data do not stay in the cache across function boundaries"
// (§V) — while the cycle-level reference simulator uses real split I/D
// direct-mapped caches with line-granularity coherence. Both are provided
// here, along with the per-core L2 used by the distributed-memory run-time
// system and the coherence directory that times invalidations and
// ownership transfers.
package cache

// DefaultLineSize is the cache line size in bytes (PowerPC-405-class).
const DefaultLineSize = 32

// LineOf returns the line address containing byte address addr.
func LineOf(addr uint64, lineSize int) uint64 {
	return addr / uint64(lineSize)
}

// Scoped is SiMany's pessimistic private L1 model. A line accessed earlier
// within the current function scope hits; everything else misses, and all
// contents are discarded when a scope is left. This intentionally
// under-approximates locality, as in the paper.
type Scoped struct {
	lineSize int //simany:derived immutable line-size configuration from NewScoped
	present  map[uint64]struct{}
	depth    int

	hits, misses int64
}

// NewScoped creates a pessimistic scoped L1 with the given line size. The
// presence map is allocated lazily on first access so a 100k-core machine
// whose cores mostly never touch memory does not pay 100k map headers up
// front.
func NewScoped(lineSize int) *Scoped {
	if lineSize <= 0 {
		lineSize = DefaultLineSize
	}
	return &Scoped{lineSize: lineSize}
}

// Enter marks entry into a function scope.
func (s *Scoped) Enter() { s.depth++ }

// Leave marks exit from a function scope and discards the cache contents:
// data do not survive function boundaries in this model.
func (s *Scoped) Leave() {
	if s.depth > 0 {
		s.depth--
	}
	clear(s.present)
}

// Access records one access to addr and reports whether it hit.
func (s *Scoped) Access(addr uint64) bool {
	line := LineOf(addr, s.lineSize)
	if _, ok := s.present[line]; ok {
		s.hits++
		return true
	}
	if s.present == nil {
		s.present = make(map[uint64]struct{})
	}
	s.present[line] = struct{}{}
	s.misses++
	return false
}

// Range records n accesses of elem bytes each starting at base and returns
// the hit and miss counts (hits+misses == n). Whole lines newly brought in
// miss once; the remaining accesses to them hit.
func (s *Scoped) Range(base uint64, n int64, elem int) (hits, misses int64) {
	if n <= 0 {
		return 0, 0
	}
	if elem <= 0 {
		elem = 1
	}
	first := LineOf(base, s.lineSize)
	last := LineOf(base+uint64(n)*uint64(elem)-1, s.lineSize)
	if s.present == nil {
		s.present = make(map[uint64]struct{})
	}
	var newLines int64
	for line := first; line <= last; line++ {
		if _, ok := s.present[line]; !ok {
			s.present[line] = struct{}{}
			newLines++
		}
	}
	if newLines > n {
		newLines = n
	}
	s.hits += n - newLines
	s.misses += newLines
	return n - newLines, newLines
}

// Stats returns cumulative hit and miss counts.
func (s *Scoped) Stats() (hits, misses int64) { return s.hits, s.misses }

// DirectMapped is a real direct-mapped cache used by the cycle-level
// reference simulator's split I/D L1s.
type DirectMapped struct {
	lineSize int
	nLines   int
	tags     []uint64
	valid    []bool

	hits, misses int64
}

// NewDirectMapped creates a direct-mapped cache of sizeBytes capacity.
func NewDirectMapped(sizeBytes, lineSize int) *DirectMapped {
	if lineSize <= 0 {
		lineSize = DefaultLineSize
	}
	n := sizeBytes / lineSize
	if n < 1 {
		n = 1
	}
	return &DirectMapped{
		lineSize: lineSize,
		nLines:   n,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
	}
}

// Access records one access to addr and reports whether it hit. On a miss
// the line is installed, evicting the previous occupant of its set.
func (d *DirectMapped) Access(addr uint64) bool {
	line := LineOf(addr, d.lineSize)
	idx := int(line % uint64(d.nLines))
	if d.valid[idx] && d.tags[idx] == line {
		d.hits++
		return true
	}
	d.valid[idx] = true
	d.tags[idx] = line
	d.misses++
	return false
}

// Range records n accesses of elem bytes each starting at base, walking
// every line, and returns hit/miss counts (hits+misses == n). The first
// access to a line not currently resident misses; the remaining accesses
// covered by that line hit.
func (d *DirectMapped) Range(base uint64, n int64, elem int) (hits, misses int64) {
	if n <= 0 {
		return 0, 0
	}
	if elem <= 0 {
		elem = 1
	}
	perLine := int64(d.lineSize / elem)
	if perLine < 1 {
		perLine = 1
	}
	addr := base
	for i := int64(0); i < n; i += perLine {
		cnt := perLine
		if n-i < cnt {
			cnt = n - i
		}
		line := LineOf(addr, d.lineSize)
		idx := int(line % uint64(d.nLines))
		if d.valid[idx] && d.tags[idx] == line {
			hits += cnt
		} else {
			d.valid[idx] = true
			d.tags[idx] = line
			misses++
			hits += cnt - 1
		}
		addr += uint64(d.lineSize)
	}
	d.hits += hits
	d.misses += misses
	return hits, misses
}

// Stats returns cumulative hit and miss counts.
func (d *DirectMapped) Stats() (hits, misses int64) { return d.hits, d.misses }

// Flush invalidates the whole cache.
func (d *DirectMapped) Flush() {
	for i := range d.valid {
		d.valid[i] = false
	}
}

// InvalidateLine removes one line if present (coherence invalidation).
func (d *DirectMapped) InvalidateLine(line uint64) {
	idx := int(line % uint64(d.nLines))
	if d.valid[idx] && d.tags[idx] == line {
		d.valid[idx] = false
	}
}

// L2 is the simple per-core L2 used by the distributed-memory run-time
// system: remote data fetched by DATA_REQUEST are installed here and served
// with the usual 10-cycle latency (§V). The model is an unbounded
// presence set, matching the paper's abstract "stored in the initiating
// core's L2".
type L2 struct {
	lineSize int //simany:derived immutable line-size configuration from NewL2
	present  map[uint64]struct{}

	hits, misses int64
}

// NewL2 creates an L2 model. Like NewScoped, the presence set is allocated
// lazily on first use.
func NewL2(lineSize int) *L2 {
	if lineSize <= 0 {
		lineSize = DefaultLineSize
	}
	return &L2{lineSize: lineSize}
}

// Access records one access and reports hit.
func (l *L2) Access(addr uint64) bool {
	line := LineOf(addr, l.lineSize)
	if _, ok := l.present[line]; ok {
		l.hits++
		return true
	}
	if l.present == nil {
		l.present = make(map[uint64]struct{})
	}
	l.present[line] = struct{}{}
	l.misses++
	return false
}

// Install brings the lines covering [base, base+bytes) into the L2 without
// counting accesses (used when a DATA_RESPONSE arrives).
func (l *L2) Install(base uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	first := LineOf(base, l.lineSize)
	last := LineOf(base+uint64(bytes)-1, l.lineSize)
	if l.present == nil {
		l.present = make(map[uint64]struct{})
	}
	for line := first; line <= last; line++ {
		l.present[line] = struct{}{}
	}
}

// Evict removes the lines covering [base, base+bytes) (exclusive transfer
// to another core).
func (l *L2) Evict(base uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	first := LineOf(base, l.lineSize)
	last := LineOf(base+uint64(bytes)-1, l.lineSize)
	for line := first; line <= last; line++ {
		delete(l.present, line)
	}
}

// Contains reports whether the line of addr is present.
func (l *L2) Contains(addr uint64) bool {
	_, ok := l.present[LineOf(addr, l.lineSize)]
	return ok
}

// Stats returns cumulative hit and miss counts.
func (l *L2) Stats() (hits, misses int64) { return l.hits, l.misses }
