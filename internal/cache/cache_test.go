package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScopedBasics(t *testing.T) {
	s := NewScoped(32)
	s.Enter()
	if s.Access(0) {
		t.Error("first access should miss")
	}
	if !s.Access(8) {
		t.Error("same-line access should hit")
	}
	if s.Access(32) {
		t.Error("next line should miss")
	}
	s.Leave()
	s.Enter()
	if s.Access(0) {
		t.Error("data must not survive function boundaries")
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d/%d, want 1/3", hits, misses)
	}
}

func TestScopedRange(t *testing.T) {
	s := NewScoped(32)
	s.Enter()
	// 16 8-byte elements at base 0 = 128 bytes = 4 lines.
	hits, misses := s.Range(0, 16, 8)
	if misses != 4 || hits != 12 {
		t.Errorf("range = %d hits / %d misses, want 12/4", hits, misses)
	}
	// Re-reading the same range inside the scope: all hits.
	hits, misses = s.Range(0, 16, 8)
	if misses != 0 || hits != 16 {
		t.Errorf("re-range = %d/%d, want 16/0", hits, misses)
	}
	s.Leave()
	s.Enter()
	_, misses = s.Range(0, 16, 8)
	if misses != 4 {
		t.Errorf("post-scope range misses = %d, want 4", misses)
	}
}

func TestScopedRangeEdge(t *testing.T) {
	s := NewScoped(32)
	if h, m := s.Range(0, 0, 8); h != 0 || m != 0 {
		t.Error("empty range should be free")
	}
	// One 1-byte element: one new line, so one miss capped at n.
	if h, m := s.Range(100, 1, 1); h != 0 || m != 1 {
		t.Errorf("single access = %d/%d", h, m)
	}
	// Large elements spanning many lines: misses capped at n.
	s2 := NewScoped(32)
	if h, m := s2.Range(0, 2, 1024); h+m != 2 || m != 2 {
		t.Errorf("big-elem range = %d/%d", h, m)
	}
}

func TestScopedLeaveUnderflow(t *testing.T) {
	s := NewScoped(32)
	s.Leave() // must not panic
	s.Enter()
	s.Access(0)
	s.Leave()
	s.Leave()
}

func TestDirectMappedConflict(t *testing.T) {
	// 4-line cache, 32-byte lines: addresses 0 and 128 conflict.
	d := NewDirectMapped(128, 32)
	if d.Access(0) {
		t.Error("cold miss expected")
	}
	if !d.Access(4) {
		t.Error("same line should hit")
	}
	if d.Access(128) {
		t.Error("conflicting line should miss")
	}
	if d.Access(0) {
		t.Error("evicted line should miss again")
	}
	d.Flush()
	if d.Access(4) {
		t.Error("flushed cache should miss")
	}
}

func TestDirectMappedRange(t *testing.T) {
	d := NewDirectMapped(1024, 32)
	hits, misses := d.Range(0, 32, 8) // 256 bytes = 8 lines
	if misses != 8 || hits != 24 {
		t.Errorf("range = %d/%d, want 24/8", hits, misses)
	}
	hits, misses = d.Range(0, 32, 8)
	if misses != 0 || hits != 32 {
		t.Errorf("warm range = %d/%d, want 32/0", hits, misses)
	}
	h, m := d.Stats()
	if h != 56 || m != 8 {
		t.Errorf("stats = %d/%d", h, m)
	}
}

func TestDirectMappedInvalidate(t *testing.T) {
	d := NewDirectMapped(1024, 32)
	d.Access(64)
	d.InvalidateLine(LineOf(64, 32))
	if d.Access(64) {
		t.Error("invalidated line should miss")
	}
	// Invalidating an absent line is a no-op.
	d.InvalidateLine(LineOf(9999, 32))
}

func TestDirectMappedTiny(t *testing.T) {
	d := NewDirectMapped(8, 32) // smaller than a line: still 1 line
	if d.Access(0) {
		t.Error("cold miss expected")
	}
	if !d.Access(16) {
		t.Error("same single line should hit")
	}
}

func TestL2(t *testing.T) {
	l := NewL2(32)
	if l.Access(0) {
		t.Error("cold L2 access should miss")
	}
	if !l.Access(8) {
		t.Error("warm L2 access should hit")
	}
	l.Install(1024, 100) // lines 32..35
	if !l.Contains(1024) || !l.Contains(1123) {
		t.Error("installed range missing")
	}
	if l.Contains(1152) {
		t.Error("line past range present")
	}
	l.Evict(1024, 100)
	if l.Contains(1024) {
		t.Error("evicted line still present")
	}
	l.Install(0, 0) // no-op
	l.Evict(0, 0)   // no-op
	h, m := l.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d/%d", h, m)
	}
}

func TestDirectoryReadWrite(t *testing.T) {
	d := NewDirectory(32)
	// Cold read: no coherence action.
	o := d.Read(0, 100)
	if o.Transfer || o.Invalidations != 0 {
		t.Errorf("cold read outcome = %+v", o)
	}
	// Second reader: still silent.
	o = d.Read(1, 100)
	if o.Transfer || o.Invalidations != 0 {
		t.Errorf("shared read outcome = %+v", o)
	}
	// Writer must invalidate both sharers except itself.
	o = d.Write(0, 100)
	if o.Invalidations != 1 {
		t.Errorf("write invalidations = %d, want 1", o.Invalidations)
	}
	// Remote read of dirty line: ownership transfer.
	o = d.Read(2, 100)
	if !o.Transfer || o.FromCore != 0 {
		t.Errorf("dirty read outcome = %+v", o)
	}
	// Write by third core: invalidate remaining sharers (0 and 2).
	o = d.Write(3, 100)
	if o.Invalidations != 2 {
		t.Errorf("write invalidations = %d, want 2", o.Invalidations)
	}
	inv, tr := d.Stats()
	if inv != 3 || tr != 1 {
		t.Errorf("stats = %d inv / %d transfers", inv, tr)
	}
}

func TestDirectoryExclusiveSilent(t *testing.T) {
	d := NewDirectory(32)
	d.Write(5, 200)
	// Repeated accesses by the owner are silent.
	if o := d.Write(5, 200); o.Transfer || o.Invalidations != 0 {
		t.Errorf("owner rewrite = %+v", o)
	}
	if o := d.Read(5, 200); o.Transfer || o.Invalidations != 0 {
		t.Errorf("owner reread = %+v", o)
	}
}

func TestDirectoryWriteAfterOwnership(t *testing.T) {
	d := NewDirectory(32)
	d.Write(0, 64)
	o := d.Write(1, 64)
	if !o.Transfer || o.FromCore != 0 || o.Invalidations != 1 {
		t.Errorf("ownership steal = %+v", o)
	}
}

func TestDirectoryRange(t *testing.T) {
	d := NewDirectory(32)
	// Core 0 reads 8 lines; core 1 writes them all: 8 invalidations.
	d.RangeRead(0, 0, 64, 4) // 256 bytes = 8 lines
	o := d.RangeWrite(1, 0, 64, 4)
	if o.Invalidations != 8 {
		t.Errorf("range write invalidations = %d, want 8", o.Invalidations)
	}
	// Core 2 range-reads dirty lines: transfer flagged.
	o = d.RangeRead(2, 0, 64, 4)
	if !o.Transfer {
		t.Error("range read of dirty lines should transfer")
	}
	if o := d.RangeRead(2, 0, 0, 4); o.Transfer || o.Invalidations != 0 {
		t.Error("empty range should be silent")
	}
}

// Property: hits+misses == accesses for random access streams, and a
// repeated address inside one scope always hits.
func TestScopedProperties(t *testing.T) {
	f := func(addrs []uint16) bool {
		s := NewScoped(32)
		s.Enter()
		var h, m int64
		for _, a := range addrs {
			if s.Access(uint64(a)) {
				h++
			} else {
				m++
			}
		}
		hh, mm := s.Stats()
		if hh != h || mm != m || h+m != int64(len(addrs)) {
			return false
		}
		for _, a := range addrs {
			if !s.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the directory never reports more invalidations than there are
// cores that have touched the line.
func TestDirectoryInvalidationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDirectory(32)
	const cores = 8
	touched := make(map[uint64]map[int]bool)
	for i := 0; i < 2000; i++ {
		c := rng.Intn(cores)
		addr := uint64(rng.Intn(64)) * 32
		line := LineOf(addr, 32)
		if touched[line] == nil {
			touched[line] = make(map[int]bool)
		}
		var o Outcome
		if rng.Intn(2) == 0 {
			o = d.Read(c, addr)
		} else {
			o = d.Write(c, addr)
		}
		if o.Invalidations > len(touched[line]) {
			t.Fatalf("%d invalidations with only %d tourists", o.Invalidations, len(touched[line]))
		}
		touched[line][c] = true
	}
}
