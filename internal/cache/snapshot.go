package cache

import (
	"sort"

	"simany/internal/snap"
)

// Snapshot appends the scoped L1's state in canonical form: present lines
// sorted ascending, so identical cache state always produces identical
// bytes (required by the kernel's replay-verified restore).
func (s *Scoped) Snapshot(enc *snap.Encoder) {
	enc.Varint(int64(s.depth))
	enc.Varint(s.hits)
	enc.Varint(s.misses)
	lines := make([]uint64, 0, len(s.present))
	for l := range s.present {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	enc.Uvarint(uint64(len(lines)))
	for _, l := range lines {
		enc.Uvarint(l)
	}
}

// Restore implements the inverse of Snapshot.
func (s *Scoped) Restore(dec *snap.Decoder) error {
	d, err := dec.Varint()
	if err != nil {
		return err
	}
	s.depth = int(d)
	if s.hits, err = dec.Varint(); err != nil {
		return err
	}
	if s.misses, err = dec.Varint(); err != nil {
		return err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	clear(s.present)
	if n > 0 && s.present == nil {
		s.present = make(map[uint64]struct{}, n)
	}
	for i := uint64(0); i < n; i++ {
		l, err := dec.Uvarint()
		if err != nil {
			return err
		}
		s.present[l] = struct{}{}
	}
	return nil
}

// Snapshot appends the L2's state in canonical (sorted) form.
func (l *L2) Snapshot(enc *snap.Encoder) {
	enc.Varint(l.hits)
	enc.Varint(l.misses)
	lines := make([]uint64, 0, len(l.present))
	for ln := range l.present {
		lines = append(lines, ln)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	enc.Uvarint(uint64(len(lines)))
	for _, ln := range lines {
		enc.Uvarint(ln)
	}
}

// Restore implements the inverse of Snapshot.
func (l *L2) Restore(dec *snap.Decoder) error {
	var err error
	if l.hits, err = dec.Varint(); err != nil {
		return err
	}
	if l.misses, err = dec.Varint(); err != nil {
		return err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	clear(l.present)
	if n > 0 && l.present == nil {
		l.present = make(map[uint64]struct{}, n)
	}
	for i := uint64(0); i < n; i++ {
		ln, err := dec.Uvarint()
		if err != nil {
			return err
		}
		l.present[ln] = struct{}{}
	}
	return nil
}
