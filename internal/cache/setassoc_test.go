package cache

import (
	"math/rand"
	"testing"
)

func TestSetAssocBasics(t *testing.T) {
	// 2 sets × 2 ways, 32B lines (128B capacity).
	c := NewSetAssoc(128, 32, 2)
	if c.Ways() != 2 || c.Sets() != 2 {
		t.Fatalf("geometry %dx%d", c.Sets(), c.Ways())
	}
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(0) {
		t.Error("warm hit expected")
	}
	if !c.Access(16) {
		t.Error("same-line hit expected")
	}
}

func TestSetAssocLRUReplacement(t *testing.T) {
	// 1 set × 2 ways: lines 0, 2, 4 map to set 0 (line addr mod 1 = 0
	// always with a single set).
	c := NewSetAssoc(64, 32, 2)
	if c.Sets() != 1 {
		t.Fatalf("sets = %d", c.Sets())
	}
	c.Access(0 * 32) // lines: [0]
	c.Access(1 * 32) // [1 0]
	c.Access(0 * 32) // [0 1] — 0 becomes MRU
	c.Access(2 * 32) // evicts LRU (1): [2 0]
	if c.Access(1 * 32) {
		t.Error("line 1 should have been evicted (it was LRU)")
	}
	if !c.Access(2 * 32) {
		t.Error("line 2 should be resident")
	}
	// Line 0 was evicted when 1 was refetched ([1 2]).
	if c.Access(0 * 32) {
		t.Error("line 0 should have been evicted")
	}
}

func TestSetAssocBeatsDirectMappedOnConflicts(t *testing.T) {
	// Two lines that conflict in a direct-mapped cache coexist in a 2-way.
	dm := NewDirectMapped(128, 32) // 4 lines
	sa := NewSetAssoc(128, 32, 2)  // 2 sets × 2 ways
	for i := 0; i < 10; i++ {
		dm.Access(0)
		dm.Access(128) // same DM index as 0
		sa.Access(0)
		sa.Access(128) // same set, different way
	}
	_, dmMiss := dm.Stats()
	_, saMiss := sa.Stats()
	if saMiss >= dmMiss {
		t.Errorf("set-assoc misses %d not below direct-mapped %d", saMiss, dmMiss)
	}
	if saMiss != 2 {
		t.Errorf("set-assoc should only cold-miss twice, got %d", saMiss)
	}
}

func TestSetAssocInvalidateAndFlush(t *testing.T) {
	c := NewSetAssoc(256, 32, 4)
	c.Access(64)
	c.InvalidateLine(LineOf(64, 32))
	if c.Access(64) {
		t.Error("invalidated line should miss")
	}
	c.InvalidateLine(LineOf(9999, 32)) // absent: no-op
	c.Flush()
	if c.Access(64) {
		t.Error("flushed cache should miss")
	}
}

func TestSetAssocDegenerateGeometry(t *testing.T) {
	// Tiny capacity still yields at least one set of `ways` ways.
	c := NewSetAssoc(8, 32, 4)
	if c.Sets() < 1 || c.Ways() != 4 {
		t.Fatalf("geometry %dx%d", c.Sets(), c.Ways())
	}
	c.Access(0)
	if !c.Access(0) {
		t.Error("single line must still hit")
	}
	// Zero/negative ways clamp to 1.
	c2 := NewSetAssoc(128, 32, 0)
	if c2.Ways() != 1 {
		t.Errorf("ways = %d", c2.Ways())
	}
}

// Property: a set-associative cache of the same capacity never has a lower
// hit count than direct-mapped on the same trace... is NOT universally true
// (Belady anomalies exist for LRU vs direct placement), so instead check
// internal consistency: hits+misses equals accesses and a repeated
// immediately-preceding address always hits.
func TestSetAssocConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewSetAssoc(512, 32, 4)
	accesses := int64(0)
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(4096))
		c.Access(addr)
		accesses++
		if rng.Intn(4) == 0 {
			if !c.Access(addr) {
				t.Fatal("immediate re-access must hit")
			}
			accesses++
		}
	}
	h, m := c.Stats()
	if h+m != accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", h, m, accesses)
	}
}
