package cache

// SetAssoc is an n-way set-associative cache with LRU replacement — the
// higher-fidelity alternative to DirectMapped for the cycle-level
// reference's L1s (§V's UNISIM configuration is associative; the
// reproduction defaults to direct-mapped and offers this model through
// cyclelevel.NewMemAssoc).
type SetAssoc struct {
	lineSize int
	ways     int
	sets     int
	// tags[set*ways+way], ordered most-recently-used first within a set.
	tags  []uint64
	valid []bool

	hits, misses int64
}

// NewSetAssoc creates a sizeBytes-capacity cache with the given
// associativity.
func NewSetAssoc(sizeBytes, lineSize, ways int) *SetAssoc {
	if lineSize <= 0 {
		lineSize = DefaultLineSize
	}
	if ways <= 0 {
		ways = 1
	}
	lines := sizeBytes / lineSize
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	return &SetAssoc{
		lineSize: lineSize,
		ways:     ways,
		sets:     sets,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
	}
}

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Access records one access to addr and reports whether it hit; the line
// becomes most-recently-used, evicting the LRU way on a miss.
func (c *SetAssoc) Access(addr uint64) bool {
	line := LineOf(addr, c.lineSize)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			// Move to MRU position.
			copy(c.tags[base+1:base+w+1], c.tags[base:base+w])
			copy(c.valid[base+1:base+w+1], c.valid[base:base+w])
			c.tags[base] = line
			c.valid[base] = true
			c.hits++
			return true
		}
	}
	// Miss: shift everything down one way, install at MRU.
	copy(c.tags[base+1:base+c.ways], c.tags[base:base+c.ways-1])
	copy(c.valid[base+1:base+c.ways], c.valid[base:base+c.ways-1])
	c.tags[base] = line
	c.valid[base] = true
	c.misses++
	return false
}

// InvalidateLine removes one line if present (coherence invalidation).
func (c *SetAssoc) InvalidateLine(line uint64) {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.valid[base+w] = false
			return
		}
	}
}

// Flush invalidates the whole cache.
func (c *SetAssoc) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Stats returns cumulative hit and miss counts.
func (c *SetAssoc) Stats() (hits, misses int64) { return c.hits, c.misses }
