package cache

// Directory is the line-granularity coherence directory used to time cache
// coherence effects. It follows an MSI-style discipline: a line is either
// shared by a set of readers or owned exclusively by one writer. The
// directory does not carry data — only the sharing state needed to charge
// invalidation and ownership-transfer delays.
//
// The cycle-level reference simulator consults it on every line; SiMany's
// validation mode ("enable the timings of cache coherence effects in
// SiMany", §V) consults it at block granularity, which is precisely the
// abstraction gap the paper measures.
type Directory struct {
	lineSize int
	lines    map[uint64]*dirLine

	invalidations int64
	transfers     int64
}

type dirLine struct {
	owner   int // exclusive writer, -1 if none
	sharers map[int]struct{}
}

// Outcome summarizes the coherence actions triggered by an access; the
// caller converts them into virtual-time delays.
type Outcome struct {
	// Invalidations is the number of remote copies that had to be
	// invalidated.
	Invalidations int
	// Transfer reports whether the line had to be fetched from a remote
	// owner's cache (dirty transfer) rather than from memory.
	Transfer bool
	// FromCore is the previous exclusive owner when Transfer is true,
	// otherwise -1. It lets the caller charge distance-dependent costs.
	FromCore int
}

// NewDirectory creates a coherence directory.
func NewDirectory(lineSize int) *Directory {
	if lineSize <= 0 {
		lineSize = DefaultLineSize
	}
	return &Directory{lineSize: lineSize, lines: make(map[uint64]*dirLine)}
}

func (d *Directory) line(l uint64) *dirLine {
	dl, ok := d.lines[l]
	if !ok {
		dl = &dirLine{owner: -1, sharers: make(map[int]struct{})}
		d.lines[l] = dl
	}
	return dl
}

// Read records a read of addr by core and returns the coherence outcome.
func (d *Directory) Read(core int, addr uint64) Outcome {
	return d.ReadLine(core, LineOf(addr, d.lineSize))
}

// ReadLine is Read on an explicit line address.
func (d *Directory) ReadLine(core int, line uint64) Outcome {
	dl := d.line(line)
	out := Outcome{FromCore: -1}
	if dl.owner >= 0 && dl.owner != core {
		// Dirty in a remote cache: owner must write back / forward.
		out.Transfer = true
		out.FromCore = dl.owner
		d.transfers++
		dl.sharers[dl.owner] = struct{}{}
		dl.owner = -1
	} else if dl.owner == core {
		return out // already exclusive, silent hit
	}
	dl.sharers[core] = struct{}{}
	return out
}

// Write records a write of addr by core and returns the coherence outcome.
func (d *Directory) Write(core int, addr uint64) Outcome {
	return d.WriteLine(core, LineOf(addr, d.lineSize))
}

// WriteLine is Write on an explicit line address.
func (d *Directory) WriteLine(core int, line uint64) Outcome {
	dl := d.line(line)
	out := Outcome{FromCore: -1}
	if dl.owner == core {
		return out // already exclusive
	}
	if dl.owner >= 0 {
		out.Transfer = true
		out.FromCore = dl.owner
		out.Invalidations = 1
		d.transfers++
		d.invalidations++
	}
	for s := range dl.sharers {
		if s != core {
			out.Invalidations++
			d.invalidations++
		}
	}
	clear(dl.sharers)
	dl.owner = core
	return out
}

// RangeWrite records a block write of n elements of elem bytes at base by
// core, visiting each covered line, and returns the aggregate outcome (the
// abstract per-block variant used by SiMany's validation mode should call
// this once per block; the cycle-level simulator calls WriteLine per line).
func (d *Directory) RangeWrite(core int, base uint64, n int64, elem int) Outcome {
	agg := Outcome{FromCore: -1}
	if n <= 0 {
		return agg
	}
	if elem <= 0 {
		elem = 1
	}
	first := LineOf(base, d.lineSize)
	last := LineOf(base+uint64(n)*uint64(elem)-1, d.lineSize)
	for line := first; line <= last; line++ {
		o := d.WriteLine(core, line)
		agg.Invalidations += o.Invalidations
		if o.Transfer {
			agg.Transfer = true
			agg.FromCore = o.FromCore
		}
	}
	return agg
}

// RangeRead is the block-read counterpart of RangeWrite.
func (d *Directory) RangeRead(core int, base uint64, n int64, elem int) Outcome {
	agg := Outcome{FromCore: -1}
	if n <= 0 {
		return agg
	}
	if elem <= 0 {
		elem = 1
	}
	first := LineOf(base, d.lineSize)
	last := LineOf(base+uint64(n)*uint64(elem)-1, d.lineSize)
	for line := first; line <= last; line++ {
		o := d.ReadLine(core, line)
		agg.Invalidations += o.Invalidations
		if o.Transfer {
			agg.Transfer = true
			agg.FromCore = o.FromCore
		}
	}
	return agg
}

// Stats returns cumulative invalidation and transfer counts.
func (d *Directory) Stats() (invalidations, transfers int64) {
	return d.invalidations, d.transfers
}
