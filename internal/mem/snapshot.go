package mem

import (
	"fmt"
	"sort"

	"simany/internal/snap"
)

// Checkpoint support for the address allocator and the cell store. The
// allocator's bump cursors round-trip exactly. Cells are only structurally
// serialized (placement, lock state, waiter counts): their payloads are
// live Go values with no codec, so a checkpoint taken with live cells is
// never decode-mode — the runtime's DecodeSafe veto forces verified
// replay, where these bytes serve as comparison material, not as input.

// Snapshot appends the allocator's cursors: the global bump pointer and
// the per-core arena pointers in core order.
func (a *Allocator) Snapshot(enc *snap.Encoder) {
	a.mu.Lock()
	defer a.mu.Unlock()
	enc.Uvarint(a.next)
	cores := make([]int, 0, len(a.arenas))
	for c := range a.arenas {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	enc.Uvarint(uint64(len(cores)))
	for _, c := range cores {
		enc.Varint(int64(c))
		enc.Uvarint(*a.arenas[c])
	}
}

// Restore implements the inverse of Snapshot.
func (a *Allocator) Restore(dec *snap.Decoder) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	if a.next, err = dec.Uvarint(); err != nil {
		return err
	}
	n, err := dec.Uvarint()
	if err != nil {
		return err
	}
	a.arenas = nil
	if n > 0 {
		a.arenas = make(map[int]*uint64, n)
	}
	for i := uint64(0); i < n; i++ {
		c, err := dec.Varint()
		if err != nil {
			return err
		}
		v, err := dec.Uvarint()
		if err != nil {
			return err
		}
		p := v
		a.arenas[int(c)] = &p
	}
	return nil
}

// Snapshot appends the store's id cursors and the structural state of
// every cell (sorted by id): placement, size, address, lock state and
// pending-waiter count. Payloads are not serialized.
func (s *CellStore) Snapshot(enc *snap.Encoder) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc.Uvarint(s.next)
	enc.Bool(s.arenas != nil)
	if s.arenas != nil {
		cores := make([]int, 0, len(s.arenas))
		for c := range s.arenas {
			cores = append(cores, c)
		}
		sort.Ints(cores)
		enc.Uvarint(uint64(len(cores)))
		for _, c := range cores {
			enc.Varint(int64(c))
			enc.Uvarint(s.arenas[c])
		}
	}
	ids := make([]uint64, 0, len(s.cells))
	for id := range s.cells {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		c := s.cells[id]
		enc.Uvarint(c.id)
		enc.Varint(int64(c.owner))
		enc.Varint(int64(c.home))
		enc.Varint(int64(c.size))
		enc.Uvarint(c.addr)
		enc.Bool(c.locked)
		enc.Uvarint(c.lockHolder)
		enc.Uvarint(uint64(len(c.waiters)))
	}
}

// Restore implements the inverse of Snapshot for the cursors. A
// checkpoint holding live cells cannot be decode-restored (payloads are
// opaque), so a non-zero cell count is rejected; replay-mode restore never
// calls this.
func (s *CellStore) Restore(dec *snap.Decoder) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.next, err = dec.Uvarint(); err != nil {
		return err
	}
	hasArenas, err := dec.Bool()
	if err != nil {
		return err
	}
	s.arenas = nil
	if hasArenas {
		n, err := dec.Uvarint()
		if err != nil {
			return err
		}
		s.arenas = make(map[int]uint64, n)
		for i := uint64(0); i < n; i++ {
			c, err := dec.Varint()
			if err != nil {
				return err
			}
			v, err := dec.Uvarint()
			if err != nil {
				return err
			}
			s.arenas[int(c)] = v
		}
	}
	ncells, err := dec.Uvarint()
	if err != nil {
		return err
	}
	if ncells > 0 {
		return fmt.Errorf("mem: %d live cells in a decode-mode checkpoint (cell payloads are not serializable)", ncells)
	}
	return nil
}
