package mem

// Cells are the distributed-memory shared-data objects of §IV: structures
// ("bearing similarity to C structures") referenced through Links,
// generalized pointers that can designate cells stored locally or
// remotely. The run-time system (package rt) moves cell contents between
// cores with DATA_REQUEST/DATA_RESPONSE messages and locks a cell for the
// duration of each access; this file provides the simulator-side store and
// the lock/ownership bookkeeping the runtime drives.

import "sync"

// Link is a generalized pointer to a cell.
type Link struct {
	id uint64
}

// Nil reports whether the link references no cell.
func (l Link) Nil() bool { return l.id == 0 }

// ID returns the raw cell identifier (0 for the nil link).
func (l Link) ID() uint64 { return l.id }

// Cell is one run-time-managed shared object.
type Cell struct {
	id    uint64
	owner int // core currently holding the data
	home  int // creating core; immutable, the cell's arbitration point
	size  int // payload bytes (drives message sizes)
	addr  uint64
	//simany:derived live Go payload; Restore refuses containers with live cells (decode asymmetry)
	data any

	locked     bool
	lockHolder uint64 // task ID holding the lock
	// waiters are pending remote requests deferred until unlock; the
	// runtime drains them.
	waiters []any
}

// Owner returns the core currently owning the cell data.
func (c *Cell) Owner() int { return c.owner }

// Home returns the core that created the cell. It never changes, so the
// sharded runtime uses it as the cell's fixed arbitration point: all lock
// and transfer decisions for the cell are made in the home core's shard.
func (c *Cell) Home() int { return c.home }

// Size returns the payload size in bytes.
func (c *Cell) Size() int { return c.size }

// Addr returns the simulated base address of the cell payload.
func (c *Cell) Addr() uint64 { return c.addr }

// Data returns the payload.
func (c *Cell) Data() any { return c.data }

// SetData replaces the payload.
func (c *Cell) SetData(d any) { c.data = d }

// Locked reports whether the cell is locked.
func (c *Cell) Locked() bool { return c.locked }

// LockHolder returns the task holding the lock (0 if unlocked).
func (c *Cell) LockHolder() uint64 {
	if !c.locked {
		return 0
	}
	return c.lockHolder
}

// Lock marks the cell locked by task t. It panics if already locked: the
// runtime must serialize lock acquisition.
func (c *Cell) Lock(t uint64) {
	if c.locked {
		panic("mem: cell already locked")
	}
	c.locked = true
	c.lockHolder = t
}

// Unlock releases the lock held by task t.
func (c *Cell) Unlock(t uint64) {
	if !c.locked || c.lockHolder != t {
		panic("mem: unlock by non-holder")
	}
	c.locked = false
	c.lockHolder = 0
}

// SetOwner moves the data to another core.
func (c *Cell) SetOwner(core int) { c.owner = core }

// PushWaiter queues an opaque deferred request.
func (c *Cell) PushWaiter(w any) { c.waiters = append(c.waiters, w) }

// PopWaiter removes and returns the oldest deferred request.
func (c *Cell) PopWaiter() (any, bool) {
	if len(c.waiters) == 0 {
		return nil, false
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	return w, true
}

// NumWaiters returns the number of deferred requests.
func (c *Cell) NumWaiters() int { return len(c.waiters) }

// CellStore is the global registry of cells for one simulation. The
// registry map is guarded by a read-write mutex (task bodies on different
// shards create and resolve cells concurrently); the cells themselves are
// protected by the runtime's home-shard arbitration, not by the store.
type CellStore struct {
	mu    sync.RWMutex
	cells map[uint64]*Cell
	next  uint64
	//simany:derived backpointer to the address allocator, which snapshots itself
	alloc *Allocator

	// arenas, when enabled, gives each creating core a private id range so
	// cell ids and addresses are deterministic under parallel execution.
	arenas map[int]uint64
}

// NewCellStore creates an empty store using alloc for simulated addresses.
func NewCellStore(alloc *Allocator) *CellStore {
	return &CellStore{cells: make(map[uint64]*Cell), alloc: alloc}
}

// EnableArenas switches New to per-creator id and address arenas. The
// sharded runtime enables it so that cells created concurrently on
// different shards get ids and addresses that depend only on the creating
// core's own allocation sequence. (The sequential engine keeps the
// original global sequence for bit-for-bit compatibility.)
func (s *CellStore) EnableArenas() {
	s.mu.Lock()
	s.arenas = make(map[int]uint64)
	s.mu.Unlock()
}

// New creates a cell of size bytes owned (and homed) by core, holding
// data, and returns a link to it.
func (s *CellStore) New(owner int, size int, data any) Link {
	s.mu.Lock()
	var id uint64
	if s.arenas != nil {
		s.arenas[owner]++
		id = arenaStride*uint64(owner+1) + s.arenas[owner]
	} else {
		s.next++
		id = s.next
	}
	var addr uint64
	if s.arenas != nil {
		addr = s.alloc.AllocCore(owner, int64(size))
	} else {
		addr = s.alloc.Alloc(int64(size))
	}
	s.cells[id] = &Cell{
		id:    id,
		owner: owner,
		home:  owner,
		size:  size,
		addr:  addr,
		data:  data,
	}
	s.mu.Unlock()
	return Link{id: id}
}

// Get resolves a link. It panics on the nil link or an unknown id, which
// indicates a program bug.
func (s *CellStore) Get(l Link) *Cell {
	s.mu.RLock()
	c, ok := s.cells[l.id]
	s.mu.RUnlock()
	if !ok {
		panic("mem: dereference of invalid link")
	}
	return c
}

// Len returns the number of cells.
func (s *CellStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cells)
}
