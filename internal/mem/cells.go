package mem

// Cells are the distributed-memory shared-data objects of §IV: structures
// ("bearing similarity to C structures") referenced through Links,
// generalized pointers that can designate cells stored locally or
// remotely. The run-time system (package rt) moves cell contents between
// cores with DATA_REQUEST/DATA_RESPONSE messages and locks a cell for the
// duration of each access; this file provides the simulator-side store and
// the lock/ownership bookkeeping the runtime drives.

// Link is a generalized pointer to a cell.
type Link struct {
	id uint64
}

// Nil reports whether the link references no cell.
func (l Link) Nil() bool { return l.id == 0 }

// ID returns the raw cell identifier (0 for the nil link).
func (l Link) ID() uint64 { return l.id }

// Cell is one run-time-managed shared object.
type Cell struct {
	id    uint64
	owner int // core currently holding the data
	size  int // payload bytes (drives message sizes)
	addr  uint64
	data  any // the actual Go payload

	locked     bool
	lockHolder uint64 // task ID holding the lock
	// waiters are pending remote requests deferred until unlock; the
	// runtime drains them.
	waiters []any
}

// Owner returns the core currently owning the cell data.
func (c *Cell) Owner() int { return c.owner }

// Size returns the payload size in bytes.
func (c *Cell) Size() int { return c.size }

// Addr returns the simulated base address of the cell payload.
func (c *Cell) Addr() uint64 { return c.addr }

// Data returns the payload.
func (c *Cell) Data() any { return c.data }

// SetData replaces the payload.
func (c *Cell) SetData(d any) { c.data = d }

// Locked reports whether the cell is locked.
func (c *Cell) Locked() bool { return c.locked }

// LockHolder returns the task holding the lock (0 if unlocked).
func (c *Cell) LockHolder() uint64 {
	if !c.locked {
		return 0
	}
	return c.lockHolder
}

// Lock marks the cell locked by task t. It panics if already locked: the
// runtime must serialize lock acquisition.
func (c *Cell) Lock(t uint64) {
	if c.locked {
		panic("mem: cell already locked")
	}
	c.locked = true
	c.lockHolder = t
}

// Unlock releases the lock held by task t.
func (c *Cell) Unlock(t uint64) {
	if !c.locked || c.lockHolder != t {
		panic("mem: unlock by non-holder")
	}
	c.locked = false
	c.lockHolder = 0
}

// SetOwner moves the data to another core.
func (c *Cell) SetOwner(core int) { c.owner = core }

// PushWaiter queues an opaque deferred request.
func (c *Cell) PushWaiter(w any) { c.waiters = append(c.waiters, w) }

// PopWaiter removes and returns the oldest deferred request.
func (c *Cell) PopWaiter() (any, bool) {
	if len(c.waiters) == 0 {
		return nil, false
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	return w, true
}

// NumWaiters returns the number of deferred requests.
func (c *Cell) NumWaiters() int { return len(c.waiters) }

// CellStore is the global registry of cells for one simulation.
type CellStore struct {
	cells map[uint64]*Cell
	next  uint64
	alloc *Allocator
}

// NewCellStore creates an empty store using alloc for simulated addresses.
func NewCellStore(alloc *Allocator) *CellStore {
	return &CellStore{cells: make(map[uint64]*Cell), alloc: alloc}
}

// New creates a cell of size bytes owned by core, holding data, and
// returns a link to it.
func (s *CellStore) New(owner int, size int, data any) Link {
	s.next++
	c := &Cell{
		id:    s.next,
		owner: owner,
		size:  size,
		addr:  s.alloc.Alloc(int64(size)),
		data:  data,
	}
	s.cells[c.id] = c
	return Link{id: c.id}
}

// Get resolves a link. It panics on the nil link or an unknown id, which
// indicates a program bug.
func (s *CellStore) Get(l Link) *Cell {
	c, ok := s.cells[l.id]
	if !ok {
		panic("mem: dereference of invalid link")
	}
	return c
}

// Len returns the number of cells.
func (s *CellStore) Len() int { return len(s.cells) }
