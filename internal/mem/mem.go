// Package mem implements the simulator's memory organizations (§III
// "Architecture Variability", §V "Architecture Configuration"):
//
//   - Shared: every core accesses uniform shared memory banks with a common
//     low latency (10 cycles) behind its private pessimistic L1; cache
//     coherence delays can optionally be timed through a directory (they
//     are ignored in the paper's default shared-memory architecture and
//     enabled for the cycle-level validation).
//   - Distributed: no hardware-coherent shared memory; each core has a
//     private L2 (10-cycle), and shared data live in run-time-managed
//     cells moved between cores by the task runtime (package rt).
//
// The package also provides the bump Allocator that gives benchmark data
// structures their simulated addresses.
package mem

import (
	"sync"

	"simany/internal/cache"
	"simany/internal/core"
	"simany/internal/network"
	"simany/internal/vtime"
)

// Allocator hands out simulated addresses. Address 0 is never returned.
// It is safe for concurrent use; allocations made on behalf of a specific
// core should go through AllocCore so the returned addresses stay
// deterministic under the sharded execution engine.
type Allocator struct {
	mu   sync.Mutex
	next uint64

	arenas map[int]*uint64 // per-core bump pointers (AllocCore)
}

// arenaStride separates per-core address arenas; no simulated workload
// comes near 2^40 bytes per core.
const arenaStride = uint64(1) << 40

// NewAllocator creates an allocator.
func NewAllocator() *Allocator {
	return &Allocator{next: cache.DefaultLineSize}
}

// Alloc reserves size bytes aligned to a cache line and returns the base
// address. Concurrent callers receive disjoint ranges, but the assignment
// order (and thus the addresses) depends on host scheduling — use
// AllocCore from simulated task code.
func (a *Allocator) Alloc(size int64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if size <= 0 {
		size = 1
	}
	base := a.next
	lines := (uint64(size) + cache.DefaultLineSize - 1) / cache.DefaultLineSize
	a.next += lines * cache.DefaultLineSize
	return base
}

// AllocCore reserves size bytes in core's private address arena. Each
// core's allocation sequence is deterministic regardless of how other
// cores' allocations interleave, which keeps cache behaviour (and thus
// timing) reproducible under parallel execution.
func (a *Allocator) AllocCore(core int, size int64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if size <= 0 {
		size = 1
	}
	if a.arenas == nil {
		a.arenas = make(map[int]*uint64)
	}
	p, ok := a.arenas[core]
	if !ok {
		base := arenaStride * uint64(core+1)
		p = &base
		a.arenas[core] = p
	}
	base := *p
	lines := (uint64(size) + cache.DefaultLineSize - 1) / cache.DefaultLineSize
	*p += lines * cache.DefaultLineSize
	return base
}

// Shared is the shared-memory system of §V: private scoped L1 with 1-cycle
// latency, uniform 10-cycle shared banks, optional coherence timing.
type Shared struct {
	// HitLat is the L1 hit latency (1 cycle).
	HitLat vtime.Time
	// BankLat is the uniform shared-bank latency (10 cycles).
	BankLat vtime.Time
	// Dir, when non-nil, times cache-coherence effects (invalidations and
	// dirty transfers); nil reproduces the paper's optimistic
	// shared-memory architecture where coherence delays are not taken
	// into account.
	Dir *cache.Directory
	// InvLat is the latency charged per remote invalidation.
	InvLat vtime.Time
	// Net, when set together with Dir, prices dirty transfers with the
	// uncontended network distance between owner and requester.
	Net *network.Model
	// ScaleL1WithSpeed mimics SiMany's polymorphic implementation where
	// L1 speed is proportional to core speed; the UNISIM reference keeps
	// L1 speed constant (§VI explains the resulting offset in Fig. 6).
	ScaleL1WithSpeed bool
}

// NewShared returns the paper's default shared-memory configuration.
func NewShared() *Shared {
	return &Shared{
		HitLat:           vtime.CyclesInt(1),
		BankLat:          vtime.CyclesInt(10),
		InvLat:           vtime.CyclesInt(10),
		ScaleL1WithSpeed: true,
	}
}

// WithCoherence enables coherence-effect timing (used for the cycle-level
// validation runs) and returns s.
func (s *Shared) WithCoherence(net *network.Model) *Shared {
	s.Dir = cache.NewDirectory(cache.DefaultLineSize)
	s.Net = net
	return s
}

var _ core.MemSystem = (*Shared)(nil)

// ShardSafe implements core.ShardSafeMem: without a coherence directory,
// Access only touches the accessing core's private L1. The directory is
// global mutable state, so coherence-mode runs stay on the sequential
// engine.
func (s *Shared) ShardSafe() bool { return s.Dir == nil }

// MemStateless implements core.StatelessMem: without a coherence
// directory every timing input lives in the per-core L1 the kernel
// snapshots itself, so decode-mode checkpoints need nothing from Shared.
// The directory is unserialized global state, so coherence-mode runs fall
// back to replay-mode checkpoints.
func (s *Shared) MemStateless() bool { return s.Dir == nil }

// Access implements core.MemSystem.
func (s *Shared) Access(c *core.Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time {
	hits, misses := c.L1().Range(base, n, elem)
	hitLat := s.HitLat
	if s.ScaleL1WithSpeed && c.Speed != 1.0 {
		hitLat = hitLat.Scale(1.0 / c.Speed)
	}
	d := hitLat*vtime.Time(hits) + (hitLat+s.BankLat)*vtime.Time(misses)
	if s.Dir != nil {
		// Block-granularity coherence timing: this is SiMany's abstract
		// validation-mode model; the cycle-level simulator walks lines
		// individually instead.
		var o cache.Outcome
		if write {
			o = s.Dir.RangeWrite(c.ID, base, n, elem)
		} else {
			o = s.Dir.RangeRead(c.ID, base, n, elem)
		}
		d += s.InvLat * vtime.Time(o.Invalidations)
		if o.Transfer {
			d += s.BankLat
			if s.Net != nil && o.FromCore >= 0 {
				d += s.Net.MinLatency(o.FromCore, c.ID, cache.DefaultLineSize)
			}
		}
	}
	return d
}

// Distributed is the local memory system of the distributed-memory
// architecture: a scoped L1 in front of the core's private L2 (10-cycle);
// L2 misses go to the core's local memory. Remote (cell) traffic is handled
// by the task runtime, not here.
type Distributed struct {
	// HitLat is the L1 hit latency (1 cycle).
	HitLat vtime.Time
	// L2Lat is the private L2 latency (10 cycles, §V).
	L2Lat vtime.Time
	// LocalMemLat is the latency of the core-local memory behind the L2.
	LocalMemLat vtime.Time
	// ScaleL1WithSpeed scales L1 latency with core speed as in Shared.
	ScaleL1WithSpeed bool
}

// NewDistributed returns the paper's distributed-memory configuration.
func NewDistributed() *Distributed {
	return &Distributed{
		HitLat:           vtime.CyclesInt(1),
		L2Lat:            vtime.CyclesInt(10),
		LocalMemLat:      vtime.CyclesInt(30),
		ScaleL1WithSpeed: true,
	}
}

var _ core.MemSystem = (*Distributed)(nil)

// ShardSafe implements core.ShardSafeMem: accesses only touch the
// accessing core's private L1 and L2.
func (m *Distributed) ShardSafe() bool { return true }

// MemStateless implements core.StatelessMem: all state is in the per-core
// L1/L2 models the kernel snapshots itself.
func (m *Distributed) MemStateless() bool { return true }

// Access implements core.MemSystem.
func (m *Distributed) Access(c *core.Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time {
	hits, misses := c.L1().Range(base, n, elem)
	hitLat := m.HitLat
	if m.ScaleL1WithSpeed && c.Speed != 1.0 {
		hitLat = hitLat.Scale(1.0 / c.Speed)
	}
	d := hitLat * vtime.Time(hits)
	if misses == 0 {
		return d
	}
	// L1 misses go to the private L2 at line granularity.
	if elem <= 0 {
		elem = 1
	}
	perLine := int64(cache.DefaultLineSize / elem)
	if perLine < 1 {
		perLine = 1
	}
	addr := base
	var l2Hits, l2Misses int64
	for i := int64(0); i < misses; i++ {
		if c.L2().Access(addr) {
			l2Hits++
		} else {
			l2Misses++
		}
		addr += cache.DefaultLineSize
	}
	d += (hitLat + m.L2Lat) * vtime.Time(l2Hits)
	d += (hitLat + m.L2Lat + m.LocalMemLat) * vtime.Time(l2Misses)
	return d
}
