package mem

import (
	"testing"

	"simany/internal/cache"
	"simany/internal/core"
	"simany/internal/network"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func TestAllocatorAlignmentAndDisjoint(t *testing.T) {
	a := NewAllocator()
	p := a.Alloc(100)
	q := a.Alloc(1)
	r := a.Alloc(64)
	if p == 0 {
		t.Error("address 0 must not be allocated")
	}
	if p%cache.DefaultLineSize != 0 || q%cache.DefaultLineSize != 0 || r%cache.DefaultLineSize != 0 {
		t.Error("allocations not line-aligned")
	}
	if q < p+100 {
		t.Error("allocations overlap")
	}
	if r < q+1 {
		t.Error("allocations overlap")
	}
	if a.Alloc(0) == a.Alloc(0) {
		t.Error("zero-size allocations must still be distinct")
	}
}

// memKernel builds a one- or two-core machine with the given MemSystem.
func memKernel(n int, ms core.MemSystem) *core.Kernel {
	return core.New(core.Config{Topo: topology.Mesh(n), Mem: ms, Seed: 1})
}

// measure runs fn in a task on core 0 and returns the memory-time spent.
func measure(t *testing.T, k *core.Kernel, fn func(e *core.Env)) vtime.Time {
	t.Helper()
	k.InjectTask(0, "m", fn, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k.Core(0).Stats().MemTime
}

func TestSharedHitMissLatency(t *testing.T) {
	s := NewShared()
	k := memKernel(1, s)
	got := measure(t, k, func(e *core.Env) {
		e.EnterScope()
		// 8 accesses of 8 bytes in 2 lines: 2 misses, 6 hits.
		e.Read(0, 8, 8)
		e.LeaveScope()
	})
	want := 6*s.HitLat + 2*(s.HitLat+s.BankLat)
	if got != want {
		t.Errorf("shared access time = %v, want %v", got, want)
	}
}

func TestSharedScopeDiscard(t *testing.T) {
	s := NewShared()
	k := memKernel(1, s)
	got := measure(t, k, func(e *core.Env) {
		e.EnterScope()
		e.Read(0, 4, 8) // 1 line: 1 miss, 3 hits
		e.LeaveScope()
		e.EnterScope()
		e.Read(0, 4, 8) // same line misses again: pessimistic model
		e.LeaveScope()
	})
	want := 2 * (3*s.HitLat + 1*(s.HitLat+s.BankLat))
	if got != want {
		t.Errorf("scoped access time = %v, want %v", got, want)
	}
}

func TestSharedL1SpeedScaling(t *testing.T) {
	s := NewShared()
	topo := topology.Mesh(2)
	k := core.New(core.Config{Topo: topo, Mem: s, Speeds: []float64{0.5, 1.0}, Seed: 1})
	k.InjectTask(0, "slow", func(e *core.Env) {
		e.EnterScope()
		e.Read(0, 8, 8)
		e.LeaveScope()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 6 hits at 2cy (scaled 1/0.5) + 2 misses at (2+10)cy.
	want := 6*vtime.CyclesInt(2) + 2*(vtime.CyclesInt(2)+s.BankLat)
	if got := k.Core(0).Stats().MemTime; got != want {
		t.Errorf("scaled L1 time = %v, want %v", got, want)
	}

	// With scaling disabled (cycle-level behaviour), the L1 stays 1cy.
	s2 := NewShared()
	s2.ScaleL1WithSpeed = false
	k2 := core.New(core.Config{Topo: topo, Mem: s2, Speeds: []float64{0.5, 1.0}, Seed: 1})
	k2.InjectTask(0, "slow", func(e *core.Env) {
		e.EnterScope()
		e.Read(0, 8, 8)
		e.LeaveScope()
	}, nil, 0)
	if _, err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	want2 := 6*s2.HitLat + 2*(s2.HitLat+s2.BankLat)
	if got := k2.Core(0).Stats().MemTime; got != want2 {
		t.Errorf("unscaled L1 time = %v, want %v", got, want2)
	}
}

func TestSharedCoherenceCharged(t *testing.T) {
	topo := topology.Mesh(2)
	net := network.New(topo, network.DefaultParams())
	s := NewShared().WithCoherence(net)
	k := core.New(core.Config{Topo: topo, Mem: s, Seed: 1})
	var rdTime, wrTime vtime.Time
	k.InjectTask(0, "reader", func(e *core.Env) {
		e.EnterScope()
		e.Read(0, 4, 8)
		rdTime = k.Core(0).Stats().MemTime
		e.LeaveScope()
	}, nil, 0)
	k.InjectTask(1, "writer", func(e *core.Env) {
		// Runs after the reader finishes (same virtual order is not
		// guaranteed, but the directory is wall-order based; inject with
		// compute to order them).
		e.ComputeCycles(1000)
		e.EnterScope()
		before := k.Core(1).Stats().MemTime
		e.Write(0, 4, 8)
		wrTime = k.Core(1).Stats().MemTime - before
		e.LeaveScope()
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The writer must pay at least one invalidation beyond the plain miss.
	plain := 3*s.HitLat + (s.HitLat + s.BankLat)
	if wrTime < plain+s.InvLat {
		t.Errorf("write with sharer cost %v, want >= %v", wrTime, plain+s.InvLat)
	}
	if rdTime != plain {
		t.Errorf("cold read cost %v, want %v", rdTime, plain)
	}
}

func TestDistributedL2Path(t *testing.T) {
	m := NewDistributed()
	k := memKernel(1, m)
	got := measure(t, k, func(e *core.Env) {
		e.EnterScope()
		e.Read(0, 8, 8) // 2 lines: L1 misses -> L2 cold misses
		e.LeaveScope()
		e.EnterScope()
		e.Read(0, 8, 8) // L1 discarded; L2 now warm
		e.LeaveScope()
	})
	cold := 6*m.HitLat + 2*(m.HitLat+m.L2Lat+m.LocalMemLat)
	warm := 6*m.HitLat + 2*(m.HitLat+m.L2Lat)
	if got != cold+warm {
		t.Errorf("distributed access time = %v, want %v", got, cold+warm)
	}
}

func TestCellStoreBasics(t *testing.T) {
	st := NewCellStore(NewAllocator())
	l := st.New(3, 128, []int{1, 2, 3})
	if l.Nil() {
		t.Fatal("new link is nil")
	}
	c := st.Get(l)
	if c.Owner() != 3 || c.Size() != 128 {
		t.Errorf("cell = owner %d size %d", c.Owner(), c.Size())
	}
	if c.Addr() == 0 {
		t.Error("cell has no address")
	}
	if got := c.Data().([]int); len(got) != 3 {
		t.Error("payload lost")
	}
	c.SetData([]int{9})
	if got := c.Data().([]int); got[0] != 9 {
		t.Error("SetData lost")
	}
	c.SetOwner(5)
	if c.Owner() != 5 {
		t.Error("SetOwner lost")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestCellLockProtocol(t *testing.T) {
	st := NewCellStore(NewAllocator())
	l := st.New(0, 8, nil)
	c := st.Get(l)
	if c.Locked() || c.LockHolder() != 0 {
		t.Error("fresh cell locked")
	}
	c.Lock(42)
	if !c.Locked() || c.LockHolder() != 42 {
		t.Error("lock not taken")
	}
	c.PushWaiter("w1")
	c.PushWaiter("w2")
	if c.NumWaiters() != 2 {
		t.Error("waiters lost")
	}
	w, ok := c.PopWaiter()
	if !ok || w.(string) != "w1" {
		t.Error("waiter order wrong")
	}
	c.Unlock(42)
	if c.Locked() {
		t.Error("unlock failed")
	}
	if _, ok := c.PopWaiter(); !ok {
		t.Error("second waiter lost")
	}
	if _, ok := c.PopWaiter(); ok {
		t.Error("phantom waiter")
	}
}

func TestCellLockPanics(t *testing.T) {
	st := NewCellStore(NewAllocator())
	c := st.Get(st.New(0, 8, nil))
	c.Lock(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double lock must panic")
			}
		}()
		c.Lock(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unlock by non-holder must panic")
			}
		}()
		c.Unlock(99)
	}()
}

func TestGetInvalidLinkPanics(t *testing.T) {
	st := NewCellStore(NewAllocator())
	defer func() {
		if recover() == nil {
			t.Error("nil link dereference must panic")
		}
	}()
	st.Get(Link{})
}
