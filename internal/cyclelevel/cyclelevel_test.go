package cyclelevel

import (
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/network"
	"simany/internal/rt"
	"simany/internal/topology"
	"simany/internal/vtime"
)

func TestMemRetainsAcrossScopes(t *testing.T) {
	// Unlike SiMany's pessimistic L1, the cycle-level D-cache keeps lines
	// across function boundaries.
	topo := topology.Mesh(1)
	net := network.New(topo, network.DefaultParams())
	m := NewMem(1, net)
	k := core.New(core.Config{Topo: topo, Mem: m, Seed: 1})
	var first, second vtime.Time
	k.InjectTask(0, "r", func(e *core.Env) {
		base := k.Core(0).Stats().MemTime
		e.Read(0, 8, 8)
		first = k.Core(0).Stats().MemTime - base
		e.EnterScope()
		e.LeaveScope() // would flush SiMany's L1; must not affect this one
		base = k.Core(0).Stats().MemTime
		e.Read(0, 8, 8)
		second = k.Core(0).Stats().MemTime - base
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Errorf("warm access (%v) not cheaper than cold (%v)", second, first)
	}
	// Warm: pure hits.
	if second != vtime.CyclesInt(8) {
		t.Errorf("warm cost = %v, want 8 hits at 1cy", second)
	}
}

func TestMemCoherenceInvalidation(t *testing.T) {
	topo := topology.Mesh(4)
	net := network.New(topo, network.DefaultParams())
	m := NewMem(4, net)
	k := core.New(core.Config{Topo: topo, Mem: m, Policy: Lockstep{}, Seed: 1})
	var writerCost vtime.Time
	k.InjectTask(0, "reader", func(e *core.Env) {
		e.Read(0, 4, 8)
	}, nil, 0)
	k.InjectTask(1, "writer", func(e *core.Env) {
		e.ComputeCycles(500) // run after the reader in virtual time
		base := k.Core(1).Stats().MemTime
		e.Write(0, 4, 8)
		writerCost = k.Core(1).Stats().MemTime - base
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Writer pays: 4 hits-worth of L1 time + bank miss + 1 invalidation.
	min := 4*m.HitLat + m.BankLat + m.InvLat
	if writerCost < min {
		t.Errorf("writer cost %v, want >= %v", writerCost, min)
	}
	inv, _ := m.Stats()
	if inv == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestInvalidatedLineMissesAgain(t *testing.T) {
	topo := topology.Mesh(2)
	net := network.New(topo, network.DefaultParams())
	m := NewMem(2, net)
	k := core.New(core.Config{Topo: topo, Mem: m, Policy: Lockstep{}, Seed: 1})
	var recost vtime.Time
	k.InjectTask(0, "reader", func(e *core.Env) {
		e.Read(0, 4, 8) // install
		e.ComputeCycles(1000)
		base := k.Core(0).Stats().MemTime
		e.Read(0, 4, 8) // must miss: writer invalidated it meanwhile
		recost = k.Core(0).Stats().MemTime - base
	}, nil, 0)
	k.InjectTask(1, "writer", func(e *core.Env) {
		e.ComputeCycles(300)
		e.Write(0, 4, 8)
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recost < 4*m.HitLat+m.BankLat {
		t.Errorf("re-read cost %v does not include a miss", recost)
	}
}

func TestNewConfigRuns(t *testing.T) {
	topo := topology.Mesh(4)
	cfg := NewConfig(topo, nil, 11)
	k := core.New(cfg)
	r := rt.New(k, mem.NewAllocator(), rt.DefaultOptions())
	sum := 0
	res, err := r.Run("root", func(e *core.Env) {
		g := r.NewGroup()
		for i := 0; i < 8; i++ {
			r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
				ce.ComputeCycles(200)
				ce.Read(uint64(1000+ce.CoreID()*64), 8, 8)
				sum++
			})
		}
		r.Join(e, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 8 {
		t.Errorf("ran %d children", sum)
	}
	if res.FinalVT <= 0 {
		t.Error("no virtual time elapsed")
	}
	if k.Policy().Name() != "cycle-level" {
		t.Errorf("policy = %s", k.Policy().Name())
	}
}

func TestLockstepOrderedHandling(t *testing.T) {
	// The cycle-level policy orders execution at annotation-block
	// granularity, so its out-of-order message fraction must be far below
	// the loosely-synchronized SiMany run of the same program.
	workload := func(cfg core.Config) core.Result {
		k := core.New(cfg)
		r := rt.New(k, mem.NewAllocator(), rt.DefaultOptions())
		res, err := r.Run("root", func(e *core.Env) {
			g := r.NewGroup()
			for i := 0; i < 12; i++ {
				r.SpawnOrRun(e, g, "c", 0, func(ce *core.Env) {
					ce.ComputeCycles(100)
					g2 := r.NewGroup()
					for j := 0; j < 2; j++ {
						r.SpawnOrRun(ce, g2, "gc", 0, func(ge *core.Env) {
							ge.ComputeCycles(50)
						})
					}
					r.Join(ce, g2)
				})
			}
			r.Join(e, g)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cl := workload(NewConfig(topology.Mesh(4), nil, 5))
	sp := workload(core.Config{
		Topo:   topology.Mesh(4),
		Policy: core.Spatial{T: vtime.CyclesInt(1000)},
		Mem:    mem.NewShared(),
		Seed:   5,
	})
	fracCL := float64(cl.OutOfOrder) / float64(cl.Handled+1)
	fracSP := float64(sp.OutOfOrder) / float64(sp.Handled+1)
	if fracCL > 0.15 {
		t.Errorf("lockstep out-of-order fraction %.3f unreasonably high", fracCL)
	}
	if fracSP > 0 && fracCL >= fracSP {
		t.Errorf("lockstep OOO (%.3f) not below loose-sync OOO (%.3f)", fracCL, fracSP)
	}
}

func TestPolymorphicL1FixedSpeed(t *testing.T) {
	// The cycle-level memory does not scale L1 latency with core speed.
	topo := topology.Mesh(2)
	net := network.New(topo, network.DefaultParams())
	m := NewMem(2, net)
	k := core.New(core.Config{Topo: topo, Mem: m, Speeds: []float64{0.5, 1}, Seed: 1})
	var cost vtime.Time
	k.InjectTask(0, "slow", func(e *core.Env) {
		e.Read(0, 8, 8)
		base := k.Core(0).Stats().MemTime
		e.Read(0, 8, 8) // warm: pure L1 hits
		cost = k.Core(0).Stats().MemTime - base
	}, nil, 0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cost != vtime.CyclesInt(8) {
		t.Errorf("warm L1 on 0.5x core = %v, want 8cy (unscaled)", cost)
	}
}

func TestNewMemAssocFewerConflictMisses(t *testing.T) {
	topo := topology.Mesh(1)
	net := network.New(topo, network.DefaultParams())
	dm := NewMem(1, net)
	sa := NewMemAssoc(1, net, 4)
	k1 := core.New(core.Config{Topo: topo, Mem: dm, Seed: 1})
	var dmTime vtime.Time
	k1.InjectTask(0, "r", func(e *core.Env) {
		for i := 0; i < 50; i++ {
			e.Read(0, 4, 8)
			e.Read(L1Size, 4, 8) // conflicts with 0 in a direct-mapped L1
		}
		dmTime = k1.Core(0).Stats().MemTime
	}, nil, 0)
	if _, err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	topo2 := topology.Mesh(1)
	k2 := core.New(core.Config{Topo: topo2, Mem: sa, Seed: 1})
	var saTime vtime.Time
	k2.InjectTask(0, "r", func(e *core.Env) {
		for i := 0; i < 50; i++ {
			e.Read(0, 4, 8)
			e.Read(L1Size, 4, 8) // different ways of the same set
		}
		saTime = k2.Core(0).Stats().MemTime
	}, nil, 0)
	if _, err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if saTime >= dmTime {
		t.Errorf("4-way L1 time %v not below direct-mapped %v on conflict trace", saTime, dmTime)
	}
}
