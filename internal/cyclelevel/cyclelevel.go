// Package cyclelevel is the reproduction's stand-in for the hybrid
// cycle-level/system-level UNISIM-based simulator the paper validates
// against (§V "Cycle-Level Parameters").
//
// It is built from the same kernel as SiMany but configured so that events
// are processed in strict virtual-time order (a conservative scheduler,
// package drift's Lockstep) and the machine model is substantially more
// detailed:
//
//   - real split instruction/data direct-mapped L1 caches with tag arrays
//     (data kept across function boundaries, unlike SiMany's pessimistic
//     scoped model);
//   - line-granularity MSI-style coherence with per-line invalidation and
//     ownership-transfer delays (SiMany's validation mode times coherence
//     at block granularity instead);
//   - a deterministic 2-bit saturating branch predictor (SiMany assumes a
//     flat 90% success probability);
//   - constant L1 latency regardless of core speed in polymorphic
//     configurations — the documented difference that offsets the
//     cycle-level curves in Fig. 6.
//
// The combination preserves exactly the comparison the paper performs: the
// same annotated programs timed by an abstract loosely-synchronized model
// versus a strictly-ordered detailed one.
package cyclelevel

import (
	"simany/internal/cache"
	"simany/internal/core"
	"simany/internal/network"
	"simany/internal/timing"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// Mem is the detailed memory system: per-core direct-mapped data L1s in
// front of uniform shared banks, with full line-granularity coherence.
type Mem struct {
	// HitLat is the L1 hit latency (1 cycle, fixed).
	HitLat vtime.Time
	// BankLat is the shared-bank latency (10 cycles).
	BankLat vtime.Time
	// InvLat is charged per invalidated remote copy.
	InvLat vtime.Time

	l1s []l1cache
	dir *cache.Directory
	net *network.Model
}

// l1cache is the behaviour the detailed memory system needs from an L1
// model; cache.DirectMapped and cache.SetAssoc both provide it.
type l1cache interface {
	Access(addr uint64) bool
	InvalidateLine(line uint64)
}

// L1Size is the per-core data-L1 capacity in bytes (16 KiB, a PPC405-class
// configuration).
const L1Size = 16 << 10

// NewMem builds the detailed memory system for n cores over net, with
// direct-mapped L1s.
func NewMem(n int, net *network.Model) *Mem {
	m := newMemBase(n, net)
	for i := range m.l1s {
		m.l1s[i] = cache.NewDirectMapped(L1Size, cache.DefaultLineSize)
	}
	return m
}

// NewMemAssoc is NewMem with ways-set-associative LRU L1s, the
// higher-fidelity configuration.
func NewMemAssoc(n int, net *network.Model, ways int) *Mem {
	m := newMemBase(n, net)
	for i := range m.l1s {
		m.l1s[i] = cache.NewSetAssoc(L1Size, cache.DefaultLineSize, ways)
	}
	return m
}

func newMemBase(n int, net *network.Model) *Mem {
	return &Mem{
		HitLat:  vtime.CyclesInt(1),
		BankLat: vtime.CyclesInt(10),
		InvLat:  vtime.CyclesInt(10),
		l1s:     make([]l1cache, n),
		dir:     cache.NewDirectory(cache.DefaultLineSize),
		net:     net,
	}
}

var _ core.MemSystem = (*Mem)(nil)

// Access implements core.MemSystem by walking every cache line covered by
// the access: real tag lookups, per-line coherence actions, per-line
// invalidation of remote L1 copies.
func (m *Mem) Access(c *core.Core, base uint64, n int64, elem int, write bool, now vtime.Time) vtime.Time {
	if n <= 0 {
		return 0
	}
	if elem <= 0 {
		elem = 1
	}
	l1 := m.l1s[c.ID]
	perLine := int64(cache.DefaultLineSize / elem)
	if perLine < 1 {
		perLine = 1
	}
	var d vtime.Time
	addr := base
	for i := int64(0); i < n; i += perLine {
		cnt := perLine
		if n-i < cnt {
			cnt = n - i
		}
		line := cache.LineOf(addr, cache.DefaultLineSize)
		hit := l1.Access(addr)
		d += m.HitLat * vtime.Time(cnt)
		if !hit {
			d += m.BankLat
		}
		var o cache.Outcome
		if write {
			o = m.dir.WriteLine(c.ID, line)
		} else {
			o = m.dir.ReadLine(c.ID, line)
		}
		if o.Invalidations > 0 {
			d += m.InvLat * vtime.Time(o.Invalidations)
			// Invalidated copies leave the remote L1s so their next
			// access misses, as in hardware.
			for r := range m.l1s {
				if r != c.ID {
					m.l1s[r].InvalidateLine(line)
				}
			}
		}
		if o.Transfer {
			d += m.BankLat
			if o.FromCore >= 0 {
				d += m.net.MinLatency(o.FromCore, c.ID, cache.DefaultLineSize)
			}
		}
		addr += cache.DefaultLineSize
	}
	return d
}

// Stats exposes the coherence totals.
func (m *Mem) Stats() (invalidations, transfers int64) { return m.dir.Stats() }

// Lockstep is the conservative strict-order policy used by the reference
// simulator. It is re-declared here (identical to drift.Lockstep) to keep
// this package self-contained for configuration purposes.
type Lockstep struct{}

// Name implements core.Policy.
func (Lockstep) Name() string { return "cycle-level" }

// Horizon implements core.Policy: run only until the earliest other core's
// next event, so all interactions happen in exact virtual-time order.
func (Lockstep) Horizon(c *core.Core) vtime.Time {
	if c.LockDepth() > 0 {
		return vtime.Inf
	}
	k := c.Kernel()
	m := vtime.Inf
	for i := 0; i < k.NumCores(); i++ {
		o := k.Core(i)
		if o.ID != c.ID {
			if t := o.NextEventTime(); t < m {
				m = t
			}
		}
	}
	return m
}

// IdleTime implements core.Policy.
func (Lockstep) IdleTime(*core.Core) vtime.Time { return vtime.Inf }

// NewConfig assembles a complete cycle-level machine configuration for the
// given topology: lockstep ordering, detailed memory, 2-bit branch
// prediction. Speeds may be nil for a homogeneous machine.
func NewConfig(topo *topology.Topology, speeds []float64, seed int64) core.Config {
	netParams := network.DefaultParams()
	net := network.New(topo, netParams)
	return core.Config{
		Topo:      topo,
		NetParams: netParams,
		Policy:    Lockstep{},
		Mem:       NewMem(topo.N(), net),
		Speeds:    speeds,
		Predict: func(coreID int, s int64) timing.Predictor {
			return timing.NewTwoBitPredictor(0.9, s+int64(coreID)*7919)
		},
		Seed: seed,
	}
}
