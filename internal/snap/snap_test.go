package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"simany/internal/vtime"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uvarint(0)
	e.Uvarint(math.MaxUint64)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Varint(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.14159)
	e.Float64(math.Inf(-1))
	e.Bytes64([]byte{0xde, 0xad})
	e.Bytes64(nil)
	e.String("hello")
	e.Time(vtime.Cycles(7.25))

	d := NewDecoder(e.Bytes())
	check := func(what string, got, want any) {
		t.Helper()
		if got != want {
			t.Errorf("%s: got %v, want %v", what, got, want)
		}
	}
	u, _ := d.Uvarint()
	check("uvarint 0", u, uint64(0))
	u, _ = d.Uvarint()
	check("uvarint max", u, uint64(math.MaxUint64))
	v, _ := d.Varint()
	check("varint -1", v, int64(-1))
	v, _ = d.Varint()
	check("varint min", v, int64(math.MinInt64))
	v, _ = d.Varint()
	check("varint max", v, int64(math.MaxInt64))
	b, _ := d.Bool()
	check("bool true", b, true)
	b, _ = d.Bool()
	check("bool false", b, false)
	f, _ := d.Float64()
	check("float", f, 3.14159)
	f, _ = d.Float64()
	check("float -inf", f, math.Inf(-1))
	bs, _ := d.Bytes64()
	if !bytes.Equal(bs, []byte{0xde, 0xad}) {
		t.Errorf("bytes64: got %x", bs)
	}
	bs, _ = d.Bytes64()
	if len(bs) != 0 {
		t.Errorf("empty bytes64: got %x", bs)
	}
	s, _ := d.String()
	check("string", s, "hello")
	tm, _ := d.Time()
	check("time", tm, vtime.Cycles(7.25))
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
}

func TestDecoderErrorPaths(t *testing.T) {
	// Truncation: every primitive read from an empty decoder.
	d := NewDecoder(nil)
	if _, err := d.Uvarint(); !errors.Is(err, ErrTruncated) {
		t.Errorf("uvarint on empty: %v", err)
	}
	if _, err := d.Varint(); !errors.Is(err, ErrTruncated) {
		t.Errorf("varint on empty: %v", err)
	}
	if _, err := d.Bool(); !errors.Is(err, ErrTruncated) {
		t.Errorf("bool on empty: %v", err)
	}
	if _, err := d.Float64(); !errors.Is(err, ErrTruncated) {
		t.Errorf("float on empty: %v", err)
	}
	if _, err := d.Bytes64(); !errors.Is(err, ErrTruncated) {
		t.Errorf("bytes64 on empty: %v", err)
	}

	// A bool byte outside {0,1} is corruption, not a valid value.
	if _, err := NewDecoder([]byte{2}).Bool(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bool byte 2: %v", err)
	}

	// Varint overflow: more than 10 continuation bytes.
	over := bytes.Repeat([]byte{0x80}, 11)
	if _, err := NewDecoder(over).Uvarint(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("uvarint overflow: %v", err)
	}

	// Bytes64 whose declared length exceeds the remaining input.
	e := NewEncoder()
	e.Uvarint(100)
	if _, err := NewDecoder(e.Bytes()).Bytes64(); !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized bytes64: %v", err)
	}
}

// writeContainer serializes c and returns the raw file bytes.
func writeContainer(t *testing.T, c *Container) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes the trailing CRC after a deliberate body mutation, so
// the test reaches the validation layer beneath the checksum.
func reseal(data []byte) []byte {
	body := data[:len(data)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func sampleContainer() *Container {
	c := &Container{Fingerprint: 0xfeed, Engine: EngineSharded, Pos: 42, Mode: ModeReplay}
	c.Add("kernel", []byte{1, 2, 3})
	c.Add("shard.0", []byte{4, 5})
	c.Add("obs.trace", nil)
	return c
}

func TestContainerRoundTrip(t *testing.T) {
	data := writeContainer(t, sampleContainer())
	c, err := ReadContainer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint != 0xfeed || c.Engine != EngineSharded || c.Pos != 42 || c.Mode != ModeReplay {
		t.Errorf("header fields: %+v", c)
	}
	if len(c.SectionOrder) != 3 || c.SectionOrder[0] != "kernel" || c.SectionOrder[2] != "obs.trace" {
		t.Errorf("section order: %v", c.SectionOrder)
	}
	if b, _ := c.Section("shard.0"); !bytes.Equal(b, []byte{4, 5}) {
		t.Errorf("shard.0 payload: %x", b)
	}
	if _, err := c.Section("nonexistent"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section: %v", err)
	}
}

func TestContainerBadMagic(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("SIM"), []byte("NOTACKPT file body")} {
		if _, err := ReadContainer(bytes.NewReader(in)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("input %q: %v", in, err)
		}
	}
	// Magic alone, shorter than magic+CRC.
	if _, err := ReadContainer(bytes.NewReader([]byte(magic))); !errors.Is(err, ErrTruncated) {
		t.Errorf("bare magic: %v", err)
	}
}

func TestContainerChecksum(t *testing.T) {
	data := writeContainer(t, sampleContainer())
	for off := len(magic); off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		if _, err := ReadContainer(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", off, err)
		}
	}
}

func TestContainerVersionMismatch(t *testing.T) {
	data := writeContainer(t, sampleContainer())
	// The version varint is the byte right after the magic (Version < 128).
	mut := append([]byte(nil), data...)
	mut[len(magic)] = Version + 1
	if _, err := ReadContainer(bytes.NewReader(reseal(mut))); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: %v", err)
	}
}

func TestContainerStructuralCorruption(t *testing.T) {
	// Duplicate section names must be rejected.
	dup := &Container{Engine: EngineSequential, Mode: ModeDecode}
	dup.Sections = map[string][]byte{"kernel": {1}}
	dup.SectionOrder = []string{"kernel", "kernel"}
	if _, err := ReadContainer(bytes.NewReader(writeContainer(t, dup))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate section: %v", err)
	}

	// Unknown engine kind. Locate the engine byte by re-encoding the
	// header prefix rather than hand-counting varint widths.
	data := writeContainer(t, sampleContainer())
	hdr := NewEncoder()
	hdr.Uvarint(Version)
	hdr.Uvarint(0xfeed)
	engOff := len(magic) + hdr.Len()
	mut := append([]byte(nil), data...)
	mut[engOff] = byte(EngineSharded) + 1
	if _, err := ReadContainer(bytes.NewReader(reseal(mut))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown engine: %v", err)
	}

	// Unknown restore mode: engine byte + pos Varint(42) (1 byte) precede it.
	mut = append([]byte(nil), data...)
	mut[engOff+2] = byte(ModeDecode) + 1
	if _, err := ReadContainer(bytes.NewReader(reseal(mut))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown mode: %v", err)
	}

	// Trailing garbage after the section directory.
	body := append([]byte(nil), data[:len(data)-4]...)
	body = append(body, 0xff)
	garbled := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := ReadContainer(bytes.NewReader(garbled)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
}

func TestContainerDuplicateAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with a duplicate name did not panic")
		}
	}()
	c := &Container{}
	c.Add("x", nil)
	c.Add("x", nil)
}
