// Package snap implements the checkpoint wire format shared by every
// snapshottable simulator component (docs/checkpoint.md).
//
// The format has two layers. The inner layer is a deterministic primitive
// encoding: unsigned varints, zig-zag signed varints, length-prefixed byte
// strings. Writers are required to emit collections in a canonical order
// (sorted keys), so that two equal states always produce equal bytes — the
// replay-verified restore path depends on byte equality, not just semantic
// equality. The outer layer is a self-describing container: a magic
// header, a format version, a config fingerprint, the engine position the
// checkpoint was taken at, a directory of named sections, and a trailing
// CRC-32 over everything before it. Unknown sections are skipped on read,
// so later format revisions can add sections without breaking old readers.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"simany/internal/vtime"
)

// Snapshottable is implemented by every simulator component whose mutable
// state participates in a checkpoint. Snapshot must write the component's
// state in canonical order; Restore must consume exactly the bytes
// Snapshot wrote and rebuild any derived structures it does not read.
type Snapshottable interface {
	Snapshot(enc *Encoder)
	Restore(dec *Decoder) error
}

// Corruption and truncation sentinels. Decoder errors wrap one of these so
// callers can distinguish a damaged file from an I/O failure.
var (
	// ErrBadMagic means the input does not start with the checkpoint magic.
	ErrBadMagic = errors.New("snap: not a checkpoint file")
	// ErrVersion means the file's format version is unsupported.
	ErrVersion = errors.New("snap: unsupported checkpoint version")
	// ErrTruncated means the input ended before the encoded structure did.
	ErrTruncated = errors.New("snap: truncated checkpoint")
	// ErrChecksum means the trailing CRC does not match the file contents.
	ErrChecksum = errors.New("snap: checksum mismatch")
	// ErrCorrupt means an encoded value is structurally invalid.
	ErrCorrupt = errors.New("snap: corrupt checkpoint")
)

// Encoder accumulates the canonical primitive encoding in memory.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends an IEEE-754 binary64 value, little-endian.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bytes64 appends a length-prefixed byte string.
func (e *Encoder) Bytes64(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Time appends a virtual-time value as a signed varint. The matching
// Decoder.Time returns it typed, so the millicycle unit is preserved
// end-to-end across the serialization boundary.
func (e *Encoder) Time(t vtime.Time) {
	//lint:allow rawvtime serialization boundary: Decoder.Time restores the millicycle unit typed
	e.Varint(int64(t))
}

// Decoder consumes the primitive encoding from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a payload produced by an Encoder.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining reports how many bytes are left to consume.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// Bool reads a boolean byte.
func (d *Decoder) Bool() (bool, error) {
	if d.off >= len(d.buf) {
		return false, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		return false, fmt.Errorf("%w: bad bool byte %#x at offset %d", ErrCorrupt, b, d.off-1)
	}
	return b == 1, nil
}

// Float64 reads an IEEE-754 binary64 value.
func (d *Decoder) Float64() (float64, error) {
	if d.off+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Bytes64 reads a length-prefixed byte string. The returned slice aliases
// the decoder's buffer.
func (d *Decoder) Bytes64() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return nil, ErrTruncated
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes64()
	return string(b), err
}

// Time reads a virtual-time value written by Encoder.Time.
func (d *Decoder) Time() (vtime.Time, error) {
	v, err := d.Varint()
	return vtime.Time(v), err
}

// Container format constants.
const (
	magic = "SIMANYCK"
	// Version is the current checkpoint format version. Version 2 paged
	// the network FIFO-clamp encoding by destination block (the flat
	// per-source arrays of version 1 do not scale to 100k-core machines).
	Version = 2
)

// Engine identifies which kernel engine wrote the checkpoint; the position
// field counts completed barriers (sharded) or completed steps
// (sequential).
type Engine uint8

// Engine kinds.
const (
	EngineSequential Engine = 0
	EngineSharded    Engine = 1
)

// Mode records how the checkpoint can be restored.
type Mode uint8

const (
	// ModeReplay means some live state (closure task bodies, uncodeced
	// cell payloads, non-serializable predictors) could not be encoded;
	// restore must deterministically re-execute the program up to the
	// checkpoint position and verify the reconstructed state against the
	// file byte-for-byte.
	ModeReplay Mode = 0
	// ModeDecode means every task body carries a step-program descriptor
	// and all payloads have codecs: restore decodes state directly with no
	// re-execution.
	ModeDecode Mode = 1
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeDecode {
		return "decode"
	}
	return "replay"
}

// Container is a parsed checkpoint file: the header fields plus the named
// section payloads, in file order.
type Container struct {
	// Fingerprint is a hash of the configuration fields that define the
	// simulation (cores, shards, seed, policy, quantum, scheduler); resume
	// refuses a checkpoint whose fingerprint differs from the target
	// kernel's.
	Fingerprint uint64
	// Engine is the kernel engine that wrote the file.
	Engine Engine
	// Pos is the engine position at checkpoint: completed barriers for the
	// sharded engine, completed steps for the sequential engine.
	Pos int64
	// Mode records whether the file is decode-restorable.
	Mode Mode
	// Sections maps section name to payload. SectionOrder preserves the
	// canonical file order for writing and byte comparison.
	Sections     map[string][]byte
	SectionOrder []string
}

// Section returns a named section payload, or an error naming the section
// if it is absent.
func (c *Container) Section(name string) ([]byte, error) {
	b, ok := c.Sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return b, nil
}

// Add appends a section. Adding the same name twice is a programming
// error.
func (c *Container) Add(name string, payload []byte) {
	if c.Sections == nil {
		c.Sections = make(map[string][]byte)
	}
	if _, dup := c.Sections[name]; dup {
		panic("snap: duplicate section " + name)
	}
	c.Sections[name] = payload
	c.SectionOrder = append(c.SectionOrder, name)
}

// WriteTo serializes the container: magic, version, header fields, section
// directory, then a CRC-32 (IEEE) of everything preceding it.
func (c *Container) WriteTo(w io.Writer) (int64, error) {
	e := NewEncoder()
	e.buf = append(e.buf, magic...)
	e.Uvarint(Version)
	e.Uvarint(c.Fingerprint)
	e.buf = append(e.buf, byte(c.Engine))
	e.Varint(c.Pos)
	e.buf = append(e.buf, byte(c.Mode))
	e.Uvarint(uint64(len(c.SectionOrder)))
	for _, name := range c.SectionOrder {
		e.String(name)
		e.Bytes64(c.Sections[name])
	}
	sum := crc32.ChecksumIEEE(e.buf)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, sum)
	n, err := w.Write(e.buf)
	return int64(n), err
}

// ReadContainer parses a checkpoint file, validating magic, version and
// checksum. It reads the whole input: checkpoints are small relative to
// the simulations they capture.
func ReadContainer(r io.Reader) (*Container, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snap: reading checkpoint: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < len(magic)+4 {
		return nil, ErrTruncated
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrChecksum
	}
	d := NewDecoder(body[len(magic):])
	ver, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, ver, Version)
	}
	c := &Container{Sections: make(map[string][]byte)}
	if c.Fingerprint, err = d.Uvarint(); err != nil {
		return nil, err
	}
	if d.Remaining() < 1 {
		return nil, ErrTruncated
	}
	c.Engine = Engine(d.buf[d.off])
	d.off++
	if c.Engine > EngineSharded {
		return nil, fmt.Errorf("%w: unknown engine kind %d", ErrCorrupt, c.Engine)
	}
	if c.Pos, err = d.Varint(); err != nil {
		return nil, err
	}
	if d.Remaining() < 1 {
		return nil, ErrTruncated
	}
	c.Mode = Mode(d.buf[d.off])
	d.off++
	if c.Mode > ModeDecode {
		return nil, fmt.Errorf("%w: unknown restore mode %d", ErrCorrupt, c.Mode)
	}
	nsec, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsec; i++ {
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		payload, err := d.Bytes64()
		if err != nil {
			return nil, err
		}
		if _, dup := c.Sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		// Copy out of the read buffer so sections stay independent.
		c.Sections[name] = append([]byte(nil), payload...)
		c.SectionOrder = append(c.SectionOrder, name)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after section directory", ErrCorrupt, d.Remaining())
	}
	return c, nil
}
