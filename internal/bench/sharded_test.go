package bench

import (
	"reflect"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/topology"
)

// runSharded executes benchmark b on a 16-core mesh split into 4 shards
// driven by the given number of host threads.
func runSharded(t *testing.T, b Benchmark, mode Mode, workers int, seed int64) (uint64, core.Result) {
	t.Helper()
	var ms core.MemSystem
	if mode == Distributed {
		ms = mem.NewDistributed()
	} else {
		ms = mem.NewShared()
	}
	k := core.New(core.Config{
		Topo:    topology.Mesh(16),
		Policy:  core.Spatial{T: core.DefaultT},
		Mem:     ms,
		Seed:    seed,
		Shards:  4,
		Workers: workers,
	})
	if !k.Sharded() {
		t.Fatalf("%s/%s: expected the sharded engine", b.Name(), mode)
	}
	r := rt.New(k, nil, rt.DefaultOptions())
	root, finish := b.Program(r, mode)
	res, err := r.Run(b.Name(), root)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", b.Name(), mode, workers, err)
	}
	return finish(), res
}

// TestShardedDeterministicAcrossWorkers is the engine's core guarantee
// applied to every bundled benchmark: for a fixed (seed, shards) pair the
// entire Result — virtual time, step count, message/byte totals, per-shard
// breakdown — must be byte-identical no matter how many host threads drive
// the shards, and the simulated computation must still produce the native
// checksum.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const seed = 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b.Generate(seed, 1)
			want := b.RunNative()
			modes := []Mode{Shared}
			if !testing.Short() {
				modes = append(modes, Distributed)
			}
			for _, mode := range modes {
				sum, base := runSharded(t, b, mode, 1, seed)
				if sum != want {
					t.Errorf("%s workers=1: checksum %#x, native %#x", mode, sum, want)
				}
				for _, w := range []int{2, 8} {
					gotSum, got := runSharded(t, b, mode, w, seed)
					if gotSum != want {
						t.Errorf("%s workers=%d: checksum %#x, native %#x", mode, w, gotSum, want)
					}
					if !reflect.DeepEqual(got, base) {
						t.Errorf("%s workers=%d: result diverged:\n  got  %+v\n  want %+v",
							mode, w, got, base)
					}
				}
			}
		})
	}
}
