package bench

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// SpMxV is the sparse matrix-vector multiply benchmark (§V): matrices in
// the row-oriented Harwell-Boeing-like format, half the random group
// averaging 50 non-null coefficients per row and the other half 100. It
// exhibits no data contention and little data movement, which makes it
// representative of the simulator's intrinsic behaviour (§VI).
type SpMxV struct {
	// Datasets is the number of matrices.
	Datasets int
	// Rows (= Cols) per matrix (10^6 in the paper).
	Rows int
	// NNZLow/NNZHigh: average coefficients per row for the two halves of
	// the dataset group (50 and 100 in the paper).
	NNZLow, NNZHigh int
	// RowChunk is the number of rows per leaf task.
	RowChunk int

	mats []*workloads.SparseMatrix
	xs   [][]float64
}

// NewSpMxV returns the benchmark with laptop-scale defaults.
func NewSpMxV() *SpMxV {
	return &SpMxV{Datasets: 4, Rows: 1200, NNZLow: 12, NNZHigh: 24, RowChunk: 32}
}

// Name implements Benchmark.
func (b *SpMxV) Name() string { return "spmxv" }

// Generate implements Benchmark.
func (b *SpMxV) Generate(seed int64, scale float64) {
	rows := scaleInt(b.Rows, scale, 64)
	b.mats = make([]*workloads.SparseMatrix, b.Datasets)
	b.xs = make([][]float64, b.Datasets)
	for d := range b.mats {
		nnz := b.NNZLow
		if d >= b.Datasets/2 {
			nnz = b.NNZHigh
		}
		b.mats[d] = workloads.RandomSparse(seed+int64(d)*503, rows, rows, nnz)
		x := make([]float64, rows)
		rng := workloads.RandomArray(seed+int64(d)*503+7, rows)
		for i := range x {
			x[i] = float64(rng[i]%1000) / 999.0
		}
		b.xs[d] = x
	}
}

func checksumVectors(ys [][]float64) uint64 {
	s := newSum()
	for _, y := range ys {
		for _, v := range y {
			s.addFloat(v)
		}
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *SpMxV) RunNative() uint64 {
	ys := make([][]float64, len(b.mats))
	for d, m := range b.mats {
		ys[d] = m.MultiplySeq(b.xs[d])
	}
	return checksumVectors(ys)
}

// annotateRow charges one row of k coefficients: streaming reads of the
// values and column indices, a scattered gather of x (one line per
// element), the multiply-accumulate chain and the y store.
func annotateRow(e *core.Env, valsBase, colBase, xBase, yAddr uint64, off int64, k int64) {
	if k > 0 {
		e.Read(valsBase+uint64(off)*8, k, 8)
		e.Read(colBase+uint64(off)*4, k, 4)
		e.Read(xBase, k, 32) // gather: pessimistically one line per element
	}
	e.Compute(ops(2*k+4, k+1, k, k, 0))
	e.Write(yAddr, 1, 8)
}

// Program implements Benchmark.
func (b *SpMxV) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	ys := make([][]float64, len(b.mats))
	type bases struct{ vals, cols, x, y uint64 }
	bs := make([]bases, len(b.mats))

	var mult func(e *core.Env, g *rt.Group, d, lo, hi int)
	mult = func(e *core.Env, g *rt.Group, d, lo, hi int) {
		m := b.mats[d]
		for hi-lo > b.RowChunk {
			mid := (lo + hi) / 2
			lo2, hi2 := mid, hi
			r.SpawnOrRun(e, g, "spmxv-rows", 24, func(ce *core.Env) {
				mult(ce, g, d, lo2, hi2)
			})
			hi = mid
		}
		x := b.xs[d]
		for row := lo; row < hi; row++ {
			var acc float64
			off := m.RowPtr[row]
			k := m.RowPtr[row+1] - off
			for i := off; i < off+k; i++ {
				acc += m.Vals[i] * x[m.ColIdx[i]]
			}
			ys[d][row] = acc
			annotateRow(e, bs[d].vals, bs[d].cols, bs[d].x, bs[d].y+uint64(row)*8, off, k)
		}
	}

	root := func(e *core.Env) {
		for d, m := range b.mats {
			ys[d] = make([]float64, m.Rows)
			bs[d] = bases{
				vals: r.Alloc().Alloc(m.NNZ() * 8),
				cols: r.Alloc().Alloc(m.NNZ() * 4),
				x:    r.Alloc().Alloc(int64(m.Cols) * 8),
				y:    r.Alloc().Alloc(int64(m.Rows) * 8),
			}
			g := r.NewGroup()
			mult(e, g, d, 0, m.Rows)
			r.Join(e, g)
		}
	}
	finish := func() uint64 { return checksumVectors(ys) }
	return root, finish
}

// programDist stores row blocks in cells created on the root core; each
// task fetches its block once (a single transfer), multiplies against the
// replicated x vector, and leaves y in the block cell — little data
// movement and no contention, hence the near-identical scalability of
// Fig. 9 for this benchmark.
func (b *SpMxV) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	type block struct {
		lo, hi int
		y      []float64
	}
	blockCells := make([][]mem.Link, len(b.mats))

	var run func(e *core.Env, g *rt.Group, d int, cells []mem.Link, lo, hi int)
	run = func(e *core.Env, g *rt.Group, d int, cells []mem.Link, lo, hi int) {
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			lo2, hi2 := mid, hi
			r.SpawnOrRun(e, g, "spmxv-block", 24, func(ce *core.Env) {
				run(ce, g, d, cells, lo2, hi2)
			})
			hi = mid
		}
		if hi <= lo {
			return
		}
		m := b.mats[d]
		x := b.xs[d]
		r.Access(e, cells[lo], func(data any) any {
			blk := data.(*block)
			for row := blk.lo; row < blk.hi; row++ {
				var acc float64
				off := m.RowPtr[row]
				k := m.RowPtr[row+1] - off
				for i := off; i < off+k; i++ {
					acc += m.Vals[i] * x[m.ColIdx[i]]
				}
				blk.y[row-blk.lo] = acc
				annotateRow(e, 0, 1<<20, 1<<21, 1<<22+uint64(row)*8, off, k)
			}
			return blk
		})
	}

	root := func(e *core.Env) {
		for d, m := range b.mats {
			var cells []mem.Link
			for lo := 0; lo < m.Rows; lo += b.RowChunk {
				hi := lo + b.RowChunk
				if hi > m.Rows {
					hi = m.Rows
				}
				nnz := m.RowPtr[hi] - m.RowPtr[lo]
				cells = append(cells, r.NewCell(e, int(nnz)*12+(hi-lo)*8,
					&block{lo: lo, hi: hi, y: make([]float64, hi-lo)}))
			}
			blockCells[d] = cells
			g := r.NewGroup()
			run(e, g, d, cells, 0, len(cells))
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		ys := make([][]float64, len(b.mats))
		for d, cells := range blockCells {
			y := make([]float64, b.mats[d].Rows)
			for _, l := range cells {
				blk := r.CellData(l).(*block)
				copy(y[blk.lo:blk.hi], blk.y)
			}
			ys[d] = y
		}
		return checksumVectors(ys)
	}
	return root, finish
}
