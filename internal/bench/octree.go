package bench

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// Octree is the tree-traversal benchmark of §V: update all objects within
// an octree structure, the typical gaming/graphics-generation scenario.
// Parallelism comes from conditionally spawning a task per subtree.
type Octree struct {
	// Datasets is the number of random octrees (50 in the paper).
	Datasets int
	// Depth of each octree (6 in the paper).
	Depth int
	// Fill is the probability each child exists.
	Fill float64
	// MaxObjs bounds the objects stored per node.
	MaxObjs int

	trees []*workloads.Octree
}

// NewOctree returns the benchmark with laptop-scale defaults.
func NewOctree() *Octree {
	return &Octree{Datasets: 3, Depth: 5, Fill: 0.45, MaxObjs: 4}
}

// Name implements Benchmark.
func (b *Octree) Name() string { return "octree" }

// Generate implements Benchmark.
func (b *Octree) Generate(seed int64, scale float64) {
	depth := b.Depth
	if scale >= 2 {
		depth++ // the paper's full depth-6 trees
	}
	b.trees = make([]*workloads.Octree, b.Datasets)
	for d := range b.trees {
		b.trees[d] = workloads.RandomOctree(seed+int64(d)*601, depth, b.Fill, b.MaxObjs)
	}
}

func (b *Octree) copies() []*workloads.Octree {
	out := make([]*workloads.Octree, len(b.trees))
	for d, t := range b.trees {
		ct := &workloads.Octree{Depth: t.Depth, Nodes: make([]workloads.OctreeNode, len(t.Nodes))}
		for i, n := range t.Nodes {
			cn := n
			cn.Objects = append([]int64(nil), n.Objects...)
			ct.Nodes[i] = cn
		}
		out[d] = ct
	}
	return out
}

func checksumTrees(trees []*workloads.Octree) uint64 {
	s := newSum()
	for _, t := range trees {
		s.addInt(t.Checksum())
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *Octree) RunNative() uint64 {
	trees := b.copies()
	for _, t := range trees {
		t.UpdateSeq()
	}
	return checksumTrees(trees)
}

// annotateUpdate charges the per-node work: read the node header and its
// objects, the xorshift update per object, write the objects back.
func annotateUpdate(e *core.Env, nodeAddr uint64, nObjs int64) {
	e.Read(nodeAddr, 4, 8)
	e.Read(nodeAddr+64, nObjs, 8)
	e.Compute(ops(6*nObjs+8, 8, 0, 0, 0))
	e.Write(nodeAddr+64, nObjs, 8)
}

// Program implements Benchmark.
func (b *Octree) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	trees := b.copies()
	bases := make([]uint64, len(trees))

	var update func(e *core.Env, g *rt.Group, t *workloads.Octree, d int, node int32)
	update = func(e *core.Env, g *rt.Group, t *workloads.Octree, d int, node int32) {
		n := &t.Nodes[node]
		for j, v := range n.Objects {
			n.Objects[j] = workloads.UpdateObject(v)
		}
		annotateUpdate(e, bases[d]+uint64(node)*128, int64(len(n.Objects)))
		for _, c := range n.Children {
			if c < 0 {
				continue
			}
			c := c
			r.SpawnOrRun(e, g, "octree-sub", 16, func(ce *core.Env) {
				update(ce, g, t, d, c)
			})
		}
	}

	root := func(e *core.Env) {
		for d, t := range trees {
			bases[d] = r.Alloc().Alloc(int64(len(t.Nodes)) * 128)
			g := r.NewGroup()
			update(e, g, t, d, 0)
			r.Join(e, g)
		}
	}
	finish := func() uint64 { return checksumTrees(trees) }
	return root, finish
}

// programDist stores each node's objects in a cell; subtree tasks pull
// their node's cell to their core, update it, and spawn the children.
func (b *Octree) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	trees := b.copies()
	nodeCells := make([][]mem.Link, len(trees))

	var update func(e *core.Env, g *rt.Group, t *workloads.Octree, cells []mem.Link, node int32)
	update = func(e *core.Env, g *rt.Group, t *workloads.Octree, cells []mem.Link, node int32) {
		r.Access(e, cells[node], func(data any) any {
			objs := data.([]int64)
			for j, v := range objs {
				objs[j] = workloads.UpdateObject(v)
			}
			e.Compute(ops(6*int64(len(objs))+8, 8, 0, 0, 0))
			return objs
		})
		for _, c := range t.Nodes[node].Children {
			if c < 0 {
				continue
			}
			c := c
			r.SpawnOrRun(e, g, "octree-sub", 16, func(ce *core.Env) {
				update(ce, g, t, cells, c)
			})
		}
	}

	root := func(e *core.Env) {
		for d, t := range trees {
			cells := make([]mem.Link, len(t.Nodes))
			for i := range t.Nodes {
				cells[i] = r.NewCell(e, len(t.Nodes[i].Objects)*8+32, t.Nodes[i].Objects)
			}
			nodeCells[d] = cells
			g := r.NewGroup()
			update(e, g, t, cells, 0)
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		// Fold the cell contents back into the trees for checksumming.
		for d, t := range trees {
			for i := range t.Nodes {
				t.Nodes[i].Objects = r.CellData(nodeCells[d][i]).([]int64)
			}
		}
		return checksumTrees(trees)
	}
	return root, finish
}
