package bench

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// BarnesHut is the N-body force-computation benchmark (§V): only the
// scalability of the second phase is measured, assuming the partition tree
// has been built and broadcast to all cores before it starts. Per-body
// force computations are independent; the communication pattern comes from
// the highly irregular tree traversals.
type BarnesHut struct {
	// Datasets is the number of body sets (4×128 + 4×200 in the paper).
	Datasets int
	// Bodies per set.
	Bodies int
	// Theta is the opening criterion.
	Theta float64
	// Chunk is the number of bodies per leaf task.
	Chunk int

	sets []*workloads.BHTree
}

// NewBarnesHut returns the benchmark with paper-scale defaults (the body
// sets are small in the paper already).
func NewBarnesHut() *BarnesHut {
	return &BarnesHut{Datasets: 2, Bodies: 128, Theta: 0.5, Chunk: 8}
}

// Name implements Benchmark.
func (b *BarnesHut) Name() string { return "barnes-hut" }

// Generate implements Benchmark.
func (b *BarnesHut) Generate(seed int64, scale float64) {
	n := scaleInt(b.Bodies, scale, 16)
	b.sets = make([]*workloads.BHTree, b.Datasets)
	for d := range b.sets {
		bodies := workloads.RandomBodies(seed+int64(d)*401, n)
		b.sets[d] = workloads.BuildBHTree(bodies, b.Theta)
	}
}

func checksumForces(sets [][]workloads.Body) uint64 {
	s := newSum()
	for _, bodies := range sets {
		for _, bd := range bodies {
			s.addFloat(bd.FX)
			s.addFloat(bd.FY)
			s.addFloat(bd.FZ)
		}
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *BarnesHut) RunNative() uint64 {
	out := make([][]workloads.Body, len(b.sets))
	for d, t := range b.sets {
		out[d], _ = t.ForcesSeq()
	}
	return checksumForces(out)
}

// annotateForce charges the traversal of `visited` tree nodes for one body:
// scattered node reads (one line each) plus the per-node arithmetic of the
// opening test and force accumulation.
func annotateForce(e *core.Env, treeBase uint64, visited int) {
	v := int64(visited)
	e.Read(treeBase, v, 32)
	e.Compute(ops(4*v, 2*v, 8*v, 5*v, 2*v))
}

// Program implements Benchmark.
func (b *BarnesHut) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	outs := make([][]workloads.Body, len(b.sets))
	treeBases := make([]uint64, len(b.sets))
	bodyBases := make([]uint64, len(b.sets))

	var forces func(e *core.Env, g *rt.Group, t *workloads.BHTree, out []workloads.Body, d, lo, hi int)
	forces = func(e *core.Env, g *rt.Group, t *workloads.BHTree, out []workloads.Body, d, lo, hi int) {
		for hi-lo > b.Chunk {
			mid := (lo + hi) / 2
			lo2, hi2 := mid, hi
			r.SpawnOrRun(e, g, "bh-forces", 32, func(ce *core.Env) {
				forces(ce, g, t, out, d, lo2, hi2)
			})
			hi = mid
		}
		for i := lo; i < hi; i++ {
			fx, fy, fz, visited := t.ForceOn(i)
			out[i].FX, out[i].FY, out[i].FZ = fx, fy, fz
			e.Read(bodyBases[d]+uint64(i)*56, 4, 8)
			annotateForce(e, treeBases[d], visited)
			e.Write(bodyBases[d]+uint64(i)*56+32, 3, 8)
		}
	}

	root := func(e *core.Env) {
		for d, t := range b.sets {
			outs[d] = append([]workloads.Body(nil), t.Bodies...)
			treeBases[d] = r.Alloc().Alloc(int64(len(t.Nodes)) * 64)
			bodyBases[d] = r.Alloc().Alloc(int64(len(t.Bodies)) * 56)
			g := r.NewGroup()
			forces(e, g, t, outs[d], d, 0, len(t.Bodies))
			r.Join(e, g)
		}
	}
	finish := func() uint64 { return checksumForces(outs) }
	return root, finish
}

// programDist distributes the body array in chunk cells while the tree is
// broadcast (replicated) as in the paper's setup; tasks pull their body
// chunk, compute forces against the local tree copy, and write the chunk
// back.
func (b *BarnesHut) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	type chunk struct {
		lo     int
		bodies []workloads.Body
	}
	chunkCells := make([][]mem.Link, len(b.sets))
	treeBases := make([]uint64, len(b.sets))

	var run func(e *core.Env, g *rt.Group, t *workloads.BHTree, cells []mem.Link, d, lo, hi int)
	run = func(e *core.Env, g *rt.Group, t *workloads.BHTree, cells []mem.Link, d, lo, hi int) {
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			lo2, hi2 := mid, hi
			r.SpawnOrRun(e, g, "bh-chunk", 32, func(ce *core.Env) {
				run(ce, g, t, cells, d, lo2, hi2)
			})
			hi = mid
		}
		if hi <= lo {
			return
		}
		r.Access(e, cells[lo], func(data any) any {
			c := data.(*chunk)
			for i := range c.bodies {
				fx, fy, fz, visited := t.ForceOn(c.lo + i)
				c.bodies[i].FX, c.bodies[i].FY, c.bodies[i].FZ = fx, fy, fz
				annotateForce(e, treeBases[d], visited)
			}
			return c
		})
	}

	root := func(e *core.Env) {
		for d, t := range b.sets {
			treeBases[d] = r.Alloc().Alloc(int64(len(t.Nodes)) * 64)
			n := len(t.Bodies)
			var cells []mem.Link
			for lo := 0; lo < n; lo += b.Chunk {
				hi := lo + b.Chunk
				if hi > n {
					hi = n
				}
				cs := &chunk{lo: lo, bodies: append([]workloads.Body(nil), t.Bodies[lo:hi]...)}
				cells = append(cells, r.NewCell(e, (hi-lo)*56, cs))
			}
			chunkCells[d] = cells
			g := r.NewGroup()
			run(e, g, t, cells, d, 0, len(cells))
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		out := make([][]workloads.Body, len(b.sets))
		for d, cells := range chunkCells {
			bodies := make([]workloads.Body, len(b.sets[d].Bodies))
			for _, l := range cells {
				c := r.CellData(l).(*chunk)
				copy(bodies[c.lo:], c.bodies)
			}
			out[d] = bodies
		}
		return checksumForces(out)
	}
	return root, finish
}
