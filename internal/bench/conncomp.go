package bench

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// ConnComp is the graph Connected Components benchmark (§V): depth-first
// searches are launched from lots of nodes in parallel; nodes belonging to
// the same component get tagged repeatedly (the lowest label wins), which
// creates contention that conditional spawning mitigates.
type ConnComp struct {
	// Datasets is the number of random graphs (50 in the paper).
	Datasets int
	// Nodes and Edges size each graph (1000 / 2000 in the paper).
	Nodes, Edges int

	graphs []*workloads.Graph
}

// NewConnComp returns the benchmark with laptop-scale defaults.
func NewConnComp() *ConnComp {
	return &ConnComp{Datasets: 4, Nodes: 400, Edges: 800}
}

// Name implements Benchmark.
func (b *ConnComp) Name() string { return "conncomp" }

// Generate implements Benchmark.
func (b *ConnComp) Generate(seed int64, scale float64) {
	n := scaleInt(b.Nodes, scale, 16)
	m := scaleInt(b.Edges, scale, 32)
	b.graphs = make([]*workloads.Graph, b.Datasets)
	for d := range b.graphs {
		b.graphs[d] = workloads.RandomGraph(seed+int64(d)*211, n, m)
	}
}

func checksumLabels(all [][]int32) uint64 {
	s := newSum()
	for _, labels := range all {
		for _, l := range labels {
			s.addInt(int64(l))
		}
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *ConnComp) RunNative() uint64 {
	out := make([][]int32, len(b.graphs))
	for d, g := range b.graphs {
		out[d] = workloads.ConnectedComponentsSeq(g)
	}
	return checksumLabels(out)
}

// annotateVisit charges the per-node work: read the tag, compare, read the
// adjacency list of deg entries.
func annotateVisit(e *core.Env, tagAddr uint64, adjBase uint64, u int, deg int) {
	e.Read(tagAddr, 1, 8)
	e.Compute(ops(int64(4+2*deg), int64(1+deg), 0, 0, 0))
	if deg > 0 {
		e.Read(adjBase+uint64(u)*32, int64(deg), 8)
	}
}

// Program implements Benchmark.
func (b *ConnComp) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	type sharedState struct {
		tags    []int32
		tagBase uint64
		adjBase uint64
		locks   []*rt.Lock
	}
	states := make([]*sharedState, len(b.graphs))

	var visit func(e *core.Env, g *rt.Group, st *sharedState, gr *workloads.Graph, u int, label int32)
	visit = func(e *core.Env, g *rt.Group, st *sharedState, gr *workloads.Graph, u int, label int32) {
		deg := len(gr.Adj[u])
		annotateVisit(e, st.tagBase+uint64(u)*8, st.adjBase, u, deg)
		r.AcquireLock(e, st.locks[u])
		if st.tags[u] <= label {
			r.ReleaseLock(e, st.locks[u])
			return
		}
		st.tags[u] = label
		e.Write(st.tagBase+uint64(u)*8, 1, 8)
		r.ReleaseLock(e, st.locks[u])
		for _, v := range gr.Adj[u] {
			v := int(v)
			r.SpawnOrRun(e, g, "cc-visit", 16, func(ce *core.Env) {
				visit(ce, g, st, gr, v, label)
			})
		}
	}

	root := func(e *core.Env) {
		for d, gr := range b.graphs {
			st := &sharedState{
				tags:    make([]int32, gr.N),
				tagBase: r.Alloc().Alloc(int64(gr.N) * 8),
				adjBase: r.Alloc().Alloc(int64(gr.N) * 32),
				locks:   make([]*rt.Lock, gr.N),
			}
			for i := range st.tags {
				st.tags[i] = int32(gr.N) // "untagged" sentinel above any label
				st.locks[i] = r.NewLock()
			}
			states[d] = st
			g := r.NewGroup()
			// DFS from every node in parallel, labeled by the seed node.
			for u := 0; u < gr.N; u++ {
				u := u
				gr := gr
				r.SpawnOrRun(e, g, "cc-seed", 16, func(ce *core.Env) {
					visit(ce, g, st, gr, u, int32(u))
				})
			}
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		out := make([][]int32, len(states))
		for d, st := range states {
			out[d] = st.tags
		}
		return checksumLabels(out)
	}
	return root, finish
}

// programDist keeps each node's tag in a runtime cell; tag updates move the
// cell to the visiting core, which is exactly the data ping-pong that makes
// the benchmark's performance collapse on distributed memory (Fig. 9).
func (b *ConnComp) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	tagCells := make([][]mem.Link, len(b.graphs))

	var visit func(e *core.Env, g *rt.Group, cells []mem.Link, gr *workloads.Graph, u int, label int32)
	visit = func(e *core.Env, g *rt.Group, cells []mem.Link, gr *workloads.Graph, u int, label int32) {
		deg := len(gr.Adj[u])
		e.Compute(ops(int64(4+2*deg), int64(1+deg), 0, 0, 0))
		improved := false
		r.Access(e, cells[u], func(d any) any {
			if tag := d.(int32); tag > label {
				improved = true
				return label
			}
			return nil
		})
		if !improved {
			return
		}
		for _, v := range gr.Adj[u] {
			v := int(v)
			r.SpawnOrRun(e, g, "cc-visit", 16, func(ce *core.Env) {
				visit(ce, g, cells, gr, v, label)
			})
		}
	}

	root := func(e *core.Env) {
		for d, gr := range b.graphs {
			cells := make([]mem.Link, gr.N)
			for u := 0; u < gr.N; u++ {
				cells[u] = r.NewCell(e, 8, int32(gr.N))
			}
			tagCells[d] = cells
			g := r.NewGroup()
			for u := 0; u < gr.N; u++ {
				u := u
				gr := gr
				r.SpawnOrRun(e, g, "cc-seed", 16, func(ce *core.Env) {
					visit(ce, g, cells, gr, u, int32(u))
				})
			}
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		out := make([][]int32, len(tagCells))
		for d, cells := range tagCells {
			labels := make([]int32, len(cells))
			for u := range cells {
				labels[u] = r.CellData(cells[u]).(int32)
			}
			out[d] = labels
		}
		return checksumLabels(out)
	}
	return root, finish
}
