package bench

import (
	"sort"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// Quicksort is the paper's Quicksort pair (§V): the shared-memory version
// works on arrays and spawns a task for one sub-array after each pivot
// step; the distributed version is an adaptation to lists whose distributed
// pivot steps gradually construct a binary search tree — browsing the list
// in order is then tantamount to traversing the tree.
type Quicksort struct {
	// Datasets is the number of arrays/lists sorted (50 in the paper).
	Datasets int
	// N is the number of elements per dataset (100,000 in the paper).
	N int
	// Grain is the sub-array size below which sorting is sequential.
	Grain int

	inputs [][]int64
}

// NewQuicksort returns the benchmark with laptop-scale defaults.
func NewQuicksort() *Quicksort {
	return &Quicksort{Datasets: 4, N: 20000, Grain: 512}
}

// Name implements Benchmark.
func (b *Quicksort) Name() string { return "quicksort" }

// Generate implements Benchmark.
func (b *Quicksort) Generate(seed int64, scale float64) {
	n := scaleInt(b.N, scale, 64)
	b.inputs = make([][]int64, b.Datasets)
	for d := range b.inputs {
		b.inputs[d] = workloads.RandomArray(seed+int64(d)*101, n)
	}
}

func (b *Quicksort) copies() [][]int64 {
	out := make([][]int64, len(b.inputs))
	for d := range b.inputs {
		out[d] = append([]int64(nil), b.inputs[d]...)
	}
	return out
}

func checksumSorted(arrs [][]int64) uint64 {
	s := newSum()
	for _, a := range arrs {
		for _, v := range a {
			s.addInt(v)
		}
		// Positional hash certifies the ordering, not just the multiset.
		for i := 0; i < len(a); i += 97 {
			s.addInt(int64(i) ^ a[i])
		}
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *Quicksort) RunNative() uint64 {
	arrs := b.copies()
	for _, a := range arrs {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return checksumSorted(arrs)
}

// partition performs one pivot step (Hoare-style with the last element as
// pivot) and returns the pivot position.
func partition(a []int64, lo, hi int) int {
	p := a[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if a[j] < p {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

// annotatePartition charges the pivot scan of k elements: one read pass,
// compare-and-maybe-swap per element, roughly half the elements written.
func annotatePartition(e *core.Env, base uint64, lo, k int) {
	e.Read(base+uint64(lo)*8, int64(k), 8)
	e.Compute(ops(int64(2*k), int64(k), 0, 0, 0))
	e.Write(base+uint64(lo)*8, int64(k/2), 8)
}

// annotateInsertionSort charges the sequential base case (≈ k²/4 compares
// and moves).
func annotateInsertionSort(e *core.Env, base uint64, lo, k int) {
	q := int64(k) * int64(k) / 4
	e.Read(base+uint64(lo)*8, int64(k), 8)
	e.Compute(ops(2*q, q, 0, 0, 0))
	e.Write(base+uint64(lo)*8, int64(k), 8)
}

// Program implements Benchmark.
func (b *Quicksort) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	arrs := b.copies()
	bases := make([]uint64, len(arrs))
	for d := range arrs {
		bases[d] = r.Alloc().Alloc(int64(len(arrs[d])) * 8)
	}
	var qsort func(e *core.Env, g *rt.Group, a []int64, base uint64, lo, hi int)
	qsort = func(e *core.Env, g *rt.Group, a []int64, base uint64, lo, hi int) {
		for hi-lo > b.Grain {
			p := partition(a, lo, hi)
			annotatePartition(e, base, lo, hi-lo)
			// Spawn a task for one sub-array, continue on the other
			// (paper: "spawns a new task to handle one of the sub-arrays
			// after each pivot step").
			left, right := p, hi
			lo2 := p + 1
			r.SpawnOrRun(e, g, "qsort", 24, func(ce *core.Env) {
				qsort(ce, g, a, base, lo2, right)
			})
			hi = left
		}
		if hi-lo > 1 {
			k := hi - lo
			sub := a[lo:hi]
			sort.Slice(sub, func(i, j int) bool { return sub[i] < sub[j] })
			annotateInsertionSort(e, base, lo, k)
		}
	}
	root := func(e *core.Env) {
		for d := range arrs {
			g := r.NewGroup()
			d := d
			qsort(e, g, arrs[d], bases[d], 0, len(arrs[d]))
			r.Join(e, g)
		}
	}
	finish := func() uint64 { return checksumSorted(arrs) }
	return root, finish
}

// qnode is one BST node of the distributed list version.
type qnode struct {
	pivot       int64
	left, right mem.Link // subtree cells (nil links = empty)
	leaf        []int64  // sorted elements for leaf nodes
}

// programDist builds the distributed list variant: each task receives a
// list fragment in a cell, performs a distributed pivot step creating a BST
// node, and spawns tasks for the two sub-lists to avoid transferring whole
// sub-arrays (§V).
func (b *Quicksort) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	inputs := b.copies()
	roots := make([]mem.Link, len(inputs))

	var sortList func(e *core.Env, g *rt.Group, node mem.Link)
	sortList = func(e *core.Env, g *rt.Group, node mem.Link) {
		var vals []int64
		r.Access(e, node, func(d any) any {
			n := d.(*qnode)
			vals = n.leaf
			return nil
		})
		k := len(vals)
		if k <= b.Grain {
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			annotateInsertionSort(e, 0, 0, k)
			r.Access(e, node, func(d any) any {
				n := d.(*qnode)
				n.leaf = vals
				return n
			})
			return
		}
		// Distributed pivot step: split the list around the pivot into
		// two fresh cells; the node keeps only the pivot.
		pivot := vals[k-1]
		var lows, highs []int64
		for _, v := range vals[:k-1] {
			if v < pivot {
				lows = append(lows, v)
			} else {
				highs = append(highs, v)
			}
		}
		e.Compute(ops(int64(2*k), int64(k), 0, 0, 0))
		leftLink := r.NewCell(e, len(lows)*8+16, &qnode{leaf: lows})
		rightLink := r.NewCell(e, len(highs)*8+16, &qnode{leaf: highs})
		r.Access(e, node, func(d any) any {
			n := d.(*qnode)
			n.pivot = pivot
			n.leaf = nil
			n.left, n.right = leftLink, rightLink
			return n
		})
		r.SpawnOrRun(e, g, "qsort-lo", 16, func(ce *core.Env) {
			sortList(ce, g, leftLink)
		})
		sortList(e, g, rightLink)
	}

	root := func(e *core.Env) {
		for d := range inputs {
			roots[d] = r.NewCell(e, len(inputs[d])*8+16, &qnode{leaf: inputs[d]})
			g := r.NewGroup()
			sortList(e, g, roots[d])
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		// Browsing the list in order is traversing the constructed BST.
		out := make([][]int64, len(roots))
		var walk func(l mem.Link, acc []int64) []int64
		walk = func(l mem.Link, acc []int64) []int64 {
			if l.Nil() {
				return acc
			}
			n := r.CellData(l).(*qnode)
			if n.leaf != nil || (n.left.Nil() && n.right.Nil()) {
				return append(acc, n.leaf...)
			}
			acc = walk(n.left, acc)
			acc = append(acc, n.pivot)
			return walk(n.right, acc)
		}
		for d := range roots {
			out[d] = walk(roots[d], nil)
		}
		return checksumSorted(out)
	}
	return root, finish
}
