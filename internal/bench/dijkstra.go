package bench

import (
	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/workloads"
)

// Dijkstra is the parallel shortest-paths benchmark of §V (after the
// Capsule formulation [29]): speculative label-correcting exploration where
// already explored paths may be explored again when reached with a lower
// tentative distance, and tasks reaching a near-optimal path terminate
// quickly, freeing cores for more interesting paths. More cores can
// *super-linearly* reduce the amount of work because nodes get tagged with
// good distances sooner (Fig. 8's discussion).
type Dijkstra struct {
	// Datasets is the number of random graphs (50 in the paper).
	Datasets int
	// Nodes and Edges size each graph (2000 / 3000 avg in the paper).
	Nodes, Edges int
	// MaxW is the maximum edge weight.
	MaxW int

	graphs []*workloads.Graph
}

// NewDijkstra returns the benchmark with laptop-scale defaults.
func NewDijkstra() *Dijkstra {
	return &Dijkstra{Datasets: 4, Nodes: 500, Edges: 750, MaxW: 10}
}

// Name implements Benchmark.
func (b *Dijkstra) Name() string { return "dijkstra" }

// Generate implements Benchmark.
func (b *Dijkstra) Generate(seed int64, scale float64) {
	n := scaleInt(b.Nodes, scale, 16)
	m := scaleInt(b.Edges, scale, 24)
	b.graphs = make([]*workloads.Graph, b.Datasets)
	for d := range b.graphs {
		b.graphs[d] = workloads.RandomWeightedGraph(seed+int64(d)*307, n, m, b.MaxW)
	}
}

func checksumDists(all [][]int64) uint64 {
	s := newSum()
	for _, dist := range all {
		for _, v := range dist {
			s.addInt(v)
		}
	}
	return s.value()
}

// RunNative implements Benchmark.
func (b *Dijkstra) RunNative() uint64 {
	out := make([][]int64, len(b.graphs))
	for d, g := range b.graphs {
		out[d] = workloads.DijkstraSeq(g, 0)
	}
	return checksumDists(out)
}

const distInf = int64(1) << 62

// Program implements Benchmark.
func (b *Dijkstra) Program(r *rt.Runtime, mode Mode) (func(*core.Env), func() uint64) {
	if mode == Distributed {
		return b.programDist(r)
	}
	type state struct {
		dist     []int64
		distBase uint64
		locks    []*rt.Lock
	}
	states := make([]*state, len(b.graphs))

	var explore func(e *core.Env, g *rt.Group, st *state, gr *workloads.Graph, u int, d int64)
	explore = func(e *core.Env, g *rt.Group, st *state, gr *workloads.Graph, u int, d int64) {
		deg := len(gr.Adj[u])
		e.Read(st.distBase+uint64(u)*8, 1, 8)
		e.Compute(ops(int64(4+3*deg), int64(1+deg), 0, 0, 0))
		r.AcquireLock(e, st.locks[u])
		if d >= st.dist[u] {
			// A task encountering an already explored path close to the
			// optimum terminates quickly, freeing its core.
			r.ReleaseLock(e, st.locks[u])
			return
		}
		st.dist[u] = d
		e.Write(st.distBase+uint64(u)*8, 1, 8)
		r.ReleaseLock(e, st.locks[u])
		for j, v := range gr.Adj[u] {
			v := int(v)
			nd := d + int64(gr.Weights[u][j])
			r.SpawnOrRun(e, g, "dij-explore", 24, func(ce *core.Env) {
				explore(ce, g, st, gr, v, nd)
			})
		}
	}

	root := func(e *core.Env) {
		for di, gr := range b.graphs {
			st := &state{
				dist:     make([]int64, gr.N),
				distBase: r.Alloc().Alloc(int64(gr.N) * 8),
				locks:    make([]*rt.Lock, gr.N),
			}
			for i := range st.dist {
				st.dist[i] = distInf
				st.locks[i] = r.NewLock()
			}
			states[di] = st
			g := r.NewGroup()
			gr := gr
			r.SpawnOrRun(e, g, "dij-root", 24, func(ce *core.Env) {
				explore(ce, g, st, gr, 0, 0)
			})
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		out := make([][]int64, len(states))
		for d, st := range states {
			dist := make([]int64, len(st.dist))
			for i, v := range st.dist {
				if v == distInf {
					v = -1
				}
				dist[i] = v
			}
			out[d] = dist
		}
		return checksumDists(out)
	}
	return root, finish
}

// programDist keeps tentative distances in cells; every relaxation drags
// the node's cell to the exploring core, collapsing performance as in
// Fig. 9.
func (b *Dijkstra) programDist(r *rt.Runtime) (func(*core.Env), func() uint64) {
	distCells := make([][]mem.Link, len(b.graphs))

	var explore func(e *core.Env, g *rt.Group, cells []mem.Link, gr *workloads.Graph, u int, d int64)
	explore = func(e *core.Env, g *rt.Group, cells []mem.Link, gr *workloads.Graph, u int, d int64) {
		deg := len(gr.Adj[u])
		e.Compute(ops(int64(4+3*deg), int64(1+deg), 0, 0, 0))
		improved := false
		r.Access(e, cells[u], func(cur any) any {
			if d < cur.(int64) {
				improved = true
				return d
			}
			return nil
		})
		if !improved {
			return
		}
		for j, v := range gr.Adj[u] {
			v := int(v)
			nd := d + int64(gr.Weights[u][j])
			r.SpawnOrRun(e, g, "dij-explore", 24, func(ce *core.Env) {
				explore(ce, g, cells, gr, v, nd)
			})
		}
	}

	root := func(e *core.Env) {
		for di, gr := range b.graphs {
			cells := make([]mem.Link, gr.N)
			for u := 0; u < gr.N; u++ {
				cells[u] = r.NewCell(e, 8, distInf)
			}
			distCells[di] = cells
			g := r.NewGroup()
			gr := gr
			r.SpawnOrRun(e, g, "dij-root", 24, func(ce *core.Env) {
				explore(ce, g, cells, gr, 0, 0)
			})
			r.Join(e, g)
		}
	}
	finish := func() uint64 {
		out := make([][]int64, len(distCells))
		for d, cells := range distCells {
			dist := make([]int64, len(cells))
			for u := range cells {
				v := r.CellData(cells[u]).(int64)
				if v == distInf {
					v = -1
				}
				dist[u] = v
			}
			out[d] = dist
		}
		return checksumDists(out)
	}
	return root, finish
}
