package bench

import (
	"math"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/topology"
	"simany/internal/vtime"
)

// runSim executes benchmark b in the given mode on an n-core mesh and
// returns the simulated checksum and the kernel result.
func runSim(t *testing.T, b Benchmark, mode Mode, n int, seed int64) (uint64, core.Result) {
	t.Helper()
	var ms core.MemSystem
	if mode == Distributed {
		ms = mem.NewDistributed()
	} else {
		ms = mem.NewShared()
	}
	k := core.New(core.Config{
		Topo:   topology.Mesh(n),
		Policy: core.Spatial{T: core.DefaultT},
		Mem:    ms,
		Seed:   seed,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	root, finish := b.Program(r, mode)
	res, err := r.Run(b.Name(), root)
	if err != nil {
		t.Fatalf("%s/%s: %v", b.Name(), mode, err)
	}
	return finish(), res
}

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate benchmark name %q", n)
		}
		seen[n] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 benchmarks, got %d", len(seen))
	}
	if _, err := ByName("quicksort"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

// TestSimMatchesNative is the central correctness test: for every
// benchmark, in both memory modes, the simulated parallel execution must
// produce exactly the native sequential result (§II.B "Program execution
// correctness").
func TestSimMatchesNative(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			b.Generate(42, 0.15)
			want := b.RunNative()
			for _, mode := range []Mode{Shared, Distributed} {
				got, res := runSim(t, b, mode, 8, 42)
				if got != want {
					t.Errorf("%s/%s: checksum %x != native %x", b.Name(), mode, got, want)
				}
				if res.FinalVT <= 0 {
					t.Errorf("%s/%s: no virtual time elapsed", b.Name(), mode)
				}
			}
		})
	}
}

func TestNativeDeterministic(t *testing.T) {
	for _, b := range All() {
		b.Generate(7, 0.1)
		a := b.RunNative()
		c := b.RunNative()
		if a != c {
			t.Errorf("%s: native run not repeatable", b.Name())
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	for _, mk := range []func() Benchmark{
		func() Benchmark { return NewQuicksort() },
		func() Benchmark { return NewDijkstra() },
	} {
		b1, b2 := mk(), mk()
		b1.Generate(9, 0.1)
		b2.Generate(9, 0.1)
		_, r1 := runSim(t, b1, Shared, 4, 3)
		_, r2 := runSim(t, b2, Shared, 4, 3)
		if r1.FinalVT != r2.FinalVT {
			t.Errorf("%s: virtual time differs across identical runs: %v vs %v",
				b1.Name(), r1.FinalVT, r2.FinalVT)
		}
	}
}

func TestQuicksortSpeedsUp(t *testing.T) {
	seq := NewQuicksort()
	seq.Datasets = 2
	seq.Generate(11, 0.4)
	_, r1 := runSim(t, seq, Shared, 1, 5)
	par := NewQuicksort()
	par.Datasets = 2
	par.Generate(11, 0.4)
	_, r16 := runSim(t, par, Shared, 16, 5)
	if r16.FinalVT >= r1.FinalVT {
		t.Errorf("no speedup: 1 core %v, 16 cores %v", r1.FinalVT, r16.FinalVT)
	}
}

func TestDistributedContendedSlowerThanShared(t *testing.T) {
	// Connected Components continuously exchanges vertex data: the
	// distributed version must be slower than the shared one on the same
	// machine size (the Fig. 8 vs Fig. 9 collapse).
	sh := NewConnComp()
	sh.Datasets = 1
	sh.Generate(13, 0.25)
	_, rs := runSim(t, sh, Shared, 16, 5)
	di := NewConnComp()
	di.Datasets = 1
	di.Generate(13, 0.25)
	_, rd := runSim(t, di, Distributed, 16, 5)
	if rd.FinalVT <= rs.FinalVT {
		t.Errorf("distributed CC (%v) not slower than shared (%v)", rd.FinalVT, rs.FinalVT)
	}
}

func TestGenerateScales(t *testing.T) {
	b := NewQuicksort()
	b.Generate(1, 1)
	n1 := len(b.inputs[0])
	b.Generate(1, 2)
	n2 := len(b.inputs[0])
	if n2 != 2*n1 {
		t.Errorf("scale 2 gave %d elements vs %d at scale 1", n2, n1)
	}
}

func TestChecksumDetectsOrderChange(t *testing.T) {
	a := [][]int64{{3, 1, 2}}
	b := [][]int64{{1, 2, 3}}
	if checksumSorted(a) == checksumSorted(b) {
		t.Error("checksum ignores ordering")
	}
}

func TestOpsHelper(t *testing.T) {
	c := ops(1, 2, 3, 4, 5)
	if c.Total() != 15 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestFnvBytes(t *testing.T) {
	if fnvBytes([]byte("a")) == fnvBytes([]byte("b")) {
		t.Error("hash collision on trivial input")
	}
}

func TestDijkstraMoreCoresNotMoreVT(t *testing.T) {
	// Dijkstra's speculative exploration benefits from parallelism; with a
	// fixed seed, 16 cores must be no slower than 1 core in virtual time.
	one := NewDijkstra()
	one.Datasets = 1
	one.Generate(17, 0.3)
	_, r1 := runSim(t, one, Shared, 1, 5)
	many := NewDijkstra()
	many.Datasets = 1
	many.Generate(17, 0.3)
	_, r16 := runSim(t, many, Shared, 16, 5)
	if r16.FinalVT > r1.FinalVT {
		t.Errorf("dijkstra slower on 16 cores: %v vs %v", r16.FinalVT, r1.FinalVT)
	}
}

func TestCycleLevelPolicyMatchesChecksum(t *testing.T) {
	// The same program under a different synchronization policy still
	// computes the same result (correctness is schedule-independent).
	b := NewQuicksort()
	b.Datasets = 1
	b.Generate(21, 0.1)
	want := b.RunNative()
	k := core.New(core.Config{
		Topo:   topology.Mesh(4),
		Policy: core.Spatial{T: vtime.CyclesInt(1000)},
		Mem:    mem.NewShared(),
		Seed:   1,
	})
	r := rt.New(k, nil, rt.DefaultOptions())
	root, finish := b.Program(r, Shared)
	if _, err := r.Run("qs", root); err != nil {
		t.Fatal(err)
	}
	if got := finish(); got != want {
		t.Errorf("checksum %x != %x", got, want)
	}
}

// TestQuicksortTheoreticalBound checks the paper's analysis: "the
// theoretical maximum speedup reachable by Quicksort is log2(n)/2 for
// balanced arrays of n elements" (§VI; with n=100,000 the ideal is 8.30
// and the paper measured 5.72). The simulated speedup must respect the
// bound for our dataset size.
func TestQuicksortTheoreticalBound(t *testing.T) {
	mk := func() *Quicksort {
		b := NewQuicksort()
		b.Datasets = 2
		return b
	}
	one := mk()
	one.Generate(33, 1)
	_, r1 := runSim(t, one, Shared, 1, 5)
	many := mk()
	many.Generate(33, 1)
	_, r64 := runSim(t, many, Shared, 64, 5)
	speedup := float64(r1.FinalVT) / float64(r64.FinalVT)
	n := float64(mk().N)
	bound := math.Log2(n) / 2
	if speedup > bound*1.15 { // 15% slack for annotation-model effects
		t.Errorf("quicksort speedup %.2f exceeds theoretical bound %.2f", speedup, bound)
	}
	if speedup < 2 {
		t.Errorf("quicksort speedup %.2f suspiciously low", speedup)
	}
}

// TestDistributedQuicksortBuildsSearchTree checks the §V description
// structurally: the distributed pivot steps "gradually construct a binary
// search tree" and "browsing the list in order is tantamount to traversing
// the constructed binary tree" — i.e. the in-order traversal (which finish
// performs) yields exactly the sorted input.
func TestDistributedQuicksortBuildsSearchTree(t *testing.T) {
	b := NewQuicksort()
	b.Datasets = 1
	b.N = 2000
	b.Grain = 64
	b.Generate(44, 1)
	want := b.RunNative()
	got, res := runSim(t, b, Distributed, 8, 7)
	if got != want {
		t.Fatal("in-order traversal of the pivot BST is not the sorted list")
	}
	if res.Messages == 0 {
		t.Error("distributed version exchanged no messages")
	}
}
