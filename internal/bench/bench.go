// Package bench implements the dwarf-like task-based benchmarks of §V:
// Quicksort (shared-memory arrays and a distributed list/BST variant),
// Connected Components, Dijkstra's shortest paths, the Barnes-Hut force
// phase, sparse matrix-vector multiply, and the octree update. Every
// benchmark has a native sequential implementation (the reference output
// and the normalization base of Fig. 7) and a task-parallel program built
// on the probe/spawn/join runtime, in both shared-memory and
// distributed-memory (cell) versions.
package bench

import (
	"fmt"
	"hash/fnv"

	"simany/internal/core"
	"simany/internal/rt"
	"simany/internal/timing"
)

// Mode selects the memory organization a benchmark program targets.
type Mode int

const (
	// Shared is the shared-memory architecture (uniform banks, locks).
	Shared Mode = iota
	// Distributed is the distributed-memory architecture (runtime cells).
	Distributed
)

// String names the mode.
func (m Mode) String() string {
	if m == Distributed {
		return "dist"
	}
	return "shared"
}

// Benchmark is one workload. The lifecycle is:
//
//	b.Generate(seed, scale)         // build pristine datasets
//	sum := b.RunNative()            // native run on a copy -> checksum
//	root, finish := b.Program(r, mode)
//	res, err := r.Run(b.Name(), root)
//	if finish() != sum { ... }      // simulated run must match
//
// Program must be callable repeatedly (each call works on fresh copies).
type Benchmark interface {
	Name() string
	// Generate builds the input datasets; scale ≥ 1 multiplies the
	// element counts toward the paper's full sizes.
	Generate(seed int64, scale float64)
	// RunNative executes the computation natively on a fresh copy and
	// returns the reference checksum.
	RunNative() uint64
	// Program builds the task-parallel program for runtime r: the root
	// task body, plus a finish function returning the checksum of the
	// simulated run's output.
	Program(r *rt.Runtime, mode Mode) (root func(*core.Env), finish func() uint64)
}

// All returns a fresh instance of every benchmark, in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		NewQuicksort(),
		NewConnComp(),
		NewDijkstra(),
		NewBarnesHut(),
		NewSpMxV(),
		NewOctree(),
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names lists the benchmark names.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}

// scaleInt scales a count, keeping at least min.
func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		return min
	}
	return v
}

// ops builds an instruction-count annotation from the most common classes.
func ops(intALU, branchCond, fpALU, fpMul, fpDiv int64) timing.Counts {
	var c timing.Counts
	c[timing.IntALU] = intALU
	c[timing.BranchCond] = branchCond
	c[timing.FPALU] = fpALU
	c[timing.FPMul] = fpMul
	c[timing.FPDiv] = fpDiv
	return c
}

// sum64 folds values into an FNV-1a checksum.
type sum64 struct{ h uint64 }

func newSum() *sum64 { return &sum64{h: 1469598103934665603} }

func (s *sum64) addInt(v int64) {
	s.h ^= uint64(v)
	s.h *= 1099511628211
}

func (s *sum64) addFloat(v float64) {
	// Quantize so tiny float reassociation differences (none are expected
	// — the parallel versions sum in deterministic order — but quantizing
	// keeps the checksum honest about what it certifies) do not flip bits.
	s.addInt(int64(v * 1e6))
}

func (s *sum64) value() uint64 { return s.h }

// fnvBytes hashes a byte slice (used by tests).
func fnvBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
