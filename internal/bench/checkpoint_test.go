package bench

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/metrics"
	"simany/internal/rt"
	"simany/internal/snap"
	"simany/internal/topology"
	"simany/internal/trace"
)

// obsRun bundles a kernel with full observability attached (trace
// recorder + metrics registry) and its runtime — the configuration the
// checkpoint contract is stated against: checkpoint at a barrier plus
// resume must be indistinguishable from an uninterrupted run in Result,
// trace stream, metrics state and benchmark checksum.
type obsRun struct {
	k   *core.Kernel
	r   *rt.Runtime
	rec *trace.Recorder
	reg *metrics.Registry
}

func newObsRun(shards, workers int, seed int64) *obsRun {
	rec := trace.NewRecorder(0)
	reg := metrics.New()
	k := core.New(core.Config{
		Topo:    topology.Mesh(16),
		Policy:  core.Spatial{T: core.DefaultT},
		Mem:     mem.NewShared(),
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		Tracer:  rec,
		Metrics: reg,
	})
	return &obsRun{k: k, r: rt.New(k, nil, rt.DefaultOptions()), rec: rec, reg: reg}
}

// firstDiff pinpoints the first line where two texts diverge.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return fmt.Sprintf("line %d:\n  got  %q\n  want %q", i+1, gl, wl)
		}
	}
	return "texts equal"
}

func metricsText(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return b.String()
}

// TestCheckpointRoundTrip is the tentpole contract applied to every
// bundled benchmark at two shard counts: run to a mid-run barrier,
// checkpoint, restore into a fresh kernel, continue — the spliced
// (prefix + resumed) trace, the final metrics text, the Result and the
// computation checksum must all be identical to an uninterrupted run.
// Benchmark programs are closures, so these files exercise the
// verified-replay restore path end to end.
func TestCheckpointRoundTrip(t *testing.T) {
	const seed = 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b.Generate(seed, 0.3)
			want := b.RunNative()
			shardCounts := []int{1, 4}
			for _, shards := range shardCounts {
				checkRoundTrip(t, b, shards, seed, want)
			}
		})
	}
}

func checkRoundTrip(t *testing.T, b Benchmark, shards int, seed int64, want uint64) {
	t.Helper()

	// Uninterrupted reference run.
	full := newObsRun(shards, 2, seed)
	root, finish := b.Program(full.r, Shared)
	fullRes, err := full.r.Run(b.Name(), root)
	if err != nil {
		t.Fatalf("shards=%d: full run: %v", shards, err)
	}
	if got := finish(); got != want {
		t.Fatalf("shards=%d: full run checksum %#x, native %#x", shards, got, want)
	}
	fullEvents := full.rec.Events()
	fullMetrics := metricsText(t, full.reg)
	finalPos := full.k.Position()
	if finalPos < 2 {
		t.Fatalf("shards=%d: run too short to interrupt (position %d)", shards, finalPos)
	}

	// Interrupted run: pause at the midpoint barrier, checkpoint.
	mid := finalPos / 2
	intr := newObsRun(shards, 2, seed)
	root, _ = b.Program(intr.r, Shared)
	intr.k.PauseAfter(mid)
	if _, err := intr.r.Run(b.Name(), root); !errors.Is(err, core.ErrPaused) {
		t.Fatalf("shards=%d: expected ErrPaused at position %d, got %v", shards, mid, err)
	}
	if !intr.k.Paused() || intr.k.Position() != mid {
		t.Fatalf("shards=%d: paused=%v position=%d, want paused at %d",
			shards, intr.k.Paused(), intr.k.Position(), mid)
	}
	var buf bytes.Buffer
	if err := intr.k.Checkpoint(&buf); err != nil {
		t.Fatalf("shards=%d: checkpoint: %v", shards, err)
	}
	prefixEvents := intr.rec.Events()

	// The file must parse and identify itself.
	ck, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("shards=%d: reading checkpoint back: %v", shards, err)
	}
	if ck.Pos != mid {
		t.Fatalf("shards=%d: checkpoint position %d, want %d", shards, ck.Pos, mid)
	}
	if ck.Mode != snap.ModeReplay {
		t.Fatalf("shards=%d: closure-bodied benchmark checkpoint should be replay mode, got %v", shards, ck.Mode)
	}

	// Resume into a fresh kernel and run to completion. Replay-mode resume
	// needs the original program re-injected; Program is re-callable.
	res := newObsRun(shards, 2, seed)
	if err := res.k.ArmResume(ck); err != nil {
		t.Fatalf("shards=%d: arming resume: %v", shards, err)
	}
	root, finish = b.Program(res.r, Shared)
	resRes, err := res.r.Run(b.Name(), root)
	if err != nil {
		t.Fatalf("shards=%d: resumed run: %v", shards, err)
	}
	if got := finish(); got != want {
		t.Fatalf("shards=%d: resumed checksum %#x, native %#x", shards, got, want)
	}
	if !reflect.DeepEqual(resRes, fullRes) {
		t.Errorf("shards=%d: resumed Result diverged:\n  got  %+v\n  want %+v", shards, resRes, fullRes)
	}
	if got := metricsText(t, res.reg); got != fullMetrics {
		t.Errorf("shards=%d: resumed metrics text diverged:\n%s", shards, firstDiff(got, fullMetrics))
	}

	// Trace splice: prefix (up to the checkpoint barrier) + resumed stream
	// must equal the uninterrupted stream event for event.
	spliced := append(append([]core.TraceEvent(nil), prefixEvents...), res.rec.Events()...)
	if len(spliced) != len(fullEvents) {
		t.Fatalf("shards=%d: spliced trace has %d events, full run %d (prefix %d, resumed %d)",
			shards, len(spliced), len(fullEvents), len(prefixEvents), len(res.rec.Events()))
	}
	for i := range spliced {
		if spliced[i] != fullEvents[i] {
			t.Fatalf("shards=%d: trace diverged at event %d:\n  got  %+v\n  want %+v",
				shards, i, spliced[i], fullEvents[i])
		}
	}
}

// TestCheckpointRejectsMismatchedConfig: a checkpoint must refuse to arm
// against a kernel whose configuration fingerprint differs.
func TestCheckpointRejectsMismatchedConfig(t *testing.T) {
	b, err := ByName("quicksort")
	if err != nil {
		t.Fatal(err)
	}
	b.Generate(7, 0.2)
	run := newObsRun(4, 2, 7)
	root, _ := b.Program(run.r, Shared)
	run.k.PauseAfter(2)
	if _, err := run.r.Run(b.Name(), root); !errors.Is(err, core.ErrPaused) {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	var buf bytes.Buffer
	if err := run.k.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	other := newObsRun(4, 2, 8) // different seed -> different fingerprint
	if err := other.k.ArmResume(ck); err == nil {
		t.Fatal("ArmResume accepted a checkpoint from a different configuration")
	}
	seq := newObsRun(1, 1, 7) // same seed, different engine kind
	if err := seq.k.ArmResume(ck); err == nil {
		t.Fatal("ArmResume accepted a sharded checkpoint on the sequential engine")
	}
}

// TestCheckpointCorruptionDetected: every single-byte corruption of a real
// checkpoint file must be detected at read time (the trailing CRC), and
// truncations must never read successfully.
func TestCheckpointCorruptionDetected(t *testing.T) {
	b, err := ByName("spmxv")
	if err != nil {
		t.Fatal(err)
	}
	b.Generate(3, 0.2)
	run := newObsRun(4, 1, 3)
	root, _ := b.Program(run.r, Shared)
	run.k.PauseAfter(2)
	if _, err := run.r.Run(b.Name(), root); !errors.Is(err, core.ErrPaused) {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	var buf bytes.Buffer
	if err := run.k.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := core.ReadCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine checkpoint failed to read: %v", err)
	}
	// Flip one bit at a spread of offsets (including the CRC itself).
	for _, off := range []int{0, 7, 8, len(data) / 3, len(data) / 2, len(data) - 5, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, err := core.ReadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d went undetected", off)
		}
	}
	for _, n := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, err := core.ReadCheckpoint(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}
