package bench

import (
	"reflect"
	"testing"

	"simany/internal/core"
	"simany/internal/mem"
	"simany/internal/rt"
	"simany/internal/topology"
	"simany/internal/trace"
	"simany/internal/vtime"
)

// tracedRunOn executes benchmark b on a 16-core mesh with the given shard
// and worker counts, recording the full trace. want is the native checksum,
// computed once up front (RunNative between simulated runs can perturb the
// generated dataset).
func tracedRunOn(t *testing.T, b Benchmark, shards, workers int, seed int64, want uint64) (*trace.Recorder, core.Result) {
	t.Helper()
	rec := trace.NewRecorder(0)
	k := core.New(core.Config{
		Topo:    topology.Mesh(16),
		Policy:  core.Spatial{T: core.DefaultT},
		Mem:     mem.NewShared(),
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		Tracer:  rec,
	})
	if shards > 1 && !k.Sharded() {
		t.Fatalf("%s: expected the sharded engine", b.Name())
	}
	r := rt.New(k, nil, rt.DefaultOptions())
	root, finish := b.Program(r, Shared)
	res, err := r.Run(b.Name(), root)
	if err != nil {
		t.Fatalf("%s shards=%d workers=%d: %v", b.Name(), shards, workers, err)
	}
	if got := finish(); got != want {
		t.Fatalf("%s shards=%d workers=%d: checksum %#x, native %#x",
			b.Name(), shards, workers, got, want)
	}
	return rec, res
}

// traceShape summarizes the structural invariants every well-formed stream
// must satisfy.
type traceShape struct {
	starts, ends, sends, handles int
}

// checkWellFormed verifies stream invariants (dense Seq, per-core VT
// monotonicity of lifecycle events, balanced lifecycles, send/handle
// conservation) and returns the shape. Monotonicity is checked only for
// lifecycle events, which track the core's own clock; handle/unblock
// events carry arrival and wake stamps that may run ahead of it.
func checkWellFormed(t *testing.T, label string, events []core.TraceEvent) traceShape {
	t.Helper()
	var sh traceShape
	lastVT := map[int]vtime.Time{}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("%s: event %d has Seq %d, not dense", label, i, ev.Seq)
		}
		switch ev.Kind {
		case core.TraceTaskStart, core.TraceTaskResume, core.TraceTaskStall,
			core.TraceTaskBlock, core.TraceTaskEnd:
			if last, ok := lastVT[ev.Core]; ok && ev.VT < last {
				t.Fatalf("%s: core %d event at %v after %v", label, ev.Core, ev.VT, last)
			}
			lastVT[ev.Core] = ev.VT
		}
		switch ev.Kind {
		case core.TraceTaskStart:
			sh.starts++
		case core.TraceTaskEnd:
			sh.ends++
		case core.TraceSend:
			sh.sends++
		case core.TraceHandle:
			sh.handles++
		}
	}
	if sh.starts != sh.ends {
		t.Errorf("%s: %d starts, %d ends", label, sh.starts, sh.ends)
	}
	if sh.sends != sh.handles {
		t.Errorf("%s: %d sends, %d handles", label, sh.sends, sh.handles)
	}
	return sh
}

// TestShardedTraceEquivalence is the tentpole guarantee applied to every
// bundled benchmark: for a fixed (seed, shards) pair the merged trace
// stream is bitwise identical at every worker count, tracing does not
// perturb the Result, and both the sharded and the sequential streams are
// structurally well-formed. (The sharded stream is not expected to equal
// the sequential one event-for-event: the shard count is part of the event
// semantics — the round quantum and barrier-deferred cross-shard traffic
// change contention timing. See docs/observability.md.)
func TestShardedTraceEquivalence(t *testing.T) {
	const seed = 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b.Generate(seed, 1)
			want := b.RunNative()

			seqRec, _ := tracedRunOn(t, b, 1, 1, seed, want)
			checkWellFormed(t, "sequential", seqRec.Events())

			baseRec, baseRes := tracedRunOn(t, b, 4, 1, seed, want)
			base := baseRec.Events()
			if len(base) == 0 {
				t.Fatal("no events traced")
			}
			checkWellFormed(t, "sharded", base)
			workerCounts := []int{2}
			if !testing.Short() {
				workerCounts = append(workerCounts, 8)
			}
			for _, w := range workerCounts {
				rec, res := tracedRunOn(t, b, 4, w, seed, want)
				if !reflect.DeepEqual(res, baseRes) {
					t.Errorf("workers=%d: result diverged", w)
				}
				if !reflect.DeepEqual(rec.Events(), base) {
					t.Fatalf("workers=%d: trace stream diverged (%d events vs %d)",
						w, len(rec.Events()), len(base))
				}
			}
		})
	}
}
