package lint

import (
	"go/ast"
	"go/types"
)

// LockDiscipline flags sync.Mutex/RWMutex/Map/Cond fields (and package-level
// lock variables) added to the simulator packages outside the engine's
// sanctioned set. Shared simulated-object state must be mutated through
// home-shard arbitration (Kernel.Defer / Runtime.runAt) so the mutation
// order depends only on virtual time — an ad-hoc lock makes the order
// depend on host scheduling, which silently breaks the (seed, shards)
// determinism contract even though the race detector stays quiet.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag unsanctioned host locks in simulator state",
	Run:  runLockDiscipline,
}

// sanctionedLocks are the host locks the engine legitimately needs, as
// "<pkg path suffix>.<Type>.<field>". They guard host-side registries that
// are order-insensitive by construction, not simulated state:
//
//   - core.Kernel.panicMu: first-panic capture; workers race benignly.
//   - mem.Allocator.mu: address handout; per-core arenas make the
//     addresses order-independent.
//   - mem.CellStore.mu: cell registry; per-creator id arenas make the ids
//     order-independent.
var sanctionedLocks = map[string]bool{
	"core.Kernel.panicMu": true,
	"mem.Allocator.mu":    true,
	"mem.CellStore.mu":    true,
}

// hostLockType reports whether t is one of the sync lock types.
func hostLockType(t types.Type) (string, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Map", "Cond":
		return "sync." + obj.Name(), true
	}
	return "", false
}

func runLockDiscipline(prog *Program, p *Package, r *Reporter) {
	if !p.isInternal(prog, deterministicPkgs...) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					checkStructLocks(p, r, spec.Name.Name, st)
				case *ast.ValueSpec:
					for _, name := range spec.Names {
						obj := p.Info.Defs[name]
						if obj == nil || obj.Parent() != p.Pkg.Scope() {
							continue
						}
						if lock, ok := hostLockType(obj.Type()); ok {
							r.Report(name.Pos(), "lockdiscipline",
								"package-level %s %q in simulator package %s: mutate shared state via home-shard arbitration, not host locking",
								lock, name.Name, p.Pkg.Name())
						}
					}
				}
			}
		}
	}
}

// checkStructLocks flags unsanctioned lock fields of one struct type.
func checkStructLocks(p *Package, r *Reporter, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		lock, ok := hostLockType(t)
		if !ok {
			continue
		}
		names := field.Names
		if len(names) == 0 {
			// Embedded field: named after its type.
			names = []*ast.Ident{{Name: lock, NamePos: field.Type.Pos()}}
		}
		for _, name := range names {
			key := p.Pkg.Name() + "." + typeName + "." + name.Name
			if sanctionedLocks[key] {
				continue
			}
			r.Report(name.Pos(), "lockdiscipline",
				"%s field %s.%s is outside the engine's sanctioned lock set: shared simulated state must be arbitrated by its home shard (Kernel.Defer / Runtime.runAt), not locked ad hoc",
				lock, typeName, name.Name)
		}
	}
}
