// Package lint is SiMany's static-analysis suite: a set of analyzers,
// built purely on the standard library's go/ast, go/parser, go/token and
// go/types, that turn the simulator's determinism and shard-safety
// conventions into machine-checked rules.
//
// The conventions exist because the paper's headline guarantees only hold
// for deterministic runs: spatial synchronization bounds drift by
// diameter × T (§II.A) and per-(src,dst) FIFO delivery must hold no matter
// how host threads are scheduled (§II.B). PR 1's sharded engine encodes
// them as idioms — home-shard arbitration, per-core seeded RNGs,
// (stamp, src, idx)-ordered barrier merges — and this package makes the
// idioms enforceable in CI. See docs/lint.md for the rule catalogue.
//
// Diagnostics can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	//lint:allow rule1,rule2 one-line justification
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one lint rule. Run inspects a single package and reports
// findings through the Reporter; Program gives access to every loaded
// package for cross-package facts (annotations, callee declarations).
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run analyzes one package.
	Run func(prog *Program, p *Package, r *Reporter)
}

// Analyzers returns the full rule set in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		Entropyflow,
		MapOrder,
		HomeShard,
		RawVtime,
		LockDiscipline,
		SnapshotSafe,
		SnapCover,
		AllowJustify,
	}
}

// AllowJustify mechanizes the "justification is mandatory" convention: a
// //lint:allow directive naming rules but carrying no justification text
// used to rely on review to get rejected; now it is a finding itself.
var AllowJustify = &Analyzer{
	Name: "allowjustify",
	Doc:  "require a one-line justification on every //lint:allow directive",
	Run:  runAllowJustify,
}

func runAllowJustify(prog *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := allowDirective(c.Text)
				if !ok {
					continue
				}
				if len(strings.Fields(rest)) < 2 {
					r.Report(c.Pos(), "allowjustify",
						"//lint:allow needs a one-line justification after the rule list (why is this finding safe to suppress?)")
				}
			}
		}
	}
}

// allowDirective extracts the text after "//lint:allow", reporting whether
// the comment is such a directive.
func allowDirective(comment string) (rest string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "lint:allow") {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, "lint:allow")), true
}

// Diagnostic is one finding, addressable by file and line.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Suppression is one finding silenced by a //lint:allow directive,
// recorded so allow-creep is machine-trackable (-json emits the list).
type Suppression struct {
	Rule          string `json:"rule"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Justification string `json:"justification"`
}

// Reporter collects diagnostics and applies //lint:allow suppressions.
type Reporter struct {
	fset *token.FileSet
	// allow maps file -> line -> suppressed rule name -> justification. A
	// suppression comment covers its own line and the line below it, so it
	// works both trailing a statement and standing above one.
	allow        map[string]map[int]map[string]string
	diags        []Diagnostic
	suppressed   int
	suppressions []Suppression
}

// NewReporter builds a reporter for packages positioned on fset.
func NewReporter(fset *token.FileSet) *Reporter {
	return &Reporter{fset: fset, allow: make(map[string]map[int]map[string]string)}
}

// CollectAllows scans a file's comments for //lint:allow directives.
func (r *Reporter) CollectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := allowDirective(c.Text)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			just := strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			pos := r.fset.Position(c.Pos())
			for _, rule := range strings.Split(fields[0], ",") {
				rule = strings.TrimSpace(rule)
				if rule == "" {
					continue
				}
				r.addAllow(pos.Filename, pos.Line, rule, just)
				r.addAllow(pos.Filename, pos.Line+1, rule, just)
			}
		}
	}
}

func (r *Reporter) addAllow(file string, line int, rule, just string) {
	byLine := r.allow[file]
	if byLine == nil {
		byLine = make(map[int]map[string]string)
		r.allow[file] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = make(map[string]string)
		byLine[line] = rules
	}
	rules[rule] = just
}

// Report files a diagnostic at pos unless a suppression covers it.
func (r *Reporter) Report(pos token.Pos, rule, format string, args ...any) {
	p := r.fset.Position(pos)
	if byLine := r.allow[p.Filename]; byLine != nil {
		if just, ok := byLine[p.Line][rule]; ok {
			r.suppressed++
			r.suppressions = append(r.suppressions, Suppression{
				Rule: rule, File: p.Filename, Line: p.Line, Justification: just,
			})
			return
		}
	}
	r.diags = append(r.diags, Diagnostic{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Rule: rule, Msg: fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings sorted by position, then rule.
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return r.diags
}

// Suppressed returns the number of findings silenced by //lint:allow.
func (r *Reporter) Suppressed() int { return r.suppressed }

// Suppressions returns the silenced findings sorted by position, then rule.
func (r *Reporter) Suppressions() []Suppression {
	sort.Slice(r.suppressions, func(i, j int) bool {
		a, b := r.suppressions[i], r.suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return r.suppressions
}

// Run executes the given analyzers over every package of prog, fanning
// the packages out across NumCPU workers, and returns the reporter
// holding the merged results. Output is deterministic: the shared lazy
// state (annotations, call graph, the module-global analyses behind it)
// is computed before the fan-out or guarded by sync.Once, each package
// collects into its own sub-reporter, and Diagnostics()/Suppressions()
// sort by position, so worker interleaving never reaches the output.
func Run(prog *Program, analyzers []*Analyzer) *Reporter {
	r := NewReporter(prog.Fset)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			r.CollectAllows(f)
		}
	}
	prog.Annotations()
	prog.CallGraph()

	subs := make([]*Reporter, len(prog.Pkgs))
	workers := min(runtime.NumCPU(), len(prog.Pkgs))
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sub := &Reporter{fset: prog.Fset, allow: r.allow}
				for _, a := range analyzers {
					a.Run(prog, prog.Pkgs[i], sub)
				}
				subs[i] = sub
			}
		}()
	}
	for i := range prog.Pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, sub := range subs {
		if sub == nil {
			continue
		}
		r.diags = append(r.diags, sub.diags...)
		r.suppressed += sub.suppressed
		r.suppressions = append(r.suppressions, sub.suppressions...)
	}
	return r
}

// ---------------------------------------------------------------------------
// Shared helpers

// deterministicPkgs are the simulator packages where host entropy is
// forbidden: everything they compute must depend only on (seed, config).
var deterministicPkgs = []string{
	"core", "rt", "mem", "network", "drift", "vtime", "topology", "metrics",
}

// stateMutatorPkgs are the packages whose functions mutate simulator state
// or emit messages; calling into them in map-iteration order is the bug
// class that breaks (seed, shards) reproducibility.
var stateMutatorPkgs = []string{"core", "rt", "network", "mem"}

// isInternal reports whether p is the module package internal/<name> for
// any of names.
func (p *Package) isInternal(prog *Program, names ...string) bool {
	for _, n := range names {
		if p.Path == prog.Module+"/internal/"+n {
			return true
		}
	}
	return false
}

// internalPkgPath reports whether path is <module>/internal/<name> for any
// of names.
func internalPkgPath(prog *Program, path string, names ...string) bool {
	for _, n := range names {
		if path == prog.Module+"/internal/"+n {
			return true
		}
	}
	return false
}

// isTypeRef reports whether a selector names a type (rand.Rand) rather
// than a function or variable.
func isTypeRef(p *Package, sel *ast.SelectorExpr) bool {
	_, ok := p.Info.Uses[sel.Sel].(*types.TypeName)
	return ok
}

// pkgNameOf resolves a selector base identifier to an imported package, or
// nil when the identifier is anything else (a variable, a type, ...).
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn
}

// calleeFunc resolves the function or method a call expression invokes,
// nil for builtins, type conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isVtimeTime reports whether t (after unaliasing) is the named type
// <module>/internal/vtime.Time.
func isVtimeTime(prog *Program, t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		obj.Pkg().Path() == prog.Module+"/internal/vtime"
}

// inspectWithStack walks f like ast.Inspect but hands the visitor the stack
// of ancestor nodes (innermost last, including n itself).
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(n, stack) {
			// ast.Inspect skips both the children and the closing nil call
			// when the visitor returns false, so pop here.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
