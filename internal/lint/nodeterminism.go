package lint

import (
	"go/ast"
	"go/types"
)

// NoDeterminism forbids host-entropy sources inside the simulator packages
// (internal/{core,rt,mem,network,drift,vtime,topology}): wall-clock reads,
// the global math/rand stream and process-identity calls all make results
// depend on the host instead of (seed, config), which breaks the
// reproducibility the sharded engine's determinism contract (§II.A–B) is
// built on. Simulated code must draw randomness from Core.Rand() (the
// per-core seeded stream) or from an explicitly seeded rand.New.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock, global math/rand and process entropy in simulator packages",
	Run:  runNoDeterminism,
}

// nodetTime are the time package entry points that read the host clock.
var nodetTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// nodetRandAllowed are the math/rand names that stay deterministic because
// they only construct explicitly seeded generators.
var nodetRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// nodetOS are the os package calls that leak host identity or environment
// into simulation results.
var nodetOS = map[string]bool{
	"Getpid": true, "Getppid": true, "Getenv": true, "Environ": true,
	"Hostname": true,
}

func runNoDeterminism(prog *Program, p *Package, r *Reporter) {
	if !p.isInternal(prog, deterministicPkgs...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(p.Info, sel.X)
			if pn == nil {
				return true
			}
			// Referencing a type (rand.Rand, rand.Source) carries no
			// entropy; only functions and variables do.
			if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if nodetTime[name] {
					r.Report(sel.Pos(), "nodeterminism",
						"time.%s reads the host clock in simulator package %s; virtual time must come from vtime/Core state",
						name, p.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !nodetRandAllowed[name] {
					r.Report(sel.Pos(), "nodeterminism",
						"global rand.%s is host-seeded; draw from Core.Rand() or an explicitly seeded rand.New so results depend only on (seed, shards)",
						name)
				}
			case "os":
				if nodetOS[name] {
					r.Report(sel.Pos(), "nodeterminism",
						"os.%s leaks host identity into simulator package %s; results must depend only on (seed, config)",
						name, p.Pkg.Name())
				}
			}
			return true
		})
	}
}
