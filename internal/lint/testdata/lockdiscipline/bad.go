// Corpus for the lockdiscipline analyzer. Loaded by the tests under the
// fake import path simany/internal/rt so the simulator-package gate
// applies (and the sanctioned set, which names core/mem fields only, does
// not match anything here).
package rt

import "sync"

type sched struct {
	mu    sync.Mutex    // want:lockdiscipline
	rw    *sync.RWMutex // want:lockdiscipline
	byKey sync.Map      // want:lockdiscipline
	count int
}

type embedded struct {
	sync.Mutex // want:lockdiscipline
	n          int
}

var tableMu sync.Mutex // want:lockdiscipline

//lint:allow lockdiscipline corpus fixture: demonstrates suppression
var quietMu sync.RWMutex

// plain is clean: no lock state.
type plain struct {
	items []int
}
