// Corpus for the nodeterminism analyzer. Loaded by the tests under the
// fake import path simany/internal/core so the restricted-package gate
// applies. Marked lines must each produce a finding; every other line
// must stay clean.
package core

import (
	"math/rand"
	"os"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want:nodeterminism
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want:nodeterminism
}

func roll() int {
	return rand.Int() // want:nodeterminism
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want:nodeterminism
}

// seeded is clean: constructing an explicitly seeded generator is the
// sanctioned source of randomness, and rand.Rand is only a type here.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func host() (string, error) {
	return os.Hostname() // want:nodeterminism
}

func pid() int {
	//lint:allow nodeterminism corpus fixture: demonstrates suppression
	return os.Getpid()
}
