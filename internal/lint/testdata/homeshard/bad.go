// Corpus for the homeshard analyzer: a self-contained model of the
// runtime's arbitration annotations.
package hs

var state int

// arbiter models Kernel.Defer / Runtime.runAt: it routes fn into the home
// shard's context.
//
//simany:arbiter
func arbiter(fn func()) { fn() }

// applyEnd mutates home-owned state.
//
//simany:homeshard
func applyEnd() { state++ }

// applyMore chains home-shard context: calling another home-shard function
// is legal.
//
//simany:homeshard
func applyMore() {
	applyEnd()
}

// drain models the barrier: single-threaded, so home calls are legal.
//
//simany:barrier
func drain() {
	applyEnd()
}

// viaArbiter is the sanctioned route from foreign context: a closure
// handed directly to the arbiter.
func viaArbiter() {
	arbiter(func() { applyEnd() })
}

// helperClosure: a closure inside a home-shard function inherits its
// context (closures are transparent unless they are arbiter arguments).
//
//simany:homeshard
func helperClosure() {
	do := func() { applyEnd() }
	do()
}

func direct() {
	applyEnd() // want:homeshard
}

func looseClosure() func() {
	return func() {
		applyMore() // want:homeshard
	}
}

func notAnArbiterArg(run func(fn func())) {
	run(func() {
		applyEnd() // want:homeshard
	})
}

// helper launders foreign context: its only caller is a foreign entry
// point, so the home-shard call inside it is flagged with the full chain
// (entry [no module-internal caller] → helper → applyEnd).
func helper() {
	applyEnd() // want:homeshard
}

func entry() {
	helper()
}

// homeHelper is the legal counterpart: its only caller is annotated, so
// home-shard context propagates through it and the call stays clean.
func homeHelper() {
	applyEnd()
}

//simany:homeshard
func applyBatch() {
	homeHelper()
}

// use invokes an arbitrary function value.
func use(fn func()) { fn() }

// leakValue hands a home-shard function around as a value: always a
// finding, because the value can be invoked from any context.
func leakValue() {
	use(applyEnd) // want:homeshard
}
