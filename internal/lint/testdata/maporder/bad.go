// Corpus for the maporder analyzer. Loaded by the tests under the fake
// import path simany/internal/network so calls to this package's own
// functions count as simulator-state calls.
package network

// Send stands in for a simulator-state mutator: the analyzer keys on the
// declaring package path, not the body.
func Send(dst int) {}

type table struct {
	rows map[int][]int
}

func broadcast(peers map[int]bool, ch chan int, tab *table) []int {
	for p := range peers {
		Send(p) // want:maporder
	}
	for p := range peers {
		ch <- p // want:maporder
	}
	for p := range peers {
		go drainOne(ch, p) // want:maporder
	}
	for p, ok := range peers {
		if ok {
			tab.rows[0] = append(tab.rows[0], p) // want:maporder
		}
	}
	// The closure is created per iteration; the effect still happens in
	// map order when the closures run.
	for p := range peers {
		defer func() { Send(p) }() // want:maporder
	}
	// Sanctioned collect-then-sort idiom: appending to a loop-local slice
	// is clean — the caller sorts before acting.
	var ids []int
	for p := range peers {
		ids = append(ids, p)
	}
	return ids
}

func drainOne(ch chan int, p int) {}

// countOnly is clean: pure reads and commutative accumulation do not
// depend on iteration order.
func countOnly(peers map[int]bool) int {
	n := 0
	for _, ok := range peers {
		if ok {
			n++
		}
	}
	return n
}
