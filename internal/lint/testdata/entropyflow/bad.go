// Corpus for the entropyflow analyzer. Loaded under the fake import path
// simany/internal/core so the restricted-package gate applies. Direct
// entropy uses are nodeterminism's findings and stay unmarked here;
// entropyflow fires on the interprocedural hops — calls and function-value
// references into functions that transitively reach a host-entropy source.
package core

import (
	"os"
	"time"
)

// jitter reads the host clock directly. The direct use belongs to
// nodeterminism, so this line carries no entropyflow marker.
func jitter() time.Duration { return time.Since(time.Time{}) }

// step launders entropy through one hop.
func step() {
	_ = jitter() // want:entropyflow
}

// outer launders through two hops; the witness chain names both.
func outer() {
	step() // want:entropyflow
}

type clock struct{}

func (clock) read() time.Time { return time.Now() }

// sample leaks entropy through a method value: the reference alone makes
// the result clock-dependent wherever it is later invoked.
func sample() func() time.Time {
	c := clock{}
	return c.read // want:entropyflow
}

// env reads the host environment directly (again nodeterminism's finding).
func env() string { return os.Getenv("SIMANY_DEBUG") }

// configured is an intentional, suppressed exception.
func configured() bool {
	//lint:allow entropyflow setup-time toggle, read once before the run starts
	return env() != ""
}

// pure and usesPure prove the clean path: no entropy anywhere in the
// chain, no findings.
func pure(a, b int) int { return a + b }

func usesPure() int { return pure(1, 2) }
