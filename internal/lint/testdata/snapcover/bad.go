// Corpus for the snapcover analyzer. Loaded under the fake import path
// simany/internal/sc. Root gets its checkpoint-root status structurally
// (a method taking *snap.Encoder); Loose is rooted as a struct parameter
// of an encode function; Sub is reached by traversing Root's covered
// fields. Every non-exempt field must be referenced by encode-side code,
// carry //simany:derived with a justification, or be marked want.
package sc

import (
	"sync"

	"simany/internal/snap"
)

// Root models a Snapshottable checkpoint root.
type Root struct {
	live    int64
	dropped int64 // want:snapcover
	tail    int64 // covered only through the tailWords helper
	seq     int64 // covered only through the literal inside encode
	sub     Sub
	//simany:derived recomputed from live by reindex after decode
	cache int64
	//simany:derived
	bare int64 // want:snapcover

	mu   sync.Mutex   // exempt: host-side guard
	hook func() error // exempt: never serializable
	wake chan int     // exempt: never serializable
}

// Sub is reachable through Root.sub; its coverage is checked too.
type Sub struct {
	n      int64
	missed int64 // want:snapcover
}

// Loose is reachable only as a struct parameter of an encode function.
type Loose struct {
	id   uint64
	gone uint64 //lint:allow snapcover retired field kept for wire-layout compatibility
}

// Scratch is not reachable from any checkpoint root: never checked.
type Scratch struct {
	junk int
}

func (r *Root) encode(e *snap.Encoder) {
	e.Varint(r.live)
	for _, w := range r.tailWords() {
		e.Varint(w)
	}
	emit := func() { e.Varint(r.seq) }
	emit()
	encodeSub(e, &r.sub)
}

// tailWords is a statFields-style helper: a direct callee of encode whose
// field references count as coverage without an Encoder parameter.
func (r *Root) tailWords() []int64 { return []int64{r.tail} }

func encodeSub(e *snap.Encoder, s *Sub) {
	e.Varint(s.n)
}

func encodeLoose(e *snap.Encoder, l Loose) {
	e.Uvarint(l.id)
}

// decode references dropped, but decode-side references do not count: an
// un-encoded field can never round-trip.
func (r *Root) decode(d *snap.Decoder) error {
	v, err := d.Varint()
	if err != nil {
		return err
	}
	r.dropped = v
	return nil
}
