// Corpus for the snapshotsafe analyzer. Loaded under the fake import path
// simany/internal/core, so the package is inside the checkpointed set.
package core

import (
	"errors"
	"fmt"
	"sync"
)

// Plain mutable scalars escape every per-shard checkpoint root.
var stepCounter int64 // want:snapshotsafe

// Reference types are mutable state regardless of whether the binding
// itself is reassigned.
var seen = map[string]int{} // want:snapshotsafe

var sharedBuf []byte // want:snapshotsafe

// Synchronization primitives are mutable state too: a held lock cannot be
// serialized.
var mu sync.Mutex // want:snapshotsafe

// Multiple names in one spec each get their own finding.
var hits, misses int64 // want:snapshotsafe

// Sentinel errors are exempt: write-once identities compared by pointer.
var ErrExhausted = errors.New("core: exhausted")

// Blank interface assertions hold no storage.
var _ fmt.Stringer = named("")

// Immutable configuration is the escape hatch's intended use.
//lint:allow snapshotsafe tuning default, set before Run and never written
var DefaultDepth = 16

// Constants are not state.
const maxDepth = 64

type named string

func (n named) String() string { return string(n) }

func bump() {
	stepCounter++
	seen["x"]++
	hits++
	_ = misses
	mu.Lock()
	defer mu.Unlock()
	sharedBuf = append(sharedBuf, 0)
}

// localOK is clean: function-local state lives on a task's stack, which
// the checkpoint either serializes (step programs) or replays.
func localOK() int {
	local := 0
	for i := 0; i < maxDepth; i++ {
		local += i
	}
	return local + DefaultDepth
}
