// Corpus for the rawvtime analyzer. Imports the real vtime package; the
// fake import path simany/internal/rvbad keeps it outside the exempt
// package.
package rvbad

import "simany/internal/vtime"

func leak(t vtime.Time) int64 {
	return int64(t) // want:rawvtime
}

func toFloat(t vtime.Time) float64 {
	return float64(t) // want:rawvtime
}

func toUnsigned(t vtime.Time) uint64 {
	return uint64(t) // want:rawvtime
}

// typedOK is clean: arithmetic on the typed representation keeps the unit.
func typedOK(a, b vtime.Time) vtime.Time {
	return vtime.Min(a+b, vtime.Inf)
}

// helpersOK is clean: the sanctioned accessors do the converting.
func helpersOK(t vtime.Time) (float64, int64) {
	return t.InCycles(), t.WholeCycles()
}

// intFromInt is clean: the source is already a plain integer.
func intFromInt(n int) int64 {
	return int64(n)
}

// construct is clean: converting *into* vtime.Time builds a value rather
// than stripping a unit.
func construct(n int64) vtime.Time {
	return vtime.Time(n)
}

func allowed(t vtime.Time) int64 {
	//lint:allow rawvtime corpus fixture: demonstrates suppression
	return int64(t)
}
