// Corpus for the allowjustify analyzer: every //lint:allow directive must
// carry a one-line justification after its rule list. The marker for the
// bad case rides in a block comment on the same line, because appending
// text to the directive itself would turn into a justification.
package aj

var a = 1 //lint:allow maporder corpus fixture demonstrating a justified allow

/* want:allowjustify */ //lint:allow maporder
var b = 2

/* want:allowjustify */ //lint:allow maporder,rawvtime
var c = 3
