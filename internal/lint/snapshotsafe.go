package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotSafe flags mutable package-level state in the simulator's
// checkpointed packages (core, rt, network, drift). The checkpoint
// contract (docs/checkpoint.md) requires every piece of mutable
// simulation state to be reachable from a per-shard root the kernel
// serializes — a Core/domain, or a component registered through
// Kernel.RegisterSnapshot. A package-level variable lives outside every
// root: it silently survives a restore with its pre-restore value, which
// breaks the byte-identical resume guarantee the moment anything reads
// it. State must move into a Snapshottable component; genuinely immutable
// configuration (defaults set before Run and never written afterwards)
// documents itself with //lint:allow snapshotsafe.
//
// Exempt without annotation: blank vars (compile-time interface
// assertions hold no state) and error-typed vars (sentinel errors are
// write-once identities, compared by pointer, never mutated).
var SnapshotSafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "flag mutable package-level state outside the per-shard checkpoint roots in core/rt/network/drift",
	Run:  runSnapshotSafe,
}

func runSnapshotSafe(prog *Program, p *Package, r *Reporter) {
	if !p.isInternal(prog, "core", "rt", "network", "drift") {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // interface assertion, no storage
					}
					obj := p.Info.Defs[name]
					if obj == nil {
						continue
					}
					if types.Identical(obj.Type(), errType) {
						continue // sentinel error, write-once identity
					}
					r.Report(name.Pos(), "snapshotsafe",
						"package-level var %s is mutable state outside every per-shard checkpoint root; move it into a Snapshottable component, or mark immutable configuration with //lint:allow snapshotsafe",
						name.Name)
				}
			}
		}
	}
}
