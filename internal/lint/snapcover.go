package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapCover mechanizes checkpoint completeness (docs/checkpoint.md): a
// field added to any struct reachable from a checkpoint root must either
// be written by the encode-side snapshot code or carry an explicit
// //simany:derived <why it is rebuilt on restore> annotation. Without the
// rule, a new mutable field silently vanishes from checkpoints and
// surfaces three PRs later as a divergent resume — the exact bug class
// the byte-identical (seed, shards) contract forbids.
//
// Roots are discovered structurally, not by name: every module struct
// with a method taking *snap.Encoder (the per-shard Snapshottable roots,
// Kernel.RegisterSnapshot externals, the rt TaskCodec) and every struct
// parameter of such a function (taskMeta, stepState, Action) is a root.
// Reachability then follows covered fields through pointers, slices,
// arrays and maps into other module structs.
//
// Coverage is deliberately encode-side only. The encode functions are
// those with a *snap.Encoder parameter or constructing one via
// snap.NewEncoder, their direct module callees (Runtime.statFields-style
// helpers), the function literals they contain, and — for kernel
// bookkeeping spread around the container plumbing — functions that
// mention the snap package without being decode-side. A field referenced
// only by decode code is still a finding: decode asymmetries are
// legitimate (CellStore refuses live cells), but an un-encoded field can
// never round-trip. Deleting one field's encode line therefore fails CI
// with exactly that field named.
//
// Exempt without annotation: blank fields, function- and channel-typed
// fields (never serializable), maps with function values (dispatch
// tables), and sync.Mutex/RWMutex/Once/WaitGroup (host-side guards). A
// bare //simany:derived with no justification is itself a finding.
var SnapCover = &Analyzer{
	Name: "snapcover",
	Doc:  "require checkpoint-reachable struct fields to be encoded or annotated //simany:derived",
	Run:  runSnapCover,
}

func runSnapCover(prog *Program, p *Package, r *Reporter) {
	g := prog.CallGraph()
	g.snapOnce.Do(func() { g.snapDiags = snapCoverFindings(prog, g) })
	for _, d := range g.snapDiags {
		if d.pkg == p.Path {
			r.Report(d.pos, d.rule, "%s", d.msg)
		}
	}
}

func snapCoverFindings(prog *Program, g *CallGraph) []pkgDiag {
	snapPath := prog.Module + "/internal/snap"
	var diags []pkgDiag

	// Field annotations: //simany:derived <why>, on the field's doc
	// comment or trailing line comment. Keyed by field position so both
	// named and embedded fields resolve from their types.Var.
	annotated := make(map[token.Pos]bool)
	for _, p := range prog.Pkgs {
		if p.Path == snapPath {
			continue
		}
		for _, f := range p.Files {
			pkgPath := p.Path
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					just, found := derivedAnnotation(field)
					if !found {
						continue
					}
					annotated[field.Pos()] = true
					for _, name := range field.Names {
						annotated[name.Pos()] = true
					}
					if just == "" {
						diags = append(diags, pkgDiag{
							pkg: pkgPath, pos: field.Pos(), rule: "snapcover",
							msg: "//simany:derived needs a justification: say how the field is rebuilt on restore",
						})
					}
				}
				return true
			})
		}
	}

	// Classify the call-graph nodes into encode side / decode side.
	encPtr := func(t types.Type) bool { return isSnapPtr(t, snapPath, "Encoder") }
	decPtr := func(t types.Type) bool { return isSnapPtr(t, snapPath, "Decoder") }
	isEnc := make(map[*Node]bool)
	isDec := make(map[*Node]bool)
	var encNodes, snapRefNodes []*Node
	for _, n := range g.Nodes {
		if n.Pkg.Path == snapPath {
			continue
		}
		dec := hasParamOfType(n.Sig, decPtr) || refsSnapSel(n, snapPath, "NewDecoder")
		enc := hasParamOfType(n.Sig, encPtr) || refsSnapSel(n, snapPath, "NewEncoder")
		if dec && !enc {
			isDec[n] = true
			continue
		}
		if enc {
			isEnc[n] = true
			encNodes = append(encNodes, n)
		}
	}
	if len(encNodes) == 0 {
		return diags // no checkpoint code in the loaded packages
	}
	// Container plumbing: mentions snap without being encode or decode.
	for _, n := range g.Nodes {
		if isEnc[n] || isDec[n] || n.Pkg.Path == snapPath {
			continue
		}
		if refsSnapSel(n, snapPath, "") || signatureUsesPkg(n.Sig, snapPath) {
			snapRefNodes = append(snapRefNodes, n)
		}
	}

	// The coverage set: encode nodes, their direct module callees, the
	// container plumbing, and every literal lexically inside any of them.
	covFn := make(map[*Node]bool)
	for _, n := range encNodes {
		covFn[n] = true
		for _, e := range n.Calls {
			if e.To != nil && e.To.Pkg.Path != snapPath && !isDec[e.To] {
				covFn[e.To] = true
			}
		}
	}
	for _, n := range snapRefNodes {
		covFn[n] = true
	}
	for _, n := range g.Nodes {
		if n.Lit == nil {
			continue
		}
		for e := n.Encl; e != nil; e = e.Encl {
			if covFn[e] {
				covFn[n] = true
				break
			}
		}
	}

	// Covered fields: every field object the coverage set references
	// (selectors and composite-literal keys both resolve through Uses).
	covered := make(map[*types.Var]bool)
	for n := range covFn {
		walkOwnBody(n, func(e ast.Node) {
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			if v, ok := n.Pkg.Info.Uses[id].(*types.Var); ok && v.IsField() {
				covered[v] = true
			}
		})
	}

	// Roots: receiver and struct parameters of the encode functions.
	type via struct {
		parent *types.Named
		field  string
	}
	parents := make(map[*types.Named]via)
	seen := make(map[*types.Named]bool)
	var queue []*types.Named
	add := func(n *types.Named, v via) {
		if n == nil || seen[n] {
			return
		}
		obj := n.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() == snapPath {
			return
		}
		path := obj.Pkg().Path()
		if path != prog.Module && !strings.HasPrefix(path, prog.Module+"/") {
			return
		}
		if _, ok := n.Underlying().(*types.Struct); !ok {
			return
		}
		seen[n] = true
		parents[n] = v
		queue = append(queue, n)
	}
	for _, n := range encNodes {
		if n.Sig == nil {
			continue
		}
		if recv := n.Sig.Recv(); recv != nil {
			add(baseNamed(recv.Type()), via{})
		}
		params := n.Sig.Params()
		for i := 0; i < params.Len(); i++ {
			t := params.At(i).Type()
			if encPtr(t) {
				continue
			}
			add(baseNamed(t), via{})
		}
	}

	// Breadth-first over covered fields.
	chain := func(n *types.Named) string {
		var hops []string
		for cur := n; ; {
			v := parents[cur]
			if v.parent == nil {
				if len(hops) == 0 {
					return "checkpoint root " + cur.Obj().Name()
				}
				return "root " + cur.Obj().Name() + " via " + strings.Join(hops, " → ")
			}
			hops = append([]string{v.parent.Obj().Name() + "." + v.field}, hops...)
			cur = v.parent
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		st := n.Underlying().(*types.Struct)
		owner := n.Obj().Pkg().Path()
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || annotated[f.Pos()] || exemptFieldType(f.Type()) {
				continue
			}
			if !covered[f] {
				diags = append(diags, pkgDiag{
					pkg: owner, pos: f.Pos(), rule: "snapcover",
					msg: "field " + n.Obj().Name() + "." + f.Name() +
						" (" + chain(n) + ") is never referenced by encode-side snapshot code; serialize it or annotate //simany:derived <why it is rebuilt on restore>",
				})
				continue
			}
			namedStructsIn(f.Type(), func(m *types.Named) {
				add(m, via{parent: n, field: f.Name()})
			})
		}
	}
	return diags
}

// derivedAnnotation extracts a field's //simany:derived marker, reporting
// whether one exists and its justification text.
func derivedAnnotation(field *ast.Field) (just string, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "simany:derived"); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// isSnapPtr reports whether t is *<module>/internal/snap.<name>.
func isSnapPtr(t types.Type, snapPath, name string) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == snapPath
}

// hasParamOfType reports whether any parameter of sig satisfies pred.
func hasParamOfType(sig *types.Signature, pred func(types.Type) bool) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if pred(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// refsSnapSel reports whether n's own body contains a snap.<name>
// selector (any snap selector when name is "").
func refsSnapSel(n *Node, snapPath, name string) bool {
	found := false
	walkOwnBody(n, func(e ast.Node) {
		if found {
			return
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pn := pkgNameOf(n.Pkg.Info, sel.X)
		if pn != nil && pn.Imported().Path() == snapPath &&
			(name == "" || sel.Sel.Name == name) {
			found = true
		}
	})
	return found
}

// signatureUsesPkg reports whether any parameter or result of sig names a
// type from pkgPath (snap.Container plumbing).
func signatureUsesPkg(sig *types.Signature, pkgPath string) bool {
	if sig == nil {
		return false
	}
	check := func(tup *types.Tuple) bool {
		for i := 0; i < tup.Len(); i++ {
			if typeUsesPkg(tup.At(i).Type(), pkgPath, 0) {
				return true
			}
		}
		return false
	}
	return check(sig.Params()) || check(sig.Results())
}

func typeUsesPkg(t types.Type, pkgPath string, depth int) bool {
	if depth > 4 {
		return false
	}
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		return typeUsesPkg(tt.Elem(), pkgPath, depth+1)
	case *types.Slice:
		return typeUsesPkg(tt.Elem(), pkgPath, depth+1)
	case *types.Array:
		return typeUsesPkg(tt.Elem(), pkgPath, depth+1)
	case *types.Map:
		return typeUsesPkg(tt.Key(), pkgPath, depth+1) ||
			typeUsesPkg(tt.Elem(), pkgPath, depth+1)
	case *types.Named:
		obj := tt.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
	}
	return false
}

// exemptFieldType reports whether a field type can never hold checkpoint
// state: functions, channels, func-valued maps, and sync guards.
func exemptFieldType(t types.Type) bool {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem() // a map with func/chan values is a dispatch table
		case *types.Signature, *types.Chan:
			return true
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				switch obj.Name() {
				case "Mutex", "RWMutex", "Once", "WaitGroup":
					return true
				}
				return false
			}
			switch tt.Underlying().(type) {
			case *types.Signature, *types.Chan:
				return true
			}
			return false
		default:
			return false
		}
	}
}

// baseNamed strips pointers off t and returns the named type, nil if the
// result is not named.
func baseNamed(t types.Type) *types.Named {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// namedStructsIn visits the module named struct types contained in t
// (through pointers, slices, arrays and map keys/values).
func namedStructsIn(t types.Type, visit func(*types.Named)) {
	var rec func(types.Type, int)
	rec = func(t types.Type, depth int) {
		if depth > 6 {
			return
		}
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			rec(tt.Elem(), depth+1)
		case *types.Slice:
			rec(tt.Elem(), depth+1)
		case *types.Array:
			rec(tt.Elem(), depth+1)
		case *types.Map:
			rec(tt.Key(), depth+1)
			rec(tt.Elem(), depth+1)
		case *types.Named:
			visit(tt) // the add callback filters for module structs
		}
	}
	rec(t, 0)
}
