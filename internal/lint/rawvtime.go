package lint

import (
	"go/ast"
	"go/types"
)

// RawVtime flags conversions that strip the millicycle unit from
// vtime.Time values outside package vtime itself. A raw int64 (or float)
// carrying millicycles invites exactly the arithmetic bugs the fixed-point
// representation exists to prevent — mixing cycles with millicycles, or
// comparing against unscaled constants — and bypasses the Inf-aware
// helpers (Scale, Min, Max, InCycles, WholeCycles). Code that genuinely
// needs a raw field (e.g. a kind-discriminated trace payload) documents it
// with //lint:allow rawvtime.
var RawVtime = &Analyzer{
	Name: "rawvtime",
	Doc:  "flag vtime.Time -> raw numeric conversions outside internal/vtime",
	Run:  runRawVtime,
}

func runRawVtime(prog *Program, p *Package, r *Reporter) {
	if p.Path == prog.Module+"/internal/vtime" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion is a call whose Fun is a type expression.
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := types.Unalias(tv.Type).(*types.Basic)
			if !ok || dst.Info()&(types.IsInteger|types.IsFloat) == 0 {
				return true
			}
			src := p.Info.TypeOf(call.Args[0])
			if src == nil || !isVtimeTime(prog, src) {
				return true
			}
			r.Report(call.Pos(), "rawvtime",
				"conversion of vtime.Time to %s drops the millicycle unit; keep values typed (vtime.Min/Max/Scale) or go through InCycles/WholeCycles",
				dst.Name())
			return true
		})
	}
}
